package repro_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices DESIGN.md calls out. Each
// bench reports its headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the paper's numbers (at a reduced input scale; run
// cmd/experiments -scale 1.0 for the full-size report).

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/regions"
	"repro/internal/streamcomp"
	"repro/internal/vm"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
	suiteErr  error
)

// benchSuite prepares the benchmark programs once (generate, assemble,
// squeeze, link, profile) at a reduced input scale. Preparation is served
// from the content-keyed cache in .prepcache when programs and inputs are
// unchanged, so repeated benchmark runs start measuring immediately.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.LoadCached(0.05, 0, ".prepcache")
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// BenchmarkTable1Squeeze regenerates Table 1: squeeze's size reduction.
func BenchmarkTable1Squeeze(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		tab := experiments.Table1(s)
		if len(tab.Rows) != 11 {
			b.Fatal("wrong row count")
		}
	}
	var sum float64
	for _, bench := range s.Benches {
		sum += bench.SqueezeStats.Reduction()
	}
	b.ReportMetric(100*sum/float64(len(s.Benches)), "%mean-squeeze-reduction")
}

// BenchmarkFig3BufferSweep regenerates Figure 3: squashed size versus the
// runtime-buffer bound K.
func BenchmarkFig3BufferSweep(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(s, []int{128, 512, 2048}, []float64{0.0001}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4ColdCode regenerates Figure 4: cold and compressible code
// fractions over the θ sweep.
func BenchmarkFig4ColdCode(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(s, []float64{0, 0.0001, 0.01, 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6SizeReduction regenerates Figure 6: per-program code size
// reduction at the paper's thresholds.
func BenchmarkFig6SizeReduction(b *testing.B) {
	s := benchSuite(b)
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Fig6(s, []float64{0, 0.00005, 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	_ = tab
}

// BenchmarkFig7aSize regenerates Figure 7(a): code size relative to the
// squeezed baseline at low thresholds.
func BenchmarkFig7aSize(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(s, []float64{0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7bTime regenerates Figure 7(b): execution time relative to
// the squeezed baseline (squashed binaries run on the timing inputs).
func BenchmarkFig7bTime(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig7(s, experiments.Fig7Thetas); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGammaCompressionRatio regenerates the §3 statistic: the achieved
// split-stream compression factor γ at θ=1.
func BenchmarkGammaCompressionRatio(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.GammaStats(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferSafeStats regenerates the §6.1 statistic: buffer-safe
// callees among calls from compressed code.
func BenchmarkBufferSafeStats(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BufferSafeStats(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStubStats regenerates the §2.2 statistics: maximum live restore
// stubs and the compile-time restore-stub cost.
func BenchmarkStubStats(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StubStats(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPathology regenerates the §7 caution: profile-cold code executed
// hot by the timing input.
func BenchmarkPathology(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Pathology(s); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks -------------------------------------------------

// squashAll squashes every benchmark with the given config tweak and
// reports the mean size reduction.
func squashAll(b *testing.B, mod func(*core.Config)) float64 {
	s := benchSuite(b)
	var sum float64
	for _, bench := range s.Benches {
		conf := core.DefaultConfig()
		conf.Theta = 0.0001
		if mod != nil {
			mod(&conf)
		}
		out, err := bench.Squash(conf)
		if err != nil {
			b.Fatal(err)
		}
		sum += out.Stats.Reduction()
	}
	return sum / float64(len(s.Benches))
}

// BenchmarkAblationPacking measures the effect of §4's region packing.
func BenchmarkAblationPacking(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = squashAll(b, nil)
		without = squashAll(b, func(c *core.Config) { c.Regions.Pack = false })
	}
	b.ReportMetric(100*with, "%reduction-packed")
	b.ReportMetric(100*without, "%reduction-unpacked")
}

// BenchmarkAblationBufferSafe measures §6.1's call-expansion savings.
func BenchmarkAblationBufferSafe(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = squashAll(b, nil)
		without = squashAll(b, func(c *core.Config) { c.BufferSafe = false })
	}
	b.ReportMetric(100*with, "%reduction-buffersafe")
	b.ReportMetric(100*without, "%reduction-without")
}

// BenchmarkAblationUnswitch measures §6.2's jump-table unswitching.
func BenchmarkAblationUnswitch(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		with = squashAll(b, nil)
		without = squashAll(b, func(c *core.Config) { c.Unswitch = false })
	}
	b.ReportMetric(100*with, "%reduction-unswitched")
	b.ReportMetric(100*without, "%reduction-without")
}

// BenchmarkAblationMTF measures the §3 move-to-front variant.
func BenchmarkAblationMTF(b *testing.B) {
	var plain, mtf float64
	for i := 0; i < b.N; i++ {
		plain = squashAll(b, nil)
		mtf = squashAll(b, func(c *core.Config) { c.MTF = true })
	}
	b.ReportMetric(100*plain, "%reduction-plain")
	b.ReportMetric(100*mtf, "%reduction-mtf")
}

// BenchmarkAblationRestoreStubs compares run-time restore stub creation
// against the rejected compile-time alternative (§2.2).
func BenchmarkAblationRestoreStubs(b *testing.B) {
	var runtime, compileTime float64
	for i := 0; i < b.N; i++ {
		runtime = squashAll(b, nil)
		compileTime = squashAll(b, func(c *core.Config) { c.CompileTimeRestoreStubs = true })
	}
	b.ReportMetric(100*runtime, "%reduction-runtime-stubs")
	b.ReportMetric(100*compileTime, "%reduction-compiletime-stubs")
}

// BenchmarkAblationCostModel sweeps the decompression cost constants to
// show Figure 7(b)'s shape is not an artifact of the defaults.
func BenchmarkAblationCostModel(b *testing.B) {
	s := benchSuite(b)
	bench := s.Benches[0]
	conf := core.DefaultConfig()
	conf.Theta = 0.01
	out, err := bench.Squash(conf)
	if err != nil {
		b.Fatal(err)
	}
	baseOut, baseCycles, err := bench.BaselineTiming()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, scale := range []uint64{1, 4} {
			rt, err := core.NewRuntime(out.Meta)
			if err != nil {
				b.Fatal(err)
			}
			m := vm.New(out.Image, bench.Spec.TimingInput())
			m.Cost.DecompPerBit *= scale
			m.Cost.DecompPerInst *= scale
			rt.Install(m)
			if err := m.Run(); err != nil {
				b.Fatal(err)
			}
			if string(m.Output) != string(baseOut) {
				b.Fatal("output diverged")
			}
			_ = baseCycles
		}
	}
}

// --- Micro-benchmarks of the compression substrate ------------------------

// BenchmarkHuffmanDecode measures the paper's DECODE() loop.
func BenchmarkHuffmanDecode(b *testing.B) {
	freq := map[uint32]uint64{}
	for i := uint32(0); i < 64; i++ {
		freq[i] = uint64(1 + i*i)
	}
	c := huffman.Build(freq)
	var w huffman.BitWriter
	var vals []uint32
	for i := uint32(0); i < 64; i++ {
		for j := uint64(0); j < freq[i]%17+1; j++ {
			vals = append(vals, i)
			if err := c.Encode(&w, i); err != nil {
				b.Fatal(err)
			}
		}
	}
	blob := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := huffman.NewBitReader(blob)
		for range vals {
			if _, err := c.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.SetBytes(int64(len(vals)))
}

// BenchmarkStreamCompress measures split-stream compression throughput.
func BenchmarkStreamCompress(b *testing.B) {
	seq := isa.RandInsts(42, 4096)
	var clean []isa.Inst
	for _, in := range seq {
		if in.Format != isa.FormatIllegal {
			clean = append(clean, in)
		}
	}
	comp := streamcomp.Train([][]isa.Inst{clean}, streamcomp.Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var w huffman.BitWriter
		if err := comp.Compress(&w, clean); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(4 * len(clean)))
}

// BenchmarkStreamDecompress measures the decompressor's instruction
// reconstruction rate — the quantity the runtime cost model charges for.
func BenchmarkStreamDecompress(b *testing.B) {
	seq := isa.RandInsts(43, 4096)
	var clean []isa.Inst
	for _, in := range seq {
		if in.Format != isa.FormatIllegal {
			clean = append(clean, in)
		}
	}
	comp := streamcomp.Train([][]isa.Inst{clean}, streamcomp.Options{})
	var w huffman.BitWriter
	if err := comp.Compress(&w, clean); err != nil {
		b.Fatal(err)
	}
	blob := w.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if _, err := comp.Decompress(blob, 0, func(isa.Inst) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != len(clean) {
			b.Fatal("short decode")
		}
	}
	b.SetBytes(int64(4 * len(clean)))
}

// BenchmarkVMExecution measures the simulator's raw interpretation rate.
func BenchmarkVMExecution(b *testing.B) {
	s := benchSuite(b)
	bench := s.Benches[0]
	input := bench.Spec.TimingInput()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := vm.New(bench.SqImage, input)
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(m.Instructions))
	}
}

// BenchmarkAblationLoopAware compares the paper's DFS region construction
// against the loop-aware strategy (§9 future work) on the pathological
// input that drives profile-cold loops: the loop-aware partition should
// decompress dramatically less when the loop would otherwise split.
func BenchmarkAblationLoopAware(b *testing.B) {
	s := benchSuite(b)
	var target *experiments.Bench
	for _, bench := range s.Benches {
		if bench.Spec.Name == "mpeg2dec" {
			target = bench
		}
	}
	if target == nil {
		b.Fatal("mpeg2dec missing")
	}
	input := target.Spec.PathologyInput()
	run := func(strategy regions.Strategy) (warnings int, cycles uint64) {
		conf := core.DefaultConfig()
		conf.Theta = 0.0001
		conf.Regions.K = 512
		conf.Regions.Strategy = strategy
		conf.StubCapacity = 64
		out, err := target.Squash(conf)
		if err != nil {
			b.Fatal(err)
		}
		m, _, err := experiments.RunSquashed(out, input, nil)
		if err != nil {
			b.Fatal(err)
		}
		return len(out.Stats.LoopSplitWarnings), m.Cycles
	}
	var dfsWarn, loopWarn int
	var dfsCyc, loopCyc uint64
	for i := 0; i < b.N; i++ {
		dfsWarn, dfsCyc = run(regions.StrategyDFS)
		loopWarn, loopCyc = run(regions.StrategyLoopAware)
	}
	// Loop-aware construction eliminates split loops (its goal); whether it
	// wins on time depends on how often the surrounding code transitions
	// into the loop region — an honest trade-off, reported as-is.
	b.ReportMetric(float64(dfsWarn), "split-loops-dfs")
	b.ReportMetric(float64(loopWarn), "split-loops-loopaware")
	b.ReportMetric(float64(loopCyc)/float64(dfsCyc), "cycles-ratio-loopaware/dfs")
}

// BenchmarkInterpComparison regenerates the §8 comparison: decompression
// versus interpret-in-place on the same compressed regions.
func BenchmarkInterpComparison(b *testing.B) {
	s := benchSuite(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.InterpComparison(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkICacheStats measures instruction-cache behaviour of squeezed vs
// squashed binaries on an embedded-scale cache.
func BenchmarkICacheStats(b *testing.B) {
	s := benchSuite(b)
	small := &experiments.Suite{Benches: s.Benches[:3], Scale: s.Scale}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ICacheStats(small, 8*1024); err != nil {
			b.Fatal(err)
		}
	}
}

// squashMatrixBench runs the full benchmark × θ squash matrix at a fixed
// worker count. The two variants below share it so that
//
//	go test -bench=BenchmarkSquash -benchtime=1x
//
// reports the serial-versus-parallel wall-clock of the identical workload;
// the determinism tests guarantee both produce the same images.
func squashMatrixBench(b *testing.B, workers int) {
	s := benchSuite(b)
	thetas := []float64{0, 0.0001, 0.01}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outs, err := experiments.SquashMatrix(s, thetas, workers)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != len(s.Benches)*len(thetas) {
			b.Fatalf("matrix has %d cells", len(outs))
		}
	}
}

// BenchmarkSquashMatrixWorkers1 is the serial baseline for the parallel
// pipeline: every matrix cell and every squash phase runs on one goroutine.
func BenchmarkSquashMatrixWorkers1(b *testing.B) { squashMatrixBench(b, 1) }

// BenchmarkSquashMatrixParallel runs the same matrix with one worker per
// CPU at both levels (matrix cells and per-cell squash phases).
func BenchmarkSquashMatrixParallel(b *testing.B) { squashMatrixBench(b, 0) }
