package repro_test

// End-to-end pipeline integration test over serialized artifacts: the same
// flow as the command-line tools (em-as → squeeze → em-run -profile →
// squash → em-run), with every stage round-tripped through its on-disk
// format, and behavioural equivalence checked at each step.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

func TestFilePipelineEndToEnd(t *testing.T) {
	dir := t.TempDir()
	spec, ok := mediabench.SpecByName("g721_dec")
	if !ok {
		t.Fatal("benchmark missing")
	}
	spec.ProfBytes = 15000
	spec.TimeBytes = 12000
	spec.TriggerRate = 0.01

	// em-as: source → object file.
	srcPath := filepath.Join(dir, "prog.s")
	if err := os.WriteFile(srcPath, []byte(spec.Generate()), 0o644); err != nil {
		t.Fatal(err)
	}
	src, _ := os.ReadFile(srcPath)
	obj, err := asm.Assemble(string(src))
	if err != nil {
		t.Fatal(err)
	}
	objPath := filepath.Join(dir, "prog.o")
	writeObj(t, objPath, obj)

	// squeeze: object → compacted object.
	obj = readObj(t, objPath)
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := squeeze.Run(p); err != nil {
		t.Fatal(err)
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	sqPath := filepath.Join(dir, "prog.sq.o")
	writeObj(t, sqPath, sqObj)

	// em-run -profile: execute the squeezed object, write the profile.
	sqObj = readObj(t, sqPath)
	im, err := objfile.Link("main", sqObj)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im, spec.ProfilingInput())
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	profPath := filepath.Join(dir, "prog.prof")
	var pbuf bytes.Buffer
	if _, err := profile.Counts(m.Profile).WriteTo(&pbuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(profPath, pbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// squash: object + profile → squashed image file.
	pdata, _ := os.ReadFile(profPath)
	counts, err := profile.ReadCounts(bytes.NewReader(pdata))
	if err != nil {
		t.Fatal(err)
	}
	conf := core.DefaultConfig()
	conf.Theta = 0.001
	out, err := core.Squash(readObj(t, sqPath), counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	exePath := filepath.Join(dir, "prog.sqz.exe")
	var ibuf bytes.Buffer
	if _, err := out.Image.WriteTo(&ibuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(exePath, ibuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// em-run: execute both and compare byte-for-byte.
	timing := spec.TimingInput()
	base := vm.New(im, timing)
	if err := base.Run(); err != nil {
		t.Fatal(err)
	}
	idata, _ := os.ReadFile(exePath)
	sqIm, err := objfile.ReadImage(bytes.NewReader(idata))
	if err != nil {
		t.Fatal(err)
	}
	meta, err := core.UnmarshalMeta(sqIm.Meta)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := core.NewRuntime(meta)
	if err != nil {
		t.Fatal(err)
	}
	sq := vm.New(sqIm, timing)
	rt.Install(sq)
	if err := sq.Run(); err != nil {
		t.Fatal(err)
	}
	if string(base.Output) != string(sq.Output) {
		t.Fatal("pipeline output differs from baseline after file round trips")
	}
	if base.Status != sq.Status {
		t.Fatalf("exit status differs: %d vs %d", base.Status, sq.Status)
	}
	if rt.Stats.Decompressions == 0 {
		t.Error("squashed image never decompressed anything")
	}
	if out.Stats.Reduction() <= 0 {
		t.Errorf("no size reduction: %+v", out.Stats)
	}
	t.Logf("pipeline: %d -> %d bytes (%.1f%%), %d decompressions, output %d bytes",
		out.Stats.InputBytes, out.Stats.SquashedBytes, 100*out.Stats.Reduction(),
		rt.Stats.Decompressions, len(sq.Output))
}

func writeObj(t *testing.T, path string, obj *objfile.Object) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := obj.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func readObj(t *testing.T, path string) *objfile.Object {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := objfile.ReadObject(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return obj
}
