// Command benchhist records paired fast/slow benchmark ratios per commit
// and enforces their regression floors. CI pipes the output of
// scripts/bench.sh into it:
//
//	scripts/bench.sh | tee bench.txt
//	benchhist -in bench.txt -history BENCH_history.json -commit "$GITHUB_SHA"
//
// The ratio of each pair (slow ns/op over fast ns/op, medians across
// -count repetitions) is appended to the history file and checked against
// its floor; a regression exits nonzero *after* recording the entry, so the
// history also documents the failure.
//
// With -load it ingests a cmd/squashload JSON report instead: the gated
// service-level metrics (req/s, p50/p99 latency, cache hit rate, errors)
// are appended to the same history file and checked against their floors
// and ceilings — the load-smoke CI job's gate:
//
//	squashload -connect "$sock" -replay stream.jsonl -rate 2 -out report.json
//	benchhist -load report.json -history BENCH_history.json -commit "$GITHUB_SHA"
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/benchhist"
)

func main() {
	in := flag.String("in", "-", "benchmark output file from `go test -bench` ('-' = stdin)")
	loadIn := flag.String("load", "", "squashload JSON report to ingest instead of bench output")
	allocsIn := flag.String("allocs", "", "`go test -bench -benchmem` output to ingest for the alloc/op gates")
	history := flag.String("history", "BENCH_history.json", "history file to append to")
	commit := flag.String("commit", os.Getenv("GITHUB_SHA"), "commit hash to record (default $GITHUB_SHA)")
	date := flag.String("date", time.Now().UTC().Format("2006-01-02"), "date to record (UTC)")
	noCheck := flag.Bool("no-check", false, "record ratios without enforcing regression floors")
	flag.Parse()
	if *commit == "" {
		*commit = "unknown"
	}

	if *loadIn != "" {
		ingestLoad(*loadIn, *history, *commit, *date, *noCheck)
		return
	}
	if *allocsIn != "" {
		ingestAllocs(*allocsIn, *history, *commit, *date, *noCheck)
		return
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		r = f
	}
	samples, err := benchhist.ParseNsPerOp(r)
	if err != nil {
		fail(err)
	}
	pairs := benchhist.DefaultPairs()
	entries, err := benchhist.Ratios(samples, pairs, *commit, *date)
	if err != nil {
		fail(err)
	}
	if err := benchhist.Append(*history, entries); err != nil {
		fail(err)
	}
	floors := map[string]float64{}
	for _, p := range pairs {
		floors[p.Name] = p.Min
	}
	for _, e := range entries {
		fmt.Printf("%-22s %6.2fx  (floor %.2fx)\n", e.Benchmark, e.Ratio, floors[e.Benchmark])
	}
	fmt.Printf("recorded %d ratios for %s in %s\n", len(entries), *commit, *history)
	if !*noCheck {
		if err := benchhist.Check(entries, pairs); err != nil {
			fail(err)
		}
	}
}

// ingestLoad records a squashload report's gated metrics and enforces
// their floors/ceilings. Like the pair path, the entries are appended
// before checking, so the history documents the failing run too.
func ingestLoad(path, history, commit, date string, noCheck bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	gates := benchhist.DefaultLoadGates()
	entries, err := benchhist.LoadEntries(data, gates, commit, date)
	if err != nil {
		fail(err)
	}
	if err := benchhist.Append(history, entries); err != nil {
		fail(err)
	}
	for _, g := range gates {
		for _, e := range entries {
			if e.Benchmark != g.Name {
				continue
			}
			bounds := ""
			if g.HasMin {
				bounds += fmt.Sprintf("  (floor %.2f)", g.Min)
			}
			if g.HasMax {
				bounds += fmt.Sprintf("  (ceiling %.2f)", g.Max)
			}
			fmt.Printf("%-16s %10.2f %-6s%s\n", e.Benchmark, e.Value, e.Unit, bounds)
		}
	}
	fmt.Printf("recorded %d load metrics for %s in %s\n", len(entries), commit, history)
	if !noCheck {
		if err := benchhist.CheckLoad(entries, gates); err != nil {
			fail(err)
		}
	}
}

// ingestAllocs records the pooled/fresh allocation medians from -benchmem
// output and enforces the pooled allocs/op ceilings and fresh/pooled floors.
// Entries are appended before checking, so the history documents the failing
// run too.
func ingestAllocs(path, history, commit, date string, noCheck bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	allocs, err := benchhist.ParseMetric(bytes.NewReader(data), "allocs/op")
	if err != nil {
		fail(err)
	}
	byteSamples, err := benchhist.ParseMetric(bytes.NewReader(data), "B/op")
	if err != nil {
		fail(err)
	}
	gates := benchhist.DefaultAllocGates()
	entries, err := benchhist.AllocEntries(allocs, byteSamples, gates, commit, date)
	if err != nil {
		fail(err)
	}
	if err := benchhist.Append(history, entries); err != nil {
		fail(err)
	}
	for _, e := range entries {
		fmt.Printf("%-32s %10.1f %s\n", e.Benchmark, e.Value, e.Unit)
	}
	fmt.Printf("recorded %d alloc metrics for %s in %s\n", len(entries), commit, history)
	if !noCheck {
		if err := benchhist.CheckAllocs(allocs, gates); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchhist:", err)
	os.Exit(1)
}
