// Command squashprofd is the continuous-profiling collector daemon. It
// speaks the squashd wire protocol (both framings) and answers the
// profile-plane ops: fleets running em-run -profile-push ship their
// execution profiles here; the daemon aggregates them per image in a
// persistent store with a decaying window, measures drift against each
// image's squash-time profile, and re-squashes through a squashd backend
// (or in-process) when drift crosses the threshold — verifying that the new
// image is output-identical and recording before/after buffer-miss rates.
//
// Server:
//
//	squashprofd -listen tcp:127.0.0.1:7080 -store /var/lib/squashprofd \
//	    -squash tcp:127.0.0.1:7070 -resquash-threshold 0.25 -metrics-addr :9091
//
// Client:
//
//	squashprofd -connect tcp:127.0.0.1:7080 -register img.sqz.exe -obj prog.o -prof prog.prof -input run.in
//	squashprofd -connect tcp:127.0.0.1:7080 -status -json
//	squashprofd -connect tcp:127.0.0.1:7080 -resquash KEY -force -o new.sqz.exe
//	squashprofd -connect tcp:127.0.0.1:7080 -ping
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profilefeed"
	"repro/internal/regions"
	"repro/internal/serve"
)

func main() {
	// Mode selection.
	listen := flag.String("listen", "", "serve on this address (unix:/path or tcp:host:port)")
	connect := flag.String("connect", "", "act as a client of the collector at this address")

	// Server options.
	store := flag.String("store", "", "persistent per-image store directory (required with -listen)")
	squashAddr := flag.String("squash", "", "squashd backend address for re-squashes (empty = in-process pipeline, byte-identical)")
	threshold := flag.Float64("resquash-threshold", 0, "drift score that triggers an automatic re-squash (0 disables the automatic trigger)")
	minSamples := flag.Uint64("min-samples", 1, "pushes required in the live window before an automatic re-squash")
	cooldown := flag.Duration("cooldown", time.Minute, "minimum interval between automatic re-squashes of one image")
	halfLife := flag.Duration("decay-half-life", 0, "live-window half-life (0 = no decay)")
	maxInput := flag.Int("max-input-bytes", profilefeed.DefaultMaxInputBytes, "cap on pushed input bytes retained per image")
	outDir := flag.String("out-dir", "", "also write each re-squashed image here as <key>.sqz.exe")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json, and /debug/pprof on this host:port")
	protoMax := flag.Int("proto-max", 0, "highest wire protocol version to accept (0 = latest)")

	// Client requests.
	ping := flag.Bool("ping", false, "client: check collector liveness")
	register := flag.String("register", "", "client: register this squashed image with the collector")
	objPath := flag.String("obj", "", "client: object file the image was squashed from (with -register)")
	profPath := flag.String("prof", "", "client: object-space profile the image was squashed with (with -register)")
	inputPath := flag.String("input", "", "client: representative input for the baseline/verification runs (with -register)")
	status := flag.Bool("status", false, "client: print per-image aggregation status")
	asJSON := flag.Bool("json", false, "client: print -status as JSON")
	resquash := flag.String("resquash", "", "client: re-squash the image with this key using the live merged profile")
	force := flag.Bool("force", false, "client: re-squash even below the drift threshold")
	out := flag.String("o", "", "client: write the re-squashed image here")

	// Squash configuration for -register, mirroring cmd/squash: the exact
	// config the image was squashed with, reused verbatim on re-squash.
	theta := flag.Float64("theta", 0.0, "cold-code threshold θ used at squash time")
	k := flag.Int("K", 512, "runtime buffer bound in bytes")
	gamma := flag.Float64("gamma", 0.66, "assumed compression factor for region selection")
	noPack := flag.Bool("no-pack", false, "disable region packing")
	loopAware := flag.Bool("loop-aware", false, "seed regions from natural loops")
	interpret := flag.Bool("interpret", false, "interpret compressed code in place")
	noBufferSafe := flag.Bool("no-buffersafe", false, "disable buffer-safe call analysis")
	noUnswitch := flag.Bool("no-unswitch", false, "disable jump-table unswitching")
	mtf := flag.Bool("mtf", false, "move-to-front stream coder variant")
	coder := flag.String("coder", "stream", "region coder: stream or lz")
	ctStubs := flag.Bool("compile-time-stubs", false, "materialize restore stubs statically")
	stubCap := flag.Int("stub-capacity", 16, "runtime restore-stub slots")
	workers := flag.Int("workers", 0, "worker goroutines for one squash (0 = one per CPU)")
	flag.Parse()

	switch {
	case *listen != "" && *connect != "":
		fail(fmt.Errorf("-listen and -connect are mutually exclusive"))
	case *listen != "":
		if *store == "" {
			fail(fmt.Errorf("-listen requires -store"))
		}
		runServer(*listen, profilefeed.Options{
			Dir:           *store,
			SquashAddr:    *squashAddr,
			Threshold:     *threshold,
			MinSamples:    *minSamples,
			Cooldown:      *cooldown,
			DecayHalfLife: *halfLife,
			MaxInputBytes: *maxInput,
			OutDir:        *outDir,
		}, *metricsAddr, *protoMax)
	case *connect != "":
		conf := core.Config{
			Theta:                   *theta,
			BufferSafe:              !*noBufferSafe,
			Unswitch:                !*noUnswitch,
			MTF:                     *mtf,
			Coder:                   coderID(*coder),
			Interpret:               *interpret,
			CompileTimeRestoreStubs: *ctStubs,
			StubCapacity:            *stubCap,
			Workers:                 *workers,
		}
		conf.Regions.K = *k
		conf.Regions.Gamma = *gamma
		conf.Regions.Pack = !*noPack
		if *loopAware {
			conf.Regions.Strategy = regions.StrategyLoopAware
		}
		runClient(*connect, clientArgs{
			ping: *ping, register: *register, objPath: *objPath, profPath: *profPath,
			inputPath: *inputPath, status: *status, asJSON: *asJSON,
			resquash: *resquash, force: *force, out: *out, conf: conf,
		})
	default:
		fmt.Fprintln(os.Stderr, "usage: squashprofd -listen ADDR -store DIR [server flags]")
		fmt.Fprintln(os.Stderr, "       squashprofd -connect ADDR (-ping | -status [-json] | -register IMG -obj OBJ -prof PROF [-input IN] [squash flags] | -resquash KEY [-force] [-o OUT])")
		os.Exit(2)
	}
}

func runServer(addr string, opts profilefeed.Options, metricsAddr string, protoMax int) {
	opts.Obs = &obs.Recorder{Metrics: obs.NewRegistry()}
	col, err := profilefeed.NewCollector(opts)
	if err != nil {
		fail(err)
	}

	s := serve.NewServer(serve.Options{
		Handler:  col.Handle,
		Obs:      col.Obs(),
		MaxProto: protoMax,
	})
	ln, err := serve.Listen(addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "squashprofd: listening on %s (store %s)\n", addr, opts.Dir)

	var httpSrv *http.Server
	if metricsAddr != "" {
		httpSrv = &http.Server{Addr: metricsAddr, Handler: metricsMux(col.Obs())}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "squashprofd: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "squashprofd: metrics and pprof on http://%s\n", metricsAddr)
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "squashprofd: %s, draining\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr := s.Shutdown(ctx)
		if httpSrv != nil {
			httpSrv.Shutdown(ctx)
		}
		if shutdownErr != nil {
			fmt.Fprintf(os.Stderr, "squashprofd: shutdown: %v\n", shutdownErr)
			os.Exit(1)
		}
		<-serveDone
	case err := <-serveDone:
		if err != nil && err != serve.ErrServerClosed {
			fail(err)
		}
	}
}

// metricsMux mirrors squashd's: both export formats plus explicit pprof.
func metricsMux(rec *obs.Recorder) *http.ServeMux {
	reg := rec.Metrics
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

type clientArgs struct {
	ping              bool
	register          string
	objPath, profPath string
	inputPath         string
	status, asJSON    bool
	resquash          string
	force             bool
	out               string
	conf              core.Config
}

func runClient(addr string, a clientArgs) {
	cl, err := serve.DialClient(addr)
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	switch {
	case a.ping:
		start := time.Now()
		must(cl.Do(&serve.Request{Op: serve.OpPing}))
		fmt.Printf("squashprofd at %s is up, proto v%d (%s)\n", addr, cl.Proto(), time.Since(start).Round(time.Microsecond))

	case a.register != "":
		if a.objPath == "" || a.profPath == "" {
			fail(fmt.Errorf("-register needs -obj and -prof"))
		}
		img := mustRead(a.register)
		obj := mustRead(a.objPath)
		prof := mustRead(a.profPath)
		var input []byte
		if a.inputPath != "" {
			input = mustRead(a.inputPath)
		}
		resp := must(cl.Do(&serve.Request{
			Op: serve.OpProfileRegister, Image: img, Obj: obj, Profile: prof,
			Input: input, Config: &a.conf,
		}))
		fmt.Printf("registered %s as %s\n", a.register, resp.ImageKey)
		printFeed(resp.Feed)

	case a.status:
		resp := must(cl.Do(&serve.Request{Op: serve.OpProfileStatus}))
		if a.asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(resp.Feed); err != nil {
				fail(err)
			}
			return
		}
		printFeed(resp.Feed)

	case a.resquash != "":
		resp := must(cl.Do(&serve.Request{
			Op: serve.OpProfileResquash, ImageKey: a.resquash, Force: a.force,
		}))
		r := resp.Resquash
		fmt.Printf("re-squashed %.12s -> %.12s (drift %.4f, forced %v)\n", a.resquash, r.NewKey, r.DriftScore, r.Forced)
		fmt.Printf("  output identical: %v; miss rate %.6f -> %.6f; evictions %d -> %d\n",
			r.OutputOK, r.MissBefore, r.MissAfter, r.EvictBefore, r.EvictAfter)
		if a.out != "" && len(resp.Image) > 0 {
			if err := os.WriteFile(a.out, resp.Image, 0o644); err != nil {
				fail(err)
			}
			fmt.Printf("  wrote %s (%d bytes)\n", a.out, len(resp.Image))
		}

	default:
		fail(fmt.Errorf("client needs one of -ping, -status, -register, -resquash"))
	}
}

func printFeed(f *serve.FeedSnapshot) {
	if f == nil {
		return
	}
	for _, im := range f.Images {
		cur := ""
		if im.CurrentKey != im.Key {
			cur = fmt.Sprintf(" -> %.12s", im.CurrentKey)
		}
		fmt.Printf("%.12s%s  θ=%g samples=%d base=%d live=%d drift=%.4f (cold-excess %.4f, tv %.4f) threshold=%g resquashes=%d\n",
			im.Key, cur, im.Theta, im.Samples, im.BaseWeight, im.LiveWeight,
			im.Drift.Score, im.Drift.ColdExcess, im.Drift.HotMassTV, im.Threshold, im.Resquashes)
	}
}

func mustRead(path string) []byte {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	return data
}

func must(resp *serve.Response, err error) *serve.Response {
	if err != nil {
		fail(err)
	}
	if !resp.OK {
		fail(fmt.Errorf("collector: %s", resp.Err))
	}
	return resp
}

func coderID(name string) int {
	switch name {
	case "stream":
		return core.CoderStream
	case "lz":
		return core.CoderLZ
	default:
		fail(fmt.Errorf("unknown coder %q (want stream or lz)", name))
		return 0
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squashprofd:", err)
	os.Exit(1)
}
