// Command obscheck validates telemetry artifacts produced by the other
// tools: a Chrome trace-event JSON from -trace (well-formed, carries the
// required pipeline spans) and a metrics JSON from -metrics / /metrics.json
// (parses as a registry snapshot, carries the required counter families).
// CI runs it over the obs smoke artifacts; exit status is non-zero on any
// missing span or metric.
//
// Usage:
//
//	obscheck -trace squash.trace.json
//	obscheck -metrics squash.metrics.json
//	obscheck -trace t.json -span squash -span region.encode -metrics m.json -metric squash_runs_total
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// traceFile mirrors the Chrome trace-event JSON object form.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name  string   `json:"name"`
	Phase string   `json:"ph"`
	Ts    *float64 `json:"ts,omitempty"`
	Dur   *float64 `json:"dur,omitempty"`
	PID   int      `json:"pid"`
	TID   int      `json:"tid"`
}

// metricsFile mirrors obs.Snapshot's JSON shape loosely: named counter,
// gauge, and histogram leaves.
type metricsFile struct {
	Counters []struct {
		Name  string `json:"name"`
		Value uint64 `json:"value"`
	} `json:"counters"`
	Gauges []struct {
		Name string `json:"name"`
	} `json:"gauges"`
	Histograms []struct {
		Name string `json:"name"`
	} `json:"histograms"`
}

type listFlag []string

func (l *listFlag) String() string     { return fmt.Sprint([]string(*l)) }
func (l *listFlag) Set(v string) error { *l = append(*l, v); return nil }

func main() {
	tracePath := flag.String("trace", "", "Chrome trace-event JSON file to validate")
	metricsPath := flag.String("metrics", "", "metrics JSON file to validate")
	var wantSpans, wantMetrics listFlag
	flag.Var(&wantSpans, "span", "require a span with this name (repeatable; defaults cover the squash pipeline)")
	flag.Var(&wantMetrics, "metric", "require a counter with this name (repeatable; defaults cover the squash pipeline)")
	flag.Parse()
	if *tracePath == "" && *metricsPath == "" {
		fmt.Fprintln(os.Stderr, "usage: obscheck [-trace f.json [-span NAME]...] [-metrics f.json [-metric NAME]...]")
		os.Exit(2)
	}

	failed := false
	if *tracePath != "" {
		if len(wantSpans) == 0 {
			wantSpans = listFlag{"squash", "cfg.decode", "region.select", "region.encode", "build.link"}
		}
		if err := checkTrace(*tracePath, wantSpans); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: trace: %v\n", err)
			failed = true
		} else {
			fmt.Printf("trace %s ok (%d required spans present)\n", *tracePath, len(wantSpans))
		}
	}
	if *metricsPath != "" {
		if len(wantMetrics) == 0 {
			wantMetrics = listFlag{"squash_runs_total", "squash_regions_total",
				"squash_input_bytes_total", "squash_output_bytes_total", "squash_stream_bits_total"}
		}
		if err := checkMetrics(*metricsPath, wantMetrics); err != nil {
			fmt.Fprintf(os.Stderr, "obscheck: metrics: %v\n", err)
			failed = true
		} else {
			fmt.Printf("metrics %s ok (%d required counters present)\n", *metricsPath, len(wantMetrics))
		}
	}
	if failed {
		os.Exit(1)
	}
}

func checkTrace(path string, want []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("not valid trace JSON: %w", err)
	}
	spans := map[string]int{}
	for _, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 {
				return fmt.Errorf("span %q has a missing or negative ts", ev.Name)
			}
			if ev.Dur == nil || *ev.Dur < 0 {
				return fmt.Errorf("span %q has a missing or negative dur", ev.Name)
			}
			spans[ev.Name]++
		case "M":
			// Metadata (process/thread names) — any shape is fine.
		default:
			return fmt.Errorf("unexpected event phase %q", ev.Phase)
		}
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace has no complete (ph=X) events")
	}
	for _, name := range want {
		if spans[name] == 0 {
			return fmt.Errorf("required span %q absent (have %d span names)", name, len(spans))
		}
	}
	return nil
}

func checkMetrics(path string, want []string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var mf metricsFile
	if err := json.Unmarshal(data, &mf); err != nil {
		return fmt.Errorf("not valid metrics JSON: %w", err)
	}
	have := map[string]uint64{}
	for _, c := range mf.Counters {
		have[c.Name] += c.Value
	}
	for _, name := range want {
		if have[name] == 0 {
			return fmt.Errorf("required counter %q absent or zero (have %d counters)", name, len(mf.Counters))
		}
	}
	return nil
}
