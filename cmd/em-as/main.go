// Command em-as assembles EM32 assembly source into a relocatable object
// (default) or a linked executable image.
//
// Usage:
//
//	em-as prog.s -o prog.o          # assemble
//	em-as -link -entry main prog.s -o prog.exe
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/objfile"
)

func main() {
	out := flag.String("o", "", "output file (default: input with .o or .exe suffix)")
	link := flag.Bool("link", false, "link the object into an executable image")
	entry := flag.String("entry", "main", "entry symbol when linking")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: em-as [-link] [-entry sym] [-o out] prog.s")
		os.Exit(2)
	}
	in := flag.Arg(0)
	src, err := os.ReadFile(in)
	if err != nil {
		fail(err)
	}
	obj, err := asm.Assemble(string(src))
	if err != nil {
		fail(err)
	}
	name := *out
	if name == "" {
		name = in + ".o"
		if *link {
			name = in + ".exe"
		}
	}
	f, err := os.Create(name)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	if *link {
		im, err := objfile.Link(*entry, obj)
		if err != nil {
			fail(err)
		}
		if _, err := im.WriteTo(f); err != nil {
			fail(err)
		}
		fmt.Printf("%s: %d instructions, %d data bytes, entry %#x\n",
			name, len(im.Text), len(im.Data), im.Entry)
		return
	}
	if _, err := obj.WriteTo(f); err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d instructions, %d data bytes, %d symbols, %d relocations\n",
		name, len(obj.Text), len(obj.Data), len(obj.Symbols), len(obj.Relocs))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "em-as:", err)
	os.Exit(1)
}
