// Command squashctl is the operator CLI for a squashrouter cluster. It
// speaks the daemon wire protocol to the router's admin plane (either
// listener) and exposes the fleet controls:
//
//	squashctl -connect tcp:127.0.0.1:7701 list            # per-backend state table
//	squashctl -connect tcp:127.0.0.1:7701 stats           # merged fleet snapshot (JSON)
//	squashctl -connect tcp:127.0.0.1:7701 drain unix:/tmp/sq2.sock
//	squashctl -connect tcp:127.0.0.1:7701 undrain unix:/tmp/sq2.sock
//	squashctl -connect tcp:127.0.0.1:7701 ping
//
// -json switches list to the raw cluster snapshot, for scripts.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	connect := flag.String("connect", "", "router address (main or -admin listener)")
	proto := flag.Int("proto", 0, "pin the wire protocol version (0 negotiates, preferring v2)")
	asJSON := flag.Bool("json", false, "list: print the raw cluster snapshot as JSON")
	flag.Parse()

	if *connect == "" || flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: squashctl -connect ADDR (list | stats | drain BACKEND | undrain BACKEND | ping)")
		os.Exit(2)
	}

	cl, err := serve.DialClientProto(*connect, *proto)
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	switch cmd := flag.Arg(0); cmd {
	case "list":
		resp := must(cl.Do(&serve.Request{Op: serve.OpCluster}))
		if *asJSON {
			printJSON(resp.Cluster)
			return
		}
		printCluster(resp.Cluster)

	case "stats":
		resp := must(cl.Do(&serve.Request{Op: serve.OpStats}))
		printJSON(resp.Server)

	case "drain", "undrain":
		if flag.NArg() != 2 {
			fail(fmt.Errorf("%s needs a backend address argument", cmd))
		}
		op := serve.OpDrain
		if cmd == "undrain" {
			op = serve.OpUndrain
		}
		resp := must(cl.Do(&serve.Request{Op: op, Backend: flag.Arg(1)}))
		fmt.Printf("%sed %s\n", cmd, flag.Arg(1))
		printCluster(resp.Cluster)

	case "ping":
		start := time.Now()
		must(cl.Do(&serve.Request{Op: serve.OpPing}))
		fmt.Printf("router at %s is up, proto v%d (%s)\n", *connect, cl.Proto(), time.Since(start).Round(time.Microsecond))

	default:
		fail(fmt.Errorf("unknown command %q (want list, stats, drain, undrain, or ping)", cmd))
	}
}

// printCluster renders the per-backend table: state, traffic, failure
// streaks, probe age, and each backend's own result-cache hit rate.
func printCluster(cs *serve.ClusterSnapshot) {
	if cs == nil {
		fail(fmt.Errorf("response carried no cluster snapshot (is %q a squashrouter?)", "-connect"))
	}
	fmt.Printf("policy: %s, %d backends\n", cs.Policy, len(cs.Backends))
	fmt.Printf("%-28s %-9s %9s %9s %7s %6s %10s %9s\n",
		"BACKEND", "STATE", "REQUESTS", "ERRORS", "INFLT", "FAILS", "CHECKED", "HITRATE")
	for _, b := range cs.Backends {
		checked := "never"
		if b.SinceCheckSec >= 0 {
			checked = fmt.Sprintf("%.1fs ago", b.SinceCheckSec)
		}
		hitRate := "-"
		if s := b.Stats; s != nil {
			if total := s.SquashCacheHits + s.SquashCacheMisses; total > 0 {
				hitRate = fmt.Sprintf("%5.1f%%", 100*float64(s.SquashCacheHits)/float64(total))
			}
		}
		fmt.Printf("%-28s %-9s %9d %9d %7d %6d %10s %9s\n",
			b.Addr, b.State, b.Requests, b.Errors, b.InFlight, b.ConsecFails, checked, hitRate)
	}
	if m := cs.Merged; m != nil {
		total := m.SquashCacheHits + m.SquashCacheMisses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(m.SquashCacheHits) / float64(total)
		}
		fmt.Printf("merged: errors=%d timeouts=%d squash_cache=%d/%d (%.1f%% hit) prep_errors=%d\n",
			m.Errors, m.Timeouts, m.SquashCacheHits, total, rate, m.PrepErrors)
	}
}

func printJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fail(err)
	}
}

func must(resp *serve.Response, err error) *serve.Response {
	if err != nil {
		fail(err)
	}
	if !resp.OK {
		fail(fmt.Errorf("router: %s", resp.Err))
	}
	return resp
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squashctl:", err)
	os.Exit(1)
}
