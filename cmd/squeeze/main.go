// Command squeeze compacts a relocatable object: unreachable code and
// no-op elimination plus procedural abstraction, reproducing the baseline
// compactor the paper's squash tool builds on ([7] in the paper).
//
// Usage:
//
//	squeeze prog.o -o prog.sq.o
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cfg"
	"repro/internal/objfile"
	"repro/internal/squeeze"
)

func main() {
	out := flag.String("o", "", "output object (default: input with .sq.o suffix)")
	entry := flag.String("entry", "main", "program entry symbol")
	noUnreach := flag.Bool("no-unreachable", false, "skip unreachable code elimination")
	noNops := flag.Bool("no-nops", false, "skip no-op elimination")
	noPA := flag.Bool("no-abstraction", false, "skip procedural abstraction")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: squeeze [-o out.o] prog.o")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	obj, err := objfile.ReadObject(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	p, err := cfg.Build(obj, *entry)
	if err != nil {
		fail(err)
	}
	st, err := squeeze.RunOpts(p, squeeze.Options{
		NoUnreachable: *noUnreach,
		NoNops:        *noNops,
		NoAbstraction: *noPA,
	})
	if err != nil {
		fail(err)
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		fail(err)
	}
	name := *out
	if name == "" {
		name = flag.Arg(0) + ".sq.o"
	}
	of, err := os.Create(name)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	if _, err := sqObj.WriteTo(of); err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d -> %d instructions (%.1f%% reduction)\n",
		name, st.InputInsts, st.OutputInsts, 100*st.Reduction())
	fmt.Printf("  unreachable removed: %d insts (%d funcs, %d blocks)\n",
		st.InstsUnreachable, st.FuncsRemoved, st.BlocksRemoved)
	fmt.Printf("  no-ops removed: %d\n", st.NopsRemoved)
	fmt.Printf("  procedural abstraction: %d functions, %d insts saved\n",
		st.AbstractedFuncs, st.AbstractedSavings)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squeeze:", err)
	os.Exit(1)
}
