// Command squashrouter fronts a fleet of squashd backends with one
// daemon-protocol endpoint. It speaks the same v1/v2 wire protocol as
// squashd — any serve client (squashd -connect, squashload, squashctl)
// works against it unchanged — and forwards each request to a backend
// picked by the routing policy, over pooled connections. The default
// policy shards by content hash (rendezvous hashing over the squash
// result key), so each backend's warm result cache stays hot for its
// share of the key space; batches are split per shard and reassembled in
// item order. Backends are health-checked and marked down after
// consecutive failures; failed requests re-route to the next-ranked live
// backend, so killing a backend mid-stream is invisible to clients.
//
//	squashrouter -listen tcp:127.0.0.1:7700 \
//	    -backends unix:/tmp/sq1.sock,unix:/tmp/sq2.sock,unix:/tmp/sq3.sock \
//	    -route hash
//
// The admin plane (cluster snapshot, drain/undrain) answers on the main
// listener and, when -admin is set, on a second listener reserved for
// operators; cmd/squashctl is its CLI.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	listen := flag.String("listen", "", "client-facing address (unix:/path or tcp:host:port)")
	admin := flag.String("admin", "", "optional second listener for the admin plane (same protocol; squashctl)")
	backends := flag.String("backends", "", "comma-separated squashd addresses to fan out to")
	route := flag.String("route", "hash", "routing policy: hash (content shard), least-conn, or ordered")
	checkEvery := flag.Duration("check-interval", 2*time.Second, "health-probe period")
	checkTimeout := flag.Duration("check-timeout", time.Second, "health-probe timeout")
	failAfter := flag.Int("fail-after", 3, "consecutive failures (probes or requests) before a backend is marked down")
	retries := flag.Int("retries", 2, "extra live backends to try after a transport failure")
	backendTimeout := flag.Duration("backend-timeout", 2*time.Minute, "per-forward exchange timeout (0 = none)")
	backendProto := flag.Int("backend-proto", 0, "pin the wire protocol toward backends (0 negotiates, preferring v2)")
	maxIdle := flag.Int("max-idle", 4, "pooled idle connections per backend")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json, and /debug/pprof on this host:port")
	protoMax := flag.Int("proto-max", 0, "highest wire protocol version to accept from clients (0 = latest)")
	noPool := flag.Bool("nopool", false, "disable frame-buffer pooling (identical behavior)")
	flag.Parse()
	if *noPool {
		serve.SetPooling(false)
	}

	if *listen == "" || *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: squashrouter -listen ADDR -backends ADDR,ADDR,... [-route hash|least-conn|ordered]")
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}

	r, err := cluster.New(cluster.Config{
		Backends:       addrs,
		Policy:         *route,
		CheckInterval:  *checkEvery,
		CheckTimeout:   *checkTimeout,
		FailAfter:      *failAfter,
		Retries:        *retries,
		BackendTimeout: *backendTimeout,
		BackendProto:   *backendProto,
		MaxIdle:        *maxIdle,
	})
	if err != nil {
		fail(err)
	}
	r.Start()
	defer r.Stop()

	// The front is a stock serve.Server with the squash pipeline replaced
	// by the router's Handle: listeners, codec negotiation, request
	// metrics, and graceful drain all come from the daemon machinery.
	rec := &obs.Recorder{Metrics: obs.NewRegistry()}
	s := serve.NewServer(serve.Options{Handler: r.Handle, Obs: rec, MaxProto: *protoMax})

	serveDone := make(chan error, 2)
	listeners := 1
	ln, err := serve.Listen(*listen)
	if err != nil {
		fail(err)
	}
	go func() { serveDone <- s.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "squashrouter: listening on %s, %d backends, policy %s\n", *listen, len(addrs), r.Policy())
	if *admin != "" {
		aln, err := serve.Listen(*admin)
		if err != nil {
			fail(err)
		}
		listeners++
		go func() { serveDone <- s.Serve(aln) }()
		fmt.Fprintf(os.Stderr, "squashrouter: admin plane on %s\n", *admin)
	}

	var httpSrv *http.Server
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		reg := s.Obs().Metrics
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			reg.WritePrometheus(w)
		})
		mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			reg.WriteJSON(w)
		})
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		httpSrv = &http.Server{Addr: *metricsAddr, Handler: mux}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "squashrouter: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "squashrouter: metrics and pprof on http://%s\n", *metricsAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "squashrouter: %s, draining in-flight requests\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr := s.Shutdown(ctx)
		if httpSrv != nil {
			httpSrv.Shutdown(ctx)
		}
		for i := 0; i < listeners; i++ {
			<-serveDone
		}
		if shutdownErr != nil {
			fmt.Fprintf(os.Stderr, "squashrouter: shutdown: %v\n", shutdownErr)
			os.Exit(1)
		}
	case err := <-serveDone:
		if err != nil && err != serve.ErrServerClosed {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squashrouter:", err)
	os.Exit(1)
}
