// Command mediabench emits the synthetic benchmark suite: assembly source,
// profiling input, timing input, and pathology input (a workload-shift
// stream dominated by profile-cold trigger bytes) per program, ready for
// the em-as/squeeze/em-run/squash pipeline.
//
// Usage:
//
//	mediabench -dir bench/            # write all eleven benchmarks
//	mediabench -dir bench/ -only gsm  # one benchmark
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/mediabench"
)

func main() {
	dir := flag.String("dir", "mediabench-out", "output directory")
	only := flag.String("only", "", "emit a single benchmark by name")
	list := flag.Bool("list", false, "list benchmark names and exit")
	flag.Parse()

	if *list {
		for _, s := range mediabench.Specs() {
			fmt.Printf("%-10s input %6d insts, squeeze target %6d\n",
				s.Name, s.TargetInput, s.TargetSqueeze)
		}
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fail(err)
	}
	for _, s := range mediabench.Specs() {
		if *only != "" && s.Name != *only {
			continue
		}
		base := filepath.Join(*dir, s.Name)
		if err := os.WriteFile(base+".s", []byte(s.Generate()), 0o644); err != nil {
			fail(err)
		}
		if err := os.WriteFile(base+".prof.in", s.ProfilingInput(), 0o644); err != nil {
			fail(err)
		}
		if err := os.WriteFile(base+".time.in", s.TimingInput(), 0o644); err != nil {
			fail(err)
		}
		if err := os.WriteFile(base+".path.in", s.PathologyInput(), 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %s.{s,prof.in,time.in,path.in}\n", base)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mediabench:", err)
	os.Exit(1)
}
