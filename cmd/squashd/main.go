// Command squashd is the serve-mode squash daemon. In server mode it
// listens on a Unix or TCP socket, runs the parallel squash pipeline for
// each request, and keeps warm state — finished squash results keyed by
// content hash, plus the experiments preparation cache — so repeated
// requests skip the expensive work. Output is byte-identical to one-shot
// cmd/squash for the same object, profile, and configuration.
//
// Server:
//
//	squashd -listen unix:/tmp/squashd.sock -workers 4 -timeout 60s
//
// Client (mirrors cmd/squash's flags; writes the image where -o says):
//
//	squashd -connect unix:/tmp/squashd.sock -profile prog.prof prog.sq.o -o prog.sqz.exe
//	squashd -connect unix:/tmp/squashd.sock -bench adpcm_enc
//	squashd -connect unix:/tmp/squashd.sock -batch adpcm,gsm,prog.o:prog.prof -out-dir out/
//	squashd -connect unix:/tmp/squashd.sock -stats
//	squashd -connect unix:/tmp/squashd.sock -ping
//
// A server started with -record stream.jsonl appends each request arrival
// to that file; cmd/squashload replays such a stream at 1x/2x/Nx the
// recorded rate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/regions"
	"repro/internal/serve"
)

func main() {
	// Mode selection.
	listen := flag.String("listen", "", "serve on this address (unix:/path or tcp:host:port)")
	connect := flag.String("connect", "", "act as a client of the daemon at this address")

	// Server options.
	srvWorkers := flag.Int("serve-workers", 0, "concurrent squash requests (0 = one per CPU)")
	timeout := flag.Duration("timeout", 2*time.Minute, "per-request timeout (0 = none)")
	cacheEntries := flag.Int("cache-entries", 64, "warm squash-result cache size (negative disables)")
	cacheBytes := flag.Int64("cache-bytes", 0, "additional byte budget for the result cache's images (0 = entry-count bound only)")
	prepDir := flag.String("prep-cache", "", "on-disk experiments prep cache dir for -bench requests")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (Prometheus), /metrics.json, and /debug/pprof on this host:port")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of request and pipeline spans here at shutdown")
	record := flag.String("record", "", "append each request arrival (content hash / bench key, offset) to this JSONL file for cmd/squashload replay")
	protoMax := flag.Int("proto-max", 0, "highest wire protocol version to accept (0 = latest; 1 makes the daemon answer v2 openings with a downgrade error, like a pre-v2 build)")

	// Client requests.
	stats := flag.Bool("stats", false, "client: print the server's stats snapshot as JSON")
	ping := flag.Bool("ping", false, "client: check daemon liveness")
	bench := flag.String("bench", "", "client: squash a named mediabench benchmark prepared server-side")
	scale := flag.Float64("scale", 1.0, "client: input scale for -bench")
	batch := flag.String("batch", "", "client: comma-separated batch items, each a bench name or OBJ:PROFILE file pair, sent as one frame")
	outDir := flag.String("out-dir", ".", "client: directory for -batch images (batch-NN.sqz.exe)")
	proto := flag.Int("proto", 0, "client: pin the wire protocol version (1 or 2; 0 negotiates, preferring v2)")
	noImage := flag.Bool("noimage", false, "client: stats-only requests — the server runs the squash but omits image bytes from the response")

	// Squash configuration, mirroring cmd/squash.
	profIn := flag.String("profile", "", "basic-block profile from em-run -profile")
	out := flag.String("o", "", "output image (default: input with .sqz.exe suffix)")
	theta := flag.Float64("theta", 0.0, "cold-code threshold θ (fraction of dynamic instructions)")
	k := flag.Int("K", 512, "runtime buffer bound in bytes")
	gamma := flag.Float64("gamma", 0.66, "assumed compression factor for region selection")
	noPack := flag.Bool("no-pack", false, "disable region packing")
	loopAware := flag.Bool("loop-aware", false, "seed regions from natural loops (§9 extension)")
	interpret := flag.Bool("interpret", false, "interpret compressed code in place instead of decompressing (§8 alternative)")
	noBufferSafe := flag.Bool("no-buffersafe", false, "disable buffer-safe call analysis")
	noUnswitch := flag.Bool("no-unswitch", false, "disable jump-table unswitching")
	mtf := flag.Bool("mtf", false, "use the move-to-front stream coder variant")
	coder := flag.String("coder", "stream", "region coder: stream (split-stream, §3) or lz (dictionary, §8)")
	ctStubs := flag.Bool("compile-time-stubs", false, "materialize restore stubs statically (ablation)")
	stubCap := flag.Int("stub-capacity", 16, "runtime restore-stub slots")
	workers := flag.Int("workers", 0, "worker goroutines for one squash (0 = one per CPU); output is byte-identical at any count")
	noPool := flag.Bool("nopool", false, "disable buffer pooling in the pipeline and the daemon's request scratch (identical output)")
	flag.Parse()
	if *noPool {
		core.SetPooling(false)
		serve.SetPooling(false)
	}

	switch {
	case *listen != "" && *connect != "":
		fail(fmt.Errorf("-listen and -connect are mutually exclusive"))
	case *listen != "":
		runServer(*listen, serve.Options{
			Workers:      *srvWorkers,
			Timeout:      *timeout,
			CacheEntries: *cacheEntries,
			CacheBytes:   *cacheBytes,
			PrepCacheDir: *prepDir,
			MaxProto:     *protoMax,
		}, *metricsAddr, *traceOut, *record)
	case *connect != "":
		conf := core.Config{
			Theta:                   *theta,
			BufferSafe:              !*noBufferSafe,
			Unswitch:                !*noUnswitch,
			MTF:                     *mtf,
			Coder:                   coderID(*coder),
			Interpret:               *interpret,
			CompileTimeRestoreStubs: *ctStubs,
			StubCapacity:            *stubCap,
			Workers:                 *workers,
		}
		conf.Regions.K = *k
		conf.Regions.Gamma = *gamma
		conf.Regions.Pack = !*noPack
		if *loopAware {
			conf.Regions.Strategy = regions.StrategyLoopAware
		}
		runClient(*connect, clientArgs{
			stats: *stats, ping: *ping,
			bench: *bench, scale: *scale,
			batch: *batch, outDir: *outDir,
			profIn: *profIn, out: *out, conf: conf,
			proto: *proto, noImage: *noImage,
		})
	default:
		fmt.Fprintln(os.Stderr, "usage: squashd -listen ADDR [server flags]")
		fmt.Fprintln(os.Stderr, "       squashd -connect ADDR (-stats | -ping | -bench NAME | -batch ITEMS | -profile prog.prof prog.o) [squash flags]")
		os.Exit(2)
	}
}

func runServer(addr string, opts serve.Options, metricsAddr, traceOut, recordPath string) {
	rec := &obs.Recorder{Metrics: obs.NewRegistry()}
	if traceOut != "" {
		rec.Trace = obs.NewTracer()
	}
	opts.Obs = rec

	if recordPath != "" {
		f, err := os.OpenFile(recordPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		opts.Record = serve.NewStreamRecorder(f)
		fmt.Fprintf(os.Stderr, "squashd: recording request stream to %s\n", recordPath)
	}

	s := serve.NewServer(opts)
	ln, err := serve.Listen(addr)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "squashd: listening on %s\n", addr)

	var httpSrv *http.Server
	if metricsAddr != "" {
		httpSrv = &http.Server{Addr: metricsAddr, Handler: metricsMux(s)}
		go func() {
			if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "squashd: metrics server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "squashd: metrics and pprof on http://%s\n", metricsAddr)
	}

	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(os.Stderr, "squashd: %s, draining in-flight requests\n", got)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr := s.Shutdown(ctx)
		if httpSrv != nil {
			httpSrv.Shutdown(ctx)
		}
		writeTrace(rec, traceOut)
		if shutdownErr != nil {
			fmt.Fprintf(os.Stderr, "squashd: shutdown: %v\n", shutdownErr)
			os.Exit(1)
		}
		<-serveDone
	case err := <-serveDone:
		writeTrace(rec, traceOut)
		if err != nil && err != serve.ErrServerClosed {
			fail(err)
		}
	}
}

// metricsMux exposes the daemon's registry in both export formats plus the
// standard pprof handlers (explicitly wired: the mux is private, so the
// net/http/pprof side effects on DefaultServeMux don't apply).
func metricsMux(s *serve.Server) *http.ServeMux {
	reg := s.Obs().Metrics
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeTrace dumps the accumulated spans as Chrome trace-event JSON and
// prints the human-readable tree to stderr. No-op without -trace.
func writeTrace(rec *obs.Recorder, path string) {
	if path == "" || rec.Trace == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "squashd: trace: %v\n", err)
		return
	}
	defer f.Close()
	if err := rec.Trace.WriteChrome(f); err != nil {
		fmt.Fprintf(os.Stderr, "squashd: trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "squashd: wrote trace to %s\n%s", path, rec.Trace.Summary())
}

type clientArgs struct {
	stats, ping   bool
	bench         string
	scale         float64
	batch, outDir string
	profIn, out   string
	conf          core.Config
	proto         int
	noImage       bool
}

func runClient(addr string, a clientArgs) {
	cl, err := serve.DialClientProto(addr, a.proto)
	if err != nil {
		fail(err)
	}
	defer cl.Close()

	switch {
	case a.stats:
		resp := must(cl.Do(&serve.Request{Op: serve.OpStats}))
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(resp.Server); err != nil {
			fail(err)
		}

	case a.ping:
		start := time.Now()
		must(cl.Do(&serve.Request{Op: serve.OpPing}))
		fmt.Printf("squashd at %s is up, proto v%d (%s)\n", addr, cl.Proto(), time.Since(start).Round(time.Microsecond))

	case a.batch != "":
		runBatch(cl, a)

	case a.bench != "":
		resp := must(cl.Do(&serve.Request{
			Op: serve.OpBench, Bench: a.bench, Scale: a.scale, Config: &a.conf, NoImage: a.noImage,
		}))
		name := a.out
		if name == "" {
			name = a.bench + ".sqz.exe"
		}
		writeImage(name, resp)

	default:
		if flag.NArg() != 1 || a.profIn == "" {
			fail(fmt.Errorf("client squash needs -profile and one object argument"))
		}
		objBytes, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		profBytes, err := os.ReadFile(a.profIn)
		if err != nil {
			fail(err)
		}
		resp := must(cl.Do(&serve.Request{
			Op: serve.OpSquash, Obj: objBytes, Profile: profBytes, Config: &a.conf, NoImage: a.noImage,
		}))
		name := a.out
		if name == "" {
			name = flag.Arg(0) + ".sqz.exe"
		}
		writeImage(name, resp)
	}
}

// runBatch sends one OpBatch frame and writes each image to
// outDir/batch-NN.sqz.exe. Item spec: comma-separated entries, each either
// a bench name or an OBJ:PROFILE file pair (detected by the colon). Any
// failed item is reported and the exit status is nonzero, but sibling
// images are still written — per-object isolation end to end.
func runBatch(cl *serve.Client, a clientArgs) {
	var items []serve.BatchItem
	for _, spec := range strings.Split(a.batch, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		if objPath, profPath, ok := strings.Cut(spec, ":"); ok {
			objBytes, err := os.ReadFile(objPath)
			if err != nil {
				fail(err)
			}
			profBytes, err := os.ReadFile(profPath)
			if err != nil {
				fail(err)
			}
			items = append(items, serve.BatchItem{Obj: objBytes, Profile: profBytes, Config: &a.conf})
		} else {
			items = append(items, serve.BatchItem{Bench: spec, Scale: a.scale, Config: &a.conf})
		}
	}
	resp := must(cl.Do(&serve.Request{Op: serve.OpBatch, Items: items, NoImage: a.noImage}))
	if len(resp.Results) != len(items) {
		fail(fmt.Errorf("batch returned %d results for %d items", len(resp.Results), len(items)))
	}
	failed := 0
	for i, r := range resp.Results {
		if !r.OK {
			fmt.Fprintf(os.Stderr, "squashd: batch item %d failed: %s\n", i, r.Err)
			failed++
			continue
		}
		name := filepath.Join(a.outDir, fmt.Sprintf("batch-%02d.sqz.exe", i))
		if len(r.Image) > 0 {
			if err := os.WriteFile(name, r.Image, 0o644); err != nil {
				fail(err)
			}
		} else {
			name = fmt.Sprintf("batch item %d (image omitted)", i)
		}
		src := "computed"
		switch {
		case r.Shared:
			src = "shared in batch"
		case r.Cached:
			src = "warm cache"
		}
		fmt.Printf("%s: %d -> %d bytes (%.1f%% reduction), %s\n",
			name, r.Stats.InputBytes, r.Stats.SquashedBytes, 100*r.Stats.Reduction(), src)
	}
	if failed > 0 {
		fail(fmt.Errorf("%d of %d batch items failed", failed, len(items)))
	}
}

func writeImage(name string, resp *serve.Response) {
	if len(resp.Image) > 0 {
		if err := os.WriteFile(name, resp.Image, 0o644); err != nil {
			fail(err)
		}
	} else {
		name = "(image omitted)"
	}
	st := resp.Stats
	src := "computed"
	if resp.Cached {
		src = "warm cache"
	}
	fmt.Printf("%s: %d -> %d bytes (%.1f%% reduction), %s\n",
		name, st.InputBytes, st.SquashedBytes, 100*st.Reduction(), src)
	fmt.Printf("  %d regions, %d entry stubs, compression factor γ=%.3f\n",
		st.RegionCount, st.EntryStubCount, st.CompressionRatio)
}

func must(resp *serve.Response, err error) *serve.Response {
	if err != nil {
		fail(err)
	}
	if !resp.OK {
		fail(fmt.Errorf("server: %s", resp.Err))
	}
	return resp
}

func coderID(name string) int {
	switch name {
	case "stream":
		return core.CoderStream
	case "lz":
		return core.CoderLZ
	default:
		fail(fmt.Errorf("unknown coder %q (want stream or lz)", name))
		return 0
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squashd:", err)
	os.Exit(1)
}
