// Command em-dis disassembles an EM32 object or image, annotating symbols,
// relocations, and — for squashed images — the reserved runtime regions and
// the compressed-region contents.
//
// Usage:
//
//	em-dis prog.exe
//	em-dis -regions prog.sqz.exe   # also decode the compressed regions
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/objfile"
)

func main() {
	regions := flag.Bool("regions", false, "decode compressed regions of a squashed image")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: em-dis [-regions] prog.{exe,o}")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	im, err := objfile.ReadImage(bytes.NewReader(data))
	if err != nil {
		obj, oerr := objfile.ReadObject(bytes.NewReader(data))
		if oerr != nil {
			fail(fmt.Errorf("not an image (%v) or object (%v)", err, oerr))
		}
		if im, err = objfile.Link("main", obj); err != nil {
			fail(err)
		}
	}

	symAt := map[uint32][]string{}
	for _, s := range im.Symbols {
		if s.Section == objfile.SecText {
			symAt[s.Addr()] = append(symAt[s.Addr()], s.Name)
		}
	}
	for _, names := range symAt {
		sort.Strings(names)
	}

	var meta *core.Meta
	if len(im.Meta) > 0 {
		if meta, err = core.UnmarshalMeta(im.Meta); err != nil {
			fmt.Fprintf(os.Stderr, "warning: unreadable squash metadata: %v\n", err)
		}
	}

	fmt.Printf("entry %#x, %d text words, %d data bytes\n\n", im.Entry, len(im.Text), len(im.Data))
	for i, w := range im.Text {
		addr := objfile.TextBase + uint32(i*4)
		if meta != nil && addr == meta.DecompAddr {
			fmt.Printf("\n%#x: [decompressor: %d reserved words]\n", addr, core.DecompWords)
		}
		if meta != nil && addr == meta.RtBufAddr {
			fmt.Printf("\n%#x: [runtime buffer: %d bytes]\n", addr, meta.K)
		}
		if meta != nil && inReserved(meta, addr) {
			continue
		}
		for _, n := range symAt[addr] {
			fmt.Printf("%s:\n", n)
		}
		fmt.Printf("  %#08x  %08x  %s\n", addr, w, isa.Disasm(isa.Decode(w), addr))
	}

	if *regions && meta != nil {
		comp, err := meta.Compressor()
		if err != nil {
			fail(err)
		}
		fmt.Printf("\n=== compressed regions (%d, %d blob bytes, %d table bytes)\n",
			len(meta.OffsetTable), len(meta.Blob), len(meta.Tables))
		for id, off := range meta.OffsetTable {
			fmt.Printf("\nregion %d at bit offset %d:\n", id, off)
			pos := 1
			_, err := comp.Decompress(meta.Blob, int(off), func(in isa.Inst) error {
				fmt.Printf("  buf[%3d]  %s\n", pos, in)
				if in.Op == isa.OpBSRX || in.Op == isa.OpJSRX {
					pos += 2
				} else {
					pos++
				}
				return nil
			})
			if err != nil {
				fmt.Printf("  decode error: %v\n", err)
			}
		}
	}
}

// inReserved reports whether addr lies in a runtime-reserved area whose
// contents are not meaningful instructions (decompressor body, stub area,
// runtime buffer, compressed blob).
func inReserved(m *core.Meta, addr uint32) bool {
	if addr >= m.DecompAddr && addr < m.DecompAddr+core.DecompWords*4 {
		return true
	}
	if m.StubCapacity > 0 && addr >= m.StubAreaAddr &&
		addr < m.StubAreaAddr+uint32(m.StubCapacity*core.StubSlotWords*4) {
		return true
	}
	if addr >= m.RtBufAddr {
		return true // buffer and the compressed blob behind it
	}
	return false
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "em-dis:", err)
	os.Exit(1)
}
