// Command squashload drives a live squashd at controlled load and reports
// service-level throughput: req/s, p50/p90/p99 latency, and cache hit
// rates. Two modes:
//
// Replay — send a stream recorded by `squashd -record` back at a multiple
// of its recorded rate (open-loop: the schedule does not slow down when the
// daemon does, so saturation shows up in the latency tail):
//
//	squashload -connect unix:/tmp/squashd.sock -replay stream.jsonl -rate 2 -conns 8
//
// Synthetic — a closed loop of N clients hammering one request shape,
// measuring the capacity ceiling:
//
//	squashload -connect unix:/tmp/squashd.sock -bench adpcm -conns 8 -duration 10s
//	squashload -connect unix:/tmp/squashd.sock -bench adpcm -batch 16 -requests 50
//
// The JSON report (-out) feeds `benchhist -load`, which appends its metrics
// to BENCH_history.json and enforces the CI floors/ceilings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/serve"
)

func main() {
	connect := flag.String("connect", "", "daemon address (unix:/path or tcp:host:port)")
	conns := flag.Int("conns", 4, "concurrent connections")
	out := flag.String("out", "", "write the JSON report here ('-' = stdout; default none)")
	quiet := flag.Bool("q", false, "suppress progress logging")

	replay := flag.String("replay", "", "replay this JSONL stream recorded by squashd -record")
	rate := flag.Float64("rate", 1.0, "replay speed as a multiple of the recorded rate")
	fallbackBench := flag.String("fallback-bench", "", "replay inline-only entries as this named benchmark (default: skip them)")
	fallbackObj := flag.String("fallback-obj", "", "replay inline-only entries with this object file (with -fallback-profile)")
	fallbackProf := flag.String("fallback-profile", "", "profile file for -fallback-obj")

	bench := flag.String("bench", "", "synthetic: named mediabench benchmark prepared server-side")
	scale := flag.Float64("scale", 1.0, "synthetic: input scale for -bench")
	objIn := flag.String("obj", "", "synthetic: inline object file (with -profile)")
	profIn := flag.String("profile", "", "synthetic: profile file for -obj")
	batch := flag.Int("batch", 1, "synthetic: objects per frame (>1 sends batch requests)")
	duration := flag.Duration("duration", 5*time.Second, "synthetic: closed-loop run length")
	requests := flag.Int("requests", 0, "synthetic: fixed request budget instead of -duration")
	proto := flag.Int("proto", 0, "pin the wire protocol version (1 or 2; 0 negotiates, preferring v2)")
	noImage := flag.Bool("noimage", false, "stats-only requests: the server squashes but omits image bytes from responses")
	flag.Parse()

	if *connect == "" {
		fail(fmt.Errorf("-connect is required"))
	}
	opts := serve.LoadOptions{
		Addr:          *connect,
		Conns:         *conns,
		Rate:          *rate,
		FallbackBench: *fallbackBench,
		Bench:         *bench,
		Scale:         *scale,
		BatchSize:     *batch,
		Duration:      *duration,
		Requests:      *requests,
		Proto:         *proto,
		NoImage:       *noImage,
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "squashload: "+format+"\n", args...)
		}
	}
	opts.FallbackObj, opts.FallbackProfile = readPair(*fallbackObj, *fallbackProf, "-fallback-obj")
	opts.Obj, opts.Profile = readPair(*objIn, *profIn, "-obj")

	var rep *serve.LoadReport
	var err error
	switch {
	case *replay != "":
		f, ferr := os.Open(*replay)
		if ferr != nil {
			fail(ferr)
		}
		entries, rerr := serve.ReadStream(f)
		f.Close()
		if rerr != nil {
			fail(rerr)
		}
		rep, err = serve.Replay(opts, entries)
	case *bench != "" || *objIn != "":
		rep, err = serve.Synthetic(opts)
	default:
		fail(fmt.Errorf("pick a mode: -replay FILE, or -bench NAME / -obj FILE for synthetic load"))
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("mode=%s conns=%d requests=%d objects=%d errors=%d skipped=%d\n",
		rep.Mode, rep.Concurrency, rep.Requests, rep.Objects, rep.Errors, rep.Skipped)
	fmt.Printf("wall=%.2fs  req/s=%.1f  obj/s=%.1f\n", rep.DurationSec, rep.ReqPerSec, rep.ObjPerSec)
	fmt.Printf("latency ms: p50=%.2f p90=%.2f p99=%.2f max=%.2f mean=%.2f\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max, rep.Latency.Mean)
	fmt.Printf("cache hit rate: result=%.2f prep=%.2f\n", rep.CacheHitRate, rep.PrepHitRate)
	fmt.Printf("wire: proto=v%d in=%s/s out=%s/s (%d / %d bytes total)\n",
		rep.Proto, fmtBytes(rep.BytesInPerSec), fmtBytes(rep.BytesOutPerSec), rep.BytesIn, rep.BytesOut)

	if *out != "" {
		data, merr := json.MarshalIndent(rep, "", "  ")
		if merr != nil {
			fail(merr)
		}
		data = append(data, '\n')
		if *out == "-" {
			os.Stdout.Write(data)
		} else if werr := os.WriteFile(*out, data, 0o644); werr != nil {
			fail(werr)
		}
	}
	if rep.Errors > 0 {
		fail(fmt.Errorf("%d of %d requests failed", rep.Errors, rep.Requests))
	}
}

// readPair loads an obj/profile file pair; both-or-neither is enforced.
func readPair(objPath, profPath, flagName string) ([]byte, []byte) {
	if objPath == "" && profPath == "" {
		return nil, nil
	}
	if objPath == "" || profPath == "" {
		fail(fmt.Errorf("%s needs both the object and its profile file", flagName))
	}
	obj, err := os.ReadFile(objPath)
	if err != nil {
		fail(err)
	}
	prof, err := os.ReadFile(profPath)
	if err != nil {
		fail(err)
	}
	return obj, prof
}

// fmtBytes renders a byte rate for the human-readable line (the JSON
// report keeps raw values).
func fmtBytes(v float64) string {
	switch {
	case v >= 1e6:
		return fmt.Sprintf("%.2f MB", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f KB", v/1e3)
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squashload:", err)
	os.Exit(1)
}
