// Command squash is the paper's tool: it rewrites a (squeezed) object so
// that infrequently executed code is stored compressed and decompressed on
// demand at run time. The output is a linked executable image carrying the
// decompression metadata; em-run executes it.
//
// Usage:
//
//	em-run -in profile_input.bin -profile prog.prof prog.sq.o
//	squash -profile prog.prof -theta 0.0 prog.sq.o -o prog.sqz.exe
//	em-run -in timing_input.bin prog.sqz.exe
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/regions"
)

func main() {
	profIn := flag.String("profile", "", "basic-block profile from em-run -profile (required)")
	out := flag.String("o", "", "output image (default: input with .sqz.exe suffix)")
	theta := flag.Float64("theta", 0.0, "cold-code threshold θ (fraction of dynamic instructions)")
	k := flag.Int("K", 512, "runtime buffer bound in bytes")
	gamma := flag.Float64("gamma", 0.66, "assumed compression factor for region selection")
	noPack := flag.Bool("no-pack", false, "disable region packing")
	loopAware := flag.Bool("loop-aware", false, "seed regions from natural loops (§9 extension)")
	interpret := flag.Bool("interpret", false, "interpret compressed code in place instead of decompressing (§8 alternative)")
	noBufferSafe := flag.Bool("no-buffersafe", false, "disable buffer-safe call analysis")
	noUnswitch := flag.Bool("no-unswitch", false, "disable jump-table unswitching")
	mtf := flag.Bool("mtf", false, "use the move-to-front stream coder variant")
	coder := flag.String("coder", "stream", "region coder: stream (split-stream, §3) or lz (dictionary, §8)")
	ctStubs := flag.Bool("compile-time-stubs", false, "materialize restore stubs statically (ablation)")
	stubCap := flag.Int("stub-capacity", 16, "runtime restore-stub slots")
	workers := flag.Int("workers", 0, "worker goroutines for the squash pipeline (0 = one per CPU, 1 = serial); output is byte-identical at any count")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the pipeline stages here")
	metricsOut := flag.String("metrics", "", "write pipeline metrics as JSON here (\"-\" for stderr)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the squash run here")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-squash) here")
	noPool := flag.Bool("nopool", false, "disable buffer pooling in the squash pipeline (identical output; used by the CI equivalence guard)")
	flag.Parse()
	if *noPool {
		core.SetPooling(false)
	}
	if flag.NArg() != 1 || *profIn == "" {
		fmt.Fprintln(os.Stderr, "usage: squash -profile prog.prof [flags] prog.o")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	obj, err := objfile.ReadObject(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	pf, err := os.Open(*profIn)
	if err != nil {
		fail(err)
	}
	counts, err := profile.ReadCounts(pf)
	pf.Close()
	if err != nil {
		fail(err)
	}

	conf := core.Config{
		Theta:                   *theta,
		BufferSafe:              !*noBufferSafe,
		Unswitch:                !*noUnswitch,
		MTF:                     *mtf,
		Coder:                   coderID(*coder),
		Interpret:               *interpret,
		CompileTimeRestoreStubs: *ctStubs,
		StubCapacity:            *stubCap,
		Workers:                 *workers,
	}
	conf.Regions.K = *k
	conf.Regions.Gamma = *gamma
	conf.Regions.Pack = !*noPack
	if *loopAware {
		conf.Regions.Strategy = regions.StrategyLoopAware
	}

	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" {
		rec = &obs.Recorder{Metrics: obs.NewRegistry()}
		if *traceOut != "" {
			rec.Trace = obs.NewTracer()
		}
	}
	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}

	res, err := core.SquashObs(obj, counts, conf, rec)
	if err != nil {
		fail(err)
	}
	writeTelemetry(rec, *traceOut, *metricsOut)
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fail(err)
		}
	}

	name := *out
	if name == "" {
		name = flag.Arg(0) + ".sqz.exe"
	}
	of, err := os.Create(name)
	if err != nil {
		fail(err)
	}
	defer of.Close()
	if _, err := res.Image.WriteTo(of); err != nil {
		fail(err)
	}

	st := res.Stats
	fmt.Printf("%s: %d -> %d bytes (%.1f%% reduction), θ=%g K=%d\n",
		name, st.InputBytes, st.SquashedBytes, 100*st.Reduction(), *theta, *k)
	fmt.Printf("  cold %d / compressible %d / total %d instructions\n",
		st.ColdInsts, st.CompressibleInsts, st.TotalInsts)
	fmt.Printf("  %d regions, %d entry stubs, compression factor γ=%.3f\n",
		st.RegionCount, st.EntryStubCount, st.CompressionRatio)
	f7 := res.Foot
	fmt.Printf("  footprint: code %d + entry stubs %d + decompressor %d + offset table %d\n",
		f7.NeverCompressed, f7.EntryStubs, f7.Decompressor, f7.OffsetTable)
	fmt.Printf("             + compressed %d + tables %d + stub area %d + buffer %d\n",
		f7.CompressedCode, f7.CodeTables, f7.StubArea, f7.RuntimeBuffer)
	if st.Unswitched > 0 {
		fmt.Printf("  unswitched %d jump tables (%d data bytes reclaimed)\n",
			st.Unswitched, st.TableBytesReclaimed)
	}
	if st.CallsInRegions > 0 {
		fmt.Printf("  buffer-safe calls: %d / %d in compressed code\n",
			st.BufferSafeCalls, st.CallsInRegions)
	}
	if n := len(st.LoopSplitWarnings); n > 0 {
		fmt.Printf("  warning: %d loop(s) cross region boundaries; repeated\n", n)
		fmt.Printf("  decompression follows if they run hot (paper §7). First few:\n")
		for i, w := range st.LoopSplitWarnings {
			if i == 3 {
				break
			}
			fmt.Printf("    %s\n", w)
		}
	}
}

// writeTelemetry exports the run's spans (Chrome JSON plus a tree summary
// on stderr) and its metrics snapshot. No-op with a nil recorder.
func writeTelemetry(rec *obs.Recorder, traceOut, metricsOut string) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail(err)
		}
		if err := rec.Trace.WriteChrome(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprint(os.Stderr, rec.Trace.Summary())
	}
	if metricsOut != "" {
		w := os.Stderr
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := rec.Metrics.WriteJSON(w); err != nil {
			fail(err)
		}
	}
}

func coderID(name string) int {
	switch name {
	case "stream":
		return core.CoderStream
	case "lz":
		return core.CoderLZ
	default:
		fail(fmt.Errorf("unknown coder %q (want stream or lz)", name))
		return 0
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "squash:", err)
	os.Exit(1)
}
