// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all -scale 1.0 -o EXPERIMENTS-report.txt
//	experiments -exp fig6
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	scale := flag.Float64("scale", 1.0, "input scale: 1.0 = full paper-sized runs, 0.05 = quick")
	out := flag.String("o", "", "also write the report to this file")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "worker goroutines for suite preparation and matrix cells (0 = one per CPU, 1 = serial); results are identical at any count")
	cache := flag.String("cache", "", "directory for the content-keyed preparation cache: assembled+squeezed objects and profiles are reused across runs while programs and inputs are unchanged (delete the directory after toolchain changes)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of suite preparation and pipeline stages here")
	metricsOut := flag.String("metrics", "", "write accumulated pipeline metrics as JSON here (\"-\" for stderr)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run here")
	memProfile := flag.String("memprofile", "", "write a heap profile (post-run) here")
	noPool := flag.Bool("nopool", false, "disable buffer pooling in the squash pipeline (identical results)")
	flag.Parse()
	if *noPool {
		core.SetPooling(false)
	}

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" {
		rec = &obs.Recorder{Metrics: obs.NewRegistry()}
		if *traceOut != "" {
			rec.Trace = obs.NewTracer()
		}
	}
	if *cpuProfile != "" {
		cf, err := os.Create(*cpuProfile)
		if err != nil {
			fail(err)
		}
		defer cf.Close()
		if err := pprof.StartCPUProfile(cf); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing suite (scale %.2f): generate, assemble, squeeze, profile...\n", *scale)
	suite, err := experiments.LoadCachedObs(*scale, *workers, *cache, rec)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "suite ready in %v (%d/%d benchmarks from cache)\n",
		time.Since(start).Round(time.Millisecond), suite.PrepCacheHits, len(suite.Benches))

	report, err := experiments.Run(suite, *exp)
	if err != nil {
		fail(err)
	}
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
	writeTelemetry(rec, *traceOut, *metricsOut)
	if *memProfile != "" {
		if err := obs.WriteHeapProfile(*memProfile); err != nil {
			fail(err)
		}
	}
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
}

// writeTelemetry exports the run's spans (Chrome JSON plus a tree summary
// on stderr) and the accumulated metrics. No-op with a nil recorder.
func writeTelemetry(rec *obs.Recorder, traceOut, metricsOut string) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fail(err)
		}
		if err := rec.Trace.WriteChrome(f); err != nil {
			fail(err)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "trace written to %s\n", traceOut)
	}
	if metricsOut != "" {
		w := os.Stderr
		if metricsOut != "-" {
			f, err := os.Create(metricsOut)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			w = f
		}
		if err := rec.Metrics.WriteJSON(w); err != nil {
			fail(err)
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
