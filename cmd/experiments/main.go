// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -exp all -scale 1.0 -o EXPERIMENTS-report.txt
//	experiments -exp fig6
//	experiments -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (see -list)")
	scale := flag.Float64("scale", 1.0, "input scale: 1.0 = full paper-sized runs, 0.05 = quick")
	out := flag.String("o", "", "also write the report to this file")
	list := flag.Bool("list", false, "list experiment names and exit")
	workers := flag.Int("workers", 0, "worker goroutines for suite preparation and matrix cells (0 = one per CPU, 1 = serial); results are identical at any count")
	cache := flag.String("cache", "", "directory for the content-keyed preparation cache: assembled+squeezed objects and profiles are reused across runs while programs and inputs are unchanged (delete the directory after toolchain changes)")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.Names(), "\n"))
		return
	}
	start := time.Now()
	fmt.Fprintf(os.Stderr, "preparing suite (scale %.2f): generate, assemble, squeeze, profile...\n", *scale)
	suite, err := experiments.LoadCached(*scale, *workers, *cache)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "suite ready in %v (%d/%d benchmarks from cache)\n",
		time.Since(start).Round(time.Millisecond), suite.PrepCacheHits, len(suite.Benches))

	report, err := experiments.Run(suite, *exp)
	if err != nil {
		fail(err)
	}
	fmt.Print(report)
	if *out != "" {
		if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *out)
	}
	fmt.Fprintf(os.Stderr, "total time %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
