// Command em-run executes an EM32 binary on the simulator. It accepts a
// linked image (.exe) or a relocatable object (.o, linked on the fly with
// entry "main"). Squashed images (carrying decompression metadata) get the
// runtime decompressor installed automatically.
//
// Usage:
//
//	em-run prog.exe < input > output
//	em-run -in input.bin -profile prog.prof prog.o
//	em-run -stats prog.exe
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/vm"
)

func main() {
	inFile := flag.String("in", "", "input byte stream file (default: stdin)")
	profOut := flag.String("profile", "", "write a basic-block execution profile to this file")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	statsJSON := flag.String("stats-json", "", "write execution statistics as JSON to this file (\"-\" for stderr; program output stays on stdout)")
	limit := flag.Uint64("limit", 0, "instruction limit (0 = default)")
	noFast := flag.Bool("nofastpath", false, "force the reference decode/dispatch paths (identical simulated behaviour; used by the CI equivalence guard)")
	noPool := flag.Bool("nopool", false, "disable buffer pooling in the runtime decompressor (identical simulated behaviour; used by the CI equivalence guard)")
	flag.Parse()
	if *noPool {
		core.SetPooling(false)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: em-run [-in file] [-profile out] [-stats] prog.{exe,o}")
		os.Exit(2)
	}

	im, err := loadBinary(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	var input []byte
	if *inFile != "" {
		if input, err = os.ReadFile(*inFile); err != nil {
			fail(err)
		}
	} else if input, err = io.ReadAll(os.Stdin); err != nil {
		fail(err)
	}

	m := vm.New(im, input)
	m.MaxInstructions = *limit
	m.DisableFastPath = *noFast
	if *profOut != "" {
		m.EnableProfile()
	}
	var rt *core.Runtime
	if len(im.Meta) > 0 {
		meta, err := core.UnmarshalMeta(im.Meta)
		if err != nil {
			fail(fmt.Errorf("binary carries unreadable squash metadata: %w", err))
		}
		if rt, err = core.NewRuntime(meta); err != nil {
			fail(err)
		}
		rt.SetFastPath(!*noFast)
		rt.Install(m)
	}
	if err := m.Run(); err != nil {
		fail(err)
	}
	os.Stdout.Write(m.Output)

	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fail(err)
		}
		if _, err := profile.Counts(m.Profile).WriteTo(f); err != nil {
			fail(err)
		}
		f.Close()
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "exit status %d, %d instructions, %d cycles\n",
			m.Status, m.Instructions, m.Cycles)
		if rt != nil {
			fmt.Fprintf(os.Stderr, "decompressions %d, bits read %d, restore stubs created %d (max live %d)\n",
				rt.Stats.Decompressions, rt.Stats.BitsRead, rt.Stats.CreateStubMisses, rt.Stats.MaxLiveStubs)
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, m, rt); err != nil {
			fail(err)
		}
	}
	os.Exit(int(m.Status))
}

// runStats is the -stats-json payload: the simulated observables (status,
// instructions, cycles, runtime stats — identical with the fast paths on or
// off) plus host-side telemetry (vm fast-path counters, decode memo, and
// Huffman decode-path counts), which may differ under -nofastpath.
type runStats struct {
	ExitStatus   int    `json:"exit_status"`
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	VM        vm.Counters `json:"vm"`
	FastSteps uint64      `json:"fast_steps"`

	Runtime *core.RuntimeStats     `json:"runtime,omitempty"`
	Memo    *core.RuntimeTelemetry `json:"memo,omitempty"`
	Huffman *huffman.DecodeStats   `json:"huffman,omitempty"`
}

func writeStatsJSON(path string, m *vm.Machine, rt *core.Runtime) error {
	st := runStats{
		ExitStatus:   int(m.Status),
		Instructions: m.Instructions,
		Cycles:       m.Cycles,
		VM:           m.Telem,
		FastSteps:    m.FastSteps(),
	}
	if rt != nil {
		st.Runtime = &rt.Stats
		st.Memo = &rt.Telem
		ds := rt.DecodeStats()
		st.Huffman = &ds
	}
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

func loadBinary(path string) (*objfile.Image, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if im, err := objfile.ReadImage(bytes.NewReader(data)); err == nil {
		return im, nil
	}
	obj, err := objfile.ReadObject(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("%s is neither an image nor an object", path)
	}
	return objfile.Link("main", obj)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "em-run:", err)
	os.Exit(1)
}
