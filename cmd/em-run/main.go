// Command em-run executes an EM32 binary on the simulator. It accepts a
// linked image (.exe) or a relocatable object (.o, linked on the fly with
// entry "main"). Squashed images (carrying decompression metadata) get the
// runtime decompressor installed automatically.
//
// Usage:
//
//	em-run prog.exe < input > output
//	em-run -in input.bin -profile prog.prof prog.o
//	em-run -stats prog.exe
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/huffman"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/vm"
)

// pushMaxInput caps the input bytes shipped with a -profile-push so a huge
// workload file cannot balloon the push frame; the collector only needs a
// representative drifted input, and mediabench inputs are far smaller.
const pushMaxInput = 4 << 20

func main() {
	inFile := flag.String("in", "", "input byte stream file (default: stdin)")
	profOut := flag.String("profile", "", "write a basic-block execution profile to this file")
	profPush := flag.String("profile-push", "", "after the run, push the execution profile to a squashprofd collector at this address (warn-only on failure)")
	stats := flag.Bool("stats", false, "print execution statistics to stderr")
	statsJSON := flag.String("stats-json", "", "write execution statistics as JSON to this file (\"-\" for stderr; program output stays on stdout)")
	limit := flag.Uint64("limit", 0, "instruction limit (0 = default)")
	noFast := flag.Bool("nofastpath", false, "force the reference decode/dispatch paths (identical simulated behaviour; used by the CI equivalence guard)")
	noPool := flag.Bool("nopool", false, "disable buffer pooling in the runtime decompressor (identical simulated behaviour; used by the CI equivalence guard)")
	flag.Parse()
	if *noPool {
		core.SetPooling(false)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: em-run [-in file] [-profile out] [-profile-push addr] [-stats] prog.{exe,o}")
		os.Exit(2)
	}

	im, raw, err := loadBinary(flag.Arg(0))
	if err != nil {
		fail(err)
	}

	var input []byte
	if *inFile != "" {
		if input, err = os.ReadFile(*inFile); err != nil {
			fail(err)
		}
	} else if input, err = io.ReadAll(os.Stdin); err != nil {
		fail(err)
	}

	m := vm.New(im, input)
	m.MaxInstructions = *limit
	m.DisableFastPath = *noFast
	if *profOut != "" || *profPush != "" || *statsJSON != "" {
		m.EnableProfile()
	}
	var rt *core.Runtime
	if len(im.Meta) > 0 {
		meta, err := core.UnmarshalMeta(im.Meta)
		if err != nil {
			fail(fmt.Errorf("binary carries unreadable squash metadata: %w", err))
		}
		if rt, err = core.NewRuntime(meta); err != nil {
			fail(err)
		}
		rt.SetFastPath(!*noFast)
		rt.Install(m)
	}
	if err := m.Run(); err != nil {
		fail(err)
	}
	os.Stdout.Write(m.Output)

	if *profOut != "" {
		f, err := os.Create(*profOut)
		if err != nil {
			fail(err)
		}
		if _, err := profile.Counts(m.Profile).WriteTo(f); err != nil {
			fail(err)
		}
		f.Close()
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "exit status %d, %d instructions, %d cycles\n",
			m.Status, m.Instructions, m.Cycles)
		if rt != nil {
			fmt.Fprintf(os.Stderr, "decompressions %d, bits read %d, restore stubs created %d (max live %d)\n",
				rt.Stats.Decompressions, rt.Stats.BitsRead, rt.Stats.CreateStubMisses, rt.Stats.MaxLiveStubs)
		}
	}
	if *statsJSON != "" {
		if err := writeStatsJSON(*statsJSON, m, rt); err != nil {
			fail(err)
		}
	}
	if *profPush != "" {
		// Fleet telemetry must never fail the workload: a dead collector
		// costs a warning, not the run's exit status.
		if err := pushProfile(*profPush, raw, input, m, rt); err != nil {
			fmt.Fprintln(os.Stderr, "em-run: profile push failed:", err)
		}
	}
	os.Exit(int(m.Status))
}

// pushProfile ships the run's execution profile to a squashprofd collector:
// the image's content key (sha256 of the binary's file bytes, the identity
// it was registered under), the EMP1 counts, the run's metadata, and the
// (capped) input bytes that drove it.
func pushProfile(addr string, raw, input []byte, m *vm.Machine, rt *core.Runtime) error {
	var prof bytes.Buffer
	if _, err := profile.Counts(m.ProfileCounts()).WriteTo(&prof); err != nil {
		return err
	}
	if len(input) > pushMaxInput {
		input = input[:pushMaxInput]
	}
	host, _ := os.Hostname()
	run := &serve.RunMeta{
		Instructions: m.Instructions,
		Cycles:       m.Cycles,
		ExitStatus:   m.Status,
		Source:       host,
	}
	if rt != nil {
		run.Decompressions = rt.Stats.Decompressions
		run.Evictions = rt.Stats.Evictions
		run.BitsRead = rt.Stats.BitsRead
	}
	c, err := serve.DialClient(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	resp, err := c.Do(&serve.Request{
		Op:       serve.OpProfilePush,
		ImageKey: fmt.Sprintf("%x", sha256.Sum256(raw)),
		Profile:  prof.Bytes(),
		Input:    input,
		Run:      run,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("collector rejected push: %s", resp.Err)
	}
	return nil
}

// runStats is the -stats-json payload: the simulated observables (status,
// instructions, cycles, runtime stats — identical with the fast paths on or
// off) plus host-side telemetry (vm fast-path counters, decode memo, and
// Huffman decode-path counts), which may differ under -nofastpath.
type runStats struct {
	ExitStatus   int    `json:"exit_status"`
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`

	VM        vm.Counters `json:"vm"`
	FastSteps uint64      `json:"fast_steps"`

	Runtime *core.RuntimeStats     `json:"runtime,omitempty"`
	Memo    *core.RuntimeTelemetry `json:"memo,omitempty"`
	Huffman *huffman.DecodeStats   `json:"huffman,omitempty"`
	Profile *profStats             `json:"profile,omitempty"`
}

// profStats summarizes the run's execution profile for -stats-json: the
// total dynamic instruction weight and the cold-mass curve over the standard
// θ sweep (the experiments axis points), so drift tooling reads the θ
// partition straight from run statistics.
type profStats struct {
	TotalWeight uint64                  `json:"total_weight"`
	ColdMass    []profile.ThetaColdMass `json:"cold_mass"`
}

// statsThetaSet mirrors experiments.ThetaSet (the paper's θ axis points)
// without pulling the experiments harness into the runner binary.
var statsThetaSet = []float64{0, 0.00001, 0.00005, 0.0001, 0.001, 0.01, 1.0}

func writeStatsJSON(path string, m *vm.Machine, rt *core.Runtime) error {
	st := runStats{
		ExitStatus:   int(m.Status),
		Instructions: m.Instructions,
		Cycles:       m.Cycles,
		VM:           m.Telem,
		FastSteps:    m.FastSteps(),
	}
	if rt != nil {
		st.Runtime = &rt.Stats
		st.Memo = &rt.Telem
		ds := rt.DecodeStats()
		st.Huffman = &ds
	}
	if c := profile.Counts(m.ProfileCounts()); c != nil {
		st.Profile = &profStats{
			TotalWeight: profile.Total(c),
			ColdMass:    profile.ColdMasses(c, statsThetaSet),
		}
	}
	w := os.Stderr
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// loadBinary reads path as an image or relocatable object (linked on the
// fly) and also returns the raw file bytes — their sha256 is the content key
// a squashed image is registered under with the profile collector.
func loadBinary(path string) (*objfile.Image, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if im, err := objfile.ReadImage(bytes.NewReader(data)); err == nil {
		return im, data, nil
	}
	obj, err := objfile.ReadObject(bytes.NewReader(data))
	if err != nil {
		return nil, nil, fmt.Errorf("%s is neither an image nor an object", path)
	}
	im, err := objfile.Link("main", obj)
	return im, data, err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "em-run:", err)
	os.Exit(1)
}
