// Package repro is a from-scratch reproduction of "Profile-Guided Code
// Compression" (Saumya Debray and William Evans, PLDI 2002).
//
// The paper's system, squash, reduces the memory footprint of embedded
// executables by compressing infrequently executed code with a split-stream
// canonical-Huffman coder and decompressing it on demand, at run time, into
// a small fixed buffer. This module rebuilds the complete stack the paper
// depends on:
//
//   - internal/isa, internal/asm, internal/objfile: an Alpha-flavoured
//     32-bit RISC target (EM32) with an assembler, relocatable objects, and
//     a linker that retains relocation information;
//   - internal/vm: a cycle-counting simulator with basic-block profiling,
//     standing in for the paper's Alpha 21264 test machine;
//   - internal/cfg, internal/squeeze: a control-flow-graph IR and the
//     baseline code compactor squash builds on;
//   - internal/huffman, internal/streamcomp: canonical Huffman coding and
//     the fifteen-stream splitting compressor of §3;
//   - internal/profile, internal/regions, internal/buffersafe,
//     internal/unswitch: cold-code identification (§5), compressible-region
//     formation (§4), buffer-safety analysis (§6.1), and jump-table
//     unswitching (§6.2);
//   - internal/core: the squash rewriter and the runtime decompression
//     machinery (entry stubs, CreateStub, reference-counted restore stubs)
//     of §2;
//   - internal/mediabench, internal/experiments: the synthetic benchmark
//     suite and the drivers that regenerate every table and figure of §7.
//
// See README.md for the pipeline walk-through, DESIGN.md for the system
// inventory and substitution notes, and EXPERIMENTS.md for measured-versus-
// paper results. The benchmarks in bench_test.go regenerate each table and
// figure: go test -bench=. -benchmem.
package repro
