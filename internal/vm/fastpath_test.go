package vm

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/testprog"
)

// runPair executes the same image twice — once through the predecoded fast
// path and once with DisableFastPath forcing the reference interpreter — and
// asserts that every piece of observable machine state agrees. The fast path
// is only a fast path if nothing simulated can tell it apart.
func runPair(t *testing.T, label string, im *objfile.Image, input []byte, icache, profile bool) {
	t.Helper()
	run := func(disable bool) (*Machine, error) {
		m := New(im, input)
		m.DisableFastPath = disable
		if icache {
			m.AttachICache(NewICache(1024, 32, 8))
		}
		if profile {
			m.EnableProfile()
		}
		return m, m.Run()
	}
	fast, ferr := run(false)
	slow, serr := run(true)
	if fmt.Sprint(ferr) != fmt.Sprint(serr) {
		t.Fatalf("%s: fast err %v, slow err %v", label, ferr, serr)
	}
	if fast.Status != slow.Status || fast.Halted != slow.Halted {
		t.Fatalf("%s: status %d/%v (fast) vs %d/%v (slow)", label, fast.Status, fast.Halted, slow.Status, slow.Halted)
	}
	if fast.Instructions != slow.Instructions {
		t.Fatalf("%s: %d instructions (fast) vs %d (slow)", label, fast.Instructions, slow.Instructions)
	}
	if fast.Cycles != slow.Cycles {
		t.Fatalf("%s: %d cycles (fast) vs %d (slow)", label, fast.Cycles, slow.Cycles)
	}
	if fast.PC != slow.PC {
		t.Fatalf("%s: PC %#x (fast) vs %#x (slow)", label, fast.PC, slow.PC)
	}
	if fast.Reg != slow.Reg {
		t.Fatalf("%s: register files diverge:\nfast %v\nslow %v", label, fast.Reg, slow.Reg)
	}
	if string(fast.Output) != string(slow.Output) {
		t.Fatalf("%s: output diverges: %q (fast) vs %q (slow)", label, fast.Output, slow.Output)
	}
	if profile {
		for i := range fast.Profile {
			if fast.Profile[i] != slow.Profile[i] {
				t.Fatalf("%s: profile[%d] = %d (fast) vs %d (slow)", label, i, fast.Profile[i], slow.Profile[i])
			}
		}
	}
	if icache && fast.ICache.MissRate() != slow.ICache.MissRate() {
		t.Fatalf("%s: icache miss rate %v (fast) vs %v (slow)", label, fast.ICache.MissRate(), slow.ICache.MissRate())
	}
}

func assembleImage(t *testing.T, src string) *objfile.Image {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// TestFastPathEquivalence runs randomized well-formed programs through both
// interpreters with every combination of icache model and profiling, and
// requires bit-identical machine state. This is the test the package doc
// promises: cycle-for-cycle equivalence over randomized programs.
func TestFastPathEquivalence(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		im := assembleImage(t, testprog.Random(seed))
		input := []byte(fmt.Sprintf("fastpath equivalence %d", seed))
		for _, icache := range []bool{false, true} {
			for _, profile := range []bool{false, true} {
				label := fmt.Sprintf("seed %d icache=%v profile=%v", seed, icache, profile)
				runPair(t, label, im, input, icache, profile)
			}
		}
	}
}

// TestFastPathTrapEquivalence pins the error paths: both interpreters must
// produce the same trap, at the same PC, with the same message and the same
// counters, for every fault the fast path handles itself or defers.
func TestFastPathTrapEquivalence(t *testing.T) {
	cases := []struct{ name, body string }{
		{"div-zero", "li t0, 7\n        li t1, 0\n        div t0, t1, t2"},
		{"mod-zero", "li t0, 7\n        li t1, 0\n        mod t0, t1, t2"},
		{"load-oob", "li t0, 0x7FFFFF00\n        ldw t1, 0(t0)"},
		{"load-unaligned", "li t0, 0x10002\n        ldw t1, 1(t0)"},
		{"store-oob", "li t0, 0x7FFFFF00\n        stw t1, 0(t0)"},
		{"ldb-oob", "li t0, 0x7FFFFF00\n        ldb t1, 0(t0)"},
		{"stb-oob", "li t0, 0x7FFFFF00\n        stb t1, 0(t0)"},
		{"jump-wild", "li t0, 12\n        jmp zero, (t0)"},
		{"fall-off-end", "li t0, 1"},
	}
	for _, tc := range cases {
		src := "        .text\n        .func main\n        " + tc.body + "\n"
		if tc.name != "fall-off-end" {
			src += "        sys  halt\n"
		}
		runPair(t, tc.name, assembleImage(t, src), nil, false, false)
	}
}

// TestFastPathSelfModifyStore overwrites upcoming instructions with stw and
// stb through already-predecoded words, from a loop that itself stays
// cached: the invalidation hooks must keep the shadow decode coherent in
// both interpreters.
func TestFastPathSelfModifyStore(t *testing.T) {
	// The program reads the word at patchme, adds 1 to its literal field
	// (li a0, N assembles to lda a0, N(zero); Disp is the low 16 bits), and
	// stores it back — so each pass through the loop bumps the constant the
	// next pass loads. After 5 passes a0 is 45.
	src := `
        .text
        .func main
        li   t3, 5
loop:
        la   t0, patchme
        ldw  t1, 0(t0)
        add  t1, 1, t1
        stw  t1, 0(t0)
patchme:
        li   a0, 40
        sub  t3, 1, t3
        bne  t3, loop
        sys  halt
`
	im := assembleImage(t, src)
	runPair(t, "stw-patch", im, nil, false, false)
	m := New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Status != 45 {
		t.Fatalf("self-modifying loop: status %d, want 45", m.Status)
	}

	// Same shape, patching with a byte store into the instruction's low
	// byte (little-endian: byte 0 of the word is the low Disp byte).
	srcB := `
        .text
        .func main
        li   t3, 5
loop:
        la   t0, patchme
        ldb  t1, 0(t0)
        add  t1, 1, t1
        stb  t1, 0(t0)
patchme:
        li   a0, 40
        sub  t3, 1, t3
        bne  t3, loop
        sys  halt
`
	imB := assembleImage(t, srcB)
	runPair(t, "stb-patch", imB, nil, false, false)
	mb := New(imB, nil)
	if err := mb.Run(); err != nil {
		t.Fatal(err)
	}
	if mb.Status != 45 {
		t.Fatalf("byte-patching loop: status %d, want 45", mb.Status)
	}
}

// TestFastPathInvalidateRange predecodes a word, invalidates its range, and
// rewrites memory directly: the next Step must decode the new word, not
// dispatch the stale shadow entry.
func TestFastPathInvalidateRange(t *testing.T) {
	im := assembleImage(t, `
        .text
        .func main
        li   a0, 1
        sys  halt
`)
	m := New(im, nil)
	if err := m.Step(); err != nil { // predecode + execute "li a0, 1"
		t.Fatal(err)
	}
	// Rewrite the first instruction to "li a0, 9" behind the cache's back,
	// then jump PC there. Without InvalidateRange the stale µop would load 1.
	w, err := m.ReadWord(objfile.TextBase)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteWord(objfile.TextBase, w&^0xFFFF|9); err != nil {
		t.Fatal(err)
	}
	m.InvalidateRange(objfile.TextBase, objfile.TextBase+4)
	m.PC = objfile.TextBase
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	if m.Reg[isa.RegA0] != 9 {
		t.Fatalf("after invalidate+rewrite, a0 = %d, want 9", m.Reg[isa.RegA0])
	}
}
