package vm

import "repro/internal/isa"

// ICache is an optional direct-mapped instruction-cache model. The paper's
// test machine has a 64 KB two-way instruction cache, and the decompression
// scheme interacts with instruction caching twice: the decompressor must
// flush the cache after filling the runtime buffer (§2.1), and compressed
// programs touch fewer distinct text lines. Enabling the model charges a
// per-miss penalty and counts hits/misses so those effects can be measured;
// it is off by default because the paper's own comparisons are made without
// a cache-sensitivity study.
type ICache struct {
	// LineBytes is the cache line size (must be a power of two ≥ 4).
	LineBytes uint32
	// NumLines is the number of direct-mapped lines (power of two).
	NumLines uint32
	// MissPenalty is charged in cycles per line fill.
	MissPenalty uint64

	tags  []uint32
	valid []bool

	Hits   uint64
	Misses uint64
}

// NewICache builds a model of the given total size.
func NewICache(totalBytes, lineBytes uint32, missPenalty uint64) *ICache {
	lines := totalBytes / lineBytes
	return &ICache{
		LineBytes:   lineBytes,
		NumLines:    lines,
		MissPenalty: missPenalty,
		tags:        make([]uint32, lines),
		valid:       make([]bool, lines),
	}
}

// access records a fetch from pc and returns the cycle charge.
func (c *ICache) access(pc uint32) uint64 {
	lineAddr := pc / c.LineBytes
	idx := lineAddr % c.NumLines
	if c.valid[idx] && c.tags[idx] == lineAddr {
		c.Hits++
		return 0
	}
	c.valid[idx] = true
	c.tags[idx] = lineAddr
	c.Misses++
	return c.MissPenalty
}

// FlushRange invalidates every line overlapping [lo, hi) — the model of the
// instruction-memory barrier the decompressor performs after writing the
// runtime buffer.
func (c *ICache) FlushRange(lo, hi uint32) {
	first := lo / c.LineBytes
	last := (hi + c.LineBytes - 1) / c.LineBytes
	for la := first; la < last; la++ {
		idx := la % c.NumLines
		if c.valid[idx] && c.tags[idx] == la {
			c.valid[idx] = false
		}
	}
}

// MissRate reports misses over total accesses.
func (c *ICache) MissRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Misses) / float64(total)
}

// AttachICache enables instruction-cache modelling on the machine.
func (m *Machine) AttachICache(c *ICache) { m.ICache = c }

// icacheAccess is called from the fetch path when a model is attached.
func (m *Machine) icacheAccess(pc uint32) {
	if m.ICache != nil {
		m.Cycles += m.ICache.access(pc)
	}
}

// icacheFlush lets hooks flush the model when they rewrite code.
func (m *Machine) ICacheFlush(lo, hi uint32) {
	if m.ICache != nil {
		m.ICache.FlushRange(lo, hi)
	}
	_ = isa.WordSize
}
