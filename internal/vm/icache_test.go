package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
)

func TestICacheHitsAndMisses(t *testing.T) {
	src := `
        .text
        .func main
        li   t0, 100
loop:   sub  t0, 1, t0
        bgt  t0, loop
        clr  a0
        sys  halt
`
	obj, _ := asm.Assemble(src)
	im, _ := objfile.Link("main", obj)
	m := New(im, nil)
	c := NewICache(4096, 64, 20)
	m.AttachICache(c)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// The whole program is a handful of lines: one compulsory miss per
	// line, everything else hits.
	if c.Misses > 4 {
		t.Errorf("misses = %d for a tiny loop", c.Misses)
	}
	if c.Hits < 190 {
		t.Errorf("hits = %d, loop body should hit", c.Hits)
	}
	if c.MissRate() > 0.05 {
		t.Errorf("miss rate %.3f", c.MissRate())
	}
}

func TestICacheMissPenaltyCharged(t *testing.T) {
	src := `
        .text
        .func main
        clr  a0
        sys  halt
`
	obj, _ := asm.Assemble(src)
	im, _ := objfile.Link("main", obj)
	run := func(with bool) uint64 {
		m := New(im, nil)
		if with {
			m.AttachICache(NewICache(1024, 64, 50))
		}
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	without := run(false)
	with := run(true)
	if with != without+50 {
		t.Errorf("one compulsory miss should cost 50 extra cycles: %d vs %d", with, without)
	}
}

func TestICacheFlushInvalidates(t *testing.T) {
	c := NewICache(1024, 64, 10)
	c.access(0x1000)
	if got := c.access(0x1000); got != 0 {
		t.Fatal("second access should hit")
	}
	c.FlushRange(0x1000, 0x1004)
	if got := c.access(0x1000); got != 10 {
		t.Fatal("flushed line should miss")
	}
	// Flushing a different line leaves this one alone.
	c.access(0x1000)
	c.FlushRange(0x2000, 0x2040)
	if got := c.access(0x1000); got != 0 {
		t.Fatal("unrelated flush evicted the line")
	}
}

func TestICacheConflictMapping(t *testing.T) {
	// Two addresses one cache-size apart conflict in a direct-mapped cache.
	c := NewICache(1024, 64, 10)
	c.access(0x1000)
	c.access(0x1000 + 1024)
	if got := c.access(0x1000); got != 10 {
		t.Fatal("conflicting line did not evict")
	}
}
