package vm

// Predecoded fast path. Step's hot loop used to re-derive operand fields and
// re-dispatch on (Format, Op, Func) for every dynamic instruction. The decode
// cache now stores a flat µop per text word — an operation kind plus resolved
// register numbers and a pre-folded immediate — so executing a cached
// instruction is one dense switch on the kind. Predecode happens at most once
// per cache fill; the existing invalidation points (WriteWord, STB,
// InvalidateRange) drop the µop together with the decoded instruction, so
// self-modifying code and the decompressor's buffer writes are re-predecoded.
//
// The µop encoding folds the OpLit/OpReg distinction away: a literal operand
// is represented as rb = RegZero (hardwired zero) plus the literal in imm, so
// every ALU kind computes its b operand as Reg[rb] + imm with no branch.
// LDAH folds its <<16 into imm the same way, merging with LDA.
//
// Everything rare or faulting — system calls via uSys aside — keeps the
// uSlow kind and delegates to ExecInst, which preserves the exact trap
// messages and cycle charges of the reference interpreter. The fast path is
// cycle-for-cycle identical to stepSlow; TestFastPathEquivalence checks that
// over randomized programs, and Machine.DisableFastPath forces the reference
// path at runtime.

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/objfile"
)

// µop kinds. uInvalid is deliberately the zero value: a zeroed or
// invalidated cache entry reads as "not yet predecoded", so the hot loop
// needs no separate valid flag.
const (
	uInvalid uint8 = iota // cache entry empty or invalidated
	uSlow                 // traps, virtual opcodes, anything irregular
	uSys                  // pal: syscall, func in imm

	uLDA // ra <- Reg[rb] + imm (LDAH pre-shifts imm at predecode)
	uLDW
	uSTW
	uLDB
	uSTB

	uBR  // br/bsr: link ra, jump; imm is byte displacement
	uBEQ // conditional branches test Reg[ra]
	uBNE
	uBLT
	uBLE
	uBGT
	uBGE
	uJump

	uAdd // ALU kinds: rc <- Reg[ra] op (Reg[rb] + imm)
	uSub
	uCmpEQ
	uCmpLT
	uCmpLE
	uCmpULT
	uCmpULE
	uAnd
	uBic
	uBis
	uOrnot
	uXor
	uEqv
	uSll
	uSrl
	uSra
	uMul
	uMulh
	uDiv
	uMod
)

const regZero = uint8(isa.RegZero)

// aluKind maps an operate-group (op, func) pair to its µop kind, or uSlow
// for unknown function codes (which must trap with the reference message).
func aluKind(op, fn uint32) uint8 {
	switch op {
	case isa.OpIntA:
		switch fn {
		case isa.FnADD:
			return uAdd
		case isa.FnSUB:
			return uSub
		case isa.FnCMPEQ:
			return uCmpEQ
		case isa.FnCMPLT:
			return uCmpLT
		case isa.FnCMPLE:
			return uCmpLE
		case isa.FnCMPULT:
			return uCmpULT
		case isa.FnCMPULE:
			return uCmpULE
		}
	case isa.OpIntL:
		switch fn {
		case isa.FnAND:
			return uAnd
		case isa.FnBIC:
			return uBic
		case isa.FnBIS:
			return uBis
		case isa.FnORNOT:
			return uOrnot
		case isa.FnXOR:
			return uXor
		case isa.FnEQV:
			return uEqv
		}
	case isa.OpIntS:
		switch fn {
		case isa.FnSLL:
			return uSll
		case isa.FnSRL:
			return uSrl
		case isa.FnSRA:
			return uSra
		}
	case isa.OpIntM:
		switch fn {
		case isa.FnMUL:
			return uMul
		case isa.FnMULH:
			return uMulh
		case isa.FnDIV:
			return uDiv
		case isa.FnMOD:
			return uMod
		}
	}
	return uSlow
}

// predecode fills c with the µop form of in; the non-uInvalid kind it
// assigns is what marks the entry live.
func predecode(c *cachedInst, in isa.Inst) {
	c.inst = in
	c.kind = uSlow
	c.ra, c.rb, c.rc = uint8(in.RA), uint8(in.RB), uint8(in.RC)
	c.imm = 0
	switch in.Format {
	case isa.FormatPal:
		c.kind = uSys
		c.imm = int32(in.Func)
	case isa.FormatMem:
		c.imm = in.Disp
		switch in.Op {
		case isa.OpLDA:
			c.kind = uLDA
		case isa.OpLDAH:
			c.kind = uLDA
			c.imm = in.Disp << 16
		case isa.OpLDW:
			c.kind = uLDW
		case isa.OpSTW:
			c.kind = uSTW
		case isa.OpLDB:
			c.kind = uLDB
		case isa.OpSTB:
			c.kind = uSTB
		}
	case isa.FormatBranch:
		switch in.Op {
		case isa.OpBR, isa.OpBSR:
			c.kind = uBR
		case isa.OpBEQ:
			c.kind = uBEQ
		case isa.OpBNE:
			c.kind = uBNE
		case isa.OpBLT:
			c.kind = uBLT
		case isa.OpBLE:
			c.kind = uBLE
		case isa.OpBGT:
			c.kind = uBGT
		case isa.OpBGE:
			c.kind = uBGE
			// OpBSRX stays uSlow: it must trap via ExecInst.
		}
		c.imm = in.Disp * isa.WordSize
	case isa.FormatOpReg:
		c.kind = aluKind(in.Op, in.Func)
	case isa.FormatOpLit:
		// Literal operand: rb = zero register, literal folded into imm, so
		// the fast path's b = Reg[rb] + imm yields the literal.
		c.rb = regZero
		c.imm = int32(in.Lit)
		c.kind = aluKind(in.Op, in.Func)
	case isa.FormatJump:
		if in.Op == isa.OpJump {
			c.kind = uJump
		}
	}
}

// Step executes a single instruction (or a hook entry). Aligned fetches
// inside the text segment take the predecoded fast path: one dense switch
// over the cached µop, inlined here so the hot loop pays a single stack
// frame. Everything else — unaligned PCs, execution outside text, uSlow
// µops, or DisableFastPath — goes through the reference path (stepSlow /
// ExecInst), with identical simulated behaviour: same register, memory,
// cycle, and trap effects.
func (m *Machine) Step() error {
	pc := m.PC
	if h := m.Hook; h != nil {
		if h != m.hookSrc {
			m.hookLo, m.hookHi = h.Range()
			m.hookSrc = h
		}
		if pc >= m.hookLo && pc < m.hookHi {
			return h.Enter(m)
		}
	}
	ic := m.icache
	i := uint(uint32(pc-objfile.TextBase) >> 2)
	if pc&3 != 0 || i >= uint(len(ic)) || m.DisableFastPath {
		return m.stepSlow(pc)
	}
	c := &ic[i]
	if c.kind == uInvalid {
		predecode(c, isa.Decode(getWord(m.Mem, pc)))
		m.Telem.Predecodes++
	}
	if m.ICache != nil || m.Profile != nil {
		if m.ICache != nil {
			m.Cycles += m.ICache.access(pc)
		}
		if m.Profile != nil && i < uint(len(m.Profile)) {
			m.Profile[i]++
		}
	}
	m.Instructions++
	next := pc + isa.WordSize
	// Masking the (already in-range) register numbers lets the compiler
	// drop the bounds check on every Reg access below.
	ra, rb, rc := c.ra&31, c.rb&31, c.rc&31
	switch c.kind {
	case uSlow:
		m.Telem.SlowDispatches++
		nx, err := m.exec(&c.inst, pc)
		if err != nil {
			return err
		}
		m.PC = nx
		return nil
	case uSys:
		redirected, err := m.syscall(uint32(c.imm))
		if err != nil {
			return err
		}
		m.Cycles += CostSyscall
		if m.Halted || redirected {
			return nil // m.PC is already final
		}

	case uLDA:
		if ra != regZero {
			m.Reg[ra] = m.Reg[rb] + c.imm
		}
		m.Cycles += CostOp
	case uLDW:
		addr := uint32(m.Reg[rb] + c.imm)
		if addr%isa.WordSize != 0 || addr > uint32(len(m.Mem))-4 {
			_, err := m.ReadWord(addr) // reference trap message
			return err
		}
		if ra != regZero {
			m.Reg[ra] = int32(getWord(m.Mem, addr))
		}
		m.Cycles += CostMem
	case uSTW:
		addr := uint32(m.Reg[rb] + c.imm)
		if addr%isa.WordSize != 0 || addr > uint32(len(m.Mem))-4 {
			return m.WriteWord(addr, uint32(m.Reg[ra]))
		}
		putWord(m.Mem, addr, uint32(m.Reg[ra]))
		if idx := int(addr-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.icache) {
			m.icache[idx].kind = uInvalid
			m.Telem.InvalidatedWords++
		}
		m.Cycles += CostMem
	case uLDB:
		addr := uint32(m.Reg[rb] + c.imm)
		if addr >= uint32(len(m.Mem)) {
			return &TrapError{pc, fmt.Sprintf("byte read out of bounds at %#x", addr)}
		}
		if ra != regZero {
			m.Reg[ra] = int32(m.Mem[addr])
		}
		m.Cycles += CostMem
	case uSTB:
		addr := uint32(m.Reg[rb] + c.imm)
		if addr >= uint32(len(m.Mem)) {
			return &TrapError{pc, fmt.Sprintf("byte write out of bounds at %#x", addr)}
		}
		m.Mem[addr] = byte(m.Reg[ra])
		if idx := int(addr&^3-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.icache) {
			m.icache[idx].kind = uInvalid
			m.Telem.InvalidatedWords++
		}
		m.Cycles += CostMem

	case uBR:
		if ra != regZero {
			m.Reg[ra] = int32(next)
		}
		next += uint32(c.imm)
		m.Cycles += CostBranchTaken
	case uBEQ:
		if m.Reg[ra] == 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uBNE:
		if m.Reg[ra] != 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uBLT:
		if m.Reg[ra] < 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uBLE:
		if m.Reg[ra] <= 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uBGT:
		if m.Reg[ra] > 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uBGE:
		if m.Reg[ra] >= 0 {
			next += uint32(c.imm)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case uJump:
		target := uint32(m.Reg[rb]) &^ 3
		if ra != regZero {
			m.Reg[ra] = int32(next)
		}
		next = target
		m.Cycles += CostJump

	case uAdd:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] + m.Reg[rb] + c.imm
		}
		m.Cycles += CostOp
	case uSub:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] - (m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uCmpEQ:
		if rc != regZero {
			m.Reg[rc] = boolReg(m.Reg[ra] == m.Reg[rb]+c.imm)
		}
		m.Cycles += CostOp
	case uCmpLT:
		if rc != regZero {
			m.Reg[rc] = boolReg(m.Reg[ra] < m.Reg[rb]+c.imm)
		}
		m.Cycles += CostOp
	case uCmpLE:
		if rc != regZero {
			m.Reg[rc] = boolReg(m.Reg[ra] <= m.Reg[rb]+c.imm)
		}
		m.Cycles += CostOp
	case uCmpULT:
		if rc != regZero {
			m.Reg[rc] = boolReg(uint32(m.Reg[ra]) < uint32(m.Reg[rb]+c.imm))
		}
		m.Cycles += CostOp
	case uCmpULE:
		if rc != regZero {
			m.Reg[rc] = boolReg(uint32(m.Reg[ra]) <= uint32(m.Reg[rb]+c.imm))
		}
		m.Cycles += CostOp
	case uAnd:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] & (m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uBic:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] &^ (m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uBis:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] | (m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uOrnot:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] | ^(m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uXor:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] ^ (m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uEqv:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] ^ ^(m.Reg[rb] + c.imm)
		}
		m.Cycles += CostOp
	case uSll:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] << (uint32(m.Reg[rb]+c.imm) & 31)
		}
		m.Cycles += CostOp
	case uSrl:
		if rc != regZero {
			m.Reg[rc] = int32(uint32(m.Reg[ra]) >> (uint32(m.Reg[rb]+c.imm) & 31))
		}
		m.Cycles += CostOp
	case uSra:
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] >> (uint32(m.Reg[rb]+c.imm) & 31)
		}
		m.Cycles += CostOp
	case uMul:
		if rc != regZero {
			m.Reg[rc] = int32(int64(m.Reg[ra]) * int64(m.Reg[rb]+c.imm))
		}
		m.Cycles += CostOp
	case uMulh:
		if rc != regZero {
			m.Reg[rc] = int32(int64(m.Reg[ra]) * int64(m.Reg[rb]+c.imm) >> 32)
		}
		m.Cycles += CostOp
	case uDiv:
		b := m.Reg[rb] + c.imm
		if b == 0 {
			return &TrapError{pc, "integer division by zero"}
		}
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] / b
		}
		m.Cycles += CostOp
	case uMod:
		b := m.Reg[rb] + c.imm
		if b == 0 {
			return &TrapError{pc, "integer remainder by zero"}
		}
		if rc != regZero {
			m.Reg[rc] = m.Reg[ra] % b
		}
		m.Cycles += CostOp
	}
	m.PC = next
	return nil
}

func boolReg(cond bool) int32 {
	if cond {
		return 1
	}
	return 0
}
