package vm

// Cycle-cost model. The paper measures wall-clock time on a 667 MHz Alpha
// 21264; this reproduction measures deterministic simulated cycles instead,
// so all timing comparisons are relative (squashed vs squeezed), which is
// also how the paper reports them (Figure 7(b) normalizes to squeezed code).
//
// The decompression constants are derived from the work the software
// decompressor actually performs rather than picked to match the paper: the
// canonical-Huffman bit loop costs a handful of ALU operations per input
// bit, writing and fixing up each output instruction costs a few loads and
// stores, and the mandatory instruction-cache flush after code generation
// costs roughly a cycle per buffer word. BenchmarkCostModelAblation sweeps
// these constants to show the reported shapes are not an artifact of the
// particular values.
const (
	// Baseline instruction costs.
	CostOp             = 1 // operate, lda/ldah
	CostMem            = 2 // loads and stores that touch memory
	CostBranchTaken    = 2
	CostBranchNotTaken = 1
	CostJump           = 2
	CostSyscall        = 10

	// Decompressor invocation: register save/restore, tag fetch, offset
	// table lookup, and control transfer into the runtime buffer.
	CostDecompBase = 250
	// Per compressed bit consumed by the canonical Huffman DECODE loop.
	CostDecompPerBit = 4
	// Per instruction materialized into the runtime buffer (field
	// reassembly, displacement fixup, store).
	CostDecompPerInst = 12
	// Instruction-cache flush, charged per runtime-buffer word.
	CostIcacheFlushPerWord = 1

	// CreateStub: hash lookup of the call site in the live-stub list.
	CostCreateStubHit  = 40 // stub already exists; bump its usage count
	CostCreateStubMiss = 90 // allocate and initialize a new restore stub
	// Restore-stub dispatch on return (count decrement, stub free check),
	// charged in addition to the decompression of the caller's region.
	CostRestoreDispatch = 30

	// Interpret-in-place execution (the §8 alternative): every executed
	// instruction pays a canonical-Huffman field decode plus dispatch, on
	// top of the operation's own cost. Roughly DecompPerBit × ~20 bits.
	CostInterpPerInst = 80
)

// CostModel bundles the decompression-related constants so ablation
// experiments can vary them per machine without touching the package-level
// defaults.
type CostModel struct {
	DecompBase         uint64
	DecompPerBit       uint64
	DecompPerInst      uint64
	IcacheFlushPerWord uint64
	CreateStubHit      uint64
	CreateStubMiss     uint64
	RestoreDispatch    uint64
	InterpPerInst      uint64
}

// DefaultCostModel returns the documented default constants.
func DefaultCostModel() CostModel {
	return CostModel{
		DecompBase:         CostDecompBase,
		DecompPerBit:       CostDecompPerBit,
		DecompPerInst:      CostDecompPerInst,
		IcacheFlushPerWord: CostIcacheFlushPerWord,
		CreateStubHit:      CostCreateStubHit,
		CreateStubMiss:     CostCreateStubMiss,
		RestoreDispatch:    CostRestoreDispatch,
		InterpPerInst:      CostInterpPerInst,
	}
}
