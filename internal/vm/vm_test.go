package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/objfile"
)

func run(t *testing.T, src string, input []byte) *Machine {
	t.Helper()
	m := load(t, src, input)
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func load(t *testing.T, src string, input []byte) *Machine {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	return New(im, input)
}

func TestHaltStatus(t *testing.T) {
	m := run(t, `
        .text
        .func main
        li a0, 42
        sys halt
`, nil)
	if m.Status != 42 {
		t.Fatalf("status = %d, want 42", m.Status)
	}
}

func TestArithmetic(t *testing.T) {
	// Computes ((7*6)-2)/4 % 3 => 40/4=10, 10%3=1; plus unsigned compare.
	m := run(t, `
        .text
        .func main
        li   t0, 7
        li   t1, 6
        mul  t0, t1, t2     ; 42
        sub  t2, 2, t2      ; 40
        li   t3, 4
        div  t2, t3, t2     ; 10
        mod  t2, 3, t2      ; 1
        mov  t2, a0
        sys  halt
`, nil)
	if m.Status != 1 {
		t.Fatalf("status = %d, want 1", m.Status)
	}
}

func TestMulh(t *testing.T) {
	m := run(t, `
        .text
        .func main
        li   t0, 0x40000000
        li   t1, 8
        mulh t0, t1, a0     ; (2^30 * 8) >> 32 = 2
        sys  halt
`, nil)
	if m.Status != 2 {
		t.Fatalf("status = %d, want 2", m.Status)
	}
}

func TestEchoLoop(t *testing.T) {
	m := run(t, `
        .text
        .func main
loop:   sys  getc
        blt  v0, done
        mov  v0, a0
        sys  putc
        br   loop
done:   clr  a0
        sys  halt
`, []byte("hello, world"))
	if string(m.Output) != "hello, world" {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestMemoryAndDataSection(t *testing.T) {
	m := run(t, `
        .text
        .func main
        la   t0, values
        ldw  t1, 0(t0)
        ldw  t2, 4(t0)
        add  t1, t2, a0
        la   t3, scratch
        stw  a0, 0(t3)
        ldw  a0, 0(t3)
        sys  halt
        .data
values: .word 30, 12
scratch:.word 0
`, nil)
	if m.Status != 42 {
		t.Fatalf("status = %d, want 42", m.Status)
	}
}

func TestCallReturn(t *testing.T) {
	m := run(t, `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        li   a0, 5
        call double
        mov  v0, a0
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        sys  halt
        .func double
        add  a0, a0, v0
        ret
`, nil)
	if m.Status != 10 {
		t.Fatalf("status = %d, want 10", m.Status)
	}
}

func TestIndirectCallThroughPV(t *testing.T) {
	m := run(t, `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        la   pv, triple
        li   a0, 7
        jsr  ra, (pv)
        mov  v0, a0
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        sys  halt
        .func triple
        add  a0, a0, v0
        add  v0, a0, v0
        ret
`, nil)
	if m.Status != 21 {
		t.Fatalf("status = %d, want 21", m.Status)
	}
}

func TestJumpTable(t *testing.T) {
	// switch (input byte - '0') { case 0: 'z'; case 1: 'o'; case 2: 't' }
	src := `
        .text
        .func main
        sys  getc
        sub  v0, 48, t0
        cmpult t0, 3, t1
        beq  t1, bad
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
case0:  li   a0, 122
        br   out
case1:  li   a0, 111
        br   out
case2:  li   a0, 116
        br   out
bad:    li   a0, 63
out:    sys  putc
        clr  a0
        sys  halt
        .data
table:  .word case0, case1, case2
`
	for in, want := range map[string]string{"0": "z", "1": "o", "2": "t", "9": "?"} {
		m := run(t, src, []byte(in))
		if string(m.Output) != want {
			t.Errorf("input %q: output %q, want %q", in, m.Output, want)
		}
	}
}

func TestSetjmpLongjmp(t *testing.T) {
	m := run(t, `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        sys  setjmp
        bne  v0, recovered
        li   a0, 65          ; 'A': first pass
        sys  putc
        call fail
        li   a0, 88          ; 'X': must be skipped
        sys  putc
recovered:
        li   a0, 66          ; 'B'
        sys  putc
        clr  a0
        sys  halt
        .func fail
        sys  longjmp
        ret
`, nil)
	if string(m.Output) != "AB" {
		t.Fatalf("output = %q, want AB", m.Output)
	}
}

func TestTrapIllegalInstruction(t *testing.T) {
	m := load(t, `
        .text
        .func main
        .word 0xFFFFFFFF
`, nil)
	// .word in text section is allowed by the assembler for testing.
	err := m.Run()
	var trap *TrapError
	if !errors.As(err, &trap) || !strings.Contains(trap.Reason, "illegal") {
		t.Fatalf("err = %v, want illegal instruction trap", err)
	}
}

func TestTrapDivZero(t *testing.T) {
	m := load(t, `
        .text
        .func main
        clr  t0
        li   t1, 3
        div  t1, t0, t2
`, nil)
	var trap *TrapError
	if err := m.Run(); !errors.As(err, &trap) || !strings.Contains(trap.Reason, "division") {
		t.Fatalf("want division trap, got %v", err)
	}
}

func TestTrapUnaligned(t *testing.T) {
	m := load(t, `
        .text
        .func main
        li   t0, 0x400001
        ldw  t1, 0(t0)
`, nil)
	var trap *TrapError
	if err := m.Run(); !errors.As(err, &trap) || !strings.Contains(trap.Reason, "unaligned") {
		t.Fatalf("want unaligned trap, got %v", err)
	}
}

func TestInstructionLimit(t *testing.T) {
	m := load(t, `
        .text
        .func main
loop:   br loop
`, nil)
	m.MaxInstructions = 1000
	if err := m.Run(); !errors.Is(err, ErrInstructionLimit) {
		t.Fatalf("want instruction limit error, got %v", err)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := run(t, `
        .text
        .func main
        li   zero, 99
        mov  zero, a0
        sys  halt
`, nil)
	if m.Status != 0 {
		t.Fatalf("r31 was written: status = %d", m.Status)
	}
}

func TestProfileCounts(t *testing.T) {
	m := load(t, `
        .text
        .func main
        li   t0, 5          ; executed once
loop:   sub  t0, 1, t0      ; executed 5 times
        bgt  t0, loop       ; executed 5 times
        clr  a0
        sys  halt
`, nil)
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Profile[0] != 1 || m.Profile[1] != 5 || m.Profile[2] != 5 || m.Profile[3] != 1 {
		t.Fatalf("profile = %v", m.Profile[:5])
	}
}

func TestCyclesAdvance(t *testing.T) {
	m := run(t, `
        .text
        .func main
        li   t0, 1
        ldw  t1, 0(sp)
        clr  a0
        sys  halt
`, nil)
	// li = 1 cycle, ldw = 2, clr = 1, halt = 10.
	if m.Cycles != 14 {
		t.Fatalf("cycles = %d, want 14", m.Cycles)
	}
	if m.Instructions != 4 {
		t.Fatalf("instructions = %d, want 4", m.Instructions)
	}
}

func TestSPTraceRecorded(t *testing.T) {
	m := load(t, `
        .text
        .func main
        lda  sp, -32(sp)
        li   a0, 65
        sys  putc
        lda  sp, 32(sp)
        li   a0, 66
        sys  putc
        clr  a0
        sys  halt
`, nil)
	m.StackCheck = true
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.SPTrace) != 2 {
		t.Fatalf("SPTrace length = %d", len(m.SPTrace))
	}
	if m.SPTrace[0] != int32(objfile.StackTop)-32 || m.SPTrace[1] != int32(objfile.StackTop) {
		t.Fatalf("SPTrace = %v", m.SPTrace)
	}
}

// hookRecorder tests the Hook interception path.
type hookRecorder struct {
	lo, hi  uint32
	entered int
	target  uint32
}

func (h *hookRecorder) Range() (uint32, uint32) { return h.lo, h.hi }
func (h *hookRecorder) Enter(m *Machine) error {
	h.entered++
	m.PC = h.target
	return nil
}

func TestHookIntercepts(t *testing.T) {
	m := load(t, `
        .text
        .func main
        br   reserved
back:   li   a0, 7
        sys  halt
        .func reserved
        .word 0xFFFFFFFF     ; would trap if executed
`, nil)
	// Layout: word 0 = br, word 1 = li, word 2 = halt, word 3 = reserved.
	reserved := objfile.TextBase + 3*isa.WordSize
	back := objfile.TextBase + 1*isa.WordSize
	h := &hookRecorder{lo: reserved, hi: reserved + 4, target: back}
	m.Hook = h
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if h.entered != 1 || m.Status != 7 {
		t.Fatalf("entered=%d status=%d", h.entered, m.Status)
	}
}

func TestSelfModifyingCodeInvalidatesCache(t *testing.T) {
	// The program overwrites the instruction at patch (initially li a0, 1)
	// with li a0, 9 (same encoding patched via stw) before executing it.
	m := run(t, `
        .text
        .func main
        la   t0, patch
        ldw  t1, 0(t0)      ; fetch current encoding (also warms the cache)
        la   t2, template
        ldw  t3, 0(t2)
        stw  t3, 0(t0)      ; patch the instruction
patch:  li   a0, 1
        sys  halt
        .func template
        li   a0, 9
`, nil)
	if m.Status != 9 {
		t.Fatalf("status = %d, want 9 (stale decode cache?)", m.Status)
	}
}
