package vm

// Counters is host-side telemetry about which execution paths the
// machine took. Every increment lives on a cold path (cache fills, the
// reference-interpreter dispatch, invalidation hits), so the hot loop
// pays nothing for it, and none of the counts feed back into simulated
// state: cycles, instructions, profiles, and outputs are identical
// whether anyone reads these or not. Unlike Instructions/Cycles the
// split below may differ between fast-path and -nofastpath runs — that
// is the point of measuring it.
type Counters struct {
	// Predecodes counts decode-cache fills (µop cache misses).
	Predecodes uint64 `json:"predecodes"`
	// SlowDispatches counts fast-path steps that hit a uSlow µop and
	// routed through the reference ExecInst.
	SlowDispatches uint64 `json:"slow_dispatches"`
	// SlowSteps counts steps taken entirely on the reference path
	// (DisableFastPath, unaligned PCs, execution outside text).
	SlowSteps uint64 `json:"slow_steps"`
	// InvalidatedWords counts decode-cache entries dropped by stores
	// and InvalidateRange (self-modifying code, decompressor writes).
	InvalidatedWords uint64 `json:"invalidated_words"`
}

// FastSteps derives how many executed instructions were fully handled
// by the predecoded fast path: everything except reference-path steps
// and uSlow dispatches. Instructions emitted by hooks through ExecInst
// (the interpret-in-place runtime) count as fast here.
func (m *Machine) FastSteps() uint64 {
	slow := m.Telem.SlowSteps + m.Telem.SlowDispatches
	if slow >= m.Instructions {
		return 0
	}
	return m.Instructions - slow
}
