// Package vm implements a cycle-counting interpreter for EM32 images. It is
// the stand-in for the paper's Alpha 21264 test machine: it executes linked
// executables — including rewritten (squashed) ones — collects basic-block
// execution profiles, and charges a deterministic cycle cost per operation
// so that relative execution times can be compared across program versions.
//
// The decompression runtime of the squashed binaries is installed as a Hook:
// when control reaches the reserved decompressor region, the hook runs
// instead of the (deliberately unexecutable) placeholder words there. The
// hook writes real instructions into the runtime buffer and stub area, which
// the interpreter then executes normally, exactly mirroring the paper's
// software decompressor whose output is ordinary machine code.
package vm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/objfile"
)

// Hook intercepts execution of a reserved address range (the decompressor).
type Hook interface {
	// Range reports the intercepted half-open address interval.
	Range() (lo, hi uint32)
	// Enter is invoked when the program counter enters the range. It must
	// update the machine state (including PC) to continue execution.
	Enter(m *Machine) error
}

// TrapError describes an execution fault.
type TrapError struct {
	PC     uint32
	Reason string
}

func (e *TrapError) Error() string {
	return fmt.Sprintf("vm: trap at pc=%#x: %s", e.PC, e.Reason)
}

// ErrInstructionLimit is returned when execution exceeds the configured
// instruction budget, which indicates a runaway loop in a test program.
var ErrInstructionLimit = errors.New("vm: instruction limit exceeded")

// Machine is one EM32 execution context.
type Machine struct {
	Mem []byte
	Reg [isa.NumRegs]int32
	PC  uint32

	// Input is consumed by the GETC syscall; Output accumulates PUTC bytes.
	Input  []byte
	inPos  int
	Output []byte

	// Halted is set by the HALT syscall; Status is its exit code.
	Halted bool
	Status int32

	// Statistics.
	Instructions uint64
	Cycles       uint64

	// Telem accumulates host-side path telemetry (see telemetry.go). It
	// never influences simulated state.
	Telem Counters

	// Profile counts executions per text word when profiling is enabled
	// with EnableProfile. Index is (pc - TextBase) / 4.
	Profile []uint64

	// MaxInstructions bounds execution; 0 means the package default.
	MaxInstructions uint64

	// Hook, when set, intercepts its address range (see Hook).
	Hook Hook

	// ICache, when set, models a direct-mapped instruction cache (see
	// icache.go); fetches charge its miss penalty.
	ICache *ICache

	// Cost is the decompression cost model used by hooks; defaults are
	// installed by New.
	Cost CostModel

	// StackCheck records Reg[SP] at every PUTC syscall when enabled; the
	// equivalence tests compare these traces between program versions to
	// verify the paper's claim that the call stack of the original and the
	// compressed program are the same size at every point (§2.2).
	StackCheck bool
	SPTrace    []int32

	// DisableFastPath forces every step through the reference decode and
	// dispatch path (stepSlow/ExecInst). Simulated state — registers,
	// memory, cycles, instruction counts, traps — is identical either way;
	// the flag exists so tests and the CI guard can assert that.
	DisableFastPath bool

	// textWords is the extent of the text section in words, used for
	// profile bounds and the decode cache.
	textWords int

	// Decode cache over the text segment, invalidated on stores.
	icache []cachedInst

	// Cached Hook.Range() so the hot loop avoids an interface call per
	// step; recomputed whenever the installed hook changes.
	hookSrc Hook
	hookLo  uint32
	hookHi  uint32

	jmp *jmpState
}

// cachedInst is one decode-cache entry: the decoded instruction plus its
// predecoded µop form (see fastpath.go). Both are filled together by
// predecode and dropped together by the invalidation points; kind doubles
// as the valid flag (uInvalid marks an empty or invalidated entry).
type cachedInst struct {
	kind       uint8 // µop kind (uSlow routes through ExecInst)
	ra, rb, rc uint8
	imm        int32 // folded immediate: disp, disp<<16, lit, or disp*4
	inst       isa.Inst
}

type jmpState struct {
	reg [isa.NumRegs]int32
	pc  uint32
	set bool
}

// DefaultMaxInstructions bounds a single Run unless overridden.
const DefaultMaxInstructions = 2_000_000_000

// New creates a machine loaded with the image: text and data copied into a
// fresh MemSize memory, SP initialized to StackTop, PC at the entry point.
func New(im *objfile.Image, input []byte) *Machine {
	m := &Machine{
		Mem:       make([]byte, objfile.MemSize),
		Input:     input,
		PC:        im.Entry,
		textWords: len(im.Text),
		Cost:      DefaultCostModel(),
	}
	for i, w := range im.Text {
		putWord(m.Mem, objfile.TextBase+uint32(i*isa.WordSize), w)
	}
	copy(m.Mem[objfile.DataBase:], im.Data)
	m.Reg[isa.RegSP] = int32(objfile.StackTop)
	m.icache = make([]cachedInst, len(im.Text))
	return m
}

// EnableProfile allocates the per-word execution counter array.
func (m *Machine) EnableProfile() {
	m.Profile = make([]uint64, m.textWords)
}

// ProfileCounts returns the per-word execution counters as a copy (safe to
// retain after further execution; convertible to profile.Counts, which this
// package cannot import without a cycle through cfg's tests). Nil when
// profiling was never enabled.
func (m *Machine) ProfileCounts() []uint64 {
	if m.Profile == nil {
		return nil
	}
	return append([]uint64(nil), m.Profile...)
}

// InvalidateRange drops decode-cache entries for [lo, hi); hooks that write
// instructions (the decompressor) must call this for the bytes they touch.
func (m *Machine) InvalidateRange(lo, hi uint32) {
	for a := lo &^ 3; a < hi; a += isa.WordSize {
		if idx := int(a-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.icache) {
			m.icache[idx].kind = uInvalid
			m.Telem.InvalidatedWords++
		}
	}
}

// ReadWord fetches the aligned 32-bit word at addr.
func (m *Machine) ReadWord(addr uint32) (uint32, error) {
	if addr%isa.WordSize != 0 {
		return 0, &TrapError{m.PC, fmt.Sprintf("unaligned word read at %#x", addr)}
	}
	if addr > uint32(len(m.Mem))-4 { // subtraction cannot wrap; checks addr+4 without overflow
		return 0, &TrapError{m.PC, fmt.Sprintf("word read out of bounds at %#x", addr)}
	}
	return getWord(m.Mem, addr), nil
}

// WriteWord stores the aligned 32-bit word at addr, invalidating any cached
// decode of that location.
func (m *Machine) WriteWord(addr uint32, v uint32) error {
	if addr%isa.WordSize != 0 {
		return &TrapError{m.PC, fmt.Sprintf("unaligned word write at %#x", addr)}
	}
	if addr > uint32(len(m.Mem))-4 { // see ReadWord: avoids uint32 wrap at the top of the address space
		return &TrapError{m.PC, fmt.Sprintf("word write out of bounds at %#x", addr)}
	}
	putWord(m.Mem, addr, v)
	if idx := int(addr-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.icache) {
		m.icache[idx].kind = uInvalid
		m.Telem.InvalidatedWords++
	}
	return nil
}

func getWord(mem []byte, a uint32) uint32 {
	return binary.LittleEndian.Uint32(mem[a:])
}

func putWord(mem []byte, a uint32, v uint32) {
	binary.LittleEndian.PutUint32(mem[a:], v)
}

// fetch decodes the instruction at pc, consulting the decode cache.
func (m *Machine) fetch(pc uint32) (isa.Inst, error) {
	if pc%isa.WordSize != 0 {
		return isa.Inst{}, &TrapError{pc, "unaligned instruction fetch"}
	}
	idx := int(pc-objfile.TextBase) / isa.WordSize
	if idx >= 0 && idx < len(m.icache) && m.icache[idx].kind != uInvalid {
		return m.icache[idx].inst, nil
	}
	if pc > uint32(len(m.Mem))-4 { // avoids uint32 wrap for fetches at the top of the address space
		return isa.Inst{}, &TrapError{pc, "instruction fetch out of bounds"}
	}
	in := isa.Decode(getWord(m.Mem, pc))
	if idx >= 0 && idx < len(m.icache) {
		predecode(&m.icache[idx], in)
		m.Telem.Predecodes++
	}
	return in, nil
}

// Run executes until HALT, a trap, or the instruction limit.
func (m *Machine) Run() error {
	limit := m.MaxInstructions
	if limit == 0 {
		limit = DefaultMaxInstructions
	}
	for !m.Halted {
		if m.Instructions >= limit {
			return fmt.Errorf("%w (%d instructions, pc=%#x)", ErrInstructionLimit, m.Instructions, m.PC)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// stepSlow is the reference step: fetch (decode cache aside), cache model,
// profile, ExecInst. It preserves the pre-fast-path semantics exactly and
// handles every case the fast path does not.
func (m *Machine) stepSlow(pc uint32) error {
	m.Telem.SlowSteps++
	in, err := m.fetch(pc)
	if err != nil {
		return err
	}
	m.icacheAccess(pc)
	if m.Profile != nil {
		if idx := int(pc-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.Profile) {
			m.Profile[idx]++
		}
	}
	next, err := m.ExecInst(in, pc)
	if err != nil {
		return err
	}
	m.PC = next
	return nil
}

// ExecInst executes one decoded instruction as if it were located at pc,
// updating registers, memory, cycle counts, and halt state, and returns the
// address of the next instruction. It is the semantic core of Step, and is
// also used by the interpret-in-place runtime (which executes compressed
// instructions at virtual addresses without materializing them in memory).
func (m *Machine) ExecInst(in isa.Inst, pc uint32) (uint32, error) {
	m.Instructions++
	return m.exec(&in, pc)
}

// exec is ExecInst without the instruction-count bump; the fast path counts
// before dispatching and routes its uSlow case here.
func (m *Machine) exec(in *isa.Inst, pc uint32) (uint32, error) {
	next := pc + isa.WordSize

	switch in.Format {
	case isa.FormatPal:
		redirected, err := m.syscall(in.Func)
		if err != nil {
			return 0, err
		}
		m.Cycles += CostSyscall
		if m.Halted || redirected {
			return m.PC, nil
		}
	case isa.FormatMem:
		addr := uint32(m.Reg[in.RB] + in.Disp)
		switch in.Op {
		case isa.OpLDA:
			m.setReg(in.RA, m.Reg[in.RB]+in.Disp)
			m.Cycles += CostOp
		case isa.OpLDAH:
			m.setReg(in.RA, m.Reg[in.RB]+in.Disp<<16)
			m.Cycles += CostOp
		case isa.OpLDW:
			v, err := m.ReadWord(addr)
			if err != nil {
				return 0, err
			}
			m.setReg(in.RA, int32(v))
			m.Cycles += CostMem
		case isa.OpSTW:
			if err := m.WriteWord(addr, uint32(m.Reg[in.RA])); err != nil {
				return 0, err
			}
			m.Cycles += CostMem
		case isa.OpLDB:
			if addr >= uint32(len(m.Mem)) {
				return 0, &TrapError{pc, fmt.Sprintf("byte read out of bounds at %#x", addr)}
			}
			m.setReg(in.RA, int32(m.Mem[addr]))
			m.Cycles += CostMem
		case isa.OpSTB:
			if addr >= uint32(len(m.Mem)) {
				return 0, &TrapError{pc, fmt.Sprintf("byte write out of bounds at %#x", addr)}
			}
			m.Mem[addr] = byte(m.Reg[in.RA])
			if idx := int(addr&^3-objfile.TextBase) / isa.WordSize; idx >= 0 && idx < len(m.icache) {
				m.icache[idx].kind = uInvalid
				m.Telem.InvalidatedWords++
			}
			m.Cycles += CostMem
		}
	case isa.FormatBranch:
		taken := true
		switch in.Op {
		case isa.OpBSRX:
			// Virtual opcode: legal only inside compressed streams.
			return 0, &TrapError{pc, "virtual opcode BSRX in executable memory"}
		case isa.OpBR, isa.OpBSR:
			m.setReg(in.RA, int32(next))
		case isa.OpBEQ:
			taken = m.Reg[in.RA] == 0
		case isa.OpBNE:
			taken = m.Reg[in.RA] != 0
		case isa.OpBLT:
			taken = m.Reg[in.RA] < 0
		case isa.OpBLE:
			taken = m.Reg[in.RA] <= 0
		case isa.OpBGT:
			taken = m.Reg[in.RA] > 0
		case isa.OpBGE:
			taken = m.Reg[in.RA] >= 0
		}
		if taken {
			next = uint32(int64(next) + int64(in.Disp)*isa.WordSize)
			m.Cycles += CostBranchTaken
		} else {
			m.Cycles += CostBranchNotTaken
		}
	case isa.FormatOpReg, isa.FormatOpLit:
		var b int32
		if in.Format == isa.FormatOpLit {
			b = int32(in.Lit)
		} else {
			b = m.Reg[in.RB]
		}
		v, err := m.operate(pc, in.Op, in.Func, m.Reg[in.RA], b)
		if err != nil {
			return 0, err
		}
		m.setReg(in.RC, v)
		m.Cycles += CostOp
	case isa.FormatJump:
		if in.Op != isa.OpJump {
			return 0, &TrapError{pc, "virtual opcode JSRX in executable memory"}
		}
		target := uint32(m.Reg[in.RB]) &^ 3
		m.setReg(in.RA, int32(next))
		next = target
		m.Cycles += CostJump
	case isa.FormatIllegal:
		return 0, &TrapError{pc, fmt.Sprintf("illegal instruction %#08x", isa.Encode(*in))}
	}
	return next, nil
}

func (m *Machine) setReg(r uint32, v int32) {
	if r != isa.RegZero {
		m.Reg[r] = v
	}
}

func (m *Machine) operate(pc, op, fn uint32, a, b int32) (int32, error) {
	boolVal := func(cond bool) int32 {
		if cond {
			return 1
		}
		return 0
	}
	switch op {
	case isa.OpIntA:
		switch fn {
		case isa.FnADD:
			return a + b, nil
		case isa.FnSUB:
			return a - b, nil
		case isa.FnCMPEQ:
			return boolVal(a == b), nil
		case isa.FnCMPLT:
			return boolVal(a < b), nil
		case isa.FnCMPLE:
			return boolVal(a <= b), nil
		case isa.FnCMPULT:
			return boolVal(uint32(a) < uint32(b)), nil
		case isa.FnCMPULE:
			return boolVal(uint32(a) <= uint32(b)), nil
		}
	case isa.OpIntL:
		switch fn {
		case isa.FnAND:
			return a & b, nil
		case isa.FnBIC:
			return a &^ b, nil
		case isa.FnBIS:
			return a | b, nil
		case isa.FnORNOT:
			return a | ^b, nil
		case isa.FnXOR:
			return a ^ b, nil
		case isa.FnEQV:
			return a ^ ^b, nil
		}
	case isa.OpIntS:
		sh := uint32(b) & 31
		switch fn {
		case isa.FnSLL:
			return a << sh, nil
		case isa.FnSRL:
			return int32(uint32(a) >> sh), nil
		case isa.FnSRA:
			return a >> sh, nil
		}
	case isa.OpIntM:
		switch fn {
		case isa.FnMUL:
			return int32(int64(a) * int64(b)), nil
		case isa.FnMULH:
			return int32(int64(a) * int64(b) >> 32), nil
		case isa.FnDIV:
			if b == 0 {
				return 0, &TrapError{pc, "integer division by zero"}
			}
			return a / b, nil
		case isa.FnMOD:
			if b == 0 {
				return 0, &TrapError{pc, "integer remainder by zero"}
			}
			return a % b, nil
		}
	}
	return 0, &TrapError{pc, fmt.Sprintf("unknown operate op=%#x func=%#x", op, fn)}
}

// syscall executes a Pal-format system call. It reports whether control was
// redirected (longjmp), in which case m.PC is already final.
func (m *Machine) syscall(fn uint32) (redirected bool, err error) {
	switch fn {
	case isa.SysHALT:
		m.Halted = true
		m.Status = m.Reg[isa.RegA0]
	case isa.SysGETC:
		if m.inPos < len(m.Input) {
			m.Reg[isa.RegV0] = int32(m.Input[m.inPos])
			m.inPos++
		} else {
			m.Reg[isa.RegV0] = -1
		}
	case isa.SysPUTC:
		m.Output = append(m.Output, byte(m.Reg[isa.RegA0]))
		if m.StackCheck {
			m.SPTrace = append(m.SPTrace, m.Reg[isa.RegSP])
		}
	case isa.SysSETJMP:
		m.jmp = &jmpState{reg: m.Reg, pc: m.PC + isa.WordSize, set: true}
		m.Reg[isa.RegV0] = 0
	case isa.SysLNGJMP:
		if m.jmp == nil || !m.jmp.set {
			return false, &TrapError{m.PC, "longjmp without setjmp"}
		}
		m.Reg = m.jmp.reg
		m.Reg[isa.RegV0] = 1
		m.PC = m.jmp.pc
		return true, nil
	case isa.SysIMB:
		// Architectural instruction-memory barrier; the decode cache is
		// already invalidated on writes, so this only costs cycles.
		m.Cycles += 50
	default:
		return false, &TrapError{m.PC, fmt.Sprintf("unknown syscall %d", fn)}
	}
	return false, nil
}
