package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
)

// runExpr assembles a fragment that computes into a0 and returns the exit
// status (the computed value).
func runExpr(t *testing.T, body string) int32 {
	t.Helper()
	src := "        .text\n        .func main\n" + body + "\n        sys  halt\n"
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Status
}

func TestArithmeticWrapsAt32Bits(t *testing.T) {
	// 0x7FFFFFFF + 1 wraps to -0x80000000.
	got := runExpr(t, `
        li   t0, 0x7FFFFFFF
        add  t0, 1, t0
        li   t1, 0x80000000
        cmpeq t0, t1, a0`)
	if got != 1 {
		t.Fatalf("int32 wraparound broken")
	}
}

func TestShiftCountMasksTo31(t *testing.T) {
	// Shifting by 33 behaves as shifting by 1 (Alpha-style b&31).
	got := runExpr(t, `
        li   t0, 8
        li   t1, 33
        sll  t0, t1, a0`)
	if got != 16 {
		t.Fatalf("sll by 33 = %d, want 16", got)
	}
}

func TestSraSignExtends(t *testing.T) {
	got := runExpr(t, `
        li   t0, -64
        sra  t0, 3, a0`)
	if got != -8 {
		t.Fatalf("sra(-64, 3) = %d", got)
	}
}

func TestUnsignedCompares(t *testing.T) {
	// -1 as unsigned is the maximum value.
	got := runExpr(t, `
        li   t0, -1
        li   t1, 5
        cmpult t1, t0, a0`)
	if got != 1 {
		t.Fatal("cmpult treats operands as signed")
	}
	got = runExpr(t, `
        li   t0, -1
        li   t1, 5
        cmpult t0, t1, a0`)
	if got != 0 {
		t.Fatal("cmpult wrong direction")
	}
}

func TestMulhNegative(t *testing.T) {
	// (-2^30 * 8) >> 32 = -2.
	got := runExpr(t, `
        li   t0, 0xC0000000
        li   t1, 8
        mulh t0, t1, a0`)
	if got != -2 {
		t.Fatalf("mulh = %d, want -2", got)
	}
}

func TestDivTruncatesTowardZero(t *testing.T) {
	if got := runExpr(t, "li t0, -7\n li t1, 2\n div t0, t1, a0"); got != -3 {
		t.Fatalf("-7/2 = %d, want -3", got)
	}
	if got := runExpr(t, "li t0, -7\n li t1, 2\n mod t0, t1, a0"); got != -1 {
		t.Fatalf("-7%%2 = %d, want -1", got)
	}
}

func runProgramStatus(t *testing.T, src string) int32 {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m.Status
}

func TestByteLoadZeroExtends(t *testing.T) {
	got := runProgramStatus(t, `
        .text
        .func main
        la   t0, b
        ldb  a0, 0(t0)
        sys  halt
        .data
b:      .byte 0xFF`)
	if got != 255 {
		t.Fatalf("ldb 0xFF = %d, want 255 (zero-extension)", got)
	}
}

func TestByteStoreTruncates(t *testing.T) {
	got := runProgramStatus(t, `
        .text
        .func main
        la   t0, b
        li   t1, 0x1FF
        stb  t1, 0(t0)
        ldb  a0, 0(t0)
        sys  halt
        .data
b:      .byte 0`)
	if got != 0xFF {
		t.Fatalf("stb truncation = %d", got)
	}
}

func TestLdahShiftsHigh(t *testing.T) {
	got := runExpr(t, `
        ldah t0, 2(zero)
        srl  t0, 16, a0`)
	if got != 2 {
		t.Fatalf("ldah high half = %d", got)
	}
}

func TestLongjmpRestoresStackPointer(t *testing.T) {
	// setjmp in main, longjmp from a deep callee: SP must come back to
	// main's frame.
	src := `
        .text
        .func main
        lda  sp, -32(sp)
        mov  sp, t7
        sys  setjmp
        bne  v0, after
        bsr  ra, deep
after:  cmpeq sp, t7, a0
        sys  halt
        .func deep
        lda  sp, -48(sp)
        sys  longjmp
        ret
`
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	m := New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Status != 1 {
		t.Fatal("longjmp did not restore SP")
	}
}

func TestGetcAfterEOFKeepsReturningMinusOne(t *testing.T) {
	src := `
        .text
        .func main
        sys  getc
        sys  getc
        sys  getc
        mov  v0, a0
        sys  halt
`
	obj, _ := asm.Assemble(src)
	im, _ := objfile.Link("main", obj)
	m := New(im, []byte{65})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Status != -1 {
		t.Fatalf("GETC past EOF = %d", m.Status)
	}
}

func TestJumpMasksLowBits(t *testing.T) {
	// jmp through a register with low bits set still lands word-aligned.
	src := `
        .text
        .func main
        la   t0, target
        add  t0, 2, t0
        jmp  (t0)
        nop
target: li   a0, 5
        sys  halt
`
	obj, _ := asm.Assemble(src)
	im, _ := objfile.Link("main", obj)
	m := New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Status != 5 {
		t.Fatalf("status %d", m.Status)
	}
}
