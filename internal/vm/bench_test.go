package vm

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
)

// stepBenchProgram is an endless loop mixing the instruction classes that
// dominate real EM32 traces: ALU ops, a load/store pair, a compare, and a
// taken branch. It never halts, so the benchmark can call Step b.N times
// without resetting the machine.
const stepBenchProgram = `
        .text
        .func main
        li   t0, 0
        la   t1, buf
loop:   add  t0, 1, t0
        and  t0, 63, t2
        stw  t2, 0(t1)
        ldw  t3, 0(t1)
        add  t3, t2, t3
        cmpult t2, 32, t4
        beq  t4, skip
        add  t3, 1, t3
skip:   br   loop

        .data
buf:    .word 0
`

func stepBenchMachine(b *testing.B) *Machine {
	b.Helper()
	obj, err := asm.Assemble(stepBenchProgram)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	return New(im, nil)
}

// BenchmarkVMStep measures the simulator's per-instruction cost: fetch,
// decode (or predecoded-cache hit), and execute of one instruction. The
// fast and slow sub-benchmarks run the identical program in one process, so
// their ratio is robust against machine-load noise in a way two separate
// runs are not; BENCH_history.json records the per-commit ratio.
func BenchmarkVMStep(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"fast", false}, {"slow", true}} {
		b.Run(mode.name, func(b *testing.B) {
			m := stepBenchMachine(b)
			m.DisableFastPath = mode.disable
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := m.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
