package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profile"
)

// ErrServerClosed is returned by Serve after Shutdown, mirroring net/http.
var ErrServerClosed = errors.New("serve: server closed")

// Options configures a Server.
type Options struct {
	// Workers bounds the number of squash requests processed at once (the
	// size of the worker pool); <= 0 means one per CPU. Each request's
	// pipeline-internal worker count comes from its own core.Config.
	Workers int
	// Timeout bounds one request's total time in the server, queueing
	// included; 0 disables. On expiry the client gets an error response;
	// an already-running squash finishes in the background (the pipeline
	// is not cancellable mid-flight) and still warms the cache.
	Timeout time.Duration
	// CacheEntries bounds the warm squash-result cache; 0 means the
	// default (64), negative disables caching.
	CacheEntries int
	// CacheBytes additionally bounds the result cache by total image
	// bytes; 0 keeps the entry-count-only behavior. With a budget set, the
	// LRU evicts (possibly several) oldest entries until the total fits,
	// and an image larger than the whole budget is never cached.
	CacheBytes int64
	// Handler, when non-nil, replaces the squash pipeline entirely: every
	// request — stats and ping included — is answered by the handler,
	// inline on the connection goroutine (no worker pool, no local result
	// cache, no per-request timeout; the handler owns its own bounds).
	// The cluster router uses this to reuse the daemon's listener, codec,
	// negotiation, metrics, and drain machinery in front of its fan-out.
	Handler func(*Request) *Response
	// PrepCacheDir is the on-disk experiments preparation cache for
	// OpBench requests; empty uses only the in-memory layer.
	PrepCacheDir string
	// Logf receives one structured line per request (and lifecycle
	// events); nil logs to stderr.
	Logf func(format string, args ...any)
	// Record, when set, appends every squash/bench/batch arrival to a
	// JSONL stream (content hash or benchmark key plus arrival offset)
	// that cmd/squashload can replay; nil disables recording.
	Record *StreamRecorder
	// Obs supplies the telemetry recorder: per-request spans go to its
	// tracer (when present) and operational metrics to its registry. Nil —
	// or a recorder without a registry — gets a private metrics-only
	// recorder so the /metrics exports always work.
	Obs *obs.Recorder
	// MaxProto caps the wire protocol version the server accepts; 0 (or
	// anything out of range) means MaxProtoVersion. Capping to 1 makes the
	// daemon behave like a pre-v2 build for compatibility testing: v2
	// openings get a proto_max error response and the connection survives
	// for the client's downgraded resend.
	MaxProto int
}

// Server is the squash daemon.
type Server struct {
	opts  Options
	rec   *obs.Recorder
	pool  *parallel.Pool
	cache *resultCache
	met   *metrics
	logf  func(format string, args ...any)
	reqID atomic.Uint64

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*connState]struct{}
	closed    bool

	connWG sync.WaitGroup

	// testDelay stalls request processing inside the worker (tests of
	// draining and timeouts only). Nanoseconds; atomic because tests adjust
	// it while abandoned workers may still be reading it.
	testDelay atomic.Int64
}

// connState tracks one client connection so Shutdown can distinguish idle
// connections (closed immediately) from those with a request in flight
// (drained: the response is written, then the connection closes).
type connState struct {
	c  net.Conn
	mu sync.Mutex
	// busy marks a request between read and response write.
	busy bool
	// draining tells the handler to close after the in-flight response.
	draining bool
}

// NewServer builds a server; call Serve with one or more listeners.
func NewServer(opts Options) *Server {
	if opts.CacheEntries == 0 {
		opts.CacheEntries = 64
	}
	logf := opts.Logf
	if logf == nil {
		l := log.New(os.Stderr, "squashd ", log.LstdFlags|log.Lmicroseconds)
		logf = l.Printf
	}
	rec := opts.Obs
	if rec == nil {
		rec = &obs.Recorder{}
	}
	if rec.Metrics == nil {
		rec = &obs.Recorder{Trace: rec.Trace, Metrics: obs.NewRegistry()}
	}
	return &Server{
		opts:      opts,
		rec:       rec,
		pool:      parallel.NewPoolObs(opts.Workers, rec.Metrics),
		cache:     newResultCache(opts.CacheEntries, opts.CacheBytes),
		met:       newMetrics(rec.Metrics),
		logf:      logf,
		listeners: map[net.Listener]struct{}{},
		conns:     map[*connState]struct{}{},
	}
}

// Obs exposes the server's recorder: its registry backs the HTTP metrics
// endpoints and its tracer (when attached) holds the per-request spans.
func (s *Server) Obs() *obs.Recorder { return s.rec }

// Listen opens the daemon socket for an address spec ("unix:/path",
// "tcp:host:port", or bare "host:port"). A stale Unix socket file from a
// previous run is removed first.
func Listen(addr string) (net.Listener, error) {
	network, address := SplitAddr(addr)
	if network == "unix" {
		if _, err := os.Stat(address); err == nil {
			// Probe whether a live daemon owns it before unlinking.
			if c, err := net.Dial("unix", address); err == nil {
				c.Close()
				return nil, fmt.Errorf("serve: %s already has a live server", addr)
			}
			os.Remove(address)
		}
	}
	return net.Listen(network, address)
}

// Serve accepts connections until Shutdown. It returns ErrServerClosed
// after a graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		cs := &connState{c: conn}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[cs] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.handleConn(cs)
	}
}

func (s *Server) removeConn(cs *connState) {
	s.mu.Lock()
	delete(s.conns, cs)
	s.mu.Unlock()
	cs.c.Close()
	s.connWG.Done()
}

func (s *Server) handleConn(cs *connState) {
	defer s.removeConn(cs)
	setNoDelay(cs.c)
	codec := newServerCodec(cs.c, cs.c, s.opts.MaxProto)
	defer codec.close()
	counted := false
	for {
		var req Request
		if err := codec.readRequest(&req); err != nil {
			var pe *protoError
			if errors.As(err, &pe) {
				// A protocol violation or version miss gets an explicit
				// error frame (v1: the framing every client reads) before
				// the connection closes — or, for a recoverable version
				// miss, survives for the client's downgraded resend.
				resp := &Response{Err: pe.msg, ProtoMax: pe.max}
				if werr := codec.writeResponse(resp); werr == nil && !pe.fatal {
					continue
				}
			}
			// EOF, client close, or the shutdown close of an idle
			// connection all end the session here.
			return
		}
		if !counted {
			s.met.proto(codec.ver)
			counted = true
		}
		cs.mu.Lock()
		if cs.draining {
			// Shutdown won the race while the frame was in transit; the
			// request was never in flight, so it is not served.
			cs.mu.Unlock()
			req.releasePayload()
			return
		}
		cs.busy = true
		cs.mu.Unlock()

		resp := s.dispatch(&req)
		err := codec.writeResponse(resp)

		cs.mu.Lock()
		cs.busy = false
		drain := cs.draining
		cs.mu.Unlock()
		if err != nil || drain {
			return
		}
	}
}

// dispatch runs one request through the bounded pool with the per-request
// timeout and records metrics and the structured log line.
func (s *Server) dispatch(req *Request) *Response {
	id := s.reqID.Add(1)
	start := time.Now()
	s.opts.Record.Record(req)
	s.met.begin(req.Op)
	sp := s.rec.Span("squashd.request", "id", id, "op", req.Op, "bench", req.Bench, "items", len(req.Items))

	var resp *Response
	timedOut := false
	switch {
	case s.opts.Handler != nil:
		// Delegated serving (the router tier): the handler answers every
		// op inline on the connection goroutine. The payload releases only
		// after the handler returns — it may still be forwarding the
		// request's zero-copy sections.
		resp = s.opts.Handler(req)
		req.releasePayload()
	case req.Op == OpStats:
		// Served inline: the stats endpoint must answer even when every
		// worker is busy — that is exactly when an operator asks.
		resp = &Response{OK: true, Server: s.met.snapshot()}
		req.releasePayload()
	case req.Op == OpPing:
		resp = &Response{OK: true}
		req.releasePayload()
	default:
		resp, timedOut = s.dispatchWork(req)
	}

	dur := time.Since(start)
	s.met.end(dur, !resp.OK, timedOut)
	sp.SetArg("cache", cacheLabel(resp))
	sp.SetArg("ok", resp.OK)
	sp.End()
	s.logf("req=%d op=%s bench=%q items=%d in_bytes=%d out_bytes=%d cache=%s dur=%s ok=%v err=%q",
		id, req.Op, req.Bench, len(req.Items), len(req.Obj)+len(req.Profile), respBytes(resp),
		cacheLabel(resp), dur.Round(time.Microsecond), resp.OK, resp.Err)
	return resp
}

// respBytes sums the image bytes a response carries, across batch results.
func respBytes(r *Response) int {
	n := len(r.Image)
	for i := range r.Results {
		n += len(r.Results[i].Image)
	}
	return n
}

func cacheLabel(r *Response) string {
	switch {
	case r.Cached && r.PrepCached:
		return "hit+prep"
	case r.Cached:
		return "hit"
	case r.PrepCached:
		return "prep"
	default:
		return "miss"
	}
}

// dispatchWork submits a squash/bench request to the worker pool and waits
// for its result or the request timeout.
func (s *Server) dispatchWork(req *Request) (*Response, bool) {
	ctx := context.Background()
	if s.opts.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.Timeout)
		defer cancel()
	}
	done := make(chan *Response, 1) // buffered: a late worker never blocks
	// The frame buffer backing a v2 request's payload recycles when the
	// worker finishes — not when the response is sent — because a timed-out
	// request's worker keeps reading the payload after the error response.
	if err := s.pool.Submit(ctx, func() {
		resp := s.process(req)
		req.releasePayload()
		done <- resp
	}); err != nil {
		// Submit failed, so the closure will never run: the payload is
		// released here instead.
		req.releasePayload()
		if err == parallel.ErrPoolClosed {
			return errResponse("server shutting down"), false
		}
		return errResponse(fmt.Sprintf("request timed out in queue after %s", s.opts.Timeout)), true
	}
	select {
	case resp := <-done:
		return resp, false
	case <-ctx.Done():
		return errResponse(fmt.Sprintf("request timed out after %s", s.opts.Timeout)), true
	}
}

func errResponse(msg string) *Response { return &Response{Err: msg} }

// process executes one squash or bench request on a pool worker.
func (s *Server) process(req *Request) *Response {
	if d := s.testDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	conf := core.DefaultConfig()
	if req.Config != nil {
		conf = *req.Config
	}
	switch req.Op {
	case OpSquash:
		if len(req.Obj) == 0 || len(req.Profile) == 0 {
			return errResponse("squash request needs obj and profile bytes")
		}
		return s.squash(req.Obj, req.Profile, conf, false, req.NoImage)
	case OpBench:
		scale := req.Scale
		if scale == 0 {
			scale = 1.0
		}
		b, prepHit, err := experiments.PrepareSpec(req.Bench, scale, s.opts.PrepCacheDir)
		if err != nil {
			// The failed preparation still counts as a prep-cache miss —
			// returning early without recording it silently dropped errored
			// requests from the hit-rate denominator.
			s.met.prepCache(false)
			s.met.prepError()
			return errResponse(err.Error())
		}
		s.met.prepCache(prepHit)
		// The object and profile images live only for the duration of this
		// request (squash parses them and the result cache keys on their
		// content), so they serialize into pooled scratch.
		sc := getReqScratch()
		defer putReqScratch(sc)
		sc.obj.Reset()
		if _, err := b.SqObj.WriteTo(&sc.obj); err != nil {
			return errResponse(err.Error())
		}
		sc.prof.Reset()
		if _, err := b.Profile.WriteTo(&sc.prof); err != nil {
			return errResponse(err.Error())
		}
		resp := s.squash(sc.obj.Bytes(), sc.prof.Bytes(), conf, prepHit, req.NoImage)
		return resp
	case OpBatch:
		return s.processBatch(req)
	default:
		return errResponse(fmt.Sprintf("unknown op %q", req.Op))
	}
}

// squash answers from the warm result cache or runs the pipeline and fills
// it. The cached image bytes are exactly what the fresh path serializes, so
// hit and miss responses are byte-identical. noImage strips the image from
// the response only: the squash still runs, the cache still warms, and
// stats/footprint report exactly as with the image attached.
func (s *Server) squash(objBytes, profBytes []byte, conf core.Config, prepHit, noImage bool) *Response {
	key := resultKey(objBytes, profBytes, conf)
	if e, ok := s.cache.get(key); ok {
		s.met.squashCache(true)
		stats, foot := e.stats, e.foot
		resp := &Response{OK: true, Image: e.image, Stats: &stats, Foot: &foot,
			Cached: true, PrepCached: prepHit}
		if noImage {
			resp.Image = nil
		}
		return resp
	}
	s.met.squashCache(false)

	obj, err := objfile.ReadObject(bytes.NewReader(objBytes))
	if err != nil {
		return errResponse(fmt.Sprintf("bad object: %v", err))
	}
	counts, err := profile.ReadCounts(bytes.NewReader(profBytes))
	if err != nil {
		return errResponse(fmt.Sprintf("bad profile: %v", err))
	}
	out, err := core.SquashObs(obj, counts, conf, s.rec)
	if err != nil {
		return errResponse(err.Error())
	}
	// Serialize through pooled scratch; the cache and the response retain
	// only the exact-size copy, never the recycled buffer.
	sc := getReqScratch()
	defer putReqScratch(sc)
	image, err := serializeInto(&sc.img, out.Image)
	if err != nil {
		return errResponse(err.Error())
	}
	// put reports the post-eviction totals from inside its critical
	// section, so the gauges stay accurate even when a byte-budget insert
	// evicts several entries at once.
	entries, cacheBytes := s.cache.put(&cacheEntry{key: key, image: image, stats: out.Stats, foot: out.Foot})
	s.met.resEntries.Set(int64(entries))
	s.met.resBytes.Set(cacheBytes)
	stats, foot := out.Stats, out.Foot
	resp := &Response{OK: true, Image: image, Stats: &stats, Foot: &foot,
		PrepCached: prepHit}
	if noImage {
		resp.Image = nil
	}
	return resp
}

// Shutdown stops accepting connections, drains in-flight requests, and
// waits (bounded by ctx) for every connection handler to finish. Idle
// connections are closed immediately; a connection mid-request writes its
// response first. After Shutdown, Serve returns ErrServerClosed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*connState, 0, len(s.conns))
	for cs := range s.conns {
		conns = append(conns, cs)
	}
	s.mu.Unlock()

	for _, cs := range conns {
		cs.mu.Lock()
		cs.draining = true
		if !cs.busy {
			cs.c.Close()
		}
		cs.mu.Unlock()
	}

	drained := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		// Force-close whatever is left; handlers exit on the write error.
		s.mu.Lock()
		for cs := range s.conns {
			cs.c.Close()
		}
		s.mu.Unlock()
		err = ctx.Err()
	}
	s.pool.Close()
	s.logf("shutdown complete err=%v", err)
	return err
}

// StatsSnapshot exposes the live counters (tests and the -stats client).
func (s *Server) StatsSnapshot() *Snapshot { return s.met.snapshot() }
