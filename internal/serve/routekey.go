package serve

// Route keys: the content-based placement hash the cluster router shards
// on. The point of exporting them from serve (rather than re-deriving in
// internal/cluster) is that inline requests shard on exactly the hash the
// backend result cache keys on — resultKey — so every repeat of an
// (object, profile, config) triple lands on the backend whose LRU already
// holds its image. Named-benchmark requests shard on a deterministic
// (bench, scale, config) digest for the same reason: the prepared object
// is deterministic per spec, so repeats are cache hits on their shard.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"math"

	"repro/internal/core"
)

// RouteKey returns the placement key for a single-object request and
// whether the request routes by content at all. OpSquash keys on the
// result-cache content hash; OpBench keys on (bench, scale, config).
// Batch frames return ok=false here — they shard per item through
// RouteKeyItem — as do stats, ping, and admin ops, which are not placed
// by content.
func RouteKey(req *Request) ([32]byte, bool) {
	conf := core.DefaultConfig()
	if req.Config != nil {
		conf = *req.Config
	}
	switch req.Op {
	case OpSquash:
		return resultKey(req.Obj, req.Profile, conf), true
	case OpBench:
		return benchRouteKey(req.Bench, req.Scale, conf), true
	}
	return [32]byte{}, false
}

// RouteKeyItem returns the placement key for one batch item, mirroring
// the item's dedup semantics: a named benchmark wins over inline bytes.
func RouteKeyItem(it *BatchItem) [32]byte {
	conf := core.DefaultConfig()
	if it.Config != nil {
		conf = *it.Config
	}
	if it.Bench != "" {
		return benchRouteKey(it.Bench, it.Scale, conf)
	}
	return resultKey(it.Obj, it.Profile, conf)
}

// benchRouteKey digests a named-benchmark request's identity. Scale 0
// normalizes to 1.0 (the server's default) and worker counts are zeroed,
// exactly as resultKey does, so spellings of the same work share a shard.
func benchRouteKey(bench string, scale float64, conf core.Config) [32]byte {
	if scale == 0 {
		scale = 1.0
	}
	conf.Workers = 0
	conf.Regions.Workers = 0
	confJSON, _ := json.Marshal(conf) // struct of scalars; cannot fail
	h := sha256.New()
	h.Write([]byte("bench\x00"))
	h.Write([]byte(bench))
	h.Write([]byte{0})
	var sc [8]byte
	binary.LittleEndian.PutUint64(sc[:], math.Float64bits(scale))
	h.Write(sc[:])
	h.Write(confJSON)
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}
