package serve

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestSyntheticClosedLoop: a budgeted closed-loop run completes exactly
// its budget, measures latency, and sees the warm cache absorb repeats.
func TestSyntheticClosedLoop(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, _ := buildWorkload(t, 3, conf)

	_, addr, stop := startServer(t, Options{Workers: 4})
	defer stop()

	rep, err := Synthetic(LoadOptions{
		Addr:     addr,
		Conns:    3,
		Obj:      obj,
		Profile:  prof,
		Requests: 20,
	})
	if err != nil {
		t.Fatalf("synthetic: %v", err)
	}
	if rep.Mode != "synthetic" || rep.Concurrency != 3 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Requests != 20 || rep.Objects != 20 {
		t.Errorf("requests/objects = %d/%d, want 20/20", rep.Requests, rep.Objects)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if rep.ReqPerSec <= 0 || rep.DurationSec <= 0 {
		t.Errorf("throughput not measured: %+v", rep)
	}
	if rep.Latency.Max <= 0 || rep.Latency.P50 > rep.Latency.P99 {
		t.Errorf("latency distribution inconsistent: %+v", rep.Latency)
	}
	// 20 requests for one content key: everything after the first
	// computation hits the warm cache.
	if rep.CacheHitRate < 0.5 {
		t.Errorf("cache hit rate %.2f; warm state not reused under load", rep.CacheHitRate)
	}
}

// TestSyntheticBatchMode: BatchSize > 1 sends batch frames and counts
// objects accordingly.
func TestSyntheticBatchMode(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, _ := buildWorkload(t, 5, conf)

	s, addr, stop := startServer(t, Options{Workers: 4})
	defer stop()

	rep, err := Synthetic(LoadOptions{
		Addr:      addr,
		Conns:     2,
		Obj:       obj,
		Profile:   prof,
		BatchSize: 4,
		Requests:  5,
	})
	if err != nil {
		t.Fatalf("synthetic batch: %v", err)
	}
	if rep.Requests != 5 || rep.Objects != 20 {
		t.Errorf("requests/objects = %d/%d, want 5/20", rep.Requests, rep.Objects)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	if snap := s.StatsSnapshot(); snap.BatchFrames != 5 || snap.BatchObjects != 20 {
		t.Errorf("server saw %d frames / %d objects, want 5/20", snap.BatchFrames, snap.BatchObjects)
	}
}

// TestReplayRoundTrip: requests recorded from a live server replay against
// it, inline entries resolving through the fallback payload, and the
// report accounts for every entry.
func TestReplayRoundTrip(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, _ := buildWorkload(t, 7, conf)

	var rec syncBuffer
	_, addr, stop := startServer(t, Options{Workers: 2, Record: NewStreamRecorder(&rec)})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}

	// Record a short mix: three one-shots and a batch.
	for i := 0; i < 3; i++ {
		if _, err := Do(conn, &Request{Op: OpSquash, Obj: obj, Profile: prof}); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	if _, err := Do(conn, &Request{Op: OpBatch, Items: []BatchItem{
		{Obj: obj, Profile: prof}, {Obj: obj, Profile: prof},
	}}); err != nil {
		t.Fatalf("seed batch: %v", err)
	}
	conn.Close()

	entries, err := ReadStream(strings.NewReader(rec.String()))
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}

	rep, err := Replay(LoadOptions{
		Addr:            addr,
		Conns:           2,
		Rate:            100, // the recorded gaps are tiny; collapse them
		FallbackObj:     obj,
		FallbackProfile: prof,
	}, entries)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if rep.Mode != "replay" || rep.Rate != 100 {
		t.Errorf("report header wrong: %+v", rep)
	}
	if rep.Requests != 4 || rep.Objects != 5 || rep.Skipped != 0 {
		t.Errorf("requests/objects/skipped = %d/%d/%d, want 4/5/0", rep.Requests, rep.Objects, rep.Skipped)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	// Everything replayed was already computed during seeding.
	if rep.CacheHitRate != 1 {
		t.Errorf("cache hit rate %.2f on a fully warm replay", rep.CacheHitRate)
	}
}

// TestReplaySkipsInlineWithoutFallback: inline-only entries cannot replay
// without a payload; an all-inline stream is a loud error, not a silent
// empty run.
func TestReplaySkipsInlineWithoutFallback(t *testing.T) {
	_, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()

	inline := []RecordEntry{{TMs: 0, Op: OpSquash, Key: "deadbeef"}}
	if _, err := Replay(LoadOptions{Addr: addr, Conns: 1}, inline); err == nil {
		t.Fatal("all-inline stream without fallback replayed")
	}

	// A mixed stream replays the bench entry and counts the skip.
	mixed := append([]RecordEntry{{TMs: 0, Op: OpBench, Bench: "no-such-benchmark"}}, inline...)
	rep, err := Replay(LoadOptions{Addr: addr, Conns: 1}, mixed)
	if err != nil {
		t.Fatalf("mixed stream: %v", err)
	}
	if rep.Requests != 1 || rep.Skipped != 1 {
		t.Errorf("requests/skipped = %d/%d, want 1/1", rep.Requests, rep.Skipped)
	}
	// The unknown benchmark fails server-side; that is an error, not a
	// transport problem.
	if rep.Errors != 1 {
		t.Errorf("errors = %d, want 1", rep.Errors)
	}
}

// TestReplayPacing: arrival offsets are honored — replaying two entries
// 300ms apart at 1x takes at least that long, and at high rate far less.
func TestReplayPacing(t *testing.T) {
	_, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()

	entries := []RecordEntry{
		{TMs: 0, Op: OpBench, Bench: "no-such-benchmark"},
		{TMs: 300, Op: OpBench, Bench: "no-such-benchmark"},
	}
	start := time.Now()
	if _, err := Replay(LoadOptions{Addr: addr, Conns: 2, Rate: 1}, entries); err != nil {
		t.Fatalf("replay 1x: %v", err)
	}
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Errorf("1x replay of a 300ms stream finished in %s; schedule not honored", d)
	}

	start = time.Now()
	if _, err := Replay(LoadOptions{Addr: addr, Conns: 2, Rate: 10}, entries); err != nil {
		t.Fatalf("replay 10x: %v", err)
	}
	if d := time.Since(start); d > 250*time.Millisecond {
		t.Errorf("10x replay of a 300ms stream took %s; rate not applied", d)
	}
}
