package serve

import (
	"math"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestLatencyEmptyAndTinyWindows hardens the percentile summary against the
// degenerate windows a fresh or barely-used daemon has: an empty window must
// report all zeros (never NaN), and a single sample must be every quantile.
func TestLatencyEmptyAndTinyWindows(t *testing.T) {
	m := newMetrics(obs.NewRegistry())

	s := m.snapshot()
	lat := s.Latency
	if lat.Count != 0 || lat.P50 != 0 || lat.P90 != 0 || lat.P99 != 0 || lat.Max != 0 {
		t.Fatalf("empty window: want all-zero latency, got %+v", lat)
	}
	for _, v := range []float64{lat.P50, lat.P90, lat.P99, lat.Max, s.UptimeSec} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("empty window produced non-finite value: %+v", lat)
		}
	}

	m.begin(OpPing)
	m.end(5*time.Millisecond, false, false)
	lat = m.snapshot().Latency
	if lat.Count != 1 {
		t.Fatalf("one sample: count = %d", lat.Count)
	}
	for _, v := range []float64{lat.P50, lat.P90, lat.P99, lat.Max} {
		if v != 5 {
			t.Fatalf("one sample: every quantile should be 5ms, got %+v", lat)
		}
	}

	// A second, slower request moves the upper quantiles but not the median.
	m.begin(OpPing)
	m.end(15*time.Millisecond, true, true)
	s = m.snapshot()
	lat = s.Latency
	if lat.Count != 2 || lat.P50 != 5 || lat.Max != 15 {
		t.Fatalf("two samples: got %+v", lat)
	}
	if s.Errors != 1 || s.Timeouts != 1 {
		t.Fatalf("error/timeout counters: got %+v", s)
	}
}
