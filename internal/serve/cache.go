package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"sync"

	"repro/internal/core"
)

// resultCache is the daemon's warm state: finished squash results — the
// linked image (whose metadata carries the trained per-config codebooks)
// plus statistics — keyed by a content hash of (object, profile, config).
// Squash is deterministic for a given key, so serving a cached image is
// byte-identical to recomputing it; the cache only ever changes latency.
// Bounded LRU so a daemon fed a stream of distinct programs stays flat in
// memory: by entry count always, and additionally by total image bytes
// when a byte budget is set — entry counts alone let a stream of large
// distinct images grow memory without bound.
type resultCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64      // 0 = no byte budget
	bytes    int64      // sum of len(image) across resident entries
	order    *list.List // front = most recently used
	entries  map[[32]byte]*list.Element
}

type cacheEntry struct {
	key   [32]byte
	image []byte
	stats core.Stats
	foot  core.Footprint
}

func newResultCache(capacity int, maxBytes int64) *resultCache {
	return &resultCache{cap: capacity, maxBytes: maxBytes,
		order: list.New(), entries: map[[32]byte]*list.Element{}}
}

// resultKey hashes everything the squash output depends on. Worker counts
// are zeroed first: the pipeline is byte-identical at any count (the PR 1
// determinism gate), so they must not fragment the cache.
func resultKey(obj, prof []byte, conf core.Config) [32]byte {
	conf.Workers = 0
	conf.Regions.Workers = 0
	confJSON, _ := json.Marshal(conf) // struct of scalars; cannot fail
	h := sha256.New()
	var n [4]byte
	for _, part := range [][]byte{obj, prof, confJSON} {
		binary.LittleEndian.PutUint32(n[:], uint32(len(part)))
		h.Write(n[:])
		h.Write(part)
	}
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}

func (c *resultCache) get(key [32]byte) (*cacheEntry, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry), true
}

// put inserts an entry and evicts from the LRU tail until both the entry
// cap and the byte budget hold again. It returns the resident entry count
// and byte total after the insert, from the same critical section, so the
// caller's gauge stays accurate across multi-entry evictions. An entry
// larger than the whole byte budget is not cached at all: admitting it
// would evict everything else and still bust the budget.
func (c *resultCache) put(e *cacheEntry) (entries int, bytes int64) {
	if c.cap <= 0 {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.maxBytes > 0 && int64(len(e.image)) > c.maxBytes {
		return c.order.Len(), c.bytes
	}
	if el, ok := c.entries[e.key]; ok {
		// Concurrent miss on the same key: both computed the same bytes;
		// keep the resident entry.
		c.order.MoveToFront(el)
		return c.order.Len(), c.bytes
	}
	c.entries[e.key] = c.order.PushFront(e)
	c.bytes += int64(len(e.image))
	for c.order.Len() > c.cap || (c.maxBytes > 0 && c.bytes > c.maxBytes) {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		evicted := oldest.Value.(*cacheEntry)
		delete(c.entries, evicted.key)
		c.bytes -= int64(len(evicted.image))
	}
	return c.order.Len(), c.bytes
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// size reports resident entries and their total image bytes.
func (c *resultCache) size() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len(), c.bytes
}
