package serve

import (
	"fmt"
	"sync"
)

// ClientPool keeps a bounded stack of idle, already-negotiated Clients to
// one daemon address, so a router forwarding thousands of requests does
// not redial (and renegotiate the protocol) per request. A Client is
// single-goroutine, so the pool hands out exclusive ownership: Get pops an
// idle connection or dials a fresh one; Put returns a healthy connection
// for reuse. A connection that saw a transport error must be Closed by
// the caller instead of Put — the pool never inspects health itself.
type ClientPool struct {
	addr    string
	proto   int // pinned protocol version; 0 negotiates
	maxIdle int

	mu     sync.Mutex
	idle   []*Client
	closed bool
}

// NewClientPool builds a pool for addr. proto pins the wire protocol (0
// negotiates, preferring v2); maxIdle bounds retained idle connections
// (<= 0 means 4).
func NewClientPool(addr string, proto, maxIdle int) *ClientPool {
	if maxIdle <= 0 {
		maxIdle = 4
	}
	return &ClientPool{addr: addr, proto: proto, maxIdle: maxIdle}
}

// Addr reports the daemon address the pool dials.
func (p *ClientPool) Addr() string { return p.addr }

// Get returns an exclusive connection: the most recently parked idle one
// (its protocol already latched), or a freshly dialed client.
func (p *ClientPool) Get() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("serve: client pool for %s is closed", p.addr)
	}
	if n := len(p.idle); n > 0 {
		c := p.idle[n-1]
		p.idle[n-1] = nil
		p.idle = p.idle[:n-1]
		p.mu.Unlock()
		return c, nil
	}
	p.mu.Unlock()
	return DialClientProto(p.addr, p.proto)
}

// Put parks a healthy connection for reuse. Beyond maxIdle — or after
// Close — the connection is closed instead.
func (p *ClientPool) Put(c *Client) {
	if c == nil {
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, c)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	c.Close()
}

// Close closes every idle connection and makes future Gets fail.
// Connections currently checked out close via their callers.
func (p *ClientPool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, c := range idle {
		c.Close()
	}
}
