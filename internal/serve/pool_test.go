package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestServePooledWarmDeterminismInterleaved is the pooled-path determinism
// guard: a warm daemon — pools enabled, result cache disabled so every
// request runs the full pipeline through recycled buffers — is hammered by
// concurrent clients interleaving requests of very different sizes, and
// every returned image must equal the fresh one-shot squash of the same
// inputs. Interleaving matters: a size-S request right after a size-XL one
// reuses the XL request's grown buffers, which is exactly where a stale-
// length or aliasing bug in the pools would surface. The CI race job runs
// this under -race, covering concurrent pool access.
func TestServePooledWarmDeterminismInterleaved(t *testing.T) {
	core.SetPooling(true)
	SetPooling(true)

	confA := core.DefaultConfig()
	confB := core.DefaultConfig()
	confB.Coder = core.CoderLZ
	confB.Theta = 0.01

	type workload struct {
		obj, prof, want []byte
		conf            core.Config
	}
	var loads []workload
	// Different seeds give programs of different sizes; both coders widen
	// the spread of buffer shapes a single pool sees.
	for _, seed := range []int64{3, 7, 11, 19} {
		for _, conf := range []core.Config{confA, confB} {
			obj, prof, want := buildWorkload(t, seed, conf)
			loads = append(loads, workload{obj, prof, want, conf})
		}
	}

	s, addr, stop := startServer(t, Options{Workers: 4, CacheEntries: -1})
	defer stop()

	const clients = 6
	const reqsPerClient = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < reqsPerClient; i++ {
				// Stride the workload list differently per client so the
				// server sees size transitions in varying orders.
				w := loads[(c*3+i*5)%len(loads)]
				resp, err := Do(conn, &Request{Op: OpSquash, Obj: w.obj, Profile: w.prof, Config: &w.conf})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				if !resp.OK {
					errs <- fmt.Errorf("client %d req %d: server error: %s", c, i, resp.Err)
					return
				}
				if resp.Cached {
					errs <- fmt.Errorf("client %d req %d: cache hit with caching disabled", c, i)
					return
				}
				if !bytes.Equal(resp.Image, w.want) {
					errs <- fmt.Errorf("client %d req %d: pooled warm image diverged from one-shot squash (%d vs %d bytes)",
						c, i, len(resp.Image), len(w.want))
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	snap := s.StatsSnapshot()
	if snap.Errors != 0 {
		t.Fatalf("server reported %d errors", snap.Errors)
	}
}

// TestSerializeIntoCopiesExact: the bytes serializeInto returns are an
// independent copy — reusing the scratch buffer for a different payload must
// not disturb them — and are exactly sized (no growth slack retained).
func TestSerializeIntoCopiesExact(t *testing.T) {
	var buf bytes.Buffer
	first, err := serializeInto(&buf, bytes.NewReader([]byte("squashed image payload")))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), first...)
	if cap(first) != len(first) {
		t.Fatalf("copy has cap %d for len %d; cache entries would pin slack", cap(first), len(first))
	}
	if _, err := serializeInto(&buf, bytes.NewReader(bytes.Repeat([]byte{0xAA}, 4096))); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, want) {
		t.Fatal("buffer reuse mutated previously returned bytes")
	}
}
