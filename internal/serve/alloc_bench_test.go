package serve

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// BenchmarkRequestScratch is the paired allocation benchmark for the
// daemon's per-request serialization scratch: one op serializes a squashed
// image the way a cache-miss response does. "pooled" recycles the scratch
// buffer and pays only the exact-size copy the cache retains; "fresh" grows
// a new buffer from zero per request, the pre-pool behaviour. CI gates the
// pooled allocs/op ceiling and the fresh/pooled reduction via benchhist.
func BenchmarkRequestScratch(b *testing.B) {
	src := testprog.Random(7)
	obj, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(im, []byte("request scratch bench"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	out, err := core.Squash(obj, m.Profile, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, pooled bool) {
		b.Helper()
		SetPooling(pooled)
		defer SetPooling(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := getReqScratch()
			image, err := serializeInto(&sc.img, out.Image)
			if err != nil {
				b.Fatal(err)
			}
			if len(image) == 0 {
				b.Fatal("empty image")
			}
			putReqScratch(sc)
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh", func(b *testing.B) { run(b, false) })
}
