package serve

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// BenchmarkRequestScratch is the paired allocation benchmark for the
// daemon's per-request serialization scratch: one op serializes a squashed
// image the way a cache-miss response does. "pooled" recycles the scratch
// buffer and pays only the exact-size copy the cache retains; "fresh" grows
// a new buffer from zero per request, the pre-pool behaviour. CI gates the
// pooled allocs/op ceiling and the fresh/pooled reduction via benchhist.
func BenchmarkRequestScratch(b *testing.B) {
	src := testprog.Random(7)
	obj, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(im, []byte("request scratch bench"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	out, err := core.Squash(obj, m.Profile, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, pooled bool) {
		b.Helper()
		SetPooling(pooled)
		defer SetPooling(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sc := getReqScratch()
			image, err := serializeInto(&sc.img, out.Image)
			if err != nil {
				b.Fatal(err)
			}
			if len(image) == 0 {
				b.Fatal("empty image")
			}
			putReqScratch(sc)
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh", func(b *testing.B) { run(b, false) })
}

// BenchmarkFrameCodecAlloc is the paired allocation benchmark for the wire
// codec: one warm cache-hit squash exchange as the server sees it — read
// and decode a request frame, encode and write the cached response. "v2"
// is the binary frame codec (pooled buffers, zero-copy payload sections);
// "v1" is the length-prefixed JSON codec with base64 payloads. CI gates
// the v2 allocs/op ceiling and the v1/v2 reduction via benchhist.
func BenchmarkFrameCodecAlloc(b *testing.B) {
	src := testprog.Random(7)
	obj, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(im, []byte("frame codec bench"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		b.Fatal(err)
	}
	var ob, pb, img bytes.Buffer
	if _, err := obj.WriteTo(&ob); err != nil {
		b.Fatal(err)
	}
	if _, err := profile.Counts(m.Profile).WriteTo(&pb); err != nil {
		b.Fatal(err)
	}
	out, err := core.Squash(obj, m.Profile, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := out.Image.WriteTo(&img); err != nil {
		b.Fatal(err)
	}

	req := &Request{Op: OpSquash, Obj: ob.Bytes(), Profile: pb.Bytes()}
	stats, foot := out.Stats, out.Foot
	resp := &Response{OK: true, Image: img.Bytes(), Stats: &stats, Foot: &foot, Cached: true}

	b.Run("v2", func(b *testing.B) {
		var frame bytes.Buffer
		fw := bufio.NewWriter(&frame)
		sc := getFrameScratch()
		defer putFrameScratch(sc)
		if err := writeRequestV2(fw, sc, req); err != nil {
			b.Fatal(err)
		}
		fw.Flush()
		reqFrame := frame.Bytes()

		rd := bytes.NewReader(reqFrame)
		br := bufio.NewReaderSize(rd, frameIOSize)
		bw := bufio.NewWriterSize(io.Discard, frameIOSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(reqFrame)
			br.Reset(rd)
			fb, env, pay, err := readFrameBodyV2(br)
			if err != nil {
				b.Fatal(err)
			}
			var r Request
			if err := decodeRequestV2(sc, env, pay, fb, &r); err != nil {
				b.Fatal(err)
			}
			if err := writeResponseV2(bw, sc, resp); err != nil {
				b.Fatal(err)
			}
			bw.Flush()
			r.releasePayload()
		}
	})
	b.Run("v1", func(b *testing.B) {
		var frame bytes.Buffer
		if err := WriteFrame(&frame, req); err != nil {
			b.Fatal(err)
		}
		reqFrame := frame.Bytes()

		rd := bytes.NewReader(reqFrame)
		br := bufio.NewReaderSize(rd, frameIOSize)
		bw := bufio.NewWriterSize(io.Discard, frameIOSize)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rd.Reset(reqFrame)
			br.Reset(rd)
			var r Request
			if err := ReadFrame(br, &r); err != nil {
				b.Fatal(err)
			}
			if err := WriteFrame(bw, resp); err != nil {
				b.Fatal(err)
			}
			bw.Flush()
		}
	})
}
