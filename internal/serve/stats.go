package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// metrics aggregates the daemon's operational counters. All methods are
// safe for concurrent use.
//
// The counters live twice on purpose: plain fields under the mutex feed
// the OpStats wire snapshot (whose format predates the telemetry layer
// and must stay stable), while the obs registry carries the same events
// for the HTTP /metrics exports. Latency is registry-only: the windowed
// obs histogram replays the old ring's nearest-rank percentiles exactly,
// and reports zeros — never NaN — on an empty or one-sample window.
type metrics struct {
	mu       sync.Mutex
	started  time.Time
	requests map[string]uint64
	errors   uint64
	timeouts uint64

	squashHits, squashMisses uint64
	prepHits, prepMisses     uint64
	prepErrors               uint64

	batchFrames, batchObjects, batchShared uint64

	protoConns map[string]uint64

	inFlight int

	reg        *obs.Registry
	lat        *obs.Histogram // "squashd_request_ms", recent-window latency
	inFlightG  *obs.Gauge
	errorsC    *obs.Counter
	timeoutsC  *obs.Counter
	resHitC    *obs.Counter
	resMissC   *obs.Counter
	prepHitC   *obs.Counter
	prepMissC  *obs.Counter
	prepErrC   *obs.Counter
	resEntries *obs.Gauge
	resBytes   *obs.Gauge

	batchFramesC  *obs.Counter
	batchObjectsC *obs.Counter
	batchSharedC  *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		started:    time.Now(),
		requests:   map[string]uint64{},
		reg:        reg,
		lat:        reg.Histogram("squashd_request_ms"),
		inFlightG:  reg.Gauge("squashd_in_flight"),
		errorsC:    reg.Counter("squashd_errors_total"),
		timeoutsC:  reg.Counter("squashd_timeouts_total"),
		resHitC:    reg.Counter("squashd_cache_hits_total", obs.L("cache", "result")),
		resMissC:   reg.Counter("squashd_cache_misses_total", obs.L("cache", "result")),
		prepHitC:   reg.Counter("squashd_cache_hits_total", obs.L("cache", "prep")),
		prepMissC:  reg.Counter("squashd_cache_misses_total", obs.L("cache", "prep")),
		prepErrC:   reg.Counter("squashd_prep_errors_total"),
		resEntries: reg.Gauge("squashd_result_cache_entries"),
		resBytes:   reg.Gauge("squashd_result_cache_bytes"),

		batchFramesC:  reg.Counter("squashd_batch_frames_total"),
		batchObjectsC: reg.Counter("squashd_batch_objects_total"),
		batchSharedC:  reg.Counter("squashd_batch_shared_total"),
	}
}

func (m *metrics) begin(op string) {
	m.mu.Lock()
	m.requests[op]++
	m.inFlight++
	m.mu.Unlock()
	m.reg.Counter("squashd_requests_total", obs.L("op", op)).Inc()
	m.inFlightG.Add(1)
}

func (m *metrics) end(d time.Duration, failed, timedOut bool) {
	m.mu.Lock()
	m.inFlight--
	if failed {
		m.errors++
	}
	if timedOut {
		m.timeouts++
	}
	m.mu.Unlock()
	m.inFlightG.Add(-1)
	if failed {
		m.errorsC.Inc()
	}
	if timedOut {
		m.timeoutsC.Inc()
	}
	m.lat.Observe(float64(d) / float64(time.Millisecond))
}

func (m *metrics) squashCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.squashHits++
	} else {
		m.squashMisses++
	}
	m.mu.Unlock()
	if hit {
		m.resHitC.Inc()
	} else {
		m.resMissC.Inc()
	}
}

func (m *metrics) prepCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.prepHits++
	} else {
		m.prepMisses++
	}
	m.mu.Unlock()
	if hit {
		m.prepHitC.Inc()
	} else {
		m.prepMissC.Inc()
	}
}

// prepError records a failed benchmark preparation. The failed lookup has
// already been counted as a prep-cache miss (errored requests must not
// silently drop out of the hit-rate denominator); this counter separates
// "prep ran and failed" from "prep ran cold".
func (m *metrics) prepError() {
	m.mu.Lock()
	m.prepErrors++
	m.mu.Unlock()
	m.prepErrC.Inc()
}

// proto records the protocol version a connection latched with its first
// frame (one count per connection, not per frame).
func (m *metrics) proto(ver int) {
	label := fmt.Sprintf("v%d", ver)
	m.mu.Lock()
	if m.protoConns == nil {
		m.protoConns = map[string]uint64{}
	}
	m.protoConns[label]++
	m.mu.Unlock()
	m.reg.Counter("squashd_proto_conns_total", obs.L("proto", label)).Inc()
}

// batch records one OpBatch frame: how many objects it carried and how
// many were within-batch duplicates served from a sibling's result.
func (m *metrics) batch(objects, shared int) {
	m.mu.Lock()
	m.batchFrames++
	m.batchObjects += uint64(objects)
	m.batchShared += uint64(shared)
	m.mu.Unlock()
	m.batchFramesC.Inc()
	m.batchObjectsC.Add(uint64(objects))
	m.batchSharedC.Add(uint64(shared))
}

// Latency summarizes the recent-request latency distribution in
// milliseconds.
type Latency struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// Snapshot is the OpStats payload.
type Snapshot struct {
	UptimeSec float64           `json:"uptime_sec"`
	Requests  map[string]uint64 `json:"requests"`
	Errors    uint64            `json:"errors"`
	Timeouts  uint64            `json:"timeouts"`
	InFlight  int               `json:"in_flight"`

	SquashCacheHits   uint64 `json:"squash_cache_hits"`
	SquashCacheMisses uint64 `json:"squash_cache_misses"`
	PrepCacheHits     uint64 `json:"prep_cache_hits"`
	PrepCacheMisses   uint64 `json:"prep_cache_misses"`
	// PrepErrors counts bench preparations that failed; each also counts
	// as a prep-cache miss so hit-rate denominators include errored
	// requests.
	PrepErrors uint64 `json:"prep_errors,omitempty"`

	// Batch serving: frames received, objects across all frames, and
	// objects answered from a within-batch duplicate.
	BatchFrames  uint64 `json:"batch_frames"`
	BatchObjects uint64 `json:"batch_objects"`
	BatchShared  uint64 `json:"batch_shared"`

	// ProtoConns counts connections by the wire-protocol version their
	// first frame latched ("v1", "v2").
	ProtoConns map[string]uint64 `json:"proto_conns,omitempty"`

	Latency Latency `json:"latency"`
}

func (m *metrics) snapshot() *Snapshot {
	m.mu.Lock()
	s := &Snapshot{
		UptimeSec:         time.Since(m.started).Seconds(),
		Requests:          map[string]uint64{},
		Errors:            m.errors,
		Timeouts:          m.timeouts,
		InFlight:          m.inFlight,
		SquashCacheHits:   m.squashHits,
		SquashCacheMisses: m.squashMisses,
		PrepCacheHits:     m.prepHits,
		PrepCacheMisses:   m.prepMisses,
		PrepErrors:        m.prepErrors,
		BatchFrames:       m.batchFrames,
		BatchObjects:      m.batchObjects,
		BatchShared:       m.batchShared,
	}
	for op, n := range m.requests {
		s.Requests[op] = n
	}
	if len(m.protoConns) > 0 {
		s.ProtoConns = map[string]uint64{}
		for v, n := range m.protoConns {
			s.ProtoConns[v] = n
		}
	}
	m.mu.Unlock()

	// Percentiles come from the obs histogram's window; an empty window
	// yields an all-zero Latency, matching the pre-telemetry wire format.
	// Count and quantiles come from one histogram snapshot: separate
	// WindowCount/Quantiles calls would let a request landing between them
	// skew count against percentiles in -stats.
	count, qs := m.lat.WindowQuantiles(0.50, 0.90, 0.99, 1.0)
	s.Latency = Latency{
		Count: count,
		P50:   qs[0],
		P90:   qs[1],
		P99:   qs[2],
		Max:   qs[3],
	}
	return s
}

// MergeSnapshots aggregates per-backend stats snapshots into one
// cluster-wide view (the router's OpStats answer and squashctl's merged
// stats). Counters and request maps sum; in-flight sums; uptime is the
// fleet maximum. Latency percentiles cannot be merged exactly from
// quantiles alone, so the merge is conservative: counts sum and each
// percentile is the worst (maximum) across backends. Nil snapshots are
// skipped; merging none yields a zero snapshot.
func MergeSnapshots(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Requests: map[string]uint64{}}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if s.UptimeSec > out.UptimeSec {
			out.UptimeSec = s.UptimeSec
		}
		for op, n := range s.Requests {
			out.Requests[op] += n
		}
		out.Errors += s.Errors
		out.Timeouts += s.Timeouts
		out.InFlight += s.InFlight
		out.SquashCacheHits += s.SquashCacheHits
		out.SquashCacheMisses += s.SquashCacheMisses
		out.PrepCacheHits += s.PrepCacheHits
		out.PrepCacheMisses += s.PrepCacheMisses
		out.PrepErrors += s.PrepErrors
		out.BatchFrames += s.BatchFrames
		out.BatchObjects += s.BatchObjects
		out.BatchShared += s.BatchShared
		for v, n := range s.ProtoConns {
			if out.ProtoConns == nil {
				out.ProtoConns = map[string]uint64{}
			}
			out.ProtoConns[v] += n
		}
		out.Latency.Count += s.Latency.Count
		out.Latency.P50 = max(out.Latency.P50, s.Latency.P50)
		out.Latency.P90 = max(out.Latency.P90, s.Latency.P90)
		out.Latency.P99 = max(out.Latency.P99, s.Latency.P99)
		out.Latency.Max = max(out.Latency.Max, s.Latency.Max)
	}
	return out
}
