package serve

import (
	"sort"
	"sync"
	"time"
)

// latWindow is the number of recent request latencies kept for percentile
// reporting. A bounded ring keeps the stats endpoint O(1) in memory over a
// daemon lifetime of millions of requests; percentiles describe the recent
// window, which is what an operator watching a live service wants anyway.
const latWindow = 4096

// metrics aggregates the daemon's operational counters. All methods are
// safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	started  time.Time
	requests map[string]uint64
	errors   uint64
	timeouts uint64

	squashHits, squashMisses uint64
	prepHits, prepMisses     uint64

	inFlight int

	lat     [latWindow]time.Duration
	latLen  int // valid entries
	latNext int // ring write position
}

func newMetrics() *metrics {
	return &metrics{started: time.Now(), requests: map[string]uint64{}}
}

func (m *metrics) begin(op string) {
	m.mu.Lock()
	m.requests[op]++
	m.inFlight++
	m.mu.Unlock()
}

func (m *metrics) end(d time.Duration, failed, timedOut bool) {
	m.mu.Lock()
	m.inFlight--
	if failed {
		m.errors++
	}
	if timedOut {
		m.timeouts++
	}
	m.lat[m.latNext] = d
	m.latNext = (m.latNext + 1) % latWindow
	if m.latLen < latWindow {
		m.latLen++
	}
	m.mu.Unlock()
}

func (m *metrics) squashCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.squashHits++
	} else {
		m.squashMisses++
	}
	m.mu.Unlock()
}

func (m *metrics) prepCache(hit bool) {
	m.mu.Lock()
	if hit {
		m.prepHits++
	} else {
		m.prepMisses++
	}
	m.mu.Unlock()
}

// Latency summarizes the recent-request latency distribution in
// milliseconds.
type Latency struct {
	Count int     `json:"count"`
	P50   float64 `json:"p50_ms"`
	P90   float64 `json:"p90_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// Snapshot is the OpStats payload.
type Snapshot struct {
	UptimeSec float64           `json:"uptime_sec"`
	Requests  map[string]uint64 `json:"requests"`
	Errors    uint64            `json:"errors"`
	Timeouts  uint64            `json:"timeouts"`
	InFlight  int               `json:"in_flight"`

	SquashCacheHits   uint64 `json:"squash_cache_hits"`
	SquashCacheMisses uint64 `json:"squash_cache_misses"`
	PrepCacheHits     uint64 `json:"prep_cache_hits"`
	PrepCacheMisses   uint64 `json:"prep_cache_misses"`

	Latency Latency `json:"latency"`
}

func (m *metrics) snapshot() *Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Snapshot{
		UptimeSec:         time.Since(m.started).Seconds(),
		Requests:          map[string]uint64{},
		Errors:            m.errors,
		Timeouts:          m.timeouts,
		InFlight:          m.inFlight,
		SquashCacheHits:   m.squashHits,
		SquashCacheMisses: m.squashMisses,
		PrepCacheHits:     m.prepHits,
		PrepCacheMisses:   m.prepMisses,
	}
	for op, n := range m.requests {
		s.Requests[op] = n
	}
	if m.latLen > 0 {
		ds := make([]time.Duration, m.latLen)
		copy(ds, m.lat[:m.latLen])
		sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
		ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
		pick := func(q float64) time.Duration {
			i := int(q * float64(len(ds)-1))
			return ds[i]
		}
		s.Latency = Latency{
			Count: m.latLen,
			P50:   ms(pick(0.50)),
			P90:   ms(pick(0.90)),
			P99:   ms(pick(0.99)),
			Max:   ms(ds[len(ds)-1]),
		}
	}
	return s
}
