package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// LoadOptions configures one load-generator run against a live daemon
// (cmd/squashload is the CLI wrapper).
type LoadOptions struct {
	// Addr is the daemon address ("unix:/path" or "tcp:host:port").
	Addr string
	// Conns is the number of concurrent connections; <= 0 means 4. In
	// replay mode they drain the arrival schedule; in synthetic mode each
	// is one closed-loop client.
	Conns int

	// Rate multiplies the recorded arrival rate in replay mode: 1 replays
	// in real time, 2 at twice the recorded rate; <= 0 means 1.
	Rate float64
	// FallbackObj/FallbackProfile replay recorded inline entries (which
	// carry only a content hash) with this payload. FallbackBench does the
	// same via a named benchmark when no payload is given. With neither,
	// inline entries are skipped and counted in the report.
	FallbackObj     []byte
	FallbackProfile []byte
	FallbackBench   string

	// Synthetic mode: either Bench (server-prepared, with Scale) or an
	// inline Obj/Profile payload.
	Bench        string
	Scale        float64
	Obj, Profile []byte
	// BatchSize > 1 sends OpBatch frames of that many objects per request;
	// otherwise each request carries one object.
	BatchSize int
	// Duration bounds a synthetic run (<= 0 means 5s) unless Requests > 0
	// sets a fixed request budget instead.
	Duration time.Duration
	Requests int

	// Config applies to every generated request; nil means the server
	// default.
	Config *core.Config

	// NoImage sets the stats-only flag on every generated request, taking
	// image payload transfer off the wire (recorded entries that already
	// carry the flag keep it either way).
	NoImage bool
	// Proto pins the client protocol version (1 or 2); 0 negotiates,
	// landing on v2 against a current daemon.
	Proto int

	// Logf receives progress lines; nil is silent.
	Logf func(format string, args ...any)
}

func (o *LoadOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// LoadLatency is the measured latency distribution in milliseconds. In
// replay mode latency is measured from each request's *scheduled* arrival,
// so queueing delay when the daemon falls behind the offered rate shows up
// in the tail instead of being coordinated-omission'd away.
type LoadLatency struct {
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// LoadReport is the load generator's result. cmd/benchhist ingests the
// JSON form and gates CI on its metrics (req/s floor, p99 ceiling, error
// ceiling), so field names are part of the CI contract.
type LoadReport struct {
	Mode        string      `json:"mode"` // "replay" or "synthetic"
	Concurrency int         `json:"concurrency"`
	Rate        float64     `json:"rate,omitempty"`
	Requests    int         `json:"requests"`
	Objects     int         `json:"objects"`
	Errors      int         `json:"errors"`
	Skipped     int         `json:"skipped,omitempty"`
	DurationSec float64     `json:"duration_sec"`
	ReqPerSec   float64     `json:"req_per_sec"`
	ObjPerSec   float64     `json:"obj_per_sec"`
	Latency     LoadLatency `json:"latency_ms"`
	// Cache rates are deltas of the daemon's stats across the run: hits
	// over lookups of the squash-result and prep caches.
	CacheHitRate float64 `json:"cache_hit_rate"`
	PrepHitRate  float64 `json:"prep_hit_rate"`
	// Proto is the wire protocol version the load connections spoke.
	Proto int `json:"proto,omitempty"`
	// Wire throughput: bytes crossing the load connections (both
	// directions, headers and envelopes included; the stats probes before
	// and after the run are not counted).
	BytesIn        int64   `json:"bytes_in"`
	BytesOut       int64   `json:"bytes_out"`
	BytesInPerSec  float64 `json:"bytes_in_per_sec"`
	BytesOutPerSec float64 `json:"bytes_out_per_sec"`
}

// wireTotals accumulates the wire-byte counters of every load connection
// as each worker's client closes.
type wireTotals struct {
	in, out atomic.Int64
	proto   atomic.Int64
}

// loadJob is one scheduled request: tMs is its recorded arrival offset
// (replay mode), due its resolved target send time (zero in closed-loop
// mode), and objects its per-frame object count.
type loadJob struct {
	req     *Request
	tMs     float64
	due     time.Time
	objects int
}

// Replay sends a recorded stream back at a multiple of its recorded rate.
// The schedule is open-loop: requests are offered at recorded-time/rate
// regardless of how fast the daemon answers, which is what saturates a
// server that one-at-a-time clients never stress.
func Replay(opts LoadOptions, entries []RecordEntry) (*LoadReport, error) {
	jobs := make([]loadJob, 0, len(entries))
	skipped := 0
	for i := range entries {
		req, objects, ok := opts.replayRequest(&entries[i])
		if !ok {
			skipped++
			continue
		}
		jobs = append(jobs, loadJob{req: req, tMs: entries[i].TMs, objects: objects})
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("serve: no replayable entries in a stream of %d (inline-only entries need a fallback payload or bench)", len(entries))
	}
	// Entries are recorded in arrival order, but sort defensively: a
	// merged or hand-edited stream must still replay in time order.
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].tMs < jobs[b].tMs })

	rate := opts.Rate
	if rate <= 0 {
		rate = 1
	}
	opts.logf("replaying %d of %d recorded requests at %.2fx over %d conns (%d skipped)",
		len(jobs), len(entries), rate, max(opts.Conns, 1), skipped)
	rep, err := opts.run("replay", jobs, func(start time.Time, i int) time.Time {
		return start.Add(time.Duration(jobs[i].tMs / rate * float64(time.Millisecond)))
	})
	if err != nil {
		return nil, err
	}
	rep.Rate = rate
	rep.Skipped = skipped
	return rep, nil
}

// replayRequest turns one recorded entry back into a sendable request.
func (o *LoadOptions) replayRequest(e *RecordEntry) (*Request, int, bool) {
	inline := func() (BatchItem, bool) {
		switch {
		case len(o.FallbackObj) > 0:
			return BatchItem{Obj: o.FallbackObj, Profile: o.FallbackProfile}, true
		case o.FallbackBench != "":
			return BatchItem{Bench: o.FallbackBench, Scale: 1}, true
		}
		return BatchItem{}, false
	}
	noImage := e.NoImage || o.NoImage
	switch e.Op {
	case OpBench:
		return &Request{Op: OpBench, Bench: e.Bench, Scale: e.Scale, Config: e.Config, NoImage: noImage}, 1, true
	case OpSquash:
		it, ok := inline()
		if !ok {
			return nil, 0, false
		}
		if it.Bench != "" {
			return &Request{Op: OpBench, Bench: it.Bench, Scale: it.Scale, Config: e.Config, NoImage: noImage}, 1, true
		}
		return &Request{Op: OpSquash, Obj: it.Obj, Profile: it.Profile, Config: e.Config, NoImage: noImage}, 1, true
	case OpBatch:
		items := make([]BatchItem, 0, len(e.Items))
		for _, ri := range e.Items {
			if ri.Bench != "" {
				items = append(items, BatchItem{Bench: ri.Bench, Scale: ri.Scale, Config: e.Config})
				continue
			}
			if it, ok := inline(); ok {
				it.Config = e.Config
				items = append(items, it)
			}
		}
		if len(items) == 0 {
			return nil, 0, false
		}
		return &Request{Op: OpBatch, Items: items, NoImage: noImage}, len(items), true
	}
	return nil, 0, false
}

// Synthetic runs a closed-loop load: Conns clients each send the same
// request back-to-back until the duration elapses or the request budget is
// spent. This measures capacity (the saturation req/s the daemon sustains)
// where replay measures behavior at a fixed offered rate.
func Synthetic(opts LoadOptions) (*LoadReport, error) {
	if opts.Bench == "" && len(opts.Obj) == 0 {
		return nil, fmt.Errorf("serve: synthetic load needs a bench name or an inline payload")
	}
	req := opts.syntheticRequest()
	objects := 1
	if req.Op == OpBatch {
		objects = len(req.Items)
	}

	budget := opts.Requests
	duration := opts.Duration
	if budget <= 0 && duration <= 0 {
		duration = 5 * time.Second
	}
	opts.logf("synthetic closed loop: op=%s objects/frame=%d budget=%d duration=%s",
		req.Op, objects, budget, duration)
	return opts.runClosed(req, objects, budget, duration)
}

func (o *LoadOptions) syntheticRequest() *Request {
	item := BatchItem{Bench: o.Bench, Scale: o.Scale, Obj: o.Obj, Profile: o.Profile, Config: o.Config}
	if o.BatchSize > 1 {
		items := make([]BatchItem, o.BatchSize)
		for i := range items {
			items[i] = item
		}
		return &Request{Op: OpBatch, Items: items, NoImage: o.NoImage}
	}
	if item.Bench != "" {
		return &Request{Op: OpBench, Bench: item.Bench, Scale: item.Scale, Config: item.Config, NoImage: o.NoImage}
	}
	return &Request{Op: OpSquash, Obj: item.Obj, Profile: item.Profile, Config: item.Config, NoImage: o.NoImage}
}

// run drives an open-loop schedule: dueAt(start, i) gives job i's send
// time. A feeder goroutine releases jobs on schedule into a buffered
// channel (so a slow daemon backs up the queue, not the schedule) and
// Conns workers drain it.
func (o *LoadOptions) run(mode string, jobs []loadJob, dueAt func(start time.Time, i int) time.Time) (*LoadReport, error) {
	conns := o.Conns
	if conns <= 0 {
		conns = 4
	}
	before, err := fetchStats(o.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: load target %s: %w", o.Addr, err)
	}

	hist := obs.NewHistogram(1 << 16)
	var errors atomic.Int64
	var wire wireTotals
	ch := make(chan loadJob, len(jobs))
	start := time.Now()
	go func() {
		for i := range jobs {
			due := dueAt(start, i)
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
			j := jobs[i]
			j.due = due
			ch <- j
		}
		close(ch)
	}()

	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.worker(ch, hist, &errors, &wire)
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchStats(o.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: load target %s: %w", o.Addr, err)
	}

	requests, objects := 0, 0
	for _, j := range jobs {
		requests++
		objects += j.objects
	}
	return o.report(mode, conns, requests, objects, int(errors.Load()), wall, hist, before, after, &wire), nil
}

// runClosed drives the closed-loop synthetic mode.
func (o *LoadOptions) runClosed(req *Request, objectsPer, budget int, duration time.Duration) (*LoadReport, error) {
	conns := o.Conns
	if conns <= 0 {
		conns = 4
	}
	before, err := fetchStats(o.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: load target %s: %w", o.Addr, err)
	}

	hist := obs.NewHistogram(1 << 16)
	var errors, sent atomic.Int64
	var wire wireTotals
	var deadline time.Time
	start := time.Now()
	if budget <= 0 {
		deadline = start.Add(duration)
	}

	ch := make(chan loadJob)
	go func() {
		defer close(ch)
		for {
			if budget > 0 {
				if sent.Add(1) > int64(budget) {
					return
				}
			} else if !time.Now().Before(deadline) {
				return
			}
			ch <- loadJob{req: req, objects: objectsPer}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o.worker(ch, hist, &errors, &wire)
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	after, err := fetchStats(o.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: load target %s: %w", o.Addr, err)
	}
	requests := int(hist.Count()) + int(errors.Load())
	return o.report("synthetic", conns, requests, requests*objectsPer, int(errors.Load()), wall, hist, before, after, &wire), nil
}

// worker drains jobs over one client connection, redialing once per
// transport failure so a single dropped connection does not zero out a
// run. The client's wire-byte counters flush into the run totals whenever
// its connection closes.
func (o *LoadOptions) worker(ch <-chan loadJob, hist *obs.Histogram, errCount *atomic.Int64, wire *wireTotals) {
	var cl *Client
	closeClient := func() {
		if cl == nil {
			return
		}
		wire.in.Add(cl.BytesIn())
		wire.out.Add(cl.BytesOut())
		wire.proto.Store(int64(cl.Proto()))
		cl.Close()
		cl = nil
	}
	defer closeClient()
	for j := range ch {
		if cl == nil {
			c, err := DialClientProto(o.Addr, o.Proto)
			if err != nil {
				errCount.Add(1)
				continue
			}
			cl = c
		}
		from := j.due
		if from.IsZero() {
			from = time.Now()
		}
		resp, err := cl.Do(j.req)
		if err != nil {
			closeClient()
			errCount.Add(1)
			continue
		}
		if !resp.OK {
			errCount.Add(1)
			continue
		}
		if resp.Results != nil {
			bad := false
			for i := range resp.Results {
				if !resp.Results[i].OK {
					bad = true
					break
				}
			}
			if bad {
				errCount.Add(1)
				continue
			}
		}
		hist.Observe(float64(time.Since(from)) / float64(time.Millisecond))
	}
}

func (o *LoadOptions) report(mode string, conns, requests, objects, errCount int, wall time.Duration, hist *obs.Histogram, before, after *Snapshot, wire *wireTotals) *LoadReport {
	qs := hist.Quantiles(0.50, 0.90, 0.99, 1.0)
	mean := 0.0
	if n := hist.Count(); n > 0 {
		mean = hist.Sum() / float64(n)
	}
	rep := &LoadReport{
		Mode:        mode,
		Concurrency: conns,
		Requests:    requests,
		Objects:     objects,
		Errors:      errCount,
		DurationSec: wall.Seconds(),
		Latency:     LoadLatency{P50: qs[0], P90: qs[1], P99: qs[2], Max: qs[3], Mean: mean},
	}
	rep.Proto = int(wire.proto.Load())
	rep.BytesIn = wire.in.Load()
	rep.BytesOut = wire.out.Load()
	if s := wall.Seconds(); s > 0 {
		rep.ReqPerSec = float64(requests) / s
		rep.ObjPerSec = float64(objects) / s
		rep.BytesInPerSec = float64(rep.BytesIn) / s
		rep.BytesOutPerSec = float64(rep.BytesOut) / s
	}
	rep.CacheHitRate = hitRateDelta(before.SquashCacheHits, after.SquashCacheHits,
		before.SquashCacheMisses, after.SquashCacheMisses)
	rep.PrepHitRate = hitRateDelta(before.PrepCacheHits, after.PrepCacheHits,
		before.PrepCacheMisses, after.PrepCacheMisses)
	return rep
}

// hitRateDelta is hits over lookups across the run window; 0 when the run
// performed no lookups.
func hitRateDelta(h0, h1, m0, m1 uint64) float64 {
	hits := float64(h1 - h0)
	lookups := hits + float64(m1-m0)
	if lookups <= 0 {
		return 0
	}
	return hits / lookups
}

// fetchStats asks the daemon for its stats snapshot over a fresh
// connection.
func fetchStats(addr string) (*Snapshot, error) {
	conn, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	resp, err := Do(conn, &Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if !resp.OK || resp.Server == nil {
		return nil, fmt.Errorf("stats request failed: %s", resp.Err)
	}
	return resp.Server, nil
}
