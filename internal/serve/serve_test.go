package serve

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// buildWorkload assembles a random test program, profiles it, and returns
// the serialized object and profile plus the byte-exact image the one-shot
// path (cmd/squash's core.Squash + Image.WriteTo) produces for conf.
func buildWorkload(t *testing.T, seed int64, conf core.Config) (objBytes, profBytes, wantImage []byte) {
	t.Helper()
	src := testprog.Random(seed)
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := vm.New(im, []byte("serve-mode determinism input"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatalf("profile run: %v", err)
	}

	var ob, pb bytes.Buffer
	if _, err := obj.WriteTo(&ob); err != nil {
		t.Fatalf("serialize object: %v", err)
	}
	if _, err := profile.Counts(m.Profile).WriteTo(&pb); err != nil {
		t.Fatalf("serialize profile: %v", err)
	}

	out, err := core.Squash(obj, m.Profile, conf)
	if err != nil {
		t.Fatalf("one-shot squash: %v", err)
	}
	var img bytes.Buffer
	if _, err := out.Image.WriteTo(&img); err != nil {
		t.Fatalf("serialize image: %v", err)
	}
	return ob.Bytes(), pb.Bytes(), img.Bytes()
}

// startServer runs a server on a Unix socket in a temp dir and returns its
// address plus a shutdown func. Logs go to the test log.
func startServer(t *testing.T, opts Options) (*Server, string, func()) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := NewServer(opts)
	addr := "unix:" + filepath.Join(t.TempDir(), "squashd.sock")
	ln, err := Listen(addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-serveDone; err != ErrServerClosed {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	}
	return s, addr, stop
}

// TestServeDeterminismConcurrentClients is the tentpole guarantee: the
// daemon's output is byte-identical to one-shot cmd/squash for the same
// inputs, with many clients hammering it at once, and the repeats show up
// as warm-cache hits in the stats.
func TestServeDeterminismConcurrentClients(t *testing.T) {
	// Two distinct workloads under two configs each: cache must key them
	// apart while still hitting on exact repeats.
	confA := core.DefaultConfig()
	confB := core.DefaultConfig()
	confB.Theta = 0.01
	confB.MTF = true

	type workload struct {
		obj, prof, want []byte
		conf            core.Config
	}
	var loads []workload
	for _, seed := range []int64{3, 11} {
		for _, conf := range []core.Config{confA, confB} {
			obj, prof, want := buildWorkload(t, seed, conf)
			loads = append(loads, workload{obj, prof, want, conf})
		}
	}

	s, addr, stop := startServer(t, Options{Workers: 4})
	defer stop()

	const clients = 6
	const reqsPerClient = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := Dial(addr)
			if err != nil {
				errs <- fmt.Errorf("client %d: dial: %v", c, err)
				return
			}
			defer conn.Close()
			for i := 0; i < reqsPerClient; i++ {
				w := loads[(c+i)%len(loads)]
				conf := w.conf
				// Vary the request's worker count: the daemon must stay
				// byte-identical regardless (cache keys ignore workers).
				conf.Workers = 1 + (c+i)%4
				resp, err := Do(conn, &Request{Op: OpSquash, Obj: w.obj, Profile: w.prof, Config: &conf})
				if err != nil {
					errs <- fmt.Errorf("client %d req %d: %v", c, i, err)
					return
				}
				if !resp.OK {
					errs <- fmt.Errorf("client %d req %d: server error: %s", c, i, resp.Err)
					return
				}
				if !bytes.Equal(resp.Image, w.want) {
					errs <- fmt.Errorf("client %d req %d: image diverged from one-shot squash (%d vs %d bytes)",
						c, i, len(resp.Image), len(w.want))
					return
				}
			}
			errs <- nil
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := s.StatsSnapshot()
	total := clients * reqsPerClient
	if got := snap.SquashCacheHits + snap.SquashCacheMisses; got != uint64(total) {
		t.Fatalf("cache lookups = %d, want %d", got, total)
	}
	// 4 distinct (obj, prof, conf) keys; everything past first-computation
	// must hit. Concurrent first requests can each miss, but the cache is
	// still required to absorb the bulk of the load.
	if snap.SquashCacheHits < uint64(total/2) {
		t.Fatalf("cache hits = %d of %d requests; warm state is not being reused", snap.SquashCacheHits, total)
	}
	if snap.Requests[OpSquash] != uint64(total) {
		t.Fatalf("requests[squash] = %d, want %d", snap.Requests[OpSquash], total)
	}
	if snap.Errors != 0 {
		t.Fatalf("server reported %d errors", snap.Errors)
	}
	if snap.Latency.Count == 0 {
		t.Fatal("latency window is empty after serving requests")
	}
}

// TestServeShutdownDrainsInFlight: a request already being processed when
// Shutdown starts still gets its response, new connections are refused, and
// Shutdown returns only after the drain.
func TestServeShutdownDrainsInFlight(t *testing.T) {
	obj, prof, want := buildWorkload(t, 5, core.DefaultConfig())

	s, addr, _ := startServer(t, Options{Workers: 2})
	s.testDelay.Store(int64(150 * time.Millisecond))

	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// Fire the request and give the server time to pull it onto a worker.
	if err := WriteFrame(conn, &Request{Op: OpSquash, Obj: obj, Profile: prof}); err != nil {
		t.Fatalf("write request: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.StatsSnapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// The in-flight request must complete with the correct bytes.
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatalf("read response during shutdown: %v", err)
	}
	if !resp.OK {
		t.Fatalf("in-flight request failed during shutdown: %s", resp.Err)
	}
	if !bytes.Equal(resp.Image, want) {
		t.Fatal("drained response diverged from one-shot squash")
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The connection was drained closed: the next read reports EOF.
	if err := ReadFrame(conn, &resp); err == nil {
		t.Fatal("connection still serving after drain")
	}
	// And new connections are refused.
	if c, err := Dial(addr); err == nil {
		c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

// TestServeRequestTimeout: a request slower than the server timeout gets an
// error response (the connection stays usable) and the timeout counter
// moves.
func TestServeRequestTimeout(t *testing.T) {
	s, addr, stop := startServer(t, Options{Workers: 1, Timeout: 30 * time.Millisecond})
	defer stop()
	s.testDelay.Store(int64(500 * time.Millisecond))

	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	obj, prof, _ := buildWorkload(t, 7, core.DefaultConfig())
	resp, err := Do(conn, &Request{Op: OpSquash, Obj: obj, Profile: prof})
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	if resp.OK {
		t.Fatal("request succeeded despite exceeding the server timeout")
	}
	if snap := s.StatsSnapshot(); snap.Timeouts == 0 {
		t.Fatalf("timeouts = 0 after a timed-out request (snapshot %+v)", snap)
	}

	// The same connection still answers once the stall is irrelevant.
	s.testDelay.Store(0)
	// The timed-out squash may still hold the single worker; wait for it.
	pingOK := false
	for d := time.Now().Add(5 * time.Second); time.Now().Before(d); {
		r, err := Do(conn, &Request{Op: OpPing})
		if err != nil {
			t.Fatalf("ping after timeout: %v", err)
		}
		if r.OK {
			pingOK = true
			break
		}
	}
	if !pingOK {
		t.Fatal("connection unusable after a timed-out request")
	}
}

// TestServeBadRequests: malformed requests produce error responses, not
// dropped connections, and count as errors in the stats.
func TestServeBadRequests(t *testing.T) {
	s, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	cases := []*Request{
		{Op: "nonsense"},
		{Op: OpSquash}, // missing payloads
		{Op: OpSquash, Obj: []byte("garbage"), Profile: []byte("garbage")},
		{Op: OpBench, Bench: "no-such-benchmark"},
	}
	for _, req := range cases {
		resp, err := Do(conn, req)
		if err != nil {
			t.Fatalf("op %q: transport error: %v", req.Op, err)
		}
		if resp.OK {
			t.Fatalf("op %q: accepted a malformed request", req.Op)
		}
		if resp.Err == "" {
			t.Fatalf("op %q: error response with no message", req.Op)
		}
	}
	if snap := s.StatsSnapshot(); snap.Errors != uint64(len(cases)) {
		t.Fatalf("errors = %d, want %d", snap.Errors, len(cases))
	}
	// The connection survives all of it.
	if resp, err := Do(conn, &Request{Op: OpPing}); err != nil || !resp.OK {
		t.Fatalf("ping after bad requests: resp=%+v err=%v", resp, err)
	}
}

// TestServeStatsInline: OpStats answers even with every worker occupied.
func TestServeStatsInline(t *testing.T) {
	s, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()
	s.testDelay.Store(int64(300 * time.Millisecond))

	obj, prof, _ := buildWorkload(t, 9, core.DefaultConfig())
	busy, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer busy.Close()
	if err := WriteFrame(busy, &Request{Op: OpSquash, Obj: obj, Profile: prof}); err != nil {
		t.Fatalf("write: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.StatsSnapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	start := time.Now()
	resp, err := Do(conn, &Request{Op: OpStats})
	if err != nil || !resp.OK || resp.Server == nil {
		t.Fatalf("stats: resp=%+v err=%v", resp, err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("stats took %s; it must not queue behind squash work", d)
	}
	if resp.Server.InFlight == 0 {
		t.Fatal("stats snapshot does not show the in-flight squash")
	}
	// Let the busy request finish so shutdown drains promptly.
	var busyResp Response
	if err := ReadFrame(busy, &busyResp); err != nil {
		t.Fatalf("busy response: %v", err)
	}
}

// TestResultKeyIgnoresWorkers: worker counts must not fragment the warm
// cache — the pipeline output is identical across them.
func TestResultKeyIgnoresWorkers(t *testing.T) {
	obj, prof := []byte("obj"), []byte("prof")
	a := core.DefaultConfig()
	a.Workers = 1
	a.Regions.Workers = 1
	b := core.DefaultConfig()
	b.Workers = 8
	b.Regions.Workers = 3
	if resultKey(obj, prof, a) != resultKey(obj, prof, b) {
		t.Fatal("worker counts changed the cache key")
	}
	c := core.DefaultConfig()
	c.Theta = 0.123
	if resultKey(obj, prof, a) == resultKey(obj, prof, c) {
		t.Fatal("distinct configs collided")
	}
	if resultKey(obj, prof, a) == resultKey([]byte("obj2"), prof, a) {
		t.Fatal("distinct objects collided")
	}
}

// TestResultCacheEvicts: the LRU stays bounded and evicts oldest-first.
func TestResultCacheEvicts(t *testing.T) {
	c := newResultCache(2, 0)
	key := func(i byte) [32]byte { return [32]byte{i} }
	for i := byte(1); i <= 3; i++ {
		c.put(&cacheEntry{key: key(i), image: []byte{i}})
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get(key(1)); ok {
		t.Fatal("oldest entry survived past capacity")
	}
	if _, ok := c.get(key(3)); !ok {
		t.Fatal("newest entry missing")
	}
	// A get refreshes recency: touch 2, insert 4, and 3 should go instead.
	c.get(key(2))
	c.put(&cacheEntry{key: key(4), image: []byte{4}})
	if _, ok := c.get(key(2)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.get(key(3)); ok {
		t.Fatal("least recently used entry survived")
	}
}

// TestFrameRoundTrip: frames survive the wire and oversized frames are
// rejected on both sides.
func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := &Request{Op: OpSquash, Obj: []byte{1, 2, 3}, Profile: []byte{4, 5}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatalf("read: %v", err)
	}
	if out.Op != in.Op || !bytes.Equal(out.Obj, in.Obj) || !bytes.Equal(out.Profile, in.Profile) {
		t.Fatalf("round trip mutated the request: %+v", out)
	}

	// A hostile length prefix must not allocate.
	var hdr bytes.Buffer
	hdr.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if err := ReadFrame(&hdr, &out); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

// TestSplitAddr covers the three address spellings.
func TestSplitAddr(t *testing.T) {
	cases := []struct{ in, net, addr string }{
		{"unix:/tmp/x.sock", "unix", "/tmp/x.sock"},
		{"tcp:127.0.0.1:900", "tcp", "127.0.0.1:900"},
		{"127.0.0.1:900", "tcp", "127.0.0.1:900"},
	}
	for _, c := range cases {
		n, a := SplitAddr(c.in)
		if n != c.net || a != c.addr {
			t.Fatalf("SplitAddr(%q) = (%q, %q), want (%q, %q)", c.in, n, a, c.net, c.addr)
		}
	}
}

// TestListenReplacesStaleSocket: a dead socket file is replaced; a live one
// is refused.
func TestListenReplacesStaleSocket(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("first listen: %v", err)
	}
	// Simulate a crashed daemon: close the listener but leave the file.
	// Go removes the file on Close, so recreate the stale-file state.
	ln.Close()
	if f, err := net.Listen("unix", path); err == nil {
		f.(*net.UnixListener).SetUnlinkOnClose(false)
		f.Close()
	}
	ln2, err := Listen("unix:" + path)
	if err != nil {
		t.Fatalf("listen over stale socket: %v", err)
	}
	defer ln2.Close()

	// A second daemon must refuse the live socket.
	if _, err := Listen("unix:" + path); err == nil {
		t.Fatal("second listener took over a live socket")
	}
}
