package serve

// Client is the version-negotiating daemon client. It opens speaking the
// highest protocol it is allowed (v2 unless pinned) and downgrades once,
// transparently, when the server can't follow:
//
//   - A v2-capable server answers the v2 opening in v2; the connection is
//     latched and every later exchange stays binary.
//   - A version-capped v2-era server answers with a v1 error frame carrying
//     proto_max; the client resends the same request in v1 and latches v1.
//   - A pre-v2 server can't parse the v2 frame at all (its length prefix
//     exceeds MaxFrame) and closes the connection; the client redials and
//     resends in v1. This fallback only arms on the connection's first
//     exchange — a mid-stream hangup is a real transport error.
//
// Old clients never see any of this: package-level Dial/Do still speak
// plain v1 against any server.

import (
	"bufio"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client is one connection to a squashd daemon, with protocol negotiation
// and wire-byte accounting. Not safe for concurrent use; open one Client
// per goroutine (concurrency comes from connections, as before).
type Client struct {
	addr string
	pin  int // 0 = negotiate from MaxProtoVersion; else exact version
	ver  int // version this connection latched

	conn      net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	sc        *frameScratch
	in, out   atomic.Int64
	exchanged bool // a full request/response round-trip has completed
}

// countConn counts the bytes crossing a connection, so load tests can
// report wire throughput per protocol version.
type countConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c countConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c countConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// DialClient connects to a daemon address and negotiates the protocol
// (opening at v2, falling back to v1 against older servers).
func DialClient(addr string) (*Client, error) {
	return DialClientProto(addr, 0)
}

// DialClientProto connects with a pinned protocol version: 1 or 2 forces
// that version (a pinned-v2 client surfaces a version-capped server's
// error instead of downgrading); 0 negotiates.
func DialClientProto(addr string, pin int) (*Client, error) {
	if pin < 0 || pin > MaxProtoVersion {
		return nil, fmt.Errorf("serve: unsupported protocol version %d (max %d)", pin, MaxProtoVersion)
	}
	c := &Client{addr: addr, pin: pin}
	if err := c.redial(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Client) redial() error {
	conn, err := Dial(c.addr)
	if err != nil {
		return err
	}
	cc := countConn{Conn: conn, in: &c.in, out: &c.out}
	c.conn = conn
	c.br = bufio.NewReaderSize(cc, frameIOSize)
	c.bw = bufio.NewWriterSize(cc, frameIOSize)
	if c.sc == nil {
		c.sc = getFrameScratch()
	}
	c.ver = c.pin
	if c.ver == 0 {
		c.ver = MaxProtoVersion
	}
	c.exchanged = false
	return nil
}

// Proto reports the protocol version the connection is speaking.
func (c *Client) Proto() int { return c.ver }

// SetDeadline bounds the socket I/O of subsequent Do calls (reads and
// writes both); the zero time clears it. The router and health prober use
// this so one stuck backend cannot wedge a forwarding goroutine.
func (c *Client) SetDeadline(t time.Time) error {
	if c.conn == nil {
		return fmt.Errorf("serve: client connection is closed")
	}
	return c.conn.SetDeadline(t)
}

// BytesIn and BytesOut report the connection's cumulative wire bytes
// (every redial included). Safe to read concurrently with Do.
func (c *Client) BytesIn() int64  { return c.in.Load() }
func (c *Client) BytesOut() int64 { return c.out.Load() }

// Close releases the connection and its pooled scratch.
func (c *Client) Close() error {
	putFrameScratch(c.sc)
	c.sc = nil
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// Do sends one request and reads its response, negotiating the protocol on
// the connection's first exchange.
func (c *Client) Do(req *Request) (*Response, error) {
	resp, err := c.do(req)
	if err != nil && !c.exchanged && c.pin == 0 && c.ver > ProtoV1 {
		// First-exchange transport failure while speaking v2: the classic
		// signature of a pre-v2 server rejecting the opening frame. Redial
		// and resend once in v1.
		c.conn.Close()
		if rerr := c.redial(); rerr != nil {
			return nil, err
		}
		c.ver = ProtoV1
		return c.do(req)
	}
	return resp, err
}

func (c *Client) do(req *Request) (*Response, error) {
	resp := &Response{}
	if c.ver >= ProtoV2 {
		if err := writeRequestV2(c.bw, c.sc, req); err != nil {
			return nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, err
		}
		if err := c.readResponseV2(resp, req); err != nil {
			return nil, err
		}
	} else {
		if err := WriteFrame(c.bw, req); err != nil {
			return nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, err
		}
		if err := ReadFrame(c.br, resp); err != nil {
			return nil, err
		}
	}
	c.exchanged = true
	return resp, nil
}

// readResponseV2 reads a response on a connection that sent a v2 request.
// The reply is sniffed: a v1 frame here is a version-capped server's
// negotiation error, which an unpinned client resolves by downgrading and
// resending the request on the same connection.
func (c *Client) readResponseV2(resp *Response, req *Request) error {
	peek, err := c.br.Peek(4)
	if err != nil {
		return err
	}
	if isV2Header(peek) {
		fb, env, pay, err := readFrameBodyV2(c.br)
		if err != nil {
			return err
		}
		err = decodeResponseV2(c.sc, env, pay, resp)
		fb.release() // decode copied every section out
		return err
	}
	if err := ReadFrame(c.br, resp); err != nil {
		return err
	}
	if resp.ProtoMax >= ProtoV1 && resp.ProtoMax < c.ver && c.pin == 0 {
		// Version-capped server: downgrade and resend on the live
		// connection. The server consumed the v2 frame without serving it.
		c.ver = resp.ProtoMax
		*resp = Response{}
		if err := WriteFrame(c.bw, req); err != nil {
			return err
		}
		if err := c.bw.Flush(); err != nil {
			return err
		}
		return ReadFrame(c.br, resp)
	}
	// A pinned-v2 client (or a v1 response that isn't a negotiation error)
	// surfaces the frame as-is: resp.Err explains the version miss.
	return nil
}
