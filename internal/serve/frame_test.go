package serve

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// encodeV2Request renders one request as v2 frame bytes.
func encodeV2Request(t *testing.T, req *Request) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	if err := writeRequestV2(bw, sc, req); err != nil {
		t.Fatalf("writeRequestV2: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	return buf.Bytes()
}

// v2Frame hand-crafts a v2 frame from an envelope string and payload — for
// wire shapes the writer would refuse to produce.
func v2Frame(env string, pay []byte) []byte {
	b := make([]byte, frameHeaderLen, frameHeaderLen+len(env)+len(pay))
	b[0] = ProtoV2
	b[2] = frameMagic2
	b[3] = frameMagic3
	binary.LittleEndian.PutUint32(b[4:8], uint32(len(env)))
	binary.LittleEndian.PutUint32(b[8:12], uint32(len(pay)))
	b = append(b, env...)
	return append(b, pay...)
}

// TestFrameV2RoundTrip: a request with every payload-bearing shape —
// inline object+profile, batch items both inline and named, config, flags —
// survives encode/decode bit-exact, with the decoded payloads aliasing the
// frame buffer (zero-copy) rather than copies.
func TestFrameV2RoundTrip(t *testing.T) {
	conf := core.DefaultConfig()
	conf.Theta = 0.02
	in := &Request{
		Op:      OpBatch,
		Obj:     []byte("object bytes"),
		Profile: []byte("profile bytes"),
		Config:  &conf,
		Bench:   "adpcm",
		Scale:   1.5,
		NoImage: true,
		Items: []BatchItem{
			{Obj: []byte("item-0 obj"), Profile: []byte("item-0 prof")},
			{Bench: "gsm", Scale: 2},
		},
	}
	data := encodeV2Request(t, in)

	br := bufio.NewReader(bytes.NewReader(data))
	fb, env, pay, err := readFrameBodyV2(br)
	if err != nil {
		t.Fatalf("readFrameBodyV2: %v", err)
	}
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	var out Request
	if err := decodeRequestV2(sc, env, pay, fb, &out); err != nil {
		t.Fatalf("decodeRequestV2: %v", err)
	}
	if out.Op != in.Op || out.Bench != in.Bench || out.Scale != in.Scale || !out.NoImage {
		t.Fatalf("scalar fields diverged: %+v", out)
	}
	if out.Config == nil || out.Config.Theta != conf.Theta {
		t.Fatalf("config diverged: %+v", out.Config)
	}
	if !bytes.Equal(out.Obj, in.Obj) || !bytes.Equal(out.Profile, in.Profile) {
		t.Fatalf("payloads diverged: obj=%q profile=%q", out.Obj, out.Profile)
	}
	if len(out.Items) != 2 ||
		!bytes.Equal(out.Items[0].Obj, in.Items[0].Obj) ||
		!bytes.Equal(out.Items[0].Profile, in.Items[0].Profile) ||
		out.Items[1].Bench != "gsm" || out.Items[1].Obj != nil {
		t.Fatalf("items diverged: %+v", out.Items)
	}
	// Zero-copy: the decoded object must alias the frame buffer.
	if &out.Obj[0] != &pay[0] {
		t.Fatal("decoded payload does not alias the frame buffer")
	}
	out.releasePayload()
	out.releasePayload() // idempotent
}

// TestFrameV2ProfileOpsRoundTrip: the profile-plane request fields — the
// Image and Input payload sections, ImageKey, RunMeta, Force — and the
// Feed/Resquash/ImageKey response fields survive encode/decode, and v1 JSON
// framing carries them too.
func TestFrameV2ProfileOpsRoundTrip(t *testing.T) {
	in := &Request{
		Op:       OpProfilePush,
		Profile:  []byte("EMP1 counts"),
		Image:    []byte("squashed image bytes"),
		Input:    []byte("run input"),
		ImageKey: "abc123",
		Run:      &RunMeta{Instructions: 1000, Cycles: 2500, Decompressions: 7, Evictions: 3, BitsRead: 99, Source: "host-1"},
		Force:    true,
	}
	data := encodeV2Request(t, in)

	br := bufio.NewReader(bytes.NewReader(data))
	fb, env, pay, err := readFrameBodyV2(br)
	if err != nil {
		t.Fatalf("readFrameBodyV2: %v", err)
	}
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	var out Request
	if err := decodeRequestV2(sc, env, pay, fb, &out); err != nil {
		t.Fatalf("decodeRequestV2: %v", err)
	}
	if out.Op != OpProfilePush || out.ImageKey != "abc123" || !out.Force {
		t.Fatalf("scalar fields diverged: %+v", out)
	}
	if !bytes.Equal(out.Profile, in.Profile) || !bytes.Equal(out.Image, in.Image) || !bytes.Equal(out.Input, in.Input) {
		t.Fatalf("payloads diverged: profile=%q image=%q input=%q", out.Profile, out.Image, out.Input)
	}
	if out.Run == nil || *out.Run != *in.Run {
		t.Fatalf("run meta diverged: %+v", out.Run)
	}
	out.releasePayload()

	resp := &Response{
		OK:       true,
		Image:    []byte("new image"),
		ImageKey: "def456",
		Feed: &FeedSnapshot{Images: []FeedImageStatus{{
			Key: "abc123", Samples: 4, Theta: 0.0001, Threshold: 0.25,
		}}},
		Resquash: &ResquashReport{NewKey: "def456", DriftScore: 0.42, OutputOK: true, MissBefore: 0.01, MissAfter: 0.002},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeResponseV2(bw, sc, resp); err != nil {
		t.Fatalf("writeResponseV2: %v", err)
	}
	bw.Flush()
	fb2, env2, pay2, err := readFrameBodyV2(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("readFrameBodyV2 (resp): %v", err)
	}
	defer fb2.release()
	var rout Response
	if err := decodeResponseV2(sc, env2, pay2, &rout); err != nil {
		t.Fatalf("decodeResponseV2: %v", err)
	}
	if rout.ImageKey != "def456" || rout.Feed == nil || len(rout.Feed.Images) != 1 ||
		rout.Feed.Images[0].Key != "abc123" || rout.Feed.Images[0].Threshold != 0.25 {
		t.Fatalf("feed diverged: %+v", rout.Feed)
	}
	if rout.Resquash == nil || rout.Resquash.NewKey != "def456" || !rout.Resquash.OutputOK ||
		rout.Resquash.MissAfter != 0.002 {
		t.Fatalf("resquash diverged: %+v", rout.Resquash)
	}
	if !bytes.Equal(rout.Image, resp.Image) {
		t.Fatalf("image diverged: %q", rout.Image)
	}

	// v1 JSON framing must carry the same fields (base64 for payloads).
	var v1buf bytes.Buffer
	if err := WriteFrame(&v1buf, in); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	var v1out Request
	if err := ReadFrame(&v1buf, &v1out); err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if !bytes.Equal(v1out.Image, in.Image) || !bytes.Equal(v1out.Input, in.Input) ||
		v1out.ImageKey != in.ImageKey || v1out.Run == nil || *v1out.Run != *in.Run || !v1out.Force {
		t.Fatalf("v1 framing diverged: %+v", v1out)
	}
}

// TestFrameV2ResponseRoundTrip: responses round-trip with the image copied
// out of the frame buffer — a retained response must survive the buffer's
// recycling.
func TestFrameV2ResponseRoundTrip(t *testing.T) {
	in := &Response{
		OK:     true,
		Image:  []byte("the squashed image"),
		Stats:  &core.Stats{InputBytes: 100, SquashedBytes: 60},
		Cached: true,
		Results: []BatchResult{
			{OK: true, Image: []byte("batch image"), Shared: true},
			{OK: false, Err: "bad item"},
		},
	}
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	if err := writeResponseV2(bw, sc, in); err != nil {
		t.Fatalf("writeResponseV2: %v", err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}

	fb, env, pay, err := readFrameBodyV2(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("readFrameBodyV2: %v", err)
	}
	var out Response
	if err := decodeResponseV2(sc, env, pay, &out); err != nil {
		t.Fatalf("decodeResponseV2: %v", err)
	}
	if !out.OK || !out.Cached || out.Stats == nil || out.Stats.SquashedBytes != 60 {
		t.Fatalf("scalar fields diverged: %+v", out)
	}
	if !bytes.Equal(out.Image, in.Image) {
		t.Fatalf("image diverged: %q", out.Image)
	}
	if len(out.Results) != 2 || !bytes.Equal(out.Results[0].Image, in.Results[0].Image) ||
		!out.Results[0].Shared || out.Results[1].Err != "bad item" || out.Results[1].Image != nil {
		t.Fatalf("results diverged: %+v", out.Results)
	}
	// Copy-out: recycling (and scribbling over) the frame buffer must not
	// touch the decoded response.
	for i := range pay {
		pay[i] = 0xAA
	}
	fb.release()
	if !bytes.Equal(out.Image, in.Image) || !bytes.Equal(out.Results[0].Image, in.Results[0].Image) {
		t.Fatal("response aliases the recycled frame buffer")
	}
}

// TestFrameV2RejectsHostileSections: overlapping, out-of-bounds,
// out-of-order, and trailing-garbage section tables are connection-level
// errors, never aliased or silently truncated reads.
func TestFrameV2RejectsHostileSections(t *testing.T) {
	cases := []struct {
		name string
		env  string
		pay  []byte
	}{
		{"out of bounds", `{"op":"squash","obj":{"o":0,"n":100},"profile":{"o":0,"n":0}}`, []byte("tiny")},
		{"overlapping", `{"op":"squash","obj":{"o":0,"n":3},"profile":{"o":1,"n":3}}`, []byte("abcd")},
		{"out of order", `{"op":"squash","obj":{"o":2,"n":2},"profile":{"o":0,"n":2}}`, []byte("abcd")},
		{"trailing bytes", `{"op":"squash","obj":{"o":0,"n":2},"profile":{"o":0,"n":0}}`, []byte("abcd")},
		{"zero len at offset", `{"op":"squash","obj":{"o":2,"n":0},"profile":{"o":0,"n":0}}`, []byte("ab")},
		{"garbage envelope", `{"op":`, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			br := bufio.NewReader(bytes.NewReader(v2Frame(c.env, c.pay)))
			fb, env, pay, err := readFrameBodyV2(br)
			if err != nil {
				t.Fatalf("frame read rejected before decode: %v", err)
			}
			defer fb.release()
			sc := getFrameScratch()
			defer putFrameScratch(sc)
			var req Request
			err = decodeRequestV2(sc, env, pay, fb, &req)
			var pe *protoError
			if !errors.As(err, &pe) {
				t.Fatalf("decode error = %v, want a protoError", err)
			}
		})
	}

	// A hostile header must be rejected without allocating the claimed size.
	huge := make([]byte, frameHeaderLen)
	huge[0], huge[2], huge[3] = ProtoV2, frameMagic2, frameMagic3
	binary.LittleEndian.PutUint32(huge[4:8], 1<<31)
	binary.LittleEndian.PutUint32(huge[8:12], 1<<31)
	if _, _, _, err := readFrameBodyV2(bufio.NewReader(bytes.NewReader(huge))); err == nil {
		t.Fatal("oversized v2 frame accepted")
	}
}

// TestProtoInteropByteIdentity is the acceptance invariant: the same
// workload returns byte-identical images across protocol v1 (legacy
// package-level client), pinned v1, negotiated v2, and batch framing, with
// pooling on and off.
func TestProtoInteropByteIdentity(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 13, conf)

	for _, pooling := range []struct {
		name string
		on   bool
	}{{"pooled", true}, {"nopool", false}} {
		t.Run(pooling.name, func(t *testing.T) {
			SetPooling(pooling.on)
			core.SetPooling(pooling.on)
			defer func() {
				SetPooling(true)
				core.SetPooling(true)
			}()

			s, addr, stop := startServer(t, Options{Workers: 2})
			defer stop()
			req := func() *Request {
				return &Request{Op: OpSquash, Obj: obj, Profile: prof}
			}

			// Legacy v1 path: raw conn + package-level Do.
			conn, err := Dial(addr)
			if err != nil {
				t.Fatalf("dial: %v", err)
			}
			resp, err := Do(conn, req())
			conn.Close()
			if err != nil || !resp.OK {
				t.Fatalf("v1 Do: resp=%+v err=%v", resp, err)
			}
			if !bytes.Equal(resp.Image, want) {
				t.Fatal("legacy v1 image diverged from one-shot squash")
			}

			// Negotiated client: must land on v2 and return the same bytes.
			cl, err := DialClient(addr)
			if err != nil {
				t.Fatalf("DialClient: %v", err)
			}
			defer cl.Close()
			resp, err = cl.Do(req())
			if err != nil || !resp.OK {
				t.Fatalf("v2 Do: resp=%+v err=%v", resp, err)
			}
			if cl.Proto() != ProtoV2 {
				t.Fatalf("negotiated proto = v%d, want v2", cl.Proto())
			}
			if !bytes.Equal(resp.Image, want) {
				t.Fatal("v2 image diverged from one-shot squash")
			}
			if cl.BytesIn() == 0 || cl.BytesOut() == 0 {
				t.Fatalf("wire counters empty: in=%d out=%d", cl.BytesIn(), cl.BytesOut())
			}

			// Pinned v1 client.
			cl1, err := DialClientProto(addr, ProtoV1)
			if err != nil {
				t.Fatalf("DialClientProto(1): %v", err)
			}
			defer cl1.Close()
			resp, err = cl1.Do(req())
			if err != nil || !resp.OK || cl1.Proto() != ProtoV1 {
				t.Fatalf("pinned v1: resp=%+v err=%v proto=%d", resp, err, cl1.Proto())
			}
			if !bytes.Equal(resp.Image, want) {
				t.Fatal("pinned v1 image diverged from one-shot squash")
			}

			// Batch over v2: every result byte-identical too.
			resp, err = cl.Do(&Request{Op: OpBatch, Items: []BatchItem{
				{Obj: obj, Profile: prof},
				{Obj: obj, Profile: prof},
			}})
			if err != nil || !resp.OK || len(resp.Results) != 2 {
				t.Fatalf("v2 batch: resp=%+v err=%v", resp, err)
			}
			for i, r := range resp.Results {
				if !r.OK || !bytes.Equal(r.Image, want) {
					t.Fatalf("batch result %d diverged (ok=%v err=%q)", i, r.OK, r.Err)
				}
			}

			snap := s.StatsSnapshot()
			if snap.ProtoConns["v1"] == 0 || snap.ProtoConns["v2"] == 0 {
				t.Fatalf("proto_conns = %v, want both versions counted", snap.ProtoConns)
			}
		})
	}
}

// TestV2ConnRejectsV1MidStream: a connection latches its first frame's
// version; switching framings afterwards is a fatal protocol error with an
// explicit error response before the close.
func TestV2ConnRejectsV1MidStream(t *testing.T) {
	_, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()

	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// First frame v2: latches the connection.
	if _, err := conn.Write(encodeV2Request(t, &Request{Op: OpPing})); err != nil {
		t.Fatalf("write v2 ping: %v", err)
	}
	br := bufio.NewReader(conn)
	fb, env, pay, err := readFrameBodyV2(br)
	if err != nil {
		t.Fatalf("read v2 response: %v", err)
	}
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	var resp Response
	if err := decodeResponseV2(sc, env, pay, &resp); err != nil || !resp.OK {
		t.Fatalf("v2 ping: resp=%+v err=%v", resp, err)
	}
	fb.release()

	// Now a v1 frame on the same connection: explicit error, then close.
	if err := WriteFrame(conn, &Request{Op: OpPing}); err != nil {
		t.Fatalf("write v1 ping: %v", err)
	}
	fb, env, pay, err = readFrameBodyV2(br)
	if err != nil {
		t.Fatalf("read error response: %v", err)
	}
	resp = Response{}
	if err := decodeResponseV2(sc, env, pay, &resp); err != nil {
		t.Fatalf("decode error response: %v", err)
	}
	fb.release()
	if resp.OK || resp.Err == "" {
		t.Fatalf("mixed-version frame not rejected: %+v", resp)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		t.Fatalf("connection still open after fatal protocol error (err=%v)", err)
	}
}

// TestServerV1Capped: a server pinned to proto v1 (mimicking a pre-v2
// build's capabilities) downgrades negotiating clients transparently and
// rejects pinned-v2 clients with an explicit error.
func TestServerV1Capped(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 17, conf)
	_, addr, stop := startServer(t, Options{Workers: 1, MaxProto: 1})
	defer stop()

	// Negotiating client: downgrade happens inside the first Do.
	cl, err := DialClient(addr)
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()
	resp, err := cl.Do(&Request{Op: OpSquash, Obj: obj, Profile: prof})
	if err != nil || !resp.OK {
		t.Fatalf("negotiated request: resp=%+v err=%v", resp, err)
	}
	if cl.Proto() != ProtoV1 {
		t.Fatalf("client proto = v%d, want downgrade to v1", cl.Proto())
	}
	if !bytes.Equal(resp.Image, want) {
		t.Fatal("downgraded image diverged from one-shot squash")
	}
	// The connection keeps serving after the downgrade.
	if resp, err := cl.Do(&Request{Op: OpPing}); err != nil || !resp.OK {
		t.Fatalf("ping after downgrade: resp=%+v err=%v", resp, err)
	}

	// Pinned v2 client: the version miss surfaces instead of downgrading.
	cl2, err := DialClientProto(addr, ProtoV2)
	if err != nil {
		t.Fatalf("DialClientProto(2): %v", err)
	}
	defer cl2.Close()
	resp, err = cl2.Do(&Request{Op: OpPing})
	if err != nil {
		t.Fatalf("pinned v2 transport error: %v", err)
	}
	if resp.OK || resp.ProtoMax != 1 {
		t.Fatalf("pinned v2 against capped server: %+v, want error with proto_max=1", resp)
	}
}

// TestClientFallbackOldServer: a genuinely pre-v2 server can't parse a v2
// opening at all — it sees an oversized v1 length prefix and hangs up. The
// negotiating client redials and resends in v1.
func TestClientFallbackOldServer(t *testing.T) {
	// A minimal replica of the pre-v2 daemon loop: length-prefixed JSON
	// only, connection dropped on any read error.
	path := filepath.Join(t.TempDir(), "oldserver.sock")
	ln, err := net.Listen("unix", path)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					var req Request
					if err := ReadFrame(c, &req); err != nil {
						return
					}
					if err := WriteFrame(c, &Response{OK: true}); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	cl, err := DialClient("unix:" + path)
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()
	resp, err := cl.Do(&Request{Op: OpPing})
	if err != nil || !resp.OK {
		t.Fatalf("fallback request: resp=%+v err=%v", resp, err)
	}
	if cl.Proto() != ProtoV1 {
		t.Fatalf("client proto = v%d, want v1 fallback", cl.Proto())
	}
	// And it keeps working.
	if resp, err := cl.Do(&Request{Op: OpPing}); err != nil || !resp.OK {
		t.Fatalf("second request after fallback: resp=%+v err=%v", resp, err)
	}
}

// TestNoImage: a stats-only request skips image bytes on the wire but
// still runs the squash, reports full stats, and warms the result cache
// for later full requests.
func TestNoImage(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 19, conf)
	s, addr, stop := startServer(t, Options{Workers: 2})
	defer stop()

	cl, err := DialClient(addr)
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()

	resp, err := cl.Do(&Request{Op: OpSquash, Obj: obj, Profile: prof, NoImage: true})
	if err != nil || !resp.OK {
		t.Fatalf("noimage request: resp=%+v err=%v", resp, err)
	}
	if resp.Image != nil {
		t.Fatalf("noimage response carries %d image bytes", len(resp.Image))
	}
	if resp.Stats == nil || resp.Stats.SquashedBytes == 0 {
		t.Fatalf("noimage response missing stats: %+v", resp.Stats)
	}

	// The squash ran and cached: a full request now hits and returns the
	// exact one-shot bytes.
	resp, err = cl.Do(&Request{Op: OpSquash, Obj: obj, Profile: prof})
	if err != nil || !resp.OK {
		t.Fatalf("follow-up request: resp=%+v err=%v", resp, err)
	}
	if !resp.Cached {
		t.Fatal("noimage squash did not warm the result cache")
	}
	if !bytes.Equal(resp.Image, want) {
		t.Fatal("cache warmed by a noimage request returned different bytes")
	}

	// The v1 framing honors the flag too.
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	resp, err = Do(conn, &Request{Op: OpSquash, Obj: obj, Profile: prof, NoImage: true})
	if err != nil || !resp.OK || resp.Image != nil || resp.Stats == nil {
		t.Fatalf("v1 noimage: resp.OK=%v image=%d stats=%v err=%v", resp.OK, len(resp.Image), resp.Stats, err)
	}
	if snap := s.StatsSnapshot(); snap.Errors != 0 {
		t.Fatalf("server reported %d errors", snap.Errors)
	}
}

// TestNoImageBatch: the frame-level NoImage flag strips every batch
// result's image while leaving per-item stats and flags intact.
func TestNoImageBatch(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 23, conf)
	_, addr, stop := startServer(t, Options{Workers: 2})
	defer stop()

	cl, err := DialClient(addr)
	if err != nil {
		t.Fatalf("DialClient: %v", err)
	}
	defer cl.Close()

	resp, err := cl.Do(&Request{Op: OpBatch, NoImage: true, Items: []BatchItem{
		{Obj: obj, Profile: prof},
		{Obj: obj, Profile: prof},
	}})
	if err != nil || !resp.OK || len(resp.Results) != 2 {
		t.Fatalf("noimage batch: resp=%+v err=%v", resp, err)
	}
	for i, r := range resp.Results {
		if !r.OK || r.Image != nil || r.Stats == nil {
			t.Fatalf("result %d: ok=%v image=%d stats=%v", i, r.OK, len(r.Image), r.Stats)
		}
	}
	if !resp.Results[1].Shared {
		t.Fatal("within-batch dedup lost under noimage")
	}

	// Full batch afterwards: warmed cache, byte-identical images.
	resp, err = cl.Do(&Request{Op: OpBatch, Items: []BatchItem{{Obj: obj, Profile: prof}}})
	if err != nil || !resp.OK || len(resp.Results) != 1 {
		t.Fatalf("follow-up batch: resp=%+v err=%v", resp, err)
	}
	if r := resp.Results[0]; !r.Cached || !bytes.Equal(r.Image, want) {
		t.Fatalf("follow-up batch result: cached=%v identical=%v", r.Cached, bytes.Equal(r.Image, want))
	}
}

// TestFrameBufPool: the frame read buffers recycle with idempotent release,
// and oversized or pooling-off buffers bypass the pool entirely.
func TestFrameBufPool(t *testing.T) {
	fb := getFrameBuf(100)
	if !fb.pooled {
		t.Fatal("small frame buffer not pooled")
	}
	if len(fb.data) < 100 {
		t.Fatalf("buffer too small: %d", len(fb.data))
	}
	fb.release()
	fb.release() // second release must be a no-op, not a double-put

	big := getFrameBuf(maxScratchBytes + 1)
	if big.pooled {
		t.Fatal("oversized frame buffer claims to be pooled")
	}
	if len(big.data) != maxScratchBytes+1 {
		t.Fatalf("oversized buffer len = %d, want exact size", len(big.data))
	}
	big.release()

	SetPooling(false)
	defer SetPooling(true)
	off := getFrameBuf(100)
	if off.pooled {
		t.Fatal("pooling-off buffer claims to be pooled")
	}
	off.release()
}

// FuzzFrame drives the server-side codec over arbitrary byte streams at
// both protocol caps: no input may panic, and every malformed frame must
// surface as a clean connection-level error (or a recoverable version
// miss), never a hang or an aliased read.
func FuzzFrame(f *testing.F) {
	// Well-formed openings of both versions.
	var v1ping bytes.Buffer
	if err := WriteFrame(&v1ping, &Request{Op: OpPing}); err != nil {
		f.Fatal(err)
	}
	var v2buf bytes.Buffer
	bw := bufio.NewWriter(&v2buf)
	sc := newFrameScratch()
	if err := writeRequestV2(bw, sc, &Request{Op: OpSquash, Obj: []byte("obj"), Profile: []byte("prof")}); err != nil {
		f.Fatal(err)
	}
	bw.Flush()
	v2req := v2buf.Bytes()

	f.Add(v1ping.Bytes())
	f.Add(v2req)
	f.Add(append(append([]byte{}, v2req...), v1ping.Bytes()...)) // v1 JSON mid-v2-stream
	f.Add(append(append([]byte{}, v1ping.Bytes()...), v2req...)) // v2 mid-v1-stream
	f.Add(v2req[:len(v2req)-3])                                  // truncated payload
	f.Add(v2req[:frameHeaderLen-2])                              // truncated header
	f.Add([]byte{0xFF, 0xFF, 0x51, 0xF2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add(v2Frame(`{"op":"squash","obj":{"o":0,"n":99},"profile":{"o":0,"n":0}}`, []byte("x")))
	f.Add(v2Frame(`{"op":"squash","obj":{"o":0,"n":2},"profile":{"o":1,"n":1}}`, []byte("ab")))
	f.Add(v2Frame(`not json`, nil))
	f.Add(v2Frame(``, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, maxVer := range []int{1, MaxProtoVersion} {
			codec := newServerCodec(bytes.NewReader(data), io.Discard, maxVer)
			for i := 0; i < 64; i++ {
				var req Request
				err := codec.readRequest(&req)
				if err == nil {
					// Frames that parse get a response written, exercising
					// the encode side, and their payload released as the
					// server would after processing.
					codec.writeResponse(&Response{OK: true})
					req.releasePayload()
					continue
				}
				var pe *protoError
				if errors.As(err, &pe) && !pe.fatal {
					codec.writeResponse(&Response{Err: pe.msg, ProtoMax: pe.max})
					continue
				}
				break
			}
			codec.close()
		}
	})
}
