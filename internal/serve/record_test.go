package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// syncBuffer guards the recorder's writer: the server records from
// connection goroutines while the test reads the buffer afterwards.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestRecordStream: a recording server captures squash/bench/batch
// arrivals with keys and nondecreasing offsets, and skips operator traffic
// (ping, stats).
func TestRecordStream(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, _ := buildWorkload(t, 3, conf)

	var rec syncBuffer
	_, addr, stop := startServer(t, Options{Workers: 2, Record: NewStreamRecorder(&rec)})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	reqs := []*Request{
		{Op: OpPing},
		{Op: OpSquash, Obj: obj, Profile: prof},
		{Op: OpBench, Bench: "no-such-benchmark", Scale: 2},
		{Op: OpBatch, Items: []BatchItem{{Obj: obj, Profile: prof}, {Bench: "adpcm"}}},
		{Op: OpStats},
	}
	for _, req := range reqs {
		if _, err := Do(conn, req); err != nil {
			t.Fatalf("op %s: %v", req.Op, err)
		}
	}

	entries, err := ReadStream(strings.NewReader(rec.String()))
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("recorded %d entries, want 3 (ping/stats must not record): %+v", len(entries), entries)
	}
	if entries[0].Op != OpSquash || entries[0].Key == "" || entries[0].Bytes == 0 {
		t.Errorf("squash entry missing key/bytes: %+v", entries[0])
	}
	if entries[1].Op != OpBench || entries[1].Bench != "no-such-benchmark" || entries[1].Scale != 2 {
		t.Errorf("bench entry wrong: %+v", entries[1])
	}
	if entries[2].Op != OpBatch || len(entries[2].Items) != 2 {
		t.Fatalf("batch entry wrong: %+v", entries[2])
	}
	if entries[2].Items[0].Key == "" || entries[2].Items[1].Bench != "adpcm" {
		t.Errorf("batch items wrong: %+v", entries[2].Items)
	}
	last := -1.0
	for i, e := range entries {
		if e.TMs < last {
			t.Errorf("entry %d offset %.3f before predecessor %.3f", i, e.TMs, last)
		}
		last = e.TMs
	}

	// The inline entry's key must be the content hash the result cache
	// uses, so a stream identifies repeats of the same object.
	wantKey := contentKey(obj, prof, nil)
	if entries[0].Key != wantKey {
		t.Errorf("squash entry key %q, want %q", entries[0].Key, wantKey)
	}
}

// TestReadStreamMalformed: blank lines are tolerated, malformed lines are
// loud errors.
func TestReadStreamMalformed(t *testing.T) {
	good := `{"t_ms":0,"op":"bench","bench":"adpcm"}` + "\n\n" + `{"t_ms":5,"op":"bench","bench":"gsm"}` + "\n"
	entries, err := ReadStream(strings.NewReader(good))
	if err != nil {
		t.Fatalf("blank-line stream rejected: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(entries))
	}

	if _, err := ReadStream(strings.NewReader(good + "{truncated")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestRecorderNil: a nil recorder is a safe no-op (the default server).
func TestRecorderNil(t *testing.T) {
	var r *StreamRecorder
	r.Record(&Request{Op: OpSquash}) // must not panic
}
