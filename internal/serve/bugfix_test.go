package serve

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestResultCacheByteBudget: with a byte budget set, the cache bounds
// total image bytes — not just entry count — and the totals put reports
// stay accurate across multi-entry evictions.
func TestResultCacheByteBudget(t *testing.T) {
	key := func(i byte) [32]byte { return [32]byte{i} }
	img := func(n int) []byte { return make([]byte, n) }

	// Entry cap far above what the byte budget admits: eviction pressure
	// comes from bytes alone.
	c := newResultCache(100, 1000)
	for i := byte(1); i <= 10; i++ {
		entries, bytes := c.put(&cacheEntry{key: key(i), image: img(300)})
		if bytes > 1000 {
			t.Fatalf("after put %d: %d resident bytes exceed the 1000-byte budget", i, bytes)
		}
		if wantE, wantB := c.size(); entries != wantE || bytes != wantB {
			t.Fatalf("put reported (%d, %d), size() reports (%d, %d)", entries, bytes, wantE, wantB)
		}
	}
	// 300-byte images under a 1000-byte budget: exactly 3 fit.
	if entries, bytes := c.size(); entries != 3 || bytes != 900 {
		t.Fatalf("steady state = (%d entries, %d bytes), want (3, 900)", entries, bytes)
	}
	if _, ok := c.get(key(10)); !ok {
		t.Fatal("newest entry missing")
	}
	if _, ok := c.get(key(7)); ok {
		t.Fatal("entry beyond the byte budget survived")
	}

	// One large insert must evict several residents at once, and the totals
	// returned from that single put must already reflect all of them.
	entries, bytes := c.put(&cacheEntry{key: key(11), image: img(900)})
	if entries != 1 || bytes != 900 {
		t.Fatalf("multi-entry eviction left (%d entries, %d bytes), want (1, 900)", entries, bytes)
	}

	// An image larger than the whole budget is refused outright: admitting
	// it would flush the cache and still bust the budget.
	entries, bytes = c.put(&cacheEntry{key: key(12), image: img(1001)})
	if entries != 1 || bytes != 900 {
		t.Fatalf("oversized insert changed totals to (%d, %d), want (1, 900) unchanged", entries, bytes)
	}
	if _, ok := c.get(key(12)); ok {
		t.Fatal("an image larger than the whole budget was cached")
	}

	// Zero budget keeps the old entry-count-only behavior.
	c = newResultCache(2, 0)
	c.put(&cacheEntry{key: key(1), image: img(1 << 20)})
	c.put(&cacheEntry{key: key(2), image: img(1 << 20)})
	if entries, _ := c.size(); entries != 2 {
		t.Fatalf("unbudgeted cache holds %d entries, want 2", entries)
	}
}

// TestStatsSnapshotConsistent: latency count and percentiles must come
// from one consistent histogram view. The old code read Quantiles and
// WindowCount in two calls; a first sample landing between them yielded
// count=1 with all-zero percentiles. Every observation here is the same
// value, so any snapshot with a count must report exactly that value.
func TestStatsSnapshotConsistent(t *testing.T) {
	m := newMetrics(obs.NewRegistry())
	const val = 5.0
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					m.lat.Observe(val)
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		s := m.snapshot()
		if s.Latency.Count > 0 && (s.Latency.P50 != val || s.Latency.Max != val) {
			close(stop)
			wg.Wait()
			t.Fatalf("torn snapshot: count=%d p50=%g max=%g, want %g everywhere",
				s.Latency.Count, s.Latency.P50, s.Latency.Max, val)
		}
	}
	close(stop)
	wg.Wait()
}

// TestBenchPrepErrorCounts: a failed benchmark preparation must still
// count as a prep-cache miss (errored requests stay in the hit-rate
// denominator) and increment the dedicated prep-error counter.
func TestBenchPrepErrorCounts(t *testing.T) {
	s, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()

	c, err := DialClient(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	resp, err := c.Do(&Request{Op: OpBench, Bench: "no-such-benchmark"})
	if err != nil {
		t.Fatalf("do: %v", err)
	}
	if resp.OK || !strings.Contains(resp.Err, "no-such-benchmark") {
		t.Fatalf("response = %+v, want an error naming the benchmark", resp)
	}

	snap := s.StatsSnapshot()
	if snap.PrepCacheMisses != 1 {
		t.Fatalf("prep cache misses = %d, want 1 (errored prep must count as a miss)", snap.PrepCacheMisses)
	}
	if snap.PrepErrors != 1 {
		t.Fatalf("prep errors = %d, want 1", snap.PrepErrors)
	}
	if snap.PrepCacheHits != 0 {
		t.Fatalf("prep cache hits = %d, want 0", snap.PrepCacheHits)
	}
}
