package serve

import (
	"encoding/hex"
	"fmt"

	"repro/internal/core"
	"repro/internal/parallel"
)

// processBatch executes one OpBatch frame on a pool worker. Items are
// grouped by content key first: each unique (object, profile, config) — or
// (bench, scale, config) — runs the ordinary one-shot path exactly once,
// and every duplicate reuses that result with Shared set. That is where
// the amortization lives: codebook training happens once per unique
// object, benchmark preparation once per unique (bench, scale), and both
// the global result cache and the prep cache apply exactly as for single
// requests, so batch responses stay byte-identical to one-shot squash.
//
// Unique groups fan out across goroutines bounded by the server's worker
// option; results keep item order. Errors are per-item: a malformed object
// produces an error result at its own index and nowhere else.
func (s *Server) processBatch(req *Request) *Response {
	items := req.Items
	if len(items) == 0 {
		return errResponse("batch request needs at least one item")
	}
	if len(items) > MaxBatchItems {
		return errResponse(fmt.Sprintf("batch of %d items exceeds limit %d", len(items), MaxBatchItems))
	}

	// Group duplicate items; groups[gi] processes once for all its members.
	type group struct {
		first int // representative item index
		resp  *Response
	}
	groupOf := make([]int, len(items))
	index := map[string]int{}
	var groups []*group
	for i := range items {
		k := items[i].dedupKey()
		gi, ok := index[k]
		if !ok {
			gi = len(groups)
			index[k] = gi
			groups = append(groups, &group{first: i})
		}
		groupOf[i] = gi
	}

	// Never returns an error: each group's failure lands in its own resp.
	parallel.ForEach(len(groups), s.opts.Workers, func(gi int) error {
		g := groups[gi]
		g.resp = s.processItem(&items[g.first], req.NoImage)
		return nil
	})

	results := make([]BatchResult, len(items))
	shared := 0
	for i := range items {
		g := groups[groupOf[i]]
		r := g.resp
		results[i] = BatchResult{
			OK: r.OK, Err: r.Err, Image: r.Image, Stats: r.Stats, Foot: r.Foot,
			Cached: r.Cached, PrepCached: r.PrepCached, Shared: i != g.first,
		}
		if i != g.first {
			shared++
		}
	}
	s.met.batch(len(items), shared)
	return &Response{OK: true, Results: results}
}

// processItem runs one batch item through the same code path as its
// one-shot op, so per-object behavior (validation, caching, byte output)
// cannot drift between batch and single-request serving. The frame-level
// NoImage flag applies to every item.
func (s *Server) processItem(it *BatchItem, noImage bool) *Response {
	if it.Bench != "" {
		return s.process(&Request{Op: OpBench, Bench: it.Bench, Scale: it.Scale, Config: it.Config, NoImage: noImage})
	}
	return s.process(&Request{Op: OpSquash, Obj: it.Obj, Profile: it.Profile, Config: it.Config, NoImage: noImage})
}

// dedupKey identifies items whose squash results are necessarily
// byte-identical, for within-batch sharing. Inline items reuse the result
// cache's content hash; named-benchmark items key on (bench, scale) plus
// the config hash, since preparation is deterministic per spec.
func (it *BatchItem) dedupKey() string {
	conf := core.DefaultConfig()
	if it.Config != nil {
		conf = *it.Config
	}
	if it.Bench != "" {
		scale := it.Scale
		if scale == 0 {
			scale = 1.0
		}
		k := resultKey(nil, nil, conf)
		return fmt.Sprintf("b:%s:%g:%s", it.Bench, scale, hex.EncodeToString(k[:8]))
	}
	k := resultKey(it.Obj, it.Profile, conf)
	return "o:" + hex.EncodeToString(k[:])
}
