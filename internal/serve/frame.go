package serve

// Wire protocol v2: binary frames with zero-copy payload sections.
//
// A v2 frame is a fixed 12-byte header followed by a small JSON envelope
// and a raw payload trailer:
//
//	byte  0      protocol version (0x02)
//	byte  1      flags (reserved, must be zero)
//	bytes 2-3    magic 0x51 0xF2
//	bytes 4-7    envelope length  (uint32 little-endian)
//	bytes 8-11   payload trailer length (uint32 little-endian)
//	...          envelope: one JSON document (op, config, flags, errors)
//	...          payload trailer: raw section bytes, back to back
//
// Every []byte payload of the request/response structs — Obj, Profile,
// Image, the per-BatchItem and per-BatchResult payloads — travels in the
// trailer and is referenced from the envelope as an (offset, length)
// section in a fixed canonical order with no gaps and no overlap. Payload
// bytes therefore cross the wire with zero base64: the writer emits each
// slice straight from its source (a cache entry, a client's file bytes)
// without materializing the frame, and the server slices sections — not
// copies — out of the pooled frame read buffer. Clients copy sections out
// at exact size (the "at most one copy" of a read), because a response
// must outlive the connection's recycled buffers.
//
// The magic doubles as version discrimination. Read as a v1 little-endian
// length prefix, bytes 0-3 of a v2 header decode to at least 0xF2510000 —
// far above MaxFrame — so a v1 reader cleanly rejects a v2 frame, and a v2
// reader can sniff four bytes to tell the framings apart without consuming
// input. A connection latches the version of its first frame: old clients
// keep speaking length-prefixed JSON forever; new clients open with v2 and
// downgrade when the server either answers with a v1 proto_max error (a
// version-capped server) or hangs up on the unreadable frame (a server
// that predates v2 entirely).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
)

// Protocol versions. The first frame of a connection declares the highest
// version the client speaks; the server answers in kind.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	// MaxProtoVersion is the highest protocol version this build speaks.
	MaxProtoVersion = ProtoV2
)

const (
	frameMagic2    = 0x51
	frameMagic3    = 0xF2
	frameHeaderLen = 12
	// frameIOSize is the bufio size for frame connections: large enough
	// that a header + envelope + typical payload flushes as one write.
	frameIOSize = 64 << 10
)

// isV2Header reports whether 4 peeked bytes open a v2 frame. The check is
// unambiguous: as a v1 length prefix these bytes would decode above
// MaxFrame, so no valid v1 frame can alias a v2 header.
func isV2Header(b []byte) bool {
	return len(b) >= 4 && b[2] == frameMagic2 && b[3] == frameMagic3
}

// protoError is a wire-protocol violation or version-negotiation miss.
// Non-fatal errors (max > 0, fatal false) are reported to the client and
// the connection continues; fatal ones are reported best-effort and the
// connection closes.
type protoError struct {
	msg   string
	max   int // > 0: advertise the server's highest supported version
	fatal bool
}

func (e *protoError) Error() string { return "serve: " + e.msg }

// secRef is one payload section: (offset, length) into the frame's payload
// trailer. A zero Len means the field is absent.
type secRef struct {
	Off uint32 `json:"o"`
	Len uint32 `json:"n"`
}

var errSecRef = errors.New("malformed section ref")

// UnmarshalJSON parses the {"o":N,"n":N} shape by hand. encoding/json's
// number path converts each digit run to a string before strconv, which
// puts several allocations on every warm frame read; section refs are the
// only numbers in a hot envelope, so they decode allocation-free here. The
// grammar is exactly the two known keys (any order, either optional) with
// bare uint32 values — a ref carrying anything else is malformed, not
// extensible.
func (r *secRef) UnmarshalJSON(b []byte) error {
	*r = secRef{}
	i := skipSpace(b, 0)
	if i >= len(b) || b[i] != '{' {
		return errSecRef
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == '}' {
		i++
	} else {
		for {
			// Key: a quoted single letter, "o" or "n".
			if i+2 >= len(b) || b[i] != '"' || b[i+2] != '"' {
				return errSecRef
			}
			key := b[i+1]
			i = skipSpace(b, i+3)
			if i >= len(b) || b[i] != ':' {
				return errSecRef
			}
			i = skipSpace(b, i+1)
			start := i
			var v uint64
			for i < len(b) && b[i] >= '0' && b[i] <= '9' {
				v = v*10 + uint64(b[i]-'0')
				if v > 0xFFFFFFFF {
					return errSecRef
				}
				i++
			}
			if i == start || (b[start] == '0' && i-start > 1) {
				return errSecRef
			}
			switch key {
			case 'o':
				r.Off = uint32(v)
			case 'n':
				r.Len = uint32(v)
			default:
				return errSecRef
			}
			i = skipSpace(b, i)
			if i < len(b) && b[i] == ',' {
				i = skipSpace(b, i+1)
				continue
			}
			if i < len(b) && b[i] == '}' {
				i++
				break
			}
			return errSecRef
		}
	}
	if skipSpace(b, i) != len(b) {
		return errSecRef
	}
	return nil
}

// skipSpace advances past JSON whitespace starting at i.
func skipSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// wireOp interns the fixed op vocabulary during envelope decode, so a warm
// frame read does not allocate for the op string.
type wireOp string

func (o *wireOp) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("op is not a JSON string")
	}
	switch s := b[1 : len(b)-1]; {
	case string(s) == OpSquash:
		*o = OpSquash
	case string(s) == OpBench:
		*o = OpBench
	case string(s) == OpBatch:
		*o = OpBatch
	case string(s) == OpStats:
		*o = OpStats
	case string(s) == OpPing:
		*o = OpPing
	case string(s) == OpCluster:
		*o = OpCluster
	case string(s) == OpDrain:
		*o = OpDrain
	case string(s) == OpUndrain:
		*o = OpUndrain
	case string(s) == OpProfileRegister:
		*o = OpProfileRegister
	case string(s) == OpProfilePush:
		*o = OpProfilePush
	case string(s) == OpProfileStatus:
		*o = OpProfileStatus
	case string(s) == OpProfileResquash:
		*o = OpProfileResquash
	default:
		// Unknown op: keep the raw spelling so the server's error message
		// can echo it. (Escape sequences stay unprocessed; an op that needs
		// them is by construction not one of ours.)
		*o = wireOp(s)
	}
	return nil
}

// reqEnv is the v2 request envelope: Request with every []byte field
// replaced by its payload section reference.
type reqEnv struct {
	Op       wireOp       `json:"op"`
	Obj      secRef       `json:"obj"`
	Profile  secRef       `json:"profile"`
	Image    secRef       `json:"image"`
	Input    secRef       `json:"input"`
	Config   *core.Config `json:"config,omitempty"`
	Bench    string       `json:"bench,omitempty"`
	Scale    float64      `json:"scale,omitempty"`
	NoImage  bool         `json:"no_image,omitempty"`
	Items    []itemEnv    `json:"items,omitempty"`
	Backend  string       `json:"backend,omitempty"`
	ImageKey string       `json:"image_key,omitempty"`
	Run      *RunMeta     `json:"run,omitempty"`
	Force    bool         `json:"force,omitempty"`
}

type itemEnv struct {
	Obj     secRef       `json:"obj"`
	Profile secRef       `json:"profile"`
	Bench   string       `json:"bench,omitempty"`
	Scale   float64      `json:"scale,omitempty"`
	Config  *core.Config `json:"config,omitempty"`
}

// respEnv is the v2 response envelope, mirroring Response the same way.
type respEnv struct {
	OK         bool             `json:"ok"`
	Err        string           `json:"err,omitempty"`
	Image      secRef           `json:"image"`
	Stats      *core.Stats      `json:"stats,omitempty"`
	Foot       *core.Footprint  `json:"foot,omitempty"`
	Cached     bool             `json:"cached,omitempty"`
	PrepCached bool             `json:"prep_cached,omitempty"`
	Results    []resultEnv      `json:"results,omitempty"`
	Server     *Snapshot        `json:"server,omitempty"`
	Cluster    *ClusterSnapshot `json:"cluster,omitempty"`
	Feed       *FeedSnapshot    `json:"feed,omitempty"`
	Resquash   *ResquashReport  `json:"resquash,omitempty"`
	ImageKey   string           `json:"image_key,omitempty"`
	ProtoMax   int              `json:"proto_max,omitempty"`
}

type resultEnv struct {
	OK         bool            `json:"ok"`
	Err        string          `json:"err,omitempty"`
	Image      secRef          `json:"image"`
	Stats      *core.Stats     `json:"stats,omitempty"`
	Foot       *core.Footprint `json:"foot,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	PrepCached bool            `json:"prep_cached,omitempty"`
	Shared     bool            `json:"shared,omitempty"`
}

// secTable assigns section references on the write side. Sections are laid
// out back to back in the order add is called — the same canonical order
// the reader's cursor enforces.
type secTable struct {
	secs [][]byte
	off  uint64
	err  error
}

func (t *secTable) add(b []byte) secRef {
	if len(b) == 0 {
		return secRef{}
	}
	if t.err != nil {
		return secRef{}
	}
	if t.off+uint64(len(b)) > MaxFrame {
		t.err = fmt.Errorf("serve: frame payload of %d bytes exceeds limit %d", t.off+uint64(len(b)), MaxFrame)
		return secRef{}
	}
	r := secRef{Off: uint32(t.off), Len: uint32(len(b))}
	t.off += uint64(len(b))
	t.secs = append(t.secs, b)
	return r
}

// secCursor resolves section references on the read side. It enforces the
// canonical layout — sections contiguous, in order, in bounds, covering
// the whole trailer — so overlapping or out-of-bounds references from a
// hostile peer are connection-level errors, never aliased reads.
type secCursor struct {
	pay []byte
	off uint32
}

func (c *secCursor) take(r secRef) ([]byte, error) {
	if r.Len == 0 {
		if r.Off != 0 {
			return nil, &protoError{msg: "payload section with zero length at nonzero offset", fatal: true}
		}
		return nil, nil
	}
	if r.Off != c.off {
		return nil, &protoError{msg: fmt.Sprintf("payload section at offset %d out of order (cursor %d)", r.Off, c.off), fatal: true}
	}
	end := uint64(r.Off) + uint64(r.Len)
	if end > uint64(len(c.pay)) {
		return nil, &protoError{msg: fmt.Sprintf("payload section [%d,%d) out of bounds (trailer %d bytes)", r.Off, end, len(c.pay)), fatal: true}
	}
	c.off = uint32(end)
	return c.pay[r.Off:end:end], nil
}

func (c *secCursor) done() error {
	if int(c.off) != len(c.pay) {
		return &protoError{msg: fmt.Sprintf("payload trailer has %d trailing bytes past the last section", len(c.pay)-int(c.off)), fatal: true}
	}
	return nil
}

// v2HeaderPad reserves header room at the front of the envelope buffer.
var v2HeaderPad [frameHeaderLen]byte

// emitFrameV2 writes one v2 frame: header, envelope, then each payload
// section straight from its source slice. Nothing assembles a full frame in
// memory — a multi-megabyte image streams through the bufio.Writer — and
// the caller's flush hands the socket whole buffered frames.
func emitFrameV2(bw *bufio.Writer, sc *frameScratch, env any, t *secTable) error {
	if t.err != nil {
		return t.err
	}
	// The header is assembled in front of the envelope inside the scratch
	// buffer, so header+envelope go out as one Write of pooled memory (a
	// stack header array would escape into the writer and allocate per
	// frame).
	sc.env.Reset()
	sc.env.Write(v2HeaderPad[:])
	if err := sc.enc.Encode(env); err != nil {
		return fmt.Errorf("serve: marshal v2 envelope: %w", err)
	}
	frame := sc.env.Bytes()
	if n := len(frame); n > frameHeaderLen && frame[n-1] == '\n' {
		frame = frame[:n-1] // Encoder's trailing newline is not part of the frame
	}
	envLen := len(frame) - frameHeaderLen
	if uint64(envLen)+t.off > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", uint64(envLen)+t.off, MaxFrame)
	}
	frame[0] = ProtoV2
	frame[1] = 0
	frame[2] = frameMagic2
	frame[3] = frameMagic3
	binary.LittleEndian.PutUint32(frame[4:8], uint32(envLen))
	binary.LittleEndian.PutUint32(frame[8:12], uint32(t.off))
	if _, err := bw.Write(frame); err != nil {
		return err
	}
	for _, s := range t.secs {
		if _, err := bw.Write(s); err != nil {
			return err
		}
	}
	return nil
}

// writeRequestV2 encodes req as one v2 frame into bw (not flushed).
func writeRequestV2(bw *bufio.Writer, sc *frameScratch, req *Request) error {
	t := secTable{secs: sc.secs[:0]}
	e := &sc.reqEnv
	*e = reqEnv{
		Op:       wireOp(req.Op),
		Obj:      t.add(req.Obj),
		Profile:  t.add(req.Profile),
		Image:    t.add(req.Image),
		Input:    t.add(req.Input),
		Config:   req.Config,
		Bench:    req.Bench,
		Scale:    req.Scale,
		NoImage:  req.NoImage,
		Backend:  req.Backend,
		ImageKey: req.ImageKey,
		Run:      req.Run,
		Force:    req.Force,
	}
	if len(req.Items) > 0 {
		items := sc.items[:0]
		for i := range req.Items {
			it := &req.Items[i]
			items = append(items, itemEnv{
				Obj:     t.add(it.Obj),
				Profile: t.add(it.Profile),
				Bench:   it.Bench,
				Scale:   it.Scale,
				Config:  it.Config,
			})
		}
		e.Items = items
	}
	err := emitFrameV2(bw, sc, e, &t)
	sc.recycleReq(e, &t)
	return err
}

// writeResponseV2 encodes resp as one v2 frame into bw (not flushed). The
// image bytes — a cache entry's retained copy on the warm path — go to the
// socket directly; the envelope is the only per-frame encoding work.
func writeResponseV2(bw *bufio.Writer, sc *frameScratch, resp *Response) error {
	t := secTable{secs: sc.secs[:0]}
	e := &sc.respEnv
	*e = respEnv{
		OK:         resp.OK,
		Err:        resp.Err,
		Image:      t.add(resp.Image),
		Stats:      resp.Stats,
		Foot:       resp.Foot,
		Cached:     resp.Cached,
		PrepCached: resp.PrepCached,
		Server:     resp.Server,
		Cluster:    resp.Cluster,
		Feed:       resp.Feed,
		Resquash:   resp.Resquash,
		ImageKey:   resp.ImageKey,
		ProtoMax:   resp.ProtoMax,
	}
	if len(resp.Results) > 0 {
		results := sc.results[:0]
		for i := range resp.Results {
			r := &resp.Results[i]
			results = append(results, resultEnv{
				OK: r.OK, Err: r.Err, Image: t.add(r.Image),
				Stats: r.Stats, Foot: r.Foot,
				Cached: r.Cached, PrepCached: r.PrepCached, Shared: r.Shared,
			})
		}
		e.Results = results
	}
	err := emitFrameV2(bw, sc, e, &t)
	sc.recycleResp(e, &t)
	return err
}

// readFrameBodyV2 reads one v2 frame (header included) into a pooled frame
// buffer and returns the envelope and payload views into it. The caller
// owns fb and must release it — directly on error paths, or through
// Request.releasePayload once decoded sections can no longer be read.
// Frames larger than the pool class go to an exact-size one-off buffer, so
// an oversized payload streams socket→buffer without pinning pool memory.
func readFrameBodyV2(br *bufio.Reader) (fb *frameBuf, env, pay []byte, err error) {
	// Peek instead of reading into a stack array: the array would escape
	// into io.ReadFull and allocate on every frame.
	hdr, err := br.Peek(frameHeaderLen)
	if err != nil {
		if err == io.EOF && len(hdr) > 0 {
			err = io.ErrUnexpectedEOF
		}
		return nil, nil, nil, err
	}
	if hdr[2] != frameMagic2 || hdr[3] != frameMagic3 {
		return nil, nil, nil, &protoError{msg: "bad v2 frame magic", fatal: true}
	}
	if hdr[0] != ProtoV2 {
		return nil, nil, nil, &protoError{
			msg:   fmt.Sprintf("unsupported frame version %d (max %d)", hdr[0], MaxProtoVersion),
			max:   MaxProtoVersion,
			fatal: true,
		}
	}
	if hdr[1] != 0 {
		return nil, nil, nil, &protoError{msg: fmt.Sprintf("unsupported frame flags %#x", hdr[1]), fatal: true}
	}
	envLen := binary.LittleEndian.Uint32(hdr[4:8])
	payLen := binary.LittleEndian.Uint32(hdr[8:12])
	if envLen == 0 {
		return nil, nil, nil, &protoError{msg: "frame with empty envelope", fatal: true}
	}
	total := uint64(envLen) + uint64(payLen)
	if total > MaxFrame {
		return nil, nil, nil, &protoError{msg: fmt.Sprintf("frame of %d bytes exceeds limit %d", total, MaxFrame), fatal: true}
	}
	br.Discard(frameHeaderLen) // buffered by the Peek, cannot fail
	fb = getFrameBuf(int(total))
	buf := fb.data[:total]
	if _, err := io.ReadFull(br, buf); err != nil {
		fb.release()
		return nil, nil, nil, err
	}
	return fb, buf[:envLen], buf[envLen:total], nil
}

// decodeEnv unmarshals one envelope through the scratch's pooled JSON
// decoder: a fresh json.Unmarshal rebuilds its decode state (scanner stack
// included) on every call, which dominates the per-frame allocation count.
// Any failure — including trailing bytes after the value, which would
// linger in the decoder's buffer — replaces the decoder, so pooled reuse
// never feeds one envelope's leftovers into the next frame's decode.
func (sc *frameScratch) decodeEnv(env []byte, v any) error {
	sc.decRd.Reset(env)
	err := sc.dec.Decode(v)
	if err == nil && sc.dec.More() {
		err = errors.New("trailing data after envelope")
	}
	if err != nil {
		sc.dec = json.NewDecoder(&sc.decRd)
	}
	return err
}

// decodeRequestV2 fills req from an envelope + payload pair. Payload
// fields are zero-copy views into fb's buffer; on success req takes
// ownership of fb (releasePayload recycles it). On error the caller still
// owns fb. The envelope decodes into sc's pooled struct (zeroed first, so
// no field of an earlier frame survives); everything req keeps is either
// copied scalars or json-allocated values, never scratch-owned memory.
func decodeRequestV2(sc *frameScratch, env, pay []byte, fb *frameBuf, req *Request) error {
	e := &sc.reqEnv
	*e = reqEnv{}
	if err := sc.decodeEnv(env, e); err != nil {
		return &protoError{msg: fmt.Sprintf("bad v2 envelope: %v", err), fatal: true}
	}
	cur := secCursor{pay: pay}
	*req = Request{
		Op:       string(e.Op),
		Config:   e.Config,
		Bench:    e.Bench,
		Scale:    e.Scale,
		NoImage:  e.NoImage,
		Backend:  e.Backend,
		ImageKey: e.ImageKey,
		Run:      e.Run,
		Force:    e.Force,
	}
	var err error
	if req.Obj, err = cur.take(e.Obj); err != nil {
		return err
	}
	if req.Profile, err = cur.take(e.Profile); err != nil {
		return err
	}
	if req.Image, err = cur.take(e.Image); err != nil {
		return err
	}
	if req.Input, err = cur.take(e.Input); err != nil {
		return err
	}
	if len(e.Items) > 0 {
		req.Items = make([]BatchItem, len(e.Items))
		for i := range e.Items {
			ie := &e.Items[i]
			it := &req.Items[i]
			it.Bench, it.Scale, it.Config = ie.Bench, ie.Scale, ie.Config
			if it.Obj, err = cur.take(ie.Obj); err != nil {
				return err
			}
			if it.Profile, err = cur.take(ie.Profile); err != nil {
				return err
			}
		}
	}
	if err := cur.done(); err != nil {
		return err
	}
	req.fb = fb
	return nil
}

// decodeResponseV2 fills resp from an envelope + payload pair. Unlike the
// server's request decode, payload sections are copied out at exact size:
// a response is retained by callers (files, caches, comparisons) long
// after the client's frame buffer recycles.
func decodeResponseV2(sc *frameScratch, env, pay []byte, resp *Response) error {
	e := &sc.respEnv
	*e = respEnv{}
	if err := sc.decodeEnv(env, e); err != nil {
		return &protoError{msg: fmt.Sprintf("bad v2 envelope: %v", err), fatal: true}
	}
	cur := secCursor{pay: pay}
	*resp = Response{
		OK: e.OK, Err: e.Err,
		Stats: e.Stats, Foot: e.Foot,
		Cached: e.Cached, PrepCached: e.PrepCached,
		Server: e.Server, Cluster: e.Cluster,
		Feed: e.Feed, Resquash: e.Resquash, ImageKey: e.ImageKey,
		ProtoMax: e.ProtoMax,
	}
	img, err := cur.take(e.Image)
	if err != nil {
		return err
	}
	resp.Image = copySection(img)
	if len(e.Results) > 0 {
		resp.Results = make([]BatchResult, len(e.Results))
		for i := range e.Results {
			re := &e.Results[i]
			r := &resp.Results[i]
			r.OK, r.Err, r.Stats, r.Foot = re.OK, re.Err, re.Stats, re.Foot
			r.Cached, r.PrepCached, r.Shared = re.Cached, re.PrepCached, re.Shared
			img, err := cur.take(re.Image)
			if err != nil {
				return err
			}
			r.Image = copySection(img)
		}
	}
	return cur.done()
}

func copySection(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// serverCodec is one connection's frame state: buffered I/O, the pooled
// encode scratch, and the latched protocol version.
type serverCodec struct {
	br     *bufio.Reader
	bw     *bufio.Writer
	sc     *frameScratch
	ver    int // latched by the first frame; 0 until then
	maxVer int
}

func newServerCodec(r io.Reader, w io.Writer, maxVer int) *serverCodec {
	if maxVer <= 0 || maxVer > MaxProtoVersion {
		maxVer = MaxProtoVersion
	}
	return &serverCodec{
		br:     bufio.NewReaderSize(r, frameIOSize),
		bw:     bufio.NewWriterSize(w, frameIOSize),
		sc:     getFrameScratch(),
		maxVer: maxVer,
	}
}

func (c *serverCodec) close() {
	putFrameScratch(c.sc)
	c.sc = nil
}

// readRequest reads one frame in whichever version the connection speaks.
// The first frame latches the version; mixing framings afterwards is a
// fatal protocol error.
func (c *serverCodec) readRequest(req *Request) error {
	peek, err := c.br.Peek(4)
	if err != nil {
		return err
	}
	if isV2Header(peek) {
		if c.ver == ProtoV1 {
			return &protoError{msg: "v2 frame on a connection speaking v1", fatal: true}
		}
		if c.maxVer < ProtoV2 {
			// Version-capped server: consume the frame so the connection
			// survives, and tell the client what to downgrade to.
			if err := c.skipFrameV2(); err != nil {
				return err
			}
			return &protoError{
				msg: fmt.Sprintf("unsupported protocol version %d (server max %d)", peek[0], c.maxVer),
				max: c.maxVer,
			}
		}
		fb, env, pay, err := readFrameBodyV2(c.br)
		if err != nil {
			return err
		}
		if err := decodeRequestV2(c.sc, env, pay, fb, req); err != nil {
			fb.release()
			return err
		}
		c.ver = ProtoV2
		return nil
	}
	if c.ver >= ProtoV2 {
		return &protoError{msg: "v1 frame on a connection speaking v2", fatal: true}
	}
	if err := ReadFrame(c.br, req); err != nil {
		return err
	}
	c.ver = ProtoV1
	return nil
}

// skipFrameV2 discards one v2 frame after validating its bounds.
func (c *serverCodec) skipFrameV2() error {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		return err
	}
	total := uint64(binary.LittleEndian.Uint32(hdr[4:8])) + uint64(binary.LittleEndian.Uint32(hdr[8:12]))
	if total > MaxFrame {
		return &protoError{msg: fmt.Sprintf("frame of %d bytes exceeds limit %d", total, MaxFrame), fatal: true}
	}
	_, err := c.br.Discard(int(total))
	return err
}

// writeResponse answers in the connection's latched version and flushes,
// so the frame reaches the socket in whole buffered writes. Before any
// version is latched (a negotiation error on the first frame) the answer
// is v1: the one framing every client can read.
func (c *serverCodec) writeResponse(resp *Response) error {
	var err error
	if c.ver >= ProtoV2 {
		err = writeResponseV2(c.bw, c.sc, resp)
	} else {
		err = WriteFrame(c.bw, resp)
	}
	if err != nil {
		return err
	}
	return c.bw.Flush()
}
