package serve

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

// TestBatchByteIdenticalToOneShot is the batch tentpole guarantee: every
// object of a batch frame comes back byte-identical to what one-shot
// cmd/squash produces for the same input, duplicates are answered as
// within-batch shares, and the stats account for the frame.
func TestBatchByteIdenticalToOneShot(t *testing.T) {
	confA := core.DefaultConfig()
	confB := core.DefaultConfig()
	confB.Theta = 0.01
	objA, profA, wantA := buildWorkload(t, 3, confA)
	objB, profB, wantB := buildWorkload(t, 11, confB)
	_, _, wantAB := buildWorkload(t, 3, confB) // objA under confB

	s, addr, stop := startServer(t, Options{Workers: 4})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	// A twice (dedup), B once, and A again under confB (distinct config —
	// must NOT be shared with the confA items).
	items := []BatchItem{
		{Obj: objA, Profile: profA, Config: &confA},
		{Obj: objB, Profile: profB, Config: &confB},
		{Obj: objA, Profile: profA, Config: &confA},
		{Obj: objA, Profile: profA, Config: &confB},
	}
	resp, err := Do(conn, &Request{Op: OpBatch, Items: items})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !resp.OK {
		t.Fatalf("batch frame failed: %s", resp.Err)
	}
	if len(resp.Results) != len(items) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(items))
	}
	for i, r := range resp.Results {
		if !r.OK {
			t.Fatalf("item %d failed: %s", i, r.Err)
		}
	}
	if !bytes.Equal(resp.Results[0].Image, wantA) {
		t.Error("item 0 diverged from one-shot squash")
	}
	if !bytes.Equal(resp.Results[1].Image, wantB) {
		t.Error("item 1 diverged from one-shot squash")
	}
	if !bytes.Equal(resp.Results[2].Image, wantA) {
		t.Error("item 2 (duplicate) diverged from one-shot squash")
	}
	if !resp.Results[2].Shared {
		t.Error("duplicate item 2 not marked as within-batch share")
	}
	if resp.Results[0].Shared || resp.Results[1].Shared {
		t.Error("unique items wrongly marked shared")
	}
	if resp.Results[3].Shared {
		t.Error("same object under a different config must not share a result")
	}
	if !bytes.Equal(resp.Results[3].Image, wantAB) {
		t.Error("item 3 diverged from one-shot squash under its own config")
	}

	snap := s.StatsSnapshot()
	if snap.BatchFrames != 1 || snap.BatchObjects != 4 || snap.BatchShared != 1 {
		t.Errorf("batch stats = frames %d objects %d shared %d, want 1/4/1",
			snap.BatchFrames, snap.BatchObjects, snap.BatchShared)
	}

	// A repeat of the whole frame must be served from the warm result
	// cache, still byte-identical.
	resp2, err := Do(conn, &Request{Op: OpBatch, Items: items})
	if err != nil {
		t.Fatalf("repeat batch: %v", err)
	}
	for i, r := range resp2.Results {
		if !r.OK {
			t.Fatalf("repeat item %d failed: %s", i, r.Err)
		}
		if !r.Cached && !r.Shared {
			t.Errorf("repeat item %d not served warm (cached=%v shared=%v)", i, r.Cached, r.Shared)
		}
		if !bytes.Equal(r.Image, resp.Results[i].Image) {
			t.Errorf("repeat item %d bytes differ from first batch", i)
		}
	}
}

// TestBatchErrorIsolation: one bad object must not poison the batch — its
// siblings still squash, byte-identical, and only the bad item errors.
func TestBatchErrorIsolation(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 5, conf)

	s, addr, stop := startServer(t, Options{Workers: 2})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	items := []BatchItem{
		{Obj: obj, Profile: prof},
		{Obj: []byte("garbage"), Profile: []byte("garbage")},
		{Bench: "no-such-benchmark"},
		{}, // neither payload nor bench
		{Obj: obj, Profile: prof},
	}
	resp, err := Do(conn, &Request{Op: OpBatch, Items: items})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	if !resp.OK {
		t.Fatalf("frame-level failure for a batch with bad items: %s", resp.Err)
	}
	if len(resp.Results) != len(items) {
		t.Fatalf("results = %d, want %d", len(resp.Results), len(items))
	}
	for _, i := range []int{1, 2, 3} {
		if resp.Results[i].OK {
			t.Errorf("bad item %d reported OK", i)
		}
		if resp.Results[i].Err == "" {
			t.Errorf("bad item %d has no error message", i)
		}
	}
	for _, i := range []int{0, 4} {
		if !resp.Results[i].OK {
			t.Fatalf("good item %d poisoned by batch siblings: %s", i, resp.Results[i].Err)
		}
		if !bytes.Equal(resp.Results[i].Image, want) {
			t.Errorf("good item %d diverged from one-shot squash", i)
		}
	}
	if !resp.Results[4].Shared {
		t.Error("duplicate good item not shared despite failing siblings")
	}
	if snap := s.StatsSnapshot(); snap.Errors != 0 {
		// Item-level failures are not frame-level request errors.
		t.Errorf("request errors = %d after isolated item failures", snap.Errors)
	}
}

// TestBatchValidation: zero-object and oversized batches are frame-level
// errors that leave the connection usable.
func TestBatchValidation(t *testing.T) {
	_, addr, stop := startServer(t, Options{Workers: 1})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	resp, err := Do(conn, &Request{Op: OpBatch})
	if err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if resp.OK || resp.Err == "" {
		t.Fatalf("empty batch accepted: %+v", resp)
	}

	over := make([]BatchItem, MaxBatchItems+1)
	resp, err = Do(conn, &Request{Op: OpBatch, Items: over})
	if err != nil {
		t.Fatalf("oversized batch: %v", err)
	}
	if resp.OK || resp.Err == "" {
		t.Fatalf("oversized batch accepted: %+v", resp)
	}

	if resp, err := Do(conn, &Request{Op: OpPing}); err != nil || !resp.OK {
		t.Fatalf("connection unusable after rejected batches: resp=%+v err=%v", resp, err)
	}
}

// TestBatchDedupWithCacheDisabled: within-batch sharing must not depend on
// the global result cache being enabled.
func TestBatchDedupWithCacheDisabled(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 7, conf)

	_, addr, stop := startServer(t, Options{Workers: 2, CacheEntries: -1})
	defer stop()
	conn, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()

	items := []BatchItem{
		{Obj: obj, Profile: prof},
		{Obj: obj, Profile: prof},
		{Obj: obj, Profile: prof},
	}
	resp, err := Do(conn, &Request{Op: OpBatch, Items: items})
	if err != nil {
		t.Fatalf("batch: %v", err)
	}
	shared := 0
	for i, r := range resp.Results {
		if !r.OK {
			t.Fatalf("item %d failed: %s", i, r.Err)
		}
		if !bytes.Equal(r.Image, want) {
			t.Errorf("item %d diverged from one-shot squash", i)
		}
		if r.Shared {
			shared++
		}
	}
	if shared != 2 {
		t.Errorf("shared = %d of 3 identical items, want 2", shared)
	}
}
