package serve

// Per-request scratch buffers. A warm squashd request serializes the output
// image (and, for bench requests, the prepared object and profile) through
// bytes.Buffers; growing those from zero on every request dominated the
// daemon's steady-state allocation profile. The buffers recycle through a
// sync.Pool; anything that outlives the request — the cached image, the
// response bytes — is copied out at exact size, so recycling can never
// mutate a byte a cache entry or in-flight response still holds.

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// poolingOff disables the request-scratch pool when set. This is the serve
// layer's own switch (cmd/squashd's -nopool flag flips it together with
// core.SetPooling); responses are byte-identical either way.
var poolingOff atomic.Bool

// SetPooling enables (the default) or disables the request-scratch pool.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports whether the request-scratch pool is active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// maxScratchBytes bounds the per-buffer capacity the pool retains; a
// pathologically large request's buffers are dropped for the GC.
const maxScratchBytes = 8 << 20

// reqScratch is one request's serialization working set: the squashed image
// (squash path) and the prepared object and profile (bench path).
type reqScratch struct {
	img, obj, prof bytes.Buffer
}

var reqScratchPool = sync.Pool{New: func() any { return new(reqScratch) }}

func getReqScratch() *reqScratch {
	if poolingOff.Load() {
		return new(reqScratch)
	}
	return reqScratchPool.Get().(*reqScratch)
}

func putReqScratch(sc *reqScratch) {
	if poolingOff.Load() {
		return
	}
	if sc.img.Cap() > maxScratchBytes || sc.obj.Cap() > maxScratchBytes || sc.prof.Cap() > maxScratchBytes {
		return
	}
	reqScratchPool.Put(sc)
}

// serializeInto streams src into the recycled buffer and returns an
// exact-size copy that the caller may retain indefinitely. The single copy
// is the one steady-state allocation of a warm cache-miss response.
func serializeInto(buf *bytes.Buffer, src io.WriterTo) ([]byte, error) {
	buf.Reset()
	if _, err := src.WriteTo(buf); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// frameBuf is one frame's read buffer. A v2 request's payload sections are
// zero-copy views into data, so the buffer must stay untouched until the
// request's worker is done with them — release is idempotent and tied to
// request completion, not response delivery, because a timed-out request's
// worker keeps reading the payload after the error response is sent.
type frameBuf struct {
	data     []byte
	pooled   bool
	released atomic.Bool
}

var frameBufPool = sync.Pool{New: func() any { return new(frameBuf) }}

// getFrameBuf returns a buffer with at least n readable bytes. Frames
// larger than the pool retention cap get an exact-size one-off allocation —
// the "streaming" path for oversized payloads, which never pins pool
// memory — as does everything when pooling is off.
func getFrameBuf(n int) *frameBuf {
	if poolingOff.Load() || n > maxScratchBytes {
		return &frameBuf{data: make([]byte, n)}
	}
	fb := frameBufPool.Get().(*frameBuf)
	fb.pooled = true
	fb.released.Store(false)
	if cap(fb.data) < n {
		fb.data = make([]byte, n)
	} else {
		fb.data = fb.data[:cap(fb.data)]
	}
	return fb
}

// release recycles the buffer. Safe to call more than once; only the first
// call returns it to the pool.
func (fb *frameBuf) release() {
	if fb == nil || !fb.pooled || fb.released.Swap(true) {
		return
	}
	if poolingOff.Load() || cap(fb.data) > maxScratchBytes {
		return
	}
	frameBufPool.Put(fb)
}

// frameScratch is one connection's (or client's) v2 encode working set: the
// envelope staging buffer with its JSON encoder, reusable envelope structs,
// and the section/item slices the writers append into. Everything here is
// fully overwritten before each use on the encode side; decode always goes
// through fresh stack envelopes, so stale fields can never leak between
// frames.
type frameScratch struct {
	env     bytes.Buffer
	enc     *json.Encoder
	decRd   bytes.Reader
	dec     *json.Decoder
	reqEnv  reqEnv
	respEnv respEnv
	secs    [][]byte
	items   []itemEnv
	results []resultEnv
}

func newFrameScratch() *frameScratch {
	sc := new(frameScratch)
	sc.enc = json.NewEncoder(&sc.env)
	sc.dec = json.NewDecoder(&sc.decRd)
	return sc
}

var frameScratchPool = sync.Pool{New: func() any { return newFrameScratch() }}

func getFrameScratch() *frameScratch {
	if poolingOff.Load() {
		return newFrameScratch()
	}
	return frameScratchPool.Get().(*frameScratch)
}

func putFrameScratch(sc *frameScratch) {
	if sc == nil || poolingOff.Load() || sc.env.Cap() > maxScratchBytes {
		return
	}
	sc.scrub()
	frameScratchPool.Put(sc)
}

// recycleReq hands a request writer's slices back to the scratch, scrubbed
// so the pool can't pin payload bytes or Config pointers.
func (sc *frameScratch) recycleReq(e *reqEnv, t *secTable) {
	sc.secs = scrubSecs(t.secs)
	if e.Items != nil {
		sc.items = scrubItemEnvs(e.Items)
	}
	*e = reqEnv{}
}

// recycleResp is recycleReq's response-side counterpart.
func (sc *frameScratch) recycleResp(e *respEnv, t *secTable) {
	sc.secs = scrubSecs(t.secs)
	if e.Results != nil {
		sc.results = scrubResultEnvs(e.Results)
	}
	*e = respEnv{}
}

// scrub drops every pointer the scratch might still hold (a codec that was
// torn down mid-write skips the recycle calls).
func (sc *frameScratch) scrub() {
	sc.secs = scrubSecs(sc.secs)
	sc.items = scrubItemEnvs(sc.items)
	sc.results = scrubResultEnvs(sc.results)
	sc.reqEnv = reqEnv{}
	sc.respEnv = respEnv{}
	sc.decRd.Reset(nil) // drop the reference into the last frame buffer
}

func scrubSecs(s [][]byte) [][]byte {
	for i := range s {
		s[i] = nil
	}
	return s[:0]
}

func scrubItemEnvs(s []itemEnv) []itemEnv {
	for i := range s {
		s[i] = itemEnv{}
	}
	return s[:0]
}

func scrubResultEnvs(s []resultEnv) []resultEnv {
	for i := range s {
		s[i] = resultEnv{}
	}
	return s[:0]
}
