package serve

// Per-request scratch buffers. A warm squashd request serializes the output
// image (and, for bench requests, the prepared object and profile) through
// bytes.Buffers; growing those from zero on every request dominated the
// daemon's steady-state allocation profile. The buffers recycle through a
// sync.Pool; anything that outlives the request — the cached image, the
// response bytes — is copied out at exact size, so recycling can never
// mutate a byte a cache entry or in-flight response still holds.

import (
	"bytes"
	"io"
	"sync"
	"sync/atomic"
)

// poolingOff disables the request-scratch pool when set. This is the serve
// layer's own switch (cmd/squashd's -nopool flag flips it together with
// core.SetPooling); responses are byte-identical either way.
var poolingOff atomic.Bool

// SetPooling enables (the default) or disables the request-scratch pool.
func SetPooling(on bool) { poolingOff.Store(!on) }

// PoolingEnabled reports whether the request-scratch pool is active.
func PoolingEnabled() bool { return !poolingOff.Load() }

// maxScratchBytes bounds the per-buffer capacity the pool retains; a
// pathologically large request's buffers are dropped for the GC.
const maxScratchBytes = 8 << 20

// reqScratch is one request's serialization working set: the squashed image
// (squash path) and the prepared object and profile (bench path).
type reqScratch struct {
	img, obj, prof bytes.Buffer
}

var reqScratchPool = sync.Pool{New: func() any { return new(reqScratch) }}

func getReqScratch() *reqScratch {
	if poolingOff.Load() {
		return new(reqScratch)
	}
	return reqScratchPool.Get().(*reqScratch)
}

func putReqScratch(sc *reqScratch) {
	if poolingOff.Load() {
		return
	}
	if sc.img.Cap() > maxScratchBytes || sc.obj.Cap() > maxScratchBytes || sc.prof.Cap() > maxScratchBytes {
		return
	}
	reqScratchPool.Put(sc)
}

// serializeInto streams src into the recycled buffer and returns an
// exact-size copy that the caller may retain indefinitely. The single copy
// is the one steady-state allocation of a warm cache-miss response.
func serializeInto(buf *bytes.Buffer, src io.WriterTo) ([]byte, error) {
	buf.Reset()
	if _, err := src.WriteTo(buf); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}
