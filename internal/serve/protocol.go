// Package serve implements the squash daemon: a long-lived process that
// accepts squash requests over a Unix or TCP socket and answers each with
// the squashed image plus its statistics — the paper's compressor as a
// service instead of a one-shot CLI. The point of staying resident is warm
// state: trained per-config squash results are cached under a content hash
// (object + profile + config), and named-benchmark requests reuse the
// experiments preparation cache, so repeated requests skip the dominant
// fixed costs. The daemon is byte-compatible with cmd/squash: for the same
// object, profile, and configuration, the returned image is identical to
// the one-shot tool's output file, at any request concurrency.
//
// Wire protocol: length-prefixed JSON frames. Each frame is a 4-byte
// little-endian byte count followed by one JSON document (a Request from
// client to server, a Response back). A connection carries any number of
// request/response pairs in sequence; concurrency comes from opening
// multiple connections.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"

	"repro/internal/core"
)

// MaxFrame bounds one frame's JSON body. Squashed mediabench images are a
// few hundred KB; 64 MB leaves room for far larger programs while keeping a
// garbage length prefix from allocating unbounded memory.
const MaxFrame = 64 << 20

// Request operations.
const (
	// OpSquash compresses an inline object with an inline profile.
	OpSquash = "squash"
	// OpBench prepares a named mediabench benchmark through the experiments
	// prep cache, then squashes it.
	OpBench = "bench"
	// OpBatch carries many objects in one frame. Each item is squashed
	// exactly as a one-shot OpSquash/OpBench request would be — responses
	// are byte-identical per object — but fixed costs amortize across the
	// frame: duplicate items are squashed once (codebooks trained once),
	// named-benchmark items share preparation, and the frame codec runs
	// once per batch instead of once per object.
	OpBatch = "batch"
	// OpStats reports the server's counters and latency percentiles.
	OpStats = "stats"
	// OpPing checks liveness.
	OpPing = "ping"
)

// MaxBatchItems bounds one OpBatch frame's object count. The ceiling keeps
// a single frame's response under MaxFrame for realistic image sizes and
// bounds the per-frame fan-out inside the server.
const MaxBatchItems = 256

// Request is one client frame.
type Request struct {
	Op string `json:"op"`

	// OpSquash: the relocatable object (objfile "EMO1" bytes), its profile
	// (profile "EMP1" bytes), and the squash configuration (nil means
	// core.DefaultConfig()).
	Obj     []byte       `json:"obj,omitempty"`
	Profile []byte       `json:"profile,omitempty"`
	Config  *core.Config `json:"config,omitempty"`

	// OpBench: a mediabench benchmark name and input scale (0 means 1.0).
	// Config applies as for OpSquash.
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`

	// OpBatch: the objects of this frame, at most MaxBatchItems.
	Items []BatchItem `json:"items,omitempty"`
}

// BatchItem is one object inside an OpBatch frame. Either Bench names a
// mediabench benchmark prepared server-side (Scale 0 means 1.0), or Obj and
// Profile carry the payload inline, exactly as the corresponding one-shot
// op would. A nil Config means core.DefaultConfig(). When both Bench and
// Obj are set, Bench wins.
type BatchItem struct {
	Obj     []byte       `json:"obj,omitempty"`
	Profile []byte       `json:"profile,omitempty"`
	Bench   string       `json:"bench,omitempty"`
	Scale   float64      `json:"scale,omitempty"`
	Config  *core.Config `json:"config,omitempty"`
}

// BatchResult is the per-object outcome of an OpBatch frame, in item
// order. Errors are isolated here: one malformed object fails only its own
// result, never its siblings or the frame.
type BatchResult struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Image []byte          `json:"image,omitempty"`
	Stats *core.Stats     `json:"stats,omitempty"`
	Foot  *core.Footprint `json:"foot,omitempty"`

	// Cached and PrepCached mirror the one-shot Response flags. Shared
	// marks a within-batch duplicate: an earlier identical item trained
	// the codebooks and this result reuses its bytes.
	Cached     bool `json:"cached,omitempty"`
	PrepCached bool `json:"prep_cached,omitempty"`
	Shared     bool `json:"shared,omitempty"`
}

// Response is one server frame.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	// Squash results: the linked executable image ("EMX1" bytes, identical
	// to cmd/squash's output file) and the run's statistics.
	Image []byte          `json:"image,omitempty"`
	Stats *core.Stats     `json:"stats,omitempty"`
	Foot  *core.Footprint `json:"foot,omitempty"`
	// Cached reports a warm squash-result cache hit; PrepCached reports a
	// warm preparation (OpBench only).
	Cached     bool `json:"cached,omitempty"`
	PrepCached bool `json:"prep_cached,omitempty"`

	// Results carries the OpBatch outcomes, one per request item in item
	// order. The frame-level OK reports whether the batch executed; each
	// item's success is its own result's OK.
	Results []BatchResult `json:"results,omitempty"`

	// Server carries the OpStats snapshot.
	Server *Snapshot `json:"server,omitempty"`
}

// WriteFrame marshals v and writes one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("serve: marshal frame: %w", err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", len(body), MaxFrame)
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// ReadFrame reads one length-prefixed frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: unmarshal frame: %w", err)
	}
	return nil
}

// Dial connects to a daemon address: "unix:/path/to.sock", "tcp:host:port",
// or a bare "host:port" (TCP).
func Dial(addr string) (net.Conn, error) {
	network, address := SplitAddr(addr)
	return net.Dial(network, address)
}

// SplitAddr resolves an address spec into (network, address) for net.Dial /
// net.Listen.
func SplitAddr(addr string) (string, string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// Do sends one request and reads its response over conn.
func Do(conn net.Conn, req *Request) (*Response, error) {
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp := &Response{}
	if err := ReadFrame(conn, resp); err != nil {
		return nil, err
	}
	return resp, nil
}
