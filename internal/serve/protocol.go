// Package serve implements the squash daemon: a long-lived process that
// accepts squash requests over a Unix or TCP socket and answers each with
// the squashed image plus its statistics — the paper's compressor as a
// service instead of a one-shot CLI. The point of staying resident is warm
// state: trained per-config squash results are cached under a content hash
// (object + profile + config), and named-benchmark requests reuse the
// experiments preparation cache, so repeated requests skip the dominant
// fixed costs. The daemon is byte-compatible with cmd/squash: for the same
// object, profile, and configuration, the returned image is identical to
// the one-shot tool's output file, at any request concurrency.
//
// Wire protocol: two framings, negotiated per connection by the first
// client frame. Protocol v1 is length-prefixed JSON — a 4-byte
// little-endian byte count followed by one JSON document (a Request from
// client to server, a Response back). Protocol v2 (see frame.go) keeps a
// JSON envelope for the small fields but moves every []byte payload into a
// raw binary trailer referenced by (offset, length) sections, eliminating
// base64 from the hot path. A connection carries any number of
// request/response pairs in sequence, all in the version its first frame
// latched; concurrency comes from opening multiple connections.
package serve

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"strings"

	"repro/internal/core"
	"repro/internal/profile"
)

// MaxFrame bounds one frame's JSON body. Squashed mediabench images are a
// few hundred KB; 64 MB leaves room for far larger programs while keeping a
// garbage length prefix from allocating unbounded memory.
const MaxFrame = 64 << 20

// Request operations.
const (
	// OpSquash compresses an inline object with an inline profile.
	OpSquash = "squash"
	// OpBench prepares a named mediabench benchmark through the experiments
	// prep cache, then squashes it.
	OpBench = "bench"
	// OpBatch carries many objects in one frame. Each item is squashed
	// exactly as a one-shot OpSquash/OpBench request would be — responses
	// are byte-identical per object — but fixed costs amortize across the
	// frame: duplicate items are squashed once (codebooks trained once),
	// named-benchmark items share preparation, and the frame codec runs
	// once per batch instead of once per object.
	OpBatch = "batch"
	// OpStats reports the server's counters and latency percentiles.
	OpStats = "stats"
	// OpPing checks liveness.
	OpPing = "ping"

	// Cluster admin operations, answered only by the router tier
	// (cmd/squashrouter); a plain squashd rejects them as unknown ops.
	// OpCluster reports every backend's state plus the merged snapshot.
	OpCluster = "cluster"
	// OpDrain marks the backend named by Request.Backend as draining: it
	// receives no new requests but keeps its health checks. OpUndrain
	// reverses it.
	OpDrain   = "drain"
	OpUndrain = "undrain"

	// Profile-plane operations, answered only by the profile collector
	// (cmd/squashprofd); a plain squashd rejects them as unknown ops.
	// OpProfileRegister enrolls a squashed image with the collector: the
	// image bytes (keyed by their sha256), the object and baseline profile
	// it was squashed from, the squash config, and a representative input
	// for baseline and verification runs.
	OpProfileRegister = "profile-register"
	// OpProfilePush ships one run's execution profile from an em-run fleet
	// member: the image key, the EMP1 counts, run metadata, and (capped)
	// the input bytes that drove the run.
	OpProfilePush = "profile-push"
	// OpProfileStatus reports the collector's per-image aggregation state
	// (drift scores, sample counts, staleness) as a FeedSnapshot.
	OpProfileStatus = "profile-status"
	// OpProfileResquash forces a re-squash of the image named by ImageKey
	// with the live merged profile, regardless of the drift threshold.
	OpProfileResquash = "profile-resquash"
)

// MaxBatchItems bounds one OpBatch frame's object count. The ceiling keeps
// a single frame's response under MaxFrame for realistic image sizes and
// bounds the per-frame fan-out inside the server.
const MaxBatchItems = 256

// Request is one client frame.
type Request struct {
	Op string `json:"op"`

	// OpSquash: the relocatable object (objfile "EMO1" bytes), its profile
	// (profile "EMP1" bytes), and the squash configuration (nil means
	// core.DefaultConfig()).
	Obj     []byte       `json:"obj,omitempty"`
	Profile []byte       `json:"profile,omitempty"`
	Config  *core.Config `json:"config,omitempty"`

	// OpBench: a mediabench benchmark name and input scale (0 means 1.0).
	// Config applies as for OpSquash.
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`

	// NoImage asks the server to omit image bytes from the response (and
	// from every batch result). Stats, footprints, and cache flags are
	// unaffected, and the squash still runs and warms the result cache —
	// only the wire bytes are skipped. Load tests and re-squash probes
	// that never look at the image use this to take payload transfer out
	// of the measurement.
	NoImage bool `json:"no_image,omitempty"`

	// OpBatch: the objects of this frame, at most MaxBatchItems.
	Items []BatchItem `json:"items,omitempty"`

	// Backend names the target backend address for the router admin ops
	// OpDrain and OpUndrain.
	Backend string `json:"backend,omitempty"`

	// Profile-plane fields (cmd/squashprofd). Image carries the squashed
	// executable bytes on OpProfileRegister; Input carries run input bytes
	// on register (verification input) and push (the live workload). Both
	// travel as v2 payload sections. ImageKey names the registered image
	// (sha256 hex of its bytes) on push/status/resquash; Run carries one
	// run's metadata on push; Force on OpProfileResquash re-squashes even
	// below the drift threshold.
	Image    []byte   `json:"image,omitempty"`
	Input    []byte   `json:"input,omitempty"`
	ImageKey string   `json:"image_key,omitempty"`
	Run      *RunMeta `json:"run,omitempty"`
	Force    bool     `json:"force,omitempty"`

	// fb is the pooled v2 frame buffer this request's payload slices alias
	// (nil for v1 requests, which copy during JSON decode). The dispatch
	// path releases it once the request can no longer be read.
	fb *frameBuf
}

// RunMeta is one fleet run's metadata, shipped alongside its profile on
// OpProfilePush. The counter fields mirror core.RuntimeStats.
type RunMeta struct {
	// Instructions and Cycles are the run's dynamic totals.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles,omitempty"`
	ExitStatus   int32  `json:"exit_status,omitempty"`
	// Decompressions, Evictions, and BitsRead are the decompression
	// runtime's counters (zero for runs of unsquashed binaries).
	Decompressions uint64 `json:"decompressions,omitempty"`
	Evictions      uint64 `json:"evictions,omitempty"`
	BitsRead       uint64 `json:"bits_read,omitempty"`
	// Source labels the pushing fleet member (free-form; host, pod, …).
	Source string `json:"source,omitempty"`
}

// releasePayload recycles the frame buffer backing Obj, Profile, and the
// batch item payloads. Call only when no reference to those slices can
// still be read — i.e. after process() returns, not when a timed-out
// response is sent. Idempotent; a no-op for v1 requests.
func (r *Request) releasePayload() {
	r.fb.release()
}

// BatchItem is one object inside an OpBatch frame. Either Bench names a
// mediabench benchmark prepared server-side (Scale 0 means 1.0), or Obj and
// Profile carry the payload inline, exactly as the corresponding one-shot
// op would. A nil Config means core.DefaultConfig(). When both Bench and
// Obj are set, Bench wins.
type BatchItem struct {
	Obj     []byte       `json:"obj,omitempty"`
	Profile []byte       `json:"profile,omitempty"`
	Bench   string       `json:"bench,omitempty"`
	Scale   float64      `json:"scale,omitempty"`
	Config  *core.Config `json:"config,omitempty"`
}

// BatchResult is the per-object outcome of an OpBatch frame, in item
// order. Errors are isolated here: one malformed object fails only its own
// result, never its siblings or the frame.
type BatchResult struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	Image []byte          `json:"image,omitempty"`
	Stats *core.Stats     `json:"stats,omitempty"`
	Foot  *core.Footprint `json:"foot,omitempty"`

	// Cached and PrepCached mirror the one-shot Response flags. Shared
	// marks a within-batch duplicate: an earlier identical item trained
	// the codebooks and this result reuses its bytes.
	Cached     bool `json:"cached,omitempty"`
	PrepCached bool `json:"prep_cached,omitempty"`
	Shared     bool `json:"shared,omitempty"`
}

// Response is one server frame.
type Response struct {
	OK  bool   `json:"ok"`
	Err string `json:"err,omitempty"`

	// Squash results: the linked executable image ("EMX1" bytes, identical
	// to cmd/squash's output file) and the run's statistics.
	Image []byte          `json:"image,omitempty"`
	Stats *core.Stats     `json:"stats,omitempty"`
	Foot  *core.Footprint `json:"foot,omitempty"`
	// Cached reports a warm squash-result cache hit; PrepCached reports a
	// warm preparation (OpBench only).
	Cached     bool `json:"cached,omitempty"`
	PrepCached bool `json:"prep_cached,omitempty"`

	// Results carries the OpBatch outcomes, one per request item in item
	// order. The frame-level OK reports whether the batch executed; each
	// item's success is its own result's OK.
	Results []BatchResult `json:"results,omitempty"`

	// Server carries the OpStats snapshot.
	Server *Snapshot `json:"server,omitempty"`

	// Cluster carries the OpCluster answer from a router.
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`

	// Feed carries the profile collector's answer to OpProfileStatus (all
	// images) and OpProfilePush/OpProfileRegister (the affected image).
	Feed *FeedSnapshot `json:"feed,omitempty"`

	// Resquash carries the OpProfileResquash outcome; the re-squashed
	// image's bytes travel in Image.
	Resquash *ResquashReport `json:"resquash,omitempty"`

	// ImageKey echoes the registered image's content key on
	// OpProfileRegister.
	ImageKey string `json:"image_key,omitempty"`

	// ProtoMax is set on version-negotiation error responses: the highest
	// protocol version the server speaks. A client that opened with a
	// newer version downgrades and resends.
	ProtoMax int `json:"proto_max,omitempty"`
}

// FeedImageStatus is one registered image's aggregation state in the
// profile collector.
type FeedImageStatus struct {
	// Key is the registration key (sha256 hex of the registered image
	// bytes). CurrentKey is the key of the image currently considered
	// live — it diverges from Key after a re-squash.
	Key        string `json:"key"`
	CurrentKey string `json:"current_key,omitempty"`
	Bench      string `json:"bench,omitempty"`

	// Samples counts pushes aggregated into the live window since
	// registration (re-squashes reset the window, not this counter).
	Samples uint64 `json:"samples"`
	// BaseWeight and LiveWeight are the dynamic instruction totals of the
	// baseline profile and the decayed live aggregate.
	BaseWeight uint64 `json:"base_weight"`
	LiveWeight uint64 `json:"live_weight"`
	// StalenessSec is the age of the newest aggregated push; negative
	// means no push has arrived yet.
	StalenessSec float64 `json:"staleness_sec"`

	// Theta is the cold-code threshold the image was squashed with; Drift
	// measures the live aggregate against the baseline over that
	// partition; Threshold is the score that triggers a re-squash.
	Theta     float64            `json:"theta"`
	Drift     profile.DriftStats `json:"drift"`
	Threshold float64            `json:"threshold"`

	// Resquashes counts completed re-squashes; LastResquash is the most
	// recent one's report (nil before the first).
	Resquashes   uint64          `json:"resquashes,omitempty"`
	LastResquash *ResquashReport `json:"last_resquash,omitempty"`
}

// FeedSnapshot is the profile collector's OpProfileStatus answer.
type FeedSnapshot struct {
	Images []FeedImageStatus `json:"images"`
}

// ResquashReport describes one completed re-squash: the adaptive loop's
// before/after evidence.
type ResquashReport struct {
	// NewKey is the sha256 hex of the re-squashed image; ImagePath is
	// where the collector persisted it.
	NewKey    string `json:"new_key"`
	ImagePath string `json:"image_path,omitempty"`
	// DriftScore is the drift that triggered (or was observed at) the
	// re-squash; Forced marks an operator-forced run below the threshold.
	DriftScore float64 `json:"drift_score"`
	Forced     bool    `json:"forced,omitempty"`
	// OutputOK reports that old and new image produced byte-identical
	// output on the verification input.
	OutputOK bool `json:"output_ok"`
	// MissBefore/MissAfter are buffer-miss rates (decompressions per
	// dynamic instruction) of old vs new image on the drifted input;
	// EvictBefore/EvictAfter the corresponding eviction counts.
	MissBefore  float64 `json:"miss_before"`
	MissAfter   float64 `json:"miss_after"`
	EvictBefore uint64  `json:"evict_before"`
	EvictAfter  uint64  `json:"evict_after"`
	// UnixSec is the completion time.
	UnixSec int64 `json:"unix_sec,omitempty"`
}

// BackendStatus is one backend's view in a ClusterSnapshot.
type BackendStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"` // "up", "down", or "draining"
	// ConsecFails is the current consecutive-failure streak (health
	// probes and request transport errors both count); it resets on any
	// success.
	ConsecFails int   `json:"consec_fails,omitempty"`
	InFlight    int64 `json:"in_flight"`
	// Requests and Errors count what the router sent this backend.
	Requests uint64 `json:"requests"`
	Errors   uint64 `json:"errors,omitempty"`
	// SinceCheckSec is the age of the last successful health probe;
	// negative means no probe has succeeded yet.
	SinceCheckSec float64 `json:"since_check_sec"`
	// Stats is the backend's own snapshot from its last successful health
	// probe (nil before the first one).
	Stats *Snapshot `json:"stats,omitempty"`
}

// ClusterSnapshot is the router's OpCluster answer: per-backend status
// plus the merged per-backend snapshots.
type ClusterSnapshot struct {
	Policy   string          `json:"policy"`
	Backends []BackendStatus `json:"backends"`
	// Merged aggregates the per-backend stats (MergeSnapshots of the
	// latest probe snapshots).
	Merged *Snapshot `json:"merged,omitempty"`
}

// WriteFrame marshals v and writes one length-prefixed v1 frame. Header
// and body are staged in a pooled buffer and issued as a single Write, so
// a TCP frame never splits into a 4-byte packet plus body under Nagle.
func WriteFrame(w io.Writer, v any) error {
	sc := getFrameScratch()
	defer putFrameScratch(sc)
	sc.env.Reset()
	sc.env.Write([]byte{0, 0, 0, 0}) // length patched below
	if err := sc.enc.Encode(v); err != nil {
		return fmt.Errorf("serve: marshal frame: %w", err)
	}
	frame := sc.env.Bytes()
	if n := len(frame); n > 0 && frame[n-1] == '\n' {
		frame = frame[:n-1] // Encoder's newline is not part of the frame
	}
	body := len(frame) - 4
	if body > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", body, MaxFrame)
	}
	binary.LittleEndian.PutUint32(frame[:4], uint32(body))
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed v1 frame into v. The body passes
// through a pooled buffer; JSON decode copies every field, so nothing in v
// aliases it afterwards.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("serve: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	fb := getFrameBuf(int(n))
	defer fb.release()
	body := fb.data[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("serve: unmarshal frame: %w", err)
	}
	return nil
}

// Dial connects to a daemon address: "unix:/path/to.sock", "tcp:host:port",
// or a bare "host:port" (TCP). TCP connections get TCP_NODELAY: every
// frame is written whole, so there is never a small packet worth delaying.
func Dial(addr string) (net.Conn, error) {
	network, address := SplitAddr(addr)
	conn, err := net.Dial(network, address)
	if err != nil {
		return nil, err
	}
	setNoDelay(conn)
	return conn, nil
}

// setNoDelay disables Nagle on TCP connections (no-op otherwise).
func setNoDelay(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
}

// SplitAddr resolves an address spec into (network, address) for net.Dial /
// net.Listen.
func SplitAddr(addr string) (string, string) {
	switch {
	case strings.HasPrefix(addr, "unix:"):
		return "unix", strings.TrimPrefix(addr, "unix:")
	case strings.HasPrefix(addr, "tcp:"):
		return "tcp", strings.TrimPrefix(addr, "tcp:")
	default:
		return "tcp", addr
	}
}

// Do sends one request and reads its response over conn.
func Do(conn net.Conn, req *Request) (*Response, error) {
	if err := WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp := &Response{}
	if err := ReadFrame(conn, resp); err != nil {
		return nil, err
	}
	return resp, nil
}
