package serve

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// RecordEntry is one line of the JSONL request stream `squashd -record`
// appends: what arrived (a content hash for inline objects, the benchmark
// key for named requests) and when (milliseconds after the first recorded
// request), enough for cmd/squashload to replay the stream against a live
// daemon at a multiple of its recorded rate. Payload bytes are deliberately
// not recorded — a production stream must stay cheap to capture — so inline
// entries replay only through a fallback payload the replayer supplies.
type RecordEntry struct {
	TMs     float64      `json:"t_ms"`
	Op      string       `json:"op"`
	Key     string       `json:"key,omitempty"`   // content hash of an inline object+profile
	Bytes   int          `json:"bytes,omitempty"` // inline payload size
	Bench   string       `json:"bench,omitempty"`
	Scale   float64      `json:"scale,omitempty"`
	NoImage bool         `json:"no_image,omitempty"` // stats-only request
	Config  *core.Config `json:"config,omitempty"`
	Items   []RecordItem `json:"items,omitempty"` // batch frames
}

// RecordItem is one object of a recorded batch frame.
type RecordItem struct {
	Key   string  `json:"key,omitempty"`
	Bench string  `json:"bench,omitempty"`
	Scale float64 `json:"scale,omitempty"`
}

// StreamRecorder appends request arrivals to a writer as JSONL. The clock
// anchors at the first recorded request, so a replay starts immediately.
// Safe for concurrent use; safe to call on a nil receiver (no-op).
type StreamRecorder struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
}

// NewStreamRecorder records arrivals to w (typically an append-mode file).
func NewStreamRecorder(w io.Writer) *StreamRecorder { return &StreamRecorder{w: w} }

// Record appends one request arrival. Only load-bearing operations are
// recorded: stats and ping frames are operator traffic, not workload.
func (r *StreamRecorder) Record(req *Request) {
	if r == nil {
		return
	}
	switch req.Op {
	case OpSquash, OpBench, OpBatch:
	default:
		return
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.start.IsZero() {
		r.start = now
	}
	e := entryForRequest(req, now.Sub(r.start))
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	r.w.Write(append(b, '\n'))
}

func entryForRequest(req *Request, off time.Duration) *RecordEntry {
	e := &RecordEntry{
		TMs:     float64(off) / float64(time.Millisecond),
		Op:      req.Op,
		NoImage: req.NoImage,
		Config:  req.Config,
	}
	switch req.Op {
	case OpSquash:
		e.Key = contentKey(req.Obj, req.Profile, req.Config)
		e.Bytes = len(req.Obj) + len(req.Profile)
	case OpBench:
		e.Bench, e.Scale = req.Bench, req.Scale
	case OpBatch:
		e.Items = make([]RecordItem, 0, len(req.Items))
		for i := range req.Items {
			it := &req.Items[i]
			ri := RecordItem{Bench: it.Bench, Scale: it.Scale}
			if it.Bench == "" {
				ri.Key = contentKey(it.Obj, it.Profile, it.Config)
			}
			e.Items = append(e.Items, ri)
		}
	}
	return e
}

// contentKey is the short hex content hash record entries carry: enough to
// see request-mix shape (distinct objects, repeats) without the payload.
func contentKey(obj, prof []byte, config *core.Config) string {
	conf := core.DefaultConfig()
	if config != nil {
		conf = *config
	}
	k := resultKey(obj, prof, conf)
	return hex.EncodeToString(k[:8])
}

// ReadStream parses a recorded JSONL stream. Blank lines are skipped; a
// malformed line is an error (a truncated stream should fail loudly, not
// silently replay a prefix).
func ReadStream(r io.Reader) ([]RecordEntry, error) {
	var entries []RecordEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var e RecordEntry
		if err := json.Unmarshal([]byte(text), &e); err != nil {
			return nil, fmt.Errorf("serve: record stream line %d: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return entries, nil
}
