package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension on an instrument. Instruments with
// the same name but different label sets are distinct leaves.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Registry holds named instruments. Instrument lookup takes a mutex;
// the returned Counter/Gauge pointers update lock-free, so callers
// should fetch instruments once and hold on to them in hot paths.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

func instrumentKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	for _, l := range ls {
		b.WriteByte(0xff)
		b.WriteString(l.Key)
		b.WriteByte(0xfe)
		b.WriteString(l.Value)
	}
	return b.String()
}

func sortedLabels(labels []Label) []Label {
	if len(labels) == 0 {
		return nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	return ls
}

// Counter returns the counter with the given name and labels, creating
// it on first use. Nil registries return a nil (no-op) counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[key]
	if !ok {
		c = &Counter{name: name, labels: sortedLabels(labels)}
		r.counters[key] = c
	}
	return c
}

// Gauge returns the gauge with the given name and labels, creating it
// on first use. Nil registries return a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[key]
	if !ok {
		g = &Gauge{name: name, labels: sortedLabels(labels)}
		r.gauges[key] = g
	}
	return g
}

// FloatGauge returns the float gauge with the given name and labels,
// creating it on first use. Nil registries return a nil (no-op) gauge.
// Float gauges carry levels that are naturally fractional — drift scores,
// mass fractions, rates — which the integer Gauge could only hold scaled.
func (r *Registry) FloatGauge(name string, labels ...Label) *FloatGauge {
	if r == nil {
		return nil
	}
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.floatGauges[key]
	if !ok {
		g = &FloatGauge{name: name, labels: sortedLabels(labels)}
		r.floatGauges[key] = g
	}
	return g
}

// Histogram returns the histogram with the given name and labels,
// creating it (with the default window) on first use. Nil registries
// return a nil (no-op) histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	key := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[key]
	if !ok {
		h = newHistogram(name, sortedLabels(labels), DefaultHistogramWindow)
		r.histograms[key] = h
	}
	return h
}

// Counter is a monotonically increasing uint64.
type Counter struct {
	name   string
	labels []Label
	v      atomic.Uint64
}

// Add increments the counter by n. Safe on nil.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Safe on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count; 0 on nil.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 level (queue depth, live entries, ...).
type Gauge struct {
	name   string
	labels []Label
	v      atomic.Int64
}

// Set replaces the gauge value. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative to decrease). Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value reads the current level; 0 on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// FloatGauge is a settable float64 level (drift score, hit rate, ...).
// The value is stored as its IEEE-754 bits in an atomic word.
type FloatGauge struct {
	name   string
	labels []Label
	v      atomic.Uint64
}

// Set replaces the gauge value. Safe on nil.
func (g *FloatGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v.Store(math.Float64bits(v))
}

// Value reads the current level; 0 on nil.
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.v.Load())
}

// Snapshot is the JSON export shape of a registry.
type Snapshot struct {
	Counters    []CounterSnapshot    `json:"counters"`
	Gauges      []GaugeSnapshot      `json:"gauges"`
	FloatGauges []FloatGaugeSnapshot `json:"float_gauges,omitempty"`
	Histograms  []HistogramSnapshot  `json:"histograms"`
}

// CounterSnapshot is one exported counter leaf.
type CounterSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  uint64            `json:"value"`
}

// GaugeSnapshot is one exported gauge leaf.
type GaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// FloatGaugeSnapshot is one exported float-gauge leaf.
type FloatGaugeSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// HistogramSnapshot is one exported histogram leaf. Quantiles are
// nearest-rank over the sample window; Count and Sum are cumulative.
type HistogramSnapshot struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  uint64            `json:"count"`
	Sum    float64           `json:"sum"`
	P50    float64           `json:"p50"`
	P90    float64           `json:"p90"`
	P99    float64           `json:"p99"`
	Max    float64           `json:"max"`
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot captures every instrument, sorted by name then labels, so
// exports are deterministic for a given set of values.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   []CounterSnapshot{},
		Gauges:     []GaugeSnapshot{},
		Histograms: []HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	fgauges := make([]*FloatGauge, 0, len(r.floatGauges))
	for _, g := range r.floatGauges {
		fgauges = append(fgauges, g)
	}
	hists := make([]*Histogram, 0, len(r.histograms))
	for _, h := range r.histograms {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counters, func(i, j int) bool {
		return instrumentKey(counters[i].name, counters[i].labels) < instrumentKey(counters[j].name, counters[j].labels)
	})
	sort.Slice(gauges, func(i, j int) bool {
		return instrumentKey(gauges[i].name, gauges[i].labels) < instrumentKey(gauges[j].name, gauges[j].labels)
	})
	sort.Slice(fgauges, func(i, j int) bool {
		return instrumentKey(fgauges[i].name, fgauges[i].labels) < instrumentKey(fgauges[j].name, fgauges[j].labels)
	})
	sort.Slice(hists, func(i, j int) bool {
		return instrumentKey(hists[i].name, hists[i].labels) < instrumentKey(hists[j].name, hists[j].labels)
	})

	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Labels: labelMap(c.labels), Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Labels: labelMap(g.labels), Value: g.Value()})
	}
	for _, g := range fgauges {
		s.FloatGauges = append(s.FloatGauges, FloatGaugeSnapshot{Name: g.name, Labels: labelMap(g.labels), Value: g.Value()})
	}
	for _, h := range hists {
		qs := h.Quantiles(0.50, 0.90, 0.99, 1.0)
		s.Histograms = append(s.Histograms, HistogramSnapshot{
			Name: h.name, Labels: labelMap(h.labels),
			Count: h.Count(), Sum: h.Sum(),
			P50: qs[0], P90: qs[1], P99: qs[2], Max: qs[3],
		})
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters and gauges as-is, histograms as summaries with
// quantile labels plus _sum and _count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	var b strings.Builder
	for _, c := range s.Counters {
		fmt.Fprintf(&b, "# TYPE %s counter\n", promName(c.Name))
		fmt.Fprintf(&b, "%s%s %d\n", promName(c.Name), promLabels(c.Labels, "", ""), c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", promName(g.Name))
		fmt.Fprintf(&b, "%s%s %d\n", promName(g.Name), promLabels(g.Labels, "", ""), g.Value)
	}
	for _, g := range s.FloatGauges {
		fmt.Fprintf(&b, "# TYPE %s gauge\n", promName(g.Name))
		fmt.Fprintf(&b, "%s%s %s\n", promName(g.Name), promLabels(g.Labels, "", ""), promFloat(g.Value))
	}
	for _, h := range s.Histograms {
		name := promName(h.Name)
		fmt.Fprintf(&b, "# TYPE %s summary\n", name)
		fmt.Fprintf(&b, "%s%s %s\n", name, promLabels(h.Labels, "quantile", "0.5"), promFloat(h.P50))
		fmt.Fprintf(&b, "%s%s %s\n", name, promLabels(h.Labels, "quantile", "0.9"), promFloat(h.P90))
		fmt.Fprintf(&b, "%s%s %s\n", name, promLabels(h.Labels, "quantile", "0.99"), promFloat(h.P99))
		fmt.Fprintf(&b, "%s_sum%s %s\n", name, promLabels(h.Labels, "", ""), promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count%s %d\n", name, promLabels(h.Labels, "", ""), h.Count)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promName maps an instrument name onto the Prometheus charset
// [a-zA-Z0-9_:]; anything else becomes '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func promLabels(labels map[string]string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	first := true
	put := func(k, v string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		// %q's escaping (\\, \", \n) matches the exposition format's.
		fmt.Fprintf(&b, "%s=%q", promName(k), v)
	}
	for _, k := range keys {
		put(k, labels[k])
	}
	if extraKey != "" {
		put(extraKey, extraVal)
	}
	b.WriteByte('}')
	return b.String()
}
