package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// Every exported method must be a no-op on nil receivers: that is the
// zero-cost-when-off contract the instrumented packages rely on.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	sp := r.Span("root", "k", 1)
	if sp != nil {
		t.Fatalf("nil recorder returned non-nil span")
	}
	sp.SetArg("x", 2)
	sp.Child("c").End()
	sp.Fork("f").End()
	sp.End()

	c := r.Counter("c")
	c.Add(3)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter has value")
	}
	g := r.Gauge("g")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge has value")
	}
	h := r.Histogram("h")
	h.Observe(1.5)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("nil histogram recorded")
	}

	var tr *Tracer
	if tr.Start("x") != nil {
		t.Fatalf("nil tracer returned span")
	}
	if got := tr.Summary(); got != "" {
		t.Fatalf("nil tracer summary = %q", got)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil tracer WriteChrome: %v", err)
	}
	var reg *Registry
	reg.Counter("x").Inc()
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("nil registry WriteJSON: %v", err)
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	// A recorder with nil halves must degrade the same way.
	half := &Recorder{}
	if half.Span("s") != nil || half.Counter("c") != nil {
		t.Fatalf("recorder with nil halves returned live instruments")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram(16)

	// Empty window: zeros everywhere, never NaN.
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if v := h.Quantile(q); v != 0 || math.IsNaN(v) {
			t.Fatalf("empty Quantile(%v) = %v", q, v)
		}
	}
	if h.WindowCount() != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram counts: window=%d count=%d", h.WindowCount(), h.Count())
	}

	// Single sample: every quantile is that sample.
	h.Observe(7)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 7 {
			t.Fatalf("1-sample Quantile(%v) = %v, want 7", q, v)
		}
	}

	// Known set 1..10: nearest-rank sorted[int(q*(n-1))].
	h2 := NewHistogram(32)
	for i := 10; i >= 1; i-- {
		h2.Observe(float64(i))
	}
	qs := h2.Quantiles(0.50, 0.90, 0.99, 1.0)
	want := []float64{5, 9, 9, 10} // int(.5*9)=4 -> 5th, int(.9*9)=8 -> 9th, int(.99*9)=8, int(1*9)=9 -> 10th
	for i := range want {
		if qs[i] != want[i] {
			t.Fatalf("Quantiles = %v, want %v", qs, want)
		}
	}
	if h2.Count() != 10 || h2.Sum() != 55 {
		t.Fatalf("count=%d sum=%v, want 10/55", h2.Count(), h2.Sum())
	}

	// Window wrap: only the last `window` samples answer quantiles, but
	// cumulative count keeps growing.
	h3 := NewHistogram(4)
	for i := 1; i <= 100; i++ {
		h3.Observe(float64(i))
	}
	if h3.WindowCount() != 4 || h3.Count() != 100 {
		t.Fatalf("wrap: window=%d count=%d", h3.WindowCount(), h3.Count())
	}
	if v := h3.Quantile(0); v != 97 {
		t.Fatalf("wrap min = %v, want 97", v)
	}
	if v := h3.Quantile(1); v != 100 {
		t.Fatalf("wrap max = %v, want 100", v)
	}
}

func TestRegistryInstrumentIdentity(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits", L("stream", "opcode"))
	b := reg.Counter("hits", L("stream", "opcode"))
	if a != b {
		t.Fatalf("same name+labels produced distinct counters")
	}
	c := reg.Counter("hits", L("stream", "mem.ra"))
	if a == c {
		t.Fatalf("different labels shared a counter")
	}
	a.Add(2)
	b.Inc()
	if a.Value() != 3 {
		t.Fatalf("counter = %d, want 3", a.Value())
	}

	g := reg.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	if g.Value() != 3 {
		t.Fatalf("gauge = %d, want 3", g.Value())
	}
}

func TestFloatGauge(t *testing.T) {
	var r *Registry
	fg := r.FloatGauge("nil_safe")
	fg.Set(0.5)
	if fg.Value() != 0 {
		t.Fatalf("nil float gauge has value")
	}

	reg := NewRegistry()
	a := reg.FloatGauge("drift_score", L("image", "k1"))
	b := reg.FloatGauge("drift_score", L("image", "k1"))
	if a != b {
		t.Fatalf("same name+labels produced distinct float gauges")
	}
	a.Set(0.25)
	a.Set(0.625)
	if b.Value() != 0.625 {
		t.Fatalf("float gauge = %v, want 0.625", b.Value())
	}

	snap := reg.Snapshot()
	if len(snap.FloatGauges) != 1 || snap.FloatGauges[0].Value != 0.625 {
		t.Fatalf("float gauge snapshot: %+v", snap.FloatGauges)
	}
	if snap.FloatGauges[0].Labels["image"] != "k1" {
		t.Fatalf("float gauge labels: %+v", snap.FloatGauges[0])
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE drift_score gauge",
		`drift_score{image="k1"} 0.625`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestRegistryExports(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("squash_regions_total").Add(12)
	reg.Counter("stream_bits_total", L("stream", "mem.ra")).Add(99)
	reg.Gauge("pool_queue_depth").Set(2)
	h := reg.Histogram("request_ms")
	h.Observe(5)
	h.Observe(15)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("exported JSON does not parse: %v", err)
	}
	if len(snap.Counters) != 2 || len(snap.Gauges) != 1 || len(snap.Histograms) != 1 {
		t.Fatalf("snapshot shape: %+v", snap)
	}
	if snap.Counters[0].Name != "squash_regions_total" || snap.Counters[0].Value != 12 {
		t.Fatalf("counter snapshot: %+v", snap.Counters[0])
	}
	if snap.Counters[1].Labels["stream"] != "mem.ra" {
		t.Fatalf("label snapshot: %+v", snap.Counters[1])
	}
	if hs := snap.Histograms[0]; hs.Count != 2 || hs.Sum != 20 || hs.Max != 15 {
		t.Fatalf("histogram snapshot: %+v", hs)
	}

	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"# TYPE squash_regions_total counter",
		"squash_regions_total 12",
		`stream_bits_total{stream="mem.ra"} 99`,
		"# TYPE pool_queue_depth gauge",
		"pool_queue_depth 2",
		"# TYPE request_ms summary",
		`request_ms{quantile="0.5"} 5`,
		"request_ms_sum 20",
		"request_ms_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestPromNameSanitization(t *testing.T) {
	if got := promName("squash.stream-bits/2"); got != "squash_stream_bits_2" {
		t.Fatalf("promName = %q", got)
	}
	if got := promName("9lives"); got != "_lives" {
		t.Fatalf("promName leading digit = %q", got)
	}
}

// chromeFile mirrors the trace-event JSON container for validation.
type chromeFile struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Ts   float64        `json:"ts"`
		Dur  *float64       `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceChromeJSON(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("squash", "theta", 0.05)
	stage := root.Child("cfg.decode")
	stage.End()
	enc := root.Child("region.encode")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := enc.Fork("region")
			f.SetArg("index", i)
			f.End()
		}(i)
	}
	wg.Wait()
	enc.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}

	spans := map[string]int{}
	sawThreadName := false
	for _, e := range f.TraceEvents {
		switch e.Ph {
		case "X":
			spans[e.Name]++
			if e.Dur == nil || *e.Dur < 0 || e.Ts < 0 {
				t.Fatalf("span %q has bad ts/dur: %+v", e.Name, e)
			}
		case "M":
			if e.Name == "thread_name" {
				sawThreadName = true
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if !sawThreadName {
		t.Fatalf("no thread_name metadata emitted")
	}
	if spans["squash"] != 1 || spans["cfg.decode"] != 1 || spans["region.encode"] != 1 || spans["region"] != 4 {
		t.Fatalf("span counts: %v", spans)
	}

	sum := tr.Summary()
	if !strings.Contains(sum, "squash") || !strings.Contains(sum, "  cfg.decode") {
		t.Fatalf("summary tree malformed:\n%s", sum)
	}
	if !strings.Contains(sum, "theta=0.05") {
		t.Fatalf("summary missing args:\n%s", sum)
	}
}

// Forked spans that overlap must land on distinct virtual threads so
// chrome renders them as parallel tracks; sequential roots reuse tid 0.
func TestTraceTidAllocation(t *testing.T) {
	tr := NewTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	if a.tid == b.tid {
		t.Fatalf("overlapping roots share tid %d", a.tid)
	}
	a.End()
	b.End()
	c := tr.Start("c")
	if c.tid != 0 {
		t.Fatalf("sequential root got tid %d, want reused 0", c.tid)
	}
	c.End()

	// Double End records once.
	d := tr.Start("d")
	d.End()
	d.End()
	n := 0
	for _, e := range tr.events {
		if e.name == "d" {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("double End recorded %d events", n)
	}
}
