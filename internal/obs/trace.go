package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Tracer collects explicit start/end spans and exports them in the
// Chrome trace-event format (load the file in chrome://tracing or
// https://ui.perfetto.dev) or as an indented text tree. Spans on the
// same virtual thread nest by containment, which matches sequential
// Child spans; concurrent work opens a Fork span, which borrows the
// lowest free virtual thread id so parallel stages render as parallel
// tracks.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []spanEvent
	nextID int
	inUse  []bool // virtual thread ids; index 0 is the root track
}

type spanEvent struct {
	name     string
	id       int
	parent   int // span id of parent, -1 for roots
	tid      int
	start    time.Time
	dur      time.Duration
	args     []spanArg
	children int // filled during Summary
}

type spanArg struct {
	key string
	val any
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is one open interval. It is created by Tracer.Start, Span.Child,
// or Span.Fork, and records itself into the tracer when End is called.
// All methods are nil-safe no-ops.
type Span struct {
	tr      *Tracer
	name    string
	id      int
	parent  int
	tid     int
	ownsTid bool
	begin   time.Time
	args    []spanArg
	ended   bool
}

// Start opens a root span on its own virtual thread. Variadic args are
// alternating key/value pairs recorded on the span.
func (t *Tracer) Start(name string, args ...any) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	tid := t.allocTidLocked()
	t.mu.Unlock()
	s := &Span{tr: t, name: name, id: id, parent: -1, tid: tid, ownsTid: true, begin: time.Now()}
	s.setArgs(args)
	return s
}

// Child opens a sub-span on the same virtual thread as s. Use it for
// sequential stages; chrome infers nesting from containment.
func (s *Span) Child(name string, args ...any) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	t.mu.Unlock()
	c := &Span{tr: t, name: name, id: id, parent: s.id, tid: s.tid, begin: time.Now()}
	c.setArgs(args)
	return c
}

// Fork opens a sub-span on a fresh virtual thread. Use it for work that
// runs concurrently with its siblings (per-region encode, per-request
// handling); each fork renders as its own track.
func (s *Span) Fork(name string, args ...any) *Span {
	if s == nil || s.tr == nil {
		return nil
	}
	t := s.tr
	t.mu.Lock()
	id := t.nextID
	t.nextID++
	tid := t.allocTidLocked()
	t.mu.Unlock()
	c := &Span{tr: t, name: name, id: id, parent: s.id, tid: tid, ownsTid: true, begin: time.Now()}
	c.setArgs(args)
	return c
}

// SetArg attaches a key/value argument to the span.
func (s *Span) SetArg(key string, val any) {
	if s == nil {
		return
	}
	s.args = append(s.args, spanArg{key, val})
}

func (s *Span) setArgs(kvs []any) {
	for i := 0; i+1 < len(kvs); i += 2 {
		key, ok := kvs[i].(string)
		if !ok {
			key = fmt.Sprint(kvs[i])
		}
		s.args = append(s.args, spanArg{key, kvs[i+1]})
	}
}

// End closes the span and records it. Ending a span twice records it
// once.
func (s *Span) End() {
	if s == nil || s.tr == nil || s.ended {
		return
	}
	s.ended = true
	dur := time.Since(s.begin)
	t := s.tr
	t.mu.Lock()
	t.events = append(t.events, spanEvent{
		name: s.name, id: s.id, parent: s.parent, tid: s.tid,
		start: s.begin, dur: dur, args: s.args,
	})
	if s.ownsTid {
		t.freeTidLocked(s.tid)
	}
	t.mu.Unlock()
}

func (t *Tracer) allocTidLocked() int {
	for i, used := range t.inUse {
		if !used {
			t.inUse[i] = true
			return i
		}
	}
	t.inUse = append(t.inUse, true)
	return len(t.inUse) - 1
}

func (t *Tracer) freeTidLocked(tid int) {
	if tid >= 0 && tid < len(t.inUse) {
		t.inUse[tid] = false
	}
}

// chromeEvent is one entry of the trace-event format's traceEvents
// array. Complete spans use ph "X" (ts + dur, microseconds); metadata
// uses ph "M".
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the completed spans as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	events := append([]spanEvent(nil), t.events...)
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].start.Before(events[j].start) })

	maxTid := 0
	for _, e := range events {
		if e.tid > maxTid {
			maxTid = e.tid
		}
	}
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "obs"},
	})
	for tid := 0; tid <= maxTid; tid++ {
		name := "main"
		if tid > 0 {
			name = fmt.Sprintf("track-%d", tid)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	for _, e := range events {
		ts := float64(e.start.Sub(t.start)) / float64(time.Microsecond)
		dur := float64(e.dur) / float64(time.Microsecond)
		ev := chromeEvent{Name: e.name, Ph: "X", Pid: 1, Tid: e.tid, Ts: ts, Dur: &dur}
		if len(e.args) > 0 {
			ev.Args = make(map[string]any, len(e.args))
			for _, a := range e.args {
				ev.Args[a.key] = a.val
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Summary renders the completed spans as an indented tree, children
// ordered by start time, with durations and args inline. Roots whose
// parent span was never ended are promoted to top level.
func (t *Tracer) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	events := append([]spanEvent(nil), t.events...)
	t.mu.Unlock()

	byID := make(map[int]int, len(events)) // span id -> index
	for i, e := range events {
		byID[e.id] = i
	}
	children := make(map[int][]int) // span id (or -1) -> child indices
	for i, e := range events {
		parent := e.parent
		if _, ok := byID[parent]; !ok {
			parent = -1
		}
		children[parent] = append(children[parent], i)
	}
	for _, kids := range children {
		sort.SliceStable(kids, func(a, b int) bool {
			return events[kids[a]].start.Before(events[kids[b]].start)
		})
	}

	var b strings.Builder
	var walk func(id, depth int)
	walk = func(id, depth int) {
		for _, i := range children[id] {
			e := events[i]
			fmt.Fprintf(&b, "%s%s  %s", strings.Repeat("  ", depth), e.name, e.dur.Round(time.Microsecond))
			for _, a := range e.args {
				fmt.Fprintf(&b, " %s=%v", a.key, a.val)
			}
			b.WriteByte('\n')
			walk(e.id, depth+1)
		}
	}
	walk(-1, 0)
	return b.String()
}
