package obs

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// WriteHeapProfile writes a heap profile to path after forcing a GC, so the
// profile shows live retention rather than whatever transient garbage the
// run left behind. Every -memprofile flag funnels through here: the forced
// GC is what makes before/after profiles comparable when judging pooling
// changes, and centralizing it keeps a new command from forgetting it.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
