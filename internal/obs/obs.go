// Package obs is the unified telemetry layer: a span tracer exported as
// Chrome trace-event JSON, and a metrics registry of named counters,
// gauges, and windowed histograms exported as JSON or Prometheus text.
//
// The package has one structural rule: every method on every type is
// safe to call on a nil receiver and does nothing there. Instrumented
// code therefore threads a possibly-nil *Recorder (or *Span, *Counter,
// ...) through unconditionally, with no "if enabled" branches at call
// sites, and a disabled recorder costs a nil check per event. Telemetry
// must never perturb simulated observables — cycles, instructions,
// profiles, and squashed images are byte-identical with a recorder
// attached or not, and tests enforce that invariant end to end.
package obs

// Recorder bundles a tracer and a metrics registry. Either half may be
// nil; the accessors below degrade to no-ops accordingly.
type Recorder struct {
	Trace   *Tracer
	Metrics *Registry
}

// New returns a recorder with both tracing and metrics enabled.
func New() *Recorder {
	return &Recorder{Trace: NewTracer(), Metrics: NewRegistry()}
}

// Span opens a root span on the recorder's tracer. Arguments are
// alternating key/value pairs attached to the span.
func (r *Recorder) Span(name string, args ...any) *Span {
	if r == nil {
		return nil
	}
	return r.Trace.Start(name, args...)
}

// Counter fetches (or creates) a counter from the recorder's registry.
func (r *Recorder) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.Metrics.Counter(name, labels...)
}

// Gauge fetches (or creates) a gauge from the recorder's registry.
func (r *Recorder) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.Metrics.Gauge(name, labels...)
}

// Histogram fetches (or creates) a histogram from the recorder's registry.
func (r *Recorder) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.Metrics.Histogram(name, labels...)
}
