package obs

import (
	"sort"
	"sync"
)

// DefaultHistogramWindow is the sample-window size used by
// Registry.Histogram. It matches the latency window squashd's -stats
// endpoint has always reported over.
const DefaultHistogramWindow = 4096

// Histogram records float64 observations in a fixed-size ring window
// and answers nearest-rank quantiles over that window, alongside
// cumulative count and sum. An empty window yields 0 for every
// quantile — never NaN — and a 1-sample window yields that sample for
// every quantile.
type Histogram struct {
	name   string
	labels []Label

	mu     sync.Mutex
	window []float64
	next   int
	filled int
	count  uint64
	sum    float64
}

func newHistogram(name string, labels []Label, window int) *Histogram {
	if window < 1 {
		window = 1
	}
	return &Histogram{name: name, labels: labels, window: make([]float64, window)}
}

// NewHistogram returns a standalone histogram (not registered anywhere)
// with the given window size; window < 1 is clamped to 1.
func NewHistogram(window int) *Histogram {
	return newHistogram("", nil, window)
}

// Observe records one sample. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % len(h.window)
	if h.filled < len(h.window) {
		h.filled++
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count reports the cumulative number of observations; 0 on nil.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the cumulative sum of observations; 0 on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// WindowCount reports how many samples the current window holds.
func (h *Histogram) WindowCount() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.filled
}

// Quantile returns the nearest-rank q-quantile (q in [0,1]) over the
// window: sorted[int(q*(n-1))]. Empty window returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

// Quantiles answers several quantiles with one sort of the window. The
// result always has len(qs) entries; an empty window yields all zeros.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	_, out := h.WindowQuantiles(qs...)
	return out
}

// WindowQuantiles answers the window sample count and the requested
// quantiles from one consistent view of the window: both come from the
// same locked copy, so a concurrent Observe can never make the count
// disagree with the percentiles (count > 0 with all-zero quantiles, or
// vice versa). Callers that report count and percentiles together must
// use this instead of separate WindowCount/Quantiles calls.
func (h *Histogram) WindowQuantiles(qs ...float64) (int, []float64) {
	out := make([]float64, len(qs))
	if h == nil {
		return 0, out
	}
	h.mu.Lock()
	ds := append([]float64(nil), h.window[:h.filled]...)
	h.mu.Unlock()
	if len(ds) == 0 {
		return 0, out
	}
	sort.Float64s(ds)
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		out[i] = ds[int(q*float64(len(ds)-1))]
	}
	return len(ds), out
}
