package profilefeed

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/serve"
)

// DefaultMaxInputBytes caps the pushed input bytes retained per image.
const DefaultMaxInputBytes = 4 << 20

// Options configures a Collector.
type Options struct {
	// Dir is the persistent store root (required).
	Dir string
	// SquashAddr is the squashd backend re-squashes go through; empty runs
	// the squash pipeline in-process (byte-identical output either way).
	SquashAddr string
	// Threshold is the drift score at which a push triggers an automatic
	// re-squash; <= 0 disables the automatic trigger (forced re-squashes
	// still work).
	Threshold float64
	// MinSamples gates the automatic trigger: at least this many pushes
	// must have been aggregated since the last re-squash. 0 means 1.
	MinSamples uint64
	// Cooldown is the minimum interval between automatic re-squashes of
	// one image.
	Cooldown time.Duration
	// DecayHalfLife is the live window's half-life: aggregated counts are
	// scaled by 0.5^(Δt/half-life) before each push merges in. 0 disables
	// decay (the window grows forever).
	DecayHalfLife time.Duration
	// MaxInputBytes caps the pushed input retained per image; 0 means
	// DefaultMaxInputBytes.
	MaxInputBytes int
	// OutDir, when set, additionally receives every re-squashed image as
	// <key>.sqz.exe (the store always keeps it regardless).
	OutDir string
	// Obs supplies the metrics registry; nil gets a private one.
	Obs *obs.Recorder
	// Logf receives one line per handled request; nil logs to stderr.
	Logf func(format string, args ...any)
	// Now is the clock (tests inject a fake one); nil means time.Now.
	Now func() time.Time
}

// Collector is the continuous-profiling plane's server side: it owns the
// persistent per-image store and answers the profile-plane ops. Handle is
// safe for concurrent use; the store mutex serializes state changes.
type Collector struct {
	opts Options
	rec  *obs.Recorder
	logf func(format string, args ...any)
	now  func() time.Time

	mu sync.Mutex
	// images indexes entries by registration key; byKey additionally maps
	// every live (post-re-squash) image key to its entry, so fleet pushes
	// route correctly whichever image generation they ran.
	images map[string]*imageState
	byKey  map[string]*imageState
}

// NewCollector opens (or creates) the store under opts.Dir and loads every
// persisted entry.
func NewCollector(opts Options) (*Collector, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("profilefeed: store dir is required")
	}
	logf := opts.Logf
	if logf == nil {
		l := log.New(os.Stderr, "squashprofd ", log.LstdFlags|log.Lmicroseconds)
		logf = l.Printf
	}
	rec := opts.Obs
	if rec == nil {
		rec = &obs.Recorder{}
	}
	if rec.Metrics == nil {
		rec = &obs.Recorder{Trace: rec.Trace, Metrics: obs.NewRegistry()}
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	if opts.MaxInputBytes <= 0 {
		opts.MaxInputBytes = DefaultMaxInputBytes
	}
	if opts.MinSamples == 0 {
		opts.MinSamples = 1
	}
	images, err := loadStore(opts.Dir, logf)
	if err != nil {
		return nil, err
	}
	c := &Collector{
		opts:   opts,
		rec:    rec,
		logf:   logf,
		now:    now,
		images: images,
		byKey:  make(map[string]*imageState),
	}
	for _, st := range images {
		c.byKey[st.Key] = st
		c.byKey[st.CurrentKey] = st
		c.publish(st)
	}
	c.rec.Metrics.Gauge("profilefeed_images").Set(int64(len(images)))
	return c, nil
}

// Obs exposes the collector's recorder (its registry backs /metrics).
func (c *Collector) Obs() *obs.Recorder { return c.rec }

// Handle answers one request; it is the serve.Options.Handler of
// cmd/squashprofd. Payload slices in req alias the connection's frame
// buffer and are copied before anything retains them.
func (c *Collector) Handle(req *serve.Request) *serve.Response {
	start := c.now()
	var resp *serve.Response
	switch req.Op {
	case serve.OpPing:
		resp = &serve.Response{OK: true}
	case serve.OpProfileRegister:
		resp = c.register(req)
	case serve.OpProfilePush:
		resp = c.push(req)
	case serve.OpProfileStatus:
		resp = c.status(req)
	case serve.OpProfileResquash:
		resp = c.resquashOp(req)
	default:
		resp = &serve.Response{Err: fmt.Sprintf("unknown op %q (profile collector)", req.Op)}
	}
	c.logf("op=%s key=%.12s dur=%s ok=%v err=%q",
		req.Op, req.ImageKey, c.now().Sub(start).Round(time.Microsecond), resp.OK, resp.Err)
	return resp
}

// register enrolls a squashed image: its bytes (keyed by content), the
// object and object-space profile it was squashed from, the squash config,
// and a representative input. The squashed-space drift baseline is computed
// here by running the image on that input. Re-registering an existing key
// replaces the entry (idempotent for identical payloads).
func (c *Collector) register(req *serve.Request) *serve.Response {
	if len(req.Image) == 0 || len(req.Obj) == 0 || len(req.Profile) == 0 {
		return &serve.Response{Err: "profile-register needs image, obj, and profile bytes"}
	}
	baseObjProf, err := profile.ReadCounts(bytes.NewReader(req.Profile))
	if err != nil {
		return &serve.Response{Err: fmt.Sprintf("bad profile: %v", err)}
	}
	conf := core.DefaultConfig()
	if req.Config != nil {
		conf = *req.Config
	}
	key := imageKey(req.Image)
	input := capInput(req.Input, c.opts.MaxInputBytes)

	// The baseline run happens outside the lock: it is pure computation on
	// this request's (copied) bytes.
	image := append([]byte(nil), req.Image...)
	_, baseCounts, _, err := runImage(image, input, true)
	if err != nil {
		return &serve.Response{Err: fmt.Sprintf("baseline run: %v", err)}
	}

	st := &imageState{
		entryMeta: entryMeta{
			Key:        key,
			CurrentKey: key,
			Config:     conf,
		},
		obj:         append([]byte(nil), req.Obj...),
		regImage:    image,
		curImage:    image,
		baseObjProf: baseObjProf,
		baseCounts:  baseCounts,
		regInput:    input,
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.images[key]; ok {
		delete(c.byKey, old.CurrentKey)
	}
	c.images[key] = st
	c.byKey[key] = st
	if err := st.saveAll(c.opts.Dir); err != nil {
		return &serve.Response{Err: fmt.Sprintf("persist: %v", err)}
	}
	c.rec.Metrics.Counter("profilefeed_registers_total").Inc()
	c.rec.Metrics.Gauge("profilefeed_images").Set(int64(len(c.images)))
	c.publish(st)
	return &serve.Response{OK: true, ImageKey: key, Feed: c.feedOf(st)}
}

// push aggregates one fleet run's profile into its image's live window,
// recomputes drift, and fires the automatic re-squash when warranted. A
// push for a superseded key (a fleet member still on an old image) is
// acknowledged but not aggregated — its counts are in the wrong address
// space — and the response's Feed tells the pusher the current key.
func (c *Collector) push(req *serve.Request) *serve.Response {
	if req.ImageKey == "" || len(req.Profile) == 0 {
		return &serve.Response{Err: "profile-push needs image_key and profile bytes"}
	}
	counts, err := profile.ReadCounts(bytes.NewReader(req.Profile))
	if err != nil {
		return &serve.Response{Err: fmt.Sprintf("bad profile: %v", err)}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byKey[req.ImageKey]
	if !ok {
		c.rec.Metrics.Counter("profilefeed_unknown_pushes_total").Inc()
		return &serve.Response{Err: fmt.Sprintf("unknown image key %.12s… (register it first)", req.ImageKey)}
	}
	if req.ImageKey != st.CurrentKey {
		st.StalePushes++
		c.rec.Metrics.Counter("profilefeed_stale_pushes_total", obs.L("image", short(st.Key))).Inc()
		st.saveMeta(c.opts.Dir)
		return &serve.Response{OK: true, ImageKey: st.CurrentKey, Feed: c.feedOf(st)}
	}

	now := c.now()
	if hl := c.opts.DecayHalfLife; hl > 0 && !st.lastPush.IsZero() {
		if dt := now.Sub(st.lastPush); dt > 0 {
			profile.Decay(st.live, math.Pow(0.5, dt.Seconds()/hl.Seconds()))
		}
	}
	st.live = profile.Merge(st.live, counts)
	st.Samples++
	st.WindowSamples++
	st.lastPush = now
	if len(req.Input) > 0 {
		st.lastInput = capInput(req.Input, c.opts.MaxInputBytes)
	}
	c.rec.Metrics.Counter("profilefeed_pushes_total", obs.L("image", short(st.Key))).Inc()
	c.rec.Metrics.Counter("profilefeed_push_bytes_total").Add(uint64(len(req.Profile) + len(req.Input)))

	var report *serve.ResquashReport
	drift := c.driftOf(st)
	if c.opts.Threshold > 0 && drift.Score >= c.opts.Threshold &&
		st.WindowSamples >= c.opts.MinSamples &&
		(st.lastResquash.IsZero() || now.Sub(st.lastResquash) >= c.opts.Cooldown) {
		rep, err := c.resquashLocked(st, drift.Score, false)
		if err != nil {
			c.logf("auto re-squash of %.12s failed: %v", st.Key, err)
			c.rec.Metrics.Counter("profilefeed_resquash_errors_total", obs.L("image", short(st.Key))).Inc()
		} else {
			report = rep
		}
	}
	if err := st.saveWindow(c.opts.Dir); err != nil {
		return &serve.Response{Err: fmt.Sprintf("persist: %v", err)}
	}
	c.publish(st)
	return &serve.Response{OK: true, ImageKey: st.CurrentKey, Feed: c.feedOf(st), Resquash: report}
}

// status reports every image's aggregation state (or one image's, when the
// request names a key).
func (c *Collector) status(req *serve.Request) *serve.Response {
	c.mu.Lock()
	defer c.mu.Unlock()
	if req.ImageKey != "" {
		st, ok := c.byKey[req.ImageKey]
		if !ok {
			return &serve.Response{Err: fmt.Sprintf("unknown image key %.12s…", req.ImageKey)}
		}
		return &serve.Response{OK: true, Feed: c.feedOf(st)}
	}
	snap := &serve.FeedSnapshot{Images: []serve.FeedImageStatus{}}
	for _, st := range sortedStates(c.images) {
		snap.Images = append(snap.Images, c.statusOf(st))
	}
	return &serve.Response{OK: true, Feed: snap}
}

// resquashOp is the operator-facing forced re-squash (Force skips the
// threshold; without Force the current drift must be past it).
func (c *Collector) resquashOp(req *serve.Request) *serve.Response {
	if req.ImageKey == "" {
		return &serve.Response{Err: "profile-resquash needs image_key"}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.byKey[req.ImageKey]
	if !ok {
		return &serve.Response{Err: fmt.Sprintf("unknown image key %.12s…", req.ImageKey)}
	}
	drift := c.driftOf(st)
	if !req.Force && (c.opts.Threshold <= 0 || drift.Score < c.opts.Threshold) {
		return &serve.Response{Err: fmt.Sprintf("drift %.4f below threshold %.4f (use force)", drift.Score, c.opts.Threshold)}
	}
	rep, err := c.resquashLocked(st, drift.Score, req.Force)
	if err != nil {
		c.rec.Metrics.Counter("profilefeed_resquash_errors_total", obs.L("image", short(st.Key))).Inc()
		return &serve.Response{Err: err.Error()}
	}
	if err := st.saveAll(c.opts.Dir); err != nil {
		return &serve.Response{Err: fmt.Sprintf("persist: %v", err)}
	}
	c.publish(st)
	return &serve.Response{OK: true, ImageKey: st.CurrentKey, Image: st.curImage, Feed: c.feedOf(st), Resquash: rep}
}

// driftOf measures the live window against the squashed-space baseline over
// the image's squash-time θ partition.
func (c *Collector) driftOf(st *imageState) profile.DriftStats {
	return profile.ComputeDrift(st.baseCounts, st.live, st.Config.Theta)
}

// statusOf renders one image's wire status (caller holds the lock).
func (c *Collector) statusOf(st *imageState) serve.FeedImageStatus {
	staleness := -1.0
	if !st.lastPush.IsZero() {
		staleness = c.now().Sub(st.lastPush).Seconds()
	}
	return serve.FeedImageStatus{
		Key:          st.Key,
		CurrentKey:   st.CurrentKey,
		Samples:      st.Samples,
		BaseWeight:   profile.Total(st.baseCounts),
		LiveWeight:   profile.Total(st.live),
		StalenessSec: staleness,
		Theta:        st.Config.Theta,
		Drift:        c.driftOf(st),
		Threshold:    c.opts.Threshold,
		Resquashes:   st.Resquashes,
		LastResquash: st.LastReport,
	}
}

func (c *Collector) feedOf(st *imageState) *serve.FeedSnapshot {
	return &serve.FeedSnapshot{Images: []serve.FeedImageStatus{c.statusOf(st)}}
}

// publish refreshes the per-image metrics: drift components as float
// gauges in [0,1], weights and counters as integer gauges, staleness as an
// age gauge. Labels use the registration key's short prefix to keep the
// label space readable.
func (c *Collector) publish(st *imageState) {
	m := c.rec.Metrics
	img := obs.L("image", short(st.Key))
	d := c.driftOf(st)
	m.FloatGauge("profilefeed_drift_score", img).Set(d.Score)
	m.FloatGauge("profilefeed_drift_cold_excess", img).Set(d.ColdExcess)
	m.FloatGauge("profilefeed_drift_hot_mass_tv", img).Set(d.HotMassTV)
	m.FloatGauge("profilefeed_cold_mass_live", img).Set(d.ColdMassLive)
	m.Gauge("profilefeed_live_weight", img).Set(int64(profile.Total(st.live)))
	m.Gauge("profilefeed_base_weight", img).Set(int64(profile.Total(st.baseCounts)))
	m.Gauge("profilefeed_samples", img).Set(int64(st.Samples))
	m.Gauge("profilefeed_window_samples", img).Set(int64(st.WindowSamples))
	m.Gauge("profilefeed_resquashes", img).Set(int64(st.Resquashes))
	staleness := int64(-1)
	if !st.lastPush.IsZero() {
		staleness = int64(c.now().Sub(st.lastPush).Seconds())
	}
	m.Gauge("profilefeed_staleness_sec", img).Set(staleness)
	if r := st.LastReport; r != nil {
		m.FloatGauge("profilefeed_miss_before", img).Set(r.MissBefore)
		m.FloatGauge("profilefeed_miss_after", img).Set(r.MissAfter)
	}
}

// short is the label-friendly key prefix.
func short(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}

func capInput(in []byte, max int) []byte {
	if len(in) == 0 {
		return nil
	}
	if len(in) > max {
		in = in[:max]
	}
	return append([]byte(nil), in...)
}

// sortedStates returns the entries in deterministic (key) order.
func sortedStates(m map[string]*imageState) []*imageState {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*imageState, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}
