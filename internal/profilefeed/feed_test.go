package profilefeed

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// buildSquashed assembles a random test program, profiles it on input, and
// squashes it with that profile — the artifacts a deployment would register
// with the collector: object bytes, object-space EMP1 profile, squashed
// image bytes, and the config used.
func buildSquashed(t *testing.T, seed int64, input []byte, conf core.Config) (objBytes, profBytes, imageBytes []byte) {
	t.Helper()
	obj, err := asm.Assemble(testprog.Random(seed))
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := vm.New(im, input)
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	var ob, pb bytes.Buffer
	if _, err := obj.WriteTo(&ob); err != nil {
		t.Fatalf("serialize object: %v", err)
	}
	if _, err := profile.Counts(m.Profile).WriteTo(&pb); err != nil {
		t.Fatalf("serialize profile: %v", err)
	}
	out, err := core.Squash(obj, m.Profile, conf)
	if err != nil {
		t.Fatalf("squash: %v", err)
	}
	var img bytes.Buffer
	if _, err := out.Image.WriteTo(&img); err != nil {
		t.Fatalf("serialize image: %v", err)
	}
	return ob.Bytes(), pb.Bytes(), img.Bytes()
}

// fleetProfile simulates one fleet member's run: execute the squashed image
// on input with profiling (what em-run -profile-push does) and return the
// EMP1 bytes in the image's address space.
func fleetProfile(t *testing.T, imageBytes, input []byte) []byte {
	t.Helper()
	_, counts, _, err := runImage(imageBytes, input, true)
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	var buf bytes.Buffer
	if _, err := counts.WriteTo(&buf); err != nil {
		t.Fatalf("serialize fleet profile: %v", err)
	}
	return buf.Bytes()
}

// fakeClock is an injectable, manually-advanced clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

var (
	// steadyInput is the registration-time workload; shiftedInput exercises
	// different byte values and a different length, so the program's
	// data-dependent branches reshape the count distribution.
	steadyInput  = bytes.Repeat([]byte("abcabcabc"), 40)
	shiftedInput = bytes.Repeat([]byte{0xF7, 0x01, 0x80, 0x3c, 0xff, 0x10}, 200)
)

func newTestCollector(t *testing.T, opts Options) *Collector {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	col, err := NewCollector(opts)
	if err != nil {
		t.Fatalf("NewCollector: %v", err)
	}
	return col
}

func register(t *testing.T, col *Collector, objBytes, profBytes, imageBytes, input []byte, conf core.Config) string {
	t.Helper()
	resp := col.Handle(&serve.Request{
		Op:      serve.OpProfileRegister,
		Image:   imageBytes,
		Obj:     objBytes,
		Profile: profBytes,
		Input:   input,
		Config:  &conf,
	})
	if !resp.OK {
		t.Fatalf("register: %s", resp.Err)
	}
	if want := imageKey(imageBytes); resp.ImageKey != want {
		t.Fatalf("register returned key %s, want content key %s", resp.ImageKey, want)
	}
	return resp.ImageKey
}

func pushResp(t *testing.T, col *Collector, key string, prof, input []byte) *serve.Response {
	t.Helper()
	resp := col.Handle(&serve.Request{
		Op:       serve.OpProfilePush,
		ImageKey: key,
		Profile:  prof,
		Input:    input,
	})
	if !resp.OK {
		t.Fatalf("push: %s", resp.Err)
	}
	return resp
}

func oneImage(t *testing.T, resp *serve.Response) serve.FeedImageStatus {
	t.Helper()
	if resp.Feed == nil || len(resp.Feed.Images) != 1 {
		t.Fatalf("response carries no single-image feed: %+v", resp)
	}
	return resp.Feed.Images[0]
}

// TestCollectorLifecycle drives the whole plane in-process: register a
// squashed image, push steady-state profiles (near-zero drift), shift the
// workload (drift rises), force a re-squash (byte-identical verification,
// key rollover), and confirm stale pushes from the old image generation are
// acknowledged but not aggregated.
func TestCollectorLifecycle(t *testing.T) {
	conf := core.DefaultConfig()
	objBytes, profBytes, imageBytes := buildSquashed(t, 11, steadyInput, conf)
	clock := newFakeClock()
	col := newTestCollector(t, Options{Threshold: 10, Now: clock.Now}) // auto trigger effectively off

	key := register(t, col, objBytes, profBytes, imageBytes, steadyInput, conf)

	// Steady-state push: the fleet runs the same workload the image was
	// squashed for, so the live aggregate matches the baseline exactly.
	steadyProf := fleetProfile(t, imageBytes, steadyInput)
	clock.Advance(time.Second)
	st := oneImage(t, pushResp(t, col, key, steadyProf, steadyInput))
	if st.Drift.Score != 0 {
		t.Errorf("steady-state drift score = %v, want 0", st.Drift.Score)
	}
	if st.Samples != 1 || st.LiveWeight == 0 {
		t.Errorf("after steady push: samples=%d live=%d", st.Samples, st.LiveWeight)
	}

	// Workload shift: drift must move strictly above the steady-state score.
	shiftProf := fleetProfile(t, imageBytes, shiftedInput)
	clock.Advance(time.Second)
	st = oneImage(t, pushResp(t, col, key, shiftProf, shiftedInput))
	if st.Drift.Score <= 0 {
		t.Fatalf("drift did not move on workload shift: %+v", st.Drift)
	}
	if st.Samples != 2 {
		t.Errorf("samples = %d, want 2", st.Samples)
	}

	// Unknown keys are rejected, not silently aggregated.
	if resp := col.Handle(&serve.Request{Op: serve.OpProfilePush, ImageKey: "deadbeef", Profile: steadyProf}); resp.OK {
		t.Error("push for unknown key succeeded")
	}

	// Forced re-squash: must verify byte-identically and roll the key.
	clock.Advance(time.Second)
	resp := col.Handle(&serve.Request{Op: serve.OpProfileResquash, ImageKey: key, Force: true})
	if !resp.OK {
		t.Fatalf("forced re-squash: %s", resp.Err)
	}
	rep := resp.Resquash
	if rep == nil || !rep.OutputOK || !rep.Forced {
		t.Fatalf("re-squash report = %+v, want forced + output-identical", rep)
	}
	if len(resp.Image) == 0 {
		t.Fatal("re-squash response carries no image bytes")
	}
	if got := imageKey(resp.Image); got != rep.NewKey {
		t.Errorf("returned image hashes to %s, report says %s", got, rep.NewKey)
	}
	st = oneImage(t, resp)
	if st.CurrentKey != rep.NewKey || st.Resquashes != 1 {
		t.Errorf("after re-squash: current=%s resquashes=%d, want %s / 1", st.CurrentKey, st.Resquashes, rep.NewKey)
	}
	if st.LiveWeight != 0 {
		t.Errorf("live window not reset after re-squash: weight %d", st.LiveWeight)
	}

	// The new image must still compute the same function on fresh input.
	outNew, _, _, err := runImage(resp.Image, steadyInput, false)
	if err != nil {
		t.Fatalf("running re-squashed image: %v", err)
	}
	outOld, _, _, err := runImage(imageBytes, steadyInput, false)
	if err != nil {
		t.Fatalf("running original image: %v", err)
	}
	if !bytes.Equal(outNew, outOld) {
		t.Error("re-squashed image output differs from the original's")
	}

	// A fleet member still on the old image generation: acknowledged, told
	// the current key, but its (old-address-space) counts stay out of the
	// new window.
	if rep.NewKey != key {
		clock.Advance(time.Second)
		resp := pushResp(t, col, key, shiftProf, nil)
		if resp.ImageKey != rep.NewKey {
			t.Errorf("stale push answered with key %s, want current %s", resp.ImageKey, rep.NewKey)
		}
		if st := oneImage(t, resp); st.LiveWeight != 0 {
			t.Errorf("stale push was aggregated: live weight %d", st.LiveWeight)
		}
		// Pushing under the current key aggregates again.
		curProf := fleetProfile(t, resp.Image, shiftedInput)
		clock.Advance(time.Second)
		if st := oneImage(t, pushResp(t, col, rep.NewKey, curProf, shiftedInput)); st.LiveWeight == 0 {
			t.Error("push under the new key was not aggregated")
		}
	}
}

// TestCollectorAutoResquash exercises the automatic trigger: with a tiny
// threshold and a two-sample evidence gate, the second shifted push fires
// the re-squash on its own.
func TestCollectorAutoResquash(t *testing.T) {
	conf := core.DefaultConfig()
	objBytes, profBytes, imageBytes := buildSquashed(t, 23, steadyInput, conf)
	clock := newFakeClock()
	col := newTestCollector(t, Options{
		Threshold:  1e-9,
		MinSamples: 2,
		Cooldown:   time.Minute,
		Now:        clock.Now,
	})
	key := register(t, col, objBytes, profBytes, imageBytes, steadyInput, conf)
	shiftProf := fleetProfile(t, imageBytes, shiftedInput)

	clock.Advance(time.Second)
	if resp := pushResp(t, col, key, shiftProf, shiftedInput); resp.Resquash != nil {
		t.Fatal("auto re-squash fired before the evidence gate was met")
	}
	clock.Advance(time.Second)
	resp := pushResp(t, col, key, shiftProf, shiftedInput)
	if resp.Resquash == nil {
		t.Fatal("auto re-squash did not fire past threshold + min samples")
	}
	if !resp.Resquash.OutputOK || resp.Resquash.Forced {
		t.Fatalf("auto re-squash report = %+v", resp.Resquash)
	}
	if resp.Resquash.DriftScore <= 0 {
		t.Errorf("auto re-squash recorded drift %v, want > 0", resp.Resquash.DriftScore)
	}
}

// TestCollectorDecay checks the window half-life: a push after exactly one
// half-life halves the previous aggregate before merging.
func TestCollectorDecay(t *testing.T) {
	conf := core.DefaultConfig()
	objBytes, profBytes, imageBytes := buildSquashed(t, 37, steadyInput, conf)
	clock := newFakeClock()
	col := newTestCollector(t, Options{
		Threshold:     10,
		DecayHalfLife: time.Minute,
		Now:           clock.Now,
	})
	key := register(t, col, objBytes, profBytes, imageBytes, steadyInput, conf)
	prof := fleetProfile(t, imageBytes, steadyInput)

	clock.Advance(time.Second)
	first := oneImage(t, pushResp(t, col, key, prof, nil))
	w := first.LiveWeight
	if w == 0 {
		t.Fatal("first push aggregated no weight")
	}
	clock.Advance(time.Minute)
	second := oneImage(t, pushResp(t, col, key, prof, nil))
	// Decayed-to-half plus a fresh copy: 1.5w, give or take half-up
	// rounding of at most one count per profiled word.
	counts, err := profile.ReadCounts(bytes.NewReader(prof))
	if err != nil {
		t.Fatalf("re-read pushed profile: %v", err)
	}
	slop := uint64(len(counts))
	if want := w + w/2; second.LiveWeight+slop < want || second.LiveWeight > want+slop {
		t.Errorf("after one half-life, live weight = %d, want %d ± %d", second.LiveWeight, want, slop)
	}
}

// TestCollectorPersistence round-trips the store: everything a collector
// knows — keys, windows, counters, the re-squashed current image — must
// survive a restart from disk.
func TestCollectorPersistence(t *testing.T) {
	conf := core.DefaultConfig()
	objBytes, profBytes, imageBytes := buildSquashed(t, 53, steadyInput, conf)
	dir := t.TempDir()
	clock := newFakeClock()

	col := newTestCollector(t, Options{Dir: dir, Threshold: 10, Now: clock.Now})
	key := register(t, col, objBytes, profBytes, imageBytes, steadyInput, conf)
	shiftProf := fleetProfile(t, imageBytes, shiftedInput)
	clock.Advance(time.Second)
	before := oneImage(t, pushResp(t, col, key, shiftProf, shiftedInput))
	clock.Advance(time.Second)
	resp := col.Handle(&serve.Request{Op: serve.OpProfileResquash, ImageKey: key, Force: true})
	if !resp.OK {
		t.Fatalf("forced re-squash: %s", resp.Err)
	}
	newKey := resp.Resquash.NewKey

	// Restart: a fresh collector over the same store.
	col2 := newTestCollector(t, Options{Dir: dir, Threshold: 10, Now: clock.Now})
	sresp := col2.Handle(&serve.Request{Op: serve.OpProfileStatus, ImageKey: key})
	if !sresp.OK {
		t.Fatalf("status after reload: %s", sresp.Err)
	}
	st := oneImage(t, sresp)
	if st.Key != key || st.CurrentKey != newKey {
		t.Errorf("reloaded keys = %s/%s, want %s/%s", st.Key, st.CurrentKey, key, newKey)
	}
	if st.Samples != before.Samples || st.Resquashes != 1 {
		t.Errorf("reloaded counters: samples=%d resquashes=%d, want %d/1", st.Samples, st.Resquashes, before.Samples)
	}
	if st.Drift.BaseWeight == 0 {
		t.Error("reloaded baseline is empty")
	}

	// The reloaded collector keeps serving: pushes under the rolled key
	// aggregate, and a second forced re-squash still verifies.
	curImg := resp.Image
	curProf := fleetProfile(t, curImg, shiftedInput)
	clock.Advance(time.Second)
	if st := oneImage(t, pushResp(t, col2, newKey, curProf, shiftedInput)); st.LiveWeight == 0 {
		t.Error("push after reload was not aggregated")
	}
	clock.Advance(time.Second)
	resp2 := col2.Handle(&serve.Request{Op: serve.OpProfileResquash, ImageKey: newKey, Force: true})
	if !resp2.OK || !resp2.Resquash.OutputOK {
		t.Fatalf("re-squash after reload: ok=%v resp=%+v", resp2.OK, resp2.Resquash)
	}
}

// TestCollectorOverServe runs the collector behind the real serve stack —
// the daemon wiring cmd/squashprofd uses — and drives it through a network
// client, covering the v2 frame path for every profile op.
func TestCollectorOverServe(t *testing.T) {
	conf := core.DefaultConfig()
	objBytes, profBytes, imageBytes := buildSquashed(t, 71, steadyInput, conf)
	col := newTestCollector(t, Options{Threshold: 10})

	s := serve.NewServer(serve.Options{Handler: col.Handle, Logf: t.Logf, Obs: col.Obs()})
	ln, err := serve.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		<-done
	}()

	cl, err := serve.DialClient(ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	resp, err := cl.Do(&serve.Request{
		Op:      serve.OpProfileRegister,
		Image:   imageBytes,
		Obj:     objBytes,
		Profile: profBytes,
		Input:   steadyInput,
		Config:  &conf,
	})
	if err != nil {
		t.Fatalf("register over serve: %v", err)
	}
	if !resp.OK {
		t.Fatalf("register over serve: %s", resp.Err)
	}
	key := resp.ImageKey

	shiftProf := fleetProfile(t, imageBytes, shiftedInput)
	resp, err = cl.Do(&serve.Request{Op: serve.OpProfilePush, ImageKey: key, Profile: shiftProf, Input: shiftedInput})
	if err != nil {
		t.Fatalf("push over serve: %v", err)
	}
	if !resp.OK {
		t.Fatalf("push over serve: %s", resp.Err)
	}
	if st := oneImage(t, resp); st.Drift.Score <= 0 {
		t.Errorf("drift over serve = %v, want > 0", st.Drift.Score)
	}

	resp, err = cl.Do(&serve.Request{Op: serve.OpProfileResquash, ImageKey: key, Force: true})
	if err != nil {
		t.Fatalf("re-squash over serve: %v", err)
	}
	if !resp.OK || resp.Resquash == nil || !resp.Resquash.OutputOK {
		t.Fatalf("re-squash over serve: ok=%v report=%+v err=%s", resp.OK, resp.Resquash, resp.Err)
	}
	if len(resp.Image) == 0 {
		t.Error("re-squash over serve returned no image")
	}

	resp, err = cl.Do(&serve.Request{Op: serve.OpProfileStatus})
	if err != nil {
		t.Fatalf("status over serve: %v", err)
	}
	if !resp.OK || resp.Feed == nil || len(resp.Feed.Images) != 1 {
		t.Fatalf("status over serve: %+v", resp)
	}
}
