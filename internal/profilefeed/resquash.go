package profilefeed

// The re-squash path closes the paper's feedback loop: when the fleet's
// live profile has drifted from the profile an image was squashed with, the
// image is squashed again with a profile that reflects the live workload.
//
// The merged profile must be in the object's address space, but fleet
// pushes are in the squashed image's space. The bridge is a replay: link
// the stored object uncompressed and run it on the last pushed (drifted)
// input under the in-process VM, producing object-space counts for exactly
// the workload that drifted; merge those with the object-space profile from
// registration and squash with the merged vector. Verification then runs
// the old and new images on the same drifted input — outputs must be
// byte-identical, and the two runs' buffer-miss rates are the loop's
// before/after evidence.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/serve"
)

// resquashLocked re-squashes st with the merged live profile; the caller
// holds the collector mutex. On success the entry's current image, keys,
// baselines, and window are all advanced and persisted state is left to the
// caller's save. score is the drift score that triggered the run (recorded
// in the report); forced marks an operator override.
func (c *Collector) resquashLocked(st *imageState, score float64, forced bool) (*serve.ResquashReport, error) {
	input := st.lastInput
	if len(input) == 0 {
		input = st.regInput
	}
	if len(input) == 0 {
		return nil, fmt.Errorf("no input available for re-squash replay (register or push with input bytes)")
	}

	// Regenerate the live workload's profile in object space.
	objCounts, err := linkAndRun(st.obj, input)
	if err != nil {
		return nil, err
	}
	merged := profile.Merge(append(profile.Counts(nil), st.baseObjProf...), objCounts)

	newImage, err := c.squash(st.obj, merged, st.Config)
	if err != nil {
		return nil, fmt.Errorf("re-squash: %w", err)
	}

	// Verify on the drifted input: identical output, and the before/after
	// buffer-miss evidence from the same two runs.
	outOld, _, oldInfo, err := runImage(st.curImage, input, false)
	if err != nil {
		return nil, fmt.Errorf("verification run (old image): %w", err)
	}
	outNew, newBase, newInfo, err := runImage(newImage, input, true)
	if err != nil {
		return nil, fmt.Errorf("verification run (new image): %w", err)
	}
	report := &serve.ResquashReport{
		NewKey:      imageKey(newImage),
		DriftScore:  score,
		Forced:      forced,
		OutputOK:    bytes.Equal(outOld, outNew),
		MissBefore:  oldInfo.missRate(),
		MissAfter:   newInfo.missRate(),
		EvictBefore: oldInfo.Evictions,
		EvictAfter:  newInfo.Evictions,
		UnixSec:     c.now().Unix(),
	}
	if !report.OutputOK {
		return nil, fmt.Errorf("re-squashed image diverged: old and new outputs differ on the verification input (%d vs %d bytes)",
			len(outOld), len(outNew))
	}

	// Adopt: the new image becomes current, future pushes route by its
	// key, the object-space baseline becomes the merged profile, and the
	// squashed-space baseline is the new image's own run on the input it
	// was optimized for. The live window resets — its counts are in the
	// old image's space.
	dir := st.dir(c.opts.Dir)
	if err := writeFileAtomic(filepath.Join(dir, curImageFile), newImage); err != nil {
		return nil, fmt.Errorf("persist new image: %w", err)
	}
	report.ImagePath = filepath.Join(dir, curImageFile)
	if c.opts.OutDir != "" {
		out := filepath.Join(c.opts.OutDir, report.NewKey+".sqz.exe")
		if err := os.MkdirAll(c.opts.OutDir, 0o755); err == nil {
			if err := writeFileAtomic(out, newImage); err == nil {
				report.ImagePath = out
			}
		}
	}
	delete(c.byKey, st.CurrentKey)
	if _, taken := c.byKey[report.NewKey]; taken && report.NewKey != st.Key {
		// Pathological: another entry already owns the new key. Keep both
		// routable; the other entry wins pushes for that key.
		c.logf("re-squash of %.12s produced an image already registered as %.12s", st.Key, report.NewKey)
	} else {
		c.byKey[report.NewKey] = st
	}
	c.byKey[st.Key] = st
	st.CurrentKey = report.NewKey
	st.curImage = newImage
	st.baseObjProf = merged
	st.baseCounts = newBase
	st.live = nil
	st.WindowSamples = 0
	st.Resquashes++
	st.lastResquash = c.now()
	st.LastReport = report

	m := c.rec.Metrics
	img := obs.L("image", short(st.Key))
	m.Counter("profilefeed_resquashes_total", img).Inc()
	c.logf("re-squash %.12s -> %.12s drift=%.4f forced=%v miss %.6f -> %.6f evict %d -> %d",
		st.Key, report.NewKey, score, forced, report.MissBefore, report.MissAfter,
		report.EvictBefore, report.EvictAfter)
	return report, nil
}

// squash produces the new image bytes for obj + merged profile + conf —
// through the squashd backend when one is configured (its output is
// byte-identical to the in-process pipeline), in-process otherwise.
func (c *Collector) squash(objBytes []byte, merged profile.Counts, conf core.Config) ([]byte, error) {
	var prof bytes.Buffer
	if _, err := merged.WriteTo(&prof); err != nil {
		return nil, err
	}
	if c.opts.SquashAddr != "" {
		cl, err := serve.DialClient(c.opts.SquashAddr)
		if err != nil {
			return nil, fmt.Errorf("dial squash backend: %w", err)
		}
		defer cl.Close()
		resp, err := cl.Do(&serve.Request{
			Op: serve.OpSquash, Obj: objBytes, Profile: prof.Bytes(), Config: &conf,
		})
		if err != nil {
			return nil, fmt.Errorf("squash backend: %w", err)
		}
		if !resp.OK {
			return nil, fmt.Errorf("squash backend: %s", resp.Err)
		}
		if len(resp.Image) == 0 {
			return nil, fmt.Errorf("squash backend returned no image")
		}
		return resp.Image, nil
	}
	obj, err := objfile.ReadObject(bytes.NewReader(objBytes))
	if err != nil {
		return nil, fmt.Errorf("bad stored object: %w", err)
	}
	out, err := core.SquashObs(obj, merged, conf, c.rec)
	if err != nil {
		return nil, err
	}
	var img bytes.Buffer
	if _, err := out.Image.WriteTo(&img); err != nil {
		return nil, err
	}
	return img.Bytes(), nil
}
