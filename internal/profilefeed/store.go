package profilefeed

// On-disk layout: one directory per registered image under the store root,
// named by the registration key (sha256 hex of the registered image bytes).
// Small metadata lives in entry.json; blobs (object, image, profiles,
// inputs) are separate files so pushes rewrite only what changed. Every
// write goes through a temp file + rename, so a crash mid-write leaves the
// previous state intact, never a torn file.

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/serve"
)

const (
	entryFile     = "entry.json"
	objFile       = "obj.emo"
	baseProfFile  = "baseprof.emp"   // object-space baseline profile
	regImageFile  = "image.emx"      // image as registered
	curImageFile  = "current.emx"    // current image (after a re-squash)
	baseCountFile = "basecounts.emp" // squashed-space baseline counts
	liveFile      = "live.emp"       // decayed live aggregate
	regInputFile  = "reginput.bin"
	lastInputFile = "lastinput.bin"
)

// entryMeta is the persisted metadata of one registered image.
type entryMeta struct {
	Key        string      `json:"key"`
	CurrentKey string      `json:"current_key"`
	Config     core.Config `json:"config"`
	// Samples counts every aggregated push since registration;
	// WindowSamples counts those since the last re-squash (the auto
	// trigger's minimum-evidence gate).
	Samples       uint64 `json:"samples"`
	WindowSamples uint64 `json:"window_samples"`
	// StalePushes counts pushes that named a superseded key (a fleet
	// member still running a pre-re-squash image); they are acknowledged
	// but not aggregated, because their counts live in the old image's
	// address space.
	StalePushes      uint64                `json:"stale_pushes,omitempty"`
	Resquashes       uint64                `json:"resquashes,omitempty"`
	LastPushUnix     int64                 `json:"last_push_unix,omitempty"`
	LastResquashUnix int64                 `json:"last_resquash_unix,omitempty"`
	LastReport       *serve.ResquashReport `json:"last_report,omitempty"`
}

// imageState is one registered image's full in-memory state. The collector
// mutex guards all of it.
type imageState struct {
	entryMeta

	obj      []byte // relocatable object bytes
	regImage []byte // image bytes as registered
	curImage []byte // current image bytes (== regImage until a re-squash)

	// baseObjProf is the object-space baseline profile (registration
	// profile, merged with replay counts on each re-squash).
	baseObjProf profile.Counts
	// baseCounts is the squashed-space baseline: the current image run on
	// its baseline input. live is the decayed aggregate of fleet pushes,
	// in the same space.
	baseCounts profile.Counts
	live       profile.Counts

	regInput  []byte
	lastInput []byte

	lastPush     time.Time
	lastResquash time.Time
}

// imageKey is the content identity an image registers under.
func imageKey(imageBytes []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(imageBytes))
}

// dir is this entry's directory under root.
func (st *imageState) dir(root string) string { return filepath.Join(root, st.Key) }

// writeFileAtomic writes data via a temp file + rename in the target's
// directory (same filesystem, so the rename is atomic).
func writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// writeCounts persists a count vector as an EMP1 file (atomic). A nil
// vector removes the file.
func writeCounts(path string, c profile.Counts) error {
	if c == nil {
		err := os.Remove(path)
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		return err
	}
	return writeFileAtomic(path, buf.Bytes())
}

// readCountsFile loads an EMP1 file; a missing file is a nil vector.
func readCountsFile(path string) (profile.Counts, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return profile.ReadCounts(bytes.NewReader(data))
}

// saveMeta persists entry.json.
func (st *imageState) saveMeta(root string) error {
	st.LastPushUnix = unixOrZero(st.lastPush)
	st.LastResquashUnix = unixOrZero(st.lastResquash)
	data, err := json.MarshalIndent(&st.entryMeta, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(st.dir(root), entryFile), data)
}

func unixOrZero(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.Unix()
}

// saveAll persists the entire entry: blobs first, metadata last, so a crash
// between writes leaves metadata that never references missing blobs.
func (st *imageState) saveAll(root string) error {
	dir := st.dir(root)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blobs := []struct {
		name string
		data []byte
	}{
		{objFile, st.obj},
		{regImageFile, st.regImage},
		{regInputFile, st.regInput},
	}
	for _, b := range blobs {
		if b.data == nil {
			continue
		}
		if err := writeFileAtomic(filepath.Join(dir, b.name), b.data); err != nil {
			return err
		}
	}
	if err := st.saveCurrent(root); err != nil {
		return err
	}
	if err := writeCounts(filepath.Join(dir, baseProfFile), st.baseObjProf); err != nil {
		return err
	}
	if err := writeCounts(filepath.Join(dir, baseCountFile), st.baseCounts); err != nil {
		return err
	}
	if err := st.saveWindow(root); err != nil {
		return err
	}
	return st.saveMeta(root)
}

// saveCurrent persists the current image blob — only when it diverged from
// the registered one (pre-re-squash entries have no current.emx).
func (st *imageState) saveCurrent(root string) error {
	if st.CurrentKey == st.Key {
		return nil
	}
	return writeFileAtomic(filepath.Join(st.dir(root), curImageFile), st.curImage)
}

// saveWindow persists what a push mutates: the live aggregate, the last
// input, and the metadata counters.
func (st *imageState) saveWindow(root string) error {
	dir := st.dir(root)
	if err := writeCounts(filepath.Join(dir, liveFile), st.live); err != nil {
		return err
	}
	if st.lastInput != nil {
		if err := writeFileAtomic(filepath.Join(dir, lastInputFile), st.lastInput); err != nil {
			return err
		}
	}
	return st.saveMeta(root)
}

// loadStore reads every persisted entry under root. Unreadable entries are
// skipped with a note through logf rather than failing the whole store: one
// corrupt directory must not take the collector down.
func loadStore(root string, logf func(string, ...any)) (map[string]*imageState, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	dirs, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*imageState)
	for _, d := range dirs {
		if !d.IsDir() {
			continue
		}
		st, err := loadEntry(filepath.Join(root, d.Name()))
		if err != nil {
			logf("profilefeed: skipping store entry %s: %v", d.Name(), err)
			continue
		}
		out[st.Key] = st
	}
	return out, nil
}

func loadEntry(dir string) (*imageState, error) {
	st := &imageState{}
	meta, err := os.ReadFile(filepath.Join(dir, entryFile))
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(meta, &st.entryMeta); err != nil {
		return nil, fmt.Errorf("bad entry.json: %w", err)
	}
	if st.Key == "" {
		return nil, fmt.Errorf("entry.json missing key")
	}
	if st.CurrentKey == "" {
		st.CurrentKey = st.Key
	}
	if st.LastPushUnix > 0 {
		st.lastPush = time.Unix(st.LastPushUnix, 0)
	}
	if st.LastResquashUnix > 0 {
		st.lastResquash = time.Unix(st.LastResquashUnix, 0)
	}
	if st.obj, err = os.ReadFile(filepath.Join(dir, objFile)); err != nil {
		return nil, err
	}
	if st.regImage, err = os.ReadFile(filepath.Join(dir, regImageFile)); err != nil {
		return nil, err
	}
	st.curImage = st.regImage
	if st.CurrentKey != st.Key {
		if st.curImage, err = os.ReadFile(filepath.Join(dir, curImageFile)); err != nil {
			return nil, err
		}
	}
	if st.baseObjProf, err = readCountsFile(filepath.Join(dir, baseProfFile)); err != nil {
		return nil, err
	}
	if st.baseCounts, err = readCountsFile(filepath.Join(dir, baseCountFile)); err != nil {
		return nil, err
	}
	if st.live, err = readCountsFile(filepath.Join(dir, liveFile)); err != nil {
		return nil, err
	}
	// Inputs are optional (an image can be registered without one).
	st.regInput, _ = os.ReadFile(filepath.Join(dir, regInputFile))
	st.lastInput, _ = os.ReadFile(filepath.Join(dir, lastInputFile))
	return st, nil
}
