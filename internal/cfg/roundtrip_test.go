package cfg

import (
	"reflect"
	"testing"

	"repro/internal/asm"
	"repro/internal/mediabench"
)

// TestLowerBuildIdempotent checks that Lower∘Build is idempotent on a large
// generated program: lifting an object and lowering it again must converge
// after one round (the first round may canonicalize label names and insert
// explicit fallthrough branches; the second must be byte-identical).
func TestLowerBuildIdempotent(t *testing.T) {
	spec, ok := mediabench.SpecByName("g721_enc")
	if !ok {
		t.Fatal("spec missing")
	}
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		t.Fatal(err)
	}
	p1, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	o1, err := Lower(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(o1, "main")
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Lower(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o1.Text, o2.Text) {
		t.Fatal("text not idempotent under Build∘Lower")
	}
	if !reflect.DeepEqual(o1.Data, o2.Data) {
		t.Fatal("data not idempotent")
	}
	if len(o1.Symbols) != len(o2.Symbols) || len(o1.Relocs) != len(o2.Relocs) {
		t.Fatalf("tables changed: %d/%d symbols, %d/%d relocs",
			len(o1.Symbols), len(o2.Symbols), len(o1.Relocs), len(o2.Relocs))
	}
}

// TestBuildPreservesInstructionCountModuloFallthrough: lowering inserts at
// most one branch per block, never removes instructions.
func TestBuildPreservesInstructionCount(t *testing.T) {
	spec, _ := mediabench.SpecByName("adpcm")
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if p.NumInsts() != len(obj.Text) {
		t.Fatalf("Build dropped instructions: %d vs %d", p.NumInsts(), len(obj.Text))
	}
	o, err := Lower(p)
	if err != nil {
		t.Fatal(err)
	}
	blocks := 0
	for _, f := range p.Funcs {
		blocks += len(f.Blocks)
	}
	if len(o.Text) < len(obj.Text) || len(o.Text) > len(obj.Text)+blocks {
		t.Fatalf("lowered size %d outside [%d, %d]", len(o.Text), len(obj.Text), len(obj.Text)+blocks)
	}
}
