package cfg

import "repro/internal/isa"

// WritesReg reports whether the instruction writes the given register.
func WritesReg(in Inst, reg uint32) bool { return writesReg(in, reg) }

// ReadsReg reports whether the instruction reads the given register.
func ReadsReg(in Inst, reg uint32) bool {
	if in.Raw || reg == isa.RegZero {
		return false
	}
	switch in.Format {
	case isa.FormatMem:
		if in.RB == reg {
			return true
		}
		// Stores read the register being stored.
		return (in.Op == isa.OpSTW || in.Op == isa.OpSTB) && in.RA == reg
	case isa.FormatBranch:
		// Conditional branches test RA; br/bsr write it instead.
		return isa.IsCondBranchOp(in.Op) && in.RA == reg
	case isa.FormatOpReg:
		return in.RA == reg || in.RB == reg
	case isa.FormatOpLit:
		return in.RA == reg
	case isa.FormatJump:
		return in.RB == reg
	case isa.FormatPal:
		switch in.Func {
		case isa.SysHALT, isa.SysPUTC:
			return reg == isa.RegA0
		case isa.SysGETC, isa.SysIMB:
			return false
		default:
			// setjmp/longjmp capture or restore the whole register file.
			return true
		}
	}
	return false
}

// TouchesReg reports whether the instruction reads or writes the register.
func TouchesReg(in Inst, reg uint32) bool {
	return ReadsReg(in, reg) || WritesReg(in, reg)
}
