package cfg

import (
	"testing"

	"repro/internal/asm"
)

func TestBackEdgesSimpleLoop(t *testing.T) {
	obj, err := asm.Assemble(`
        .text
        .func main
        li   t0, 10
loop:   sub  t0, 1, t0
        bgt  t0, loop
        clr  a0
        sys  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	edges := p.BackEdges()
	if len(edges) != 1 || edges[0].To != "loop" {
		t.Fatalf("edges = %+v", edges)
	}
}

func TestBackEdgesNestedAndMultiple(t *testing.T) {
	obj, err := asm.Assemble(`
        .text
        .func main
        li   t0, 3
outer:  li   t1, 4
inner:  sub  t1, 1, t1
        bgt  t1, inner
        sub  t0, 1, t0
        bgt  t0, outer
second: sys  getc
        bge  v0, second
        clr  a0
        sys  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	edges := p.BackEdges()
	heads := map[string]bool{}
	for _, e := range edges {
		heads[e.To] = true
	}
	if len(edges) != 3 || !heads["outer"] || !heads["inner"] || !heads["second"] {
		t.Fatalf("edges = %+v", edges)
	}
}

func TestBackEdgesAcyclic(t *testing.T) {
	obj, err := asm.Assemble(`
        .text
        .func main
        beq  v0, a
        nop
a:      beq  v0, b
        nop
b:      clr  a0
        sys  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if edges := p.BackEdges(); len(edges) != 0 {
		t.Fatalf("acyclic CFG has back edges: %+v", edges)
	}
}
