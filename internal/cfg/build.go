package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/parallel"
)

// Build lifts a relocatable object into a Program. The entry argument names
// the entry function (usually "main").
//
// Every text symbol starts a basic block; further block boundaries come from
// branch-relocation targets and from instructions that end blocks (branches,
// jumps, returns, halt/longjmp system calls, illegal words). Calls (bsr/jsr)
// do not end blocks. Jump tables are discovered from relocations: an
// indirect jmp is resolved if its block loads the address of a data symbol
// whose contents are consecutive word relocations to text symbols.
func Build(obj *objfile.Object, entry string) (*Program, error) {
	nWords := len(obj.Text)

	// Canonicalize symbols: group text symbols by word offset.
	type textSym struct {
		name string
		kind objfile.SymKind
	}
	textSymsAt := make(map[int][]textSym)
	var funcOffsets []int
	funcName := make(map[int]string)
	for _, s := range obj.Symbols {
		if s.Section != objfile.SecText {
			continue
		}
		if s.Offset%isa.WordSize != 0 {
			return nil, fmt.Errorf("cfg: misaligned text symbol %s at %#x", s.Name, s.Offset)
		}
		w := int(s.Offset) / isa.WordSize
		textSymsAt[w] = append(textSymsAt[w], textSym{s.Name, s.Kind})
		if s.Kind == objfile.SymFunc {
			if _, dup := funcName[w]; dup {
				return nil, fmt.Errorf("cfg: two functions at word %d (%s)", w, s.Name)
			}
			funcName[w] = s.Name
			funcOffsets = append(funcOffsets, w)
		}
	}
	sort.Ints(funcOffsets)
	if len(funcOffsets) == 0 || funcOffsets[0] != 0 {
		return nil, fmt.Errorf("cfg: text does not begin with a function symbol")
	}

	// Text relocations by word offset.
	textRelocAt := make(map[int]objfile.Reloc)
	for _, r := range obj.Relocs {
		if r.Section != objfile.SecText {
			continue
		}
		if r.Offset%isa.WordSize != 0 {
			return nil, fmt.Errorf("cfg: misaligned text relocation at %#x", r.Offset)
		}
		w := int(r.Offset) / isa.WordSize
		if _, dup := textRelocAt[w]; dup {
			return nil, fmt.Errorf("cfg: two relocations for word %d", w)
		}
		textRelocAt[w] = r
	}

	// Decode all instructions. Decoding is per word, so large texts are
	// split into chunks across CPUs; each chunk writes its own slice range,
	// and small inputs stay on the fast inline path.
	insts := make([]isa.Inst, nWords)
	_ = parallel.ForEachChunk(nWords, 0, 16384, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			insts[i] = isa.Decode(obj.Text[i])
		}
		return nil
	})

	// Leaders: function starts, every text symbol, instructions following
	// block-ending instructions.
	leader := make([]bool, nWords+1)
	for w := range textSymsAt {
		if w >= nWords {
			return nil, fmt.Errorf("cfg: text symbol beyond section end at word %d", w)
		}
		leader[w] = true
	}
	for i, in := range insts {
		if endsBlock(in) && i+1 <= nWords {
			leader[i+1] = true
		}
	}
	// Branch targets: symbolic; the target symbol's block is already a
	// leader because all text symbols are leaders. Reject branch relocs
	// with nonzero addends into code (never produced by the assembler).
	symSection := make(map[string]objfile.Section)
	for _, s := range obj.Symbols {
		symSection[s.Name] = s.Section
	}
	for w, r := range textRelocAt {
		if r.Kind == objfile.RelBrDisp21 {
			if r.Addend != 0 {
				return nil, fmt.Errorf("cfg: branch relocation with addend at word %d", w)
			}
			if symSection[r.Sym] != objfile.SecText {
				return nil, fmt.Errorf("cfg: branch at word %d targets data symbol %q", w, r.Sym)
			}
		}
	}

	// Canonical label per leader word: prefer the function symbol, then the
	// first label symbol, else a synthetic name (assigned per function
	// below). alias maps every text symbol to its canonical label.
	alias := make(map[string]string)

	// Build functions and blocks.
	p := &Program{
		Data:        append([]byte(nil), obj.Data...),
		Entry:       entry,
		DataSymbols: filterSymbols(obj.Symbols, objfile.SecData),
	}
	for fi, fw := range funcOffsets {
		endW := nWords
		if fi+1 < len(funcOffsets) {
			endW = funcOffsets[fi+1]
		}
		f := &Func{Name: funcName[fw]}
		var cur *Block
		for w := fw; w < endW; w++ {
			if leader[w] || cur == nil {
				label := ""
				for _, ts := range textSymsAt[w] {
					if ts.kind == objfile.SymFunc {
						label = ts.name
						break
					}
					if label == "" {
						label = ts.name
					}
				}
				if label == "" {
					label = fmt.Sprintf("%s$L%d", f.Name, w-fw)
				}
				for _, ts := range textSymsAt[w] {
					alias[ts.name] = label
				}
				cur = &Block{Label: label, SrcWordOff: w}
				f.Blocks = append(f.Blocks, cur)
			}
			ci := Inst{Inst: insts[w]}
			if insts[w].Format == isa.FormatIllegal {
				ci = RawWord(obj.Text[w])
			}
			if r, ok := textRelocAt[w]; ok {
				switch r.Kind {
				case objfile.RelBrDisp21:
					ci.Kind = TargetBranch
				case objfile.RelHi16:
					ci.Kind = TargetHi16
				case objfile.RelLo16:
					ci.Kind = TargetLo16
				case objfile.RelWord32:
					return nil, fmt.Errorf("cfg: word32 relocation in text at word %d unsupported", w)
				}
				ci.Target = r.Sym
				ci.Addend = r.Addend
			}
			cur.Insts = append(cur.Insts, ci)
			if endsBlock(insts[w]) {
				cur = nil
			}
		}
		if len(f.Blocks) == 0 {
			return nil, fmt.Errorf("cfg: function %s is empty", f.Name)
		}
		p.Funcs = append(p.Funcs, f)
	}

	// Canonicalize all symbol references, set fallthroughs, and resolve
	// jump tables.
	canon := func(sym string) string {
		if c, ok := alias[sym]; ok {
			return c
		}
		return sym // data symbol
	}
	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			for i := range b.Insts {
				if b.Insts[i].Kind != TargetNone {
					b.Insts[i].Target = canon(b.Insts[i].Target)
				}
			}
			if fallsThrough(b) {
				if bi+1 < len(f.Blocks) {
					b.FallsTo = f.Blocks[bi+1].Label
				} else {
					return nil, fmt.Errorf("cfg: control falls off the end of function %s", f.Name)
				}
			}
		}
	}
	p.DataRelocs = make([]objfile.Reloc, len(obj.Relocs))
	n := 0
	for _, r := range obj.Relocs {
		if r.Section == objfile.SecData {
			r.Sym = canon(r.Sym)
			p.DataRelocs[n] = r
			n++
		}
	}
	p.DataRelocs = p.DataRelocs[:n]

	if err := resolveJumpTables(p); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("cfg: lifted program invalid: %w", err)
	}
	return p, nil
}

func filterSymbols(syms []objfile.Symbol, sec objfile.Section) []objfile.Symbol {
	var out []objfile.Symbol
	for _, s := range syms {
		if s.Section == sec {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// endsBlock reports whether control cannot fall to the next instruction or
// the instruction is a control transfer that defines a block boundary.
// Conditional branches end blocks (two successors) but can fall through.
func endsBlock(in isa.Inst) bool {
	switch in.Format {
	case isa.FormatBranch:
		return in.Op != isa.OpBSR // calls continue the block
	case isa.FormatJump:
		return in.JFunc != isa.JmpJSR
	case isa.FormatPal:
		return in.Func == isa.SysHALT || in.Func == isa.SysLNGJMP
	case isa.FormatIllegal:
		return true
	}
	return false
}

// fallsThrough reports whether control can reach the instruction after the
// block's last instruction.
func fallsThrough(b *Block) bool {
	if len(b.Insts) == 0 {
		return true
	}
	last := b.Insts[len(b.Insts)-1]
	if last.Raw {
		return false
	}
	switch last.Format {
	case isa.FormatBranch:
		// Unconditional br never falls through; bsr and conditional
		// branches do.
		return last.Op != isa.OpBR
	case isa.FormatJump:
		return last.JFunc == isa.JmpJSR
	case isa.FormatPal:
		return last.Func != isa.SysHALT && last.Func != isa.SysLNGJMP
	}
	return true
}

// resolveJumpTables attaches a JumpTable to each block ending in an
// indirect jmp, when the table can be identified from relocations.
func resolveJumpTables(p *Program) error {
	// Index data relocations by offset and data symbols by name.
	relocAt := make(map[uint32]objfile.Reloc)
	for _, r := range p.DataRelocs {
		relocAt[r.Offset] = r
	}
	symOffset := make(map[string]uint32)
	offsets := make([]uint32, 0, len(p.DataSymbols))
	for _, s := range p.DataSymbols {
		symOffset[s.Name] = s.Offset
		offsets = append(offsets, s.Offset)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })

	labels := map[string]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			labels[b.Label] = true
		}
	}

	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if len(b.Insts) == 0 {
				continue
			}
			last := b.Insts[len(b.Insts)-1]
			if last.Raw || last.Format != isa.FormatJump || last.JFunc != isa.JmpJMP {
				continue
			}
			// Find the nearest preceding la pair whose data symbol holds a
			// table of code addresses.
			for i := len(b.Insts) - 2; i >= 0; i-- {
				in := b.Insts[i]
				if in.Kind != TargetLo16 {
					continue
				}
				base, ok := symOffset[in.Target]
				if !ok {
					continue
				}
				end := uint32(len(p.Data))
				idx := sort.Search(len(offsets), func(k int) bool { return offsets[k] > base })
				if idx < len(offsets) {
					end = offsets[idx]
				}
				var targets []string
				for off := base; off+4 <= end; off += 4 {
					r, ok := relocAt[off]
					if !ok || !labels[r.Sym] {
						break
					}
					targets = append(targets, r.Sym)
				}
				if len(targets) > 0 {
					b.JT = &JumpTable{Sym: in.Target, Targets: targets}
				}
				break
			}
		}
	}
	return nil
}

// AttachProfile sets Freq and Weight on every block from per-word execution
// counts gathered by running the image linked from the same object the
// program was built from. Freq is the maximum per-instruction count in the
// block (robust to mid-block reentry after longjmp); Weight is the total
// number of instruction executions the block contributed (paper, §5).
func (p *Program) AttachProfile(counts []uint64) error {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.SrcWordOff < 0 || b.SrcWordOff+len(b.Insts) > len(counts) {
				return fmt.Errorf("cfg: block %s [%d,%d) outside profile of %d words",
					b.Label, b.SrcWordOff, b.SrcWordOff+len(b.Insts), len(counts))
			}
			b.Freq, b.Weight = 0, 0
			for i := 0; i < len(b.Insts); i++ {
				c := counts[b.SrcWordOff+i]
				if c > b.Freq {
					b.Freq = c
				}
				b.Weight += c
			}
		}
	}
	return nil
}

// TotalWeight sums block weights: the total dynamic instruction count.
func (p *Program) TotalWeight() uint64 {
	var tot uint64
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			tot += b.Weight
		}
	}
	return tot
}
