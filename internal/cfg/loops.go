package cfg

// BackEdge is an intra-procedural control-flow edge whose target is an
// ancestor of its source in the depth-first spanning tree — the signature
// of a loop. The paper warns (§7) that the region partitioner "may split a
// loop into multiple regions", causing a decompression per iteration if the
// timing input drives the loop; squash uses these edges to diagnose that
// situation.
type BackEdge struct {
	From, To string // block labels; To is the loop header
}

// BackEdges finds the back edges of every function by iterative depth-first
// search over the intra-procedural successor graph. Unknown indirect jumps
// contribute no edges (their blocks are excluded from compression anyway).
func (p *Program) BackEdges() []BackEdge {
	var out []BackEdge
	for _, f := range p.Funcs {
		inFunc := map[string]*Block{}
		for _, b := range f.Blocks {
			inFunc[b.Label] = b
		}
		const (
			white = 0 // unvisited
			gray  = 1 // on the DFS stack
			black = 2 // done
		)
		color := map[string]int{}
		type frame struct {
			label string
			succs []string
			next  int
		}
		var stack []frame
		pushBlock := func(label string) {
			b := inFunc[label]
			succs, _ := b.Succs()
			var intra []string
			for _, s := range succs {
				if inFunc[s] != nil {
					intra = append(intra, s)
				}
			}
			color[label] = gray
			stack = append(stack, frame{label: label, succs: intra})
		}
		for _, root := range f.Blocks {
			if color[root.Label] != white {
				continue
			}
			pushBlock(root.Label)
			for len(stack) > 0 {
				fr := &stack[len(stack)-1]
				if fr.next < len(fr.succs) {
					s := fr.succs[fr.next]
					fr.next++
					switch color[s] {
					case white:
						pushBlock(s)
					case gray:
						out = append(out, BackEdge{From: fr.label, To: s})
					}
					continue
				}
				color[fr.label] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return out
}
