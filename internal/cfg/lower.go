package cfg

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/objfile"
)

// Lower converts a Program back into a relocatable object. Block order
// within a function and function order within the program are preserved.
// When a block's fallthrough successor is no longer the next block in
// layout (because intervening blocks were removed or moved), an explicit
// unconditional branch is inserted to preserve semantics.
//
// The returned object carries full symbol and relocation information, so
// the result can be lifted again by Build; Lower∘Build is semantics-
// preserving and Build∘Lower is the identity on canonical programs.
func Lower(p *Program) (*objfile.Object, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	obj := &objfile.Object{
		Data: append([]byte(nil), p.Data...),
	}
	for _, s := range p.DataSymbols {
		obj.Symbols = append(obj.Symbols, s)
	}
	for _, r := range p.DataRelocs {
		obj.Relocs = append(obj.Relocs, r)
	}

	here := func() uint32 { return uint32(len(obj.Text) * isa.WordSize) }
	emitReloc := func(kind objfile.RelocKind, sym string, addend int32) {
		obj.Relocs = append(obj.Relocs, objfile.Reloc{
			Section: objfile.SecText, Offset: here(), Kind: kind, Sym: sym, Addend: addend,
		})
	}

	for _, f := range p.Funcs {
		for bi, b := range f.Blocks {
			kind := objfile.SymLabel
			if bi == 0 {
				kind = objfile.SymFunc
			}
			obj.Symbols = append(obj.Symbols, objfile.Symbol{
				Name: b.Label, Section: objfile.SecText, Offset: here(), Kind: kind,
			})
			for _, in := range b.Insts {
				if in.Raw {
					obj.Text = append(obj.Text, in.RawVal)
					continue
				}
				switch in.Kind {
				case TargetBranch:
					emitReloc(objfile.RelBrDisp21, in.Target, in.Addend)
				case TargetHi16:
					emitReloc(objfile.RelHi16, in.Target, in.Addend)
				case TargetLo16:
					emitReloc(objfile.RelLo16, in.Target, in.Addend)
				}
				obj.Text = append(obj.Text, isa.Encode(in.Inst))
			}
			if b.FallsTo != "" {
				next := ""
				if bi+1 < len(f.Blocks) {
					next = f.Blocks[bi+1].Label
				}
				if next != b.FallsTo {
					emitReloc(objfile.RelBrDisp21, b.FallsTo, 0)
					obj.Text = append(obj.Text, isa.Encode(isa.Br(isa.OpBR, isa.RegZero, 0)))
				}
			}
		}
	}
	if len(obj.Text) == 0 {
		return nil, fmt.Errorf("cfg: lowering produced empty text")
	}
	return obj, nil
}

// LowerAndLink lowers the program and links it into an executable image.
func LowerAndLink(p *Program) (*objfile.Image, error) {
	obj, err := Lower(p)
	if err != nil {
		return nil, err
	}
	return objfile.Link(p.Entry, obj)
}
