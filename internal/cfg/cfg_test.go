package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/vm"
)

const switchProgram = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
loop:   sys  getc
        blt  v0, done
        sub  v0, 48, t0
        cmpult t0, 3, t1
        beq  t1, bad
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
case0:  li   a0, 122
        br   out
case1:  li   a0, 111
        br   out
case2:  bsr  ra, helper
        mov  v0, a0
        br   out
bad:    li   a0, 63
out:    sys  putc
        br   loop
done:   ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func helper
        li   v0, 116
        ret
        .func unused
        nop
        ret
        .data
table:  .word case0, case1, case2
after:  .word 7
`

func buildProgram(t *testing.T, src string) *Program {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildStructure(t *testing.T) {
	p := buildProgram(t, switchProgram)
	if len(p.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(p.Funcs))
	}
	main := p.FuncByName("main")
	if main == nil {
		t.Fatal("main not found")
	}
	// Blocks: main, loop, (after blt), (after beq), case0, case1, case2,
	// (after bsr? no - bsr does not end a block), bad, out, done.
	labels := map[string]*Block{}
	for _, b := range main.Blocks {
		labels[b.Label] = b
	}
	for _, want := range []string{"main", "loop", "case0", "case1", "case2", "bad", "out", "done"} {
		if labels[want] == nil {
			t.Errorf("missing block %q", want)
		}
	}
	// The jmp block has a resolved jump table.
	var jtBlock *Block
	for _, b := range main.Blocks {
		if b.JT != nil {
			jtBlock = b
		}
	}
	if jtBlock == nil {
		t.Fatal("jump table not resolved")
	}
	if len(jtBlock.JT.Targets) != 3 || jtBlock.JT.Targets[0] != "case0" || jtBlock.JT.Targets[2] != "case2" {
		t.Fatalf("jump table targets = %v", jtBlock.JT.Targets)
	}
	if jtBlock.JT.Sym != "table" {
		t.Fatalf("jump table sym = %q", jtBlock.JT.Sym)
	}

	// case2 contains a call to helper.
	calls := labels["case2"].Calls()
	if len(calls) != 1 || calls[0].Callee != "helper" || calls[0].Indirect {
		t.Fatalf("case2 calls = %+v", calls)
	}

	// Fallthroughs: loop block (ends in blt) falls through.
	if labels["loop"].FallsTo == "" {
		t.Error("loop should fall through")
	}
	// case0 ends with br: no fallthrough.
	if labels["case0"].FallsTo != "" {
		t.Errorf("case0 falls to %q, want none", labels["case0"].FallsTo)
	}
}

func TestSuccs(t *testing.T) {
	p := buildProgram(t, switchProgram)
	main := p.FuncByName("main")
	byLabel := map[string]*Block{}
	for _, b := range main.Blocks {
		byLabel[b.Label] = b
	}
	succs, known := byLabel["case0"].Succs()
	if !known || len(succs) != 1 || succs[0] != "out" {
		t.Errorf("case0 succs = %v (known=%v)", succs, known)
	}
	var jtBlock *Block
	for _, b := range main.Blocks {
		if b.JT != nil {
			jtBlock = b
		}
	}
	succs, known = jtBlock.Succs()
	if !known || len(succs) != 3 {
		t.Errorf("jump block succs = %v (known=%v)", succs, known)
	}
}

func TestRoundTripBehaviour(t *testing.T) {
	src := switchProgram
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im1, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	im2, err := LowerAndLink(p)
	if err != nil {
		t.Fatal(err)
	}
	input := []byte("0123210xy9")
	m1 := vm.New(im1, input)
	m2 := vm.New(im2, input)
	if err := m1.Run(); err != nil {
		t.Fatalf("original: %v", err)
	}
	if err := m2.Run(); err != nil {
		t.Fatalf("round-tripped: %v", err)
	}
	if string(m1.Output) != string(m2.Output) || m1.Status != m2.Status {
		t.Fatalf("behaviour differs: %q/%d vs %q/%d", m1.Output, m1.Status, m2.Output, m2.Status)
	}
	if string(m1.Output) != "zot?toz???" {
		t.Fatalf("output = %q", m1.Output)
	}
}

func TestLowerInsertsFallthroughBranch(t *testing.T) {
	p := buildProgram(t, `
        .text
        .func main
        beq v0, target
mid:    nop
target: clr a0
        sys halt
`)
	// Remove the mid block to force an explicit branch from main to target.
	main := p.FuncByName("main")
	main.Blocks[0].FallsTo = "target"
	var kept []*Block
	for _, b := range main.Blocks {
		if b.Label != "mid" {
			kept = append(kept, b)
		}
	}
	// Move target after another synthetic block so fallthrough is broken.
	main.Blocks = kept
	im, err := LowerAndLink(p)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im, nil)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Status != 0 {
		t.Fatalf("status = %d", m.Status)
	}
}

func TestAttachProfile(t *testing.T) {
	src := `
        .text
        .func main
loop:   sys  getc
        blt  v0, done
        mov  v0, a0
        sys  putc
        br   loop
done:   clr  a0
        sys  halt
`
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im, []byte("abc"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	p, err := Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AttachProfile(m.Profile); err != nil {
		t.Fatal(err)
	}
	main := p.FuncByName("main")
	var loop, done *Block
	for _, b := range main.Blocks {
		switch b.Label {
		case "loop", "main":
			loop = b
		case "done":
			done = b
		}
	}
	if loop.Freq != 4 { // 3 chars + EOF pass
		t.Errorf("loop freq = %d, want 4", loop.Freq)
	}
	if done.Freq != 1 {
		t.Errorf("done freq = %d, want 1", done.Freq)
	}
	if p.TotalWeight() != m.Instructions {
		t.Errorf("TotalWeight = %d, machine executed %d", p.TotalWeight(), m.Instructions)
	}
}

func TestCallsSetjmp(t *testing.T) {
	p := buildProgram(t, `
        .text
        .func main
        sys  setjmp
        clr  a0
        sys  halt
        .func other
        ret
`)
	if !p.FuncByName("main").CallsSetjmp() {
		t.Error("main should be detected as calling setjmp")
	}
	if p.FuncByName("other").CallsSetjmp() {
		t.Error("other does not call setjmp")
	}
}

func TestIndirectCallResolution(t *testing.T) {
	p := buildProgram(t, `
        .text
        .func main
        la   pv, helper
        jsr  ra, (pv)
        clr  a0
        sys  halt
        .func helper
        ret
`)
	calls := p.FuncByName("main").Blocks[0].Calls()
	if len(calls) != 1 || !calls[0].Indirect || calls[0].Callee != "helper" {
		t.Fatalf("calls = %+v", calls)
	}
}

func TestValidateCatchesBadTarget(t *testing.T) {
	p := buildProgram(t, `
        .text
        .func main
        clr a0
        sys halt
`)
	p.Funcs[0].Blocks[0].Insts[0].Kind = TargetBranch
	p.Funcs[0].Blocks[0].Insts[0].Target = "nowhere"
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted undefined target")
	}
}

func TestBuildRejectsFallOffFunction(t *testing.T) {
	obj, err := asm.Assemble(`
        .text
        .func main
        nop
        .func next
        sys halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(obj, "main"); err == nil {
		t.Fatal("Build accepted control falling off function end")
	}
}
