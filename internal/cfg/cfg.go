// Package cfg provides the control-flow-graph program representation used
// by the binary-rewriting tools (squeeze and squash). A Program is lifted
// from a relocatable object — using the retained relocation information to
// distinguish code addresses from data, as the paper's infrastructure
// requires — transformed, and lowered back to an object for linking.
package cfg

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/objfile"
)

// TargetKind says how an instruction references a symbol.
type TargetKind uint8

const (
	// TargetNone: the instruction references no symbol.
	TargetNone TargetKind = iota
	// TargetBranch: branch-format displacement to a code label.
	TargetBranch
	// TargetHi16 / TargetLo16: address-materialization halves (la pairs).
	TargetHi16
	TargetLo16
)

// Inst is one instruction plus its symbolic reference, if any. Raw entries
// carry a literal word (used for stub tag words and reserved regions).
type Inst struct {
	isa.Inst
	Kind   TargetKind
	Target string // symbol name for Kind != TargetNone
	Addend int32  // added to the symbol address (branch targets into tables)

	Raw    bool // emit RawVal verbatim instead of encoding Inst
	RawVal uint32
}

// RawWord builds a literal text word (not a real instruction).
func RawWord(v uint32) Inst { return Inst{Raw: true, RawVal: v} }

// JumpTable describes a resolved indirect jump through a table of code
// addresses in the data section.
type JumpTable struct {
	Sym     string   // data symbol at which the table starts
	Targets []string // block labels, in table order
}

// Block is a basic block.
type Block struct {
	Label string // program-unique
	Insts []Inst

	// FallsTo names the successor reached by falling off the end of the
	// block; empty when the last instruction transfers control
	// unconditionally (br, jmp, ret, halt, longjmp, illegal).
	FallsTo string

	// JT is attached to a block ending in an indirect jmp whose table was
	// discovered via relocations; nil means the jump's targets are unknown.
	JT *JumpTable

	// SrcWordOff is the block's first-instruction word offset in the object
	// the program was built from (provenance for profile attachment).
	SrcWordOff int

	// Freq and Weight are filled by profile attachment: Freq is the
	// execution count of the block, Weight is the total instructions the
	// block contributed at runtime (paper, §5).
	Freq   uint64
	Weight uint64
}

// NumInsts reports the block size in instructions.
func (b *Block) NumInsts() int { return len(b.Insts) }

// Func is a function: a named sequence of basic blocks. Blocks[0] is the
// entry block and its label equals the function name.
type Func struct {
	Name   string
	Blocks []*Block
}

// Program is the whole-program IR.
type Program struct {
	Funcs []*Func
	Data  []byte
	// DataSymbols and DataRelocs describe the data section symbolically so
	// that rewriting stages can retarget code addresses stored in data
	// (jump tables, function pointers).
	DataSymbols []objfile.Symbol
	DataRelocs  []objfile.Reloc
	Entry       string
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Func {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// BlockByLabel returns the block with the given label, or nil.
func (p *Program) BlockByLabel(label string) *Block {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Label == label {
				return b
			}
		}
	}
	return nil
}

// NumInsts reports the total instruction count over all blocks.
func (p *Program) NumInsts() int {
	n := 0
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Insts)
		}
	}
	return n
}

// Succs reports the labels of b's intra-procedural control-flow successors.
// The second result is false when the block ends in an indirect jump whose
// targets could not be resolved (no jump table found), meaning the true
// successor set is unknown.
func (b *Block) Succs() ([]string, bool) {
	var out []string
	known := true
	if n := len(b.Insts); n > 0 {
		last := b.Insts[n-1]
		switch {
		case last.Raw:
			// Raw words (sentinels, tags) never fall through.
		case last.Format == isa.FormatBranch:
			if last.Kind == TargetBranch && last.Op != isa.OpBSR {
				out = append(out, last.Target)
			}
		case last.Format == isa.FormatJump:
			if last.JFunc == isa.JmpJMP {
				if b.JT != nil {
					out = append(out, b.JT.Targets...)
				} else {
					known = false
				}
			}
			// ret and jsr add no intra-procedural successors here (a jsr
			// mid-block would not terminate the block anyway).
		}
	}
	if b.FallsTo != "" {
		out = append(out, b.FallsTo)
	}
	return out, known
}

// CallSite is a function call within a block.
type CallSite struct {
	InstIdx  int
	Callee   string // callee symbol; empty for unresolved indirect calls
	Indirect bool
}

// Calls reports the call sites in b: every bsr, and every jsr. A jsr
// immediately preceded by `la pv, f` within the block is resolved to f.
func (b *Block) Calls() []CallSite {
	var out []CallSite
	for i, in := range b.Insts {
		if in.Raw {
			continue
		}
		switch {
		case in.Format == isa.FormatBranch && in.Op == isa.OpBSR:
			out = append(out, CallSite{InstIdx: i, Callee: in.Target})
		case in.Format == isa.FormatJump && in.JFunc == isa.JmpJSR:
			cs := CallSite{InstIdx: i, Indirect: true}
			if sym, ok := b.laTargetBefore(i, in.RB); ok {
				cs.Callee = sym
			}
			out = append(out, cs)
		}
	}
	return out
}

// laTargetBefore scans backwards from instruction idx for the la pair that
// most recently loaded register reg, returning its symbol.
func (b *Block) laTargetBefore(idx int, reg uint32) (string, bool) {
	for i := idx - 1; i > 0; i-- {
		lo := b.Insts[i]
		hi := b.Insts[i-1]
		if lo.Kind == TargetLo16 && lo.RA == reg &&
			hi.Kind == TargetHi16 && hi.RA == reg && hi.Target == lo.Target {
			return lo.Target, true
		}
		// A later write to reg invalidates earlier definitions.
		if writesReg(b.Insts[i], reg) {
			return "", false
		}
	}
	return "", false
}

func writesReg(in Inst, reg uint32) bool {
	if in.Raw || reg == isa.RegZero {
		return false
	}
	switch in.Format {
	case isa.FormatMem:
		return (in.Op == isa.OpLDA || in.Op == isa.OpLDAH || in.Op == isa.OpLDW || in.Op == isa.OpLDB) && in.RA == reg
	case isa.FormatBranch:
		return (in.Op == isa.OpBR || in.Op == isa.OpBSR) && in.RA == reg
	case isa.FormatOpReg, isa.FormatOpLit:
		return in.RC == reg
	case isa.FormatJump:
		return in.RA == reg
	case isa.FormatPal:
		switch in.Func {
		case isa.SysGETC, isa.SysSETJMP:
			return reg == isa.RegV0
		case isa.SysLNGJMP:
			return true // restores the whole register file
		}
	}
	return false
}

// CallsSetjmp reports whether any block of f performs the setjmp system
// call; such functions are never compressed (paper, §2.2).
func (f *Func) CallsSetjmp() bool {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			if !in.Raw && in.Format == isa.FormatPal && in.Func == isa.SysSETJMP {
				return true
			}
		}
	}
	return false
}

// Validate checks structural invariants: unique labels, entry block naming,
// resolvable branch targets and fallthroughs.
func (p *Program) Validate() error {
	labels := map[string]bool{}
	for _, f := range p.Funcs {
		if len(f.Blocks) == 0 {
			return fmt.Errorf("cfg: function %s has no blocks", f.Name)
		}
		if f.Blocks[0].Label != f.Name {
			return fmt.Errorf("cfg: function %s entry block labelled %s", f.Name, f.Blocks[0].Label)
		}
		for _, b := range f.Blocks {
			if labels[b.Label] {
				return fmt.Errorf("cfg: duplicate label %s", b.Label)
			}
			labels[b.Label] = true
		}
	}
	dataSyms := map[string]bool{}
	for _, s := range p.DataSymbols {
		dataSyms[s.Name] = true
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Insts {
				if in.Kind == TargetNone {
					continue
				}
				if !labels[in.Target] && !dataSyms[in.Target] {
					return fmt.Errorf("cfg: block %s references undefined symbol %q", b.Label, in.Target)
				}
			}
			if b.FallsTo != "" && !labels[b.FallsTo] {
				return fmt.Errorf("cfg: block %s falls through to undefined label %q", b.Label, b.FallsTo)
			}
		}
	}
	if p.Entry != "" && !labels[p.Entry] {
		return fmt.Errorf("cfg: entry %q not defined", p.Entry)
	}
	return nil
}
