package benchhist

import (
	"strings"
	"testing"
)

const benchmemOut = `
goos: linux
BenchmarkBitIOAlloc/pooled-8         	  10000	   4500 ns/op	      1 B/op	      0 allocs/op
BenchmarkBitIOAlloc/fresh-8          	  10000	   4300 ns/op	    560 B/op	      5 allocs/op
BenchmarkBitIOAlloc/pooled-8         	  10000	   4400 ns/op	      1 B/op	      0 allocs/op
BenchmarkBitIOAlloc/fresh-8          	  10000	   4350 ns/op	    560 B/op	      6 allocs/op
PASS
`

func testGates() []AllocGate {
	return []AllocGate{{
		Name:   "bitio",
		Pooled: "BenchmarkBitIOAlloc/pooled", Fresh: "BenchmarkBitIOAlloc/fresh",
		MaxPooledAllocs: 1, MinRatio: 4,
	}}
}

func TestParseMetricAllocs(t *testing.T) {
	allocs, err := ParseMetric(strings.NewReader(benchmemOut), "allocs/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := allocs["BenchmarkBitIOAlloc/fresh"]; len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("fresh allocs/op samples = %v, want [5 6]", got)
	}
	bytes, err := ParseMetric(strings.NewReader(benchmemOut), "B/op")
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes["BenchmarkBitIOAlloc/pooled"]; len(got) != 2 || got[0] != 1 {
		t.Fatalf("pooled B/op samples = %v, want [1 1]", got)
	}
}

func TestAllocEntriesAndCheck(t *testing.T) {
	allocs, _ := ParseMetric(strings.NewReader(benchmemOut), "allocs/op")
	bytes, _ := ParseMetric(strings.NewReader(benchmemOut), "B/op")
	entries, err := AllocEntries(allocs, bytes, testGates(), "abc", "2026-08-09")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"bitio-allocs-pooled": 0, "bitio-allocs-fresh": 5.5,
		"bitio-bytes-pooled": 1, "bitio-bytes-fresh": 560,
	}
	if len(entries) != len(want) {
		t.Fatalf("got %d entries, want %d", len(entries), len(want))
	}
	for _, e := range entries {
		v, ok := want[e.Benchmark]
		if !ok {
			t.Fatalf("unexpected entry %q", e.Benchmark)
		}
		if e.Value != v {
			t.Errorf("%s = %v, want %v", e.Benchmark, e.Value, v)
		}
		if e.Unit != "allocs/op" && e.Unit != "B/op" {
			t.Errorf("%s has unit %q", e.Benchmark, e.Unit)
		}
	}
	if err := CheckAllocs(allocs, testGates()); err != nil {
		t.Fatalf("CheckAllocs on healthy samples: %v", err)
	}
}

func TestCheckAllocsFailures(t *testing.T) {
	// Pooled path regressed to 3 allocs/op: the ceiling must trip, and with
	// fresh at 6 the 4x ratio floor must trip too.
	allocs := map[string][]float64{
		"BenchmarkBitIOAlloc/pooled": {3},
		"BenchmarkBitIOAlloc/fresh":  {6},
	}
	err := CheckAllocs(allocs, testGates())
	if err == nil {
		t.Fatal("CheckAllocs passed a pooled regression")
	}
	if !strings.Contains(err.Error(), "ceiling") || !strings.Contains(err.Error(), "stopped paying off") {
		t.Fatalf("error missing ceiling/ratio detail: %v", err)
	}

	// A missing gated benchmark is a failure, not a skip.
	if err := CheckAllocs(map[string][]float64{}, testGates()); err == nil {
		t.Fatal("CheckAllocs passed with no samples")
	}
}

func TestAllocEntriesMissingBenchmark(t *testing.T) {
	allocs := map[string][]float64{"BenchmarkBitIOAlloc/pooled": {0}}
	if _, err := AllocEntries(allocs, nil, testGates(), "abc", "2026-08-09"); err == nil {
		t.Fatal("AllocEntries tolerated a missing fresh benchmark")
	}
	// Absent B/op columns are tolerated (benchmem output without -benchmem
	// B/op is impossible in practice, but gates must not hard-require it).
	full := map[string][]float64{
		"BenchmarkBitIOAlloc/pooled": {0},
		"BenchmarkBitIOAlloc/fresh":  {5},
	}
	entries, err := AllocEntries(full, map[string][]float64{}, testGates(), "abc", "2026-08-09")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries without B/op, want 2", len(entries))
	}
}
