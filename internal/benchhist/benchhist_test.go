package benchhist

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/vm
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkVMStep/fast-8         	201182786	         5.90 ns/op
BenchmarkVMStep/fast-8         	202000000	         6.10 ns/op
BenchmarkVMStep/fast-8         	198000000	         5.80 ns/op
BenchmarkVMStep/slow-8         	 93070840	        12.77 ns/op
BenchmarkVMStep/slow-8         	 92000000	        13.03 ns/op
BenchmarkVMStep/slow-8         	 95000000	        12.50 ns/op
BenchmarkHuffmanDecode/table-8 	126620407	         9.33 ns/op	 107.20 MB/s
BenchmarkHuffmanDecode/tree-8  	 28580395	        42.07 ns/op	  23.77 MB/s
PASS
ok  	repro/internal/vm	12.290s
`

func TestParseNsPerOp(t *testing.T) {
	samples, err := ParseNsPerOp(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(samples["BenchmarkVMStep/fast"]); got != 3 {
		t.Fatalf("fast samples = %d, want 3 (got map %v)", got, samples)
	}
	if got := samples["BenchmarkHuffmanDecode/tree"]; len(got) != 1 || got[0] != 42.07 {
		t.Fatalf("tree samples = %v", got)
	}
	if _, ok := samples["BenchmarkVMStep/fast-8"]; ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
}

// TestParseNsPerOpSuffixShapes: the GOMAXPROCS suffix is appended to every
// benchmark line of a run (and to none at GOMAXPROCS=1), so it must be
// identified across the whole input — a leaf name ending in -<digits> is
// part of the benchmark's identity, not a suffix to strip.
func TestParseNsPerOpSuffixShapes(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  map[string]int // benchmark name -> sample count
	}{
		{
			name: "gomaxprocs 8, plain leaves",
			input: "BenchmarkVMStep/fast-8 100 5.0 ns/op\n" +
				"BenchmarkVMStep/slow-8 100 10.0 ns/op\n",
			want: map[string]int{"BenchmarkVMStep/fast": 1, "BenchmarkVMStep/slow": 1},
		},
		{
			name: "gomaxprocs 8, digit leaf keeps its digits",
			input: "BenchmarkFoo/size-128-8 100 5.0 ns/op\n" +
				"BenchmarkFoo/size-256-8 100 6.0 ns/op\n" +
				"BenchmarkBar-8 100 7.0 ns/op\n",
			want: map[string]int{"BenchmarkFoo/size-128": 1, "BenchmarkFoo/size-256": 1, "BenchmarkBar": 1},
		},
		{
			name: "gomaxprocs 1, digit leaf not merged",
			input: "BenchmarkFoo/size-128 100 5.0 ns/op\n" +
				"BenchmarkFoo/size 100 6.0 ns/op\n" +
				"BenchmarkBar 100 7.0 ns/op\n",
			want: map[string]int{"BenchmarkFoo/size-128": 1, "BenchmarkFoo/size": 1, "BenchmarkBar": 1},
		},
		{
			name: "gomaxprocs 1 with -count 2, digit leaf accumulates alone",
			input: "BenchmarkFoo/size-128 100 5.0 ns/op\n" +
				"BenchmarkFoo/size-128 100 5.5 ns/op\n" +
				"BenchmarkBar 100 7.0 ns/op\n",
			want: map[string]int{"BenchmarkFoo/size-128": 2, "BenchmarkBar": 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples, err := ParseNsPerOp(strings.NewReader(tc.input))
			if err != nil {
				t.Fatal(err)
			}
			if len(samples) != len(tc.want) {
				t.Fatalf("got names %v, want %v", samples, tc.want)
			}
			for name, n := range tc.want {
				if got := len(samples[name]); got != n {
					t.Errorf("%s: %d samples, want %d (map %v)", name, got, n, samples)
				}
			}
		})
	}
}

func TestRatiosAndCheck(t *testing.T) {
	samples, err := ParseNsPerOp(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	pairs := []Pair{
		{Name: "vm-step", Fast: "BenchmarkVMStep/fast", Slow: "BenchmarkVMStep/slow", Min: 1.3},
		{Name: "huffman-decode", Fast: "BenchmarkHuffmanDecode/table", Slow: "BenchmarkHuffmanDecode/tree", Min: 2.0},
	}
	entries, err := Ratios(samples, pairs, "abc123", "2026-08-05")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	// Medians: fast 5.90, slow 12.77 → ratio ~2.164.
	if r := entries[0].Ratio; r < 2.1 || r > 2.2 {
		t.Fatalf("vm-step ratio %.3f", r)
	}
	if entries[0].Commit != "abc123" || entries[0].Date != "2026-08-05" || entries[0].Benchmark != "vm-step" {
		t.Fatalf("entry metadata: %+v", entries[0])
	}
	if err := Check(entries, pairs); err != nil {
		t.Fatalf("Check on healthy ratios: %v", err)
	}
	strict := []Pair{{Name: "vm-step", Min: 5.0}}
	if err := Check(entries, strict); err == nil {
		t.Fatal("Check missed a regression")
	}

	missing := append(pairs, Pair{Name: "ghost", Fast: "BenchmarkGhost/fast", Slow: "BenchmarkGhost/slow", Min: 1})
	if _, err := Ratios(samples, missing, "c", "d"); err == nil {
		t.Fatal("missing benchmark accepted")
	}
}

func TestAppendRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	if entries, err := Read(path); err != nil || entries != nil {
		t.Fatalf("missing history: %v, %v", entries, err)
	}
	first := []Entry{{Commit: "aaa", Date: "2026-08-01", Benchmark: "vm-step", Ratio: 2.1}}
	if err := Append(path, first); err != nil {
		t.Fatal(err)
	}
	second := []Entry{
		{Commit: "bbb", Date: "2026-08-05", Benchmark: "vm-step", Ratio: 2.2},
		{Commit: "bbb", Date: "2026-08-05", Benchmark: "huffman-decode", Ratio: 4.4},
	}
	if err := Append(path, second); err != nil {
		t.Fatal(err)
	}
	all, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("history has %d entries, want 3", len(all))
	}
	if all[0].Commit != "aaa" || all[2].Benchmark != "huffman-decode" {
		t.Fatalf("history order wrong: %+v", all)
	}
}

// TestAppendDedupsRerunCommit: a re-run CI job appending the same commit's
// ratios again must replace the old entries, not double them; other commits
// and other benchmarks of the same commit stay untouched.
func TestAppendDedupsRerunCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_history.json")
	if err := Append(path, []Entry{
		{Commit: "aaa", Date: "2026-08-01", Benchmark: "vm-step", Ratio: 2.0},
		{Commit: "bbb", Date: "2026-08-05", Benchmark: "vm-step", Ratio: 2.1},
		{Commit: "bbb", Date: "2026-08-05", Benchmark: "huffman-decode", Ratio: 4.4},
	}); err != nil {
		t.Fatal(err)
	}
	// Re-run of commit bbb's vm-step pair with a fresher ratio.
	if err := Append(path, []Entry{
		{Commit: "bbb", Date: "2026-08-05", Benchmark: "vm-step", Ratio: 2.3},
	}); err != nil {
		t.Fatal(err)
	}
	all, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("re-run doubled the history: %d entries, want 3 (%+v)", len(all), all)
	}
	seen := 0
	for _, e := range all {
		if e.Commit == "bbb" && e.Benchmark == "vm-step" {
			seen++
			if e.Ratio != 2.3 {
				t.Fatalf("stale ratio survived: %+v", e)
			}
		}
	}
	if seen != 1 {
		t.Fatalf("%d (bbb, vm-step) entries, want 1", seen)
	}
	// Untouched pairs survive.
	if all[0].Commit != "aaa" || all[0].Ratio != 2.0 {
		t.Fatalf("unrelated entry disturbed: %+v", all[0])
	}
}

func TestDefaultPairsCoverFastPaths(t *testing.T) {
	names := map[string]bool{}
	for _, p := range DefaultPairs() {
		if p.Min <= 1.0 {
			t.Errorf("%s: floor %.2f would accept a fast path slower than the reference", p.Name, p.Min)
		}
		if names[p.Name] {
			t.Errorf("duplicate pair %s", p.Name)
		}
		names[p.Name] = true
	}
	for _, want := range []string{"vm-step", "huffman-decode", "region-decompress", "interp-region-exec", "lz-decode-adpcm", "lz-decode-dictheavy"} {
		if !names[want] {
			t.Errorf("pair %s missing", want)
		}
	}
}
