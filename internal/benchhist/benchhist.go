// Package benchhist turns `go test -bench` output into a per-commit history
// of paired fast/slow speedup ratios. The fast-path engine's benchmarks run
// both implementations in one process (BenchmarkVMStep/{fast,slow},
// BenchmarkHuffmanDecode/{table,tree}, ...), so the within-process ratio is
// robust to machine-load noise even on shared CI runners; this package
// extracts those ratios, appends them to BENCH_history.json (one entry per
// commit × benchmark), and fails when a ratio regresses past its floor —
// replacing the one-shot snapshot + manual benchstat workflow.
package benchhist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Pair names one fast/slow benchmark pairing and the minimum acceptable
// speedup (median slow ns/op over median fast ns/op).
type Pair struct {
	// Name identifies the pair in history entries and reports.
	Name string
	// Fast and Slow are benchmark names as printed by `go test -bench`,
	// without the -GOMAXPROCS suffix.
	Fast string
	Slow string
	// Min is the ratio floor: the CI gate fails below it. Floors sit well
	// under the measured ratios so load noise does not flake the job, but
	// above 1.0 by enough margin to catch a fast path that quietly stopped
	// being fast.
	Min float64
}

// DefaultPairs covers every fast path the engine ships. Measured ratios on
// the development machine are noted for scale; floors are deliberately
// loose (roughly half or less).
func DefaultPairs() []Pair {
	return []Pair{
		// Predecoded µop dispatch vs decode-every-step (~2.2x measured).
		{Name: "vm-step", Fast: "BenchmarkVMStep/fast", Slow: "BenchmarkVMStep/slow", Min: 1.3},
		// Table-driven canonical Huffman vs the paper's DECODE() loop (~4.6x).
		{Name: "huffman-decode", Fast: "BenchmarkHuffmanDecode/table", Slow: "BenchmarkHuffmanDecode/tree", Min: 2.0},
		// Memoized region fill vs fresh split-stream decode (~27x).
		{Name: "region-decompress", Fast: "BenchmarkRegionDecompress/memo", Slow: "BenchmarkRegionDecompress/decode", Min: 8.0},
		// Interp-in-place region visit: decoded-instruction memo vs
		// re-decoding the region per entry (~65x).
		{Name: "interp-region-exec", Fast: "BenchmarkInterpRegionExec/memo", Slow: "BenchmarkInterpRegionExec/decode", Min: 3.0},
		// LZ token decode on real code (raw escapes shared by both paths
		// dilute the pair, ~1.5x) and on the codeword-bound corpus (~3x).
		{Name: "lz-decode-adpcm", Fast: "BenchmarkLZDecode/adpcm/table", Slow: "BenchmarkLZDecode/adpcm/tree", Min: 1.2},
		{Name: "lz-decode-dictheavy", Fast: "BenchmarkLZDecode/dictheavy/table", Slow: "BenchmarkLZDecode/dictheavy/tree", Min: 2.0},
	}
}

// Entry is one history record at one commit: either the ratio a fast/slow
// benchmark pair achieved (Ratio set) or an absolute service-level metric
// from a squashload report (Value and Unit set). Ratio is omitempty so
// load entries don't carry a meaningless zero ratio; pair ratios are
// always positive, so existing history files round-trip unchanged.
type Entry struct {
	Commit    string  `json:"commit"`
	Date      string  `json:"date"`
	Benchmark string  `json:"benchmark"`
	Ratio     float64 `json:"ratio,omitempty"`
	Value     float64 `json:"value,omitempty"`
	Unit      string  `json:"unit,omitempty"`
}

// ParseNsPerOp extracts ns/op samples from `go test -bench` text output.
// Sub-benchmark names keep their slashes, and repeated runs (-count N)
// accumulate as samples.
//
// The trailing -GOMAXPROCS suffix is stripped, but only when it really is
// the GOMAXPROCS suffix: `go test` appends the same `-N` to *every*
// benchmark line of a run (and appends nothing at GOMAXPROCS=1), whereas a
// sub-benchmark whose leaf name itself ends in `-<digits>`
// (BenchmarkFoo/size-128) carries its digits on just its own lines. So the
// suffix is identified across the whole input first — it is stripped only
// if every benchmark line ends in the same `-N` — instead of blindly
// cutting at the last dash per line, which used to merge
// `BenchmarkFoo/size-128` at GOMAXPROCS=1 into `BenchmarkFoo/size`.
func ParseNsPerOp(r io.Reader) (map[string][]float64, error) {
	return ParseMetric(r, "ns/op")
}

// ParseMetric extracts samples of one benchmark metric (by its unit column:
// "ns/op", "allocs/op", "B/op", ...) from `go test -bench` output, with the
// same sub-benchmark and GOMAXPROCS-suffix handling as ParseNsPerOp.
func ParseMetric(r io.Reader, unit string) (map[string][]float64, error) {
	type sample struct {
		name string
		v    float64
	}
	var samples []sample
	suffix := ""    // trailing -N shared by all lines so far ("" = none)
	uniform := true // every line seen ends in the same -N
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		// Benchmark lines: name, iterations, value, "ns/op", [more metrics].
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		var val float64
		found := false
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != unit {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchhist: bad %s %q for %s", unit, fields[i], name)
			}
			val = v
			found = true
			break
		}
		if !found {
			continue
		}
		cand := ""
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				cand = name[i:]
			}
		}
		if len(samples) == 0 {
			suffix = cand
		} else if cand != suffix {
			uniform = false
		}
		samples = append(samples, sample{name, val})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := map[string][]float64{}
	for _, s := range samples {
		name := s.name
		if uniform && suffix != "" {
			name = strings.TrimSuffix(name, suffix)
		}
		out[name] = append(out[name], s.v)
	}
	return out, nil
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Ratios computes each pair's speedup (median slow over median fast) from
// parsed samples. Every pair must be present: a missing benchmark means the
// bench run silently dropped a fast path, which is itself a regression.
func Ratios(samples map[string][]float64, pairs []Pair, commit, date string) ([]Entry, error) {
	var entries []Entry
	for _, p := range pairs {
		fast, ok := samples[p.Fast]
		if !ok {
			return nil, fmt.Errorf("benchhist: no samples for %s (pair %s)", p.Fast, p.Name)
		}
		slow, ok := samples[p.Slow]
		if !ok {
			return nil, fmt.Errorf("benchhist: no samples for %s (pair %s)", p.Slow, p.Name)
		}
		mf := median(fast)
		if mf <= 0 {
			return nil, fmt.Errorf("benchhist: nonpositive ns/op for %s", p.Fast)
		}
		entries = append(entries, Entry{
			Commit:    commit,
			Date:      date,
			Benchmark: p.Name,
			Ratio:     median(slow) / mf,
		})
	}
	return entries, nil
}

// Check enforces each pair's ratio floor over freshly computed entries.
func Check(entries []Entry, pairs []Pair) error {
	min := map[string]float64{}
	for _, p := range pairs {
		min[p.Name] = p.Min
	}
	var fails []string
	for _, e := range entries {
		if floor, ok := min[e.Benchmark]; ok && e.Ratio < floor {
			fails = append(fails, fmt.Sprintf("%s: ratio %.2f below floor %.2f", e.Benchmark, e.Ratio, floor))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchhist: speedup regression:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}

// Read loads a history file; a missing file is an empty history.
func Read(path string) ([]Entry, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []Entry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("benchhist: %s: %w", path, err)
	}
	return entries, nil
}

// Append adds entries to the history file, creating it if absent. Existing
// entries for the same (commit, benchmark) pair are replaced, so a re-run CI
// job overwrites its commit's ratios instead of doubling them.
func Append(path string, entries []Entry) error {
	history, err := Read(path)
	if err != nil {
		return err
	}
	replacing := map[[2]string]bool{}
	for _, e := range entries {
		replacing[[2]string{e.Commit, e.Benchmark}] = true
	}
	kept := history[:0]
	for _, e := range history {
		if !replacing[[2]string{e.Commit, e.Benchmark}] {
			kept = append(kept, e)
		}
	}
	history = append(kept, entries...)
	data, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
