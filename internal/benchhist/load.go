package benchhist

// This file is the throughput half of the benchmark history: load-report
// ingestion. cmd/squashload measures a live squashd under replayed or
// synthetic load and emits a JSON report; the functions here pull the gated
// metrics out of that report, append them to BENCH_history.json next to the
// fast-path pair ratios, and enforce per-metric floors and ceilings so a
// service-level regression (req/s collapse, p99 blow-up, requests erroring)
// trips CI the same way a lost microbenchmark speedup does.

import (
	"encoding/json"
	"fmt"
	"strings"
)

// LoadGate bounds one metric of a squashload report. Field is the dotted
// JSON path into the report ("req_per_sec", "latency_ms.p99"); HasMin/
// HasMax say which bounds apply — zero is a legitimate bound (the error
// ceiling), so presence is explicit rather than sentinel-valued.
type LoadGate struct {
	Name   string // history entry name, e.g. "load-req-s"
	Field  string // dotted path into the report JSON
	Unit   string
	Min    float64
	HasMin bool
	Max    float64
	HasMax bool
}

// DefaultLoadGates covers the load-smoke CI job: a replay of a recorded
// warm-daemon stream. Floors and ceilings are deliberately loose — CI
// runners are noisy and the smoke stream is short — but tight enough that
// a collapsed cache (every request recomputing), a stalled worker pool, or
// failing requests cannot pass.
func DefaultLoadGates() []LoadGate {
	return []LoadGate{
		// The smoke replays its stream at 2x recorded rate; a healthy warm
		// daemon tracks the offered rate. Measured ~20-40 req/s locally.
		{Name: "load-req-s", Field: "req_per_sec", Unit: "req/s", Min: 3, HasMin: true},
		// Warm-cache responses are single-digit ms; the first misses run
		// the full pipeline. Ceilings catch order-of-magnitude blow-ups,
		// not jitter. Measured p50 ~1ms, p99 ~50ms locally.
		{Name: "load-p50-ms", Field: "latency_ms.p50", Unit: "ms", Max: 2000, HasMax: true},
		{Name: "load-p99-ms", Field: "latency_ms.p99", Unit: "ms", Max: 10000, HasMax: true},
		// Replaying a recorded stream re-requests content the daemon has
		// seen; the warm caches must absorb most of it.
		{Name: "load-cache-hit", Field: "cache_hit_rate", Unit: "rate", Min: 0.2, HasMin: true},
		// No request of the replay may fail.
		{Name: "load-errors", Field: "errors", Unit: "count", Max: 0, HasMax: true},
		// Wire throughput across the load connections. Recorded without
		// bounds: the value tracks codec efficiency per commit (v2 dropped
		// the ~33% base64 inflation), but absolute B/s on a shared CI
		// runner is too noisy to gate.
		{Name: "load-bytes-in-s", Field: "bytes_in_per_sec", Unit: "B/s"},
		{Name: "load-bytes-out-s", Field: "bytes_out_per_sec", Unit: "B/s"},
	}
}

// LoadEntries extracts each gate's metric from a squashload JSON report as
// history entries. A gated field missing from the report is an error: a
// silently absent metric would make every future regression invisible.
func LoadEntries(report []byte, gates []LoadGate, commit, date string) ([]Entry, error) {
	var doc map[string]any
	if err := json.Unmarshal(report, &doc); err != nil {
		return nil, fmt.Errorf("benchhist: load report: %w", err)
	}
	var entries []Entry
	for _, g := range gates {
		v, err := lookupField(doc, g.Field)
		if err != nil {
			return nil, fmt.Errorf("benchhist: load report: %w", err)
		}
		entries = append(entries, Entry{
			Commit:    commit,
			Date:      date,
			Benchmark: g.Name,
			Value:     v,
			Unit:      g.Unit,
		})
	}
	return entries, nil
}

// lookupField walks a dotted path through nested JSON objects to a number.
func lookupField(doc map[string]any, path string) (float64, error) {
	cur := any(doc)
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("field %q: %q is not an object", path, part)
		}
		cur, ok = m[part]
		if !ok {
			return 0, fmt.Errorf("field %q missing from report", path)
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("field %q is not a number", path)
	}
	return v, nil
}

// CheckLoad enforces each gate's bounds over freshly extracted entries.
func CheckLoad(entries []Entry, gates []LoadGate) error {
	byName := map[string]LoadGate{}
	for _, g := range gates {
		byName[g.Name] = g
	}
	var fails []string
	for _, e := range entries {
		g, ok := byName[e.Benchmark]
		if !ok {
			continue
		}
		if g.HasMin && e.Value < g.Min {
			fails = append(fails, fmt.Sprintf("%s: %.2f %s below floor %.2f", e.Benchmark, e.Value, g.Unit, g.Min))
		}
		if g.HasMax && e.Value > g.Max {
			fails = append(fails, fmt.Sprintf("%s: %.2f %s above ceiling %.2f", e.Benchmark, e.Value, g.Unit, g.Max))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchhist: load regression:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}
