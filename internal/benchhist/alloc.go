package benchhist

// Allocation gates. The zero-alloc work pairs each pooled hot path with a
// "fresh" variant that allocates the way the code did before pooling
// (BenchmarkBitIOAlloc/{pooled,fresh}, ...). CI runs them with -benchmem and
// this file turns the allocs/op and B/op columns into history entries and
// enforces two properties per pair: the pooled variant stays under an
// absolute allocs/op ceiling (the O(1)-steady-state guarantee), and the
// fresh variant allocates at least MinRatio times as much (the pools keep
// buying something). Both medians are recorded, so the history documents the
// reduction itself, not just pass/fail.

import (
	"fmt"
	"strings"
)

// AllocGate names one pooled/fresh allocation benchmark pair and its bounds.
type AllocGate struct {
	// Name identifies the gate; history entries derive from it
	// (<name>-allocs-pooled, <name>-allocs-fresh, <name>-bytes-pooled,
	// <name>-bytes-fresh).
	Name string
	// Pooled and Fresh are benchmark names as printed by `go test -bench`,
	// without the -GOMAXPROCS suffix.
	Pooled string
	Fresh  string
	// MaxPooledAllocs is the ceiling on the pooled variant's median
	// allocs/op. Go rounds allocs/op to an integer per run, so a ceiling of
	// 1 tolerates pool warm-up while still failing any per-iteration
	// allocation that sneaks back in.
	MaxPooledAllocs float64
	// MinRatio is the floor on fresh/pooled allocs/op. A pooled median of
	// zero passes trivially (the reduction is complete); the check is
	// formulated as fresh >= MinRatio*pooled to avoid dividing by it.
	MinRatio float64
}

// DefaultAllocGates covers the four pooled hot paths. Measured medians on
// the development machine are noted for scale; ceilings and floors leave
// room for pool warm-up and rounding, not for regressions.
func DefaultAllocGates() []AllocGate {
	return []AllocGate{
		// Pooled bit I/O: encode+decode a ~2 Kbit stream (0 vs 5 allocs/op).
		{Name: "bitio", Pooled: "BenchmarkBitIOAlloc/pooled", Fresh: "BenchmarkBitIOAlloc/fresh",
			MaxPooledAllocs: 1, MinRatio: 4},
		// Split-stream region encode, writer sized from training stats
		// (0 vs 2 allocs/op — the fresh side is just writer + buffer).
		{Name: "region-encode", Pooled: "BenchmarkRegionEncodeAlloc/pooled", Fresh: "BenchmarkRegionEncodeAlloc/fresh",
			MaxPooledAllocs: 1, MinRatio: 2},
		// LZ token decode of a full region (0 vs 10 allocs/op).
		{Name: "lz-token-decode", Pooled: "BenchmarkLZTokenDecodeAlloc/pooled", Fresh: "BenchmarkLZTokenDecodeAlloc/fresh",
			MaxPooledAllocs: 1, MinRatio: 5},
		// Daemon request serialization; the pooled side keeps exactly the
		// one exact-size copy the cache retains (1 vs 3 allocs/op).
		{Name: "request-scratch", Pooled: "BenchmarkRequestScratch/pooled", Fresh: "BenchmarkRequestScratch/fresh",
			MaxPooledAllocs: 2, MinRatio: 2},
		// Frame codec: one warm cache-hit squash exchange, server side (v2
		// read+decode+respond vs the v1 JSON/base64 codec). v2's pooled
		// buffers, zero-copy sections, and pooled envelope decoder run the
		// whole exchange allocation-free (0 vs 9 allocs/op); the ceiling of
		// 2 leaves room for pool warm-up and rounding only.
		{Name: "frame-codec", Pooled: "BenchmarkFrameCodecAlloc/v2", Fresh: "BenchmarkFrameCodecAlloc/v1",
			MaxPooledAllocs: 2, MinRatio: 3},
	}
}

// allocMetric describes one recorded metric of a gate.
type allocMetric struct {
	suffix  string
	samples map[string][]float64
	unit    string
}

// AllocEntries turns parsed allocs/op and B/op samples into history entries:
// four per gate (pooled and fresh medians of both metrics), as absolute
// value+unit records. Every gated benchmark must be present in the allocs
// samples — a missing one means the alloc bench run silently dropped a
// pooled path, which is itself a regression.
func AllocEntries(allocs, bytes map[string][]float64, gates []AllocGate, commit, date string) ([]Entry, error) {
	var entries []Entry
	for _, g := range gates {
		for _, side := range []struct{ label, bench string }{{"pooled", g.Pooled}, {"fresh", g.Fresh}} {
			for _, m := range []allocMetric{
				{"allocs", allocs, "allocs/op"},
				{"bytes", bytes, "B/op"},
			} {
				s, ok := m.samples[side.bench]
				if !ok {
					if m.suffix == "bytes" {
						continue // B/op column absent: tolerated, allocs gate still applies
					}
					return nil, fmt.Errorf("benchhist: no %s samples for %s (gate %s)", m.unit, side.bench, g.Name)
				}
				entries = append(entries, Entry{
					Commit:    commit,
					Date:      date,
					Benchmark: fmt.Sprintf("%s-%s-%s", g.Name, m.suffix, side.label),
					Value:     median(s),
					Unit:      m.unit,
				})
			}
		}
	}
	return entries, nil
}

// CheckAllocs enforces every gate's pooled ceiling and fresh/pooled floor
// over parsed allocs/op samples.
func CheckAllocs(allocs map[string][]float64, gates []AllocGate) error {
	var fails []string
	for _, g := range gates {
		pooled, ok := allocs[g.Pooled]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: no samples for %s", g.Name, g.Pooled))
			continue
		}
		fresh, ok := allocs[g.Fresh]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: no samples for %s", g.Name, g.Fresh))
			continue
		}
		mp, mf := median(pooled), median(fresh)
		if mp > g.MaxPooledAllocs {
			fails = append(fails, fmt.Sprintf("%s: pooled %.1f allocs/op above ceiling %.1f",
				g.Name, mp, g.MaxPooledAllocs))
		}
		if mf < g.MinRatio*mp {
			fails = append(fails, fmt.Sprintf("%s: fresh %.1f allocs/op is under %.1fx pooled %.1f — pooling stopped paying off",
				g.Name, mf, g.MinRatio, mp))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("benchhist: allocation regression:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}
