package benchhist

import (
	"path/filepath"
	"strings"
	"testing"
)

// sampleReport mirrors cmd/squashload's LoadReport JSON shape.
const sampleReport = `{
  "mode": "replay",
  "concurrency": 4,
  "rate": 2,
  "requests": 40,
  "objects": 55,
  "errors": 0,
  "duration_sec": 1.25,
  "req_per_sec": 32.0,
  "obj_per_sec": 44.0,
  "latency_ms": {"p50": 1.2, "p90": 40.1, "p99": 85.0, "max": 120.5, "mean": 9.3},
  "cache_hit_rate": 0.91,
  "prep_hit_rate": 1.0,
  "proto": 2,
  "bytes_in": 5242880,
  "bytes_out": 1048576,
  "bytes_in_per_sec": 4194304.0,
  "bytes_out_per_sec": 838860.8
}`

func TestLoadEntriesExtractsGatedMetrics(t *testing.T) {
	gates := DefaultLoadGates()
	entries, err := LoadEntries([]byte(sampleReport), gates, "c0ffee", "2026-08-09")
	if err != nil {
		t.Fatalf("LoadEntries: %v", err)
	}
	if len(entries) != len(gates) {
		t.Fatalf("entries = %d, want %d", len(entries), len(gates))
	}
	want := map[string]float64{
		"load-req-s":       32.0,
		"load-p50-ms":      1.2,
		"load-p99-ms":      85.0,
		"load-cache-hit":   0.91,
		"load-errors":      0,
		"load-bytes-in-s":  4194304.0,
		"load-bytes-out-s": 838860.8,
	}
	for _, e := range entries {
		if e.Commit != "c0ffee" || e.Date != "2026-08-09" {
			t.Errorf("entry %s: wrong commit/date: %+v", e.Benchmark, e)
		}
		if v, ok := want[e.Benchmark]; !ok || e.Value != v {
			t.Errorf("entry %s = %v, want %v", e.Benchmark, e.Value, v)
		}
		if e.Ratio != 0 {
			t.Errorf("entry %s carries a pair ratio %v", e.Benchmark, e.Ratio)
		}
	}
	if err := CheckLoad(entries, gates); err != nil {
		t.Fatalf("healthy report failed gates: %v", err)
	}
}

func TestLoadEntriesMissingFieldIsError(t *testing.T) {
	if _, err := LoadEntries([]byte(`{"mode":"replay"}`), DefaultLoadGates(), "c", "d"); err == nil {
		t.Fatal("report without gated metrics accepted")
	}
	if _, err := LoadEntries([]byte(`not json`), DefaultLoadGates(), "c", "d"); err == nil {
		t.Fatal("garbage report accepted")
	}
}

func TestCheckLoadEnforcesFloorsAndCeilings(t *testing.T) {
	gates := []LoadGate{
		{Name: "load-req-s", Field: "req_per_sec", Unit: "req/s", Min: 3, HasMin: true},
		{Name: "load-p99-ms", Field: "latency_ms.p99", Unit: "ms", Max: 100, HasMax: true},
		{Name: "load-errors", Field: "errors", Unit: "count", Max: 0, HasMax: true},
	}
	ok := []Entry{
		{Benchmark: "load-req-s", Value: 3},
		{Benchmark: "load-p99-ms", Value: 100},
		{Benchmark: "load-errors", Value: 0},
	}
	if err := CheckLoad(ok, gates); err != nil {
		t.Fatalf("boundary values failed: %v", err)
	}

	cases := []struct {
		name    string
		entries []Entry
		msg     string
	}{
		{"req/s floor", []Entry{{Benchmark: "load-req-s", Value: 2.9}}, "below floor"},
		{"p99 ceiling", []Entry{{Benchmark: "load-p99-ms", Value: 101}}, "above ceiling"},
		{"error ceiling", []Entry{{Benchmark: "load-errors", Value: 1}}, "above ceiling"},
	}
	for _, c := range cases {
		err := CheckLoad(c.entries, gates)
		if err == nil {
			t.Errorf("%s: regression passed", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.msg) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.msg)
		}
	}
}

// TestLoadEntriesAppendAlongsidePairs: load metrics and pair ratios share
// one history file without clobbering each other, and a CI re-run replaces
// its own commit's load entries.
func TestLoadEntriesAppendAlongsidePairs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.json")
	pairs := []Entry{{Commit: "c1", Date: "d", Benchmark: "vm-step", Ratio: 2.5}}
	if err := Append(path, pairs); err != nil {
		t.Fatalf("append pairs: %v", err)
	}
	loads, err := LoadEntries([]byte(sampleReport), DefaultLoadGates(), "c1", "d")
	if err != nil {
		t.Fatalf("LoadEntries: %v", err)
	}
	if err := Append(path, loads); err != nil {
		t.Fatalf("append loads: %v", err)
	}
	if err := Append(path, loads); err != nil { // CI re-run
		t.Fatalf("re-append loads: %v", err)
	}

	history, err := Read(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if want := 1 + len(loads); len(history) != want {
		t.Fatalf("history has %d entries, want %d (re-run must replace, not double)", len(history), want)
	}
	var ratio, value int
	for _, e := range history {
		if e.Ratio != 0 {
			ratio++
		}
		if e.Value != 0 || e.Unit != "" {
			value++
		}
	}
	if ratio != 1 || value != len(loads) {
		t.Errorf("ratio/value entries = %d/%d, want 1/%d", ratio, value, len(loads))
	}
}
