package squeeze

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/vm"
)

func build(t *testing.T, src string) *cfg.Program {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func runProgram(t *testing.T, p *cfg.Program, input []byte) *vm.Machine {
	t.Helper()
	im, err := cfg.LowerAndLink(p)
	if err != nil {
		t.Fatalf("LowerAndLink: %v", err)
	}
	m := vm.New(im, input)
	if err := m.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

const redundantProgram = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        nop
        nop
        sys  getc
        blt  v0, quit
        ; duplicated run A (8 pure instructions)
        add  v0, 1, t0
        sll  t0, 2, t1
        xor  t1, t0, t2
        sub  t2, 3, t3
        and  t3, 255, t4
        add  t4, t1, t5
        mul  t5, t0, t6
        srl  t6, 1, t7
        mov  t7, a0
        sys  putc
        bsr  ra, twin
        nop
quit:   ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func twin
        ; duplicated run A again
        add  v0, 1, t0
        sll  t0, 2, t1
        xor  t1, t0, t2
        sub  t2, 3, t3
        and  t3, 255, t4
        add  t4, t1, t5
        mul  t5, t0, t6
        srl  t6, 1, t7
        mov  t7, a0
        sys  putc
        ret
        .func deadfunc
        nop
        nop
        nop
        ret
        .func deadfunc2
        li   t0, 9
        ret
`

func TestSqueezeRemovesUnreachableAndNops(t *testing.T) {
	p := build(t, redundantProgram)
	st, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if st.FuncsRemoved != 2 {
		t.Errorf("FuncsRemoved = %d, want 2", st.FuncsRemoved)
	}
	if st.NopsRemoved < 3 {
		t.Errorf("NopsRemoved = %d, want >= 3", st.NopsRemoved)
	}
	if p.FuncByName("deadfunc") != nil || p.FuncByName("deadfunc2") != nil {
		t.Error("dead functions survived")
	}
	if p.FuncByName("twin") == nil {
		t.Error("reachable function twin was removed")
	}
	if st.OutputInsts >= st.InputInsts {
		t.Errorf("no reduction: %d -> %d", st.InputInsts, st.OutputInsts)
	}
}

func TestSqueezeAbstractsRepeats(t *testing.T) {
	// twin touches ra? twin's block has no ra usage... but main's run block
	// contains bsr (touches ra), so only twin's copy might qualify — with a
	// single occurrence no abstraction happens. Build a program with two
	// clean duplicate blocks instead.
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, f1
        bsr  ra, f2
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func f1
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, leafy
body1:  add  v0, 1, t0
        sll  t0, 2, t1
        xor  t1, t0, t2
        sub  t2, 3, t3
        and  t3, 255, t4
        add  t4, t1, t5
        mul  t5, t0, t6
        srl  t6, 1, t7
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func f2
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, leafy
body2:  add  v0, 1, t0
        sll  t0, 2, t1
        xor  t1, t0, t2
        sub  t2, 3, t3
        and  t3, 255, t4
        add  t4, t1, t5
        mul  t5, t0, t6
        srl  t6, 1, t7
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func leafy
        li   v0, 5
        ret
`
	p := build(t, src)
	before := runProgram(t, p, nil)

	p2 := build(t, src)
	st, err := Run(p2)
	if err != nil {
		t.Fatal(err)
	}
	if st.AbstractedFuncs != 1 {
		t.Fatalf("AbstractedFuncs = %d, want 1 (stats: %+v)", st.AbstractedFuncs, st)
	}
	if st.AbstractedSavings <= 0 {
		t.Fatalf("AbstractedSavings = %d", st.AbstractedSavings)
	}
	after := runProgram(t, p2, nil)
	if before.Status != after.Status || string(before.Output) != string(after.Output) {
		t.Fatalf("behaviour changed: %d/%q vs %d/%q", before.Status, before.Output, after.Status, after.Output)
	}
	// A pa$ function exists.
	found := false
	for _, f := range p2.Funcs {
		if strings.HasPrefix(f.Name, "pa$") {
			found = true
		}
	}
	if !found {
		t.Error("no abstraction function created")
	}
}

func TestSqueezePreservesBehaviour(t *testing.T) {
	p := build(t, redundantProgram)
	input := []byte("abc")
	before := runProgram(t, p, input)

	p2 := build(t, redundantProgram)
	if _, err := Run(p2); err != nil {
		t.Fatal(err)
	}
	after := runProgram(t, p2, input)
	if string(before.Output) != string(after.Output) || before.Status != after.Status {
		t.Fatalf("behaviour changed: %q/%d vs %q/%d",
			before.Output, before.Status, after.Output, after.Status)
	}
	if after.Instructions >= before.Instructions {
		t.Logf("note: squeezed code executed %d vs %d instructions", after.Instructions, before.Instructions)
	}
}

func TestSqueezeKeepsJumpTableTargets(t *testing.T) {
	src := `
        .text
        .func main
        sys  getc
        sub  v0, 48, t0
        cmpult t0, 2, t1
        beq  t1, bad
        sll  t0, 2, t1
        la   t2, table
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
case0:  li   a0, 48
        br   out
case1:  li   a0, 49
        br   out
bad:    li   a0, 63
out:    sys  putc
        clr  a0
        sys  halt
        .data
table:  .word case0, case1
`
	p := build(t, src)
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"case0", "case1"} {
		if p.BlockByLabel(want) == nil {
			t.Errorf("jump-table target %s was removed", want)
		}
	}
	m := runProgram(t, p, []byte("1"))
	if string(m.Output) != "1" {
		t.Fatalf("output = %q", m.Output)
	}
}

func TestSqueezeKeepsIndirectlyCalledFuncs(t *testing.T) {
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        la   pv, callee
        jsr  ra, (pv)
        mov  v0, a0
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        sys  halt
        .func callee
        li   v0, 77
        ret
`
	p := build(t, src)
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if p.FuncByName("callee") == nil {
		t.Fatal("indirectly called function removed")
	}
	m := runProgram(t, p, nil)
	if m.Status != 77 {
		t.Fatalf("status = %d", m.Status)
	}
}

func TestSqueezeKeepsFuncsReferencedFromDataTables(t *testing.T) {
	// A function-pointer table in data: main loads the table, indexes it,
	// and calls through it. Both pointees must survive.
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        sys  getc
        sub  v0, 48, t0
        sll  t0, 2, t0
        la   t1, fptrs
        add  t1, t0, t1
        ldw  pv, 0(t1)
        jsr  ra, (pv)
        mov  v0, a0
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        sys  halt
        .func fa
        li   v0, 10
        ret
        .func fb
        li   v0, 20
        ret
        .data
fptrs:  .word fa, fb
`
	p := build(t, src)
	if _, err := Run(p); err != nil {
		t.Fatal(err)
	}
	if p.FuncByName("fa") == nil || p.FuncByName("fb") == nil {
		t.Fatal("data-referenced functions removed")
	}
	m := runProgram(t, p, []byte("1"))
	if m.Status != 20 {
		t.Fatalf("status = %d, want 20", m.Status)
	}
}

func TestReductionStat(t *testing.T) {
	st := &Stats{InputInsts: 100, OutputInsts: 70}
	if r := st.Reduction(); r < 0.299 || r > 0.301 {
		t.Fatalf("Reduction = %v", r)
	}
}
