package squeeze

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// FuzzSqueeze is the native fuzz entry for `go test -fuzz=FuzzSqueeze`: the
// fuzzer picks a program seed, a pass-selection byte, and a run input, and
// the target checks that the squeezed binary reproduces the baseline
// behaviour and never grows. The CI fuzz-smoke job runs it briefly.
func FuzzSqueeze(f *testing.F) {
	f.Add(int64(1000), uint8(0), []byte(""))
	f.Add(int64(1007), uint8(3), []byte("fuzzing the compactor"))
	f.Add(int64(1042), uint8(7), []byte{255, 254, 0, 1, 127, 128})
	f.Fuzz(func(t *testing.T, seed int64, optBits uint8, input []byte) {
		if len(input) > 256 {
			input = input[:256]
		}
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		opts := Options{
			NoUnreachable: optBits&1 != 0,
			NoNops:        optBits&2 != 0,
			NoAbstraction: optBits&4 != 0,
		}
		p, err := cfg.Build(obj, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st, err := RunOpts(p, opts)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, opts, err)
		}
		if st.OutputInsts > st.InputInsts {
			t.Fatalf("seed %d: squeeze grew the program %d -> %d", seed, st.InputInsts, st.OutputInsts)
		}
		sqIm, err := cfg.LowerAndLink(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		base := vm.New(im, input)
		if err := base.Run(); err != nil {
			t.Fatalf("seed %d baseline: %v", seed, err)
		}
		sq := vm.New(sqIm, input)
		if err := sq.Run(); err != nil {
			t.Fatalf("seed %d (%+v): squeezed run: %v", seed, opts, err)
		}
		if string(base.Output) != string(sq.Output) || base.Status != sq.Status {
			t.Fatalf("seed %d (%+v): behaviour diverged", seed, opts)
		}
	})
}
