// Package squeeze implements a simplified version of the paper's prior-work
// code compactor [7] (Debray, Evans, Muth & De Sutter, "Compiler Techniques
// for Code Compaction", TOPLAS 2000). The paper's squash tool operates on
// binaries already compacted by squeeze, and Table 1 reports sizes before
// and after it; this package reproduces the passes that account for the
// bulk of squeeze's ≈30% reduction:
//
//   - unreachable function and basic-block elimination,
//   - no-op elimination, and
//   - procedural abstraction: repeated instruction sequences are replaced
//     by calls to a single representative function.
//
// The abstraction pass is conservative about the return-address register:
// it only abstracts runs from blocks that never touch RA inside functions
// that themselves make calls (such functions save RA in their prologue and
// restore it in their epilogue, both of which touch RA and are therefore
// never candidates).
package squeeze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/isa"
)

// Stats reports what the compactor did.
type Stats struct {
	InputInsts        int
	OutputInsts       int
	FuncsRemoved      int
	BlocksRemoved     int
	InstsUnreachable  int // instructions inside removed funcs/blocks
	NopsRemoved       int
	AbstractedFuncs   int // representative functions created
	AbstractedSavings int // net instructions saved by abstraction
}

// Reduction reports the fractional size reduction achieved.
func (s *Stats) Reduction() float64 {
	if s.InputInsts == 0 {
		return 0
	}
	return 1 - float64(s.OutputInsts)/float64(s.InputInsts)
}

// MinRunLen is the shortest instruction run considered for procedural
// abstraction. Shorter runs cannot amortize the bsr/ret overhead.
const MinRunLen = 6

// Options selects which passes run; the zero value runs everything. The
// per-pass switches exist for the ablation benchmarks.
type Options struct {
	NoUnreachable bool
	NoNops        bool
	NoAbstraction bool
}

// Run compacts the program in place with all passes enabled.
func Run(p *cfg.Program) (*Stats, error) { return RunOpts(p, Options{}) }

// RunOpts compacts the program in place and returns statistics.
func RunOpts(p *cfg.Program, opts Options) (*Stats, error) {
	st := &Stats{InputInsts: p.NumInsts()}
	if !opts.NoUnreachable {
		removeUnreachable(p, st)
	}
	if !opts.NoNops {
		removeNops(p, st)
	}
	if !opts.NoAbstraction {
		abstractRepeats(p, st)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("squeeze: output invalid: %w", err)
	}
	st.OutputInsts = p.NumInsts()
	return st, nil
}

// removeUnreachable drops functions that can never be entered and blocks
// that can never be reached within surviving functions.
func removeUnreachable(p *cfg.Program, st *Stats) {
	blocks := make(map[string]*cfg.Block)
	owner := make(map[string]*cfg.Func)
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			blocks[b.Label] = b
			owner[b.Label] = f
		}
	}
	dataSymAt := make(map[string]uint32)
	for _, s := range p.DataSymbols {
		dataSymAt[s.Name] = s.Offset
	}
	// Data words holding code addresses, grouped by the data symbol region
	// they live in: loading that symbol's address makes those code labels
	// reachable.
	symOffsets := make([]uint32, 0, len(p.DataSymbols))
	for _, s := range p.DataSymbols {
		symOffsets = append(symOffsets, s.Offset)
	}
	sort.Slice(symOffsets, func(i, j int) bool { return symOffsets[i] < symOffsets[j] })
	regionOf := func(off uint32) uint32 {
		lo := uint32(0)
		for _, so := range symOffsets {
			if so <= off {
				lo = so
			} else {
				break
			}
		}
		return lo
	}
	codeRefsByRegion := make(map[uint32][]string)
	for _, r := range p.DataRelocs {
		if _, isCode := blocks[r.Sym]; isCode {
			reg := regionOf(r.Offset)
			codeRefsByRegion[reg] = append(codeRefsByRegion[reg], r.Sym)
		}
	}

	reach := map[string]bool{}
	var work []string
	push := func(label string) {
		if label != "" && !reach[label] && blocks[label] != nil {
			reach[label] = true
			work = append(work, label)
		}
	}
	push(p.Entry)
	for len(work) > 0 {
		label := work[len(work)-1]
		work = work[:len(work)-1]
		b := blocks[label]
		succs, known := b.Succs()
		if !known {
			// Unknown indirect jump: conservatively keep every block of
			// the owning function reachable.
			for _, bb := range owner[label].Blocks {
				push(bb.Label)
			}
		}
		for _, s := range succs {
			push(s)
		}
		for _, c := range b.Calls() {
			if c.Callee != "" {
				push(c.Callee)
			}
		}
		for _, in := range b.Insts {
			if in.Kind == cfg.TargetLo16 || in.Kind == cfg.TargetHi16 {
				if _, isCode := blocks[in.Target]; isCode {
					push(in.Target)
				} else if off, isData := dataSymAt[in.Target]; isData {
					for _, lbl := range codeRefsByRegion[off] {
						push(lbl)
					}
				}
			}
			if in.Kind == cfg.TargetBranch {
				push(in.Target)
			}
		}
	}

	var funcs []*cfg.Func
	for _, f := range p.Funcs {
		if !reach[f.Name] {
			st.FuncsRemoved++
			for _, b := range f.Blocks {
				st.InstsUnreachable += len(b.Insts)
			}
			continue
		}
		var kept []*cfg.Block
		for _, b := range f.Blocks {
			if reach[b.Label] {
				kept = append(kept, b)
			} else {
				st.BlocksRemoved++
				st.InstsUnreachable += len(b.Insts)
			}
		}
		f.Blocks = kept
		funcs = append(funcs, f)
	}
	p.Funcs = funcs
}

// removeNops deletes architecturally inert instructions.
func removeNops(p *cfg.Program, st *Stats) {
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			kept := b.Insts[:0]
			for i, in := range b.Insts {
				switch {
				case in.Raw:
				case in.Kind == cfg.TargetBranch:
					// Displacements are symbolic (encoded as zero) in the
					// IR, so isa.IsNop cannot be consulted here. A
					// conditional branch whose target is the block's own
					// fallthrough is inert — but only in terminal position.
					if isa.IsCondBranchOp(in.Op) && i == len(b.Insts)-1 && in.Target == b.FallsTo {
						st.NopsRemoved++
						continue
					}
				case in.Kind != cfg.TargetNone:
					// la halves write a register; never nops.
				case isa.IsNop(in.Inst):
					st.NopsRemoved++
					continue
				}
				kept = append(kept, in)
			}
			b.Insts = kept
		}
	}
}

// runKey builds a structural fingerprint for an instruction run: encoded
// words plus symbolic targets.
func runKey(insts []cfg.Inst) string {
	var sb strings.Builder
	for _, in := range insts {
		if in.Raw {
			fmt.Fprintf(&sb, "raw:%x;", in.RawVal)
			continue
		}
		fmt.Fprintf(&sb, "%x:%d:%s:%d;", isa.Encode(in.Inst), in.Kind, in.Target, in.Addend)
	}
	return sb.String()
}

// pureForAbstraction reports whether the instruction may be moved into an
// abstracted function: straight-line, no control transfer, no system call,
// and no use of the return-address register.
func pureForAbstraction(in cfg.Inst) bool {
	if in.Raw {
		return false
	}
	switch in.Format {
	case isa.FormatBranch, isa.FormatJump, isa.FormatPal, isa.FormatIllegal:
		return false
	}
	return !cfg.TouchesReg(in, isa.RegRA)
}

type runRef struct {
	block *cfg.Block
	start int
	n     int
}

// raDeadAfter reports whether the return-address register is provably dead
// immediately after instruction index end in block b: the next instruction
// in the block that touches RA must write it (prologue save via bsr, or an
// epilogue ldw ra). Reaching the end of the block without seeing a write is
// treated as live (the successor may read RA, e.g. a leaf return).
func raDeadAfter(b *cfg.Block, end int) bool {
	for i := end; i < len(b.Insts); i++ {
		in := b.Insts[i]
		if in.Raw {
			return false
		}
		if cfg.ReadsReg(in, isa.RegRA) {
			return false
		}
		if cfg.WritesReg(in, isa.RegRA) {
			return true
		}
	}
	return false
}

// abstractRepeats performs procedural abstraction of repeated straight-line
// runs (the suffix-free simplification: whole maximal runs are matched).
// A run can be replaced by a bsr only where that clobber of the return-
// address register is provably harmless (see raDeadAfter).
func abstractRepeats(p *cfg.Program, st *Stats) {
	occurrences := map[string][]runRef{}
	var keyOrder []string
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			i := 0
			for i < len(b.Insts) {
				if !pureForAbstraction(b.Insts[i]) {
					i++
					continue
				}
				j := i
				for j < len(b.Insts) && pureForAbstraction(b.Insts[j]) {
					j++
				}
				if j-i >= MinRunLen && raDeadAfter(b, j) {
					key := runKey(b.Insts[i:j])
					if len(occurrences[key]) == 0 {
						keyOrder = append(keyOrder, key)
					}
					occurrences[key] = append(occurrences[key], runRef{b, i, j - i})
				}
				i = j
			}
		}
	}

	n := 0
	type edit struct {
		start, n int
		callee   string
	}
	edits := map[*cfg.Block][]edit{}
	for _, key := range keyOrder {
		occ := occurrences[key]
		count := len(occ)
		runLen := occ[0].n
		if count < 2 {
			continue
		}
		// Savings: count*runLen instructions become count calls plus one
		// function of runLen+1 instructions (body + ret).
		savings := count*runLen - count - (runLen + 1)
		if savings <= 0 {
			continue
		}
		name := fmt.Sprintf("pa$%d", n)
		n++
		body := make([]cfg.Inst, runLen+1)
		copy(body, occ[0].block.Insts[occ[0].start:occ[0].start+runLen])
		body[runLen] = cfg.Inst{Inst: isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0)}
		nb := &cfg.Block{Label: name, Insts: body}
		p.Funcs = append(p.Funcs, &cfg.Func{Name: name, Blocks: []*cfg.Block{nb}})
		for _, o := range occ {
			edits[o.block] = append(edits[o.block], edit{o.start, o.n, name})
		}
		st.AbstractedFuncs++
		st.AbstractedSavings += savings
	}
	// Apply edits back-to-front within each block so indices stay valid.
	for b, es := range edits {
		sort.Slice(es, func(i, j int) bool { return es[i].start > es[j].start })
		for _, e := range es {
			call := cfg.Inst{
				Inst:   isa.Br(isa.OpBSR, isa.RegRA, 0),
				Kind:   cfg.TargetBranch,
				Target: e.callee,
			}
			rest := append([]cfg.Inst{call}, b.Insts[e.start+e.n:]...)
			b.Insts = append(b.Insts[:e.start], rest...)
		}
	}
}
