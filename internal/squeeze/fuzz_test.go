package squeeze

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// TestDifferentialFuzzSqueeze checks behaviour preservation of every pass
// combination over random structured programs.
func TestDifferentialFuzzSqueeze(t *testing.T) {
	inputs := [][]byte{
		nil, []byte("x"), []byte("fuzzing the compactor"), make([]byte, 300),
	}
	for i := range inputs[3] {
		inputs[3][i] = byte(11 * i)
	}
	n := 50
	if testing.Short() {
		n = 10
	}
	for seed := int64(1000); seed < int64(1000+n); seed++ {
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		r := rand.New(rand.NewSource(seed))
		opts := Options{
			NoUnreachable: r.Intn(3) == 0,
			NoNops:        r.Intn(3) == 0,
			NoAbstraction: r.Intn(3) == 0,
		}
		p, err := cfg.Build(obj, "main")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		st, err := RunOpts(p, opts)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, opts, err)
		}
		if st.OutputInsts > st.InputInsts {
			t.Fatalf("seed %d: squeeze grew the program %d -> %d", seed, st.InputInsts, st.OutputInsts)
		}
		sqIm, err := cfg.LowerAndLink(p)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, input := range inputs {
			base := vm.New(im, input)
			if err := base.Run(); err != nil {
				t.Fatalf("seed %d baseline: %v", seed, err)
			}
			sq := vm.New(sqIm, input)
			if err := sq.Run(); err != nil {
				t.Fatalf("seed %d (%+v): squeezed run: %v", seed, opts, err)
			}
			if string(base.Output) != string(sq.Output) || base.Status != sq.Status {
				t.Fatalf("seed %d (%+v): behaviour diverged", seed, opts)
			}
		}
	}
}
