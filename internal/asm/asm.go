// Package asm implements an assembler for the EM32 instruction set. The
// syntax is modelled on Alpha assembly:
//
//	        .text
//	        .func main           ; begin function symbol "main"
//	loop:                        ; labels end with ':'
//	        lda  sp, -32(sp)
//	        stw  ra, 0(sp)
//	        li   a0, 1234        ; pseudo: load 32-bit immediate
//	        la   a1, table       ; pseudo: load symbol address (ldah+lda)
//	        add  a0, a1, v0
//	        sub  v0, 8, v0       ; literal operand form
//	        beq  v0, loop
//	        call helper          ; pseudo: bsr ra, helper
//	        jsr  ra, (pv)
//	        ret
//	        sys  halt
//	        .data
//	table:  .word loop, 42       ; label words get word32 relocations
//	msg:    .ascii "hi\n"
//	        .byte 1, 2, 3
//	        .space 16
//
// Comments run from ';' or '#' to end of line. Registers may be written
// r0..r31 or by their conventional names (v0, t0..t11, s0..s5, a0..a5, fp,
// ra, pv, at, gp, sp, zero).
//
// The assembler resolves nothing itself: every symbolic reference becomes a
// relocation in the produced object, and the linker resolves them. This
// keeps complete relocation information available to the rewriting tools,
// which the paper's infrastructure requires.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/objfile"
)

// regNames maps register aliases to numbers.
var regNames = map[string]uint32{
	"v0": 0,
	"t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7, "t7": 8,
	"s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14,
	"fp": 15,
	"a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20, "a5": 21,
	"t8": 22, "t9": 23, "t10": 24, "t11": 25,
	"ra": 26, "pv": 27, "at": 28, "gp": 29, "sp": 30, "zero": 31,
}

var sysNames = map[string]uint32{
	"halt":    isa.SysHALT,
	"getc":    isa.SysGETC,
	"putc":    isa.SysPUTC,
	"setjmp":  isa.SysSETJMP,
	"longjmp": isa.SysLNGJMP,
	"imb":     isa.SysIMB,
}

// operate maps operate-group mnemonics to (opcode, func).
var operate = map[string][2]uint32{
	"add":    {isa.OpIntA, isa.FnADD},
	"sub":    {isa.OpIntA, isa.FnSUB},
	"cmpult": {isa.OpIntA, isa.FnCMPULT},
	"cmpeq":  {isa.OpIntA, isa.FnCMPEQ},
	"cmpule": {isa.OpIntA, isa.FnCMPULE},
	"cmplt":  {isa.OpIntA, isa.FnCMPLT},
	"cmple":  {isa.OpIntA, isa.FnCMPLE},
	"and":    {isa.OpIntL, isa.FnAND},
	"bic":    {isa.OpIntL, isa.FnBIC},
	"bis":    {isa.OpIntL, isa.FnBIS},
	"or":     {isa.OpIntL, isa.FnBIS},
	"ornot":  {isa.OpIntL, isa.FnORNOT},
	"xor":    {isa.OpIntL, isa.FnXOR},
	"eqv":    {isa.OpIntL, isa.FnEQV},
	"srl":    {isa.OpIntS, isa.FnSRL},
	"sll":    {isa.OpIntS, isa.FnSLL},
	"sra":    {isa.OpIntS, isa.FnSRA},
	"mul":    {isa.OpIntM, isa.FnMUL},
	"div":    {isa.OpIntM, isa.FnDIV},
	"mod":    {isa.OpIntM, isa.FnMOD},
	"mulh":   {isa.OpIntM, isa.FnMULH},
}

var memOps = map[string]uint32{
	"lda":  isa.OpLDA,
	"ldah": isa.OpLDAH,
	"ldb":  isa.OpLDB,
	"stb":  isa.OpSTB,
	"ldw":  isa.OpLDW,
	"stw":  isa.OpSTW,
}

var branchOps = map[string]uint32{
	"br":  isa.OpBR,
	"bsr": isa.OpBSR,
	"beq": isa.OpBEQ,
	"bne": isa.OpBNE,
	"blt": isa.OpBLT,
	"ble": isa.OpBLE,
	"bgt": isa.OpBGT,
	"bge": isa.OpBGE,
}

var jumpOps = map[string]uint32{
	"jmp":    isa.JmpJMP,
	"jsr":    isa.JmpJSR,
	"retreg": isa.JmpRET, // explicit-register form: retreg r31, (r26)
}

// assembler holds the state of one Assemble run.
type assembler struct {
	obj     *objfile.Object
	section objfile.Section
	line    int
	errs    []error
}

func (a *assembler) errorf(format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("line %d: %s", a.line, fmt.Sprintf(format, args...)))
}

// Assemble translates EM32 assembly source into a relocatable object.
func Assemble(src string) (*objfile.Object, error) {
	a := &assembler{obj: &objfile.Object{}, section: objfile.SecText}
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		a.doLine(raw)
		if len(a.errs) > 20 {
			break
		}
	}
	if len(a.errs) > 0 {
		msgs := make([]string, len(a.errs))
		for i, e := range a.errs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("asm: %s", strings.Join(msgs, "\n"))
	}
	return a.obj, nil
}

func (a *assembler) here() uint32 {
	if a.section == objfile.SecText {
		return uint32(len(a.obj.Text) * isa.WordSize)
	}
	return uint32(len(a.obj.Data))
}

func (a *assembler) defineSymbol(name string, kind objfile.SymKind) {
	a.obj.Symbols = append(a.obj.Symbols, objfile.Symbol{
		Name: name, Section: a.section, Offset: a.here(), Kind: kind,
	})
}

func (a *assembler) emit(in isa.Inst) {
	if a.section != objfile.SecText {
		a.errorf("instruction outside .text")
		return
	}
	a.obj.Text = append(a.obj.Text, isa.Encode(in))
}

// emitReloc emits an instruction whose displacement field is patched later.
func (a *assembler) emitReloc(in isa.Inst, kind objfile.RelocKind, sym string, addend int32) {
	a.obj.Relocs = append(a.obj.Relocs, objfile.Reloc{
		Section: objfile.SecText, Offset: a.here(), Kind: kind, Sym: sym, Addend: addend,
	})
	a.emit(in)
}

func (a *assembler) doLine(raw string) {
	// Strip comments; respect no string-literal escapes of ; in .ascii by
	// scanning for quotes.
	line := raw
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' && (i == 0 || line[i-1] != '\\') {
			inStr = !inStr
		}
		if (c == ';' || c == '#') && !inStr {
			line = line[:i]
			break
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return
	}

	// Labels: one or more "name:" prefixes.
	for {
		idx := strings.Index(line, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(line[:idx])
		if !isIdent(head) {
			break
		}
		kind := objfile.SymKind(objfile.SymLabel)
		if a.section == objfile.SecData {
			kind = objfile.SymObject
		}
		a.defineSymbol(head, kind)
		line = strings.TrimSpace(line[idx+1:])
		if line == "" {
			return
		}
	}

	fields := splitOperands(line)
	mnem := strings.ToLower(fields[0])
	ops := fields[1:]

	if strings.HasPrefix(mnem, ".") {
		a.directive(mnem, ops, line)
		return
	}
	a.instruction(mnem, ops)
}

// splitOperands splits "mnemonic op1, op2, op3" into fields, keeping
// parenthesized operands like "8(sp)" intact and string literals whole.
func splitOperands(line string) []string {
	var out []string
	i := 0
	for i < len(line) && !isSpace(line[i]) {
		i++
	}
	out = append(out, line[:i])
	rest := strings.TrimSpace(line[i:])
	if rest == "" {
		return out
	}
	if strings.HasPrefix(rest, "\"") {
		out = append(out, rest)
		return out
	}
	for _, part := range strings.Split(rest, ",") {
		out = append(out, strings.TrimSpace(part))
	}
	return out
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' }

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) directive(mnem string, ops []string, line string) {
	switch mnem {
	case ".text":
		a.section = objfile.SecText
	case ".data":
		a.section = objfile.SecData
	case ".func":
		if len(ops) != 1 || !isIdent(ops[0]) {
			a.errorf(".func requires one symbol name")
			return
		}
		if a.section != objfile.SecText {
			a.errorf(".func outside .text")
			return
		}
		a.defineSymbol(ops[0], objfile.SymFunc)
	case ".endfunc":
		// Structural no-op; function extent runs to the next .func.
	case ".globl", ".global":
		// All symbols are global; accepted for familiarity.
	case ".word":
		for _, op := range ops {
			a.dataWord(op)
		}
	case ".byte":
		if a.section != objfile.SecData {
			a.errorf(".byte outside .data")
			return
		}
		for _, op := range ops {
			v, err := parseInt(op)
			if err != nil {
				a.errorf("bad byte value %q", op)
				return
			}
			a.obj.Data = append(a.obj.Data, byte(v))
		}
	case ".ascii":
		if a.section != objfile.SecData {
			a.errorf(".ascii outside .data")
			return
		}
		start := strings.Index(line, "\"")
		end := strings.LastIndex(line, "\"")
		if start < 0 || end <= start {
			a.errorf(".ascii requires a quoted string")
			return
		}
		s, err := strconv.Unquote(line[start : end+1])
		if err != nil {
			a.errorf("bad string literal: %v", err)
			return
		}
		a.obj.Data = append(a.obj.Data, s...)
	case ".space":
		if len(ops) != 1 {
			a.errorf(".space requires a size")
			return
		}
		n, err := parseInt(ops[0])
		if err != nil || n < 0 {
			a.errorf("bad .space size %q", ops[0])
			return
		}
		if a.section == objfile.SecData {
			a.obj.Data = append(a.obj.Data, make([]byte, n)...)
		} else {
			if n%isa.WordSize != 0 {
				a.errorf(".space in .text must be word-aligned")
				return
			}
			for i := int64(0); i < n; i += isa.WordSize {
				a.emit(isa.Nop())
			}
		}
	case ".align":
		if len(ops) != 1 {
			a.errorf(".align requires an alignment")
			return
		}
		n, err := parseInt(ops[0])
		if err != nil || n <= 0 {
			a.errorf("bad alignment %q", ops[0])
			return
		}
		if a.section == objfile.SecData {
			for int64(len(a.obj.Data))%n != 0 {
				a.obj.Data = append(a.obj.Data, 0)
			}
		}
	default:
		a.errorf("unknown directive %s", mnem)
	}
}

// dataWord emits one .word operand: either a literal or a symbol reference
// (with optional +offset), which becomes a word32 relocation.
func (a *assembler) dataWord(op string) {
	emitWord := func(v uint32) {
		if a.section == objfile.SecData {
			a.obj.Data = append(a.obj.Data, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		} else {
			a.obj.Text = append(a.obj.Text, v)
		}
	}
	if v, err := parseInt(op); err == nil {
		emitWord(uint32(v))
		return
	}
	sym, add, ok := symPlusOffset(op)
	if !ok {
		a.errorf("bad .word operand %q", op)
		return
	}
	a.obj.Relocs = append(a.obj.Relocs, objfile.Reloc{
		Section: a.section, Offset: a.here(), Kind: objfile.RelWord32, Sym: sym, Addend: add,
	})
	emitWord(0)
}

func parseInt(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// symPlusOffset parses "sym", "sym+4" or "sym-4".
func symPlusOffset(s string) (string, int32, bool) {
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			off, err := parseInt(s[i:])
			if err != nil {
				return "", 0, false
			}
			if !isIdent(s[:i]) {
				return "", 0, false
			}
			return s[:i], int32(off), true
		}
	}
	if !isIdent(s) {
		return "", 0, false
	}
	return s, 0, true
}

func (a *assembler) reg(s string) (uint32, bool) {
	s = strings.ToLower(s)
	if n, ok := regNames[s]; ok {
		return n, true
	}
	if strings.HasPrefix(s, "r") {
		if v, err := strconv.Atoi(s[1:]); err == nil && v >= 0 && v < isa.NumRegs {
			return uint32(v), true
		}
	}
	return 0, false
}

// memOperand parses "disp(reg)" or "(reg)" or "disp".
func (a *assembler) memOperand(s string) (disp int32, reg uint32, ok bool) {
	open := strings.Index(s, "(")
	if open < 0 {
		v, err := parseInt(s)
		if err != nil {
			return 0, 0, false
		}
		return int32(v), isa.RegZero, true
	}
	if !strings.HasSuffix(s, ")") {
		return 0, 0, false
	}
	r, ok2 := a.reg(s[open+1 : len(s)-1])
	if !ok2 {
		return 0, 0, false
	}
	dispStr := strings.TrimSpace(s[:open])
	if dispStr == "" {
		return 0, r, true
	}
	v, err := parseInt(dispStr)
	if err != nil {
		return 0, 0, false
	}
	return int32(v), r, true
}

func (a *assembler) instruction(mnem string, ops []string) {
	switch {
	case mnem == "nop":
		a.emit(isa.Nop())
	case mnem == "ret":
		a.emit(isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0))
	case mnem == "call":
		if len(ops) != 1 {
			a.errorf("call requires a target symbol")
			return
		}
		a.branchInst(isa.OpBSR, isa.RegRA, ops[0])
	case mnem == "mov":
		if len(ops) != 2 {
			a.errorf("mov requires two registers")
			return
		}
		ra, ok1 := a.reg(ops[0])
		rc, ok2 := a.reg(ops[1])
		if !ok1 || !ok2 {
			a.errorf("bad mov operands")
			return
		}
		a.emit(isa.OpR(isa.OpIntL, ra, ra, isa.FnBIS, rc))
	case mnem == "clr":
		if len(ops) != 1 {
			a.errorf("clr requires one register")
			return
		}
		rc, ok := a.reg(ops[0])
		if !ok {
			a.errorf("bad clr operand")
			return
		}
		a.emit(isa.OpR(isa.OpIntL, isa.RegZero, isa.RegZero, isa.FnBIS, rc))
	case mnem == "li":
		if len(ops) != 2 {
			a.errorf("li requires register, immediate")
			return
		}
		rc, ok := a.reg(ops[0])
		v, err := parseInt(ops[1])
		if !ok || err != nil || v < -(1<<31) || v > 1<<32-1 {
			a.errorf("bad li operands %v", ops)
			return
		}
		a.loadImmediate(rc, int32(uint32(v&0xFFFFFFFF)))
	case mnem == "la":
		if len(ops) != 2 {
			a.errorf("la requires register, symbol")
			return
		}
		rc, ok := a.reg(ops[0])
		sym, add, ok2 := symPlusOffset(ops[1])
		if !ok || !ok2 {
			a.errorf("bad la operands %v", ops)
			return
		}
		a.emitReloc(isa.Mem(isa.OpLDAH, rc, isa.RegZero, 0), objfile.RelHi16, sym, add)
		a.emitReloc(isa.Mem(isa.OpLDA, rc, rc, 0), objfile.RelLo16, sym, add)
	case mnem == "sys":
		if len(ops) != 1 {
			a.errorf("sys requires a function")
			return
		}
		fn, ok := sysNames[strings.ToLower(ops[0])]
		if !ok {
			v, err := parseInt(ops[0])
			if err != nil {
				a.errorf("unknown syscall %q", ops[0])
				return
			}
			fn = uint32(v)
		}
		a.emit(isa.Sys(fn))
	case hasKey(memOps, mnem):
		a.memInst(memOps[mnem], ops)
	case hasKey(branchOps, mnem):
		if len(ops) == 1 {
			// "br target" shorthand uses the zero register.
			a.branchInst(branchOps[mnem], isa.RegZero, ops[0])
			return
		}
		if len(ops) != 2 {
			a.errorf("%s requires register, target", mnem)
			return
		}
		ra, ok := a.reg(ops[0])
		if !ok {
			a.errorf("bad register %q", ops[0])
			return
		}
		a.branchInst(branchOps[mnem], ra, ops[1])
	case mnem == "jmp" || mnem == "jsr" || mnem == "retreg":
		a.jumpInst(mnem, ops)
	default:
		if spec, ok := operate[mnem]; ok {
			a.operateInst(spec[0], spec[1], ops)
			return
		}
		a.errorf("unknown mnemonic %q", mnem)
	}
}

func hasKey(m map[string]uint32, k string) bool { _, ok := m[k]; return ok }

// loadImmediate materializes a 32-bit constant with ldah+lda (or a single
// lda when the value fits in a signed 16-bit displacement). LDAH shifts its
// displacement left 16, and the LDA low half is sign-extended, so the high
// half must be corrected when the low half is negative; 32-bit wraparound in
// the VM makes the pair exact for every value.
func (a *assembler) loadImmediate(rc uint32, v int32) {
	if v >= -(1<<15) && v < 1<<15 {
		a.emit(isa.Mem(isa.OpLDA, rc, isa.RegZero, v))
		return
	}
	lo := int32(int16(v & 0xFFFF))
	hi := int32(int16((int64(v) - int64(lo)) >> 16))
	a.emit(isa.Mem(isa.OpLDAH, rc, isa.RegZero, hi))
	if lo != 0 {
		a.emit(isa.Mem(isa.OpLDA, rc, rc, lo))
	}
}

func (a *assembler) memInst(op uint32, ops []string) {
	if len(ops) != 2 {
		a.errorf("memory instruction requires register, address")
		return
	}
	ra, ok := a.reg(ops[0])
	if !ok {
		a.errorf("bad register %q", ops[0])
		return
	}
	disp, rb, ok := a.memOperand(ops[1])
	if !ok {
		a.errorf("bad memory operand %q", ops[1])
		return
	}
	if disp < -(1<<15) || disp >= 1<<15 {
		a.errorf("memory displacement %d out of range", disp)
		return
	}
	a.emit(isa.Mem(op, ra, rb, disp))
}

func (a *assembler) branchInst(op, ra uint32, target string) {
	sym, add, ok := symPlusOffset(target)
	if !ok {
		a.errorf("bad branch target %q", target)
		return
	}
	a.emitReloc(isa.Br(op, ra, 0), objfile.RelBrDisp21, sym, add)
}

func (a *assembler) jumpInst(mnem string, ops []string) {
	jf := jumpOps[mnem]
	var ra, rb uint32
	var ok bool
	switch len(ops) {
	case 1: // "jmp (r5)"
		ra = isa.RegZero
		if mnem == "jsr" {
			ra = isa.RegRA
		}
		_, rb, ok = a.memOperand(ops[0])
	case 2: // "jsr ra, (pv)"
		ra, ok = a.reg(ops[0])
		if ok {
			_, rb, ok = a.memOperand(ops[1])
		}
	default:
		a.errorf("%s requires one or two operands", mnem)
		return
	}
	if !ok {
		a.errorf("bad %s operands %v", mnem, ops)
		return
	}
	a.emit(isa.Jump(jf, ra, rb, 0))
}

func (a *assembler) operateInst(op, fn uint32, ops []string) {
	if len(ops) != 3 {
		a.errorf("operate instruction requires three operands")
		return
	}
	ra, ok := a.reg(ops[0])
	rc, ok2 := a.reg(ops[2])
	if !ok || !ok2 {
		a.errorf("bad operate registers %v", ops)
		return
	}
	if rb, isReg := a.reg(ops[1]); isReg {
		a.emit(isa.OpR(op, ra, rb, fn, rc))
		return
	}
	v, err := parseInt(ops[1])
	if err != nil || v < 0 || v > 255 {
		a.errorf("operate literal %q out of range 0..255", ops[1])
		return
	}
	a.emit(isa.OpL(op, ra, uint32(v), fn, rc))
}
