package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/objfile"
)

func mustAssemble(t *testing.T, src string) *objfile.Object {
	t.Helper()
	obj, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return obj
}

func TestAssembleBasicInstructions(t *testing.T) {
	obj := mustAssemble(t, `
        .text
        .func main
        lda  sp, -32(sp)
        stw  ra, 0(sp)
        ldw  a0, 4(sp)
        ldb  t0, 0(a0)
        stb  t0, 1(a0)
        add  a0, a1, v0
        sub  v0, 8, v0
        and  t0, t1, t2
        sll  t0, 2, t1
        mul  t0, t1, t2
        mov  a0, s0
        clr  t3
        nop
        ret
        sys  halt
`)
	want := []isa.Inst{
		isa.Mem(isa.OpLDA, isa.RegSP, isa.RegSP, -32),
		isa.Mem(isa.OpSTW, isa.RegRA, isa.RegSP, 0),
		isa.Mem(isa.OpLDW, isa.RegA0, isa.RegSP, 4),
		isa.Mem(isa.OpLDB, isa.RegT0, isa.RegA0, 0),
		isa.Mem(isa.OpSTB, isa.RegT0, isa.RegA0, 1),
		isa.OpR(isa.OpIntA, isa.RegA0, isa.RegA1, isa.FnADD, isa.RegV0),
		isa.OpL(isa.OpIntA, isa.RegV0, 8, isa.FnSUB, isa.RegV0),
		isa.OpR(isa.OpIntL, isa.RegT0, 2, isa.FnAND, 3),
		isa.OpL(isa.OpIntS, isa.RegT0, 2, isa.FnSLL, 2),
		isa.OpR(isa.OpIntM, isa.RegT0, 2, isa.FnMUL, 3),
		isa.OpR(isa.OpIntL, isa.RegA0, isa.RegA0, isa.FnBIS, isa.RegS0),
		isa.OpR(isa.OpIntL, isa.RegZero, isa.RegZero, isa.FnBIS, 4),
		isa.Nop(),
		isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0),
		isa.Sys(isa.SysHALT),
	}
	if len(obj.Text) != len(want) {
		t.Fatalf("assembled %d instructions, want %d", len(obj.Text), len(want))
	}
	for i, w := range want {
		if got := isa.Decode(obj.Text[i]); got != w {
			t.Errorf("inst %d: got %v, want %v", i, got, w)
		}
	}
	if len(obj.Symbols) != 1 || obj.Symbols[0].Name != "main" || obj.Symbols[0].Kind != objfile.SymFunc {
		t.Errorf("symbols = %+v, want single func main", obj.Symbols)
	}
}

func TestAssembleBranchesAndRelocs(t *testing.T) {
	obj := mustAssemble(t, `
        .text
        .func main
loop:   beq  v0, done
        bsr  ra, helper
        br   loop
done:   sys  halt
        .func helper
        la   a0, buf
        ret
        .data
buf:    .word 1, 2, main
`)
	// Relocations: beq→done, bsr→helper, br→loop, la (hi16+lo16)→buf,
	// .word main.
	var kinds []objfile.RelocKind
	for _, r := range obj.Relocs {
		kinds = append(kinds, r.Kind)
	}
	wantKinds := []objfile.RelocKind{
		objfile.RelBrDisp21, objfile.RelBrDisp21, objfile.RelBrDisp21,
		objfile.RelHi16, objfile.RelLo16,
		objfile.RelWord32,
	}
	if len(kinds) != len(wantKinds) {
		t.Fatalf("got %d relocs (%v), want %d", len(kinds), kinds, len(wantKinds))
	}
	for i := range kinds {
		if kinds[i] != wantKinds[i] {
			t.Errorf("reloc %d kind = %v, want %v", i, kinds[i], wantKinds[i])
		}
	}
	// The data word reloc points at offset 8 in .data.
	last := obj.Relocs[len(obj.Relocs)-1]
	if last.Section != objfile.SecData || last.Offset != 8 || last.Sym != "main" {
		t.Errorf("data reloc = %+v", last)
	}
}

func TestAssembleLinkResolvesBranches(t *testing.T) {
	obj := mustAssemble(t, `
        .text
        .func main
        br   skip
        nop
        nop
skip:   sys  halt
`)
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	br := isa.Decode(im.Text[0])
	if br.Op != isa.OpBR || br.Disp != 2 {
		t.Fatalf("resolved branch = %v, want disp 2", br)
	}
	if im.Entry != objfile.TextBase {
		t.Errorf("entry = %#x", im.Entry)
	}
}

func TestAssembleLi(t *testing.T) {
	cases := []struct {
		src  string
		want []isa.Inst
	}{
		{"li t0, 100", []isa.Inst{isa.Mem(isa.OpLDA, isa.RegT0, isa.RegZero, 100)}},
		{"li t0, -5", []isa.Inst{isa.Mem(isa.OpLDA, isa.RegT0, isa.RegZero, -5)}},
		{"li t0, 0x12340000", []isa.Inst{isa.Mem(isa.OpLDAH, isa.RegT0, isa.RegZero, 0x1234)}},
		{"li t0, 0x12345678", []isa.Inst{
			isa.Mem(isa.OpLDAH, isa.RegT0, isa.RegZero, 0x1234),
			isa.Mem(isa.OpLDA, isa.RegT0, isa.RegT0, 0x5678),
		}},
		// Low half with sign bit set requires a high-half correction.
		{"li t0, 0x1234FFFF", []isa.Inst{
			isa.Mem(isa.OpLDAH, isa.RegT0, isa.RegZero, 0x1235),
			isa.Mem(isa.OpLDA, isa.RegT0, isa.RegT0, -1),
		}},
	}
	for _, c := range cases {
		obj := mustAssemble(t, ".text\n.func f\n"+c.src+"\n")
		if len(obj.Text) != len(c.want) {
			t.Errorf("%s: %d instructions, want %d", c.src, len(obj.Text), len(c.want))
			continue
		}
		for i, w := range c.want {
			if got := isa.Decode(obj.Text[i]); got != w {
				t.Errorf("%s inst %d: got %v, want %v", c.src, i, got, w)
			}
		}
	}
}

func TestAssembleDataDirectives(t *testing.T) {
	obj := mustAssemble(t, `
        .data
a:      .byte 1, 2, 3
        .align 4
b:      .word 0x01020304
s:      .ascii "hi\n"
        .space 2
`)
	want := []byte{1, 2, 3, 0, 4, 3, 2, 1, 'h', 'i', '\n', 0, 0}
	if string(obj.Data) != string(want) {
		t.Fatalf("data = %v, want %v", obj.Data, want)
	}
	names := map[string]uint32{}
	for _, s := range obj.Symbols {
		names[s.Name] = s.Offset
	}
	if names["a"] != 0 || names["b"] != 4 || names["s"] != 8 {
		t.Errorf("symbol offsets = %v", names)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus r1, r2",             // unknown mnemonic
		".text\nadd r1, r2",        // missing operand
		".text\nldw r0, 99999(r1)", // displacement out of range
		".text\nadd r1, 300, r2",   // literal out of range
		".data\nadd r1, r2, r3",    // instruction outside .text
		".text\n.word xx yy",       // malformed word operand
		".data\n.ascii hello",      // missing quotes
		".text\nli r1",             // missing immediate
		".text\nbr r0, r1, r2",     // too many operands
		".text\nlda r0, 1(r77)",    // bad register
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		}
	}
}

func TestAssembleCommentsAndLabels(t *testing.T) {
	obj := mustAssemble(t, `
; full-line comment
        .text
        .func main      ; trailing comment
x: y:   nop             # hash comment
        .data
msg:    .ascii "semi;colon"  ; comment after string
`)
	if len(obj.Text) != 1 {
		t.Fatalf("text length %d, want 1", len(obj.Text))
	}
	if got := string(obj.Data); got != "semi;colon" {
		t.Fatalf("data %q", got)
	}
	var names []string
	for _, s := range obj.Symbols {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "main,x,y,msg" {
		t.Fatalf("symbols = %v", names)
	}
}

func TestJumpForms(t *testing.T) {
	obj := mustAssemble(t, `
        .text
        .func f
        jmp  (t0)
        jsr  ra, (pv)
        jsr  (pv)
        retreg zero, (ra)
`)
	want := []isa.Inst{
		isa.Jump(isa.JmpJMP, isa.RegZero, isa.RegT0, 0),
		isa.Jump(isa.JmpJSR, isa.RegRA, isa.RegPV, 0),
		isa.Jump(isa.JmpJSR, isa.RegRA, isa.RegPV, 0),
		isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0),
	}
	for i, w := range want {
		if got := isa.Decode(obj.Text[i]); got != w {
			t.Errorf("inst %d: got %v, want %v", i, got, w)
		}
	}
}
