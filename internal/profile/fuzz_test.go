package profile

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzProfileCounts fuzzes the EMP1 codec: any input the reader accepts
// must survive a write/read round trip unchanged, and the reader must never
// panic or over-allocate on garbage (the implausible-length bound).
func FuzzProfileCounts(f *testing.F) {
	seed := func(c Counts) {
		var buf bytes.Buffer
		c.WriteTo(&buf)
		f.Add(buf.Bytes())
	}
	seed(nil)
	seed(Counts{0})
	seed(Counts{1, 2, 3, 1 << 40})
	seed(make(Counts, 300))
	f.Add([]byte("EMP1"))
	f.Add([]byte("EMP1\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCounts(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			t.Fatalf("re-encode of accepted counts failed: %v", err)
		}
		back, err := ReadCounts(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read of re-encoded counts failed: %v", err)
		}
		if len(c) != len(back) || (len(c) > 0 && !reflect.DeepEqual(c, back)) {
			t.Fatalf("round trip changed counts: %v -> %v", c, back)
		}
	})
}
