// Package profile implements execution-profile handling and the paper's
// cold-code identification (§5): given a threshold θ, the cold code is the
// largest set of lowest-frequency basic blocks whose combined runtime
// instruction contribution stays within θ of the program's total dynamic
// instruction count.
package profile

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/cfg"
)

// Counts is a per-text-word execution count vector, as produced by the
// simulator's profiler.
type Counts []uint64

// WriteTo serializes the counts ("EMP1" magic, uvarint length, uvarint
// deltas are overkill — counts are written as uvarints directly).
func (c Counts) WriteTo(w io.Writer) (int64, error) {
	buf := append([]byte("EMP1"), binary.AppendUvarint(nil, uint64(len(c)))...)
	for _, v := range c {
		buf = binary.AppendUvarint(buf, v)
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadCounts deserializes a profile written by WriteTo.
func ReadCounts(r io.Reader) (Counts, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || string(data[:4]) != "EMP1" {
		return nil, fmt.Errorf("profile: bad magic")
	}
	pos := 4
	next := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("profile: truncated at byte %d", pos)
		}
		pos += n
		return v, nil
	}
	length, err := next()
	if err != nil {
		return nil, err
	}
	// Every count occupies at least one uvarint byte, so a plausible length
	// is bounded by the bytes remaining *after* the header — not by the whole
	// input, which let a 4-byte body claim millions of counts and
	// over-allocate the slice (8 bytes per claimed count) before the parse
	// loop ever hit the truncation error.
	if length > uint64(len(data)-pos) {
		return nil, fmt.Errorf("profile: implausible count %d (only %d bytes of data)", length, len(data)-pos)
	}
	out := make(Counts, length)
	for i := range out {
		if out[i], err = next(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ColdSet is the result of cold-code identification.
type ColdSet struct {
	// Cold maps block labels identified as cold.
	Cold map[string]bool
	// MaxFreq is the largest execution frequency N admitted as cold.
	MaxFreq uint64
	// ColdInsts and TotalInsts count static instructions (cold vs all).
	ColdInsts  int
	TotalInsts int
	// ColdWeight and TotalWeight count dynamic instructions.
	ColdWeight  uint64
	TotalWeight uint64
}

// ColdFraction reports the static fraction of code identified as cold.
func (s *ColdSet) ColdFraction() float64 {
	if s.TotalInsts == 0 {
		return 0
	}
	return float64(s.ColdInsts) / float64(s.TotalInsts)
}

// IdentifyCold classifies blocks of a profiled program as cold for a given
// threshold θ ∈ [0, 1], implementing §5 of the paper:
//
//	Consider all basic blocks b in increasing order of execution frequency
//	and determine the largest frequency N such that
//	    Σ_{freq(b) ≤ N} weight(b) ≤ θ · tot_instr_ct.
//	Any block with freq(b) ≤ N is cold.
//
// θ = 0 admits only never-executed code; θ = 1 admits everything. The
// program must have had AttachProfile called on it.
func IdentifyCold(p *cfg.Program, theta float64) *ColdSet {
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	var blocks []*cfg.Block
	for _, f := range p.Funcs {
		blocks = append(blocks, f.Blocks...)
	}
	sort.SliceStable(blocks, func(i, j int) bool { return blocks[i].Freq < blocks[j].Freq })

	tot := p.TotalWeight()
	budget := uint64(float64(tot) * theta)
	if theta >= 1 {
		budget = tot
	}

	s := &ColdSet{Cold: make(map[string]bool), TotalWeight: tot}
	var cum uint64
	var maxFreq uint64
	// Walk frequency classes in ascending order; a class is admitted only
	// in full (all blocks of equal frequency in or out together).
	i := 0
	for i < len(blocks) {
		j := i
		var classWeight uint64
		for j < len(blocks) && blocks[j].Freq == blocks[i].Freq {
			classWeight += blocks[j].Weight
			j++
		}
		if cum+classWeight > budget {
			break
		}
		cum += classWeight
		maxFreq = blocks[i].Freq
		i = j
	}
	s.MaxFreq = maxFreq
	s.ColdWeight = cum
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			s.TotalInsts += len(b.Insts)
			if b.Freq <= maxFreq {
				s.Cold[b.Label] = true
				s.ColdInsts += len(b.Insts)
			}
		}
	}
	return s
}
