// Drift math for the continuous-profiling plane: merging and decaying
// per-word count vectors shipped from running fleets, and measuring how far
// a live aggregate has moved from the profile an image was squashed with.
//
// The unit here is the text *word*, not the basic block: fleet profiles
// arrive as raw vm count vectors (one counter per text word), and both
// sides of every comparison live in the same image's address space, so the
// word-level θ partition below is the exact analogue of the paper's §5
// block-level rule with each word acting as a one-instruction block.
package profile

import (
	"math"
	"sort"
)

// Total sums the dynamic instruction weight of a count vector.
func Total(c Counts) uint64 {
	var t uint64
	for _, v := range c {
		t += v
	}
	return t
}

// Merge adds src into dst element-wise and returns dst, growing it when src
// is longer. Counts saturate at the uint64 ceiling instead of wrapping: a
// long-lived aggregate fed hot counters must never wrap around to "cold".
func Merge(dst, src Counts) Counts {
	if len(src) > len(dst) {
		grown := make(Counts, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		if s := dst[i] + v; s >= dst[i] {
			dst[i] = s
		} else {
			dst[i] = math.MaxUint64
		}
	}
	return dst
}

// Decay scales every count by factor (clamped to [0, 1]), rounding half up
// so repeated decays drive small counts to zero instead of pinning them at
// one forever. It implements the decaying aggregation window: applying
// factor 0.5 once per half-life makes old behaviour fade geometrically
// while fresh pushes arrive at full weight.
func Decay(c Counts, factor float64) {
	if factor >= 1 {
		return
	}
	if factor < 0 {
		factor = 0
	}
	for i, v := range c {
		c[i] = uint64(float64(v)*factor + 0.5)
	}
}

// ColdMaxFreq computes the word-level θ partition: the largest execution
// count N such that the words executing at most N times contribute no more
// than θ of the total dynamic instruction count. Whole frequency classes
// are admitted together, mirroring IdentifyCold. Words with count ≤ N are
// the cold set.
func ColdMaxFreq(c Counts, theta float64) uint64 {
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	freqs := make([]uint64, 0, len(c))
	for _, v := range c {
		if v > 0 {
			freqs = append(freqs, v)
		}
	}
	sort.Slice(freqs, func(i, j int) bool { return freqs[i] < freqs[j] })
	tot := Total(c)
	budget := uint64(float64(tot) * theta)
	if theta >= 1 {
		budget = tot
	}
	var cum, maxFreq uint64
	i := 0
	for i < len(freqs) {
		j := i
		var classWeight uint64
		for j < len(freqs) && freqs[j] == freqs[i] {
			classWeight += freqs[j]
			j++
		}
		if cum+classWeight > budget {
			break
		}
		cum += classWeight
		maxFreq = freqs[i]
		i = j
	}
	return maxFreq
}

// ColdMass reports the dynamic instruction weight on words whose count is
// at most maxFreq (the cold partition's weight).
func ColdMass(c Counts, maxFreq uint64) uint64 {
	var m uint64
	for _, v := range c {
		if v <= maxFreq {
			m += v
		}
	}
	return m
}

// ThetaColdMass is one row of a per-θ cold-mass summary: the partition
// threshold and the cold set's share of the dynamic instruction count.
type ThetaColdMass struct {
	Theta   float64 `json:"theta"`
	MaxFreq uint64  `json:"max_freq"`
	Weight  uint64  `json:"weight"`
	Frac    float64 `json:"frac"`
}

// ColdMasses evaluates the θ partition for each threshold, so downstream
// drift tooling reads the cold-mass curve straight from run statistics
// instead of recomputing it from raw counts.
func ColdMasses(c Counts, thetas []float64) []ThetaColdMass {
	tot := Total(c)
	out := make([]ThetaColdMass, 0, len(thetas))
	for _, th := range thetas {
		mf := ColdMaxFreq(c, th)
		w := ColdMass(c, mf)
		frac := 0.0
		if tot > 0 {
			frac = float64(w) / float64(tot)
		}
		out = append(out, ThetaColdMass{Theta: th, MaxFreq: mf, Weight: w, Frac: frac})
	}
	return out
}

// DriftStats quantifies how far a live count aggregate has moved from the
// baseline profile an image was squashed with. Both vectors must be in the
// same address space (the same image's text words).
type DriftStats struct {
	// BaseWeight and LiveWeight are the two totals (dynamic instructions).
	BaseWeight uint64 `json:"base_weight"`
	LiveWeight uint64 `json:"live_weight"`

	// ColdMassBase is the fraction of baseline mass inside the baseline's
	// θ cold partition (≤ θ by construction). ColdMassLive is the fraction
	// of *live* mass landing on those same words. Their difference is the
	// mass that migrated into code the squash decided to compress — the
	// direct buffer-thrash signal.
	ColdMassBase float64 `json:"cold_mass_base"`
	ColdMassLive float64 `json:"cold_mass_live"`
	// ColdExcess = max(0, ColdMassLive − ColdMassBase).
	ColdExcess float64 `json:"cold_excess"`

	// HotMassTV is the total-variation distance between the two normalized
	// count distributions: ½ Σ |live_i/L − base_i/B| ∈ [0, 1]. It catches
	// hot-mass reshaping that stays outside the cold set.
	HotMassTV float64 `json:"hot_mass_tv"`

	// Score is the scalar drift metric compared against the re-squash
	// threshold: max(ColdExcess, HotMassTV).
	Score float64 `json:"score"`
}

// ComputeDrift measures live against base over base's θ cold partition.
// Either vector may be empty (zero drift: with no evidence, nothing has
// drifted); mismatched lengths treat missing words as zero.
func ComputeDrift(base, live Counts, theta float64) DriftStats {
	d := DriftStats{BaseWeight: Total(base), LiveWeight: Total(live)}
	if d.BaseWeight == 0 || d.LiveWeight == 0 {
		return d
	}
	maxFreq := ColdMaxFreq(base, theta)
	n := len(base)
	if len(live) > n {
		n = len(live)
	}
	var coldBase, coldLive uint64
	var tv float64
	bw, lw := float64(d.BaseWeight), float64(d.LiveWeight)
	for i := 0; i < n; i++ {
		var b, l uint64
		if i < len(base) {
			b = base[i]
		}
		if i < len(live) {
			l = live[i]
		}
		if b <= maxFreq {
			coldBase += b
			coldLive += l
		}
		tv += math.Abs(float64(l)/lw - float64(b)/bw)
	}
	d.ColdMassBase = float64(coldBase) / bw
	d.ColdMassLive = float64(coldLive) / lw
	if d.ColdMassLive > d.ColdMassBase {
		d.ColdExcess = d.ColdMassLive - d.ColdMassBase
	}
	d.HotMassTV = tv / 2
	d.Score = d.ColdExcess
	if d.HotMassTV > d.Score {
		d.Score = d.HotMassTV
	}
	return d
}
