package profile

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

func TestMerge(t *testing.T) {
	for _, tc := range []struct {
		name     string
		dst, src Counts
		want     Counts
	}{
		{"both empty", nil, nil, nil},
		{"empty src", Counts{1, 2}, nil, Counts{1, 2}},
		{"empty dst grows", nil, Counts{3, 4}, Counts{3, 4}},
		{"equal lengths", Counts{1, 2, 3}, Counts{10, 0, 5}, Counts{11, 2, 8}},
		{"src longer grows dst", Counts{1}, Counts{1, 7}, Counts{2, 7}},
		{"dst longer keeps tail", Counts{1, 9}, Counts{1}, Counts{2, 9}},
		{"saturates", Counts{math.MaxUint64}, Counts{5}, Counts{math.MaxUint64}},
	} {
		got := Merge(append(Counts(nil), tc.dst...), tc.src)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: Merge = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDecay(t *testing.T) {
	c := Counts{100, 1, 0, 3}
	Decay(c, 0.5)
	if !reflect.DeepEqual(c, Counts{50, 1, 0, 2}) {
		t.Fatalf("half decay = %v", c)
	}
	// The rounding must let a count of 1 die across two halvings (0.5→1,
	// then... 1*0.5+0.5 = 1). Quarter decay kills it.
	Decay(c, 0.25)
	if !reflect.DeepEqual(c, Counts{13, 0, 0, 1}) {
		t.Fatalf("quarter decay = %v", c)
	}
	Decay(c, 1.5) // clamp: factor ≥ 1 is a no-op
	if !reflect.DeepEqual(c, Counts{13, 0, 0, 1}) {
		t.Fatalf("factor>1 changed counts: %v", c)
	}
	Decay(c, -1) // clamp to zero
	if !reflect.DeepEqual(c, Counts{0, 0, 0, 0}) {
		t.Fatalf("negative factor = %v", c)
	}
}

func TestColdMaxFreqWordLevel(t *testing.T) {
	// Counts double as weights at word level. Total = 111. θ=0 admits only
	// zero-count words; θ=0.02 admits the count-1 class (weight 2 ≤ 2.22);
	// θ=0.1 also admits the count-10 class (2+10=12 > 11.1, so not).
	c := Counts{0, 1, 1, 10, 99}
	if got := ColdMaxFreq(c, 0); got != 0 {
		t.Errorf("θ=0 maxFreq = %d", got)
	}
	if got := ColdMaxFreq(c, 0.02); got != 1 {
		t.Errorf("θ=0.02 maxFreq = %d", got)
	}
	if got := ColdMaxFreq(c, 0.1); got != 1 {
		t.Errorf("θ=0.1 maxFreq = %d (class admission must be whole)", got)
	}
	if got := ColdMaxFreq(c, 0.12); got != 10 {
		t.Errorf("θ=0.12 maxFreq = %d", got)
	}
	if got := ColdMaxFreq(c, 1); got != 99 {
		t.Errorf("θ=1 maxFreq = %d", got)
	}
	if got := ColdMaxFreq(nil, 0.5); got != 0 {
		t.Errorf("empty counts maxFreq = %d", got)
	}
}

func TestColdMasses(t *testing.T) {
	c := Counts{0, 1, 1, 10, 99} // total 111
	rows := ColdMasses(c, []float64{0, 0.02, 1})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Weight != 0 || rows[0].Frac != 0 {
		t.Errorf("θ=0 row = %+v", rows[0])
	}
	if rows[1].Weight != 2 || math.Abs(rows[1].Frac-2.0/111.0) > 1e-12 {
		t.Errorf("θ=0.02 row = %+v", rows[1])
	}
	if rows[2].Weight != 111 || rows[2].Frac != 1 {
		t.Errorf("θ=1 row = %+v", rows[2])
	}
	// Empty counts: zero weights, zero fractions, no NaN.
	for _, r := range ColdMasses(nil, []float64{0.5}) {
		if r.Weight != 0 || r.Frac != 0 {
			t.Errorf("empty-counts row = %+v", r)
		}
	}
}

func TestComputeDriftIdentical(t *testing.T) {
	base := Counts{0, 5, 5, 1000}
	// A live aggregate that is an exact multiple of the baseline has not
	// drifted at all: same shape, same partition occupancy.
	live := Counts{0, 15, 15, 3000}
	d := ComputeDrift(base, live, 0.01)
	if d.Score != 0 || d.ColdExcess != 0 || d.HotMassTV != 0 {
		t.Fatalf("identical shapes drifted: %+v", d)
	}
	if d.ColdMassBase != d.ColdMassLive {
		t.Errorf("cold masses differ: %+v", d)
	}
}

func TestComputeDriftColdTurnedHot(t *testing.T) {
	// Word 0 is cold in the baseline (count 1 of 1001). The live workload
	// hammers it: most live mass lands in the baseline's cold partition.
	base := Counts{1, 1000}
	live := Counts{900, 100}
	d := ComputeDrift(base, live, 0.01)
	if d.ColdMassLive < 0.89 || d.ColdMassLive > 0.91 {
		t.Fatalf("ColdMassLive = %v, want ~0.9", d.ColdMassLive)
	}
	if d.ColdExcess < 0.85 {
		t.Errorf("ColdExcess = %v", d.ColdExcess)
	}
	if d.Score < d.ColdExcess {
		t.Errorf("Score %v < ColdExcess %v", d.Score, d.ColdExcess)
	}
}

func TestComputeDriftEdgeCases(t *testing.T) {
	// Empty either side: no evidence, zero drift.
	if d := ComputeDrift(nil, Counts{1, 2}, 0.1); d.Score != 0 {
		t.Errorf("empty base drifted: %+v", d)
	}
	if d := ComputeDrift(Counts{1, 2}, nil, 0.1); d.Score != 0 {
		t.Errorf("empty live drifted: %+v", d)
	}
	if d := ComputeDrift(Counts{0, 0}, Counts{0, 0}, 0.1); d.Score != 0 {
		t.Errorf("all-zero vectors drifted: %+v", d)
	}

	// Mismatched lengths: missing words count as zero on both sides. Live
	// mass beyond the baseline's extent lands on words that are trivially
	// cold in the baseline (count 0 ≤ maxFreq), so it reads as drift.
	d := ComputeDrift(Counts{100}, Counts{100, 100}, 0)
	if d.ColdMassLive != 0.5 {
		t.Errorf("longer live: ColdMassLive = %v, want 0.5", d.ColdMassLive)
	}
	if d.Score < 0.49 {
		t.Errorf("longer live: Score = %v", d.Score)
	}

	// All-cold baseline (θ=1): every word is in the partition, live mass
	// occupancy is 1 on both sides, so cold excess is zero and TV carries
	// the signal.
	d = ComputeDrift(Counts{10, 10}, Counts{20, 0}, 1)
	if d.ColdExcess != 0 {
		t.Errorf("all-cold baseline ColdExcess = %v", d.ColdExcess)
	}
	if math.Abs(d.HotMassTV-0.5) > 1e-12 || math.Abs(d.Score-0.5) > 1e-12 {
		t.Errorf("all-cold baseline TV = %v score = %v, want 0.5", d.HotMassTV, d.Score)
	}
}

func TestReadCountsBoundsLengthByRemainingBytes(t *testing.T) {
	// A 7-byte body claiming 1<<40 counts used to pass the plausibility
	// check whenever the claim was below the total input length; with a
	// 3-byte varint it allocated the whole Counts slice before the parse
	// failed. The bound is the bytes remaining after the length field.
	body := append([]byte("EMP1"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 1<<49
	if _, err := ReadCounts(bytes.NewReader(body)); err == nil {
		t.Fatal("accepted a length far beyond the remaining bytes")
	}
	// Claimed count equal to remaining bytes but truncated payload must
	// still error (each count needs ≥ 1 byte; here 3 claimed, 2 present).
	trunc := []byte{'E', 'M', 'P', '1', 3, 1, 1}
	if _, err := ReadCounts(bytes.NewReader(trunc)); err == nil {
		t.Fatal("accepted truncated counts")
	}
	// Exactly-fitting payload still parses.
	ok := []byte{'E', 'M', 'P', '1', 3, 1, 2, 3}
	got, err := ReadCounts(bytes.NewReader(ok))
	if err != nil {
		t.Fatalf("rejected valid counts: %v", err)
	}
	if !reflect.DeepEqual(got, Counts{1, 2, 3}) {
		t.Fatalf("got %v", got)
	}
}
