package profile

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
)

// synthProgram builds a program whose blocks have prescribed (freq, size)
// pairs, bypassing the assembler: IdentifyCold only reads Freq/Weight/Insts.
func synthProgram(blocks []struct {
	freq uint64
	size int
}) *cfg.Program {
	p := &cfg.Program{Entry: "f0"}
	for i, b := range blocks {
		blk := &cfg.Block{
			Label:  labelFor(i),
			Insts:  make([]cfg.Inst, b.size),
			Freq:   b.freq,
			Weight: b.freq * uint64(b.size),
		}
		p.Funcs = append(p.Funcs, &cfg.Func{Name: blk.Label, Blocks: []*cfg.Block{blk}})
	}
	return p
}

func labelFor(i int) string { return string(rune('f')) + string(rune('0'+i)) }

func TestIdentifyColdThetaZero(t *testing.T) {
	p := synthProgram([]struct {
		freq uint64
		size int
	}{
		{0, 10}, // never executed: always cold
		{1, 10},
		{100, 10},
	})
	cs := IdentifyCold(p, 0)
	if !cs.Cold[labelFor(0)] || cs.Cold[labelFor(1)] || cs.Cold[labelFor(2)] {
		t.Fatalf("θ=0 cold set wrong: %v", cs.Cold)
	}
	if cs.MaxFreq != 0 {
		t.Errorf("MaxFreq = %d", cs.MaxFreq)
	}
	if cs.ColdInsts != 10 || cs.TotalInsts != 30 {
		t.Errorf("insts: %d/%d", cs.ColdInsts, cs.TotalInsts)
	}
}

func TestIdentifyColdWholeClassAdmission(t *testing.T) {
	// Two freq-1 blocks with weights 10 and 10; total weight 1020. A budget
	// that covers one but not both (θ ≈ 15/1020) must admit neither,
	// because blocks of equal frequency are admitted as a class.
	p := synthProgram([]struct {
		freq uint64
		size int
	}{
		{1, 10},
		{1, 10},
		{100, 10},
	})
	cs := IdentifyCold(p, 15.0/1020.0)
	if cs.Cold[labelFor(0)] || cs.Cold[labelFor(1)] {
		t.Fatalf("partial frequency class admitted: %v", cs.Cold)
	}
	cs = IdentifyCold(p, 25.0/1020.0)
	if !cs.Cold[labelFor(0)] || !cs.Cold[labelFor(1)] {
		t.Fatalf("full class not admitted: %v", cs.Cold)
	}
}

func TestIdentifyColdThetaOne(t *testing.T) {
	p := synthProgram([]struct {
		freq uint64
		size int
	}{
		{5, 3}, {7, 4}, {0, 2},
	})
	cs := IdentifyCold(p, 1)
	if len(cs.Cold) != 3 {
		t.Fatalf("θ=1 must mark everything cold: %v", cs.Cold)
	}
	if cs.ColdFraction() != 1 {
		t.Errorf("fraction = %v", cs.ColdFraction())
	}
}

func TestIdentifyColdClampsTheta(t *testing.T) {
	p := synthProgram([]struct {
		freq uint64
		size int
	}{{1, 5}})
	if got := IdentifyCold(p, -3).ColdInsts; got != 0 {
		t.Errorf("negative θ admitted %d insts", got)
	}
	if got := IdentifyCold(p, 42).ColdInsts; got != 5 {
		t.Errorf("θ>1 admitted %d insts, want all 5", got)
	}
}

func TestIdentifyColdMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		blocks := make([]struct {
			freq uint64
			size int
		}, n)
		for i := range blocks {
			blocks[i].freq = uint64(r.Intn(1000))
			blocks[i].size = 1 + r.Intn(50)
		}
		p := synthProgram(blocks)
		prev := -1
		for _, th := range []float64{0, 0.001, 0.01, 0.1, 0.5, 1} {
			cs := IdentifyCold(p, th)
			if cs.ColdInsts < prev {
				return false
			}
			// Invariant: everything with freq <= MaxFreq is cold, nothing else.
			for i, b := range blocks {
				want := b.freq <= cs.MaxFreq
				if cs.Cold[labelFor(i)] != want {
					return false
				}
			}
			prev = cs.ColdInsts
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsSerializationRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := make(Counts, r.Intn(200))
		for i := range c {
			c[i] = uint64(r.Intn(1 << 30))
		}
		var buf bytes.Buffer
		if _, err := c.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadCounts(&buf)
		if err != nil {
			return false
		}
		if len(c) == 0 && len(back) == 0 {
			return true
		}
		return reflect.DeepEqual(c, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadCountsRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("EMPX"),
		[]byte("EMP1\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff"), // huge count
		[]byte{'E', 'M', 'P', '1', 3, 1},                       // truncated values
	} {
		if _, err := ReadCounts(bytes.NewReader(b)); err == nil {
			t.Errorf("accepted %q", b)
		}
	}
}
