// Package testprog generates small random-but-well-formed EM32 programs
// for differential testing of the binary-rewriting tools: a main loop
// reading input, a tree of functions with random bodies (arithmetic,
// diamonds, bounded loops, calls deeper into the tree), following the
// toolchain conventions (RA saved in non-leaf functions, AT never used,
// every register defined before read). The squeeze and squash differential
// fuzzers both consume it.
package testprog

import (
	"fmt"
	"math/rand"
	"strings"
)

// Random renders one program for the given seed. Identical seeds yield
// identical programs.
func Random(seed int64) string {
	r := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	nFuncs := 3 + r.Intn(6)
	sb.WriteString(`        .text
        .func main
        lda  sp, -32(sp)
        stw  ra, 0(sp)
mloop:  sys  getc
        blt  v0, mdone
        stw  v0, 4(sp)
        mov  v0, a0
        bsr  ra, f0
        and  v0, 255, a0
        sys  putc
        br   mloop
mdone:  ldw  ra, 0(sp)
        lda  sp, 32(sp)
        clr  a0
        sys  halt
`)
	lbl := 0
	newLabel := func() string { lbl++; return fmt.Sprintf("L%d_%d", seed&0xFFF, lbl) }
	for i := 0; i < nFuncs; i++ {
		leaf := i == nFuncs-1 || r.Intn(4) == 0
		fmt.Fprintf(&sb, "        .func f%d\n", i)
		if leaf {
			// Leaf: pure arithmetic on a0 -> v0.
			sb.WriteString("        mov  a0, t0\n")
			for k := 0; k < 2+r.Intn(6); k++ {
				fmt.Fprintf(&sb, "        %s  t0, %d, t0\n",
					[]string{"add", "xor", "sub", "and"}[r.Intn(4)], 1+r.Intn(50))
			}
			sb.WriteString("        mov  t0, v0\n        ret\n")
			continue
		}
		sb.WriteString("        lda  sp, -32(sp)\n        stw  ra, 0(sp)\n        stw  a0, 4(sp)\n")
		sb.WriteString("        li   t2, 1\n")
		nFrags := 1 + r.Intn(4)
		for k := 0; k < nFrags; k++ {
			switch r.Intn(4) {
			case 0: // arithmetic
				for j := 0; j < 2+r.Intn(5); j++ {
					fmt.Fprintf(&sb, "        %s  t2, %d, t2\n",
						[]string{"add", "xor", "sll", "srl"}[r.Intn(4)], 1+r.Intn(7))
				}
			case 1: // diamond
				el, jn := newLabel(), newLabel()
				fmt.Fprintf(&sb, "        ldw  t0, 4(sp)\n        and  t0, %d, t1\n", 1+r.Intn(7))
				fmt.Fprintf(&sb, "        beq  t1, %s\n", el)
				fmt.Fprintf(&sb, "        add  t2, %d, t2\n        br   %s\n", r.Intn(9), jn)
				fmt.Fprintf(&sb, "%s:     sub  t2, %d, t2\n%s:     nop\n", el, r.Intn(9), jn)
			case 2: // bounded loop
				lp := newLabel()
				fmt.Fprintf(&sb, "        li   t0, %d\n%s:     add  t2, 3, t2\n", 1+r.Intn(5), lp)
				fmt.Fprintf(&sb, "        sub  t0, 1, t0\n        bgt  t0, %s\n", lp)
			case 3: // call deeper
				callee := i + 1 + r.Intn(nFuncs-i-1)
				sb.WriteString("        ldw  a0, 4(sp)\n")
				fmt.Fprintf(&sb, "        bsr  ra, f%d\n", callee)
				sb.WriteString("        add  v0, t2, t2\n")
			}
		}
		sb.WriteString("        mov  t2, v0\n        ldw  ra, 0(sp)\n        lda  sp, 32(sp)\n        ret\n")
	}
	return sb.String()
}
