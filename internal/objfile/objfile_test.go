package objfile

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func sampleObject() *Object {
	return &Object{
		Text: []uint32{
			isa.Encode(isa.Br(isa.OpBR, isa.RegZero, 0)), // reloc to "end"
			isa.Encode(isa.Mem(isa.OpLDAH, 1, 31, 0)),    // hi16 to "blob"
			isa.Encode(isa.Mem(isa.OpLDA, 1, 1, 0)),      // lo16 to "blob"
			isa.Encode(isa.Sys(isa.SysHALT)),             // "end"
		},
		Data: []byte{1, 2, 3, 4, 0, 0, 0, 0},
		Symbols: []Symbol{
			{Name: "main", Section: SecText, Offset: 0, Kind: SymFunc},
			{Name: "end", Section: SecText, Offset: 12, Kind: SymLabel},
			{Name: "blob", Section: SecData, Offset: 0, Kind: SymObject},
		},
		Relocs: []Reloc{
			{Section: SecText, Offset: 0, Kind: RelBrDisp21, Sym: "end"},
			{Section: SecText, Offset: 4, Kind: RelHi16, Sym: "blob"},
			{Section: SecText, Offset: 8, Kind: RelLo16, Sym: "blob"},
			{Section: SecData, Offset: 4, Kind: RelWord32, Sym: "main"},
		},
	}
}

func TestLinkResolvesAllRelocKinds(t *testing.T) {
	im, err := Link("main", sampleObject())
	if err != nil {
		t.Fatal(err)
	}
	// Branch from word 0 to word 3: displacement 2.
	br := isa.Decode(im.Text[0])
	if br.Disp != 2 {
		t.Errorf("branch disp = %d, want 2", br.Disp)
	}
	// la pair materializes DataBase.
	hi := isa.Decode(im.Text[1])
	lo := isa.Decode(im.Text[2])
	addr := uint32(hi.Disp<<16 + lo.Disp)
	if addr != DataBase {
		t.Errorf("la materializes %#x, want %#x", addr, DataBase)
	}
	// Data word patched with main's address.
	if got := Word(im.Data, 4); got != TextBase {
		t.Errorf("data word = %#x, want %#x", got, TextBase)
	}
	if im.Entry != TextBase {
		t.Errorf("entry = %#x", im.Entry)
	}
}

func TestLinkErrors(t *testing.T) {
	undef := sampleObject()
	undef.Relocs[0].Sym = "nowhere"
	if _, err := Link("main", undef); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Errorf("undefined symbol: err = %v", err)
	}

	dup := sampleObject()
	dup.Symbols = append(dup.Symbols, Symbol{Name: "main", Section: SecText, Offset: 4, Kind: SymLabel})
	if _, err := Link("main", dup); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Errorf("duplicate symbol: err = %v", err)
	}

	if _, err := Link("main"); err == nil {
		t.Error("no objects accepted")
	}

	noEntry := sampleObject()
	if _, err := Link("start", noEntry); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("missing entry: err = %v", err)
	}
}

func TestLinkMultipleObjects(t *testing.T) {
	a := &Object{
		Text:    []uint32{isa.Encode(isa.Br(isa.OpBSR, isa.RegRA, 0)), isa.Encode(isa.Sys(isa.SysHALT))},
		Symbols: []Symbol{{Name: "main", Section: SecText, Offset: 0, Kind: SymFunc}},
		Relocs:  []Reloc{{Section: SecText, Offset: 0, Kind: RelBrDisp21, Sym: "helper"}},
	}
	b := &Object{
		Text:    []uint32{isa.Encode(isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0))},
		Symbols: []Symbol{{Name: "helper", Section: SecText, Offset: 0, Kind: SymFunc}},
	}
	im, err := Link("main", a, b)
	if err != nil {
		t.Fatal(err)
	}
	// helper is at word 2; bsr at word 0 → disp 1.
	if d := isa.Decode(im.Text[0]).Disp; d != 1 {
		t.Errorf("cross-object call disp = %d, want 1", d)
	}
	if got, _ := im.SymAddr("helper"); got != TextBase+8 {
		t.Errorf("helper at %#x", got)
	}
	if _, err := im.SymAddr("nonesuch"); err == nil {
		t.Error("SymAddr found a ghost")
	}
}

func TestBranchRangeError(t *testing.T) {
	// A branch to a target ~2^21 words away must be rejected.
	far := &Object{
		Text: make([]uint32, 1<<21+8),
		Symbols: []Symbol{
			{Name: "main", Section: SecText, Offset: 0, Kind: SymFunc},
			{Name: "far", Section: SecText, Offset: (1<<21 + 4) * 4, Kind: SymLabel},
		},
		Relocs: []Reloc{{Section: SecText, Offset: 0, Kind: RelBrDisp21, Sym: "far"}},
	}
	for i := range far.Text {
		far.Text[i] = isa.Encode(isa.Nop())
	}
	if _, err := Link("main", far); err == nil || !strings.Contains(err.Error(), "range") {
		t.Errorf("out-of-range branch: err = %v", err)
	}
}

func TestImageSerializationRoundTrip(t *testing.T) {
	im, err := Link("main", sampleObject())
	if err != nil {
		t.Fatal(err)
	}
	im.Meta = []byte{9, 8, 7}
	var buf bytes.Buffer
	if _, err := im.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(im, back) {
		t.Fatalf("image round trip mismatch:\n%+v\n%+v", im, back)
	}
}

func TestObjectSerializationRoundTrip(t *testing.T) {
	obj := sampleObject()
	var buf bytes.Buffer
	if _, err := obj.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadObject(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(obj, back) {
		t.Fatalf("object round trip mismatch")
	}
}

func TestSerializationRejectsCorruption(t *testing.T) {
	im, _ := Link("main", sampleObject())
	var buf bytes.Buffer
	im.WriteTo(&buf)
	full := buf.Bytes()

	if _, err := ReadImage(bytes.NewReader([]byte("EMO1"))); err == nil {
		t.Error("image reader accepted object magic")
	}
	if _, err := ReadObject(bytes.NewReader(full)); err == nil {
		t.Error("object reader accepted image magic")
	}
	for _, n := range []int{0, 3, 7, len(full) / 2, len(full) - 1} {
		if _, err := ReadImage(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
	// Trailing garbage.
	if _, err := ReadImage(bytes.NewReader(append(append([]byte{}, full...), 0xEE))); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestSerializationPropertyRandomObjects(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		obj := &Object{}
		for i := 0; i < r.Intn(50); i++ {
			obj.Text = append(obj.Text, r.Uint32())
		}
		for i := 0; i < r.Intn(64); i++ {
			obj.Data = append(obj.Data, byte(r.Intn(256)))
		}
		for i := 0; i < r.Intn(10); i++ {
			obj.Symbols = append(obj.Symbols, Symbol{
				Name:    string(rune('a' + r.Intn(26))),
				Section: Section(r.Intn(2)),
				Offset:  uint32(r.Intn(1000)),
				Kind:    SymKind(r.Intn(3)),
			})
		}
		var buf bytes.Buffer
		if _, err := obj.WriteTo(&buf); err != nil {
			return false
		}
		back, err := ReadObject(&buf)
		if err != nil {
			return false
		}
		if len(obj.Text) == 0 && len(back.Text) == 0 {
			back.Text = obj.Text // nil vs empty
		}
		if len(obj.Data) == 0 && len(back.Data) == 0 {
			back.Data = obj.Data
		}
		if len(obj.Symbols) == 0 && len(back.Symbols) == 0 {
			back.Symbols = obj.Symbols
		}
		return reflect.DeepEqual(obj.Text, back.Text) &&
			reflect.DeepEqual(obj.Data, back.Data) &&
			reflect.DeepEqual(obj.Symbols, back.Symbols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSymbolAddrAndKindStrings(t *testing.T) {
	s := Symbol{Name: "x", Section: SecData, Offset: 8}
	if s.Addr() != DataBase+8 {
		t.Errorf("data symbol addr = %#x", s.Addr())
	}
	if SymFunc.String() != "func" || RelHi16.String() != "hi16" {
		t.Error("kind strings broken")
	}
	r := Reloc{Section: SecText, Offset: 4}
	if r.AbsAddr() != TextBase+4 {
		t.Errorf("reloc abs addr = %#x", r.AbsAddr())
	}
}

func TestFuncSymbolsSorted(t *testing.T) {
	obj := sampleObject()
	obj.Symbols = append(obj.Symbols, Symbol{Name: "zz", Section: SecText, Offset: 8, Kind: SymFunc})
	im, err := Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	fs := im.FuncSymbols()
	if len(fs) != 2 || fs[0].Name != "main" || fs[1].Name != "zz" {
		t.Fatalf("FuncSymbols = %+v", fs)
	}
}
