// Package objfile defines the EM32 object and executable formats and the
// linker that turns objects into runnable images.
//
// Following the paper's toolchain requirements, linked images *retain their
// relocation and symbol information*: the binary-rewriting stages (squeeze,
// squash) rely on relocations to distinguish code addresses from data, just
// as alto/squeeze require statically linked Alpha executables with
// relocations preserved (paper, §7 footnote 2).
package objfile

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Fixed memory layout of a linked image. The data segment base does not
// depend on the text size, so rewriting the text section never moves data.
const (
	TextBase uint32 = 0x1000   // first text address
	DataBase uint32 = 0x400000 // first data address (4 MiB)
	MemSize  uint32 = 0x800000 // total simulated memory (8 MiB)
	StackTop uint32 = MemSize - 16
)

// RelocKind classifies a relocation.
type RelocKind uint8

const (
	// RelBrDisp21 patches the 21-bit word displacement of a branch-format
	// instruction so that it reaches symbol+addend.
	RelBrDisp21 RelocKind = iota
	// RelHi16 patches the 16-bit displacement of an LDAH instruction with
	// the high half of symbol+addend (adjusted for the sign of the low half).
	RelHi16
	// RelLo16 patches the 16-bit displacement of a memory-format
	// instruction with the low half of symbol+addend.
	RelLo16
	// RelWord32 patches a full 32-bit word (usually in the data section:
	// jump tables and function pointers) with symbol+addend.
	RelWord32
)

var relocKindNames = [...]string{"brdisp21", "hi16", "lo16", "word32"}

func (k RelocKind) String() string {
	if int(k) < len(relocKindNames) {
		return relocKindNames[k]
	}
	return fmt.Sprintf("reloc(%d)", uint8(k))
}

// SymKind classifies a symbol.
type SymKind uint8

const (
	SymFunc   SymKind = iota // start of a function in the text section
	SymLabel                 // a code label inside a function
	SymObject                // a data-section object
)

var symKindNames = [...]string{"func", "label", "object"}

func (k SymKind) String() string {
	if int(k) < len(symKindNames) {
		return symKindNames[k]
	}
	return fmt.Sprintf("sym(%d)", uint8(k))
}

// Section identifies which section an offset refers to.
type Section uint8

const (
	SecText Section = iota
	SecData
)

// Symbol names a location in a section.
type Symbol struct {
	Name    string
	Section Section
	Offset  uint32 // byte offset within the section
	Kind    SymKind
}

// Reloc records that the field at Offset (byte offset within Section) must
// be patched with the address of Sym plus Addend.
type Reloc struct {
	Section Section
	Offset  uint32
	Kind    RelocKind
	Sym     string
	Addend  int32
}

// Object is a relocatable unit produced by the assembler or by the
// CFG-lowering stage of the rewriting tools.
type Object struct {
	Text    []uint32 // instruction words, displacement fields unresolved
	Data    []byte
	Symbols []Symbol
	Relocs  []Reloc
}

// Image is a linked executable: resolved code and data plus the retained
// symbol and relocation tables.
//
// Meta carries tool-specific metadata; squash stores its decompression
// runtime description there (region offset table, Huffman code tables,
// reserved-area addresses). In the paper's system this information is
// embedded in the binary as the decompressor's private data; here it rides
// in a tagged section so the simulator can install the runtime hook. Its
// contents are charged to the program footprint explicitly by the squash
// accounting (offset table, code tables), not by section size.
type Image struct {
	Text    []uint32
	Data    []byte
	Entry   uint32   // address of the first instruction to execute
	Symbols []Symbol // offsets relative to the owning section base
	Relocs  []Reloc  // offsets relative to the owning section base
	Meta    []byte
}

// TextSize reports the text section size in bytes.
func (im *Image) TextSize() int { return len(im.Text) * isa.WordSize }

// SymAddr reports the absolute address of a symbol, or an error if the
// symbol is not defined.
func (im *Image) SymAddr(name string) (uint32, error) {
	for _, s := range im.Symbols {
		if s.Name == name {
			return s.Addr(), nil
		}
	}
	return 0, fmt.Errorf("objfile: undefined symbol %q", name)
}

// Addr reports the absolute address of the symbol in a linked image.
func (s Symbol) Addr() uint32 {
	if s.Section == SecText {
		return TextBase + s.Offset
	}
	return DataBase + s.Offset
}

// AbsAddr reports the absolute address a relocation patches.
func (r Reloc) AbsAddr() uint32 {
	if r.Section == SecText {
		return TextBase + r.Offset
	}
	return DataBase + r.Offset
}

// FuncSymbols returns the function symbols in ascending address order.
func (im *Image) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range im.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Offset < out[j].Offset })
	return out
}

// Link resolves one or more objects into an executable image. Text sections
// are concatenated in argument order starting at TextBase; data sections at
// DataBase. The entry point is the symbol named by entry (usually "main").
func Link(entry string, objs ...*Object) (*Image, error) {
	if len(objs) == 0 {
		return nil, fmt.Errorf("objfile: no objects to link")
	}
	im := &Image{}
	type base struct{ text, data uint32 }
	bases := make([]base, len(objs))
	for i, o := range objs {
		bases[i] = base{uint32(len(im.Text) * isa.WordSize), uint32(len(im.Data))}
		im.Text = append(im.Text, o.Text...)
		im.Data = append(im.Data, o.Data...)
	}

	// Build the global symbol table.
	addrOf := make(map[string]uint32, 64)
	for i, o := range objs {
		for _, s := range o.Symbols {
			adj := s
			if s.Section == SecText {
				adj.Offset += bases[i].text
			} else {
				adj.Offset += bases[i].data
			}
			if old, dup := addrOf[s.Name]; dup {
				return nil, fmt.Errorf("objfile: symbol %q defined twice (first at %#x)", s.Name, old)
			}
			addrOf[s.Name] = adj.Addr()
			im.Symbols = append(im.Symbols, adj)
		}
	}

	// Apply relocations.
	for i, o := range objs {
		for _, r := range o.Relocs {
			adj := r
			if r.Section == SecText {
				adj.Offset += bases[i].text
			} else {
				adj.Offset += bases[i].data
			}
			target, ok := addrOf[r.Sym]
			if !ok {
				return nil, fmt.Errorf("objfile: undefined symbol %q in relocation at %v+%#x", r.Sym, r.Section, adj.Offset)
			}
			if err := applyReloc(im, adj, target); err != nil {
				return nil, err
			}
			im.Relocs = append(im.Relocs, adj)
		}
	}

	entryAddr, ok := addrOf[entry]
	if !ok {
		return nil, fmt.Errorf("objfile: entry symbol %q not defined", entry)
	}
	im.Entry = entryAddr
	return im, nil
}

func applyReloc(im *Image, r Reloc, target uint32) error {
	v := int64(target) + int64(r.Addend)
	switch r.Kind {
	case RelBrDisp21:
		if r.Section != SecText || r.Offset%isa.WordSize != 0 {
			return fmt.Errorf("objfile: branch relocation at misaligned or non-text offset %#x", r.Offset)
		}
		idx := r.Offset / isa.WordSize
		pc := TextBase + r.Offset
		dispBytes := v - int64(pc) - isa.WordSize
		if dispBytes%isa.WordSize != 0 {
			return fmt.Errorf("objfile: branch target %#x misaligned", v)
		}
		disp := dispBytes / isa.WordSize
		if disp < -(1<<20) || disp >= 1<<20 {
			return fmt.Errorf("objfile: branch displacement %d to %q out of range", disp, r.Sym)
		}
		im.Text[idx] = im.Text[idx]&^uint32(0x1FFFFF) | uint32(disp)&0x1FFFFF
	case RelHi16, RelLo16:
		if r.Section != SecText || r.Offset%isa.WordSize != 0 {
			return fmt.Errorf("objfile: %v relocation at misaligned or non-text offset %#x", r.Kind, r.Offset)
		}
		idx := r.Offset / isa.WordSize
		lo := int16(v & 0xFFFF)
		var patch uint32
		if r.Kind == RelLo16 {
			patch = uint32(uint16(lo))
		} else {
			patch = uint32((v - int64(lo)) >> 16 & 0xFFFF)
		}
		im.Text[idx] = im.Text[idx]&^uint32(0xFFFF) | patch
	case RelWord32:
		switch r.Section {
		case SecData:
			if int(r.Offset)+4 > len(im.Data) {
				return fmt.Errorf("objfile: data relocation at %#x past end of section", r.Offset)
			}
			putWord(im.Data[r.Offset:], uint32(v))
		case SecText:
			im.Text[r.Offset/isa.WordSize] = uint32(v)
		}
	default:
		return fmt.Errorf("objfile: unknown relocation kind %v", r.Kind)
	}
	return nil
}

func putWord(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// Word reads the little-endian 32-bit word at byte offset off of b.
func Word(b []byte, off uint32) uint32 {
	return uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24
}
