package objfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/isa"
)

// On-disk format for linked images. The layout is deliberately simple:
//
//	magic "EMX1" | entry u32
//	text:    count u32, words...
//	data:    count u32, bytes...
//	symbols: count u32, { name, section u8, offset u32, kind u8 }...
//	relocs:  count u32, { section u8, offset u32, kind u8, sym, addend i32 }...
//
// Strings are u16 length-prefixed. All integers are little-endian.

var imageMagic = [4]byte{'E', 'M', 'X', '1'}

// WriteTo serializes the image. A *bytes.Buffer destination is appended to
// directly with an exact presize (the daemon's pooled request scratch takes
// this path, making a warm serialization allocation-free); any other writer
// receives the whole image in a single Write, as before.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	if buf, ok := w.(*bytes.Buffer); ok {
		start := buf.Len()
		buf.Grow(im.serializedSize())
		im.appendTo(buf)
		return int64(buf.Len() - start), nil
	}
	var buf bytes.Buffer
	buf.Grow(im.serializedSize())
	im.appendTo(&buf)
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// serializedSize reports the exact byte length appendTo produces.
func (im *Image) serializedSize() int {
	n := len(imageMagic) + 4 + // magic, entry
		4 + 4*len(im.Text) +
		4 + len(im.Data) +
		4 + 4 + len(im.Meta) // symbol count, meta
	for _, s := range im.Symbols {
		n += 2 + min(len(s.Name), 0xFFFF) + 1 + 4 + 1
	}
	n += 4 // reloc count
	for _, r := range im.Relocs {
		n += 1 + 4 + 1 + 2 + min(len(r.Sym), 0xFFFF) + 4
	}
	return n
}

// appendTo writes the serialized image into buf.
func (im *Image) appendTo(buf *bytes.Buffer) {
	buf.Write(imageMagic[:])
	le := binary.LittleEndian
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); buf.Write(b[:]) }
	writeStr := func(s string) {
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		var b [2]byte
		le.PutUint16(b[:], uint16(len(s)))
		buf.Write(b[:])
		buf.WriteString(s)
	}
	writeU32(im.Entry)
	writeU32(uint32(len(im.Text)))
	for _, w := range im.Text {
		writeU32(w)
	}
	writeU32(uint32(len(im.Data)))
	buf.Write(im.Data)
	writeU32(uint32(len(im.Symbols)))
	for _, s := range im.Symbols {
		writeStr(s.Name)
		buf.WriteByte(byte(s.Section))
		writeU32(s.Offset)
		buf.WriteByte(byte(s.Kind))
	}
	writeU32(uint32(len(im.Relocs)))
	for _, r := range im.Relocs {
		buf.WriteByte(byte(r.Section))
		writeU32(r.Offset)
		buf.WriteByte(byte(r.Kind))
		writeStr(r.Sym)
		writeU32(uint32(r.Addend))
	}
	writeU32(uint32(len(im.Meta)))
	buf.Write(im.Meta)
}

// ReadImage deserializes an image written by WriteTo.
func ReadImage(r io.Reader) (*Image, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || !bytes.Equal(data[:4], imageMagic[:]) {
		return nil, fmt.Errorf("objfile: bad magic; not an EM32 image")
	}
	pos := 4
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("objfile: truncated image at byte %d", pos)
		}
		v := le.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	readStr := func() (string, error) {
		if pos+2 > len(data) {
			return "", fmt.Errorf("objfile: truncated string at byte %d", pos)
		}
		n := int(le.Uint16(data[pos:]))
		pos += 2
		if pos+n > len(data) {
			return "", fmt.Errorf("objfile: truncated string body at byte %d", pos)
		}
		s := string(data[pos : pos+n])
		pos += n
		return s, nil
	}
	readByte := func() (byte, error) {
		if pos >= len(data) {
			return 0, fmt.Errorf("objfile: truncated image at byte %d", pos)
		}
		b := data[pos]
		pos++
		return b, nil
	}

	im := &Image{}
	if im.Entry, err = readU32(); err != nil {
		return nil, err
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(data)-pos)/isa.WordSize {
		return nil, fmt.Errorf("objfile: declared text size %d words exceeds file size", n)
	}
	im.Text = make([]uint32, n)
	for i := range im.Text {
		if im.Text[i], err = readU32(); err != nil {
			return nil, err
		}
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	if int(n) > len(data)-pos {
		return nil, fmt.Errorf("objfile: declared data size %d exceeds file size", n)
	}
	im.Data = append([]byte(nil), data[pos:pos+int(n)]...)
	pos += int(n)

	if n, err = readU32(); err != nil {
		return nil, err
	}
	im.Symbols = make([]Symbol, 0, n)
	for i := uint32(0); i < n; i++ {
		var s Symbol
		if s.Name, err = readStr(); err != nil {
			return nil, err
		}
		sec, err := readByte()
		if err != nil {
			return nil, err
		}
		s.Section = Section(sec)
		if s.Offset, err = readU32(); err != nil {
			return nil, err
		}
		kind, err := readByte()
		if err != nil {
			return nil, err
		}
		s.Kind = SymKind(kind)
		im.Symbols = append(im.Symbols, s)
	}

	if n, err = readU32(); err != nil {
		return nil, err
	}
	im.Relocs = make([]Reloc, 0, n)
	for i := uint32(0); i < n; i++ {
		var rl Reloc
		sec, err := readByte()
		if err != nil {
			return nil, err
		}
		rl.Section = Section(sec)
		if rl.Offset, err = readU32(); err != nil {
			return nil, err
		}
		kind, err := readByte()
		if err != nil {
			return nil, err
		}
		rl.Kind = RelocKind(kind)
		if rl.Sym, err = readStr(); err != nil {
			return nil, err
		}
		a, err := readU32()
		if err != nil {
			return nil, err
		}
		rl.Addend = int32(a)
		im.Relocs = append(im.Relocs, rl)
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	if int(n) > len(data)-pos {
		return nil, fmt.Errorf("objfile: declared meta size %d exceeds file size", n)
	}
	if n > 0 {
		im.Meta = append([]byte(nil), data[pos:pos+int(n)]...)
		pos += int(n)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("objfile: %d trailing bytes", len(data)-pos)
	}
	return im, nil
}

// On-disk format for relocatable objects ("EMO1"): like images but with
// unresolved relocations and no entry point.

var objectMagic = [4]byte{'E', 'M', 'O', '1'}

// WriteTo serializes the object.
func (o *Object) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(objectMagic[:])
	le := binary.LittleEndian
	writeU32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); buf.Write(b[:]) }
	writeStr := func(s string) {
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		var b [2]byte
		le.PutUint16(b[:], uint16(len(s)))
		buf.Write(b[:])
		buf.WriteString(s)
	}
	writeU32(uint32(len(o.Text)))
	for _, w := range o.Text {
		writeU32(w)
	}
	writeU32(uint32(len(o.Data)))
	buf.Write(o.Data)
	writeU32(uint32(len(o.Symbols)))
	for _, s := range o.Symbols {
		writeStr(s.Name)
		buf.WriteByte(byte(s.Section))
		writeU32(s.Offset)
		buf.WriteByte(byte(s.Kind))
	}
	writeU32(uint32(len(o.Relocs)))
	for _, r := range o.Relocs {
		buf.WriteByte(byte(r.Section))
		writeU32(r.Offset)
		buf.WriteByte(byte(r.Kind))
		writeStr(r.Sym)
		writeU32(uint32(r.Addend))
	}
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// ReadObject deserializes an object written by Object.WriteTo.
func ReadObject(r io.Reader) (*Object, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if len(data) < 4 || !bytes.Equal(data[:4], objectMagic[:]) {
		return nil, fmt.Errorf("objfile: bad magic; not an EM32 object")
	}
	pos := 4
	le := binary.LittleEndian
	readU32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("objfile: truncated object at byte %d", pos)
		}
		v := le.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	readStr := func() (string, error) {
		if pos+2 > len(data) {
			return "", fmt.Errorf("objfile: truncated string at byte %d", pos)
		}
		n := int(le.Uint16(data[pos:]))
		pos += 2
		if pos+n > len(data) {
			return "", fmt.Errorf("objfile: truncated string body at byte %d", pos)
		}
		s := string(data[pos : pos+n])
		pos += n
		return s, nil
	}
	readByte := func() (byte, error) {
		if pos >= len(data) {
			return 0, fmt.Errorf("objfile: truncated object at byte %d", pos)
		}
		b := data[pos]
		pos++
		return b, nil
	}
	o := &Object{}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(data)-pos)/isa.WordSize {
		return nil, fmt.Errorf("objfile: declared text size %d words exceeds file size", n)
	}
	o.Text = make([]uint32, n)
	for i := range o.Text {
		if o.Text[i], err = readU32(); err != nil {
			return nil, err
		}
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	if int(n) > len(data)-pos {
		return nil, fmt.Errorf("objfile: declared data size %d exceeds file size", n)
	}
	o.Data = append([]byte(nil), data[pos:pos+int(n)]...)
	pos += int(n)
	if n, err = readU32(); err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		var s Symbol
		if s.Name, err = readStr(); err != nil {
			return nil, err
		}
		sec, err := readByte()
		if err != nil {
			return nil, err
		}
		s.Section = Section(sec)
		if s.Offset, err = readU32(); err != nil {
			return nil, err
		}
		kind, err := readByte()
		if err != nil {
			return nil, err
		}
		s.Kind = SymKind(kind)
		o.Symbols = append(o.Symbols, s)
	}
	if n, err = readU32(); err != nil {
		return nil, err
	}
	for i := uint32(0); i < n; i++ {
		var rl Reloc
		sec, err := readByte()
		if err != nil {
			return nil, err
		}
		rl.Section = Section(sec)
		if rl.Offset, err = readU32(); err != nil {
			return nil, err
		}
		kind, err := readByte()
		if err != nil {
			return nil, err
		}
		rl.Kind = RelocKind(kind)
		if rl.Sym, err = readStr(); err != nil {
			return nil, err
		}
		a, err := readU32()
		if err != nil {
			return nil, err
		}
		rl.Addend = int32(a)
		o.Relocs = append(o.Relocs, rl)
	}
	if pos != len(data) {
		return nil, fmt.Errorf("objfile: %d trailing bytes", len(data)-pos)
	}
	return o, nil
}
