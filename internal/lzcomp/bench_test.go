package lzcomp

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/mediabench"
	"repro/internal/objfile"
)

// adpcmSeq extracts a region-sized instruction sequence from real benchmark
// code: the realistic corpus, where raw-word escapes (32-bit reads shared by
// both decoders) dilute the codeword decoding the pair isolates.
func adpcmSeq(b *testing.B) []isa.Inst {
	spec, _ := mediabench.SpecByName("adpcm")
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	seq := make([]isa.Inst, 0, 4000)
	for _, w := range im.Text[:4000] {
		in := isa.Decode(w)
		if in.Format != isa.FormatIllegal {
			seq = append(seq, in)
		}
	}
	return seq
}

// dictSeq builds a sequence over a small recurring word alphabet, the shape
// of boilerplate-heavy code: every token is a dictionary literal, so decode
// time is dominated by Huffman codewords and the table/tree ratio measures
// the decoder itself. No consecutive word pair repeats within the match
// window, so the greedy matcher emits no back-references.
func dictSeq(b *testing.B) []isa.Inst {
	alphabet := make([]isa.Inst, 64)
	for i := range alphabet {
		// (RA, RC) = (i mod 32, i / 32) is injective over the 64 entries,
		// so all alphabet words are distinct.
		alphabet[i] = isa.OpR(isa.OpIntA, uint32(i%32), 7, isa.FnADD, uint32(i/32))
	}
	seq := make([]isa.Inst, 3500)
	lastPair := map[[2]int]int{}
	prev := 0
	state := uint32(1)
	for i := range seq {
		state = state*1664525 + 1013904223 // high LCG bits: the low ones cycle
		pick := -1
		for k := 0; k < len(alphabet); k++ {
			cand := (int(state>>26) + k) % len(alphabet)
			if p, seen := lastPair[[2]int{prev, cand}]; !seen || i-p > maxDistance+1 {
				pick = cand
				break
			}
		}
		if pick < 0 {
			b.Fatal("dictSeq: no pair-free symbol available")
		}
		lastPair[[2]int{prev, pick}] = i
		seq[i] = alphabet[pick]
		prev = pick
	}
	return seq
}

// BenchmarkLZDecode measures decoding one region with the table-driven
// Huffman decoder ("table") and the reference bit-at-a-time decoder
// ("tree"). Both consume identical bits; the pair quantifies the fast-decode
// speedup the runtime gets when the fast paths are enabled. Two corpora
// bound the ratio: "adpcm" is real benchmark code (raw-escape-heavy, so the
// shared 32-bit reads compress the ratio), "dictheavy" is codeword-bound.
func BenchmarkLZDecode(b *testing.B) {
	corpora := []struct {
		name string
		seq  []isa.Inst
	}{
		{"adpcm", adpcmSeq(b)},
		{"dictheavy", dictSeq(b)},
	}
	for _, corpus := range corpora {
		seq := corpus.seq
		c := Train([][]isa.Inst{seq})
		if corpus.name == "dictheavy" {
			words := make([]uint32, len(seq))
			for i, in := range seq {
				words[i] = isa.Encode(in)
			}
			for _, tok := range c.tokenize(words) {
				if tok.kind == kindMatch || tok.kind == kindRaw {
					b.Fatalf("dictheavy corpus produced a kind-%d token; ratio no longer isolates codeword decode", tok.kind)
				}
			}
		}
		var w huffman.BitWriter
		if err := c.Compress(&w, seq); err != nil {
			b.Fatal(err)
		}
		blob := w.Bytes()
		for _, mode := range []struct {
			name string
			slow bool
		}{{"table", false}, {"tree", true}} {
			b.Run(corpus.name+"/"+mode.name, func(b *testing.B) {
				c.SetSlowDecode(mode.slow)
				defer c.SetSlowDecode(false)
				c.Prime()
				b.SetBytes(int64(4 * len(seq)))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					n := 0
					if _, err := c.Decompress(blob, 0, func(isa.Inst) error {
						n++
						return nil
					}); err != nil {
						b.Fatal(err)
					}
					if n != len(seq) {
						b.Fatalf("decoded %d insts, want %d", n, len(seq))
					}
				}
			})
		}
	}
}
