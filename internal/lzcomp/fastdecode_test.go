package lzcomp

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// decodeAll decompresses one region with the given decoder selection and
// returns the instruction words and bits consumed.
func decodeAll(t *testing.T, c *Compressor, blob []byte, off int, slow bool) ([]uint32, int) {
	t.Helper()
	c.SetSlowDecode(slow)
	defer c.SetSlowDecode(false)
	var words []uint32
	bits, err := c.Decompress(blob, off, func(in isa.Inst) error {
		words = append(words, isa.Encode(in))
		return nil
	})
	if err != nil {
		t.Fatalf("Decompress (slow=%v): %v", slow, err)
	}
	return words, bits
}

// TestFastSlowDecodeEquivalence: the table-driven decoder and the reference
// bit-at-a-time decoder must emit the same instructions and consume the same
// bits on every valid stream — the invariant that lets the runtime's
// fast-path-disabled mode use DecodeTree as the oracle.
func TestFastSlowDecodeEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		insts := isa.RandInsts(seed, 120)
		var seq []isa.Inst
		for _, in := range insts {
			if in.Format != isa.FormatIllegal {
				seq = append(seq, in)
			}
		}
		c := Train([][]isa.Inst{seq})
		var w huffman.BitWriter
		if err := c.Compress(&w, seq); err != nil {
			return false
		}
		fast, fb := decodeAll(t, c, w.Bytes(), 0, false)
		slow, sb := decodeAll(t, c, w.Bytes(), 0, true)
		if fb != sb || len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleSymbolCodes drives the degenerate case where the dict, dist, and
// len codes each hold exactly one symbol: a one-codeword canonical code is
// Kraft-incomplete (its single 1-bit codeword leaves half the code space
// unused), which is precisely the shape where the table-driven decoder must
// fall back to the reference tree walk. Fast and slow decodes must agree.
func TestSingleSymbolCodes(t *testing.T) {
	word := isa.OpR(isa.OpIntA, isa.RegT0, isa.RegT0+1, isa.FnADD, isa.RegT0+2)
	seq := make([]isa.Inst, 20)
	for i := range seq {
		seq[i] = word
	}
	c := Train([][]isa.Inst{seq})
	var w huffman.BitWriter
	if err := c.Compress(&w, seq); err != nil {
		t.Fatal(err)
	}
	fast, fb := decodeAll(t, c, w.Bytes(), 0, false)
	slow, sb := decodeAll(t, c, w.Bytes(), 0, true)
	if fb != sb {
		t.Fatalf("bits consumed: fast %d, slow %d", fb, sb)
	}
	if len(fast) != len(seq) || len(slow) != len(seq) {
		t.Fatalf("decoded %d (fast) / %d (slow) insts, want %d", len(fast), len(slow), len(seq))
	}
	for i := range fast {
		if fast[i] != slow[i] || fast[i] != isa.Encode(word) {
			t.Fatalf("inst %d: fast %#x slow %#x want %#x", i, fast[i], slow[i], isa.Encode(word))
		}
	}
}

// TestMarshalRoundTrip: a deserialized compressor must decode streams the
// original encoded, and every truncation of the table blob must be rejected.
func TestMarshalRoundTrip(t *testing.T) {
	insts := isa.RandInsts(7, 100)
	var seq []isa.Inst
	for _, in := range insts {
		if in.Format != isa.FormatIllegal {
			seq = append(seq, in)
		}
	}
	c := Train([][]isa.Inst{seq, seq[:17]})
	blob, offsets, err := c.CompressAll([][]isa.Inst{seq, seq[:17]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Compressor
	if err := back.UnmarshalBinary(tables); err != nil {
		t.Fatalf("UnmarshalBinary: %v", err)
	}
	for i, want := range [][]isa.Inst{seq, seq[:17]} {
		got, _ := decodeAll(t, &back, blob, int(offsets[i]), false)
		gotSlow, _ := decodeAll(t, &back, blob, int(offsets[i]), true)
		if len(got) != len(want) {
			t.Fatalf("region %d: deserialized decode emitted %d insts, want %d", i, len(got), len(want))
		}
		for k := range want {
			if got[k] != isa.Encode(want[k]) || gotSlow[k] != isa.Encode(want[k]) {
				t.Fatalf("region %d inst %d differs after round trip", i, k)
			}
		}
	}
	tables2, err := back.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tables, tables2) {
		t.Fatal("re-marshalled tables differ")
	}
	for n := 0; n < len(tables); n++ {
		if err := new(Compressor).UnmarshalBinary(tables[:n]); err == nil {
			t.Fatalf("truncated tables (%d bytes) accepted", n)
		}
	}
	if err := new(Compressor).UnmarshalBinary(append(append([]byte{}, tables...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestCompressAllMatchesSequential: CompressAll must produce exactly the
// blob and offsets that sequential Compress calls against one writer would,
// at any worker count.
func TestCompressAllMatchesSequential(t *testing.T) {
	var seqs [][]isa.Inst
	for seed := int64(0); seed < 6; seed++ {
		insts := isa.RandInsts(seed, 60)
		var seq []isa.Inst
		for _, in := range insts {
			if in.Format != isa.FormatIllegal {
				seq = append(seq, in)
			}
		}
		seqs = append(seqs, seq)
	}
	c := Train(seqs)
	var ref huffman.BitWriter
	refOff := make([]uint32, len(seqs))
	for i, s := range seqs {
		refOff[i] = uint32(ref.Len())
		if err := c.Compress(&ref, s); err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 4, 8} {
		blob, offsets, err := c.CompressAll(seqs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(blob, ref.Bytes()) {
			t.Fatalf("workers=%d: blob differs from sequential", workers)
		}
		for i := range offsets {
			if offsets[i] != refOff[i] {
				t.Fatalf("workers=%d: offset %d is %d, want %d", workers, i, offsets[i], refOff[i])
			}
		}
	}
}

// FuzzLZDecompress feeds arbitrary bytes to both decoders: they must never
// panic, must consume identical bits, and must agree on error/success and
// on every emitted instruction. Emission is capped because a truncated
// stream reads past the end as zero bits, which can decode as an unbounded
// run of valid tokens.
func FuzzLZDecompress(f *testing.F) {
	word := isa.OpR(isa.OpIntA, isa.RegT0, isa.RegT0+1, isa.FnADD, isa.RegT0+2)
	seq := []isa.Inst{word, isa.Mem(isa.OpLDW, isa.RegT0, isa.RegSP, 4), word, word}
	c := Train([][]isa.Inst{seq})
	var w huffman.BitWriter
	if err := c.Compress(&w, seq); err != nil {
		f.Fatal(err)
	}
	f.Add(w.Bytes(), 0)
	f.Add([]byte{0xFF, 0x00, 0xAB}, 3)
	f.Fuzz(func(t *testing.T, blob []byte, off int) {
		if off < 0 || off > 8*len(blob) {
			return
		}
		const cap = 4096
		run := func(slow bool) (words []uint32, bits int, err error) {
			c.SetSlowDecode(slow)
			defer c.SetSlowDecode(false)
			bits, err = c.Decompress(blob, off, func(in isa.Inst) error {
				if len(words) >= cap {
					return fmt.Errorf("emit cap")
				}
				words = append(words, isa.Encode(in))
				return nil
			})
			return
		}
		fw, fb, ferr := run(false)
		sw, sb, serr := run(true)
		if (ferr == nil) != (serr == nil) {
			t.Fatalf("fast err %v, slow err %v", ferr, serr)
		}
		if fb != sb || len(fw) != len(sw) {
			t.Fatalf("fast %d bits/%d insts, slow %d bits/%d insts", fb, len(fw), sb, len(sw))
		}
		for i := range fw {
			if fw[i] != sw[i] {
				t.Fatalf("inst %d: fast %#x, slow %#x", i, fw[i], sw[i])
			}
		}
	})
}
