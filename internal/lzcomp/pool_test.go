package lzcomp

import (
	"bytes"
	"testing"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// lzTestSeqs builds a mixed corpus: repetitive stretches (matches), a small
// recurring alphabet (dictionary hits), and odd one-off words (raw escapes).
func lzTestSeqs() [][]isa.Inst {
	base := []isa.Inst{
		isa.Mem(isa.OpLDW, 1, isa.RegSP, 8),
		isa.OpR(isa.OpIntA, 1, 2, isa.FnADD, 3),
		isa.Mem(isa.OpSTW, 3, isa.RegSP, 8),
	}
	var rep []isa.Inst
	for i := 0; i < 120; i++ {
		rep = append(rep, base...)
	}
	var mixed []isa.Inst
	for i := 0; i < 200; i++ {
		mixed = append(mixed, base[i%len(base)])
		if i%7 == 0 {
			mixed = append(mixed, isa.OpL(isa.OpIntA, uint32(i%32), uint32(i%256), isa.FnSUB, 5))
		}
	}
	return [][]isa.Inst{rep, mixed, {}, base}
}

// TestPoolingOnOffByteIdentical: with pools enabled (cycled to warmth) and
// disabled, CompressAll emits the identical blob and offsets and Decompress
// yields the identical instructions.
func TestPoolingOnOffByteIdentical(t *testing.T) {
	defer huffman.SetPooling(true)
	seqs := lzTestSeqs()
	c := Train(seqs)

	cycle := func() ([]byte, []uint32, [][]isa.Inst) {
		blob, offsets, err := c.CompressAll(seqs, 2)
		if err != nil {
			t.Fatalf("CompressAll: %v", err)
		}
		dec := make([][]isa.Inst, len(seqs))
		for i := range seqs {
			if _, err := c.Decompress(blob, int(offsets[i]), func(in isa.Inst) error {
				dec[i] = append(dec[i], in)
				return nil
			}); err != nil {
				t.Fatalf("Decompress region %d: %v", i, err)
			}
		}
		return blob, offsets, dec
	}

	huffman.SetPooling(false)
	wantBlob, wantOffs, wantDec := cycle()

	huffman.SetPooling(true)
	for n := 0; n < 3; n++ {
		blob, offs, dec := cycle()
		if !bytes.Equal(blob, wantBlob) {
			t.Fatalf("cycle %d: pooled blob differs from pools-off blob", n)
		}
		for i := range offs {
			if offs[i] != wantOffs[i] {
				t.Fatalf("cycle %d: offset %d = %d, want %d", n, i, offs[i], wantOffs[i])
			}
		}
		for i := range dec {
			if len(dec[i]) != len(wantDec[i]) {
				t.Fatalf("cycle %d region %d: %d insts, want %d", n, i, len(dec[i]), len(wantDec[i]))
			}
			for k := range dec[i] {
				if dec[i][k] != wantDec[i][k] {
					t.Fatalf("cycle %d region %d inst %d differs", n, i, k)
				}
			}
		}
	}
}

// BenchmarkLZTokenDecodeAlloc is the paired allocation benchmark for LZ token
// decode: one op decompresses a full trained region (dictionary hits, matches
// and raw escapes). "pooled" recycles the reader and the back-reference
// window; "fresh" allocates both per op (pools off), the pre-pool behaviour.
// CI gates the pooled allocs/op ceiling and the fresh/pooled reduction.
func BenchmarkLZTokenDecodeAlloc(b *testing.B) {
	seqs := lzTestSeqs()
	c := Train(seqs)
	c.Prime()
	var w huffman.BitWriter
	if err := c.Compress(&w, seqs[1]); err != nil {
		b.Fatal(err)
	}
	blob := w.Bytes()
	emit := func(isa.Inst) error { return nil }
	run := func(b *testing.B, pooled bool) {
		b.Helper()
		huffman.SetPooling(pooled)
		defer huffman.SetPooling(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Decompress(blob, 0, emit); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh", func(b *testing.B) { run(b, false) })
}
