package lzcomp

import (
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/streamcomp"
)

func roundTrip(t *testing.T, seqs [][]isa.Inst) *Compressor {
	t.Helper()
	c := Train(seqs)
	var w huffman.BitWriter
	offsets := make([]int, len(seqs))
	for i, s := range seqs {
		offsets[i] = w.Len()
		if err := c.Compress(&w, s); err != nil {
			t.Fatalf("Compress region %d: %v", i, err)
		}
	}
	blob := w.Bytes()
	for i, s := range seqs {
		var got []isa.Inst
		if _, err := c.Decompress(blob, offsets[i], func(in isa.Inst) error {
			got = append(got, in)
			return nil
		}); err != nil {
			t.Fatalf("Decompress region %d: %v", i, err)
		}
		if len(got) != len(s) {
			t.Fatalf("region %d: %d instructions, want %d", i, len(got), len(s))
		}
		for k := range s {
			if isa.Encode(got[k]) != isa.Encode(s[k]) {
				t.Fatalf("region %d inst %d differs", i, k)
			}
		}
	}
	return c
}

func TestRoundTripRepetitive(t *testing.T) {
	// Heavy repetition: LZ's best case.
	var seq []isa.Inst
	for i := 0; i < 30; i++ {
		seq = append(seq,
			isa.Mem(isa.OpLDW, isa.RegT0, isa.RegSP, 8),
			isa.OpR(isa.OpIntA, isa.RegT0, isa.RegT0+1, isa.FnADD, isa.RegT0),
			isa.Mem(isa.OpSTW, isa.RegT0, isa.RegSP, 8),
		)
	}
	c := roundTrip(t, [][]isa.Inst{seq, seq[:10]})
	bits, err := c.CompressedBits(seq)
	if err != nil {
		t.Fatal(err)
	}
	if perInst := float64(bits) / float64(len(seq)); perInst > 6 {
		t.Errorf("repetitive code coded at %.1f bits/inst; matches not working", perInst)
	}
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		insts := isa.RandInsts(seed, 80)
		var seq []isa.Inst
		for _, in := range insts {
			if in.Format != isa.FormatIllegal {
				seq = append(seq, in)
			}
		}
		c := Train([][]isa.Inst{seq})
		var w huffman.BitWriter
		if err := c.Compress(&w, seq); err != nil {
			return false
		}
		var got []isa.Inst
		if _, err := c.Decompress(w.Bytes(), 0, func(in isa.Inst) error {
			got = append(got, in)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(seq) {
			return false
		}
		for i := range seq {
			if isa.Encode(got[i]) != isa.Encode(seq[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRegion(t *testing.T) {
	roundTrip(t, [][]isa.Inst{{}})
}

// TestComparisonWithSplitStream contrasts the two coders on real benchmark
// code: split streams exploit field-level redundancy that word-level LZ
// cannot, so it should win on compiled code (the paper's reason for
// choosing it), while LZ decodes fewer codewords.
func TestComparisonWithSplitStream(t *testing.T) {
	spec, _ := mediabench.SpecByName("adpcm")
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	seq := make([]isa.Inst, 0, 4000)
	for _, w := range im.Text[:4000] {
		in := isa.Decode(w)
		if in.Format != isa.FormatIllegal {
			seq = append(seq, in)
		}
	}
	seqs := [][]isa.Inst{seq}

	lz := Train(seqs)
	lzBits, err := lz.CompressedBits(seq)
	if err != nil {
		t.Fatal(err)
	}
	ss := streamcomp.Train(seqs, streamcomp.Options{})
	ssBits, err := ss.CompressedBits(seq)
	if err != nil {
		t.Fatal(err)
	}
	lzTotal := lzBits/8 + lz.TableBytes()
	ssTotal := ssBits/8 + ss.TableBytes()
	t.Logf("split-stream: %d bits + %d table bytes = %d B (γ=%.3f)",
		ssBits, ss.TableBytes(), ssTotal, float64(ssTotal)/float64(4*len(seq)))
	t.Logf("lz dictionary: %d bits + %d table bytes = %d B (γ=%.3f)",
		lzBits, lz.TableBytes(), lzTotal, float64(lzTotal)/float64(4*len(seq)))
	if ssTotal >= 4*len(seq) || lzTotal >= 4*len(seq) {
		t.Error("a coder failed to compress at all")
	}
}

func TestDecompressRejectsCorruption(t *testing.T) {
	var seq []isa.Inst
	for _, in := range isa.RandInsts(7, 200) {
		if in.Format != isa.FormatIllegal {
			seq = append(seq, in)
		}
	}
	c := Train([][]isa.Inst{seq})
	var w huffman.BitWriter
	if err := c.Compress(&w, seq); err != nil {
		t.Fatal(err)
	}
	blob := w.Bytes()
	for i := 0; i < len(blob); i += 3 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x5A
		n := 0
		c.Decompress(bad, 0, func(isa.Inst) error {
			n++
			if n > 20*len(seq) {
				t.Fatal("runaway decode on corrupted stream")
			}
			return nil
		})
	}
}
