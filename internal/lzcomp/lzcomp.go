// Package lzcomp implements an alternative region coder: LZ-style
// dictionary compression over instruction words, in the spirit of Lucco's
// split-stream dictionary program compression cited by the paper ([19],
// §8), and of the paper's closing remark that "other algorithms for
// compression and decompression" are worth exploring (§9).
//
// The coder treats a region as a sequence of 32-bit instruction words and
// emits two kinds of tokens:
//
//   - literal: an index into a program-wide dictionary of frequent words
//     (or an escaped raw 32-bit word when outside the dictionary);
//   - match: a (distance, length) back-reference into the already-emitted
//     words of the same region.
//
// Token kinds, dictionary indices, distances, and lengths are each coded
// with their own canonical Huffman code, reusing the paper's decoder
// machinery. Compared with the split-stream coder it is simpler and decodes
// fewer codewords per instruction, but it cannot exploit operand-field
// structure, so its compression factor is worse on code whose redundancy is
// at the field level; BenchmarkCoderComparison quantifies the trade-off.
package lzcomp

import (
	"fmt"
	"sort"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// Token kinds in the kind stream.
const (
	kindDict  = 0 // dictionary literal
	kindRaw   = 1 // escaped raw word (32 bits follow)
	kindMatch = 2 // back-reference (distance, length)
	kindEnd   = 3 // region terminator
)

// Match-search parameters.
const (
	maxDistance = 255
	maxLength   = 32
	minLength   = 2
	// dictSize bounds the program-wide word dictionary.
	dictSize = 512
)

// Compressor holds the trained codes and dictionary.
type Compressor struct {
	dict    []uint32 // frequent words, index-coded
	dictIdx map[uint32]int

	kindCode *huffman.Code
	dictCode *huffman.Code
	distCode *huffman.Code
	lenCode  *huffman.Code
}

// token is the unit the two passes agree on.
type token struct {
	kind      int
	dictIdx   int
	raw       uint32
	dist, len int
}

// tokenize converts a word sequence into tokens using greedy longest-match.
func (c *Compressor) tokenize(words []uint32) []token {
	var out []token
	for i := 0; i < len(words); {
		// Longest back-reference within the window.
		bestLen, bestDist := 0, 0
		lo := i - maxDistance
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			l := 0
			for i+l < len(words) && l < maxLength && words[j+l] == words[i+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestDist = l, i-j
			}
		}
		if bestLen >= minLength {
			out = append(out, token{kind: kindMatch, dist: bestDist, len: bestLen})
			i += bestLen
			continue
		}
		if idx, ok := c.dictIdx[words[i]]; ok {
			out = append(out, token{kind: kindDict, dictIdx: idx})
		} else {
			out = append(out, token{kind: kindRaw, raw: words[i]})
		}
		i++
	}
	out = append(out, token{kind: kindEnd})
	return out
}

// Train builds the dictionary and Huffman codes over all regions.
func Train(seqs [][]isa.Inst) *Compressor {
	c := &Compressor{dictIdx: map[uint32]int{}}

	// Pass 1a: global word frequencies for the dictionary.
	wordFreq := map[uint32]uint64{}
	var regions [][]uint32
	for _, seq := range seqs {
		words := make([]uint32, len(seq))
		for i, in := range seq {
			words[i] = isa.Encode(in)
			wordFreq[words[i]]++
		}
		regions = append(regions, words)
	}
	type wf struct {
		w uint32
		f uint64
	}
	all := make([]wf, 0, len(wordFreq))
	for w, f := range wordFreq {
		if f >= 2 {
			all = append(all, wf{w, f})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if len(all) > dictSize {
		all = all[:dictSize]
	}
	for i, e := range all {
		c.dict = append(c.dict, e.w)
		c.dictIdx[e.w] = i
	}

	// Pass 1b: token statistics.
	kindF := map[uint32]uint64{}
	dictF := map[uint32]uint64{}
	distF := map[uint32]uint64{}
	lenF := map[uint32]uint64{}
	for _, words := range regions {
		for _, t := range c.tokenize(words) {
			kindF[uint32(t.kind)]++
			switch t.kind {
			case kindDict:
				dictF[uint32(t.dictIdx)]++
			case kindMatch:
				distF[uint32(t.dist)]++
				lenF[uint32(t.len)]++
			}
		}
	}
	c.kindCode = huffman.Build(kindF)
	c.dictCode = huffman.Build(dictF)
	c.distCode = huffman.Build(distF)
	c.lenCode = huffman.Build(lenF)
	return c
}

// Compress appends the coded region to w.
func (c *Compressor) Compress(w *huffman.BitWriter, seq []isa.Inst) error {
	words := make([]uint32, len(seq))
	for i, in := range seq {
		words[i] = isa.Encode(in)
	}
	for _, t := range c.tokenize(words) {
		if err := c.kindCode.Encode(w, uint32(t.kind)); err != nil {
			return fmt.Errorf("lzcomp: kind: %w", err)
		}
		switch t.kind {
		case kindDict:
			if err := c.dictCode.Encode(w, uint32(t.dictIdx)); err != nil {
				return fmt.Errorf("lzcomp: dict: %w", err)
			}
		case kindRaw:
			w.WriteBits(uint64(t.raw), 32)
		case kindMatch:
			if err := c.distCode.Encode(w, uint32(t.dist)); err != nil {
				return fmt.Errorf("lzcomp: dist: %w", err)
			}
			if err := c.lenCode.Encode(w, uint32(t.len)); err != nil {
				return fmt.Errorf("lzcomp: len: %w", err)
			}
		}
	}
	return nil
}

// CompressedBits reports the coded size of seq, including the terminator.
func (c *Compressor) CompressedBits(seq []isa.Inst) (int, error) {
	var w huffman.BitWriter
	if err := c.Compress(&w, seq); err != nil {
		return 0, err
	}
	return w.Len(), nil
}

// Decompress decodes one region starting at bit offset bitOff, invoking
// emit per instruction, and returns the bits consumed.
func (c *Compressor) Decompress(blob []byte, bitOff int, emit func(isa.Inst) error) (int, error) {
	r := huffman.NewBitReader(blob)
	r.Seek(bitOff)
	var words []uint32
	push := func(w uint32) error {
		words = append(words, w)
		return emit(isa.Decode(w))
	}
	for {
		kind, err := c.kindCode.Decode(r)
		if err != nil {
			return r.BitsRead() - bitOff, err
		}
		switch kind {
		case kindEnd:
			return r.BitsRead() - bitOff, nil
		case kindDict:
			idx, err := c.dictCode.Decode(r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			if int(idx) >= len(c.dict) {
				return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: dictionary index %d out of range", idx)
			}
			if err := push(c.dict[idx]); err != nil {
				return r.BitsRead() - bitOff, err
			}
		case kindRaw:
			if err := push(uint32(r.ReadBits(32))); err != nil {
				return r.BitsRead() - bitOff, err
			}
		case kindMatch:
			dist, err := c.distCode.Decode(r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			length, err := c.lenCode.Decode(r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			if int(dist) <= 0 || int(dist) > len(words) {
				return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: distance %d outside window of %d", dist, len(words))
			}
			start := len(words) - int(dist)
			for k := 0; k < int(length); k++ {
				if err := push(words[start+k]); err != nil {
					return r.BitsRead() - bitOff, err
				}
			}
		default:
			return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: unknown token kind %d", kind)
		}
	}
}

// TableBytes reports the serialized size of the dictionary and codes — the
// data the decompressor must carry.
func (c *Compressor) TableBytes() int {
	n := 4 * len(c.dict) // dictionary words
	for _, code := range []*huffman.Code{c.kindCode, c.dictCode, c.distCode, c.lenCode} {
		n += code.TableSize()
	}
	return n
}
