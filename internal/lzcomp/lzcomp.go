// Package lzcomp implements an alternative region coder: LZ-style
// dictionary compression over instruction words, in the spirit of Lucco's
// split-stream dictionary program compression cited by the paper ([19],
// §8), and of the paper's closing remark that "other algorithms for
// compression and decompression" are worth exploring (§9).
//
// The coder treats a region as a sequence of 32-bit instruction words and
// emits two kinds of tokens:
//
//   - literal: an index into a program-wide dictionary of frequent words
//     (or an escaped raw 32-bit word when outside the dictionary);
//   - match: a (distance, length) back-reference into the already-emitted
//     words of the same region.
//
// Token kinds, dictionary indices, distances, and lengths are each coded
// with their own canonical Huffman code, reusing the paper's decoder
// machinery. Compared with the split-stream coder it is simpler and decodes
// fewer codewords per instruction, but it cannot exploit operand-field
// structure, so its compression factor is worse on code whose redundancy is
// at the field level; BenchmarkCoderComparison quantifies the trade-off.
package lzcomp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Token kinds in the kind stream.
const (
	kindDict  = 0 // dictionary literal
	kindRaw   = 1 // escaped raw word (32 bits follow)
	kindMatch = 2 // back-reference (distance, length)
	kindEnd   = 3 // region terminator
)

// Match-search parameters.
const (
	maxDistance = 255
	maxLength   = 32
	minLength   = 2
	// dictSize bounds the program-wide word dictionary.
	dictSize = 512
)

// Compressor holds the trained codes and dictionary.
type Compressor struct {
	dict    []uint32 // frequent words, index-coded
	dictIdx map[uint32]int

	kindCode *huffman.Code
	dictCode *huffman.Code
	distCode *huffman.Code
	lenCode  *huffman.Code

	// dictInsts caches the decoded form of every dictionary word, so the
	// fast path emits dictionary hits (and match copies of them) without
	// re-running isa.Decode — half the decode profile otherwise. Built
	// lazily on first fast Decompress, or eagerly by Prime.
	dictInsts []isa.Inst

	// slowDecode routes every codeword decode through the reference
	// bit-at-a-time decoder (huffman.Code.DecodeTree) instead of the
	// table-driven one, the same switch streamcomp exposes: both consume
	// identical bits, so the runtime's fast-path-disabled mode can verify
	// the fast decoder end to end. Raw 32-bit words are not codewords and
	// read the same either way.
	slowDecode bool

	// Span, when set, is the parent under which CompressAll forks one
	// telemetry span per region (same hook as streamcomp). Nil records
	// nothing; the emitted bits are identical either way.
	Span *obs.Span

	// estBitsPerWord is the expected coded size of one instruction word,
	// rounded up, computed by Train from the token statistics the codes were
	// built from. It sizes the pooled per-region writers (see sizeHint); zero
	// means untrained or deserialized, which falls back to a conservative
	// default.
	estBitsPerWord int
}

// SetSlowDecode selects the reference Huffman decoder for all subsequent
// Decompress calls (true) or the table-driven one (false, the default).
func (c *Compressor) SetSlowDecode(v bool) { c.slowDecode = v }

// codes lists the four token codes in serialization order.
func (c *Compressor) codes() [4]*huffman.Code {
	return [4]*huffman.Code{c.kindCode, c.dictCode, c.distCode, c.lenCode}
}

// Prime eagerly builds the encoder maps and decode tables of all four codes;
// required before sharing the compressor across goroutines, since both are
// otherwise built lazily on first use.
func (c *Compressor) Prime() {
	for _, code := range c.codes() {
		code.Prime()
	}
	if c.dictInsts == nil {
		c.primeDictInsts()
	}
}

// primeDictInsts decodes every dictionary word once.
func (c *Compressor) primeDictInsts() {
	insts := make([]isa.Inst, len(c.dict))
	for i, w := range c.dict {
		insts[i] = isa.Decode(w)
	}
	c.dictInsts = insts
}

// decodeSym reads one codeword of code, honoring the slow-decode switch.
func (c *Compressor) decodeSym(code *huffman.Code, r *huffman.BitReader) (uint32, error) {
	if c.slowDecode {
		return code.DecodeTree(r)
	}
	return code.Decode(r)
}

// token is the unit the two passes agree on.
type token struct {
	kind      int
	dictIdx   int
	raw       uint32
	dist, len int
}

// encScratch is the per-Compress working set — the region's word image and
// token list — recycled through encPool so a warm encode allocates neither.
type encScratch struct {
	words []uint32
	toks  []token
}

// decScratch is the per-Decompress back-reference window, recycled likewise.
type decScratch struct {
	words []uint32
}

// The scratch pools follow the bit I/O pools' switch (huffman.SetPooling):
// one toggle covers the whole coder layer, and the tokens and words produced
// are identical either way.
var encPool = sync.Pool{New: func() any { return new(encScratch) }}
var decPool = sync.Pool{New: func() any { return new(decScratch) }}

func getEncScratch() *encScratch {
	if huffman.PoolingEnabled() {
		return encPool.Get().(*encScratch)
	}
	return new(encScratch)
}

func putEncScratch(sc *encScratch) {
	if huffman.PoolingEnabled() {
		encPool.Put(sc)
	}
}

func getDecScratch() *decScratch {
	if huffman.PoolingEnabled() {
		return decPool.Get().(*decScratch)
	}
	return new(decScratch)
}

func putDecScratch(sc *decScratch) {
	if huffman.PoolingEnabled() {
		decPool.Put(sc)
	}
}

// tokenize converts a word sequence into tokens using greedy longest-match.
func (c *Compressor) tokenize(words []uint32) []token {
	return c.appendTokens(nil, words)
}

// appendTokens is tokenize into caller-owned storage: it appends the token
// sequence for words to dst and returns the extended slice, so the pooled
// encode path reuses one grown token buffer per region.
func (c *Compressor) appendTokens(dst []token, words []uint32) []token {
	out := dst
	for i := 0; i < len(words); {
		// Longest back-reference within the window.
		bestLen, bestDist := 0, 0
		lo := i - maxDistance
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < i; j++ {
			l := 0
			for i+l < len(words) && l < maxLength && words[j+l] == words[i+l] {
				l++
			}
			if l > bestLen {
				bestLen, bestDist = l, i-j
			}
		}
		if bestLen >= minLength {
			out = append(out, token{kind: kindMatch, dist: bestDist, len: bestLen})
			i += bestLen
			continue
		}
		if idx, ok := c.dictIdx[words[i]]; ok {
			out = append(out, token{kind: kindDict, dictIdx: idx})
		} else {
			out = append(out, token{kind: kindRaw, raw: words[i]})
		}
		i++
	}
	out = append(out, token{kind: kindEnd})
	return out
}

// Train builds the dictionary and Huffman codes over all regions.
func Train(seqs [][]isa.Inst) *Compressor {
	c := &Compressor{dictIdx: map[uint32]int{}}

	// Pass 1a: global word frequencies for the dictionary.
	wordFreq := map[uint32]uint64{}
	var regions [][]uint32
	for _, seq := range seqs {
		words := make([]uint32, len(seq))
		for i, in := range seq {
			words[i] = isa.Encode(in)
			wordFreq[words[i]]++
		}
		regions = append(regions, words)
	}
	type wf struct {
		w uint32
		f uint64
	}
	all := make([]wf, 0, len(wordFreq))
	for w, f := range wordFreq {
		if f >= 2 {
			all = append(all, wf{w, f})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].w < all[j].w
	})
	if len(all) > dictSize {
		all = all[:dictSize]
	}
	for i, e := range all {
		c.dict = append(c.dict, e.w)
		c.dictIdx[e.w] = i
	}

	// Pass 1b: token statistics.
	kindF := map[uint32]uint64{}
	dictF := map[uint32]uint64{}
	distF := map[uint32]uint64{}
	lenF := map[uint32]uint64{}
	for _, words := range regions {
		for _, t := range c.tokenize(words) {
			kindF[uint32(t.kind)]++
			switch t.kind {
			case kindDict:
				dictF[uint32(t.dictIdx)]++
			case kindMatch:
				distF[uint32(t.dist)]++
				lenF[uint32(t.len)]++
			}
		}
	}
	c.kindCode = huffman.Build(kindF)
	c.dictCode = huffman.Build(dictF)
	c.distCode = huffman.Build(distF)
	c.lenCode = huffman.Build(lenF)

	// Expected coded bits per instruction word, for sizing the pooled
	// per-region writers. Raw tokens carry 32 extra uncoded bits each; the
	// per-region end tokens are counted against the word total as well.
	var totalBits, totalWords uint64
	for _, pair := range [...]struct {
		f    map[uint32]uint64
		code *huffman.Code
	}{{kindF, c.kindCode}, {dictF, c.dictCode}, {distF, c.distCode}, {lenF, c.lenCode}} {
		for v, n := range pair.f {
			totalBits += n * uint64(pair.code.CodeLen(v))
		}
	}
	totalBits += kindF[kindRaw] * 32
	for _, words := range regions {
		totalWords += uint64(len(words))
	}
	totalWords += uint64(len(regions)) // one end token per region
	if totalWords > 0 {
		c.estBitsPerWord = int((totalBits + totalWords - 1) / totalWords)
	}
	return c
}

// sizeHint estimates the byte capacity a region of nWords instruction words
// needs, from the trained expected bits per word plus slack for the end
// token, padding, and estimate error.
func (c *Compressor) sizeHint(nWords int) int {
	est := c.estBitsPerWord
	if est <= 0 {
		est = 24 // conservative default when untrained
	}
	return (nWords+1)*est/8 + 16
}

// Compress appends the coded region to w.
func (c *Compressor) Compress(w *huffman.BitWriter, seq []isa.Inst) error {
	sc := getEncScratch()
	defer putEncScratch(sc)
	words := sc.words[:0]
	for _, in := range seq {
		words = append(words, isa.Encode(in))
	}
	toks := c.appendTokens(sc.toks[:0], words)
	sc.words, sc.toks = words, toks // retain grown capacity across recycles
	for _, t := range toks {
		if err := c.kindCode.Encode(w, uint32(t.kind)); err != nil {
			return fmt.Errorf("lzcomp: kind: %w", err)
		}
		switch t.kind {
		case kindDict:
			if err := c.dictCode.Encode(w, uint32(t.dictIdx)); err != nil {
				return fmt.Errorf("lzcomp: dict: %w", err)
			}
		case kindRaw:
			w.WriteBits(uint64(t.raw), 32)
		case kindMatch:
			if err := c.distCode.Encode(w, uint32(t.dist)); err != nil {
				return fmt.Errorf("lzcomp: dist: %w", err)
			}
			if err := c.lenCode.Encode(w, uint32(t.len)); err != nil {
				return fmt.Errorf("lzcomp: len: %w", err)
			}
		}
	}
	return nil
}

// CompressAll compresses every sequence and concatenates the per-sequence
// bit streams in input order, exactly as sequential Compress calls against
// one shared writer would. offsets[i] is the starting bit position of
// sequence i in the returned blob. Sequences are encoded concurrently into
// private writers (each region's bits are independent of its position in
// the blob), so the result is byte-identical at any worker count.
func (c *Compressor) CompressAll(seqs [][]isa.Inst, workers int) (blob []byte, offsets []uint32, err error) {
	c.Prime() // lazy encoder init would race across goroutines
	parts, err := parallel.Map(len(seqs), workers, func(i int) (*huffman.BitWriter, error) {
		sp := c.Span.Fork("region.encode", "region", i, "insts", len(seqs[i]))
		w := huffman.GetWriter(c.sizeHint(len(seqs[i])))
		if err := c.Compress(w, seqs[i]); err != nil {
			sp.End()
			huffman.PutWriter(w)
			return nil, fmt.Errorf("region %d: %w", i, err)
		}
		sp.SetArg("bits", w.Len())
		sp.End()
		return w, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var out huffman.BitWriter
	total := 0
	for _, part := range parts {
		total += (part.Len() + 7) / 8
	}
	out.Grow(total + 1)
	offsets = make([]uint32, len(seqs))
	for i, part := range parts {
		offsets[i] = uint32(out.Len())
		out.Append(part)
		parts[i] = nil
		huffman.PutWriter(part) // Bytes was never called on part, so its buffer recycles
	}
	return out.Bytes(), offsets, nil
}

// CompressedBits reports the coded size of seq, including the terminator.
func (c *Compressor) CompressedBits(seq []isa.Inst) (int, error) {
	w := huffman.GetWriter(c.sizeHint(len(seq)))
	defer huffman.PutWriter(w)
	if err := c.Compress(w, seq); err != nil {
		return 0, err
	}
	return w.Len(), nil
}

// Decompress decodes one region starting at bit offset bitOff, invoking
// emit per instruction, and returns the bits consumed.
//
// Besides the Huffman decoder, the two modes differ in how dictionary hits
// materialize instructions: the fast path emits the struct cached by
// primeDictInsts, the reference path re-runs isa.Decode per emit, exactly
// as a from-scratch decoder would. isa.Decode is a pure function, so both
// modes emit identical instructions.
func (c *Compressor) Decompress(blob []byte, bitOff int, emit func(isa.Inst) error) (int, error) {
	r := huffman.GetReader(blob)
	defer huffman.PutReader(r)
	r.Seek(bitOff)
	fast := !c.slowDecode
	if fast && c.dictInsts == nil {
		c.primeDictInsts()
	}
	// The back-reference window lives in pooled scratch; appending through
	// sc.words (rather than a local captured by a push closure) keeps the
	// grown capacity across recycles and the loop allocation-free.
	sc := getDecScratch()
	sc.words = sc.words[:0]
	defer putDecScratch(sc)
	for {
		kind, err := c.decodeSym(c.kindCode, r)
		if err != nil {
			return r.BitsRead() - bitOff, err
		}
		switch kind {
		case kindEnd:
			return r.BitsRead() - bitOff, nil
		case kindDict:
			idx, err := c.decodeSym(c.dictCode, r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			if int(idx) >= len(c.dict) {
				return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: dictionary index %d out of range", idx)
			}
			sc.words = append(sc.words, c.dict[idx])
			if fast {
				err = emit(c.dictInsts[idx])
			} else {
				err = emit(isa.Decode(c.dict[idx]))
			}
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
		case kindRaw:
			w := uint32(r.ReadBits(32))
			sc.words = append(sc.words, w)
			if err := emit(isa.Decode(w)); err != nil {
				return r.BitsRead() - bitOff, err
			}
		case kindMatch:
			dist, err := c.decodeSym(c.distCode, r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			length, err := c.decodeSym(c.lenCode, r)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			if int(dist) <= 0 || int(dist) > len(sc.words) {
				return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: distance %d outside window of %d", dist, len(sc.words))
			}
			start := len(sc.words) - int(dist)
			for k := 0; k < int(length); k++ {
				w := sc.words[start+k]
				sc.words = append(sc.words, w)
				if err := emit(isa.Decode(w)); err != nil {
					return r.BitsRead() - bitOff, err
				}
			}
		default:
			return r.BitsRead() - bitOff, fmt.Errorf("lzcomp: unknown token kind %d", kind)
		}
	}
}

// DecodeStats sums the decode-path counters across the four token codes.
func (c *Compressor) DecodeStats() huffman.DecodeStats {
	var total huffman.DecodeStats
	for _, code := range c.codes() {
		if code != nil {
			code.Stats.AddTo(&total)
		}
	}
	return total
}

// TableBytes reports the serialized size of the dictionary and codes — the
// data the decompressor must carry.
func (c *Compressor) TableBytes() int {
	b, err := c.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}

func append24(out []byte, n int) []byte {
	return append(out, byte(n), byte(n>>8), byte(n>>16))
}

func read24(data []byte, pos int) (int, int, error) {
	if pos+3 > len(data) {
		return 0, 0, fmt.Errorf("lzcomp: truncated length at byte %d", pos)
	}
	return int(data[pos]) | int(data[pos+1])<<8 | int(data[pos+2])<<16, pos + 3, nil
}

// MarshalBinary serializes the dictionary and the four token codes: a u24
// dictionary length, the dictionary words little-endian, then each code as a
// u24-length-prefixed huffman.Code blob in codes() order.
func (c *Compressor) MarshalBinary() ([]byte, error) {
	var out []byte
	out = append24(out, len(c.dict))
	for _, w := range c.dict {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], w)
		out = append(out, b[:]...)
	}
	for _, code := range c.codes() {
		blob, err := code.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if len(blob) > 0xFFFFFF {
			return nil, fmt.Errorf("lzcomp: code table too large")
		}
		out = append24(out, len(blob))
		out = append(out, blob...)
	}
	return out, nil
}

// UnmarshalBinary deserializes tables written by MarshalBinary.
func (c *Compressor) UnmarshalBinary(data []byte) error {
	n, pos, err := read24(data, 0)
	if err != nil {
		return err
	}
	if pos+4*n > len(data) {
		return fmt.Errorf("lzcomp: truncated dictionary of %d words", n)
	}
	c.dict = make([]uint32, n)
	c.dictIdx = make(map[uint32]int, n)
	c.dictInsts = nil
	for i := range c.dict {
		c.dict[i] = binary.LittleEndian.Uint32(data[pos:])
		c.dictIdx[c.dict[i]] = i
		pos += 4
	}
	codes := [4]**huffman.Code{&c.kindCode, &c.dictCode, &c.distCode, &c.lenCode}
	for i, slot := range codes {
		n, p, err := read24(data, pos)
		if err != nil {
			return err
		}
		pos = p
		if pos+n > len(data) {
			return fmt.Errorf("lzcomp: truncated table body for code %d", i)
		}
		*slot = &huffman.Code{}
		if err := (*slot).UnmarshalBinary(data[pos : pos+n]); err != nil {
			return fmt.Errorf("lzcomp: code %d: %w", i, err)
		}
		pos += n
	}
	if pos != len(data) {
		return fmt.Errorf("lzcomp: %d trailing bytes", len(data)-pos)
	}
	return nil
}
