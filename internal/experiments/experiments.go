// Package experiments reproduces every table and figure of the paper's
// evaluation (§7): Table 1 (program sizes before and after squeeze),
// Figure 3 (code size versus the runtime-buffer bound K), Figure 4 (cold
// and compressible code versus θ), Figure 5 (the benchmark inputs),
// Figure 6 (code size reduction versus θ), Figure 7 (size and execution
// time at low thresholds), and the in-text statistics: the achieved
// compression factor γ (§3), the buffer-safe call fraction (§6.1), the
// restore-stub counts and the compile-time-stub cost (§2.2), and the
// cold-loop pathology (§7).
package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

// Bench is one prepared benchmark: assembled, squeezed, linked, profiled.
type Bench struct {
	Spec         mediabench.Spec
	InputInsts   int
	SqueezeStats *squeeze.Stats
	SqObj        *objfile.Object
	SqImage      *objfile.Image
	Profile      profile.Counts

	// Obs, when set, receives pipeline spans and metrics from every Squash
	// of this bench. Squash output is byte-identical with or without it.
	Obs *obs.Recorder

	timingOnce   sync.Once
	timingErr    error
	timingOut    []byte
	timingCycles uint64
}

// SqueezedInsts reports the squeezed program size in instructions.
func (b *Bench) SqueezedInsts() int { return len(b.SqObj.Text) }

// Suite is the prepared benchmark set plus measurement caches.
type Suite struct {
	Benches []*Bench
	// Scale shrinks the profiling/timing inputs for quick runs; 1.0 is the
	// full configuration.
	Scale float64
	// Workers bounds the goroutines used to run experiment matrix cells
	// (benchmark × θ × variant) and the squash pipeline inside each cell;
	// <= 0 means one per CPU, 1 forces serial runs. Every table is
	// assembled in fixed cell order, so reports are identical at any
	// worker count.
	Workers int
	// PrepCacheHits counts the benchmarks whose preparation was served from
	// the content-keyed cache (memory or disk) instead of recomputed.
	PrepCacheHits int
	// Obs is the telemetry recorder the suite was loaded with (nil when
	// loaded without one); every bench's squashes report into it.
	Obs *obs.Recorder
}

// Load prepares the full suite at the given input scale (1.0 = full; the
// quick test configuration uses ~0.05), using one worker per CPU.
func Load(scale float64) (*Suite, error) { return LoadWorkers(scale, 0) }

// LoadWorkers prepares the suite with benchmark preparation (generate,
// assemble, squeeze, link, profile) fanned out across the given worker
// count; the suite's experiment runs then reuse the same budget. Each
// benchmark's preparation is self-contained, so the suite is identical at
// any worker count.
func LoadWorkers(scale float64, workers int) (*Suite, error) {
	return LoadCached(scale, workers, "")
}

// LoadCached is LoadWorkers with an on-disk preparation cache: prepared
// artifacts (the squeezed object and the profile) are stored in cacheDir
// under a content key of the generated program and its profiling input, so
// repeated loads of unchanged benchmarks skip generation, assembly,
// squeezing, and the profiling run. An empty cacheDir uses only the
// always-on in-memory layer. Cache hits are identical to recomputation by
// construction: both paths decode the same serialized payload.
func LoadCached(scale float64, workers int, cacheDir string) (*Suite, error) {
	return LoadCachedObs(scale, workers, cacheDir, nil)
}

// LoadCachedObs is LoadCached with a telemetry recorder attached: suite
// preparation gets a span tree (one "prepare" fork per benchmark, with
// assemble/cfg/squeeze/link/profile children on cache misses), and the
// recorder is installed on the suite and every bench so subsequent squashes
// report into it. A nil recorder is exactly LoadCached.
func LoadCachedObs(scale float64, workers int, cacheDir string, rec *obs.Recorder) (*Suite, error) {
	specs := mediabench.Specs()
	hits := make([]bool, len(specs))
	root := rec.Span("suite.prepare", "scale", scale, "benches", len(specs))
	benches, err := parallel.Map(len(specs), workers, func(i int) (*Bench, error) {
		sp := root.Fork("prepare", "bench", specs[i].Name)
		b, hit, err := prepareCachedObs(specs[i], scale, cacheDir, sp)
		sp.SetArg("cache_hit", hit)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", specs[i].Name, err)
		}
		hits[i] = hit
		b.Obs = rec
		return b, nil
	})
	root.End()
	if err != nil {
		return nil, err
	}
	s := &Suite{Benches: benches, Scale: scale, Workers: workers, Obs: rec}
	for _, h := range hits {
		if h {
			s.PrepCacheHits++
		}
	}
	return s, nil
}

// conf returns the paper's default configuration wired to the suite's
// worker budget.
func (s *Suite) conf() core.Config {
	c := core.DefaultConfig()
	c.Workers = s.Workers
	return c
}

// warmBaselines runs every benchmark's baseline timing in parallel so the
// per-bench caches are filled before matrix cells start comparing against
// them.
func (s *Suite) warmBaselines() error {
	return parallel.ForEach(len(s.Benches), s.Workers, func(i int) error {
		_, _, err := s.Benches[i].BaselineTiming()
		return err
	})
}

// Squash runs the rewriter on the bench at the given configuration,
// reporting into the bench's recorder when one is attached.
func (b *Bench) Squash(conf core.Config) (*core.Output, error) {
	return core.SquashObs(b.SqObj, b.Profile, conf, b.Obs)
}

// BaselineTiming runs the squeezed binary on the timing input (cached; safe
// for concurrent use by parallel matrix cells).
func (b *Bench) BaselineTiming() (out []byte, cycles uint64, err error) {
	b.timingOnce.Do(func() {
		m := vm.New(b.SqImage, b.Spec.TimingInput())
		if err := m.Run(); err != nil {
			b.timingErr = err
			return
		}
		b.timingOut = m.Output
		b.timingCycles = m.Cycles
	})
	if b.timingErr != nil {
		return nil, 0, b.timingErr
	}
	return b.timingOut, b.timingCycles, nil
}

// RunSquashed executes a squashed image on input and verifies behavioural
// equivalence against expected output (pass nil to skip the check).
func RunSquashed(out *core.Output, input, expect []byte) (*vm.Machine, *core.Runtime, error) {
	rt, err := core.NewRuntime(out.Meta)
	if err != nil {
		return nil, nil, err
	}
	m := vm.New(out.Image, input)
	rt.Install(m)
	if err := m.Run(); err != nil {
		return nil, nil, err
	}
	if expect != nil && string(m.Output) != string(expect) {
		return nil, nil, fmt.Errorf("squashed output diverges from baseline")
	}
	return m, rt, nil
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "## %s\n\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteString("\n")
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n%s\n", n)
	}
	return sb.String()
}

func geoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

func pct(x float64) string   { return fmt.Sprintf("%.1f%%", 100*x) }
func f3(x float64) string    { return fmt.Sprintf("%.3f", x) }
func itoa(x int) string      { return fmt.Sprintf("%d", x) }
func u64toa(x uint64) string { return fmt.Sprintf("%d", x) }

// ThetaSet is the θ sweep used across the figures (the paper's axis points).
var ThetaSet = []float64{0, 0.00001, 0.00005, 0.0001, 0.001, 0.01, 1.0}

// Fig7Thetas are the low thresholds of Figure 7.
var Fig7Thetas = []float64{0, 0.00001, 0.00005}

// Table1 reproduces the program size table: instructions before and after
// squeeze, against the paper's values.
func Table1(s *Suite) *Table {
	t := &Table{
		Title:  "Table 1: code size data for the benchmarks (instructions)",
		Header: []string{"program", "input", "paper", "squeeze", "paper", "reduction", "paper"},
	}
	for _, b := range s.Benches {
		paperRed := 1 - float64(b.Spec.TargetSqueeze)/float64(b.Spec.TargetInput)
		t.Rows = append(t.Rows, []string{
			b.Spec.Name,
			itoa(b.InputInsts), itoa(b.Spec.TargetInput),
			itoa(b.SqueezedInsts()), itoa(b.Spec.TargetSqueeze),
			pct(b.SqueezeStats.Reduction()), pct(paperRed),
		})
	}
	t.Notes = append(t.Notes, "Paper columns are Table 1 of Debray & Evans (PLDI 2002).")
	return t
}

// Fig3 reproduces the buffer-bound sweep: overall squashed size (relative
// to squeezed) versus K, for three thresholds plus their mean. The paper
// finds the minimum near K = 256–512.
func Fig3(s *Suite, ks []int, thetas []float64) (*Table, error) {
	t := &Table{
		Title:  "Figure 3: effect of buffer size bound K on code size (squashed/squeezed, geo-mean)",
		Header: []string{"K (bytes)"},
	}
	for _, th := range thetas {
		t.Header = append(t.Header, fmt.Sprintf("θ=%g", th))
	}
	t.Header = append(t.Header, "mean")
	// One matrix cell per (K, θ, benchmark), fanned across the suite's
	// workers and collected in flat index order.
	nB := len(s.Benches)
	ratios, err := parallel.Map(len(ks)*len(thetas)*nB, s.Workers, func(idx int) (float64, error) {
		k := ks[idx/(len(thetas)*nB)]
		th := thetas[idx/nB%len(thetas)]
		b := s.Benches[idx%nB]
		conf := s.conf()
		conf.Theta = th
		conf.Regions.K = k
		out, err := b.Squash(conf)
		if err != nil {
			return 0, fmt.Errorf("%s K=%d θ=%g: %w", b.Spec.Name, k, th, err)
		}
		return float64(out.Stats.SquashedBytes) / float64(out.Stats.InputBytes), nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range ks {
		row := []string{itoa(k)}
		var all []float64
		for ti := range thetas {
			cell := ratios[(ki*len(thetas)+ti)*nB : (ki*len(thetas)+ti+1)*nB]
			m := geoMean(cell)
			all = append(all, m)
			row = append(row, f3(m))
		}
		row = append(row, f3(geoMean(all)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"The paper's curves reach their minimum at K=256 and K=512; it adopts K=512.")
	return t, nil
}

// Fig4 reproduces the cold/compressible fractions versus θ (geometric mean
// across programs). The paper reports ~73% cold at θ=0 rising to ~94% at
// θ=0.01, with compressible code a few points below cold code throughout.
func Fig4(s *Suite, thetas []float64) (*Table, error) {
	t := &Table{
		Title:  "Figure 4: amount of cold and compressible code vs θ (geo-mean fraction of program)",
		Header: []string{"θ", "cold", "compressible"},
	}
	nB := len(s.Benches)
	type frac struct{ cold, comp float64 }
	cells, err := parallel.Map(len(thetas)*nB, s.Workers, func(idx int) (frac, error) {
		th := thetas[idx/nB]
		b := s.Benches[idx%nB]
		conf := s.conf()
		conf.Theta = th
		out, err := b.Squash(conf)
		if err != nil {
			return frac{}, err
		}
		st := out.Stats
		return frac{
			cold: math.Max(float64(st.ColdInsts)/float64(st.TotalInsts), 1e-9),
			comp: math.Max(float64(st.CompressibleInsts)/float64(st.TotalInsts), 1e-9),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for ti, th := range thetas {
		var colds, comps []float64
		for _, c := range cells[ti*nB : (ti+1)*nB] {
			colds = append(colds, c.cold)
			comps = append(comps, c.comp)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", th), pct(geoMean(colds)), pct(geoMean(comps)),
		})
	}
	t.Notes = append(t.Notes,
		"Paper: cold ≈73% at θ=0, ≈94% at θ=0.01, 100% at θ=1; compressible ≈96% of cold at θ=1.")
	return t, nil
}

// Fig5 reproduces the benchmark input table.
func Fig5(s *Suite) *Table {
	t := &Table{
		Title:  "Figure 5: inputs used for profiling and timing runs",
		Header: []string{"program", "profiling bytes", "timing bytes", "semi-rare triggers", "never-profiled rate"},
	}
	for _, b := range s.Benches {
		t.Rows = append(t.Rows, []string{
			b.Spec.Name,
			itoa(len(b.Spec.ProfilingInput())),
			itoa(len(b.Spec.TimingInput())),
			"16 (once each in profile)",
			fmt.Sprintf("%.5f", b.Spec.TriggerRate/40),
		})
	}
	t.Notes = append(t.Notes,
		"The paper's real audio/image inputs are replaced by synthetic byte streams;",
		"see DESIGN.md for the substitution argument.")
	return t
}

// SquashMatrix squashes every benchmark at every θ (benchmark-major order,
// paper defaults otherwise) with cells fanned across the given worker count
// and the same count inside each cell's pipeline; workers <= 0 means one
// per CPU and 1 forces a fully serial sweep. Outputs are returned in cell
// order and are byte-identical at any worker count. This is the experiment
// matrix's hot path and the unit BenchmarkSquashMatrix* measures.
func SquashMatrix(s *Suite, thetas []float64, workers int) ([]*core.Output, error) {
	return parallel.Map(len(s.Benches)*len(thetas), workers, func(idx int) (*core.Output, error) {
		b := s.Benches[idx/len(thetas)]
		th := thetas[idx%len(thetas)]
		conf := core.DefaultConfig()
		conf.Theta = th
		conf.Workers = workers
		out, err := b.Squash(conf)
		if err != nil {
			return nil, fmt.Errorf("%s θ=%g: %w", b.Spec.Name, th, err)
		}
		return out, nil
	})
}

// Fig6 reproduces the size-reduction-vs-θ sweep per program.
func Fig6(s *Suite, thetas []float64) (*Table, error) {
	t := &Table{
		Title:  "Figure 6: code size reduction due to profile-guided compression at different thresholds",
		Header: []string{"program"},
	}
	for _, th := range thetas {
		t.Header = append(t.Header, fmt.Sprintf("θ=%g", th))
	}
	outs, err := SquashMatrix(s, thetas, s.Workers)
	if err != nil {
		return nil, err
	}
	means := make([]float64, len(thetas))
	counts := make([]int, len(thetas))
	for bi, b := range s.Benches {
		row := []string{b.Spec.Name}
		for i := range thetas {
			r := outs[bi*len(thetas)+i].Stats.Reduction()
			row = append(row, pct(r))
			means[i] += r
			counts[i]++
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean"}
	for i := range thetas {
		mean = append(mean, pct(means[i]/float64(counts[i])))
	}
	t.Rows = append(t.Rows, mean)
	t.Notes = append(t.Notes,
		"Paper means: 13.7% at θ=0, 16.8% at θ=1e-5, 26.5% at θ=1.",
		"This reproduction's split-stream coder achieves γ≈0.55 vs the paper's ≈0.66 on",
		"Alpha code, so absolute reductions run several points higher at equal shape.")
	return t, nil
}

// Fig7 reproduces both panels of Figure 7: code size and execution time
// relative to the squeezed baseline at the low thresholds.
func Fig7(s *Suite, thetas []float64) (*Table, *Table, error) {
	size := &Table{
		Title:  "Figure 7(a): code size relative to squeezed",
		Header: []string{"program"},
	}
	timeT := &Table{
		Title:  "Figure 7(b): execution time relative to squeezed",
		Header: []string{"program"},
	}
	for _, th := range thetas {
		size.Header = append(size.Header, fmt.Sprintf("θ=%g", th))
		timeT.Header = append(timeT.Header, fmt.Sprintf("θ=%g", th))
	}
	if err := s.warmBaselines(); err != nil {
		return nil, nil, err
	}
	// Each cell is a squash plus a full timing run on the simulator — the
	// expensive part of the matrix — so the cells themselves fan out.
	type rel struct{ size, time float64 }
	cells, err := parallel.Map(len(s.Benches)*len(thetas), s.Workers, func(idx int) (rel, error) {
		b := s.Benches[idx/len(thetas)]
		th := thetas[idx%len(thetas)]
		baseOut, baseCycles, err := b.BaselineTiming()
		if err != nil {
			return rel{}, err
		}
		conf := s.conf()
		conf.Theta = th
		out, err := b.Squash(conf)
		if err != nil {
			return rel{}, err
		}
		m, _, err := RunSquashed(out, b.Spec.TimingInput(), baseOut)
		if err != nil {
			return rel{}, fmt.Errorf("%s θ=%g: %w", b.Spec.Name, th, err)
		}
		return rel{
			size: float64(out.Stats.SquashedBytes) / float64(out.Stats.InputBytes),
			time: float64(m.Cycles) / float64(baseCycles),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	sizeGeo := make([][]float64, len(thetas))
	timeGeo := make([][]float64, len(thetas))
	for bi, b := range s.Benches {
		srow := []string{b.Spec.Name}
		trow := []string{b.Spec.Name}
		for i := range thetas {
			c := cells[bi*len(thetas)+i]
			srow = append(srow, f3(c.size))
			trow = append(trow, f3(c.time))
			sizeGeo[i] = append(sizeGeo[i], c.size)
			timeGeo[i] = append(timeGeo[i], c.time)
		}
		size.Rows = append(size.Rows, srow)
		timeT.Rows = append(timeT.Rows, trow)
	}
	smean := []string{"geo-mean"}
	tmean := []string{"geo-mean"}
	for i := range thetas {
		smean = append(smean, f3(geoMean(sizeGeo[i])))
		tmean = append(tmean, f3(geoMean(timeGeo[i])))
	}
	size.Rows = append(size.Rows, smean)
	timeT.Rows = append(timeT.Rows, tmean)
	size.Notes = append(size.Notes, "Paper geo-means: 0.863 (θ=0) to 0.812 (θ=5e-5).")
	timeT.Notes = append(timeT.Notes, "Paper geo-means: ≈1.00 (θ=0), 1.04 (θ=1e-5), 1.24 (θ=5e-5).")
	return size, timeT, nil
}

// GammaStats reproduces the §3 statistic: the compressed program is ≈66% of
// its original size under plain split-stream coding, slightly better (but
// with a larger decompressor) under move-to-front.
func GammaStats(s *Suite) (*Table, error) {
	t := &Table{
		Title:  "§3: split-stream compression factor γ (compressed bytes / original bytes, θ=1)",
		Header: []string{"program", "γ plain", "γ with MTF", "tables plain (B)", "tables MTF (B)"},
	}
	type pair struct{ plain, mtf *core.Output }
	cells, err := parallel.Map(len(s.Benches), s.Workers, func(i int) (pair, error) {
		b := s.Benches[i]
		conf := s.conf()
		conf.Theta = 1
		plain, err := b.Squash(conf)
		if err != nil {
			return pair{}, err
		}
		conf.MTF = true
		mtf, err := b.Squash(conf)
		if err != nil {
			return pair{}, err
		}
		return pair{plain, mtf}, nil
	})
	if err != nil {
		return nil, err
	}
	var plains, mtfs []float64
	for i, b := range s.Benches {
		plain, mtf := cells[i].plain, cells[i].mtf
		plains = append(plains, plain.Stats.CompressionRatio)
		mtfs = append(mtfs, mtf.Stats.CompressionRatio)
		t.Rows = append(t.Rows, []string{
			b.Spec.Name,
			f3(plain.Stats.CompressionRatio), f3(mtf.Stats.CompressionRatio),
			itoa(plain.Foot.CodeTables), itoa(mtf.Foot.CodeTables),
		})
	}
	t.Rows = append(t.Rows, []string{"geo-mean", f3(geoMean(plains)), f3(geoMean(mtfs)), "", ""})
	t.Notes = append(t.Notes, "Paper: ≈0.66 for plain coding; MTF slightly better per stream but larger decompressor data.")
	return t, nil
}

// BufferSafeStats reproduces the §6.1 statistic: the fraction of call sites
// in compressible regions whose callee is buffer-safe.
func BufferSafeStats(s *Suite) (*Table, error) {
	t := &Table{
		Title:  "§6.1: buffer-safe callees among calls in compressible regions (θ=0)",
		Header: []string{"program", "safe calls", "total calls", "fraction"},
	}
	outs, err := parallel.Map(len(s.Benches), s.Workers, func(i int) (*core.Output, error) {
		return s.Benches[i].Squash(s.conf())
	})
	if err != nil {
		return nil, err
	}
	var fracs []float64
	for i, b := range s.Benches {
		st := outs[i].Stats
		frac := 0.0
		if st.CallsInRegions > 0 {
			frac = float64(st.BufferSafeCalls) / float64(st.CallsInRegions)
		}
		fracs = append(fracs, math.Max(frac, 1e-9))
		t.Rows = append(t.Rows, []string{
			b.Spec.Name, itoa(st.BufferSafeCalls), itoa(st.CallsInRegions), pct(frac),
		})
	}
	t.Rows = append(t.Rows, []string{"geo-mean", "", "", pct(geoMean(fracs))})
	t.Notes = append(t.Notes, "Paper: ≈12.5% on average; gsm ≈20%, g721_enc ≈19%.")
	return t, nil
}

// StubStats reproduces the §2.2 statistics: the maximum number of live
// runtime restore stubs (paper: 9 at θ=0.01), and the fraction of
// never-compressed code that compile-time restore stubs would occupy
// (paper: 13% at θ=0, 27% at θ=0.01).
func StubStats(s *Suite) (*Table, error) {
	t := &Table{
		Title:  "§2.2: restore stub statistics",
		Header: []string{"program", "max live stubs (θ=0.01)", "static stubs θ=0", "static stubs θ=0.01"},
	}
	if err := s.warmBaselines(); err != nil {
		return nil, err
	}
	type stubRow struct {
		live   int
		f0, f1 float64
	}
	cells, err := parallel.Map(len(s.Benches), s.Workers, func(i int) (stubRow, error) {
		b := s.Benches[i]
		conf := s.conf()
		conf.Theta = 0.01
		conf.StubCapacity = 64
		out, err := b.Squash(conf)
		if err != nil {
			return stubRow{}, err
		}
		baseOut, _, err := b.BaselineTiming()
		if err != nil {
			return stubRow{}, err
		}
		_, rt, err := RunSquashed(out, b.Spec.TimingInput(), baseOut)
		if err != nil {
			return stubRow{}, err
		}

		frac := func(theta float64) (float64, error) {
			c := s.conf()
			c.Theta = theta
			c.CompileTimeRestoreStubs = true
			o, err := b.Squash(c)
			if err != nil {
				return 0, err
			}
			nc := o.Foot.NeverCompressed + o.Foot.RestoreStubsStatic
			if nc == 0 {
				return 0, nil
			}
			return float64(o.Foot.RestoreStubsStatic) / float64(nc), nil
		}
		f0, err := frac(0)
		if err != nil {
			return stubRow{}, err
		}
		f1, err := frac(0.01)
		if err != nil {
			return stubRow{}, err
		}
		return stubRow{live: rt.Stats.MaxLiveStubs, f0: f0, f1: f1}, nil
	})
	if err != nil {
		return nil, err
	}
	maxLive := 0
	var f0s, f1s []float64
	for i, b := range s.Benches {
		c := cells[i]
		if c.live > maxLive {
			maxLive = c.live
		}
		f0s = append(f0s, c.f0)
		f1s = append(f1s, c.f1)
		t.Rows = append(t.Rows, []string{
			b.Spec.Name, itoa(c.live), pct(c.f0), pct(c.f1),
		})
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	t.Rows = append(t.Rows, []string{"mean/max", itoa(maxLive), pct(mean(f0s)), pct(mean(f1s))})
	t.Notes = append(t.Notes,
		"Paper: at most 9 live stubs at θ=0.01; compile-time stubs would occupy 13%",
		"(θ=0) to 27% (θ=0.01) of never-compressed code on average.")
	return t, nil
}

// InterpComparison contrasts the paper's decompress-to-buffer runtime with
// the §8 alternative of interpreting compressed code in place
// (Fraser/Proebsting-style executable compressed code): footprint and
// execution time per program at a mid threshold. The paper argues for
// decompression; this table quantifies the argument on the same regions.
func InterpComparison(s *Suite) (*Table, error) {
	t := &Table{
		Title:  "§8: decompress-to-buffer vs interpret-in-place (θ=0.001)",
		Header: []string{"program", "size dec", "size interp", "time dec ×", "time interp ×"},
	}
	if err := s.warmBaselines(); err != nil {
		return nil, err
	}
	type cmp struct{ sd, si, td, ti float64 }
	cells, err := parallel.Map(len(s.Benches), s.Workers, func(i int) (cmp, error) {
		b := s.Benches[i]
		baseOut, baseCycles, err := b.BaselineTiming()
		if err != nil {
			return cmp{}, err
		}
		confD := s.conf()
		confD.Theta = 0.001
		confD.StubCapacity = 64
		dec, err := b.Squash(confD)
		if err != nil {
			return cmp{}, err
		}
		confI := confD
		confI.Interpret = true
		itp, err := b.Squash(confI)
		if err != nil {
			return cmp{}, err
		}
		mD, _, err := RunSquashed(dec, b.Spec.TimingInput(), baseOut)
		if err != nil {
			return cmp{}, err
		}
		mI, _, err := RunSquashed(itp, b.Spec.TimingInput(), baseOut)
		if err != nil {
			return cmp{}, err
		}
		return cmp{
			sd: float64(dec.Stats.SquashedBytes) / float64(dec.Stats.InputBytes),
			si: float64(itp.Stats.SquashedBytes) / float64(itp.Stats.InputBytes),
			td: float64(mD.Cycles) / float64(baseCycles),
			ti: float64(mI.Cycles) / float64(baseCycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sizeD, sizeI, timeD, timeI []float64
	for i, b := range s.Benches {
		c := cells[i]
		sizeD = append(sizeD, c.sd)
		sizeI = append(sizeI, c.si)
		timeD = append(timeD, c.td)
		timeI = append(timeI, c.ti)
		t.Rows = append(t.Rows, []string{b.Spec.Name, f3(c.sd), f3(c.si), f3(c.td), f3(c.ti)})
	}
	t.Rows = append(t.Rows, []string{"geo-mean",
		f3(geoMean(sizeD)), f3(geoMean(sizeI)), f3(geoMean(timeD)), f3(geoMean(timeI))})
	t.Notes = append(t.Notes,
		"Interpretation trades the runtime buffer for a branch-target index (4 bytes per",
		"enterable boundary) and a per-execution decode cost; decompression pays per",
		"region entry. The paper (§8) chose decompression for the smaller representation.")
	return t, nil
}

// Pathology reproduces the §7 caution: profile-cold code executed in a
// cycle by the timing input (the li example), and a cold loop split across
// regions at small K (the mpeg2dec K=128 example), both of which make
// decompression dominate execution time.
func Pathology(s *Suite) (*Table, error) {
	t := &Table{
		Title:  "§7 pathology: cold code hot in the timing input",
		Header: []string{"program", "config", "input", "time ×", "decompressions"},
	}
	var target *Bench
	for _, b := range s.Benches {
		if b.Spec.Name == "mpeg2dec" {
			target = b
		}
	}
	if target == nil {
		return nil, fmt.Errorf("mpeg2dec not in suite")
	}
	cases := []struct {
		label string
		k     int
		input func() []byte
	}{
		{"K=512, timing input", 512, target.Spec.TimingInput},
		{"K=512, pathological input", 512, target.Spec.PathologyInput},
		{"K=128, pathological input", 128, target.Spec.PathologyInput},
	}
	rows, err := parallel.Map(len(cases), s.Workers, func(i int) ([]string, error) {
		c := cases[i]
		conf := s.conf()
		conf.Theta = 0.0001
		conf.Regions.K = c.k
		conf.StubCapacity = 64
		out, err := target.Squash(conf)
		if err != nil {
			return nil, err
		}
		// Each case runs its own baseline: the inputs differ per case, so
		// the shared BaselineTiming cache does not apply.
		input := c.input()
		base := vm.New(target.SqImage, input)
		if err := base.Run(); err != nil {
			return nil, err
		}
		m, rt, err := RunSquashed(out, input, base.Output)
		if err != nil {
			return nil, err
		}
		return []string{
			target.Spec.Name, c.label, itoa(len(input)),
			f3(float64(m.Cycles) / float64(base.Cycles)),
			u64toa(rt.Stats.Decompressions),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"The paper describes the same effect for SPECint li (a profile-cold",
		"interprocedural cycle) and for mpeg2dec at K=128 (a loop split across regions).")
	return t, nil
}

// ICacheStats measures instruction-cache behaviour of squeezed versus
// squashed binaries on an embedded-scale cache. The paper's scheme touches
// the cache twice — the §2.1 flush after filling the runtime buffer, and
// the smaller text footprint of compressed programs — and its test machine
// had a 64 KB I-cache; embedded parts are far smaller, which is where the
// footprint effect shows.
func ICacheStats(s *Suite, cacheBytes uint32) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Instruction cache (%d KB direct-mapped, 64 B lines): miss rate", cacheBytes/1024),
		Header: []string{"program", "squeezed", "squashed θ=1e-4", "time × (with cache)"},
	}
	rows, err := parallel.Map(len(s.Benches), s.Workers, func(i int) ([]string, error) {
		b := s.Benches[i]
		input := b.Spec.TimingInput()
		base := vm.New(b.SqImage, input)
		base.AttachICache(vm.NewICache(cacheBytes, 64, 20))
		if err := base.Run(); err != nil {
			return nil, err
		}
		conf := s.conf()
		conf.Theta = 0.0001
		out, err := b.Squash(conf)
		if err != nil {
			return nil, err
		}
		rt, err := core.NewRuntime(out.Meta)
		if err != nil {
			return nil, err
		}
		m := vm.New(out.Image, input)
		m.AttachICache(vm.NewICache(cacheBytes, 64, 20))
		rt.Install(m)
		if err := m.Run(); err != nil {
			return nil, err
		}
		if string(m.Output) != string(base.Output) {
			return nil, fmt.Errorf("%s: output diverged under icache model", b.Spec.Name)
		}
		return []string{
			b.Spec.Name,
			fmt.Sprintf("%.4f", base.ICache.MissRate()),
			fmt.Sprintf("%.4f", m.ICache.MissRate()),
			f3(float64(m.Cycles) / float64(base.Cycles)),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, rows...)
	t.Notes = append(t.Notes,
		"The decompressor flushes buffer lines after each fill (§2.1), but the squashed",
		"program's smaller live text competes for fewer cache lines.")
	return t, nil
}

// All runs every experiment and returns the rendered report.
func All(s *Suite) (string, error) {
	var sb strings.Builder
	sb.WriteString("# Profile-Guided Code Compression: experiment report\n\n")
	fmt.Fprintf(&sb, "Input scale: %.2f (1.0 = full configuration)\n\n", s.Scale)

	sb.WriteString(Table1(s).Render() + "\n")

	fig3, err := Fig3(s, []int{64, 128, 256, 512, 1024, 2048, 4096}, []float64{0, 0.0001, 0.01})
	if err != nil {
		return "", err
	}
	sb.WriteString(fig3.Render() + "\n")

	fig4, err := Fig4(s, ThetaSet)
	if err != nil {
		return "", err
	}
	sb.WriteString(fig4.Render() + "\n")

	sb.WriteString(Fig5(s).Render() + "\n")

	fig6, err := Fig6(s, ThetaSet)
	if err != nil {
		return "", err
	}
	sb.WriteString(fig6.Render() + "\n")

	f7a, f7b, err := Fig7(s, Fig7Thetas)
	if err != nil {
		return "", err
	}
	sb.WriteString(f7a.Render() + "\n")
	sb.WriteString(f7b.Render() + "\n")

	gamma, err := GammaStats(s)
	if err != nil {
		return "", err
	}
	sb.WriteString(gamma.Render() + "\n")

	bs, err := BufferSafeStats(s)
	if err != nil {
		return "", err
	}
	sb.WriteString(bs.Render() + "\n")

	stubs, err := StubStats(s)
	if err != nil {
		return "", err
	}
	sb.WriteString(stubs.Render() + "\n")

	path, err := Pathology(s)
	if err != nil {
		return "", err
	}
	sb.WriteString(path.Render() + "\n")

	interp, err := InterpComparison(s)
	if err != nil {
		return "", err
	}
	sb.WriteString(interp.Render() + "\n")

	icache, err := ICacheStats(s, 8*1024)
	if err != nil {
		return "", err
	}
	sb.WriteString(icache.Render() + "\n")
	return sb.String(), nil
}

// Names lists the available experiment identifiers for the CLI.
func Names() []string {
	out := []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b", "gamma", "buffersafe", "stubs", "pathology", "interp", "icache", "all"}
	sort.Strings(out)
	return out
}

// Run executes one named experiment and returns the rendered result.
func Run(s *Suite, name string) (string, error) {
	switch name {
	case "table1":
		return Table1(s).Render(), nil
	case "fig3":
		t, err := Fig3(s, []int{64, 128, 256, 512, 1024, 2048, 4096}, []float64{0, 0.0001, 0.01})
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "fig4":
		t, err := Fig4(s, ThetaSet)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "fig5":
		return Fig5(s).Render(), nil
	case "fig6":
		t, err := Fig6(s, ThetaSet)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "fig7a":
		a, _, err := Fig7(s, Fig7Thetas)
		if err != nil {
			return "", err
		}
		return a.Render(), nil
	case "fig7b":
		_, b, err := Fig7(s, Fig7Thetas)
		if err != nil {
			return "", err
		}
		return b.Render(), nil
	case "gamma":
		t, err := GammaStats(s)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "buffersafe":
		t, err := BufferSafeStats(s)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "stubs":
		t, err := StubStats(s)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "pathology":
		t, err := Pathology(s)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "interp":
		t, err := InterpComparison(s)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "icache":
		t, err := ICacheStats(s, 8*1024)
		if err != nil {
			return "", err
		}
		return t.Render(), nil
	case "all":
		return All(s)
	default:
		return "", fmt.Errorf("unknown experiment %q (have %s)", name, strings.Join(Names(), ", "))
	}
}
