package experiments

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/vm"
)

// TestTelemetryOnOffByteIdentical is the end-to-end zero-cost-when-off
// guarantee over the MediaBench suite: squashing with a full recorder
// (tracer + registry) and with none must produce byte-identical images and
// metadata, and the squashed programs must then run to byte-identical
// outputs, cycle counts, instruction counts, profiles, and runtime stats.
func TestTelemetryOnOffByteIdentical(t *testing.T) {
	s := quickSuite(t)

	variants := []struct {
		name string
		mod  func(*core.Config)
	}{
		{"default", func(*core.Config) {}},
		{"theta1", func(c *core.Config) { c.Theta = 1.0 }},
	}

	serialize := func(out *core.Output) ([]byte, []byte) {
		var img bytes.Buffer
		if _, err := out.Image.WriteTo(&img); err != nil {
			t.Fatal(err)
		}
		meta, err := out.Meta.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		return img.Bytes(), meta
	}

	for _, b := range s.Benches {
		for _, v := range variants {
			conf := s.conf()
			v.mod(&conf)

			off, err := core.SquashObs(b.SqObj, b.Profile, conf, nil)
			if err != nil {
				t.Fatalf("%s/%s: squash without recorder: %v", b.Spec.Name, v.name, err)
			}
			on, err := core.SquashObs(b.SqObj, b.Profile, conf, obs.New())
			if err != nil {
				t.Fatalf("%s/%s: squash with recorder: %v", b.Spec.Name, v.name, err)
			}

			offImg, offMeta := serialize(off)
			onImg, onMeta := serialize(on)
			if !bytes.Equal(offImg, onImg) {
				t.Fatalf("%s/%s: image differs with telemetry on", b.Spec.Name, v.name)
			}
			if !bytes.Equal(offMeta, onMeta) {
				t.Fatalf("%s/%s: metadata differs with telemetry on", b.Spec.Name, v.name)
			}
			if off.Stats.SquashedBytes != on.Stats.SquashedBytes || off.Stats.RegionCount != on.Stats.RegionCount {
				t.Fatalf("%s/%s: squash stats differ with telemetry on", b.Spec.Name, v.name)
			}

			run := func(out *core.Output) (*vm.Machine, *core.Runtime) {
				rt, err := core.NewRuntime(out.Meta)
				if err != nil {
					t.Fatalf("%s/%s: %v", b.Spec.Name, v.name, err)
				}
				m := vm.New(out.Image, b.Spec.TimingInput())
				m.EnableProfile()
				rt.Install(m)
				if err := m.Run(); err != nil {
					t.Fatalf("%s/%s: run: %v", b.Spec.Name, v.name, err)
				}
				return m, rt
			}
			mOff, rtOff := run(off)
			mOn, rtOn := run(on)
			if !bytes.Equal(mOff.Output, mOn.Output) {
				t.Fatalf("%s/%s: program output differs", b.Spec.Name, v.name)
			}
			if mOff.Cycles != mOn.Cycles || mOff.Instructions != mOn.Instructions {
				t.Fatalf("%s/%s: cycles %d/%d instructions %d/%d differ",
					b.Spec.Name, v.name, mOff.Cycles, mOn.Cycles, mOff.Instructions, mOn.Instructions)
			}
			if len(mOff.Profile) != len(mOn.Profile) {
				t.Fatalf("%s/%s: profile lengths differ", b.Spec.Name, v.name)
			}
			for i := range mOff.Profile {
				if mOff.Profile[i] != mOn.Profile[i] {
					t.Fatalf("%s/%s: profile differs at block %d", b.Spec.Name, v.name, i)
				}
			}
			if rtOff.Stats != rtOn.Stats {
				t.Fatalf("%s/%s: runtime stats differ: %+v vs %+v",
					b.Spec.Name, v.name, rtOff.Stats, rtOn.Stats)
			}
		}
	}
}
