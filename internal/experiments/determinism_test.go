package experiments

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/core"
)

// benchDigest squashes one benchmark and hashes the image plus the runtime
// metadata, the full byte surface a nondeterministic pipeline could perturb.
func benchDigest(t *testing.T, b *Bench, conf core.Config) [32]byte {
	t.Helper()
	out, err := b.Squash(conf)
	if err != nil {
		t.Fatalf("%s: squash (workers=%d): %v", b.Spec.Name, conf.Workers, err)
	}
	var buf bytes.Buffer
	if _, err := out.Image.WriteTo(&buf); err != nil {
		t.Fatalf("%s: image serialize: %v", b.Spec.Name, err)
	}
	meta, err := out.Meta.MarshalBinary()
	if err != nil {
		t.Fatalf("%s: meta serialize: %v", b.Spec.Name, err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(meta)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestSquashDeterministicAcrossWorkersMediaBench is the CI determinism
// gate on the real benchmark suite: every MediaBench program squashes to a
// byte-identical image at workers 1, 2, and 8, and two repeated runs at
// each count agree.
func TestSquashDeterministicAcrossWorkersMediaBench(t *testing.T) {
	s := quickSuite(t)
	for _, b := range s.Benches {
		b := b
		t.Run(b.Spec.Name, func(t *testing.T) {
			conf := core.DefaultConfig()
			conf.Theta = 0.001
			conf.StubCapacity = 64
			conf.Workers = 1
			want := benchDigest(t, b, conf)
			for _, workers := range []int{1, 2, 8} {
				for run := 0; run < 2; run++ {
					conf.Workers = workers
					if got := benchDigest(t, b, conf); got != want {
						t.Fatalf("workers=%d run %d: image diverged from serial squash", workers, run)
					}
				}
			}
		})
	}
}
