package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickSuiteCache shares one small-scale suite across the package's tests.
var quickSuiteCache *Suite

func quickSuite(t *testing.T) *Suite {
	t.Helper()
	if quickSuiteCache == nil {
		s, err := Load(0.05)
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		quickSuiteCache = s
	}
	return quickSuiteCache
}

// atof parses a float cell ("1.234") and atopct a percentage cell ("12.3%").
func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", s, err)
	}
	return v
}

func atopct(t *testing.T, s string) float64 {
	t.Helper()
	return atof(t, strings.TrimSuffix(strings.TrimSpace(s), "%")) / 100
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		t.Fatalf("bad int cell %q: %v", s, err)
	}
	return v
}

func TestTable1MatchesPaperWithinTolerance(t *testing.T) {
	s := quickSuite(t)
	tab := Table1(s)
	if len(tab.Rows) != 11 {
		t.Fatalf("%d rows, want 11", len(tab.Rows))
	}
	for _, b := range s.Benches {
		in := float64(b.InputInsts) / float64(b.Spec.TargetInput)
		sq := float64(b.SqueezedInsts()) / float64(b.Spec.TargetSqueeze)
		if in < 0.95 || in > 1.05 || sq < 0.93 || sq > 1.07 {
			t.Errorf("%s: input ratio %.3f squeeze ratio %.3f", b.Spec.Name, in, sq)
		}
	}
}

func TestFig4Monotone(t *testing.T) {
	s := quickSuite(t)
	tab, err := Fig4(s, []float64{0, 0.001, 0.01, 1})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for _, row := range tab.Rows {
		cold := atopct(t, row[1])
		comp := atopct(t, row[2])
		if cold+1e-9 < prev {
			t.Errorf("cold fraction fell: %v after %v", cold, prev)
		}
		if comp > cold+1e-9 {
			t.Errorf("compressible %v exceeds cold %v", comp, cold)
		}
		prev = cold
	}
	last := tab.Rows[len(tab.Rows)-1]
	if cold := atopct(t, last[1]); cold < 0.999 {
		t.Errorf("cold at θ=1 is %v, want 100%%", cold)
	}
}

func TestFig6ReductionGrowsWithTheta(t *testing.T) {
	s := quickSuite(t)
	tab, err := Fig6(s, []float64{0, 0.01, 1})
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	r0 := atopct(t, mean[1])
	r1 := atopct(t, mean[3])
	if r1 <= r0 {
		t.Errorf("mean reduction did not grow: θ=0 %.3f vs θ=1 %.3f", r0, r1)
	}
	if r0 < 0.05 {
		t.Errorf("θ=0 reduction %.3f implausibly small", r0)
	}
}

func TestFig7TimeGrowsWithThetaAndSizeShrinks(t *testing.T) {
	s := quickSuite(t)
	ta, tb, err := Fig7(s, []float64{0, 0.01})
	if err != nil {
		t.Fatal(err)
	}
	tmean := tb.Rows[len(tb.Rows)-1]
	t0 := atof(t, tmean[1])
	t1 := atof(t, tmean[2])
	if t1 <= t0 {
		t.Errorf("overhead did not grow with θ: %.3f -> %.3f", t0, t1)
	}
	if t0 > 1.6 {
		t.Errorf("θ=0 overhead ×%.3f too large", t0)
	}
	smean := ta.Rows[len(ta.Rows)-1]
	s0 := atof(t, smean[1])
	s1 := atof(t, smean[2])
	if s0 >= 1 || s1 >= s0 {
		t.Errorf("size ratios not shrinking: %.3f, %.3f", s0, s1)
	}
}

func TestFig3BufferSweepHasInteriorMinimum(t *testing.T) {
	s := quickSuite(t)
	tab, err := Fig3(s, []int{64, 512, 4096}, []float64{0.01})
	if err != nil {
		t.Fatal(err)
	}
	mid := atof(t, tab.Rows[1][1])
	lo := atof(t, tab.Rows[0][1])
	hi := atof(t, tab.Rows[2][1])
	if mid >= lo || mid >= hi {
		t.Logf("note: K=512 (%v) not strictly below K=64 (%v) and K=4096 (%v) at this scale", mid, lo, hi)
	}
	if mid > 1.0 {
		t.Errorf("K=512 ratio %v exceeds 1: no compression achieved", mid)
	}
}

func TestGammaInPlausibleRange(t *testing.T) {
	s := quickSuite(t)
	tab, err := GammaStats(s)
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	g := atof(t, mean[1])
	if g < 0.3 || g > 0.9 {
		t.Errorf("geo-mean γ = %v outside plausible range", g)
	}
}

func TestBufferSafeFractionsPositive(t *testing.T) {
	s := quickSuite(t)
	tab, err := BufferSafeStats(s)
	if err != nil {
		t.Fatal(err)
	}
	positive := 0
	for _, row := range tab.Rows[:len(tab.Rows)-1] {
		if atoi(t, row[1]) > 0 {
			positive++
		}
	}
	if positive < 6 {
		t.Errorf("only %d/11 programs have buffer-safe calls", positive)
	}
}

func TestRunNames(t *testing.T) {
	s := quickSuite(t)
	if _, err := Run(s, "nonesuch"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	outStr, err := Run(s, "table1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outStr, "adpcm") {
		t.Fatal("table1 output missing benchmarks")
	}
	if len(Names()) < 10 {
		t.Fatal("experiment registry too small")
	}
}

func TestStubStatsBounded(t *testing.T) {
	s := quickSuite(t)
	tab, err := StubStats(s)
	if err != nil {
		t.Fatal(err)
	}
	last := tab.Rows[len(tab.Rows)-1]
	maxLive := atoi(t, last[1])
	if maxLive < 1 || maxLive > 64 {
		t.Errorf("max live stubs = %d", maxLive)
	}
	// Compile-time stubs cost more of the never-compressed code at the
	// aggressive threshold, as in the paper (13% → 27%).
	f0 := atopct(t, last[2])
	f1 := atopct(t, last[3])
	if f1 <= f0 {
		t.Errorf("static stub fraction did not grow with θ: %.3f -> %.3f", f0, f1)
	}
}

func TestPathologySlowsDown(t *testing.T) {
	s := quickSuite(t)
	tab, err := Pathology(s)
	if err != nil {
		t.Fatal(err)
	}
	normal := atof(t, tab.Rows[0][3])
	pathological := atof(t, tab.Rows[1][3])
	if pathological <= normal {
		t.Errorf("pathological input not slower: %.3f vs %.3f", pathological, normal)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyy", "2"}},
		Notes:  []string{"note"},
	}
	out := tab.Render()
	for _, want := range []string{"## demo", "long-header", "yyyy", "note", "----"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestInterpComparisonShape(t *testing.T) {
	s := quickSuite(t)
	tab, err := InterpComparison(s)
	if err != nil {
		t.Fatal(err)
	}
	mean := tab.Rows[len(tab.Rows)-1]
	sizeDec := atof(t, mean[1])
	sizeItp := atof(t, mean[2])
	if sizeDec >= 1 || sizeItp >= 1 {
		t.Errorf("no compression: dec %.3f interp %.3f", sizeDec, sizeItp)
	}
	t.Logf("size dec %.3f vs interp %.3f; time dec %s vs interp %s",
		sizeDec, sizeItp, mean[3], mean[4])
}

func TestICacheStatsEquivalenceAndShape(t *testing.T) {
	s := quickSuite(t)
	small := &Suite{Benches: s.Benches[:3], Scale: s.Scale}
	tab, err := ICacheStats(small, 8*1024)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if atof(t, row[1]) > 0.5 || atof(t, row[2]) > 0.5 {
			t.Errorf("%s: implausible miss rates %s / %s", row[0], row[1], row[2])
		}
	}
}
