package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/mediabench"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/squeeze"
	"repro/internal/vm"
)

// Preparing one benchmark — generate, assemble, squeeze, link, run the
// profiling input on the simulator — is the dominant fixed cost of every
// suite load: the experiment matrix itself only varies θ, K, and coder over
// the *same* prepared artifacts. This file caches those artifacts under a
// content key (program source + profiling input), in two layers:
//
//   - an in-memory layer, always on, so repeated Load calls in one process
//     (tests, benchmarks, the matrix CLI) prepare each benchmark once;
//   - an optional on-disk layer (LoadCached / experiments -cache), so
//     repeated CLI runs skip preparation entirely when program and inputs
//     are unchanged.
//
// The payload stores the squeezed object and the profile in their existing
// serialized forms (objfile "EMO1", profile "EMP1"); cache hits and misses
// both rebuild the Bench by decoding the payload, so a hit is identical to
// a miss by construction. The key covers the benchmark content, not the
// toolchain: bump prepCacheFormat (or delete the cache directory) when the
// assembler, squeezer, linker, or profiler semantics change.

// prepCacheFormat versions both the content key and the payload encoding.
const prepCacheFormat = 1

var prepMagic = [4]byte{'E', 'M', 'C', '1'}

// prepPayload is one benchmark's cached preparation result. All fields are
// immutable after construction; Benches are decoded fresh from it per Load.
type prepPayload struct {
	inputInsts int
	stats      squeeze.Stats
	obj        []byte // squeezed object, objfile "EMO1" encoding
	prof       []byte // profiling counts, profile "EMP1" encoding
}

// prepMem is the in-memory layer: content key -> *prepPayload.
var prepMem sync.Map

// resetPrepCache drops the in-memory layer (tests only).
func resetPrepCache() {
	prepMem.Range(func(k, _ any) bool { prepMem.Delete(k); return true })
}

// prepKey hashes everything preparation consumes: the generated assembly
// source and the profiling input, plus the spec name and scaled input sizes
// (TimeBytes rides along in Bench.Spec even though preparation ignores it).
func prepKey(spec mediabench.Spec) [32]byte {
	h := sha256.New()
	fmt.Fprintf(h, "emprep%d\x00%s\x00%d\x00%d\x00", prepCacheFormat, spec.Name, spec.ProfBytes, spec.TimeBytes)
	io.WriteString(h, spec.Generate())
	h.Write([]byte{0})
	h.Write(spec.ProfilingInput())
	var k [32]byte
	copy(k[:], h.Sum(nil))
	return k
}

// buildPayload runs the full preparation pipeline and serializes the
// result, with one child span per stage under sp (which may be nil).
func buildPayload(spec mediabench.Spec, sp *obs.Span) (*prepPayload, error) {
	st := sp.Child("assemble")
	obj, err := asm.Assemble(spec.Generate())
	st.End()
	if err != nil {
		return nil, err
	}
	st = sp.Child("cfg")
	p, err := cfg.Build(obj, "main")
	st.End()
	if err != nil {
		return nil, err
	}
	st = sp.Child("squeeze")
	sqStats, err := squeeze.Run(p)
	st.End()
	if err != nil {
		return nil, err
	}
	sqObj, err := cfg.Lower(p)
	if err != nil {
		return nil, err
	}
	st = sp.Child("link")
	im, err := objfile.Link("main", sqObj)
	st.End()
	if err != nil {
		return nil, err
	}
	st = sp.Child("profile")
	m := vm.New(im, spec.ProfilingInput())
	m.EnableProfile()
	err = m.Run()
	st.End()
	if err != nil {
		return nil, fmt.Errorf("profiling run: %w", err)
	}
	var objBuf, profBuf bytes.Buffer
	if _, err := sqObj.WriteTo(&objBuf); err != nil {
		return nil, err
	}
	if _, err := profile.Counts(m.Profile).WriteTo(&profBuf); err != nil {
		return nil, err
	}
	return &prepPayload{
		inputInsts: len(obj.Text),
		stats:      *sqStats,
		obj:        objBuf.Bytes(),
		prof:       profBuf.Bytes(),
	}, nil
}

// benchFromPayload decodes a payload into a fresh Bench. Both cache hits and
// misses go through here, so the two paths cannot diverge.
func benchFromPayload(spec mediabench.Spec, p *prepPayload) (*Bench, error) {
	sqObj, err := objfile.ReadObject(bytes.NewReader(p.obj))
	if err != nil {
		return nil, fmt.Errorf("cached object: %w", err)
	}
	im, err := objfile.Link("main", sqObj)
	if err != nil {
		return nil, err
	}
	counts, err := profile.ReadCounts(bytes.NewReader(p.prof))
	if err != nil {
		return nil, fmt.Errorf("cached profile: %w", err)
	}
	stats := p.stats
	return &Bench{
		Spec:         spec,
		InputInsts:   p.inputInsts,
		SqueezeStats: &stats,
		SqObj:        sqObj,
		SqImage:      im,
		Profile:      counts,
	}, nil
}

// scaleSize applies the suite's input scale to one byte count. Truncation
// must never reach zero: a benchmark with an empty profiling or timing input
// is degenerate (nothing executes the input loop), so tiny scales clamp to a
// single byte.
func scaleSize(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

// prepWarnf receives non-fatal preparation warnings (a failed disk-cache
// write). Tests swap it to capture the message.
var prepWarnf = func(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

// prepareCached is prepare() behind the two cache layers. It reports whether
// the result came from a cache (memory or disk).
func prepareCached(spec mediabench.Spec, scale float64, dir string) (*Bench, bool, error) {
	return prepareCachedObs(spec, scale, dir, nil)
}

// prepareCachedObs is prepareCached with the caller's per-bench span; the
// preparation stages appear as its children on a cache miss.
func prepareCachedObs(spec mediabench.Spec, scale float64, dir string, sp *obs.Span) (*Bench, bool, error) {
	if scale != 1.0 {
		spec.ProfBytes = scaleSize(spec.ProfBytes, scale)
		spec.TimeBytes = scaleSize(spec.TimeBytes, scale)
	}
	key := prepKey(spec)
	if v, ok := prepMem.Load(key); ok {
		b, err := benchFromPayload(spec, v.(*prepPayload))
		return b, true, err
	}
	if dir != "" {
		if p, err := readPrepFile(prepFilePath(dir, key)); err == nil {
			prepMem.Store(key, p)
			b, err := benchFromPayload(spec, p)
			return b, true, err
		}
		// Unreadable or corrupt entries fall through to a recompute, which
		// rewrites the file.
	}
	p, err := buildPayload(spec, sp)
	if err != nil {
		return nil, false, err
	}
	prepMem.Store(key, p)
	if dir != "" {
		// The payload is already computed and stored in memory; a failed
		// disk write (read-only or full cache directory) only costs the
		// *next* process a recompute, so it degrades to a warning.
		if err := writePrepFile(dir, key, p); err != nil {
			prepWarnf("experiments: %s: prep cache write failed, continuing uncached: %v", spec.Name, err)
		}
	}
	b, err := benchFromPayload(spec, p)
	return b, false, err
}

// PrepareSpec prepares one named benchmark through the content-keyed cache
// layers (always-on memory, optional disk under cacheDir), for callers
// outside the suite loader — the squash daemon serves named-benchmark
// requests through it. It reports whether the preparation came from a cache.
func PrepareSpec(name string, scale float64, cacheDir string) (*Bench, bool, error) {
	spec, ok := mediabench.SpecByName(name)
	if !ok {
		return nil, false, fmt.Errorf("experiments: unknown benchmark %q", name)
	}
	return prepareCached(spec, scale, cacheDir)
}

// --- disk layer ----------------------------------------------------------

func prepFilePath(dir string, key [32]byte) string {
	return filepath.Join(dir, fmt.Sprintf("%x.prep", key))
}

// marshalPayload encodes a payload:
//
//	magic "EMC1" | inputInsts u32 | squeeze stats (8 × u32)
//	| obj len u32, obj bytes | prof len u32, prof bytes
func marshalPayload(p *prepPayload) []byte {
	var buf bytes.Buffer
	buf.Write(prepMagic[:])
	w := func(v int) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		buf.Write(b[:])
	}
	w(p.inputInsts)
	st := p.stats
	for _, v := range []int{st.InputInsts, st.OutputInsts, st.FuncsRemoved, st.BlocksRemoved,
		st.InstsUnreachable, st.NopsRemoved, st.AbstractedFuncs, st.AbstractedSavings} {
		w(v)
	}
	w(len(p.obj))
	buf.Write(p.obj)
	w(len(p.prof))
	buf.Write(p.prof)
	return buf.Bytes()
}

func unmarshalPayload(data []byte) (*prepPayload, error) {
	if len(data) < 4 || !bytes.Equal(data[:4], prepMagic[:]) {
		return nil, fmt.Errorf("prep cache: bad magic")
	}
	pos := 4
	r := func() (int, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("prep cache: truncated at byte %d", pos)
		}
		v := binary.LittleEndian.Uint32(data[pos:])
		pos += 4
		return int(v), nil
	}
	p := &prepPayload{}
	fields := []*int{&p.inputInsts,
		&p.stats.InputInsts, &p.stats.OutputInsts, &p.stats.FuncsRemoved, &p.stats.BlocksRemoved,
		&p.stats.InstsUnreachable, &p.stats.NopsRemoved, &p.stats.AbstractedFuncs, &p.stats.AbstractedSavings}
	for _, f := range fields {
		v, err := r()
		if err != nil {
			return nil, err
		}
		*f = v
	}
	for _, dst := range []*[]byte{&p.obj, &p.prof} {
		n, err := r()
		if err != nil {
			return nil, err
		}
		if n > len(data)-pos {
			return nil, fmt.Errorf("prep cache: declared size %d exceeds file size", n)
		}
		*dst = append([]byte(nil), data[pos:pos+n]...)
		pos += n
	}
	if pos != len(data) {
		return nil, fmt.Errorf("prep cache: %d trailing bytes", len(data)-pos)
	}
	return p, nil
}

func readPrepFile(path string) (*prepPayload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return unmarshalPayload(data)
}

// writePrepFile writes atomically (tmp + rename) so a concurrent reader
// never sees a half-written entry.
func writePrepFile(dir string, key [32]byte, p *prepPayload) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := prepFilePath(dir, key)
	tmp, err := os.CreateTemp(dir, "*.prep.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(marshalPayload(p)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
