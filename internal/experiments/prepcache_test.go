package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mediabench"
)

// benchFingerprint serializes everything a prepared Bench carries into the
// experiments: the squeezed object, the linked image, the profile, and the
// scalar statistics.
func benchFingerprint(t *testing.T, b *Bench) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := b.SqObj.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SqImage.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Profile.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	writeInts := func(vals ...int) {
		for _, v := range vals {
			buf.WriteByte(byte(v))
			buf.WriteByte(byte(v >> 8))
			buf.WriteByte(byte(v >> 16))
			buf.WriteByte(byte(v >> 24))
		}
	}
	st := b.SqueezeStats
	writeInts(b.InputInsts, st.InputInsts, st.OutputInsts, st.FuncsRemoved, st.BlocksRemoved,
		st.InstsUnreachable, st.NopsRemoved, st.AbstractedFuncs, st.AbstractedSavings)
	return buf.Bytes()
}

func adpcmSpec(t *testing.T) mediabench.Spec {
	t.Helper()
	spec, ok := mediabench.SpecByName("adpcm")
	if !ok {
		t.Fatal("adpcm spec missing")
	}
	return spec
}

// TestPrepCacheHitMatchesMiss: a Bench served from the disk cache, from the
// memory cache, and recomputed from scratch must be byte-identical — the
// invariant that keeps cached experiment runs trustworthy.
func TestPrepCacheHitMatchesMiss(t *testing.T) {
	spec := adpcmSpec(t)
	dir := t.TempDir()

	resetPrepCache()
	miss, hit, err := prepareCached(spec, 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("fresh cache reported a hit")
	}
	want := benchFingerprint(t, miss)

	// Disk hit: memory layer cleared, payload comes from the file.
	resetPrepCache()
	fromDisk, hit, err := prepareCached(spec, 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("disk cache missed")
	}
	if !bytes.Equal(want, benchFingerprint(t, fromDisk)) {
		t.Fatal("disk cache hit differs from recomputation")
	}

	// Memory hit: same process, no disk needed.
	fromMem, hit, err := prepareCached(spec, 0.05, "")
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("memory cache missed")
	}
	if !bytes.Equal(want, benchFingerprint(t, fromMem)) {
		t.Fatal("memory cache hit differs from recomputation")
	}

	// Distinct scales are distinct cache entries.
	scaled := spec
	scaled.ProfBytes = int(float64(scaled.ProfBytes) * 0.05)
	scaled.TimeBytes = int(float64(scaled.TimeBytes) * 0.05)
	if prepKey(spec) == prepKey(scaled) {
		t.Fatal("scaled and unscaled specs share a cache key")
	}
}

// TestPrepCacheCorruptionRecovers: a damaged cache file must be recomputed
// (and rewritten), never trusted; every truncation of a payload must be
// rejected by the decoder.
func TestPrepCacheCorruptionRecovers(t *testing.T) {
	spec := adpcmSpec(t)
	dir := t.TempDir()

	resetPrepCache()
	fresh, _, err := prepareCached(spec, 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := benchFingerprint(t, fresh)

	scaled := spec
	scaled.ProfBytes = int(float64(scaled.ProfBytes) * 0.05)
	scaled.TimeBytes = int(float64(scaled.TimeBytes) * 0.05)
	path := prepFilePath(dir, prepKey(scaled))
	payload, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cache file not written: %v", err)
	}
	for n := 0; n < len(payload); n += 997 {
		if _, err := unmarshalPayload(payload[:n]); err == nil {
			t.Fatalf("truncated payload (%d bytes) accepted", n)
		}
	}
	if _, err := unmarshalPayload(append(append([]byte{}, payload...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}

	if err := os.WriteFile(path, []byte("EMC1 corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	resetPrepCache()
	recovered, hit, err := prepareCached(spec, 0.05, dir)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("corrupt cache file served as a hit")
	}
	if !bytes.Equal(want, benchFingerprint(t, recovered)) {
		t.Fatal("recovery recompute differs from original")
	}
	rewritten, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rewritten, payload) {
		t.Fatal("recompute did not rewrite the corrupt entry")
	}
	if _, err := os.Stat(filepath.Join(dir, "nonesuch.prep")); err == nil {
		t.Fatal("unexpected cache entry")
	}
}

// TestPrepCacheWriteFailureDegrades: when the disk layer cannot be written
// (here: the cache "directory" is a regular file, so MkdirAll fails — the
// same shape as a read-only or full cache dir), preparation must still
// succeed from the computed payload, with only a warning.
func TestPrepCacheWriteFailureDegrades(t *testing.T) {
	spec := adpcmSpec(t)
	notADir := filepath.Join(t.TempDir(), "cache")
	if err := os.WriteFile(notADir, []byte("occupied"), 0o644); err != nil {
		t.Fatal(err)
	}

	var warned string
	origWarn := prepWarnf
	prepWarnf = func(format string, args ...any) { warned = format }
	defer func() { prepWarnf = origWarn }()

	resetPrepCache()
	b, hit, err := prepareCached(spec, 0.05, notADir)
	if err != nil {
		t.Fatalf("prepareCached failed on unwritable cache dir: %v", err)
	}
	if hit {
		t.Fatal("fresh cache reported a hit")
	}
	if b == nil || b.SqObj == nil {
		t.Fatal("no bench returned")
	}
	if warned == "" {
		t.Fatal("failed disk write produced no warning")
	}
	// The in-memory layer was still populated: the retry is a hit.
	again, hit, err := prepareCached(spec, 0.05, notADir)
	if err != nil || !hit {
		t.Fatalf("memory layer not populated after disk failure: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(benchFingerprint(t, b), benchFingerprint(t, again)) {
		t.Fatal("memory hit differs from the degraded preparation")
	}
}

// TestPrepScaleClampsToOne: truncating the input scale must never produce an
// empty profiling or timing input; tiny scales clamp to one byte.
func TestPrepScaleClampsToOne(t *testing.T) {
	if got := scaleSize(20000, 1e-9); got != 1 {
		t.Fatalf("scaleSize(20000, 1e-9) = %d, want 1", got)
	}
	if got := scaleSize(20000, 0.05); got != 1000 {
		t.Fatalf("scaleSize(20000, 0.05) = %d, want 1000", got)
	}

	spec := adpcmSpec(t)
	resetPrepCache()
	b, _, err := prepareCached(spec, 1e-9, "")
	if err != nil {
		t.Fatalf("prepareCached at tiny scale: %v", err)
	}
	if b.Spec.ProfBytes < 1 || b.Spec.TimeBytes < 1 {
		t.Fatalf("scaled inputs truncated to zero: prof=%d time=%d",
			b.Spec.ProfBytes, b.Spec.TimeBytes)
	}
	if len(b.Spec.ProfilingInput()) < 1 || len(b.Spec.TimingInput()) < 1 {
		t.Fatalf("empty generated inputs: prof=%d time=%d",
			len(b.Spec.ProfilingInput()), len(b.Spec.TimingInput()))
	}
}

// TestLoadCachedSuiteHits: a second LoadCached of the full suite is served
// entirely from cache and matches the first load bench-for-bench — the
// property that lets matrix runs share preparation.
func TestLoadCachedSuiteHits(t *testing.T) {
	// The first load warms the in-memory layer for any benchmark an earlier
	// test evicted; the reload must then hit on every benchmark.
	first, err := LoadCached(0.05, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	again, err := LoadCached(0.05, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if again.PrepCacheHits != len(again.Benches) {
		t.Fatalf("%d/%d cache hits on reload", again.PrepCacheHits, len(again.Benches))
	}
	if len(again.Benches) != len(first.Benches) {
		t.Fatalf("suite sizes differ: %d vs %d", len(again.Benches), len(first.Benches))
	}
	for i := range first.Benches {
		if !bytes.Equal(benchFingerprint(t, first.Benches[i]), benchFingerprint(t, again.Benches[i])) {
			t.Fatalf("%s: cached reload differs from first load", first.Benches[i].Spec.Name)
		}
	}
}
