// Package isa defines EM32, an Alpha-flavoured 32-bit RISC instruction set
// used as the target architecture for the profile-guided code compression
// system. EM32 mirrors the Compaq Alpha's instruction taxonomy — the test
// platform of Debray & Evans (PLDI 2002) — closely enough that the paper's
// split-stream compression applies unchanged: every instruction is a 32-bit
// word composed of typed fields, and the set of field types across all
// formats yields exactly fifteen operand streams.
//
// Formats (bit 31 is the most significant):
//
//	Pal:     op[31:26] func[25:0]
//	Mem:     op[31:26] ra[25:21] rb[20:16] disp[15:0]   (disp: signed bytes)
//	Branch:  op[31:26] ra[25:21] disp[20:0]             (disp: signed words)
//	OpReg:   op[31:26] ra[25:21] rb[20:16] sbz[15:13] 0[12] func[11:5] rc[4:0]
//	OpLit:   op[31:26] ra[25:21] lit[20:13]        1[12] func[11:5] rc[4:0]
//	Jump:    op[31:26] ra[25:21] rb[20:16] jfunc[15:14] hint[13:0]
//
// The machine has 32 general registers of 32 bits each; R31 always reads as
// zero. Software conventions follow the Alpha calling standard: R0 carries
// return values, R16–R21 carry arguments, R26 is the return-address register,
// R30 the stack pointer.
package isa

import "fmt"

// WordSize is the size in bytes of one EM32 instruction or data word.
const WordSize = 4

// Register numbers with conventional roles (Alpha calling standard).
const (
	RegV0   = 0  // return value
	RegT0   = 1  // first caller-saved temporary
	RegS0   = 9  // first callee-saved register
	RegFP   = 15 // frame pointer
	RegA0   = 16 // first argument register
	RegA1   = 17
	RegA2   = 18
	RegA3   = 19
	RegA4   = 20
	RegA5   = 21
	RegRA   = 26 // return address
	RegPV   = 27 // procedure value (indirect call target)
	RegAT   = 28 // assembler temporary, reserved for rewriting tools
	RegGP   = 29 // global pointer
	RegSP   = 30 // stack pointer
	RegZero = 31 // hardwired zero
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// Format identifies the encoding format of an instruction.
type Format uint8

// Instruction formats.
const (
	FormatPal Format = iota
	FormatMem
	FormatBranch
	FormatOpReg
	FormatOpLit
	FormatJump
	FormatIllegal
)

var formatNames = [...]string{
	FormatPal:     "Pal",
	FormatMem:     "Mem",
	FormatBranch:  "Branch",
	FormatOpReg:   "OpReg",
	FormatOpLit:   "OpLit",
	FormatJump:    "Jump",
	FormatIllegal: "Illegal",
}

func (f Format) String() string {
	if int(f) < len(formatNames) {
		return formatNames[f]
	}
	return fmt.Sprintf("Format(%d)", uint8(f))
}

// Primary opcodes (6 bits).
const (
	OpPal uint32 = 0x00 // system call / privileged

	// Memory format.
	OpLDA  uint32 = 0x08 // ra <- rb + disp
	OpLDAH uint32 = 0x09 // ra <- rb + (disp << 16)
	OpLDB  uint32 = 0x0A // ra <- zeroext(mem8[rb + disp])
	OpSTB  uint32 = 0x0E // mem8[rb + disp] <- ra
	OpLDW  uint32 = 0x28 // ra <- mem32[rb + disp]
	OpSTW  uint32 = 0x2C // mem32[rb + disp] <- ra

	// Operate groups (OpReg / OpLit formats share primary opcodes).
	OpIntA uint32 = 0x10 // arithmetic and compares
	OpIntL uint32 = 0x11 // logical
	OpIntS uint32 = 0x12 // shifts
	OpIntM uint32 = 0x13 // multiply / divide

	// Jump format.
	OpJump uint32 = 0x1A

	// Branch format.
	OpBR  uint32 = 0x30 // unconditional: ra <- retaddr, pc += disp
	OpBSR uint32 = 0x34 // subroutine:    ra <- retaddr, pc += disp
	OpBEQ uint32 = 0x38
	OpBNE uint32 = 0x39
	OpBLT uint32 = 0x3A
	OpBLE uint32 = 0x3B
	OpBGT uint32 = 0x3C
	OpBGE uint32 = 0x3D

	// OpIllegal is a reserved opcode; the all-ones word encodes the
	// decompression sentinel that terminates every compressed region.
	OpIllegal uint32 = 0x3F

	// Virtual opcodes that appear only inside compressed instruction
	// streams, never in executable memory. The decompressor expands each
	// into two instructions in the runtime buffer (paper, §2.2): a call to
	// CreateStub followed by the actual control transfer.
	OpBSRX uint32 = 0x35 // expanded direct call: bsr CreateStub; br target
	OpJSRX uint32 = 0x1B // expanded indirect call: bsr CreateStub; jmp (rb)
)

// Function codes for the OpIntA group (7 bits). The sparse, Alpha-like
// values give the func-code stream a realistic, skewed value distribution.
const (
	FnADD    uint32 = 0x00
	FnSUB    uint32 = 0x09
	FnCMPULT uint32 = 0x1D
	FnCMPEQ  uint32 = 0x2D
	FnCMPULE uint32 = 0x3D
	FnCMPLT  uint32 = 0x4D
	FnCMPLE  uint32 = 0x6D
)

// Function codes for the OpIntL group.
const (
	FnAND   uint32 = 0x00
	FnBIC   uint32 = 0x08
	FnBIS   uint32 = 0x20 // inclusive or
	FnORNOT uint32 = 0x28
	FnXOR   uint32 = 0x40
	FnEQV   uint32 = 0x48
)

// Function codes for the OpIntS group.
const (
	FnSRL uint32 = 0x34
	FnSLL uint32 = 0x39
	FnSRA uint32 = 0x3C
)

// Function codes for the OpIntM group.
const (
	FnMUL  uint32 = 0x00
	FnDIV  uint32 = 0x10 // signed division (EM32 extension; Alpha lacks it)
	FnMOD  uint32 = 0x12 // signed remainder (EM32 extension)
	FnMULH uint32 = 0x30 // high 32 bits of the 64-bit product
)

// Jump-format function codes (2 bits).
const (
	JmpJMP uint32 = 0 // pc <- rb;  ra <- retaddr
	JmpJSR uint32 = 1 // subroutine call through a register
	JmpRET uint32 = 2 // return
	JmpCO  uint32 = 3 // coroutine linkage (unused, reserved)
)

// System-call function codes (Pal format).
const (
	SysHALT   uint32 = 0 // terminate; exit status in R16
	SysGETC   uint32 = 1 // R0 <- next input byte, or -1 at end of input
	SysPUTC   uint32 = 2 // emit low byte of R16 to the output stream
	SysSETJMP uint32 = 3 // save continuation; R0 <- 0 (1 after longjmp)
	SysLNGJMP uint32 = 4 // restore continuation saved by SETJMP
	SysIMB    uint32 = 5 // instruction-memory barrier (icache flush)
)

// Sentinel is the illegal instruction word appended to every compressed
// region; the decompressor stops when it decodes this word (paper, §2.1).
const Sentinel uint32 = 0xFFFFFFFF

// Inst is a decoded EM32 instruction. Fields not used by the instruction's
// format are zero. Disp is sign-extended; RA, RB, RC, Lit, Func, Hint are
// the raw field values.
type Inst struct {
	Op     uint32 // primary opcode (6 bits)
	Format Format
	RA     uint32 // register field a (5 bits)
	RB     uint32 // register field b (5 bits)
	RC     uint32 // register field c (5 bits, operate formats)
	Disp   int32  // sign-extended displacement (Mem: bytes, Branch: words)
	Lit    uint32 // 8-bit literal (OpLit)
	Func   uint32 // function code (operate: 7 bits, Pal: 26 bits)
	JFunc  uint32 // jump subcode (2 bits)
	Hint   uint32 // jump hint (14 bits)
}

// FormatOf reports the encoding format selected by a primary opcode. For the
// operate group the reg/lit distinction depends on bit 12 of the word, so
// FormatOf returns FormatOpReg; Decode refines it.
func FormatOf(op uint32) Format {
	switch op {
	case OpPal:
		return FormatPal
	case OpLDA, OpLDAH, OpLDB, OpSTB, OpLDW, OpSTW:
		return FormatMem
	case OpIntA, OpIntL, OpIntS, OpIntM:
		return FormatOpReg
	case OpJump, OpJSRX:
		return FormatJump
	case OpBR, OpBSR, OpBSRX, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE:
		return FormatBranch
	default:
		return FormatIllegal
	}
}

// IsBranchOp reports whether op is a Branch-format opcode.
func IsBranchOp(op uint32) bool { return FormatOf(op) == FormatBranch }

// IsCondBranchOp reports whether op is a conditional branch.
func IsCondBranchOp(op uint32) bool { return op >= OpBEQ && op <= OpBGE }

// Encode packs the instruction into a 32-bit word. It panics if a field is
// out of range for the format, since that always indicates a bug in the
// caller rather than bad input data.
func Encode(in Inst) uint32 {
	check := func(v uint32, bits uint, what string) {
		if v >= 1<<bits {
			panic(fmt.Sprintf("isa.Encode: %s value %d exceeds %d bits (op %#x)", what, v, bits, in.Op))
		}
	}
	check(in.Op, 6, "opcode")
	w := in.Op << 26
	switch in.Format {
	case FormatPal:
		check(in.Func, 26, "pal func")
		w |= in.Func
	case FormatMem:
		check(in.RA, 5, "ra")
		check(in.RB, 5, "rb")
		if in.Disp < -(1<<15) || in.Disp >= 1<<15 {
			panic(fmt.Sprintf("isa.Encode: memory displacement %d exceeds 16 bits", in.Disp))
		}
		w |= in.RA<<21 | in.RB<<16 | uint32(in.Disp)&0xFFFF
	case FormatBranch:
		check(in.RA, 5, "ra")
		if in.Disp < -(1<<20) || in.Disp >= 1<<20 {
			panic(fmt.Sprintf("isa.Encode: branch displacement %d exceeds 21 bits", in.Disp))
		}
		w |= in.RA<<21 | uint32(in.Disp)&0x1FFFFF
	case FormatOpReg:
		check(in.RA, 5, "ra")
		check(in.RB, 5, "rb")
		check(in.RC, 5, "rc")
		check(in.Func, 7, "func")
		w |= in.RA<<21 | in.RB<<16 | in.Func<<5 | in.RC
	case FormatOpLit:
		check(in.RA, 5, "ra")
		check(in.Lit, 8, "lit")
		check(in.RC, 5, "rc")
		check(in.Func, 7, "func")
		w |= in.RA<<21 | in.Lit<<13 | 1<<12 | in.Func<<5 | in.RC
	case FormatJump:
		check(in.RA, 5, "ra")
		check(in.RB, 5, "rb")
		check(in.JFunc, 2, "jfunc")
		check(in.Hint, 14, "hint")
		w |= in.RA<<21 | in.RB<<16 | in.JFunc<<14 | in.Hint
	case FormatIllegal:
		return Sentinel
	default:
		panic(fmt.Sprintf("isa.Encode: unknown format %v", in.Format))
	}
	return w
}

// Decode unpacks a 32-bit word into its instruction fields. Words with a
// reserved primary opcode decode to FormatIllegal; executing one traps.
func Decode(w uint32) Inst {
	op := w >> 26
	in := Inst{Op: op, Format: FormatOf(op)}
	switch in.Format {
	case FormatPal:
		in.Func = w & 0x03FFFFFF
	case FormatMem:
		in.RA = w >> 21 & 31
		in.RB = w >> 16 & 31
		in.Disp = int32(int16(w & 0xFFFF))
	case FormatBranch:
		in.RA = w >> 21 & 31
		in.Disp = int32(w&0x1FFFFF) << 11 >> 11
	case FormatOpReg:
		in.RA = w >> 21 & 31
		in.Func = w >> 5 & 0x7F
		in.RC = w & 31
		if w>>12&1 == 1 {
			in.Format = FormatOpLit
			in.Lit = w >> 13 & 0xFF
		} else {
			in.RB = w >> 16 & 31
		}
	case FormatJump:
		in.RA = w >> 21 & 31
		in.RB = w >> 16 & 31
		in.JFunc = w >> 14 & 3
		in.Hint = w & 0x3FFF
	}
	return in
}

// Convenience constructors used throughout the toolchain.

// Mem builds a memory-format instruction.
func Mem(op, ra, rb uint32, disp int32) Inst {
	return Inst{Op: op, Format: FormatMem, RA: ra, RB: rb, Disp: disp}
}

// Br builds a branch-format instruction with a word displacement.
func Br(op, ra uint32, disp int32) Inst {
	return Inst{Op: op, Format: FormatBranch, RA: ra, Disp: disp}
}

// OpR builds a register-operand operate instruction rc <- ra OP rb.
func OpR(group, ra, rb, fn, rc uint32) Inst {
	return Inst{Op: group, Format: FormatOpReg, RA: ra, RB: rb, Func: fn, RC: rc}
}

// OpL builds a literal-operand operate instruction rc <- ra OP lit.
func OpL(group, ra, lit, fn, rc uint32) Inst {
	return Inst{Op: group, Format: FormatOpLit, RA: ra, Lit: lit, Func: fn, RC: rc}
}

// Jump builds a jump-format instruction.
func Jump(jfunc, ra, rb, hint uint32) Inst {
	return Inst{Op: OpJump, Format: FormatJump, RA: ra, RB: rb, JFunc: jfunc, Hint: hint}
}

// Sys builds a system-call instruction.
func Sys(fn uint32) Inst { return Inst{Op: OpPal, Format: FormatPal, Func: fn} }

// Nop returns the canonical no-op encoding (bis r31, r31, r31).
func Nop() Inst { return OpR(OpIntL, RegZero, RegZero, FnBIS, RegZero) }

// IsNop reports whether the instruction has no architectural effect.
func IsNop(in Inst) bool {
	switch in.Format {
	case FormatOpReg, FormatOpLit:
		return in.RC == RegZero
	case FormatMem:
		return in.Op != OpSTW && in.Op != OpSTB && in.RA == RegZero
	case FormatBranch:
		// A conditional branch on the zero register with zero displacement
		// falls through unconditionally and has no effect.
		return IsCondBranchOp(in.Op) && in.Disp == 0
	}
	return false
}
