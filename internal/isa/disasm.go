package isa

import "fmt"

var memMnemonics = map[uint32]string{
	OpLDA:  "lda",
	OpLDAH: "ldah",
	OpLDB:  "ldb",
	OpSTB:  "stb",
	OpLDW:  "ldw",
	OpSTW:  "stw",
}

var branchMnemonics = map[uint32]string{
	OpBR:   "br",
	OpBSR:  "bsr",
	OpBSRX: "bsrx", // virtual: only inside compressed streams
	OpBEQ:  "beq",
	OpBNE:  "bne",
	OpBLT:  "blt",
	OpBLE:  "ble",
	OpBGT:  "bgt",
	OpBGE:  "bge",
}

var operateMnemonics = map[[2]uint32]string{
	{OpIntA, FnADD}:    "add",
	{OpIntA, FnSUB}:    "sub",
	{OpIntA, FnCMPULT}: "cmpult",
	{OpIntA, FnCMPEQ}:  "cmpeq",
	{OpIntA, FnCMPULE}: "cmpule",
	{OpIntA, FnCMPLT}:  "cmplt",
	{OpIntA, FnCMPLE}:  "cmple",
	{OpIntL, FnAND}:    "and",
	{OpIntL, FnBIC}:    "bic",
	{OpIntL, FnBIS}:    "bis",
	{OpIntL, FnORNOT}:  "ornot",
	{OpIntL, FnXOR}:    "xor",
	{OpIntL, FnEQV}:    "eqv",
	{OpIntS, FnSRL}:    "srl",
	{OpIntS, FnSLL}:    "sll",
	{OpIntS, FnSRA}:    "sra",
	{OpIntM, FnMUL}:    "mul",
	{OpIntM, FnDIV}:    "div",
	{OpIntM, FnMOD}:    "mod",
	{OpIntM, FnMULH}:   "mulh",
}

var jumpMnemonics = [4]string{"jmp", "jsr", "ret", "jsr_co"}

var sysMnemonics = map[uint32]string{
	SysHALT:   "sys halt",
	SysGETC:   "sys getc",
	SysPUTC:   "sys putc",
	SysSETJMP: "sys setjmp",
	SysLNGJMP: "sys longjmp",
	SysIMB:    "sys imb",
}

// MnemonicTables exposes the assembler-facing name tables so that the
// assembler and disassembler cannot drift apart.
func MnemonicTables() (mem, branch map[uint32]string, operate map[[2]uint32]string) {
	return memMnemonics, branchMnemonics, operateMnemonics
}

// String renders the instruction in the assembler's input syntax. Branch
// displacements are shown as relative word counts (".+n"/".-n") since the
// instruction does not know its own address; see Disasm for absolute form.
func (in Inst) String() string { return in.render(^uint32(0)) }

// Disasm renders the instruction as it would appear at byte address pc,
// resolving branch displacements to absolute target addresses.
func Disasm(in Inst, pc uint32) string { return in.render(pc) }

func (in Inst) render(pc uint32) string {
	switch in.Format {
	case FormatPal:
		if s, ok := sysMnemonics[in.Func]; ok {
			return s
		}
		return fmt.Sprintf("sys %d", in.Func)
	case FormatMem:
		return fmt.Sprintf("%s r%d, %d(r%d)", memMnemonics[in.Op], in.RA, in.Disp, in.RB)
	case FormatBranch:
		if pc != ^uint32(0) {
			target := pc + WordSize + uint32(in.Disp)*WordSize
			return fmt.Sprintf("%s r%d, %#x", branchMnemonics[in.Op], in.RA, target)
		}
		return fmt.Sprintf("%s r%d, .%+d", branchMnemonics[in.Op], in.RA, in.Disp)
	case FormatOpReg:
		name := operateMnemonics[[2]uint32{in.Op, in.Func}]
		if name == "" {
			name = fmt.Sprintf("op%#x.%#x", in.Op, in.Func)
		}
		if IsNop(in) && in.Op == OpIntL && in.Func == FnBIS && in.RA == RegZero && in.RB == RegZero {
			return "nop"
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", name, in.RA, in.RB, in.RC)
	case FormatOpLit:
		name := operateMnemonics[[2]uint32{in.Op, in.Func}]
		if name == "" {
			name = fmt.Sprintf("op%#x.%#x", in.Op, in.Func)
		}
		return fmt.Sprintf("%s r%d, %d, r%d", name, in.RA, in.Lit, in.RC)
	case FormatJump:
		name := jumpMnemonics[in.JFunc]
		if in.Op == OpJSRX {
			name = "jsrx" // virtual: only inside compressed streams
		}
		return fmt.Sprintf("%s r%d, (r%d)", name, in.RA, in.RB)
	default:
		return fmt.Sprintf(".word %#x", Encode(in))
	}
}
