package isa

import "math/rand"

// RandInsts builds a reproducible pseudo-random, well-formed instruction
// sequence. It exists for property-based tests across the toolchain
// packages (encode/decode, split-stream compression, disassembly), which
// need a shared source of arbitrary-but-valid instructions.
func RandInsts(seed int64, n int) []Inst {
	r := rand.New(rand.NewSource(seed))
	out := make([]Inst, n)
	for i := range out {
		out[i] = randInst(r)
	}
	return out
}

func randInst(r *rand.Rand) Inst {
	ops := []uint32{
		OpPal, OpLDA, OpLDAH, OpLDB, OpSTB, OpLDW, OpSTW,
		OpIntA, OpIntL, OpIntS, OpIntM, OpJump,
		OpBR, OpBSR, OpBEQ, OpBNE, OpBLT, OpBLE, OpBGT, OpBGE,
	}
	op := ops[r.Intn(len(ops))]
	reg := func() uint32 { return uint32(r.Intn(NumRegs)) }
	switch FormatOf(op) {
	case FormatPal:
		return Sys(uint32(r.Intn(1 << 26)))
	case FormatMem:
		return Mem(op, reg(), reg(), int32(r.Intn(1<<16))-1<<15)
	case FormatBranch:
		return Br(op, reg(), int32(r.Intn(1<<21))-1<<20)
	case FormatOpReg:
		fn := uint32(r.Intn(1 << 7))
		if r.Intn(2) == 0 {
			return OpL(op, reg(), uint32(r.Intn(256)), fn, reg())
		}
		return OpR(op, reg(), reg(), fn, reg())
	case FormatJump:
		return Jump(uint32(r.Intn(4)), reg(), reg(), uint32(r.Intn(1<<14)))
	}
	panic("unreachable")
}
