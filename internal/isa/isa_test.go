package isa

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTripFixed(t *testing.T) {
	cases := []Inst{
		Mem(OpLDW, RegV0, RegSP, 16),
		Mem(OpSTW, RegRA, RegSP, -4),
		Mem(OpLDA, RegSP, RegSP, -64),
		Mem(OpLDAH, RegGP, RegZero, 0x12),
		Mem(OpLDB, RegT0, RegA0, 255),
		Mem(OpSTB, RegT0, RegA1, -128),
		Br(OpBR, RegZero, -1),
		Br(OpBSR, RegRA, 1024),
		Br(OpBEQ, RegV0, -(1 << 20)),
		Br(OpBGE, RegS0, 1<<20-1),
		OpR(OpIntA, RegA0, RegA1, FnADD, RegV0),
		OpR(OpIntA, RegA0, RegA1, FnCMPLE, RegT0),
		OpL(OpIntA, RegA0, 255, FnSUB, RegV0),
		OpL(OpIntL, RegA0, 0, FnXOR, RegT0),
		OpR(OpIntS, RegA0, RegA1, FnSLL, RegT0),
		OpR(OpIntM, RegA0, RegA1, FnMULH, RegT0),
		Jump(JmpJMP, RegZero, RegPV, 0),
		Jump(JmpJSR, RegRA, RegPV, 0x3FFF),
		Jump(JmpRET, RegZero, RegRA, 1),
		Sys(SysHALT),
		Sys(SysGETC),
		Nop(),
	}
	for _, in := range cases {
		w := Encode(in)
		got := Decode(w)
		if got != in {
			t.Errorf("round trip failed for %v:\n encoded %#08x\n decoded %v", in, w, got)
		}
	}
}

func TestDecodeSentinel(t *testing.T) {
	in := Decode(Sentinel)
	if in.Format != FormatIllegal {
		t.Fatalf("sentinel decoded to format %v, want FormatIllegal", in.Format)
	}
	if in.Op != OpIllegal {
		t.Fatalf("sentinel opcode = %#x, want %#x", in.Op, OpIllegal)
	}
}

func TestEncodePanicsOnOutOfRange(t *testing.T) {
	cases := []Inst{
		Mem(OpLDW, 32, RegSP, 0),          // register out of range
		Mem(OpLDW, RegV0, RegSP, 1<<15),   // displacement overflow
		Br(OpBR, RegZero, 1<<20),          // branch displacement overflow
		OpL(OpIntA, RegA0, 256, FnADD, 0), // literal overflow
		Jump(4, RegRA, RegPV, 0),          // jfunc out of range
	}
	for i, in := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: Encode(%v) did not panic", i, in)
				}
			}()
			Encode(in)
		}()
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		for _, in := range RandInsts(seed, 64) {
			if Decode(Encode(in)) != in {
				t.Logf("failed on %v", in)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldsRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		for _, in := range RandInsts(seed, 64) {
			fv := Fields(in)
			back := FromFields(fv)
			if back != in {
				t.Logf("fields round trip failed: %v -> %v -> %v", in, fv, back)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFieldsOpcodeFirstAndStreamsInRange(t *testing.T) {
	for _, in := range RandInsts(7, 500) {
		fv := Fields(in)
		if fv[0].Kind != StreamOpcode {
			t.Fatalf("first field of %v is %v, want opcode", in, fv[0].Kind)
		}
		for _, f := range fv {
			if f.Kind >= NumStreams {
				t.Fatalf("field kind %v out of range for %v", f.Kind, in)
			}
		}
	}
}

func TestFifteenStreams(t *testing.T) {
	if NumStreams != 15 {
		t.Fatalf("EM32 defines %d streams; the paper's platform uses 15", NumStreams)
	}
}

func TestOperandFieldsMatchFields(t *testing.T) {
	for _, in := range RandInsts(11, 500) {
		if in.Format == FormatIllegal {
			continue
		}
		lit := in.Format == FormatOpLit
		refs := OperandFields(in.Op, lit)
		fv := Fields(in)[1:]
		if len(refs) != len(fv) {
			t.Fatalf("OperandFields(%#x, %v) has %d entries, Fields has %d", in.Op, lit, len(refs), len(fv))
		}
		for i := range refs {
			if refs[i].Kind != fv[i].Kind {
				t.Fatalf("field %d of %v: OperandFields says %v, Fields says %v", i, in, refs[i].Kind, fv[i].Kind)
			}
			if fv[i].Value >= 1<<refs[i].Bits {
				t.Fatalf("field %d of %v: value %d exceeds declared width %d bits", i, in, fv[i].Value, refs[i].Bits)
			}
		}
	}
}

func TestIsNop(t *testing.T) {
	if !IsNop(Nop()) {
		t.Error("canonical nop not recognized")
	}
	if IsNop(OpR(OpIntA, RegA0, RegA1, FnADD, RegV0)) {
		t.Error("add with live destination misclassified as nop")
	}
	if !IsNop(OpR(OpIntA, RegA0, RegA1, FnADD, RegZero)) {
		t.Error("operate writing r31 should be a nop")
	}
	if IsNop(Mem(OpSTW, RegZero, RegSP, 0)) {
		t.Error("store misclassified as nop")
	}
	if !IsNop(Mem(OpLDW, RegZero, RegSP, 0)) {
		t.Error("load into r31 should be a nop")
	}
	if IsNop(Br(OpBSR, RegRA, 0)) {
		t.Error("bsr with zero displacement still links; not a nop")
	}
	if !IsNop(Br(OpBEQ, RegV0, 0)) {
		t.Error("conditional branch to fall-through should be a nop")
	}
}

func TestDisasmStable(t *testing.T) {
	cases := map[string]Inst{
		"ldw r0, 16(r30)":  Mem(OpLDW, 0, 30, 16),
		"stb r1, -3(r17)":  Mem(OpSTB, 1, 17, -3),
		"br r31, .+5":      Br(OpBR, 31, 5),
		"add r16, r17, r0": OpR(OpIntA, 16, 17, FnADD, 0),
		"sub r16, 8, r0":   OpL(OpIntA, 16, 8, FnSUB, 0),
		"ret r31, (r26)":   Jump(JmpRET, 31, 26, 0),
		"jsr r26, (r27)":   Jump(JmpJSR, 26, 27, 0),
		"sys halt":         Sys(SysHALT),
		"nop":              Nop(),
		"bis r16, r17, r0": OpR(OpIntL, 16, 17, FnBIS, 0),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", in, got, want)
		}
	}
	// Absolute form.
	if got := Disasm(Br(OpBSR, 26, 3), 0x1000); got != "bsr r26, 0x1010" {
		t.Errorf("Disasm absolute = %q", got)
	}
}
