package isa

import "fmt"

// StreamKind identifies one of the fifteen operand-field streams that the
// split-stream compressor separates instructions into (paper, §3: "For our
// test platform, we split the instructions into 15 streams"). The opcode
// stream fully determines which of the remaining streams supply the fields
// of each instruction, which is what lets the compressor merge all codeword
// sequences into a single bit sequence.
type StreamKind uint8

// The fifteen streams. Register fields are split by format role rather than
// pooled, because the value distributions differ sharply between roles
// (e.g. the branch RA field is dominated by the return-address register
// while memory RB is dominated by the stack pointer); per-role streams give
// each Huffman code a tighter distribution.
const (
	StreamOpcode  StreamKind = iota // 6-bit primary opcode (every instruction)
	StreamMemRA                     // Mem format: register a
	StreamMemRB                     // Mem format: base register
	StreamMemDisp                   // Mem format: 16-bit displacement
	StreamBrRA                      // Branch format: register a
	StreamBrDisp                    // Branch format: 21-bit displacement
	StreamOpRA                      // Operate formats: register a
	StreamOpRB                      // OpReg format: register b
	StreamOpLit                     // OpLit format: 8-bit literal
	StreamOpFunc                    // Operate formats: literal flag ++ 7-bit func
	StreamOpRC                      // Operate formats: destination register
	StreamJmpRA                     // Jump format: link register
	StreamJmpRB                     // Jump format: target register
	StreamJmpHint                   // Jump format: jfunc ++ 14-bit hint
	StreamPalFunc                   // Pal format: 26-bit function code
	NumStreams
)

var streamNames = [...]string{
	StreamOpcode:  "opcode",
	StreamMemRA:   "mem.ra",
	StreamMemRB:   "mem.rb",
	StreamMemDisp: "mem.disp",
	StreamBrRA:    "br.ra",
	StreamBrDisp:  "br.disp",
	StreamOpRA:    "op.ra",
	StreamOpRB:    "op.rb",
	StreamOpLit:   "op.lit",
	StreamOpFunc:  "op.func",
	StreamOpRC:    "op.rc",
	StreamJmpRA:   "jmp.ra",
	StreamJmpRB:   "jmp.rb",
	StreamJmpHint: "jmp.hint",
	StreamPalFunc: "pal.func",
}

func (k StreamKind) String() string {
	if int(k) < len(streamNames) {
		return streamNames[k]
	}
	return fmt.Sprintf("stream(%d)", uint8(k))
}

// FieldRef names one operand field of an instruction: which stream it
// belongs to and how wide it is in the raw encoding.
type FieldRef struct {
	Kind StreamKind
	Bits uint8
}

// fieldsByFormat lists, per format, the operand streams that follow the
// opcode, in decode order. The opcode itself always comes from StreamOpcode.
var fieldsByFormat = map[Format][]FieldRef{
	FormatPal: {{StreamPalFunc, 26}},
	FormatMem: {{StreamMemRA, 5}, {StreamMemRB, 5}, {StreamMemDisp, 16}},
	FormatBranch: {
		{StreamBrRA, 5}, {StreamBrDisp, 21},
	},
	// op.func precedes op.rb/op.lit: its high bit is the literal flag, which
	// a sequential decoder needs before it can pick the next stream.
	FormatOpReg: {
		{StreamOpRA, 5}, {StreamOpFunc, 8}, {StreamOpRB, 5}, {StreamOpRC, 5},
	},
	FormatOpLit: {
		{StreamOpRA, 5}, {StreamOpFunc, 8}, {StreamOpLit, 8}, {StreamOpRC, 5},
	},
	FormatJump: {
		{StreamJmpRA, 5}, {StreamJmpRB, 5}, {StreamJmpHint, 16},
	},
	FormatIllegal: nil,
}

// OperandFields reports the operand streams, in decode order, for an
// instruction with the given primary opcode and (for the operate group)
// literal flag. This is the lookup the decompressor performs after decoding
// each opcode: "the decoded opcode ... specif[ies] the appropriate Huffman
// codes to use for the remaining fields" (paper, §3).
func OperandFields(op uint32, litFlag bool) []FieldRef {
	f := FormatOf(op)
	if f == FormatOpReg && litFlag {
		f = FormatOpLit
	}
	return fieldsByFormat[f]
}

// Fields decomposes a decoded instruction into (stream, value) pairs, with
// the opcode first. The values round-trip: FromFields(Fields(in)) == in.
//
// Displacements are stored as their raw (unsigned, truncated) field values,
// and the operate literal flag is folded into the op.func stream value as
// its high bit, so that the fifteen streams carry the complete encoding.
func Fields(in Inst) []FieldValue {
	return AppendFields(make([]FieldValue, 0, 5), in)
}

// AppendFields is Fields into caller-owned storage: it appends the (stream,
// value) pairs of in to dst and returns the extended slice. Hot encode loops
// pass a reused scratch slice (dst[:0]) so field splitting allocates
// nothing; the pairs produced are identical to Fields'.
func AppendFields(dst []FieldValue, in Inst) []FieldValue {
	out := dst
	op := in.Op
	if in.Format == FormatIllegal {
		op = OpIllegal
	}
	out = append(out, FieldValue{StreamOpcode, op})
	switch in.Format {
	case FormatPal:
		out = append(out, FieldValue{StreamPalFunc, in.Func})
	case FormatMem:
		out = append(out,
			FieldValue{StreamMemRA, in.RA},
			FieldValue{StreamMemRB, in.RB},
			FieldValue{StreamMemDisp, uint32(in.Disp) & 0xFFFF})
	case FormatBranch:
		out = append(out,
			FieldValue{StreamBrRA, in.RA},
			FieldValue{StreamBrDisp, uint32(in.Disp) & 0x1FFFFF})
	case FormatOpReg:
		out = append(out,
			FieldValue{StreamOpRA, in.RA},
			FieldValue{StreamOpFunc, in.Func},
			FieldValue{StreamOpRB, in.RB},
			FieldValue{StreamOpRC, in.RC})
	case FormatOpLit:
		out = append(out,
			FieldValue{StreamOpRA, in.RA},
			FieldValue{StreamOpFunc, 1<<7 | in.Func},
			FieldValue{StreamOpLit, in.Lit},
			FieldValue{StreamOpRC, in.RC})
	case FormatJump:
		out = append(out,
			FieldValue{StreamJmpRA, in.RA},
			FieldValue{StreamJmpRB, in.RB},
			FieldValue{StreamJmpHint, in.JFunc<<14 | in.Hint})
	}
	return out
}

// FieldValue is one (stream, value) pair produced by Fields.
type FieldValue struct {
	Kind  StreamKind
	Value uint32
}

// FromFields reassembles an instruction from the pairs produced by Fields.
// It panics on malformed input, which indicates a corrupted compressed
// stream rather than recoverable user error.
func FromFields(fv []FieldValue) Inst {
	if len(fv) == 0 || fv[0].Kind != StreamOpcode {
		panic("isa.FromFields: missing opcode field")
	}
	op := fv[0].Value
	in := Inst{Op: op, Format: FormatOf(op)}
	get := func(i int, k StreamKind) uint32 {
		if i >= len(fv) || fv[i].Kind != k {
			panic(fmt.Sprintf("isa.FromFields: expected %v at position %d", k, i))
		}
		return fv[i].Value
	}
	switch in.Format {
	case FormatPal:
		in.Func = get(1, StreamPalFunc)
	case FormatMem:
		in.RA = get(1, StreamMemRA)
		in.RB = get(2, StreamMemRB)
		in.Disp = int32(int16(get(3, StreamMemDisp)))
	case FormatBranch:
		in.RA = get(1, StreamBrRA)
		in.Disp = int32(get(2, StreamBrDisp)&0x1FFFFF) << 11 >> 11
	case FormatOpReg:
		in.RA = get(1, StreamOpRA)
		fn := get(2, StreamOpFunc)
		if fn>>7&1 == 1 {
			in.Format = FormatOpLit
			in.Lit = get(3, StreamOpLit)
			in.Func = fn & 0x7F
		} else {
			in.RB = get(3, StreamOpRB)
			in.Func = fn
		}
		in.RC = get(4, StreamOpRC)
	case FormatJump:
		in.RA = get(1, StreamJmpRA)
		in.RB = get(2, StreamJmpRB)
		h := get(3, StreamJmpHint)
		in.JFunc = h >> 14 & 3
		in.Hint = h & 0x3FFF
	case FormatIllegal:
		// Sentinel: opcode only.
	}
	return in
}
