package core

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// TestInterpFastPathEquivalence runs interpret-mode squashes with the region
// memo enabled and disabled and checks every simulated observable matches —
// the same invariant TestSquashFastPathEquivalence enforces for the buffer
// runtime.
func TestInterpFastPathEquivalence(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	for _, theta := range []float64{0, 1.0} {
		for _, k := range []int{96, 512} {
			out, err := Squash(obj, counts, interpConf(theta, k))
			if err != nil {
				t.Fatalf("θ=%v K=%d: Squash: %v", theta, k, err)
			}
			fastM, fastRT := runSquashedMode(t, out, timingInput, true)
			slowM, slowRT := runSquashedMode(t, out, timingInput, false)
			assertModesIdentical(t, fmt.Sprintf("interp θ=%v K=%d", theta, k), fastM, slowM, fastRT, slowRT)
			if theta == 1.0 && fastRT.Stats.InterpEntries < 2 {
				t.Fatalf("θ=1 K=%d: only %d interp entries; memo replay untested", k, fastRT.Stats.InterpEntries)
			}
		}
	}
}

// TestInterpFastPathEquivalenceRandom repeats the interp memo check over
// randomized programs so region contents and entry patterns vary.
func TestInterpFastPathEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		input := []byte(fmt.Sprintf("interp fastpath equivalence %d", seed))
		prof := vm.New(im, input)
		prof.EnableProfile()
		if err := prof.Run(); err != nil {
			t.Fatalf("seed %d: profiling run: %v", seed, err)
		}
		out, err := Squash(obj, prof.Profile, interpConf(1, 96))
		if err != nil {
			t.Fatalf("seed %d: Squash: %v", seed, err)
		}
		fastM, fastRT := runSquashedMode(t, out, input, true)
		slowM, slowRT := runSquashedMode(t, out, input, false)
		assertModesIdentical(t, fmt.Sprintf("interp seed %d", seed), fastM, slowM, fastRT, slowRT)
	}
}

// TestInterpMemoMatchesFreshDecode checks that the memoized decoded region is
// exactly what a reference re-decode produces, and that a second entry reuses
// the memo without re-decoding.
func TestInterpMemoMatchesFreshDecode(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	out, err := Squash(obj, counts, interpConf(1, 96))
	if err != nil {
		t.Fatalf("Squash: %v", err)
	}
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	m := vm.New(out.Image, nil)
	rt.Install(m)

	slowRT, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	slowRT.SetFastPath(false)

	for region := range out.Meta.OffsetTable {
		entry := 1 // regions always start at buffer word offset 1
		if err := rt.startInterp(m, region, entry); err != nil {
			t.Fatalf("region %d: first entry: %v", region, err)
		}
		memo := rt.imemo[region]
		if memo == nil {
			t.Fatalf("region %d: first entry did not memoize", region)
		}
		if err := rt.startInterp(m, region, entry); err != nil {
			t.Fatalf("region %d: second entry: %v", region, err)
		}
		if rt.imemo[region] != memo {
			t.Fatalf("region %d: second entry replaced the memo", region)
		}
		ref, err := slowRT.decodeInterpRegion(region)
		if err != nil {
			t.Fatalf("region %d: reference decode: %v", region, err)
		}
		if len(ref.insts) != len(memo.insts) {
			t.Fatalf("region %d: memo has %d insts, reference %d", region, len(memo.insts), len(ref.insts))
		}
		for i := range ref.insts {
			if isa.Encode(ref.insts[i]) != isa.Encode(memo.insts[i]) ||
				ref.offs[i] != memo.offs[i] {
				t.Fatalf("region %d inst %d: memo %v@%d, reference %v@%d",
					region, i, memo.insts[i], memo.offs[i], ref.insts[i], ref.offs[i])
			}
		}
	}
}

// TestInterpMemoUnaffectedByBufferStores: interpret mode never reads the
// (reserved, unbacked) virtual buffer memory, so stores landing in that
// address range must not perturb execution in either mode. This is the
// interp analogue of the buffer runtime's self-modifying-code coverage: the
// decoded instructions come from the immutable blob, not from memory the
// program can write.
func TestInterpMemoUnaffectedByBufferStores(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	out, err := Squash(obj, counts, interpConf(1, 96))
	if err != nil {
		t.Fatalf("Squash: %v", err)
	}
	run := func(fast bool) (*vm.Machine, *Runtime) {
		rt, err := NewRuntime(out.Meta)
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		rt.SetFastPath(fast)
		m := vm.New(out.Image, timingInput)
		rt.Install(m)
		// Prime one region (memoizing it in fast mode), then scribble over
		// the whole virtual buffer range before the real run.
		if err := rt.startInterp(m, 0, 1); err != nil {
			t.Fatalf("prime entry: %v", err)
		}
		for w := 0; w < out.Meta.K/isa.WordSize; w++ {
			if err := m.WriteWord(out.Meta.RtBufAddr+uint32(w*isa.WordSize), 0xDEADBEEC); err != nil {
				t.Fatalf("scribble word %d: %v", w, err)
			}
		}
		// Reset the interpreter and PC as if the prime never happened.
		rt.interp = interpState{}
		rt.icur = nil
		rt.Stats = RuntimeStats{}
		m.PC = out.Image.Entry
		m.Cycles = 0
		if err := m.Run(); err != nil {
			t.Fatalf("run (fast=%v): %v", fast, err)
		}
		return m, rt
	}
	fastM, fastRT := run(true)
	slowM, slowRT := run(false)
	assertModesIdentical(t, "buffer stores", fastM, slowM, fastRT, slowRT)
}

// interpTrapProgram reaches a faulting load only when the input starts with
// 'x'; profiled without one, the faulting function is cold and compressed.
const interpTrapProgram = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        sys  getc
        sub  v0, 120, t0
        beq  t0, boom
        li   a0, 107
        sys  putc
        clr  a0
        sys  halt
boom:   bsr  ra, coldtrap
        clr  a0
        sys  halt

        .func coldtrap
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        li   t0, 1
        add  t0, 2, t0
        sll  t0, 3, t1
        sub  t1, 5, t2
        and  t2, 63, t3
        or   t3, 9, t4
        xor  t4, 3, t5
        add  t5, t0, t6
        sub  t6, t1, t7
        add  t7, 11, t8
        and  t8, 127, t9
        or   t9, t0, t10
        ldw  t0, -16(zero)
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
`

// TestInterpTrapReplay: a trap raised by an interpreted instruction must
// reproduce identically when the region replays from the memo (second run)
// and when the memo is disabled entirely.
func TestInterpTrapReplay(t *testing.T) {
	obj, _, counts := prepare(t, interpTrapProgram, []byte("ok"))
	out, err := Squash(obj, counts, interpConf(0, 512))
	if err != nil {
		t.Fatalf("Squash: %v", err)
	}
	type result struct {
		err    string
		insts  uint64
		cycles uint64
		stats  RuntimeStats
	}
	runOnce := func(rt *Runtime) result {
		m := vm.New(out.Image, []byte("x"))
		rt.Install(m)
		err := m.Run()
		if err == nil {
			t.Fatal("expected a trap, run succeeded")
		}
		return result{err.Error(), m.Instructions, m.Cycles, rt.Stats}
	}
	freshRT := func(fast bool) *Runtime {
		rt, err := NewRuntime(out.Meta)
		if err != nil {
			t.Fatalf("NewRuntime: %v", err)
		}
		rt.SetFastPath(fast)
		return rt
	}

	coldDecoder := freshRT(true)
	first := runOnce(coldDecoder) // fresh decode, memo filled
	memoized := false
	for _, ir := range coldDecoder.imemo {
		if ir != nil {
			memoized = true
		}
	}
	if !memoized {
		t.Fatal("trapping run memoized no region")
	}

	// Replay the trap through a warm memo on otherwise fresh runtime state.
	warm := freshRT(true)
	warm.imemo = coldDecoder.imemo
	second := runOnce(warm)
	if first != second {
		t.Fatalf("memo replay of trap diverged:\n  fresh  %+v\n  replay %+v", first, second)
	}

	ref := runOnce(freshRT(false))
	if first != ref {
		t.Fatalf("fast trap diverged from reference:\n  fast %+v\n  ref  %+v", first, ref)
	}
}
