package core

import (
	"fmt"
	"testing"
)

// lzConf builds a buffer-mode config using the LZ region coder.
func lzConf(theta float64, k int) Config {
	conf := DefaultConfig()
	conf.Theta = theta
	conf.Regions.K = k
	conf.Coder = CoderLZ
	return conf
}

// TestSquashLZCoderEquivalence squashes with the LZ dictionary coder and
// checks (a) the squashed program still behaves like the uncompressed
// baseline and (b) the fast decode path (table-driven Huffman) is
// byte-identical to the reference bit-at-a-time path — the same invariant
// the stream coder's equivalence tests enforce.
func TestSquashLZCoderEquivalence(t *testing.T) {
	obj, im, counts := prepare(t, testProgram, profInput)
	base := runBaseline(t, im, timingInput)
	for _, theta := range []float64{0, 1.0} {
		for _, k := range []int{96, 512} {
			out, err := Squash(obj, counts, lzConf(theta, k))
			if err != nil {
				t.Fatalf("θ=%v K=%d: Squash: %v", theta, k, err)
			}
			if out.Meta.Coder != CoderLZ {
				t.Fatalf("θ=%v K=%d: metadata records coder %d", theta, k, out.Meta.Coder)
			}
			fastM, fastRT := runSquashedMode(t, out, timingInput, true)
			slowM, slowRT := runSquashedMode(t, out, timingInput, false)
			assertModesIdentical(t, fmt.Sprintf("lz θ=%v K=%d", theta, k), fastM, slowM, fastRT, slowRT)
			if string(fastM.Output) != string(base.Output) || fastM.Status != base.Status {
				t.Fatalf("θ=%v K=%d: lz-squashed output %q status %d, baseline %q status %d",
					theta, k, fastM.Output, fastM.Status, base.Output, base.Status)
			}
			if theta == 1.0 && fastRT.Stats.Decompressions == 0 {
				t.Fatalf("θ=1 K=%d: no decompressions; lz decode untested", k)
			}
		}
	}
}

// TestSquashLZInterpEquivalence combines both §8 alternatives — interpret in
// place and the LZ coder — and checks the fast/slow invariant still holds:
// the interp region memo replays instructions the LZ reference decoder
// produces.
func TestSquashLZInterpEquivalence(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	for _, k := range []int{96, 512} {
		conf := interpConf(1.0, k)
		conf.Coder = CoderLZ
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatalf("K=%d: Squash: %v", k, err)
		}
		fastM, fastRT := runSquashedMode(t, out, timingInput, true)
		slowM, slowRT := runSquashedMode(t, out, timingInput, false)
		assertModesIdentical(t, fmt.Sprintf("lz interp K=%d", k), fastM, slowM, fastRT, slowRT)
		if fastRT.Stats.InterpEntries == 0 {
			t.Fatalf("K=%d: no interp entries; lz interp decode untested", k)
		}
	}
}

// TestMetaCoderRoundTrip checks the coder survives serialization and that
// coder-0 images keep the seed's byte layout (the coder shares the old
// interpret flag's word: bit 0 interpret, bits 8+ coder).
func TestMetaCoderRoundTrip(t *testing.T) {
	for _, interp := range []bool{false, true} {
		for _, coder := range []int{CoderStream, CoderLZ} {
			m := &Meta{DecompAddr: 0x1000, RtBufAddr: 0x2000, K: 512,
				StubCapacity: 4, Interpret: interp, Coder: coder}
			blob, err := m.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			back, err := UnmarshalMeta(blob)
			if err != nil {
				t.Fatal(err)
			}
			if back.Interpret != interp || back.Coder != coder {
				t.Fatalf("round trip interpret=%v coder=%d: got %+v", interp, coder, back)
			}
			// The flags word is bytes 24..27 (after magic and five u32s).
			want := uint32(coder) << 8
			if interp {
				want |= 1
			}
			got := uint32(blob[24]) | uint32(blob[25])<<8 | uint32(blob[26])<<16 | uint32(blob[27])<<24
			if got != want {
				t.Fatalf("flags word %#x, want %#x", got, want)
			}
		}
	}
}

// TestSquashUnknownCoderRejected: both the encoder and the runtime must
// refuse a coder id they do not implement.
func TestSquashUnknownCoderRejected(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Coder = 99
	if _, err := Squash(obj, counts, conf); err == nil {
		t.Fatal("Squash accepted coder 99")
	}
	m := &Meta{Coder: 99}
	if _, err := m.Compressor(); err == nil {
		t.Fatal("Compressor accepted coder 99")
	}
}
