package core

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// squashDigest squashes and hashes everything a worker-count bug could
// perturb: the linked image bytes and the serialized runtime metadata
// (offset table, compressed blob, code tables).
func squashDigest(t *testing.T, obj *objfile.Object, prof []uint64, conf Config) [32]byte {
	t.Helper()
	out, err := Squash(obj, prof, conf)
	if err != nil {
		t.Fatalf("squash (workers=%d): %v", conf.Workers, err)
	}
	var buf bytes.Buffer
	if _, err := out.Image.WriteTo(&buf); err != nil {
		t.Fatalf("image serialize: %v", err)
	}
	meta, err := out.Meta.MarshalBinary()
	if err != nil {
		t.Fatalf("meta serialize: %v", err)
	}
	h := sha256.New()
	h.Write(buf.Bytes())
	h.Write(meta)
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestSquashDeterministicAcrossWorkers is the tentpole guarantee: the
// parallel pipeline must produce byte-identical squashed images at every
// worker count, and repeated runs at the same count must agree (no map
// iteration or scheduling order leaking into the output).
func TestSquashDeterministicAcrossWorkers(t *testing.T) {
	confs := []Config{DefaultConfig(), DefaultConfig(), DefaultConfig()}
	confs[1].Theta = 0.01
	confs[1].MTF = true
	confs[2].Theta = 1
	confs[2].Regions.K = 128
	confs[2].CompileTimeRestoreStubs = true

	nSeeds := int64(6)
	if testing.Short() {
		nSeeds = 2
	}
	for seed := int64(0); seed < nSeeds; seed++ {
		src := testprog.Random(seed * 7)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prof := vm.New(im, []byte("determinism determinism"))
		prof.EnableProfile()
		if err := prof.Run(); err != nil {
			t.Fatalf("seed %d: profile run: %v", seed, err)
		}
		for ci, conf := range confs {
			conf.Workers = 1
			want := squashDigest(t, obj, prof.Profile, conf)
			for _, workers := range []int{1, 2, 8} {
				for run := 0; run < 2; run++ {
					conf.Workers = workers
					if got := squashDigest(t, obj, prof.Profile, conf); got != want {
						t.Fatalf("seed %d conf %d: workers=%d run %d diverged from serial",
							seed, ci, workers, run)
					}
				}
			}
		}
	}
}
