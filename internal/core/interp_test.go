package core

import (
	"testing"

	"repro/internal/vm"
)

// interpConf builds an interpret-mode config.
func interpConf(theta float64, k int) Config {
	conf := DefaultConfig()
	conf.Theta = theta
	conf.Regions.K = k
	conf.Interpret = true
	return conf
}

func TestInterpretModeBehaviouralEquivalence(t *testing.T) {
	obj, im, counts := prepare(t, testProgram, profInput)
	base := runBaseline(t, im, timingInput)
	for _, theta := range []float64{0, 0.01, 1.0} {
		for _, k := range []int{96, 512} {
			out, err := Squash(obj, counts, interpConf(theta, k))
			if err != nil {
				t.Fatalf("θ=%v K=%d: %v", theta, k, err)
			}
			sq, rt := runSquashed(t, out, timingInput)
			assertEquivalent(t, base, sq)
			if theta == 1.0 && rt.Stats.InterpInsts == 0 {
				t.Errorf("θ=1 K=%d: nothing was interpreted", k)
			}
			if rt.Stats.LiveStubs != 0 {
				t.Errorf("θ=%v K=%d: %d stubs leaked", theta, k, rt.Stats.LiveStubs)
			}
		}
	}
}

func TestInterpretModeFootprint(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	dec, err := Squash(obj, counts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	conf := DefaultConfig()
	conf.Interpret = true
	itp, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	if itp.Foot.RuntimeBuffer != 0 {
		t.Errorf("interpret mode charges a runtime buffer: %d", itp.Foot.RuntimeBuffer)
	}
	if itp.Foot.InterpIndex == 0 {
		t.Error("interpret mode has no index cost")
	}
	if dec.Foot.InterpIndex != 0 || dec.Foot.RuntimeBuffer == 0 {
		t.Errorf("decompress-mode footprint wrong: %+v", dec.Foot)
	}
	t.Logf("decompress: %d bytes (buffer %d); interpret: %d bytes (index %d)",
		dec.Foot.Total(), dec.Foot.RuntimeBuffer, itp.Foot.Total(), itp.Foot.InterpIndex)
}

func TestInterpretModeTradeOff(t *testing.T) {
	// The §8 trade-off, both directions. When compressed code executes many
	// instructions per region entry (a hot loop at θ=1 on a long input),
	// decompress-once-run-native wins by a wide margin. When region visits
	// are brief and entries frequent (cold triggers), interpretation can
	// win, because it never pays whole-region decompression.
	obj, _, counts := prepare(t, testProgram, profInput)
	dec1, err := Squash(obj, counts, func() Config {
		c := DefaultConfig()
		c.Theta = 1
		return c
	}())
	if err != nil {
		t.Fatal(err)
	}
	itp1, err := Squash(obj, counts, interpConf(1, 512))
	if err != nil {
		t.Fatal(err)
	}
	// Long trigger-free input: the compressed hot loop dominates.
	long := make([]byte, 4000)
	for i := range long {
		long[i] = 'a' + byte(i%26)
	}
	mDec, _ := runSquashed(t, dec1, long)
	mItp, _ := runSquashed(t, itp1, long)
	if mItp.Cycles <= mDec.Cycles {
		t.Errorf("hot-loop case: interpretation (%d cycles) should lose to decompression (%d)",
			mItp.Cycles, mDec.Cycles)
	}
	t.Logf("hot loop θ=1: decompress %d cycles, interpret %d (×%.2f)",
		mDec.Cycles, mItp.Cycles, float64(mItp.Cycles)/float64(mDec.Cycles))

	// Brief-visit case: cold triggers on the regular timing input.
	mDec2, rtDec := runSquashed(t, dec1, timingInput)
	mItp2, rtItp := runSquashed(t, itp1, timingInput)
	t.Logf("brief visits: decompress %d cycles (%d decompressions), interpret %d (%d insts interpreted)",
		mDec2.Cycles, rtDec.Stats.Decompressions, mItp2.Cycles, rtItp.Stats.InterpInsts)
}

func TestInterpretModeMetaRoundTrip(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	out, err := Squash(obj, counts, interpConf(1, 512))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := out.Meta.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Interpret {
		t.Fatal("Interpret flag lost in serialization")
	}
	// A runtime built from the round-tripped meta still works.
	rt, err := NewRuntime(back)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, []byte("a0b"))
	rt.Install(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestInterpretModeRecursionSharesStub(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	out, err := Squash(obj, counts, interpConf(1, 96))
	if err != nil {
		t.Fatal(err)
	}
	_, rt := runSquashed(t, out, []byte("1")) // '1' drives coldrec(4)
	if rt.Stats.CreateStubHits == 0 {
		t.Error("recursive call sites did not share a restore stub")
	}
	if rt.Stats.LiveStubs != 0 {
		t.Error("stub leak in interpret mode")
	}
}
