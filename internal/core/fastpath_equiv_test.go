package core

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// runSquashedMode executes a squashed image with the fast paths either
// enabled (memoized region decompression, table-driven Huffman, predecoded
// dispatch) or fully disabled, returning the machine and runtime for
// comparison.
func runSquashedMode(t *testing.T, out *Output, input []byte, fast bool) (*vm.Machine, *Runtime) {
	t.Helper()
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	rt.SetFastPath(fast)
	m := vm.New(out.Image, input)
	m.DisableFastPath = !fast
	m.StackCheck = true
	rt.Install(m)
	if err := m.Run(); err != nil {
		t.Fatalf("squashed run (fast=%v): %v", fast, err)
	}
	return m, rt
}

// assertModesIdentical compares every simulated observable between a
// fast-path run and a reference run: output bytes, exit status, instruction
// and cycle counts, the SP trace, and the full RuntimeStats struct. This is
// the invariant the whole PR hangs on — the fast paths are pure
// implementation speedups with zero simulated-behaviour drift.
func assertModesIdentical(t *testing.T, label string, fastM, slowM *vm.Machine, fastRT, slowRT *Runtime) {
	t.Helper()
	if string(fastM.Output) != string(slowM.Output) {
		t.Fatalf("%s: output differs:\n  fast %q\n  slow %q", label, fastM.Output, slowM.Output)
	}
	if fastM.Status != slowM.Status {
		t.Fatalf("%s: status %d (fast) vs %d (slow)", label, fastM.Status, slowM.Status)
	}
	if fastM.Instructions != slowM.Instructions {
		t.Fatalf("%s: %d instructions (fast) vs %d (slow)", label, fastM.Instructions, slowM.Instructions)
	}
	if fastM.Cycles != slowM.Cycles {
		t.Fatalf("%s: %d cycles (fast) vs %d (slow)", label, fastM.Cycles, slowM.Cycles)
	}
	if len(fastM.SPTrace) != len(slowM.SPTrace) {
		t.Fatalf("%s: SP trace length %d (fast) vs %d (slow)", label, len(fastM.SPTrace), len(slowM.SPTrace))
	}
	for i := range fastM.SPTrace {
		if fastM.SPTrace[i] != slowM.SPTrace[i] {
			t.Fatalf("%s: SP differs at output byte %d", label, i)
		}
	}
	if fastRT.Stats != slowRT.Stats {
		t.Fatalf("%s: runtime stats diverge:\n  fast %+v\n  slow %+v", label, fastRT.Stats, slowRT.Stats)
	}
}

// TestSquashFastPathEquivalence runs the standard squash test program with
// several region sizes (forcing repeated decompressions of the same regions,
// the memoization hot case) and checks fast-on vs fast-off equality.
func TestSquashFastPathEquivalence(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	for _, k := range []int{64, 96, 256} {
		conf := DefaultConfig()
		conf.Regions.K = k
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatalf("K=%d: Squash: %v", k, err)
		}
		fastM, fastRT := runSquashedMode(t, out, timingInput, true)
		slowM, slowRT := runSquashedMode(t, out, timingInput, false)
		assertModesIdentical(t, fmt.Sprintf("K=%d", k), fastM, slowM, fastRT, slowRT)
		if fastRT.Stats.Decompressions < 2 {
			t.Fatalf("K=%d: only %d decompressions; memoization untested", k, fastRT.Stats.Decompressions)
		}
	}
}

// TestSquashFastPathEquivalenceRandom repeats the check over randomized
// programs so region layout, stream contents, and replay order vary.
func TestSquashFastPathEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		input := []byte(fmt.Sprintf("fastpath core equivalence %d", seed))
		prof := vm.New(im, input)
		prof.EnableProfile()
		if err := prof.Run(); err != nil {
			t.Fatalf("seed %d: profiling run: %v", seed, err)
		}
		conf := DefaultConfig()
		conf.Regions.K = 64
		out, err := Squash(obj, prof.Profile, conf)
		if err != nil {
			t.Fatalf("seed %d: Squash: %v", seed, err)
		}
		fastM, fastRT := runSquashedMode(t, out, input, true)
		slowM, slowRT := runSquashedMode(t, out, input, false)
		assertModesIdentical(t, fmt.Sprintf("seed %d", seed), fastM, slowM, fastRT, slowRT)
	}
}

// TestMemoizedReplayMatchesFreshDecode decompresses the same region twice in
// one runtime and checks the second (memoized) pass charges exactly the same
// simulated costs as the first (fresh) pass did.
func TestMemoizedReplayMatchesFreshDecode(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Regions.K = 96
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatalf("Squash: %v", err)
	}
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	m := vm.New(out.Image, nil)
	rt.Install(m)

	tag := uint32(0)<<16 | 1 // region 0, first entry offset
	if err := rt.decompressAndJump(m, tag); err != nil {
		t.Fatalf("fresh decompress: %v", err)
	}
	first := rt.Stats
	firstCycles := m.Cycles
	if err := rt.decompressAndJump(m, tag); err != nil {
		t.Fatalf("memoized decompress: %v", err)
	}
	if got, want := rt.Stats.BitsRead-first.BitsRead, first.BitsRead; got != want {
		t.Fatalf("memoized replay charged %d bits, fresh decode charged %d", got, want)
	}
	if got, want := m.Cycles-firstCycles, firstCycles; got != want {
		t.Fatalf("memoized replay charged %d cycles, fresh decode charged %d", got, want)
	}
}
