package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Runtime is the squash decompression runtime, installed as the simulator's
// hook over the reserved decompressor region. It mirrors §2.2–2.3 of the
// paper exactly:
//
//   - The decompressor has one entry point per possible return-address
//     register (the first NumEntryRegs words of the reserved region).
//   - CreateStub and Decompress share these entry points; the caller's
//     origin distinguishes them: a return address inside the runtime buffer
//     means CreateStub, inside the stub area means a restore-stub return,
//     anywhere else an entry stub whose tag word follows the call.
//   - Restore stubs are created at run time, one per compressed call site,
//     with a usage count; the stub is freed when its count drops to zero —
//     "a simple reference-count-based garbage collection scheme".
//
// All work is charged to the simulated cycle counter using the machine's
// cost model: bits consumed by the canonical Huffman decoder, instructions
// materialized, the instruction-cache flush, and stub management.
type Runtime struct {
	meta *Meta
	comp RegionCoder

	curRegion int // region currently in the buffer; -1 when none

	// memo caches each region's decoded emission the first time it is
	// decompressed, so replays skip the Huffman decode and field reassembly
	// entirely. The simulated cost is unchanged: the recorded bit count and
	// instruction count feed the same cycle charges and RuntimeStats as a
	// real decode, and the buffer is refilled through WriteWord either way.
	memo       []*regionImage
	noFastPath bool

	slots []stubSlot
	byTag map[uint32]int // live stub tag -> slot index

	// Interpret-in-place state (§8 alternative; see interp.go). imemo
	// caches each region's decoded instruction list the first time it is
	// entered (the interpreter's analogue of memo); icur is the decoded
	// form of the region currently being interpreted.
	imemo  []*interpRegion
	icur   *interpRegion
	interp interpState

	Stats RuntimeStats
	Telem RuntimeTelemetry

	// Trace, when set, receives one line per runtime event (diagnostics).
	Trace func(string)
}

// regionImage is one region's memoized decompression: the buffer words it
// emits (indices 1..len; word 0 is the per-tag dispatch branch, written
// fresh on every entry) and the compressed bits its decode consumed.
type regionImage struct {
	words []uint32
	bits  int
}

type stubSlot struct {
	live  bool
	tag   uint32
	count int
	reg   uint32 // return-address register the stub's bsr uses
}

// RuntimeStats counts runtime events for the evaluation harness. Every
// field is part of the simulated observable state: the fast-path
// equivalence tests compare the whole struct, so anything counted here
// must be identical with the fast paths on or off (host-side memo
// behavior goes in RuntimeTelemetry instead).
type RuntimeStats struct {
	Decompressions   uint64 `json:"decompressions"`     // regions decompressed into the buffer
	Evictions        uint64 `json:"evictions"`          // buffer refills that displaced a different region
	BitsRead         uint64 `json:"bits_read"`          // compressed bits consumed
	InstsEmitted     uint64 `json:"insts_emitted"`      // instructions materialized into the buffer
	CreateStubHits   uint64 `json:"create_stub_hits"`   // restore-stub reuses (count bump)
	CreateStubMisses uint64 `json:"create_stub_misses"` // restore stubs created
	RestoreReturns   uint64 `json:"restore_returns"`    // returns dispatched through restore stubs
	MaxLiveStubs     int    `json:"max_live_stubs"`     // high-water mark of simultaneously live stubs
	LiveStubs        int    `json:"live_stubs"`         // currently live
	InterpEntries    uint64 `json:"interp_entries"`     // interpret mode: region entries
	InterpInsts      uint64 `json:"interp_insts"`       // interpret mode: instructions interpreted
}

// RuntimeTelemetry counts host-side fast-path events. These live outside
// RuntimeStats because the memo only operates when the fast path is on,
// while RuntimeStats must be byte-identical either way.
type RuntimeTelemetry struct {
	MemoHits  uint64 `json:"memo_hits"`  // region entries served from the decode memo
	MemoFills uint64 `json:"memo_fills"` // regions decoded and recorded into the memo
}

// NewRuntime builds the runtime for a squashed image's metadata.
func NewRuntime(meta *Meta) (*Runtime, error) {
	comp, err := meta.Compressor()
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		meta:      meta,
		comp:      comp,
		curRegion: -1,
		memo:      make([]*regionImage, len(meta.OffsetTable)),
		slots:     make([]stubSlot, meta.StubCapacity),
		byTag:     map[uint32]int{},
	}
	if meta.Interpret {
		// Regions decode lazily on first entry (see enterInterpRegion); the
		// memo starts empty just like the buffer runtime's.
		rt.imemo = make([]*interpRegion, len(meta.OffsetTable))
	}
	return rt, nil
}

// SetFastPath enables (the default) or disables the runtime's fast paths:
// region memoization here and the table-driven Huffman decoder underneath.
// Disabled, every entry re-decodes its region bit by bit through the
// reference decoder; simulated cycles, stats, and memory images are
// identical either way.
func (rt *Runtime) SetFastPath(enabled bool) {
	rt.noFastPath = !enabled
	rt.comp.SetSlowDecode(!enabled)
}

// Range reports the intercepted address interval: the decompressor region
// in normal mode; in interpret mode it extends through the restore-stub
// area and the virtual buffer, which are emulated rather than executed.
func (rt *Runtime) Range() (uint32, uint32) {
	if rt.meta.Interpret {
		return rt.meta.DecompAddr, rt.meta.RtBufAddr + uint32(rt.meta.K)
	}
	return rt.meta.DecompAddr, rt.meta.DecompAddr + DecompWords*isa.WordSize
}

func (rt *Runtime) inBuffer(addr uint32) bool {
	return addr >= rt.meta.RtBufAddr && addr < rt.meta.RtBufAddr+uint32(rt.meta.K)
}

func (rt *Runtime) inStubArea(addr uint32) bool {
	return rt.meta.StubCapacity > 0 &&
		addr >= rt.meta.StubAreaAddr &&
		addr < rt.meta.StubAreaAddr+uint32(rt.meta.StubCapacity*StubSlotWords*isa.WordSize)
}

// Enter handles control arriving at a decompressor entry point.
func (rt *Runtime) Enter(m *vm.Machine) error {
	if rt.meta.Interpret {
		return rt.interpEnter(m)
	}
	off := m.PC - rt.meta.DecompAddr
	reg := off / isa.WordSize
	if off%isa.WordSize != 0 || reg >= NumEntryRegs {
		return fmt.Errorf("core: control reached decompressor body at %#x", m.PC)
	}
	retaddr := uint32(m.Reg[reg])
	switch {
	case rt.inBuffer(retaddr):
		return rt.createStub(m, reg, retaddr)
	case rt.inStubArea(retaddr):
		return rt.restoreReturn(m, retaddr)
	default:
		return rt.entryStub(m, retaddr)
	}
}

// entryStub: the tag word follows the call instruction in never-compressed
// code; decompress the region and dispatch.
func (rt *Runtime) entryStub(m *vm.Machine, tagAddr uint32) error {
	tag, err := m.ReadWord(tagAddr)
	if err != nil {
		return fmt.Errorf("core: cannot read entry tag: %w", err)
	}
	return rt.decompressAndJump(m, tag)
}

// createStub: a call is leaving the runtime buffer; make (or reuse) the
// restore stub for this call site and point the return register at it, then
// resume at the transfer instruction.
func (rt *Runtime) createStub(m *vm.Machine, reg, transferAddr uint32) error {
	resume := (transferAddr-rt.meta.RtBufAddr)/isa.WordSize + 1
	if rt.curRegion < 0 {
		return fmt.Errorf("core: CreateStub with empty buffer")
	}
	tag := uint32(rt.curRegion)<<16 | resume
	if rt.Trace != nil {
		rt.Trace(fmt.Sprintf("createStub reg=%d transfer=%#x region=%d resume=%d", reg, transferAddr, rt.curRegion, resume))
	}
	slotAddr, err := rt.allocStub(m, tag, reg)
	if err != nil {
		return err
	}
	// Point the call's return register at the stub and execute the
	// transfer instruction.
	m.Reg[reg] = int32(slotAddr)
	m.PC = transferAddr
	return nil
}

// allocStub finds or creates the restore stub for a call-site tag,
// maintaining the usage count (in memory, so the paper's 8-bytes-per-stub
// cost is real), and returns the slot's address.
func (rt *Runtime) allocStub(m *vm.Machine, tag uint32, reg uint32) (uint32, error) {
	idx, live := rt.byTag[tag]
	if live {
		rt.slots[idx].count++
		rt.Stats.CreateStubHits++
		m.Cycles += m.Cost.CreateStubHit
	} else {
		idx = -1
		for i := range rt.slots {
			if !rt.slots[i].live {
				idx = i
				break
			}
		}
		if idx < 0 {
			return 0, fmt.Errorf("core: restore-stub area exhausted (%d slots)", rt.meta.StubCapacity)
		}
		rt.slots[idx] = stubSlot{live: true, tag: tag, count: 1, reg: reg}
		rt.byTag[tag] = idx
		rt.Stats.CreateStubMisses++
		rt.Stats.LiveStubs++
		if rt.Stats.LiveStubs > rt.Stats.MaxLiveStubs {
			rt.Stats.MaxLiveStubs = rt.Stats.LiveStubs
		}
		m.Cycles += m.Cost.CreateStubMiss
		// Materialize the stub: bsr reg -> decompressor entry for reg,
		// then the tag word.
		slotAddr := rt.slotAddr(idx)
		entryWord := int32(rt.meta.DecompAddr)/isa.WordSize + int32(reg)
		disp := entryWord - (int32(slotAddr)/isa.WordSize + 1)
		if err := m.WriteWord(slotAddr, isa.Encode(isa.Br(isa.OpBSR, reg, disp))); err != nil {
			return 0, err
		}
		if err := m.WriteWord(slotAddr+4, tag); err != nil {
			return 0, err
		}
	}
	if err := m.WriteWord(rt.slotAddr(idx)+8, uint32(rt.slots[idx].count)); err != nil {
		return 0, err
	}
	return rt.slotAddr(idx), nil
}

func (rt *Runtime) slotAddr(idx int) uint32 {
	return rt.meta.StubAreaAddr + uint32(idx*StubSlotWords*isa.WordSize)
}

// restoreReturn: a callee returned into a restore stub; drop the stub's
// usage count, re-decompress the caller's region, and continue at the
// instruction after the original call.
func (rt *Runtime) restoreReturn(m *vm.Machine, tagAddr uint32) error {
	idx := int(tagAddr-rt.meta.StubAreaAddr-isa.WordSize) / (StubSlotWords * isa.WordSize)
	if idx < 0 || idx >= len(rt.slots) || !rt.slots[idx].live {
		return fmt.Errorf("core: return through dead restore stub at %#x", tagAddr)
	}
	slot := &rt.slots[idx]
	tag := slot.tag
	if rt.Trace != nil {
		rt.Trace(fmt.Sprintf("restore slot=%d region=%d resume=%d count=%d", idx, tag>>16, tag&0xFFFF, slot.count))
	}
	slot.count--
	rt.Stats.RestoreReturns++
	m.Cycles += m.Cost.RestoreDispatch
	if slot.count == 0 {
		slot.live = false
		delete(rt.byTag, tag)
		rt.Stats.LiveStubs--
	} else if err := m.WriteWord(rt.slotAddr(idx)+8, uint32(slot.count)); err != nil {
		return err
	}
	return rt.decompressAndJump(m, tag)
}

// decompressAndJump fills the runtime buffer with the region named by the
// tag and transfers control to the tag's offset via the dispatch jump at
// buffer word 0 (§2.3 steps 2–5).
func (rt *Runtime) decompressAndJump(m *vm.Machine, tag uint32) error {
	region := int(tag >> 16)
	offset := int(tag & 0xFFFF)
	if rt.Trace != nil {
		rt.Trace(fmt.Sprintf("decompress region=%d offset=%d", region, offset))
	}
	if region >= len(rt.meta.OffsetTable) {
		return fmt.Errorf("core: tag names region %d of %d", region, len(rt.meta.OffsetTable))
	}
	base := rt.meta.RtBufAddr
	maxWords := rt.meta.K / isa.WordSize
	if offset <= 0 || offset >= maxWords {
		return fmt.Errorf("core: tag offset %d outside buffer of %d words", offset, maxWords)
	}

	// Dispatch jump from buffer word 0 to the target offset.
	if err := m.WriteWord(base, isa.Encode(isa.Br(isa.OpBR, isa.RegZero, int32(offset-1)))); err != nil {
		return err
	}

	pos := 1
	var bits int
	if img := rt.memo[region]; img != nil && !rt.noFastPath {
		rt.Telem.MemoHits++
		// Replay the memoized emission. The words are offset-independent
		// (only the dispatch word above depends on the tag), and WriteWord
		// keeps the simulator's decode-cache invalidation exact.
		for _, w := range img.words {
			if err := m.WriteWord(base+uint32(pos*isa.WordSize), w); err != nil {
				return err
			}
			pos++
		}
		bits = img.bits
	} else {
		decompWord := int32(rt.meta.DecompAddr) / isa.WordSize
		bufWord := int32(base) / isa.WordSize
		emit := func(w uint32) error {
			if pos >= maxWords {
				return fmt.Errorf("core: region %d overflows the runtime buffer", region)
			}
			if err := m.WriteWord(base+uint32(pos*isa.WordSize), w); err != nil {
				return err
			}
			pos++
			return nil
		}
		n, err := rt.comp.Decompress(rt.meta.Blob, int(rt.meta.OffsetTable[region]), func(in isa.Inst) error {
			switch in.Op {
			case isa.OpBSRX:
				// Expanded direct call: bsr reg -> CreateStub entry, then the
				// branch to the callee with the displacement stored in the
				// compressed stream (relative to the word after the branch).
				csDisp := decompWord + int32(in.RA) - (bufWord + int32(pos) + 1)
				if err := emit(isa.Encode(isa.Br(isa.OpBSR, in.RA, csDisp))); err != nil {
					return err
				}
				return emit(isa.Encode(isa.Br(isa.OpBR, isa.RegZero, in.Disp)))
			case isa.OpJSRX:
				// Expanded indirect call: bsr reg -> CreateStub entry, then a
				// non-linking jump through the original target register.
				csDisp := decompWord + int32(in.RA) - (bufWord + int32(pos) + 1)
				if err := emit(isa.Encode(isa.Br(isa.OpBSR, in.RA, csDisp))); err != nil {
					return err
				}
				return emit(isa.Encode(isa.Jump(isa.JmpJMP, isa.RegZero, in.RB, 0)))
			default:
				return emit(isa.Encode(in))
			}
		})
		if err != nil {
			return fmt.Errorf("core: decompressing region %d: %w", region, err)
		}
		bits = n
		if !rt.noFastPath {
			// Record the emission for replay: read the words back out of the
			// buffer so the memo holds exactly what a decode produces.
			img := &regionImage{words: make([]uint32, pos-1), bits: bits}
			for i := range img.words {
				w, err := m.ReadWord(base + uint32((i+1)*isa.WordSize))
				if err != nil {
					return err
				}
				img.words[i] = w
			}
			rt.memo[region] = img
			rt.Telem.MemoFills++
		}
	}
	m.ICacheFlush(base, base+uint32(pos*isa.WordSize))
	if rt.curRegion >= 0 && rt.curRegion != region {
		// Identical on both paths: curRegion transitions don't depend on
		// whether the fill came from the memo or a fresh decode.
		rt.Stats.Evictions++
	}
	rt.Stats.Decompressions++
	rt.Stats.BitsRead += uint64(bits)
	rt.Stats.InstsEmitted += uint64(pos - 1)
	m.Cycles += m.Cost.DecompBase +
		m.Cost.DecompPerBit*uint64(bits) +
		m.Cost.DecompPerInst*uint64(pos-1) +
		m.Cost.IcacheFlushPerWord*uint64(pos)
	rt.curRegion = region
	m.PC = base
	return nil
}

// Install attaches the runtime to a machine.
func (rt *Runtime) Install(m *vm.Machine) { m.Hook = rt }
