package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/regions"
)

// TestLayoutMatchesBufferWords: the encoder's exact layout and the
// partitioner's BufferWords bound must agree when computed with the same
// buffer-safety assumptions, since the partitioner enforces the K bound
// with BufferWords and the encoder fails if its layout exceeds it.
func TestLayoutMatchesBufferWords(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	conf.Regions.K = 96
	conf.BufferSafe = false // align the two computations exactly
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	// Decode every region and verify it fits the bound (the decompressor
	// enforces it at run time too; this checks the static layout).
	comp, err := out.Meta.Compressor()
	if err != nil {
		t.Fatal(err)
	}
	maxWords := conf.Regions.K / isa.WordSize
	for id, off := range out.Meta.OffsetTable {
		pos := 1
		if _, err := comp.Decompress(out.Meta.Blob, int(off), func(in isa.Inst) error {
			if in.Op == isa.OpBSRX || in.Op == isa.OpJSRX {
				pos += 2
			} else {
				pos++
			}
			return nil
		}); err != nil {
			t.Fatalf("region %d: %v", id, err)
		}
		if pos > maxWords {
			t.Errorf("region %d occupies %d words, bound %d", id, pos, maxWords)
		}
	}
}

// TestEntryTagsNameBlockStarts: every entry stub's tag offset must be a
// block start in its region's layout.
func TestEntryTagsNameBlockStarts(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	conf.Regions.K = 96
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	// Tags live in the words after each `bsr AT, decomp` in text.
	decomp := out.Meta.DecompAddr
	for i, w := range out.Image.Text {
		in := isa.Decode(w)
		if in.Format != isa.FormatBranch || in.Op != isa.OpBSR || in.RA != isa.RegAT {
			continue
		}
		pc := 0x1000 + uint32(i*4)
		target := pc + 4 + uint32(in.Disp)*4
		if target < decomp || target >= decomp+NumEntryRegs*4 {
			continue // not a decompressor call
		}
		tag := out.Image.Text[i+1]
		region := int(tag >> 16)
		offset := int(tag & 0xFFFF)
		if region >= len(out.RegionLayouts) {
			t.Fatalf("tag at %#x names region %d of %d", pc, region, len(out.RegionLayouts))
		}
		found := false
		for _, off := range out.RegionLayouts[region] {
			if off == offset {
				found = true
			}
		}
		if !found {
			t.Errorf("tag at %#x: offset %d is not a block start of region %d", pc, offset, region)
		}
	}
}

// TestNoCompressedLabelSurvives: after squashing, no surviving text symbol
// may carry the name of a compressed block (they were removed; only their
// stubs remain under stub$ names).
func TestNoCompressedLabelSurvives(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	compressedish := 0
	for _, s := range out.Image.Symbols {
		if strings.HasPrefix(s.Name, "stub$") {
			compressedish++
		}
	}
	if compressedish == 0 {
		t.Fatal("no entry stubs in symbol table")
	}
	// Every stub$X must NOT coexist with a surviving X.
	names := map[string]bool{}
	for _, s := range out.Image.Symbols {
		names[s.Name] = true
	}
	for n := range names {
		if strings.HasPrefix(n, "stub$") && names[strings.TrimPrefix(n, "stub$")] {
			t.Errorf("compressed block %q still present alongside its stub", strings.TrimPrefix(n, "stub$"))
		}
	}
}

// TestConfigInteractions: illegal/degenerate configurations are handled.
func TestConfigInteractions(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	// Stub capacity defaulting.
	conf := DefaultConfig()
	conf.StubCapacity = 0
	if _, err := Squash(obj, counts, conf); err != nil {
		t.Fatalf("zero stub capacity not defaulted: %v", err)
	}
	// Tiny K: single blocks may not fit; Squash must still succeed with
	// whatever is compressible (possibly nothing).
	conf = DefaultConfig()
	conf.Regions.K = 16
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.RegionCount > 0 {
		// Fine — just verify the regions respect the bound.
		for id := range out.Meta.OffsetTable {
			for _, off := range out.RegionLayouts[id] {
				if off >= conf.Regions.K/4 {
					t.Errorf("region %d block at offset %d exceeds 4-word buffer", id, off)
				}
			}
		}
	}
	// Interpret + compile-time stubs together.
	conf = DefaultConfig()
	conf.Theta = 1
	conf.Interpret = true
	conf.CompileTimeRestoreStubs = true
	out, err = Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	baseIm, err := linkObj(obj)
	if err != nil {
		t.Fatal(err)
	}
	base := runBaseline(t, baseIm, timingInput)
	sq, _ := runSquashed(t, out, timingInput)
	if string(sq.Output) != string(base.Output) {
		t.Fatal("interpret+compile-time stubs diverged")
	}
	// Loop-aware + interpret.
	conf = DefaultConfig()
	conf.Theta = 1
	conf.Interpret = true
	conf.Regions.Strategy = regions.StrategyLoopAware
	out, err = Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	sq, _ = runSquashed(t, out, timingInput)
	if string(sq.Output) != string(base.Output) {
		t.Fatal("interpret+loop-aware diverged")
	}
}

func linkObj(obj *objfile.Object) (*objfile.Image, error) {
	return objfile.Link("main", obj)
}
