// Package core implements squash, the paper's profile-guided code
// compressor (Debray & Evans, PLDI 2002): a binary rewriter that replaces
// infrequently executed code regions with entry stubs and a compressed
// representation, decompressed on demand at run time into a small fixed
// buffer, plus the runtime machinery (decompressor dispatch, dynamically
// created reference-counted restore stubs) that makes function calls out of
// the buffer work.
package core

import (
	"encoding/binary"
	"fmt"

	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/lzcomp"
	"repro/internal/streamcomp"
)

// DecompWords is the reserved size of the in-image decompressor, in words.
// The first NumEntryRegs words are the per-register entry points (§2.3: one
// entry point per possible return-address register); the rest stands in for
// the decompressor body and its CreateStub logic. 600 words ≈ 2.4 KB is a
// realistic size for a canonical-Huffman split-stream decoder with the
// paper's decoder loop; it is charged in full against the squashed
// program's footprint.
const DecompWords = 600

// NumEntryRegs is the number of decompressor entry points (one per
// general-purpose register that could hold the return address).
const NumEntryRegs = 32

// StubSlotWords is the size of one dynamically created restore stub:
// the call to the decompressor, the tag word, and the usage count (the
// paper's "additional 8 bytes per stub in order to maintain the count",
// rounded up to a word-aligned slot).
const StubSlotWords = 4

// Region coder identifiers, stored in the metadata so the runtime knows how
// to decode the blob. The zero value is the paper's split-stream coder, so
// images written before the field existed decode unchanged.
const (
	// CoderStream is the paper's split-stream canonical-Huffman coder (§3).
	CoderStream = 0
	// CoderLZ is the LZ-style dictionary coder (§8/[19] alternative).
	CoderLZ = 1
)

// RegionCoder is what the runtime needs from a region decompressor: decode
// one region's instructions from the blob, and switch between the
// table-driven and reference bit-at-a-time Huffman decoders. Both coders
// satisfy it; both guarantee the two decoders consume identical bits.
// DecodeStats exposes the coder's decode-path telemetry (host-side only,
// never part of the simulated state).
type RegionCoder interface {
	Decompress(blob []byte, bitOff int, emit func(isa.Inst) error) (int, error)
	SetSlowDecode(v bool)
	DecodeStats() huffman.DecodeStats
}

// Meta is the squash runtime description stored alongside the image. In
// the paper's artifact this state is the decompressor's private data inside
// the binary; its size is charged to the footprint via the offset table and
// code tables entries of the accounting, not via this encoding.
type Meta struct {
	DecompAddr   uint32 // base of the reserved decompressor region
	StubAreaAddr uint32 // base of the restore-stub area
	StubCapacity int    // number of StubSlotWords slots
	RtBufAddr    uint32 // base of the runtime buffer
	K            int    // runtime buffer size in bytes
	// Interpret selects the §8 alternative runtime: compressed regions are
	// interpreted in place instead of decompressed into the buffer.
	Interpret bool
	// Coder identifies the region coder that produced Blob/Tables
	// (CoderStream or CoderLZ). It shares the Interpret flags word in the
	// serialized form: bit 0 is the interpret flag, bits 8+ the coder.
	Coder int

	// OffsetTable maps region index to the bit offset of its compressed
	// code within Blob (the paper's function offset table).
	OffsetTable []uint32
	// Blob is the merged compressed code of all regions.
	Blob []byte
	// Tables is the serialized split-stream compressor (N/D arrays per
	// stream, plus MTF alphabets when enabled).
	Tables []byte
}

// Compressor deserializes the coder tables for whichever region coder the
// image was squashed with.
func (m *Meta) Compressor() (RegionCoder, error) {
	switch m.Coder {
	case CoderStream:
		var c streamcomp.Compressor
		if err := c.UnmarshalBinary(m.Tables); err != nil {
			return nil, fmt.Errorf("core: bad compressor tables: %w", err)
		}
		return &c, nil
	case CoderLZ:
		var c lzcomp.Compressor
		if err := c.UnmarshalBinary(m.Tables); err != nil {
			return nil, fmt.Errorf("core: bad compressor tables: %w", err)
		}
		return &c, nil
	default:
		return nil, fmt.Errorf("core: unknown region coder %d", m.Coder)
	}
}

// MarshalBinary encodes the metadata.
func (m *Meta) MarshalBinary() ([]byte, error) {
	le := binary.LittleEndian
	var out []byte
	u32 := func(v uint32) { var b [4]byte; le.PutUint32(b[:], v); out = append(out, b[:]...) }
	out = append(out, 'S', 'Q', 'M', '1')
	u32(m.DecompAddr)
	u32(m.StubAreaAddr)
	u32(uint32(m.StubCapacity))
	u32(m.RtBufAddr)
	u32(uint32(m.K))
	flags := uint32(m.Coder) << 8
	if m.Interpret {
		flags |= 1
	}
	u32(flags)
	u32(uint32(len(m.OffsetTable)))
	for _, v := range m.OffsetTable {
		u32(v)
	}
	u32(uint32(len(m.Blob)))
	out = append(out, m.Blob...)
	u32(uint32(len(m.Tables)))
	out = append(out, m.Tables...)
	return out, nil
}

// UnmarshalMeta decodes metadata written by MarshalBinary.
func UnmarshalMeta(data []byte) (*Meta, error) {
	if len(data) < 4 || string(data[:4]) != "SQM1" {
		return nil, fmt.Errorf("core: bad metadata magic")
	}
	le := binary.LittleEndian
	pos := 4
	u32 := func() (uint32, error) {
		if pos+4 > len(data) {
			return 0, fmt.Errorf("core: truncated metadata at byte %d", pos)
		}
		v := le.Uint32(data[pos:])
		pos += 4
		return v, nil
	}
	m := &Meta{}
	var err error
	if m.DecompAddr, err = u32(); err != nil {
		return nil, err
	}
	if m.StubAreaAddr, err = u32(); err != nil {
		return nil, err
	}
	cap32, err := u32()
	if err != nil {
		return nil, err
	}
	m.StubCapacity = int(cap32)
	if m.RtBufAddr, err = u32(); err != nil {
		return nil, err
	}
	k32, err := u32()
	if err != nil {
		return nil, err
	}
	m.K = int(k32)
	flags, err := u32()
	if err != nil {
		return nil, err
	}
	m.Interpret = flags&1 == 1
	m.Coder = int(flags >> 8)
	n, err := u32()
	if err != nil {
		return nil, err
	}
	if int(n) > (len(data)-pos)/4 {
		return nil, fmt.Errorf("core: implausible offset table size %d", n)
	}
	m.OffsetTable = make([]uint32, n)
	for i := range m.OffsetTable {
		if m.OffsetTable[i], err = u32(); err != nil {
			return nil, err
		}
	}
	bl, err := u32()
	if err != nil {
		return nil, err
	}
	if int(bl) > len(data)-pos {
		return nil, fmt.Errorf("core: truncated blob")
	}
	m.Blob = append([]byte(nil), data[pos:pos+int(bl)]...)
	pos += int(bl)
	tl, err := u32()
	if err != nil {
		return nil, err
	}
	if int(tl) > len(data)-pos {
		return nil, fmt.Errorf("core: truncated tables")
	}
	m.Tables = append([]byte(nil), data[pos:pos+int(tl)]...)
	pos += int(tl)
	if pos != len(data) {
		return nil, fmt.Errorf("core: %d trailing metadata bytes", len(data)-pos)
	}
	return m, nil
}
