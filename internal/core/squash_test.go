package core

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/vm"
)

// testProgram exercises every runtime mechanism: cold code reached rarely,
// calls out of the runtime buffer (restore stubs), recursion through a
// restore stub, a buffer-safe leaf callee, a cold jump table (unswitched),
// and an indirect call through a function pointer.
const testProgram = `
        .text
        .func main
        lda  sp, -32(sp)
        stw  ra, 0(sp)
hot:    sys  getc
        blt  v0, fin
        sub  v0, 48, t0
        cmpult t0, 10, t1
        bne  t1, digit
        mov  v0, a0
        sys  putc
        br   hot
digit:  mov  t0, a0
        bsr  ra, coldsel
        mov  v0, a0
        sys  putc
        br   hot
fin:    bsr  ra, coldfin
        ldw  ra, 0(sp)
        lda  sp, 32(sp)
        clr  a0
        sys  halt

        .func coldsel
        lda  sp, -32(sp)
        stw  ra, 0(sp)
        stw  a0, 4(sp)
        mov  a0, t0
        cmpult t0, 3, t1
        beq  t1, cs_dflt
        sll  t0, 2, t1
        la   t2, seltab
        add  t2, t1, t2
        ldw  t3, 0(t2)
        jmp  (t3)
cs0:    bsr  ra, coldadd
        br   cs_out
cs1:    li   a0, 4
        bsr  ra, coldrec
        br   cs_out
cs2:    bsr  ra, leafy
        br   cs_out
cs_dflt:
        li   v0, 35
        br   cs_out2
cs_out: ldw  a0, 4(sp)
        add  v0, a0, v0
        and  v0, 63, v0
        add  v0, 48, v0
cs_out2:
        ldw  ra, 0(sp)
        lda  sp, 32(sp)
        ret

        .func coldadd
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, leafy
        add  v0, 7, v0
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret

        .func coldrec
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        stw  a0, 4(sp)
        ble  a0, cr_base
        sub  a0, 1, a0
        bsr  ra, coldrec
        ldw  a0, 4(sp)
        add  v0, a0, v0
        br   cr_out
cr_base:
        li   v0, 1
cr_out: ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret

        .func leafy
        li   v0, 5
        ret

        .func coldfin
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        la   pv, coldfp
        jsr  ra, (pv)
        mov  v0, a0
        sys  putc
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret

        .func coldfp
        li   v0, 33
        ret

        .data
seltab: .word cs0, cs1, cs2
`

// prepare assembles the program, profiles it on profInput, and returns the
// object, the baseline image, and the profile.
func prepare(t *testing.T, src string, profInput []byte) (*objfile.Object, *objfile.Image, profile.Counts) {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	m := vm.New(im, profInput)
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatalf("profiling run: %v", err)
	}
	return obj, im, m.Profile
}

// runBaseline executes the unmodified image.
func runBaseline(t *testing.T, im *objfile.Image, input []byte) *vm.Machine {
	t.Helper()
	m := vm.New(im, input)
	m.StackCheck = true
	if err := m.Run(); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	return m
}

// runSquashed executes a squashed image with the decompression runtime.
func runSquashed(t *testing.T, out *Output, input []byte) (*vm.Machine, *Runtime) {
	t.Helper()
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatalf("NewRuntime: %v", err)
	}
	m := vm.New(out.Image, input)
	m.StackCheck = true
	rt.Install(m)
	if err := m.Run(); err != nil {
		t.Fatalf("squashed run: %v", err)
	}
	return m, rt
}

// assertEquivalent checks outputs, exit status, and the SP trace (the
// paper's claim that the call stack of original and compressed programs
// match at every point, §2.2).
func assertEquivalent(t *testing.T, base, sq *vm.Machine) {
	t.Helper()
	if string(base.Output) != string(sq.Output) {
		t.Fatalf("output differs:\n  baseline %q\n  squashed %q", base.Output, sq.Output)
	}
	if base.Status != sq.Status {
		t.Fatalf("status differs: %d vs %d", base.Status, sq.Status)
	}
	if len(base.SPTrace) != len(sq.SPTrace) {
		t.Fatalf("SP trace length differs: %d vs %d", len(base.SPTrace), len(sq.SPTrace))
	}
	for i := range base.SPTrace {
		if base.SPTrace[i] != sq.SPTrace[i] {
			t.Fatalf("SP differs at output byte %d: %#x vs %#x", i, base.SPTrace[i], sq.SPTrace[i])
		}
	}
}

var profInput = []byte("hello world this has no digits at all")
var timingInput = []byte("a0b1c2d3e9f 0121 xyz9")

func TestSquashBehaviouralEquivalence(t *testing.T) {
	obj, im, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Regions.K = 96 // force several small regions so buffer exits occur
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatalf("Squash: %v", err)
	}
	base := runBaseline(t, im, timingInput)
	sq, rt := runSquashed(t, out, timingInput)
	assertEquivalent(t, base, sq)

	if rt.Stats.Decompressions == 0 {
		t.Error("no decompressions happened; cold code was never compressed?")
	}
	if rt.Stats.CreateStubMisses == 0 {
		t.Error("no restore stubs created; calls from the buffer untested")
	}
	if rt.Stats.LiveStubs != 0 {
		t.Errorf("%d restore stubs leaked", rt.Stats.LiveStubs)
	}
	if out.Stats.RegionCount == 0 {
		t.Error("no regions formed")
	}
	t.Logf("squash: %d -> %d bytes (%.1f%%), %d regions, %d entry stubs, runtime: %+v",
		out.Stats.InputBytes, out.Stats.SquashedBytes, 100*out.Stats.Reduction(),
		out.Stats.RegionCount, out.Stats.EntryStubCount, rt.Stats)
}

func TestSquashAtManyThresholds(t *testing.T) {
	obj, im, counts := prepare(t, testProgram, profInput)
	base := runBaseline(t, im, timingInput)
	for _, theta := range []float64{0, 0.00001, 0.0001, 0.01, 0.5, 1.0} {
		conf := DefaultConfig()
		conf.Theta = theta
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatalf("theta=%v: %v", theta, err)
		}
		sq, rt := runSquashed(t, out, timingInput)
		assertEquivalent(t, base, sq)
		if rt.Stats.LiveStubs != 0 {
			t.Errorf("theta=%v: %d stubs leaked", theta, rt.Stats.LiveStubs)
		}
	}
}

func TestSquashEverythingColdStillRuns(t *testing.T) {
	// θ=1: even main's hot loop is compressed; the program starts through
	// an entry stub and the whole run happens in and out of the buffer.
	obj, im, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	conf.Regions.K = 96
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	base := runBaseline(t, im, timingInput)
	sq, rt := runSquashed(t, out, timingInput)
	assertEquivalent(t, base, sq)
	if rt.Stats.Decompressions < 2 {
		t.Errorf("expected heavy decompression traffic, got %d", rt.Stats.Decompressions)
	}
	// Fully compressed code must run slower than the baseline.
	if sq.Cycles <= base.Cycles {
		t.Errorf("squashed at θ=1 not slower: %d vs %d cycles", sq.Cycles, base.Cycles)
	}
}

func TestSquashConfigVariants(t *testing.T) {
	obj, im, counts := prepare(t, testProgram, profInput)
	base := runBaseline(t, im, timingInput)
	variants := map[string]func(*Config){
		"no-buffersafe":   func(c *Config) { c.BufferSafe = false },
		"no-unswitch":     func(c *Config) { c.Unswitch = false },
		"no-pack":         func(c *Config) { c.Regions.Pack = false },
		"mtf":             func(c *Config) { c.MTF = true },
		"compile-time-rs": func(c *Config) { c.CompileTimeRestoreStubs = true; c.Regions.K = 96 },
		"small-K":         func(c *Config) { c.Regions.K = 96 },
		"large-K":         func(c *Config) { c.Regions.K = 4096 },
	}
	for name, mod := range variants {
		conf := DefaultConfig()
		conf.Theta = 1.0 // maximum stress
		mod(&conf)
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sq, rt := runSquashed(t, out, timingInput)
		assertEquivalent(t, base, sq)
		if !conf.CompileTimeRestoreStubs && rt.Stats.LiveStubs != 0 {
			t.Errorf("%s: %d stubs leaked", name, rt.Stats.LiveStubs)
		}
	}
}

func TestCompileTimeRestoreStubsCostMore(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	conf.Regions.K = 96
	runtimeOut, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	conf.CompileTimeRestoreStubs = true
	staticOut, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	if staticOut.Foot.RestoreStubsStatic == 0 {
		t.Fatal("compile-time mode created no static stubs")
	}
	if runtimeOut.Foot.RestoreStubsStatic != 0 {
		t.Fatal("runtime mode created static stubs")
	}
	t.Logf("static restore stubs: %d bytes (%d stubs); runtime stub area: %d bytes",
		staticOut.Foot.RestoreStubsStatic, staticOut.Stats.StaticRestoreStubCount,
		runtimeOut.Foot.StubArea)
}

func TestFootprintIdentity(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	for _, theta := range []float64{0, 0.5, 1} {
		conf := DefaultConfig()
		conf.Theta = theta
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatal(err)
		}
		// The Total() identity against the laid-out image is asserted
		// inside Squash; check the components are sensible here.
		f := out.Foot
		if f.RuntimeBuffer != conf.Regions.K {
			t.Errorf("buffer = %d, want %d", f.RuntimeBuffer, conf.Regions.K)
		}
		if f.Decompressor != DecompWords*4 {
			t.Errorf("decompressor = %d", f.Decompressor)
		}
		if f.NeverCompressed < 0 || f.CompressedCode < 0 {
			t.Errorf("negative component: %+v", f)
		}
		if theta == 1 && f.NeverCompressed > out.Stats.InputBytes/2 {
			t.Errorf("θ=1 but %d bytes never compressed (input %d)", f.NeverCompressed, out.Stats.InputBytes)
		}
	}
}

func TestMetaSerializationRoundTrip(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	out, err := Squash(obj, counts, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := out.Meta.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.DecompAddr != out.Meta.DecompAddr || back.RtBufAddr != out.Meta.RtBufAddr ||
		back.K != out.Meta.K || len(back.OffsetTable) != len(out.Meta.OffsetTable) ||
		len(back.Blob) != len(out.Meta.Blob) || len(back.Tables) != len(out.Meta.Tables) {
		t.Fatalf("meta round trip mismatch:\n%+v\n%+v", out.Meta, back)
	}
	// The image serialization carries the meta too.
	var sb strings.Builder
	if _, err := out.Image.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	im2, err := objfile.ReadImage(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(im2.Meta) != len(out.Image.Meta) {
		t.Fatal("meta lost in image serialization")
	}
	if _, err := UnmarshalMeta(im2.Meta); err != nil {
		t.Fatal(err)
	}
}

func TestSquashRejectsATUse(t *testing.T) {
	src := `
        .text
        .func main
        li   at, 1
        clr  a0
        sys  halt
`
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(im, nil)
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := Squash(obj, m.Profile, DefaultConfig()); err == nil || !strings.Contains(err.Error(), "AT") {
		t.Fatalf("expected AT rejection, got %v", err)
	}
}

func TestMaxLiveStubsBounded(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 1.0
	conf.Regions.K = 96
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	_, rt := runSquashed(t, out, timingInput)
	// The recursion coldrec(4) shares one call-site stub; the paper saw at
	// most 9 live stubs. Our capacity default is 16.
	if rt.Stats.MaxLiveStubs > 16 {
		t.Fatalf("MaxLiveStubs = %d", rt.Stats.MaxLiveStubs)
	}
	if rt.Stats.MaxLiveStubs == 0 {
		t.Fatal("stub machinery never exercised")
	}
	t.Logf("max live restore stubs: %d", rt.Stats.MaxLiveStubs)
}

// TestSquashRejectsTagOverflow: runtime tags pack (region<<16 | resume), so
// a buffer bound that admits resume offsets past 16 bits (or a region count
// past 16 bits) must be an explicit squash-time error — silently truncated
// tags would resume execution at the wrong buffer offset.
func TestSquashRejectsTagOverflow(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Regions.K = (0xFFFF + 1) * 4 // first K whose word offsets overflow
	if _, err := Squash(obj, counts, conf); err == nil || !strings.Contains(err.Error(), "16-bit tag") {
		t.Fatalf("K=%d accepted despite tag overflow, err=%v", conf.Regions.K, err)
	}

	// Bound checks directly: the largest legal values pass, one past fails.
	if err := checkTagBounds(0xFFFF*4, 1<<16); err != nil {
		t.Fatalf("maximal legal bounds rejected: %v", err)
	}
	if err := checkTagBounds(512, 1<<16+1); err == nil {
		t.Fatal("region count past 16 bits accepted")
	}
	if err := checkTagBounds((0xFFFF+1)*4, 1); err == nil {
		t.Fatal("resume offset past 16 bits accepted")
	}

	// A legal large K still squashes and runs.
	conf.Regions.K = 0xFFFF * 4
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatalf("maximal legal K rejected: %v", err)
	}
	if out.Meta.K != conf.Regions.K {
		t.Fatalf("K = %d, want %d", out.Meta.K, conf.Regions.K)
	}
}

func TestSquashDeterministic(t *testing.T) {
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Theta = 0.01
	conf.Regions.K = 96
	var first []byte
	for i := 0; i < 3; i++ {
		out, err := Squash(obj, counts, conf)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if _, err := out.Image.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = []byte(buf.String())
		} else if buf.String() != string(first) {
			t.Fatalf("run %d produced a different image: rewriting is nondeterministic", i)
		}
	}
}
