package core_test

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/vm"
)

// The complete library flow: assemble, profile, squash, run the squashed
// binary with the decompression runtime, and confirm identical behaviour.
func Example() {
	const program = `
        .text
        .func main
loop:   sys  getc
        blt  v0, done
        cmpeq v0, 33, t0
        beq  t0, echo
        bsr  ra, rare       ; '!' takes the cold path
        br   loop
echo:   mov  v0, a0
        sys  putc
        br   loop
done:   clr  a0
        sys  halt
        .func rare          ; never profiled -> compressed at θ=0
        li   a0, 42
        sys  putc
        li   a0, 42
        sys  putc
        li   a0, 42
        sys  putc
        li   a0, 42
        sys  putc
        ret
`
	obj, err := asm.Assemble(program)
	if err != nil {
		panic(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		panic(err)
	}
	profiler := vm.New(im, []byte("train")) // no '!': rare stays cold
	profiler.EnableProfile()
	if err := profiler.Run(); err != nil {
		panic(err)
	}
	out, err := core.Squash(obj, profiler.Profile, core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	rt, err := core.NewRuntime(out.Meta)
	if err != nil {
		panic(err)
	}
	m := vm.New(out.Image, []byte("hi!"))
	rt.Install(m)
	if err := m.Run(); err != nil {
		panic(err)
	}
	fmt.Printf("%s\n", m.Output)
	fmt.Println("regions:", out.Stats.RegionCount, "decompressions:", rt.Stats.Decompressions)
	// Output:
	// hi****
	// regions: 1 decompressions: 1
}
