package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/vm"
)

// benchRuntime squashes the package's standard test program and returns an
// installed runtime plus its machine, ready to decompress regions on demand.
func benchRuntime(b *testing.B) (*Runtime, *vm.Machine) {
	b.Helper()
	obj, err := asm.Assemble(testProgram)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	pm := vm.New(im, profInput)
	pm.EnableProfile()
	if err := pm.Run(); err != nil {
		b.Fatal(err)
	}
	conf := DefaultConfig()
	conf.Regions.K = 96 // several small regions, as in the equivalence tests
	out, err := Squash(obj, pm.Profile, conf)
	if err != nil {
		b.Fatal(err)
	}
	if out.Stats.RegionCount == 0 {
		b.Fatal("no regions formed")
	}
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		b.Fatal(err)
	}
	m := vm.New(out.Image, nil)
	rt.Install(m)
	return rt, m
}

// BenchmarkInterpRegionExec measures one interpret-in-place region visit
// (§8): enter a region and interpret its instructions until control leaves
// it. With the fast path off ("decode") every entry re-decodes the whole
// region through the reference bit-at-a-time decoder; with it on ("memo")
// the entry replays the per-region decoded-instruction memo. Simulated
// cycles and stats are identical in both modes; the pair isolates the
// host-side cost of per-entry re-decoding, which dominates exactly when
// region visits are brief — the interpreter's characteristic workload.
func BenchmarkInterpRegionExec(b *testing.B) {
	obj, err := asm.Assemble(testProgram)
	if err != nil {
		b.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		b.Fatal(err)
	}
	pm := vm.New(im, profInput)
	pm.EnableProfile()
	if err := pm.Run(); err != nil {
		b.Fatal(err)
	}
	out, err := Squash(obj, pm.Profile, interpConf(1, 96))
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"memo", true}, {"decode", false}} {
		b.Run(mode.name, func(b *testing.B) {
			rt, err := NewRuntime(out.Meta)
			if err != nil {
				b.Fatal(err)
			}
			rt.SetFastPath(mode.fast)
			m := vm.New(out.Image, nil)
			rt.Install(m)
			reg, pc0, cyc0 := m.Reg, m.PC, m.Cycles
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.startInterp(m, 0, 1); err != nil {
					b.Fatal(err)
				}
				for steps := 0; rt.interp.active && !m.Halted && steps < 64; steps++ {
					if err := rt.interpStep(m); err != nil {
						b.Fatal(err)
					}
				}
				// Rewind the visit so every iteration does identical work.
				m.Reg, m.PC, m.Cycles, m.Halted = reg, pc0, cyc0, false
				rt.interp = interpState{}
				rt.icur = nil
			}
		})
	}
}

// BenchmarkRegionDecompress measures one region fill of the runtime buffer:
// Huffman-decoding the region's split streams ("decode", fast paths off) or
// replaying the memoized emission ("memo"). Paired sub-benchmarks in one
// process make the speedup ratio robust against machine-load noise.
func BenchmarkRegionDecompress(b *testing.B) {
	for _, mode := range []struct {
		name string
		fast bool
	}{{"memo", true}, {"decode", false}} {
		b.Run(mode.name, func(b *testing.B) {
			rt, m := benchRuntime(b)
			rt.SetFastPath(mode.fast)
			tag := uint32(0)<<16 | 1 // region 0, buffer offset 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rt.decompressAndJump(m, tag); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
