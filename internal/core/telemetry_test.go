package core

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// obsSquashDigest is squashDigest through SquashObs with an explicit
// recorder, so tests can compare the recorded and unrecorded pipelines.
func obsSquashDigest(t *testing.T, obj *objfile.Object, prof []uint64, conf Config, rec *obs.Recorder) [32]byte {
	t.Helper()
	out, err := SquashObs(obj, prof, conf, rec)
	if err != nil {
		t.Fatalf("squash: %v", err)
	}
	var buf bytes.Buffer
	if _, err := out.Image.WriteTo(&buf); err != nil {
		t.Fatalf("image serialize: %v", err)
	}
	meta, err := out.Meta.MarshalBinary()
	if err != nil {
		t.Fatalf("meta serialize: %v", err)
	}
	return digest(buf.Bytes(), meta)
}

func digest(parts ...[]byte) [32]byte {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var d [32]byte
	copy(d[:], h.Sum(nil))
	return d
}

// TestSquashTelemetryTransparent is the zero-cost-when-off guarantee at the
// pipeline level: attaching a full recorder (tracer + registry) must leave
// the squashed image and metadata byte-identical to a nil-recorder run, at
// every worker count.
func TestSquashTelemetryTransparent(t *testing.T) {
	src := testprog.Random(11)
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	pm := vm.New(im, []byte("telemetry telemetry"))
	pm.EnableProfile()
	if err := pm.Run(); err != nil {
		t.Fatal(err)
	}

	confs := map[string]Config{"default": DefaultConfig()}
	lz := DefaultConfig()
	lz.Coder = CoderLZ
	confs["lz"] = lz
	mtf := DefaultConfig()
	mtf.MTF = true
	mtf.Theta = 0.01
	confs["mtf"] = mtf

	for name, conf := range confs {
		conf.Workers = 1
		want := obsSquashDigest(t, obj, pm.Profile, conf, nil)
		for _, workers := range []int{1, 2, 8} {
			conf.Workers = workers
			rec := obs.New()
			if got := obsSquashDigest(t, obj, pm.Profile, conf, rec); got != want {
				t.Fatalf("%s: workers=%d: recorded squash diverged from unrecorded", name, workers)
			}
		}
	}
}

// TestSquashSpansAndMetricsRecorded checks the recorder actually observes
// the pipeline: the span tree names every stage and the registry holds the
// squash_* counters, including the per-stream breakdown.
func TestSquashSpansAndMetricsRecorded(t *testing.T) {
	src := testprog.Random(3)
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	pm := vm.New(im, []byte("spans spans spans"))
	pm.EnableProfile()
	if err := pm.Run(); err != nil {
		t.Fatal(err)
	}

	rec := obs.New()
	conf := DefaultConfig()
	conf.Workers = 2
	// θ=1 compresses everything compressible, so the run below exercises
	// the runtime decompressor and its rt_* counters.
	conf.Theta = 1.0
	out, err := SquashObs(obj, pm.Profile, conf, rec)
	if err != nil {
		t.Fatal(err)
	}

	sum := rec.Trace.Summary()
	for _, span := range []string{"squash", "cfg.decode", "region.select", "layout", "build.link", "seq.build", "coder.train", "region.encode", "image.finalize"} {
		if !strings.Contains(sum, span) {
			t.Errorf("trace summary missing span %q:\n%s", span, sum)
		}
	}

	snap := rec.Metrics.Snapshot()
	have := map[string]uint64{}
	for _, c := range snap.Counters {
		have[c.Name] += c.Value
	}
	for _, name := range []string{"squash_runs_total", "squash_regions_total", "squash_input_bytes_total", "squash_output_bytes_total", "squash_blob_bytes_total", "squash_stream_bits_total"} {
		if have[name] == 0 {
			t.Errorf("metric %s missing or zero after a squash", name)
		}
	}

	// A run of the squashed image feeds the vm_*/rt_* families.
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, []byte("spans spans spans"))
	rt.Install(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	PublishRunTelemetry(rec.Metrics, m, rt)
	snap = rec.Metrics.Snapshot()
	have = map[string]uint64{}
	for _, c := range snap.Counters {
		have[c.Name] += c.Value
	}
	for _, name := range []string{"vm_instructions_total", "vm_cycles_total", "rt_buffer_fills_total", "rt_bits_read_total"} {
		if have[name] == 0 {
			t.Errorf("metric %s missing or zero after a squashed run", name)
		}
	}
	// Publishing must not touch the machine or runtime.
	before := m.Instructions
	PublishRunTelemetry(rec.Metrics, m, rt)
	if m.Instructions != before {
		t.Fatal("PublishRunTelemetry perturbed the machine")
	}
	// Nil registry is a no-op, not a panic.
	PublishRunTelemetry(nil, m, rt)
}
