package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// TestSquashPoolingOnOffByteIdentical is the pipeline-level pooling
// invariant: with every pool enabled (run repeatedly so warm, recycled
// buffers are actually exercised) and with pools disabled, the squashed
// image and metadata are byte-identical — across coders, MTF, interpreted
// regions, and worker counts.
func TestSquashPoolingOnOffByteIdentical(t *testing.T) {
	defer SetPooling(true)
	src := testprog.Random(23)
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatal(err)
	}
	pm := vm.New(im, []byte("pooling pooling"))
	pm.EnableProfile()
	if err := pm.Run(); err != nil {
		t.Fatal(err)
	}

	confs := map[string]Config{"default": DefaultConfig()}
	lz := DefaultConfig()
	lz.Coder = CoderLZ
	confs["lz"] = lz
	mtf := DefaultConfig()
	mtf.MTF = true
	mtf.Theta = 0.01
	confs["mtf"] = mtf
	interp := DefaultConfig()
	interp.Interpret = true
	confs["interp"] = interp

	for name, conf := range confs {
		SetPooling(false)
		conf.Workers = 1
		want := obsSquashDigest(t, obj, pm.Profile, conf, nil)

		SetPooling(true)
		for _, workers := range []int{1, 4} {
			conf.Workers = workers
			for cycle := 0; cycle < 3; cycle++ { // cycle 0 cold pools, later ones warm
				if got := obsSquashDigest(t, obj, pm.Profile, conf, nil); got != want {
					t.Fatalf("%s: workers=%d cycle=%d: pooled squash diverged from pools-off squash",
						name, workers, cycle)
				}
			}
		}
	}
}

// TestEncodeScratchPartition checks the arena slicing contract directly:
// subslices are empty, have the exact requested capacities, are disjoint,
// and recycle without growth.
func TestEncodeScratchPartition(t *testing.T) {
	sc := new(encodeScratch)
	counts := []int{3, 0, 5, 1}
	seqs := sc.partition(counts)
	if len(seqs) != len(counts) {
		t.Fatalf("partition returned %d seqs, want %d", len(seqs), len(counts))
	}
	for i, s := range seqs {
		if len(s) != 0 || cap(s) != counts[i] {
			t.Fatalf("seq %d: len=%d cap=%d, want len=0 cap=%d", i, len(s), cap(s), counts[i])
		}
	}
	// Fill every subslice to capacity and check disjointness via values.
	for i := range seqs {
		for k := 0; k < counts[i]; k++ {
			seqs[i] = append(seqs[i], vmInstMarker(i))
		}
	}
	for i, s := range seqs {
		for k := range s {
			if s[k] != vmInstMarker(i) {
				t.Fatalf("seq %d entry %d overwritten by another region's append", i, k)
			}
		}
	}
	arenaCap := cap(sc.arena)
	seqs2 := sc.partition(counts)
	if cap(sc.arena) != arenaCap {
		t.Fatalf("repartition with equal counts grew the arena %d -> %d", arenaCap, cap(sc.arena))
	}
	if len(seqs2) != len(counts) {
		t.Fatalf("repartition returned %d seqs", len(seqs2))
	}
}

// vmInstMarker builds a distinguishable instruction per region index.
func vmInstMarker(i int) (in isa.Inst) {
	in.Op = uint32(i + 1)
	return in
}
