package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/lzcomp"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/regions"
	"repro/internal/streamcomp"
)

// regionEncoder is what Phase 3 needs from a trained region coder; both
// streamcomp and lzcomp compressors satisfy it.
type regionEncoder interface {
	CompressAll(seqs [][]isa.Inst, workers int) (blob []byte, offsets []uint32, err error)
	MarshalBinary() ([]byte, error)
}

// Reserved symbol names introduced by the rewriter.
const (
	symDecomp   = "__decomp"
	symStubArea = "__stubarea"
	symRtBuf    = "__rtbuf"
)

// stubLabel names the entry stub for a compressed block.
func stubLabel(block string) string { return "stub$" + block }

// encoder carries the state of the layout/encode phase of Squash.
type encoder struct {
	conf       Config
	prog       *cfg.Program
	res        *regions.Result
	preds      *regions.Preds
	compressed map[string]bool
	safeCallee func(string) bool

	// rec/span carry the telemetry context from SquashObs; both may be
	// nil, and every use below is nil-safe.
	rec  *obs.Recorder
	span *obs.Span

	layouts []*regionLayout // indexed by region ID
	rs      []rsStub        // compile-time restore stubs (ablation mode)
}

// regionLayout fixes where every region instruction lands in the runtime
// buffer (word offsets; offset 0 is the dispatch jump the decompressor
// writes).
type regionLayout struct {
	blockOff map[string]int
	instOff  [][]int  // [block index][inst index] -> buffer word offset
	inserted [][2]int // (block index, buffer offset) of knit branches
	insTgt   []string // target label per inserted branch
	words    int
	order    []string // block labels in layout order (consistency check)
	// boundaries counts the offsets the interpret-in-place runtime can be
	// entered at (block starts and post-call resume points); its index
	// charges four bytes per boundary.
	boundaries int
}

type rsStub struct {
	label  string
	region int
	resume int      // buffer word offset to return to
	call   cfg.Inst // the original call instruction
	isJSR  bool
}

type callInfo struct {
	site cfg.CallSite
	// expand: the call needs the CreateStub treatment at runtime. Every
	// call out of the runtime buffer expands unless the callee is proven
	// buffer-safe (§6.1): even a callee in the same region may branch to
	// another region mid-body (split functions), which overwrites the
	// buffer, so a raw buffer return address is never sound.
	expand bool
	// intra: the callee's entry lies in the same region, so the expanded
	// call's transfer branch targets a buffer offset rather than an entry
	// stub (no re-decompression on entry).
	intra bool
}

// classifyCalls maps instruction index to call treatment for one block.
func (e *encoder) classifyCalls(r *regions.Region, b *cfg.Block) map[int]callInfo {
	out := map[int]callInfo{}
	for _, c := range b.Calls() {
		info := callInfo{site: c}
		callee := c.Callee
		switch {
		case callee == "":
			// Excluded from regions by partitioning; cannot happen.
			panic(fmt.Sprintf("core: unresolved indirect call in region block %s", b.Label))
		case e.safeCallee(callee):
			// Left unchanged (§6.1). Safe callees are never compressed.
		default:
			info.expand = true
			if id, in := e.res.InRegion[callee]; in && id == r.ID && !c.Indirect {
				info.intra = true
			}
		}
		out[c.InstIdx] = info
	}
	return out
}

// layoutRegion computes buffer offsets for region r.
func (e *encoder) layoutRegion(r *regions.Region) *regionLayout {
	lay := &regionLayout{blockOff: map[string]int{}, instOff: make([][]int, len(r.Blocks))}
	pos := 1
	for bi, b := range r.Blocks {
		lay.order = append(lay.order, b.Label)
		lay.blockOff[b.Label] = pos
		lay.boundaries++
		calls := e.classifyCalls(r, b)
		lay.instOff[bi] = make([]int, len(b.Insts))
		for j := range b.Insts {
			lay.instOff[bi][j] = pos
			if info, ok := calls[j]; ok && info.expand && !e.conf.CompileTimeRestoreStubs {
				pos += 2
				lay.boundaries++ // resume point after the call
			} else {
				pos++
			}
		}
		next := ""
		if bi+1 < len(r.Blocks) {
			next = r.Blocks[bi+1].Label
		}
		if b.FallsTo != "" && b.FallsTo != next {
			lay.inserted = append(lay.inserted, [2]int{bi, pos})
			lay.insTgt = append(lay.insTgt, b.FallsTo)
			pos++
		}
	}
	lay.words = pos
	return lay
}

// retarget maps a label to its post-rewrite equivalent: compressed blocks
// are reachable only through their entry stubs.
func (e *encoder) retarget(label string) string {
	if e.compressed[label] {
		return stubLabel(label)
	}
	return label
}

// run executes the layout, transform, encode, and accounting phases.
func (e *encoder) run(stats *Stats) (*Output, error) {
	// Phase 1: region layouts (address-independent). Regions are mutually
	// independent here, so the layouts fan out; each writes only its own
	// slot, indexed by region ID, so the merged result is order-free.
	sp := e.span.Child("layout")
	e.layouts = make([]*regionLayout, len(e.res.Regions))
	if err := parallel.ForEach(len(e.res.Regions), e.conf.Workers, func(i int) error {
		r := e.res.Regions[i]
		lay := e.layoutRegion(r)
		if lay.words > e.conf.Regions.K/isa.WordSize {
			return fmt.Errorf("region %d lays out to %d words, buffer holds %d",
				r.ID, lay.words, e.conf.Regions.K/isa.WordSize)
		}
		e.layouts[r.ID] = lay
		return nil
	}); err != nil {
		return nil, err
	}
	sp.End()

	// Phase 2: build and link the output program.
	sp = e.span.Child("build.link")
	out, entryStubWords, rsWords, stubAreaWords, err := e.buildOutput()
	if err != nil {
		return nil, err
	}
	obj2, err := cfg.Lower(out)
	if err != nil {
		return nil, err
	}
	im, err := objfile.Link(out.Entry, obj2)
	if err != nil {
		return nil, err
	}
	sp.End()
	addrOf := map[string]uint32{}
	for _, s := range im.Symbols {
		addrOf[s.Name] = s.Addr()
	}

	// Phase 3: build final instruction sequences per region and compress.
	// Sequence building reads only the fixed layouts and symbol table, so
	// regions fan out again; the split-stream coder then counts stream
	// frequencies in parallel, builds each canonical-Huffman codebook once
	// (shared read-only by every encoder), and compresses the regions
	// concurrently into private bit streams concatenated in region order.
	sp = e.span.Child("seq.build")
	// Region sequence lengths are exact functions of the fixed layouts, so
	// the sequences build into disjoint subslices of one pooled arena
	// (scratch.go); the parallel appends below never reallocate.
	scratch := getEncodeScratch()
	defer putEncodeScratch(scratch)
	seqs := scratch.partition(scratch.seqCounts(e))
	if err := parallel.ForEach(len(e.res.Regions), e.conf.Workers, func(i int) error {
		r := e.res.Regions[i]
		seq, err := e.buildSeq(r, addrOf, seqs[r.ID])
		if err != nil {
			return err
		}
		seqs[r.ID] = seq
		return nil
	}); err != nil {
		return nil, err
	}
	sp.End()
	sp = e.span.Child("coder.train")
	var comp regionEncoder
	switch e.conf.Coder {
	case CoderStream:
		comp = streamcomp.Train(seqs, streamcomp.Options{MTF: e.conf.MTF, Workers: e.conf.Workers})
	case CoderLZ:
		comp = lzcomp.Train(seqs)
	default:
		return nil, fmt.Errorf("unknown region coder %d", e.conf.Coder)
	}
	sp.End()
	sp = e.span.Child("region.encode", "regions", len(seqs))
	switch c := comp.(type) {
	case *streamcomp.Compressor:
		c.Span = sp
	case *lzcomp.Compressor:
		c.Span = sp
	}
	blob, offsets, err := comp.CompressAll(seqs, e.conf.Workers)
	if err != nil {
		return nil, err
	}
	tables, err := comp.MarshalBinary()
	if err != nil {
		return nil, err
	}
	sp.SetArg("blob_bytes", len(blob))
	sp.SetArg("table_bytes", len(tables))
	sp.End()

	// Phase 4: materialize the blob in text and the offset table + code
	// tables in data; build metadata and the footprint.
	sp = e.span.Child("image.finalize")
	preBlobWords := len(im.Text)
	for i := 0; i < len(blob); i += 4 {
		var wrd uint32
		for k := 0; k < 4 && i+k < len(blob); k++ {
			wrd |= uint32(blob[i+k]) << (8 * k)
		}
		im.Text = append(im.Text, wrd)
	}
	offtabBytes := 4 * len(offsets)
	for _, off := range offsets {
		im.Data = append(im.Data, byte(off), byte(off>>8), byte(off>>16), byte(off>>24))
	}
	im.Data = append(im.Data, tables...)

	meta := &Meta{
		DecompAddr:   addrOf[symDecomp],
		StubAreaAddr: addrOf[symStubArea],
		StubCapacity: e.conf.StubCapacity,
		RtBufAddr:    addrOf[symRtBuf],
		K:            e.conf.Regions.K,
		Interpret:    e.conf.Interpret,
		Coder:        e.conf.Coder,
		OffsetTable:  offsets,
		Blob:         blob,
		Tables:       tables,
	}
	if e.conf.CompileTimeRestoreStubs {
		meta.StubCapacity = 0
	}
	im.Meta, err = meta.MarshalBinary()
	if err != nil {
		return nil, err
	}

	rtbufWords := e.conf.Regions.K / isa.WordSize
	blobWords := len(im.Text) - preBlobWords
	foot := Footprint{
		NeverCompressed:    (preBlobWords - entryStubWords - rsWords - DecompWords - stubAreaWords - rtbufWords) * isa.WordSize,
		EntryStubs:         entryStubWords * isa.WordSize,
		RestoreStubsStatic: rsWords * isa.WordSize,
		Decompressor:       DecompWords * isa.WordSize,
		OffsetTable:        offtabBytes,
		CompressedCode:     blobWords * isa.WordSize,
		CodeTables:         len(tables),
		StubArea:           stubAreaWords * isa.WordSize,
		RuntimeBuffer:      e.conf.Regions.K,
	}
	layoutBytes := len(im.Text)*isa.WordSize + offtabBytes + len(tables)
	if e.conf.Interpret {
		// Interpret-in-place (§8 alternative): no runtime buffer memory is
		// ever written — its address range is reserved but needs no backing
		// store — but the interpreter needs an index entry (four bytes:
		// buffer offset plus blob bit position) for every offset it can be
		// entered at: block starts and post-call resume points.
		foot.RuntimeBuffer = 0
		boundaries := 0
		for _, lay := range e.layouts {
			boundaries += lay.boundaries
		}
		foot.InterpIndex = 4 * boundaries
		layoutBytes += foot.InterpIndex - e.conf.Regions.K
	}
	if got := foot.Total(); got != layoutBytes {
		return nil, fmt.Errorf("footprint accounting mismatch: components sum to %d, layout is %d", got, layoutBytes)
	}

	stats.SquashedBytes = foot.Total()
	stats.EntryStubCount = entryStubWords / regions.EntryStubWords
	stats.StaticRestoreStubCount = len(e.rs)
	if n := e.res.CompressibleInsts; n > 0 {
		stats.CompressionRatio = float64(len(blob)+len(tables)) / float64(n*isa.WordSize)
	}

	layouts := make([]map[string]int, len(e.layouts))
	for i, lay := range e.layouts {
		layouts[i] = lay.blockOff
	}
	sp.End()
	e.publishMetrics(comp, seqs, blob, tables)
	return &Output{Image: im, Meta: meta, Foot: foot, Stats: *stats, RegionLayouts: layouts}, nil
}

// publishMetrics records the per-stream compression breakdown — the
// numbers behind the paper's Table 3 — into the recorder's registry.
// The per-stream bit accounting re-walks every sequence, so the whole
// body is gated on telemetry being enabled.
func (e *encoder) publishMetrics(comp regionEncoder, seqs [][]isa.Inst, blob, tables []byte) {
	if e.rec == nil || e.rec.Metrics == nil {
		return
	}
	e.rec.Counter("squash_blob_bytes_total").Add(uint64(len(blob)))
	e.rec.Counter("squash_table_bytes_total").Add(uint64(len(tables)))
	sc, ok := comp.(*streamcomp.Compressor)
	if !ok {
		return
	}
	bits := sc.StreamBits(seqs)
	for _, st := range sc.StreamStats() {
		stream := obs.L("stream", st.Kind.String())
		e.rec.Counter("squash_stream_bits_total", stream).Add(bits[st.Kind])
		e.rec.Gauge("squash_stream_codebook_values", stream).Set(int64(st.Values))
		e.rec.Gauge("squash_stream_table_bytes", stream).Set(int64(st.TableBytes))
	}
}

// buildOutput assembles the rewritten program: surviving code with
// references retargeted to stubs, the stubs themselves, and the reserved
// decompressor/stub-area/buffer regions. It reports the word sizes of the
// stub groups for accounting.
func (e *encoder) buildOutput() (out *cfg.Program, entryStubWords, rsWords, stubAreaWords int, err error) {
	out = &cfg.Program{
		Data:        append([]byte(nil), e.prog.Data...),
		DataSymbols: append([]objfile.Symbol(nil), e.prog.DataSymbols...),
		Entry:       e.retarget(e.prog.Entry),
	}
	for _, r := range e.prog.DataRelocs {
		r.Sym = e.retarget(r.Sym)
		out.DataRelocs = append(out.DataRelocs, r)
	}

	// Surviving functions.
	for _, f := range e.prog.Funcs {
		var kept []*cfg.Block
		for _, b := range f.Blocks {
			if e.compressed[b.Label] {
				continue
			}
			nb := &cfg.Block{
				Label:      b.Label,
				Insts:      append([]cfg.Inst(nil), b.Insts...),
				FallsTo:    b.FallsTo,
				JT:         b.JT,
				SrcWordOff: b.SrcWordOff,
				Freq:       b.Freq,
				Weight:     b.Weight,
			}
			for i := range nb.Insts {
				if nb.Insts[i].Kind != cfg.TargetNone {
					nb.Insts[i].Target = e.retarget(nb.Insts[i].Target)
				}
			}
			if nb.FallsTo != "" {
				nb.FallsTo = e.retarget(nb.FallsTo)
			}
			kept = append(kept, nb)
		}
		if len(kept) == 0 {
			continue
		}
		name := f.Name
		if kept[0].Label != name {
			name = kept[0].Label
		}
		out.Funcs = append(out.Funcs, &cfg.Func{Name: name, Blocks: kept})
	}

	// Entry stubs: two words each — a call to the decompressor through the
	// AT entry point, then the tag word <region index, buffer offset>.
	// In compile-time-restore-stub mode, static stubs call compressed
	// callees by symbol, so every such callee needs an entry stub even if
	// all its callers share its region.
	extraEntries := map[int]map[string]bool{}
	if e.conf.CompileTimeRestoreStubs {
		for _, r := range e.res.Regions {
			for _, b := range r.Blocks {
				for _, info := range e.classifyCalls(r, b) {
					callee := info.site.Callee
					if info.expand && !info.site.Indirect && e.compressed[callee] {
						id := e.res.InRegion[callee]
						if extraEntries[id] == nil {
							extraEntries[id] = map[string]bool{}
						}
						extraEntries[id][callee] = true
					}
				}
			}
		}
	}
	for _, r := range e.res.Regions {
		entries := e.res.Entries(e.preds, r)
		for extra := range extraEntries[r.ID] {
			found := false
			for _, en := range entries {
				if en == extra {
					found = true
				}
			}
			if !found {
				entries = append(entries, extra)
			}
		}
		sort.Strings(entries)
		lay := e.layouts[r.ID]
		for _, entry := range entries {
			off := lay.blockOff[entry]
			if off >= 1<<16 || r.ID >= 1<<16 {
				return nil, 0, 0, 0, fmt.Errorf("tag overflow: region %d offset %d", r.ID, off)
			}
			tag := uint32(r.ID)<<16 | uint32(off)
			sb := &cfg.Block{
				Label: stubLabel(entry),
				Insts: []cfg.Inst{
					{Inst: isa.Br(isa.OpBSR, isa.RegAT, 0), Kind: cfg.TargetBranch,
						Target: symDecomp, Addend: int32(isa.RegAT * isa.WordSize)},
					cfg.RawWord(tag),
				},
			}
			out.Funcs = append(out.Funcs, &cfg.Func{Name: sb.Label, Blocks: []*cfg.Block{sb}})
			entryStubWords += regions.EntryStubWords
		}
	}

	// Compile-time restore stubs (ablation): one static stub per expanded
	// call site, each three words: the call, the decompressor invocation,
	// and the tag.
	if e.conf.CompileTimeRestoreStubs {
		for _, r := range e.res.Regions {
			lay := e.layouts[r.ID]
			for bi, b := range r.Blocks {
				calls := e.classifyCalls(r, b)
				idxs := make([]int, 0, len(calls))
				for j := range calls {
					idxs = append(idxs, j)
				}
				sort.Ints(idxs)
				for _, j := range idxs {
					info := calls[j]
					if !info.expand {
						continue
					}
					in := b.Insts[j]
					stub := rsStub{
						label:  fmt.Sprintf("rs$%d", len(e.rs)),
						region: r.ID,
						resume: lay.instOff[bi][j] + 1,
						call:   in,
						isJSR:  info.site.Indirect,
					}
					e.rs = append(e.rs, stub)
					tag := uint32(r.ID)<<16 | uint32(stub.resume)
					ra := in.RA
					var callInst cfg.Inst
					if stub.isJSR {
						callInst = cfg.Inst{Inst: in.Inst}
					} else {
						callInst = cfg.Inst{Inst: isa.Br(isa.OpBSR, ra, 0), Kind: cfg.TargetBranch,
							Target: e.retarget(in.Target)}
					}
					sb := &cfg.Block{
						Label: stub.label,
						Insts: []cfg.Inst{
							callInst,
							{Inst: isa.Br(isa.OpBSR, ra, 0), Kind: cfg.TargetBranch,
								Target: symDecomp, Addend: int32(ra * isa.WordSize)},
							cfg.RawWord(tag),
						},
					}
					out.Funcs = append(out.Funcs, &cfg.Func{Name: sb.Label, Blocks: []*cfg.Block{sb}})
					rsWords += 3
				}
			}
		}
		sortRS(e.rs)
	}

	// Reserved regions, filled with trapping sentinels: the decompressor
	// (entered only through the interception hook), the restore-stub area
	// (rewritten at run time), and the runtime buffer.
	reserved := func(name string, words int) {
		insts := make([]cfg.Inst, words)
		for i := range insts {
			insts[i] = cfg.RawWord(isa.Sentinel)
		}
		blk := &cfg.Block{Label: name, Insts: insts}
		out.Funcs = append(out.Funcs, &cfg.Func{Name: name, Blocks: []*cfg.Block{blk}})
	}
	stubAreaWords = e.conf.StubCapacity * StubSlotWords
	if e.conf.CompileTimeRestoreStubs {
		stubAreaWords = 0
	}
	reserved(symDecomp, DecompWords)
	if stubAreaWords > 0 {
		reserved(symStubArea, stubAreaWords)
	} else {
		reserved(symStubArea, 0)
	}
	reserved(symRtBuf, e.conf.Regions.K/isa.WordSize)
	return out, entryStubWords, rsWords, stubAreaWords, nil
}

func sortRS(rs []rsStub) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].label < rs[j].label })
}

// buildSeq produces the final instruction sequence for region r: all
// displacement fields resolved against the fixed buffer layout and the
// linked image's symbol addresses, calls rewritten per their
// classification (intra-region, buffer-safe, expanded, or routed through a
// compile-time restore stub). The sequence appends into dst, which the
// caller sizes to the exact length implied by the layout (see scratch.go);
// an undersized dst still produces a correct sequence, it just reallocates.
func (e *encoder) buildSeq(r *regions.Region, addrOf map[string]uint32, dst []isa.Inst) ([]isa.Inst, error) {
	lay := e.layouts[r.ID]
	bufWordBase := int(addrOf[symRtBuf]) / isa.WordSize
	wordAddr := func(label string) (int, error) {
		a, ok := addrOf[label]
		if !ok {
			return 0, fmt.Errorf("region %d references unknown symbol %q", r.ID, label)
		}
		return int(a) / isa.WordSize, nil
	}
	// extDisp: displacement from buffer position pos (skip words into the
	// instruction group) to an absolute text word.
	extDisp := func(targetWord, pos, skip int) int32 {
		return int32(targetWord - (bufWordBase + pos + skip))
	}
	// rsIndex finds the compile-time stub for a call site.
	rsIndex := func(region, resume int) (string, error) {
		for _, s := range e.rs {
			if s.region == region && s.resume == resume {
				return s.label, nil
			}
		}
		return "", fmt.Errorf("no compile-time restore stub for region %d resume %d", region, resume)
	}

	seq := dst[:0]
	var insIdx int
	for bi, b := range r.Blocks {
		if lay.order[bi] != b.Label {
			return nil, fmt.Errorf("region %d block order changed since layout: index %d is %s, was %s",
				r.ID, bi, b.Label, lay.order[bi])
		}
		calls := e.classifyCalls(r, b)
		for j, in := range b.Insts {
			pos := lay.instOff[bi][j]
			if in.Raw {
				return nil, fmt.Errorf("raw word inside region block %s", b.Label)
			}
			info, isCall := calls[j]
			// The layout and this pass must agree on which calls expand:
			// a disagreement would shift every later buffer offset.
			width := 1
			if isCall && info.expand && !e.conf.CompileTimeRestoreStubs {
				width = 2
			}
			layWidth := 0
			if j+1 < len(b.Insts) {
				layWidth = lay.instOff[bi][j+1] - pos
			}
			if layWidth != 0 && layWidth != width {
				return nil, fmt.Errorf("region %d block %s inst %d: layout width %d, encode width %d (callee %q expand=%v intra=%v)",
					r.ID, b.Label, j, layWidth, width, info.site.Callee, info.expand, info.intra)
			}
			switch {
			case isCall && !info.site.Indirect: // direct bsr
				callee := in.Target
				switch {
				case info.expand && info.intra && !e.conf.CompileTimeRestoreStubs:
					// Expanded call whose transfer branches within the
					// buffer: bsr CreateStub; br <buffer offset>.
					seq = append(seq, isa.Br(isa.OpBSRX, in.RA, int32(lay.blockOff[callee]-(pos+2))))
				case info.expand && e.conf.CompileTimeRestoreStubs:
					lbl, err := rsIndex(r.ID, pos+1)
					if err != nil {
						return nil, err
					}
					tw, err := wordAddr(lbl)
					if err != nil {
						return nil, err
					}
					seq = append(seq, isa.Br(isa.OpBR, isa.RegZero, extDisp(tw, pos, 1)))
				case info.expand:
					tw, err := wordAddr(e.retarget(callee))
					if err != nil {
						return nil, err
					}
					seq = append(seq, isa.Br(isa.OpBSRX, in.RA, extDisp(tw, pos, 2)))
				default: // buffer-safe
					tw, err := wordAddr(e.retarget(callee))
					if err != nil {
						return nil, err
					}
					seq = append(seq, isa.Br(isa.OpBSR, in.RA, extDisp(tw, pos, 1)))
				}
			case isCall && info.site.Indirect: // jsr
				switch {
				case info.expand && e.conf.CompileTimeRestoreStubs:
					lbl, err := rsIndex(r.ID, pos+1)
					if err != nil {
						return nil, err
					}
					tw, err := wordAddr(lbl)
					if err != nil {
						return nil, err
					}
					seq = append(seq, isa.Br(isa.OpBR, isa.RegZero, extDisp(tw, pos, 1)))
				case info.expand:
					seq = append(seq, isa.Inst{Op: isa.OpJSRX, Format: isa.FormatJump,
						RA: in.RA, RB: in.RB, JFunc: isa.JmpJSR})
				default: // intra-region or buffer-safe: register-based, unchanged
					seq = append(seq, in.Inst)
				}
			case in.Kind == cfg.TargetBranch:
				t := in.Target
				if off, intra := lay.blockOff[t]; intra {
					seq = append(seq, isa.Br(in.Op, in.RA, int32(off-(pos+1))))
				} else {
					tw, err := wordAddr(e.retarget(t))
					if err != nil {
						return nil, err
					}
					seq = append(seq, isa.Br(in.Op, in.RA, extDisp(tw, pos, 1)))
				}
			case in.Kind == cfg.TargetHi16 || in.Kind == cfg.TargetLo16:
				a, err := e.laAddr(r, lay, addrOf, in.Target)
				if err != nil {
					return nil, err
				}
				a += int64(in.Addend)
				lo := int64(int16(a & 0xFFFF))
				hi := int32(int16((a - lo) >> 16))
				if in.Kind == cfg.TargetHi16 {
					seq = append(seq, isa.Mem(in.Op, in.RA, in.RB, hi))
				} else {
					seq = append(seq, isa.Mem(in.Op, in.RA, in.RB, int32(lo)))
				}
			default:
				seq = append(seq, in.Inst)
			}
		}
		// Knit branch inserted after this block by the layout.
		if insIdx < len(lay.inserted) && lay.inserted[insIdx][0] == bi {
			pos := lay.inserted[insIdx][1]
			t := lay.insTgt[insIdx]
			if off, intra := lay.blockOff[t]; intra {
				seq = append(seq, isa.Br(isa.OpBR, isa.RegZero, int32(off-(pos+1))))
			} else {
				tw, err := wordAddr(e.retarget(t))
				if err != nil {
					return nil, err
				}
				seq = append(seq, isa.Br(isa.OpBR, isa.RegZero, extDisp(tw, pos, 1)))
			}
			insIdx++
		}
	}
	return seq, nil
}

// laAddr resolves the address an la pair inside region r must materialize:
// data symbols resolve normally; compressed labels resolve to their entry
// stub; surviving code labels resolve directly.
func (e *encoder) laAddr(r *regions.Region, lay *regionLayout, addrOf map[string]uint32, target string) (int64, error) {
	// Taken addresses of compressed labels always resolve to the entry
	// stub, never to a buffer address: the pointer may be used after the
	// buffer has been overwritten by another region.
	a, ok := addrOf[e.retarget(target)]
	if !ok {
		return 0, fmt.Errorf("la of unknown symbol %q in region %d", target, r.ID)
	}
	return int64(a), nil
}
