package core

import (
	"fmt"

	"repro/internal/buffersafe"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/objfile"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/regions"
	"repro/internal/unswitch"
)

// Config parameterizes a squash run.
type Config struct {
	// Theta is the cold-code threshold θ (§5): cold code may account for at
	// most this fraction of the profiled dynamic instruction count.
	Theta float64
	// Regions configures region formation (§4): buffer bound K, assumed
	// compression factor γ, packing.
	Regions regions.Config
	// BufferSafe enables the §6.1 analysis: calls from compressed code to
	// provably buffer-safe callees are left unchanged.
	BufferSafe bool
	// Unswitch enables §6.2: cold jump-table dispatches are rewritten to
	// conditional branches so their blocks become compressible.
	Unswitch bool
	// MTF enables the move-to-front variant of the stream coder (§3).
	// Ignored unless Coder is CoderStream.
	MTF bool
	// Coder selects the region coder: CoderStream (the default, the paper's
	// split-stream scheme) or CoderLZ (the dictionary coder, §8/[19]). The
	// choice is recorded in the image metadata so the runtime decodes with
	// the matching tables.
	Coder int
	// Interpret selects the §8 alternative: compressed regions are
	// *interpreted in place* instead of decompressed into the runtime
	// buffer (Fraser/Proebsting-style executable compressed code). It
	// trades the buffer away but pays a per-instruction decode cost at
	// every execution and an index (4 bytes per enterable boundary: block
	// starts and post-call resume points). Buffer-safe call elision is
	// disabled:
	// interpreted code has no materialized return addresses.
	Interpret bool
	// CompileTimeRestoreStubs switches to the rejected §2.2 alternative of
	// materializing every restore stub statically, for the ablation that
	// reproduces the paper's 13%–27% never-compressed-code overhead numbers.
	CompileTimeRestoreStubs bool
	// StubCapacity is the number of runtime restore-stub slots. The paper
	// observed at most 9 live stubs even at θ = 0.01.
	StubCapacity int
	// Workers bounds the goroutines the squash pipeline may use for its
	// per-function and per-region phases (AT scan, buffer-safe analysis,
	// region layout, sequence building, stream compression). <= 0 means
	// one per CPU; 1 forces a fully serial run. The output image is
	// byte-identical at every worker count — results are always merged in
	// deterministic function/region order.
	Workers int
}

// DefaultConfig mirrors the paper's operating point.
func DefaultConfig() Config {
	return Config{
		Theta:        0.0,
		Regions:      regions.DefaultConfig(),
		BufferSafe:   true,
		Unswitch:     true,
		StubCapacity: 16,
	}
}

// Footprint itemizes the squashed program's memory cost, mirroring §2.1:
// "the latter must take into account the space occupied by the stubs, the
// decompressor, the function offset table, the compressed code, the runtime
// buffer, and the never-compressed original program code."
type Footprint struct {
	NeverCompressed    int // bytes of surviving program code
	EntryStubs         int // bytes of entry stubs
	RestoreStubsStatic int // bytes of compile-time restore stubs (ablation mode)
	Decompressor       int // bytes reserved for the decompressor/interpreter
	InterpIndex        int // bytes of branch-target index (interpret mode only)
	OffsetTable        int // bytes of the function offset table
	CompressedCode     int // bytes of the compressed blob
	CodeTables         int // bytes of the per-stream Huffman tables
	StubArea           int // bytes of the runtime restore-stub area
	RuntimeBuffer      int // bytes of the runtime buffer (K)
}

// Total sums all components.
func (f Footprint) Total() int {
	return f.NeverCompressed + f.EntryStubs + f.RestoreStubsStatic + f.Decompressor +
		f.InterpIndex + f.OffsetTable + f.CompressedCode + f.CodeTables +
		f.StubArea + f.RuntimeBuffer
}

// Stats summarizes a squash run.
type Stats struct {
	InputBytes             int // squeezed text size (the comparison baseline)
	SquashedBytes          int // Footprint.Total()
	RegionCount            int
	EntryStubCount         int
	StaticRestoreStubCount int

	ColdInsts         int
	CompressibleInsts int
	TotalInsts        int

	// CompressionRatio is the achieved γ: compressed bytes (blob + tables)
	// over the original bytes of the compressed instructions.
	CompressionRatio float64

	// BufferSafeCalls / CallsInRegions reproduce the §6.1 statistic.
	BufferSafeCalls int
	CallsInRegions  int

	Unswitched          int
	TableBytesReclaimed int

	Excluded map[string]string

	// LoopSplitWarnings lists loops whose blocks the partitioner placed in
	// different regions (or half-compressed): if the timing input drives
	// such a loop, every iteration decompresses a region — the pathology
	// the paper reports for mpeg2dec at K=128 and for SPECint li (§7).
	LoopSplitWarnings []string
}

// Reduction reports the code size reduction relative to the input.
func (s *Stats) Reduction() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	return 1 - float64(s.SquashedBytes)/float64(s.InputBytes)
}

// Output is the result of Squash.
type Output struct {
	Image *objfile.Image
	Meta  *Meta
	Foot  Footprint
	Stats Stats
	// RegionLayouts describes, per region, the buffer word offset of every
	// block (diagnostics and experiment reporting).
	RegionLayouts []map[string]int
}

// checkTagBounds rejects configurations whose runtime tags cannot be packed.
// Tags pack (region<<16 | resume) into one word (§2.3): the region index and
// the buffer word offset each get 16 bits. CreateStub computes resume
// offsets up to K/WordSize at run time, and region indices run to the
// partition count, so either bound overflowing would silently corrupt tags
// — the truncated tag names a *different* region/offset and the runtime
// resumes in the wrong place. Both are hard errors at squash time instead.
func checkTagBounds(k, nregions int) error {
	if maxResume := k / isa.WordSize; maxResume > 0xFFFF {
		return fmt.Errorf("buffer bound K=%d allows resume offsets up to %d, exceeding the 16-bit tag field (max K is %d)",
			k, maxResume, 0xFFFF*isa.WordSize)
	}
	if nregions > 1<<16 {
		return fmt.Errorf("%d regions exceed the 16-bit tag field (max %d)", nregions, 1<<16)
	}
	return nil
}

// Squash rewrites a squeezed program: cold regions are removed from the
// code stream, compressed with the split-stream coder, and replaced by
// entry stubs that invoke the runtime decompressor.
//
// The input object must retain full symbol and relocation information and
// must not use the AT register (R28), which the rewriter reserves for entry
// stub linkage, following the Alpha convention that AT belongs to tools.
func Squash(obj *objfile.Object, counts profile.Counts, conf Config) (*Output, error) {
	return SquashObs(obj, counts, conf, nil)
}

// SquashObs is Squash with telemetry: pipeline stages record spans on
// rec's tracer and the run's totals land in rec's metrics registry. A
// nil rec degrades to plain Squash. The recorder deliberately lives
// outside Config — Config travels in squashd's wire protocol and keys
// its result cache, so attaching host-side state there would perturb
// both. Telemetry on or off, the output image is byte-identical; the
// equivalence tests compare digests to enforce that.
func SquashObs(obj *objfile.Object, counts profile.Counts, conf Config, rec *obs.Recorder) (*Output, error) {
	if conf.StubCapacity <= 0 {
		conf.StubCapacity = 16
	}
	root := rec.Span("squash",
		"theta", conf.Theta, "K", conf.Regions.K, "coder", conf.Coder, "workers", conf.Workers)
	defer root.End()

	sp := root.Child("cfg.decode")
	p, err := cfg.Build(obj, "main")
	if err != nil {
		return nil, fmt.Errorf("squash: %w", err)
	}
	if err := p.AttachProfile(counts); err != nil {
		return nil, fmt.Errorf("squash: %w", err)
	}
	if err := parallel.ForEach(len(p.Funcs), conf.Workers, func(fi int) error {
		for _, b := range p.Funcs[fi].Blocks {
			for _, in := range b.Insts {
				// System calls are exempt: setjmp/longjmp capture the whole
				// register file, including AT, but nothing observes AT's
				// value, so stub clobbers remain invisible.
				if !in.Raw && in.Format != isa.FormatPal && cfg.TouchesReg(in, isa.RegAT) {
					return fmt.Errorf("squash: block %s uses reserved register AT (r28)", b.Label)
				}
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	sp.End()

	stats := Stats{InputBytes: len(obj.Text) * isa.WordSize}

	sp = root.Child("region.select")
	cold := profile.IdentifyCold(p, conf.Theta)
	if conf.Unswitch {
		ust, err := unswitch.Run(p, func(b *cfg.Block) bool { return cold.Cold[b.Label] })
		if err != nil {
			return nil, fmt.Errorf("squash: %w", err)
		}
		stats.Unswitched = ust.Unswitched
		stats.TableBytesReclaimed = ust.TableBytesReclaimed
		cold = profile.IdentifyCold(p, conf.Theta)
	}

	conf.Regions.Workers = conf.Workers
	res, preds, err := regions.Partition(p, cold.Cold, conf.Regions)
	if err != nil {
		return nil, fmt.Errorf("squash: %w", err)
	}
	if err := checkTagBounds(conf.Regions.K, len(res.Regions)); err != nil {
		return nil, fmt.Errorf("squash: %w", err)
	}
	stats.ColdInsts = res.ColdInsts
	stats.CompressibleInsts = res.CompressibleInsts
	stats.TotalInsts = res.TotalInsts
	stats.RegionCount = len(res.Regions)
	stats.Excluded = res.Excluded
	sp.SetArg("regions", len(res.Regions))
	sp.SetArg("cold_insts", res.ColdInsts)
	sp.End()

	compressed := map[string]bool{}
	for l := range res.InRegion {
		compressed[l] = true
	}

	owner := map[string]string{} // block label -> owning function
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			owner[b.Label] = f.Name
		}
	}

	if conf.Interpret {
		// Interpreted code cannot be returned into natively; every call
		// must go through the stub machinery.
		conf.BufferSafe = false
	}
	sp = root.Child("buffersafe")
	var bs *buffersafe.Result
	if conf.BufferSafe {
		bs = buffersafe.AnalyzeWorkers(p, compressed, conf.Workers)
		safe, total := buffersafe.CallSiteStats(p, compressed, bs)
		stats.BufferSafeCalls, stats.CallsInRegions = safe, total
	} else {
		bs = &buffersafe.Result{Safe: map[string]bool{}}
		_, total := buffersafe.CallSiteStats(p, compressed, bs)
		stats.CallsInRegions = total
	}
	sp.End()
	safeCallee := func(label string) bool { return bs.IsSafe(owner[label]) }

	// §7 diagnostic: warn when a loop's back edge crosses a region
	// boundary (or leaves compressed code entirely), since repeated
	// decompression per iteration follows if the loop ever runs hot.
	for _, e := range p.BackEdges() {
		fromR, fromIn := res.InRegion[e.From]
		toR, toIn := res.InRegion[e.To]
		switch {
		case fromIn && toIn && fromR != toR:
			stats.LoopSplitWarnings = append(stats.LoopSplitWarnings,
				fmt.Sprintf("loop %s->%s split across regions %d and %d", e.From, e.To, fromR, toR))
		case fromIn != toIn:
			stats.LoopSplitWarnings = append(stats.LoopSplitWarnings,
				fmt.Sprintf("loop %s->%s half compressed (latch in region: %v, header in region: %v)",
					e.From, e.To, fromIn, toIn))
		}
	}

	enc := &encoder{
		conf:       conf,
		prog:       p,
		res:        res,
		preds:      preds,
		compressed: compressed,
		safeCallee: safeCallee,
		rec:        rec,
		span:       root,
	}
	out, err := enc.run(&stats)
	if err != nil {
		return nil, fmt.Errorf("squash: %w", err)
	}
	rec.Counter("squash_runs_total").Inc()
	rec.Counter("squash_regions_total").Add(uint64(out.Stats.RegionCount))
	rec.Counter("squash_input_bytes_total").Add(uint64(out.Stats.InputBytes))
	rec.Counter("squash_output_bytes_total").Add(uint64(out.Stats.SquashedBytes))
	return out, nil
}
