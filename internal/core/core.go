package core
