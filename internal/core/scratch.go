// Arena-style per-request scratch for the squash pipeline.
//
// Phase 3 of the encoder builds one final instruction sequence per region.
// The sequence lengths are known exactly once the layouts exist (every block
// instruction encodes to exactly one sequence entry, plus one entry per knit
// branch the layout inserted), so instead of growing one slice per region the
// encoder carves disjoint, exact-capacity subslices out of a single arena.
// The arena and its slice headers recycle through a sync.Pool, making the
// warm squashd request O(1) allocations for sequence building regardless of
// region count.
//
// Nothing reachable from Output aliases the arena: the sequences are
// consumed by coder training, compression, and metrics inside run() and the
// scratch is released when run() returns.
package core

import (
	"sync"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// SetPooling enables (the default) or disables every object pool on the
// squash path: the bit I/O and coder-scratch pools (which share the huffman
// package's switch) and the encoder's sequence arena. The produced images
// are byte-identical either way — pooling is deliberately a process-level
// switch, not a Config field, because Config travels in squashd's wire
// protocol and keys the result cache, and an allocation strategy must never
// partition cache entries.
func SetPooling(on bool) { huffman.SetPooling(on) }

// PoolingEnabled reports whether the squash-path pools are active.
func PoolingEnabled() bool { return huffman.PoolingEnabled() }

// encodeScratch is one request's sequence-building working set.
type encodeScratch struct {
	arena  []isa.Inst   // backing storage for every region's sequence
	seqs   [][]isa.Inst // per-region subslice headers, indexed by region ID
	counts []int        // per-region sequence lengths, indexed by region ID
}

var encodeScratchPool = sync.Pool{New: func() any { return new(encodeScratch) }}

func getEncodeScratch() *encodeScratch {
	if huffman.PoolingEnabled() {
		return encodeScratchPool.Get().(*encodeScratch)
	}
	return new(encodeScratch)
}

func putEncodeScratch(sc *encodeScratch) {
	if !huffman.PoolingEnabled() {
		return
	}
	// Drop the per-region headers so a retired, larger arena from a previous
	// request can't stay pinned through stale subslice pointers.
	for i := range sc.seqs {
		sc.seqs[i] = nil
	}
	encodeScratchPool.Put(sc)
}

// partition sizes the arena for total instructions across n regions and
// returns per-region sequence storage: seqs[id] is an empty slice whose
// capacity is exactly counts[id], and the subslices are disjoint, so
// parallel region builds append into private memory with no reallocation.
func (sc *encodeScratch) partition(counts []int) [][]isa.Inst {
	total := 0
	for _, c := range counts {
		total += c
	}
	if cap(sc.arena) < total {
		sc.arena = make([]isa.Inst, 0, total)
	}
	arena := sc.arena[:total]
	if cap(sc.seqs) < len(counts) {
		sc.seqs = make([][]isa.Inst, len(counts))
	}
	seqs := sc.seqs[:len(counts)]
	off := 0
	for id, c := range counts {
		seqs[id] = arena[off : off : off+c]
		off += c
	}
	return seqs
}

// seqCounts computes the exact sequence length of every region from its
// blocks and layout, into recycled storage.
func (sc *encodeScratch) seqCounts(e *encoder) []int {
	if cap(sc.counts) < len(e.res.Regions) {
		sc.counts = make([]int, len(e.res.Regions))
	}
	counts := sc.counts[:len(e.res.Regions)]
	for _, r := range e.res.Regions {
		n := 0
		for _, b := range r.Blocks {
			n += len(b.Insts)
		}
		counts[r.ID] = n + len(e.layouts[r.ID].inserted)
	}
	return counts
}
