package core

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/regions"
	"repro/internal/testprog"
	"repro/internal/vm"
)

func TestDifferentialFuzzSquash(t *testing.T) {
	inputs := [][]byte{
		[]byte(""), []byte("a"), []byte("squash me 123"), make([]byte, 200),
	}
	for i := range inputs[3] {
		inputs[3][i] = byte(37 * i)
	}
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(0); seed < int64(n); seed++ {
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		r := rand.New(rand.NewSource(seed * 31))
		profIn := inputs[r.Intn(len(inputs))]
		prof := vm.New(im, profIn)
		prof.EnableProfile()
		if err := prof.Run(); err != nil {
			t.Fatalf("seed %d: profile run: %v", seed, err)
		}

		conf := DefaultConfig()
		conf.Theta = []float64{0, 0.001, 0.5, 1}[r.Intn(4)]
		conf.Regions.K = []int{64, 96, 128, 512}[r.Intn(4)]
		conf.Regions.Pack = r.Intn(2) == 0
		conf.BufferSafe = r.Intn(2) == 0
		conf.MTF = r.Intn(4) == 0
		conf.CompileTimeRestoreStubs = r.Intn(4) == 0
		conf.Interpret = r.Intn(3) == 0
		if r.Intn(3) == 0 {
			conf.Regions.Strategy = regions.StrategyLoopAware
		}
		out, err := Squash(obj, prof.Profile, conf)
		if err != nil {
			t.Fatalf("seed %d: squash (%+v): %v", seed, conf, err)
		}
		rt, err := NewRuntime(out.Meta)
		if err != nil {
			t.Fatalf("seed %d: runtime: %v", seed, err)
		}
		for _, input := range inputs {
			base := vm.New(im, input)
			base.StackCheck = true
			if err := base.Run(); err != nil {
				t.Fatalf("seed %d: baseline: %v", seed, err)
			}
			sq := vm.New(out.Image, input)
			sq.StackCheck = true
			rt2, _ := NewRuntime(out.Meta)
			rt2.Install(sq)
			if err := sq.Run(); err != nil {
				t.Fatalf("seed %d conf %+v input %d: squashed run: %v", seed, conf, len(input), err)
			}
			if string(base.Output) != string(sq.Output) || base.Status != sq.Status {
				t.Fatalf("seed %d conf %+v: behaviour diverged", seed, conf)
			}
			for k := range base.SPTrace {
				if base.SPTrace[k] != sq.SPTrace[k] {
					t.Fatalf("seed %d: SP trace diverged at %d", seed, k)
				}
			}
		}
		_ = rt
	}
}
