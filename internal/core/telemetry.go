package core

import (
	"repro/internal/huffman"
	"repro/internal/obs"
	"repro/internal/vm"
)

// DecodeStats reports the region coder's decode-path counters (table hits,
// wide peeks, reference tree walks). Host-side telemetry only; the values
// differ with the fast paths on or off while the decoded bits do not.
func (rt *Runtime) DecodeStats() huffman.DecodeStats {
	return rt.comp.DecodeStats()
}

// PublishRunTelemetry folds one simulated run's counters into the metrics
// registry under the vm_*, rt_*, and huffman_* names. Either argument may
// be nil (as may reg), in which case the corresponding metrics are skipped.
// Publishing is read-only with respect to the machine and runtime, so it
// never perturbs the simulated observables.
func PublishRunTelemetry(reg *obs.Registry, m *vm.Machine, rt *Runtime) {
	if reg == nil {
		return
	}
	if m != nil {
		reg.Counter("vm_instructions_total").Add(m.Instructions)
		reg.Counter("vm_cycles_total").Add(m.Cycles)
		reg.Counter("vm_fastpath_steps_total").Add(m.FastSteps())
		reg.Counter("vm_fastpath_misses_total").Add(m.Telem.Predecodes)
		reg.Counter("vm_slow_dispatches_total").Add(m.Telem.SlowDispatches)
		reg.Counter("vm_slow_steps_total").Add(m.Telem.SlowSteps)
		reg.Counter("vm_icache_invalidated_words_total").Add(m.Telem.InvalidatedWords)
		if m.ICache != nil {
			reg.Counter("vm_icache_hits_total").Add(m.ICache.Hits)
			reg.Counter("vm_icache_misses_total").Add(m.ICache.Misses)
		}
	}
	if rt != nil {
		reg.Counter("rt_buffer_fills_total").Add(rt.Stats.Decompressions)
		reg.Counter("rt_buffer_evictions_total").Add(rt.Stats.Evictions)
		reg.Counter("rt_bits_read_total").Add(rt.Stats.BitsRead)
		reg.Counter("rt_insts_emitted_total").Add(rt.Stats.InstsEmitted)
		reg.Counter("rt_restore_stub_returns_total").Add(rt.Stats.RestoreReturns)
		reg.Counter("rt_stub_create_hits_total").Add(rt.Stats.CreateStubHits)
		reg.Counter("rt_stub_create_misses_total").Add(rt.Stats.CreateStubMisses)
		reg.Counter("rt_memo_hits_total").Add(rt.Telem.MemoHits)
		reg.Counter("rt_memo_fills_total").Add(rt.Telem.MemoFills)
		ds := rt.DecodeStats()
		reg.Counter("huffman_table_hits_total").Add(ds.TableHits)
		reg.Counter("huffman_wide_peeks_total").Add(ds.WidePeeks)
		reg.Counter("huffman_tree_decodes_total").Add(ds.TreeDecodes)
	}
}
