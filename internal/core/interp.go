package core

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vm"
)

// Interpret-in-place runtime (§8 alternative). The paper classifies
// compressed-program execution into two families: decompress-then-execute
// (squash's choice, smaller compressed form, needs the runtime buffer) and
// execute/interpret-without-decompression (Fraser & Proebsting [13],
// Proebsting [21]). This file implements the second family over the *same*
// compressed regions: instead of materializing a region into the buffer,
// the runtime decodes and executes its instructions one at a time at their
// *virtual* buffer addresses.
//
//   - Intra-region control flow stays virtual: branch targets inside the
//     buffer address range map back to instruction indices through a
//     per-region index (two bytes per instruction, charged to the
//     footprint).
//   - Calls leave the interpreter through the same CreateStub/restore-stub
//     machinery as decompression mode; a restore stub resumes
//     interpretation at its tag's offset rather than refilling a buffer.
//   - Every interpreted instruction pays a decode-and-dispatch cost
//     (vm.CostModel.InterpPerInst) on top of its own execution cost —
//     which is exactly the §8 trade-off: no buffer and no decompression
//     latency, but cold code runs slower every time it executes.
//
// Host-side, region decoding mirrors the buffer runtime's fast-path split
// (decompressAndJump): with the fast path on, a region is decoded once on
// first entry and the decoded instruction list is memoized in rt.imemo;
// with the fast path off, every entry re-decodes the region through the
// reference bit-at-a-time decoder. The simulated cost model cannot tell the
// difference — interpretation charges per *executed* instruction, never per
// decoded bit — so cycles, stats, and outputs are byte-identical either way.

// interpRegion is the decoded form of one region plus its offset index.
type interpRegion struct {
	insts []isa.Inst
	offs  []int32 // buffer word offset of each instruction
	// offIdx maps a buffer word offset to its instruction index, densely
	// (-1 marks offsets inside a two-word expanded call, which are not
	// instruction boundaries). It replaces a map so the per-branch lookup
	// in interpStep is an array load.
	offIdx []int32
}

// idxOf resolves a buffer word offset to an instruction index.
func (ir *interpRegion) idxOf(off int) (int, bool) {
	if off < 0 || off >= len(ir.offIdx) || ir.offIdx[off] < 0 {
		return 0, false
	}
	return int(ir.offIdx[off]), true
}

// interpState is the interpreter's current position.
type interpState struct {
	active bool
	region int
	idx    int
}

// interpPC is the parked program counter while interpreting: the word right
// after the decompressor's entry points, guaranteed inside the hook range.
func (rt *Runtime) interpPC() uint32 {
	return rt.meta.DecompAddr + NumEntryRegs*isa.WordSize
}

// decodeInterpRegion decodes one region through the stream decoder (the
// reference bit-at-a-time decoder when the fast path is off) and builds its
// offset index.
func (rt *Runtime) decodeInterpRegion(region int) (*interpRegion, error) {
	ir := &interpRegion{}
	pos := int32(1)
	_, err := rt.comp.Decompress(rt.meta.Blob, int(rt.meta.OffsetTable[region]), func(in isa.Inst) error {
		ir.insts = append(ir.insts, in)
		ir.offs = append(ir.offs, pos)
		if in.Op == isa.OpBSRX || in.Op == isa.OpJSRX {
			pos += 2
		} else {
			pos++
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: interpret mode: decoding region %d: %w", region, err)
	}
	ir.offIdx = make([]int32, pos)
	for i := range ir.offIdx {
		ir.offIdx[i] = -1
	}
	for i, off := range ir.offs {
		ir.offIdx[off] = int32(i)
	}
	return ir, nil
}

// enterInterpRegion returns region's decoded form: from the memo when the
// fast path is on (filling it on first entry), or decoded afresh on every
// entry when it is off — the interpret-mode analogue of the regionImage
// replay in decompressAndJump.
func (rt *Runtime) enterInterpRegion(region int) (*interpRegion, error) {
	if region >= len(rt.imemo) {
		return nil, fmt.Errorf("core: tag names region %d of %d", region, len(rt.imemo))
	}
	if ir := rt.imemo[region]; ir != nil && !rt.noFastPath {
		rt.Telem.MemoHits++
		return ir, nil
	}
	ir, err := rt.decodeInterpRegion(region)
	if err != nil {
		return nil, err
	}
	if !rt.noFastPath {
		rt.imemo[region] = ir
		rt.Telem.MemoFills++
	}
	return ir, nil
}

// inVirtualBuffer reports whether addr lies in the (reserved, unbacked)
// buffer address range used for virtual placement of interpreted code.
func (rt *Runtime) inVirtualBuffer(addr uint32) bool { return rt.inBuffer(addr) }

// startInterp positions the interpreter at a region offset and parks the PC.
func (rt *Runtime) startInterp(m *vm.Machine, region, offset int) error {
	ir, err := rt.enterInterpRegion(region)
	if err != nil {
		return err
	}
	idx, ok := ir.idxOf(offset)
	if !ok {
		return fmt.Errorf("core: interpret entry at region %d offset %d, which is not an instruction boundary", region, offset)
	}
	rt.icur = ir
	rt.interp = interpState{active: true, region: region, idx: idx}
	rt.Stats.InterpEntries++
	m.PC = rt.interpPC()
	return nil
}

// interpStep decodes and executes one instruction of the current region.
func (rt *Runtime) interpStep(m *vm.Machine) error {
	st := &rt.interp
	if !st.active {
		return fmt.Errorf("core: interpreter stepped while inactive (pc=%#x)", m.PC)
	}
	ir := rt.icur
	if ir == nil || st.idx >= len(ir.insts) {
		return fmt.Errorf("core: interpreter ran off the end of region %d", st.region)
	}
	in := ir.insts[st.idx]
	vpc := rt.meta.RtBufAddr + uint32(int(ir.offs[st.idx])*isa.WordSize)
	m.Cycles += m.Cost.InterpPerInst
	rt.Stats.InterpInsts++

	var target uint32
	switch in.Op {
	case isa.OpBSRX:
		// Expanded direct call: link through a restore stub whose tag
		// resumes interpretation right after the (virtual) two-word pair.
		resume := uint32(int(ir.offs[st.idx]) + 2)
		slotAddr, err := rt.allocStub(m, uint32(st.region)<<16|resume, in.RA)
		if err != nil {
			return err
		}
		m.Reg[in.RA] = int32(slotAddr)
		// The transfer branch is relative to the word after the pair.
		target = vpc + 2*isa.WordSize + uint32(in.Disp)*isa.WordSize
	case isa.OpJSRX:
		resume := uint32(int(ir.offs[st.idx]) + 2)
		slotAddr, err := rt.allocStub(m, uint32(st.region)<<16|resume, in.RA)
		if err != nil {
			return err
		}
		m.Reg[in.RA] = int32(slotAddr)
		target = uint32(m.Reg[in.RB]) &^ 3
	default:
		next, err := m.ExecInst(in, vpc)
		if err != nil {
			return err
		}
		if m.Halted {
			return nil
		}
		target = next
	}

	if rt.inVirtualBuffer(target) {
		// Keep interpreting at the virtual target address.
		off := int(target-rt.meta.RtBufAddr) / isa.WordSize
		idx, ok := ir.idxOf(off)
		if !ok {
			return fmt.Errorf("core: virtual branch to non-boundary offset %d in region %d", off, st.region)
		}
		st.idx = idx
		m.PC = rt.interpPC()
		return nil
	}
	// Transfer control to a real (non-virtual) address.
	st.active = false
	m.PC = target
	return nil
}

// interpEnter handles hook entries in interpret mode; the hook range covers
// the decompressor entries, the restore-stub area, and the virtual buffer.
func (rt *Runtime) interpEnter(m *vm.Machine) error {
	pc := m.PC
	switch {
	case pc == rt.interpPC():
		return rt.interpStep(m)
	case pc >= rt.meta.DecompAddr && pc < rt.meta.DecompAddr+NumEntryRegs*isa.WordSize:
		// A stub called a decompressor entry point: the return-address
		// register holds the tag location (entry stubs and compile-time
		// restore stubs live in never-compressed code).
		reg := (pc - rt.meta.DecompAddr) / isa.WordSize
		retaddr := uint32(m.Reg[reg])
		tag, err := m.ReadWord(retaddr)
		if err != nil {
			return fmt.Errorf("core: cannot read entry tag: %w", err)
		}
		rt.Stats.Decompressions++ // region entry event, for parity of stats
		return rt.startInterp(m, int(tag>>16), int(tag&0xFFFF))
	case rt.inStubArea(pc):
		// A callee returned directly into a restore stub slot: emulate the
		// stub without executing its materialized words.
		idx := int(pc-rt.meta.StubAreaAddr) / (StubSlotWords * isa.WordSize)
		if idx < 0 || idx >= len(rt.slots) || !rt.slots[idx].live {
			return fmt.Errorf("core: return through dead restore stub at %#x", pc)
		}
		slot := &rt.slots[idx]
		tag := slot.tag
		if rt.Trace != nil {
			rt.Trace(fmt.Sprintf("restore slot=%d region=%d resume=%d count=%d", idx, tag>>16, tag&0xFFFF, slot.count))
		}
		slot.count--
		rt.Stats.RestoreReturns++
		m.Cycles += m.Cost.RestoreDispatch
		if slot.count == 0 {
			slot.live = false
			delete(rt.byTag, tag)
			rt.Stats.LiveStubs--
		} else if err := m.WriteWord(rt.slotAddr(idx)+8, uint32(slot.count)); err != nil {
			return err
		}
		return rt.startInterp(m, int(tag>>16), int(tag&0xFFFF))
	case rt.inVirtualBuffer(pc):
		// Direct control transfer to a virtual address (e.g., a stub's
		// transfer branch): resume interpretation there.
		if !rt.interpActiveRegionContains(pc) {
			return fmt.Errorf("core: control reached virtual address %#x with no active region", pc)
		}
		off := int(pc-rt.meta.RtBufAddr) / isa.WordSize
		return rt.startInterpAtOffset(m, off)
	default:
		return fmt.Errorf("core: control reached interpreter-reserved address %#x", pc)
	}
}

// interpActiveRegionContains reports whether the interpreter has a current
// region that owns the given virtual address.
func (rt *Runtime) interpActiveRegionContains(pc uint32) bool {
	if rt.icur == nil {
		return false
	}
	off := int(pc-rt.meta.RtBufAddr) / isa.WordSize
	_, ok := rt.icur.idxOf(off)
	return ok
}

// startInterpAtOffset resumes the current region at a virtual offset.
func (rt *Runtime) startInterpAtOffset(m *vm.Machine, off int) error {
	idx, ok := rt.icur.idxOf(off)
	if !ok {
		return fmt.Errorf("core: virtual resume at non-boundary offset %d", off)
	}
	rt.interp.active = true
	rt.interp.idx = idx
	m.PC = rt.interpPC()
	return nil
}
