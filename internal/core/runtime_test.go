package core

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/vm"
)

// squashTestProgram builds a squashed image of the shared test program with
// a small buffer so several regions form.
func squashTestProgram(t *testing.T, mod func(*Config)) *Output {
	t.Helper()
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Regions.K = 96
	conf.Theta = 1.0
	if mod != nil {
		mod(&conf)
	}
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRuntimeRejectsCorruptBlob(t *testing.T) {
	out := squashTestProgram(t, nil)
	// Flip bits throughout the blob; every run must either complete with
	// correct-length output or fail cleanly — never hang or panic.
	for i := 0; i < len(out.Meta.Blob); i += 5 {
		meta := *out.Meta
		meta.Blob = append([]byte(nil), out.Meta.Blob...)
		meta.Blob[i] ^= 0x55
		rt, err := NewRuntime(&meta)
		if err != nil {
			continue
		}
		m := vm.New(out.Image, timingInput)
		m.MaxInstructions = 3_000_000
		rt.Install(m)
		_ = m.Run() // error or miscomputation are both acceptable: no hang
	}
}

func TestRuntimeRejectsCorruptTables(t *testing.T) {
	out := squashTestProgram(t, nil)
	meta := *out.Meta
	meta.Tables = append([]byte(nil), out.Meta.Tables...)
	meta.Tables[len(meta.Tables)/2] ^= 0xFF
	if _, err := NewRuntime(&meta); err == nil {
		// Some corruptions still deserialize; then the run must not hang.
		rt, _ := NewRuntime(&meta)
		m := vm.New(out.Image, timingInput)
		m.MaxInstructions = 3_000_000
		rt.Install(m)
		_ = m.Run()
	}
}

func TestRuntimeBadTagOffset(t *testing.T) {
	out := squashTestProgram(t, nil)
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, timingInput)
	rt.Install(m)
	// Force a bogus region index by corrupting the first entry stub's tag
	// word in memory (the word after the first bsr into the decompressor).
	lo, _ := rt.Range()
	found := false
	for a := uint32(0x1000); a < lo && !found; a += 4 {
		w, err := m.ReadWord(a)
		if err != nil {
			break
		}
		in := isa.Decode(w)
		if in.Op == isa.OpBSR && in.RA == isa.RegAT {
			if err := m.WriteWord(a+4, 0xFFFF0001); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Skip("no entry stub found before decompressor")
	}
	m.MaxInstructions = 3_000_000
	err = m.Run()
	if err == nil || !strings.Contains(err.Error(), "region") {
		t.Fatalf("corrupted tag produced %v, want region-range error", err)
	}
}

func TestRuntimeStubExhaustion(t *testing.T) {
	// Capacity 1 with recursive cold code requires only one slot (the
	// recursion shares a call site); capacity 0... is not constructible via
	// config (clamped), so exercise exhaustion by a tiny capacity and a
	// program with more distinct simultaneous call sites.
	obj, _, counts := prepare(t, testProgram, profInput)
	conf := DefaultConfig()
	conf.Regions.K = 96
	conf.Theta = 1.0
	conf.StubCapacity = 1
	out, err := Squash(obj, counts, conf)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, timingInput)
	m.MaxInstructions = 20_000_000
	rt.Install(m)
	if err := m.Run(); err != nil {
		if !strings.Contains(err.Error(), "exhausted") {
			t.Fatalf("unexpected failure: %v", err)
		}
		return // clean diagnosis
	}
	// If one slot sufficed, the run must still be correct.
	if rt.Stats.LiveStubs != 0 {
		t.Fatal("stub leak")
	}
}

func TestRuntimeEnterBodyTraps(t *testing.T) {
	out := squashTestProgram(t, nil)
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, nil)
	rt.Install(m)
	lo, hi := rt.Range()
	if hi-lo != DecompWords*4 {
		t.Fatalf("hook range %d bytes", hi-lo)
	}
	// Jump straight into the decompressor body (past the entry points).
	m.PC = lo + NumEntryRegs*4 + 8
	if err := m.Step(); err == nil || !strings.Contains(err.Error(), "body") {
		t.Fatalf("body entry gave %v", err)
	}
}

func TestUnmarshalMetaGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("SQM1"),
		[]byte("SQM1\x01\x02"),
	}
	for _, b := range cases {
		if _, err := UnmarshalMeta(b); err == nil {
			t.Errorf("UnmarshalMeta(%q) accepted", b)
		}
	}
	// Round trip sanity with an empty-but-valid meta.
	m := &Meta{DecompAddr: 0x1000, RtBufAddr: 0x2000, K: 512, StubCapacity: 4}
	blob, err := m.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMeta(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != 512 || back.StubCapacity != 4 {
		t.Fatalf("round trip: %+v", back)
	}
	// Truncations of a valid meta must all be rejected.
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalMeta(blob[:n]); err == nil {
			t.Errorf("truncated meta (%d bytes) accepted", n)
		}
	}
}

func TestRuntimeCostCharging(t *testing.T) {
	out := squashTestProgram(t, nil)
	baseRun := func(scale uint64) uint64 {
		rt, err := NewRuntime(out.Meta)
		if err != nil {
			t.Fatal(err)
		}
		m := vm.New(out.Image, timingInput)
		m.Cost.DecompPerBit *= scale
		m.Cost.DecompPerInst *= scale
		rt.Install(m)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return m.Cycles
	}
	c1 := baseRun(1)
	c4 := baseRun(4)
	if c4 <= c1 {
		t.Fatalf("scaling decompression cost did not raise cycles: %d vs %d", c1, c4)
	}
}

func TestRuntimeStatsConsistency(t *testing.T) {
	out := squashTestProgram(t, nil)
	rt, err := NewRuntime(out.Meta)
	if err != nil {
		t.Fatal(err)
	}
	m := vm.New(out.Image, timingInput)
	rt.Install(m)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats
	if st.RestoreReturns != st.CreateStubHits+st.CreateStubMisses {
		t.Errorf("restore returns %d != hits %d + misses %d (no longjmp in this program)",
			st.RestoreReturns, st.CreateStubHits, st.CreateStubMisses)
	}
	if st.BitsRead == 0 || st.InstsEmitted == 0 || st.Decompressions == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	if st.MaxLiveStubs < 1 {
		t.Error("max live stubs not tracked")
	}
}
