package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/objfile"
	"repro/internal/regions"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// FuzzSquash is the native fuzz entry for `go test -fuzz=FuzzSquash`: the
// fuzzer picks a program seed, a config word, and a run input, and the
// target checks that the squashed binary reproduces the baseline behaviour.
// The CI fuzz-smoke job runs it for a short fixed budget.
func FuzzSquash(f *testing.F) {
	f.Add(int64(0), uint16(0), []byte(""))
	f.Add(int64(3), uint16(0x5a5a), []byte("squash me 123"))
	f.Add(int64(17), uint16(0xffff), []byte{0, 1, 2, 3, 250, 251, 252, 253})
	f.Fuzz(func(t *testing.T, seed int64, confBits uint16, input []byte) {
		if len(input) > 256 {
			input = input[:256]
		}
		src := testprog.Random(seed)
		obj, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v", seed, err)
		}
		im, err := objfile.Link("main", obj)
		if err != nil {
			t.Fatalf("seed %d: link: %v", seed, err)
		}
		prof := vm.New(im, input)
		prof.EnableProfile()
		if err := prof.Run(); err != nil {
			t.Fatalf("seed %d: profile run: %v", seed, err)
		}

		conf := DefaultConfig()
		conf.Theta = []float64{0, 0.001, 0.5, 1}[confBits&3]
		conf.Regions.K = []int{64, 96, 128, 512}[confBits>>2&3]
		conf.Regions.Pack = confBits>>4&1 == 0
		conf.BufferSafe = confBits>>5&1 == 0
		conf.MTF = confBits>>6&1 == 1
		conf.CompileTimeRestoreStubs = confBits>>7&1 == 1
		conf.Interpret = confBits>>8&1 == 1
		if confBits>>9&1 == 1 {
			conf.Regions.Strategy = regions.StrategyLoopAware
		}
		conf.Workers = []int{1, 0, 2, 8}[confBits>>10&3]
		out, err := Squash(obj, prof.Profile, conf)
		if err != nil {
			t.Fatalf("seed %d: squash (%+v): %v", seed, conf, err)
		}

		base := vm.New(im, input)
		base.StackCheck = true
		if err := base.Run(); err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		rt, err := NewRuntime(out.Meta)
		if err != nil {
			t.Fatalf("seed %d: runtime: %v", seed, err)
		}
		sq := vm.New(out.Image, input)
		sq.StackCheck = true
		rt.Install(sq)
		if err := sq.Run(); err != nil {
			t.Fatalf("seed %d conf %+v: squashed run: %v", seed, conf, err)
		}
		if string(base.Output) != string(sq.Output) || base.Status != sq.Status {
			t.Fatalf("seed %d conf %+v: behaviour diverged", seed, conf)
		}
	})
}
