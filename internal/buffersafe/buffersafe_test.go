package buffersafe

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
)

func build(t *testing.T, src string) *cfg.Program {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const program = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, warm
        bsr  ra, cold1
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func warm              ; calls leaf only: buffer-safe
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, leaf
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func leaf              ; pure leaf: buffer-safe
        add  a0, 1, v0
        ret
        .func cold1             ; compressed itself: unsafe
        add  a0, 2, v0
        ret
        .func caller_of_cold    ; reaches cold1: unsafe
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, cold1
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func indirecty         ; unknown indirect call: unsafe
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        ldw  pv, 0(sp)
        jsr  ra, (pv)
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
`

func TestAnalyze(t *testing.T) {
	p := build(t, program)
	compressed := map[string]bool{"cold1": true}
	r := Analyze(p, compressed)
	want := map[string]bool{
		"main":           false, // calls cold1
		"warm":           true,
		"leaf":           true,
		"cold1":          false,
		"caller_of_cold": false,
		"indirecty":      false,
	}
	for fn, safe := range want {
		if r.IsSafe(fn) != safe {
			t.Errorf("IsSafe(%s) = %v, want %v", fn, r.IsSafe(fn), safe)
		}
	}
	if r.SafeCount() != 2 {
		t.Errorf("SafeCount = %d, want 2", r.SafeCount())
	}
}

func TestUnknownFunctionUnsafe(t *testing.T) {
	p := build(t, program)
	r := Analyze(p, nil)
	if r.IsSafe("nonexistent") {
		t.Error("unknown function reported safe")
	}
}

func TestNoCompressionAllSafeExceptIndirect(t *testing.T) {
	p := build(t, program)
	r := Analyze(p, nil)
	for _, fn := range []string{"main", "warm", "leaf", "cold1", "caller_of_cold"} {
		if !r.IsSafe(fn) {
			t.Errorf("with nothing compressed, %s should be safe", fn)
		}
	}
	if r.IsSafe("indirecty") {
		t.Error("function with unknown indirect call must stay unsafe")
	}
}

func TestCallSiteStats(t *testing.T) {
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, coldcaller
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func coldcaller        ; compressed; calls one safe + one unsafe
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, safeleaf
        bsr  ra, unsafecold
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func safeleaf
        add  a0, 1, v0
        ret
        .func unsafecold
        add  a0, 2, v0
        ret
`
	p := build(t, src)
	compressed := map[string]bool{"coldcaller": true, "unsafecold": true}
	r := Analyze(p, compressed)
	safe, total := CallSiteStats(p, compressed, r)
	if total != 2 || safe != 1 {
		t.Fatalf("CallSiteStats = %d/%d, want 1/2", safe, total)
	}
}
