// Package buffersafe implements the paper's buffer-safe function analysis
// (§6.1). A function is buffer-safe if neither it nor anything it can call
// or branch to will invoke the decompressor. A call from compressed code to
// a buffer-safe callee can be left unchanged: the runtime buffer cannot be
// overwritten during the callee's execution, so no restore stub and no
// extra buffer instruction are needed, and no re-decompression of the
// caller happens on return.
//
// The analysis is the paper's straightforward iterative one: seed the
// not-buffer-safe set with every function that owns a compressed block or
// contains an indirect call with unknown targets, then propagate backwards
// along call and branch edges until a fixed point.
package buffersafe

import (
	"repro/internal/cfg"
	"repro/internal/parallel"
)

// Result maps function names to buffer-safety.
type Result struct {
	Safe map[string]bool
}

// IsSafe reports whether the named function is buffer-safe; unknown names
// are unsafe.
func (r *Result) IsSafe(fn string) bool { return r.Safe[fn] }

// SafeCount reports how many functions are buffer-safe.
func (r *Result) SafeCount() int {
	n := 0
	for _, s := range r.Safe {
		if s {
			n++
		}
	}
	return n
}

// Analyze computes buffer safety for every function. compressed maps block
// labels chosen for compression; addressTaken marks functions whose address
// escapes (they may be called from anywhere, including compressed code, but
// that does not make them unsafe by itself — only being unable to enumerate
// *their* callees does).
func Analyze(p *cfg.Program, compressed map[string]bool) *Result {
	return AnalyzeWorkers(p, compressed, 1)
}

// funcScan is the per-function slice of the call graph, computed
// independently per function and merged in function order.
type funcScan struct {
	callees            map[string]bool
	hasUnknownIndirect bool
	ownsCompressed     bool
}

// AnalyzeWorkers is Analyze with the per-function call-graph scan fanned
// out over the given worker count (<= 0 means one per CPU). Each function's
// scan touches only that function's blocks, and the merged graph is a set
// union, so the result is identical at any worker count.
func AnalyzeWorkers(p *cfg.Program, compressed map[string]bool, workers int) *Result {
	owner := map[string]string{} // block label -> function name
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			owner[b.Label] = f.Name
		}
	}

	// Call graph and "branches into" edges, function-level.
	scans, _ := parallel.Map(len(p.Funcs), workers, func(fi int) (funcScan, error) {
		f := p.Funcs[fi]
		s := funcScan{callees: map[string]bool{}}
		for _, b := range f.Blocks {
			for _, c := range b.Calls() {
				if c.Callee == "" {
					s.hasUnknownIndirect = true
					continue
				}
				s.callees[owner[c.Callee]] = true
			}
			succs, known := b.Succs()
			if !known {
				s.hasUnknownIndirect = true
			}
			for _, succ := range succs {
				if o := owner[succ]; o != f.Name {
					// Inter-function branch (possible after rewriting).
					s.callees[o] = true
				}
			}
			if compressed[b.Label] {
				s.ownsCompressed = true
			}
		}
		return s, nil
	})
	callees := map[string]map[string]bool{} // caller fn -> callee fns
	unsafe := map[string]bool{}
	for fi, f := range p.Funcs {
		callees[f.Name] = scans[fi].callees
		if scans[fi].hasUnknownIndirect || scans[fi].ownsCompressed {
			unsafe[f.Name] = true
		}
	}

	// Propagate: a function that can reach an unsafe function is unsafe.
	for changed := true; changed; {
		changed = false
		for _, f := range p.Funcs {
			if unsafe[f.Name] {
				continue
			}
			for callee := range callees[f.Name] {
				if unsafe[callee] {
					unsafe[f.Name] = true
					changed = true
					break
				}
			}
		}
	}

	res := &Result{Safe: map[string]bool{}}
	for _, f := range p.Funcs {
		res.Safe[f.Name] = !unsafe[f.Name]
	}
	return res
}

// CallSiteStats reports, over all call sites inside compressed blocks, how
// many have buffer-safe callees — the calls §6.1's optimization leaves
// unchanged. This is the statistic the paper summarizes as the fraction of
// buffer-safe callees among compressible regions' calls (≈12.5% on average
// for its benchmark suite).
func CallSiteStats(p *cfg.Program, compressed map[string]bool, r *Result) (safeCalls, totalCalls int) {
	owner := map[string]string{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			owner[b.Label] = f.Name
		}
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if !compressed[b.Label] {
				continue
			}
			for _, c := range b.Calls() {
				totalCalls++
				if c.Callee != "" && r.IsSafe(owner[c.Callee]) {
					safeCalls++
				}
			}
		}
	}
	return safeCalls, totalCalls
}
