package cluster

import (
	"time"

	"repro/internal/serve"
)

// healthLoop probes every backend on a fixed interval until Stop. The
// first round runs immediately so the admin plane has per-backend stats
// (and a dead backend is discovered) within CheckTimeout of startup
// rather than a full interval later.
func (r *Router) healthLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.CheckInterval)
	defer t.Stop()
	r.probeAll()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll checks every backend concurrently — one stuck backend must not
// delay the others' probes — and returns when the round completes.
func (r *Router) probeAll() {
	done := make(chan struct{}, len(r.backends))
	for _, b := range r.backends {
		go func(b *Backend) {
			r.probe(b)
			done <- struct{}{}
		}(b)
	}
	for range r.backends {
		<-done
	}
}

// probe runs one health check — an OpStats exchange bounded by
// CheckTimeout — and folds the outcome into the backend's state: success
// resets the failure streak (reviving a down backend) and refreshes the
// stored stats snapshot; failure counts toward the down threshold.
// Draining and down backends are probed like any other, so drain state
// tracks real health and a recovered backend rejoins without operator
// action. Returns the backend's fresh snapshot when the probe succeeded.
func (r *Router) probe(b *Backend) (*serve.Snapshot, error) {
	c, err := b.pool.Get()
	if err != nil {
		r.noteFailed(b, err)
		return nil, err
	}
	if r.cfg.CheckTimeout > 0 {
		c.SetDeadline(time.Now().Add(r.cfg.CheckTimeout))
	}
	resp, err := c.Do(&serve.Request{Op: serve.OpStats})
	if err != nil {
		c.Close()
		r.noteFailed(b, err)
		return nil, err
	}
	c.SetDeadline(time.Time{})
	b.pool.Put(c)
	if b.noteSuccess() {
		r.logf("backend %s up (probe recovered)", b.Addr)
	}
	b.recordProbe(time.Now(), resp.Server)
	return resp.Server, nil
}

// noteFailed records a failed probe or forward and logs the up→down
// transition when the consecutive-failure threshold is crossed.
func (r *Router) noteFailed(b *Backend, err error) {
	if b.noteFailure(r.cfg.FailAfter) {
		r.logf("backend %s down after %d consecutive failures: %v", b.Addr, r.cfg.FailAfter, err)
	}
}
