package cluster

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/objfile"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/testprog"
	"repro/internal/vm"
)

// buildWorkload assembles a random test program, profiles it, and returns
// the serialized object and profile plus the byte-exact image the
// one-shot path produces — the identity target every routed response must
// hit.
func buildWorkload(t *testing.T, seed int64, conf core.Config) (objBytes, profBytes, wantImage []byte) {
	t.Helper()
	src := testprog.Random(seed)
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	im, err := objfile.Link("main", obj)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	m := vm.New(im, []byte("serve-mode determinism input"))
	m.EnableProfile()
	if err := m.Run(); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	var ob, pb bytes.Buffer
	if _, err := obj.WriteTo(&ob); err != nil {
		t.Fatalf("serialize object: %v", err)
	}
	if _, err := profile.Counts(m.Profile).WriteTo(&pb); err != nil {
		t.Fatalf("serialize profile: %v", err)
	}
	out, err := core.Squash(obj, m.Profile, conf)
	if err != nil {
		t.Fatalf("one-shot squash: %v", err)
	}
	var img bytes.Buffer
	if _, err := out.Image.WriteTo(&img); err != nil {
		t.Fatalf("serialize image: %v", err)
	}
	return ob.Bytes(), pb.Bytes(), img.Bytes()
}

// startDaemon runs a squash daemon (or, with opts.Handler set, a router
// front) on a Unix socket and returns its address plus a shutdown func.
func startDaemon(t *testing.T, name string, opts serve.Options) (string, func()) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	s := serve.NewServer(opts)
	addr := "unix:" + filepath.Join(t.TempDir(), name+".sock")
	ln, err := serve.Listen(addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown %s: %v", name, err)
		}
		<-done
	}
	return addr, stop
}

// startCluster runs n squashd backends plus a router in front, and
// returns the router's client-facing address, the Router, and the
// backends' individual stop funcs (so tests can kill one mid-stream).
func startCluster(t *testing.T, n int, cfg Config) (addr string, r *Router, backendStops []func(), stop func()) {
	t.Helper()
	for i := 0; i < n; i++ {
		a, s := startDaemon(t, fmt.Sprintf("backend%d", i), serve.Options{Workers: 2})
		cfg.Backends = append(cfg.Backends, a)
		backendStops = append(backendStops, s)
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatalf("router: %v", err)
	}
	r.Start()
	addr, frontStop := startDaemon(t, "router", serve.Options{Handler: r.Handle, Logf: t.Logf})
	stopped := make([]bool, n)
	stop = func() {
		frontStop()
		r.Stop()
		for i, s := range backendStops {
			if !stopped[i] {
				s()
			}
		}
	}
	// Wrap each backend stop so the cluster-level stop skips ones a test
	// already killed.
	for i := range backendStops {
		i, inner := i, backendStops[i]
		backendStops[i] = func() {
			if !stopped[i] {
				stopped[i] = true
				inner()
			}
		}
	}
	return addr, r, backendStops, stop
}

// TestRendezvousStability: removing a backend moves only the keys it
// owned (every other key keeps its first pick), and adding one steals
// only the ~1/N of keys it now wins — the property that keeps per-backend
// result caches warm across fleet changes.
func TestRendezvousStability(t *testing.T) {
	mk := func(addrs ...string) []*Backend {
		out := make([]*Backend, len(addrs))
		for i, a := range addrs {
			out[i] = &Backend{Addr: a, hashSeed: fnv64a(a)}
		}
		return out
	}
	addrs := make([]string, 10)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("tcp:10.0.0.%d:7777", i)
	}
	full := mk(addrs...)
	var pick hashPicker

	const keys = 2000
	key := func(i int) [32]byte {
		var k [32]byte
		copy(k[:], fmt.Sprintf("key-%d", i))
		return k
	}
	first := make([]string, keys)
	for i := 0; i < keys; i++ {
		first[i] = pick.rank(key(i), full, nil)[0].Addr
	}

	// Distribution sanity: every backend owns a non-trivial share.
	owned := map[string]int{}
	for _, a := range first {
		owned[a]++
	}
	for _, a := range addrs {
		if owned[a] < keys/len(addrs)/3 {
			t.Fatalf("backend %s owns only %d of %d keys — hash is badly skewed", a, owned[a], keys)
		}
	}

	// Remove backend 3: its keys move to their second choice, every other
	// key keeps its first pick.
	without := mk(append(append([]string{}, addrs[:3]...), addrs[4:]...)...)
	for i := 0; i < keys; i++ {
		got := pick.rank(key(i), without, nil)[0].Addr
		if first[i] == addrs[3] {
			if got == addrs[3] {
				t.Fatalf("key %d still maps to the removed backend", i)
			}
			if want := pick.rank(key(i), full, nil)[1].Addr; got != want {
				t.Fatalf("key %d fell to %s, want its second choice %s", i, got, want)
			}
		} else if got != first[i] {
			t.Fatalf("key %d moved from %s to %s though its backend never left", i, first[i], got)
		}
	}

	// Add an 11th backend: only the keys it now wins move, all to it, and
	// the moved share is ~1/11.
	grown := mk(append(append([]string{}, addrs...), "tcp:10.0.0.10:7777")...)
	moved := 0
	for i := 0; i < keys; i++ {
		got := pick.rank(key(i), grown, nil)[0].Addr
		if got != first[i] {
			if got != "tcp:10.0.0.10:7777" {
				t.Fatalf("key %d moved to %s, not the new backend", i, got)
			}
			moved++
		}
	}
	frac := float64(moved) / keys
	if frac < 0.02 || frac > 0.25 {
		t.Fatalf("adding 1 of 11 backends moved %.1f%% of keys, want ~%.1f%%", frac*100, 100.0/11)
	}
}

// TestRouterByteIdentity: every routing policy, on both wire protocols,
// returns images byte-identical to the one-shot path — through single
// requests and through batches with duplicates and a per-item error.
func TestRouterByteIdentity(t *testing.T) {
	conf := core.DefaultConfig()
	obj1, prof1, want1 := buildWorkload(t, 3, conf)
	obj2, prof2, want2 := buildWorkload(t, 11, conf)

	for _, policy := range []string{PolicyHash, PolicyLeastConn, PolicyOrdered} {
		t.Run(policy, func(t *testing.T) {
			addr, _, _, stop := startCluster(t, 3, Config{Policy: policy})
			defer stop()
			for _, proto := range []int{1, 2} {
				c, err := serve.DialClientProto(addr, proto)
				if err != nil {
					t.Fatalf("dial v%d: %v", proto, err)
				}
				// Singles, twice each: second pass exercises backend cache
				// hits through the router.
				for pass := 0; pass < 2; pass++ {
					for _, w := range []struct{ obj, prof, want []byte }{
						{obj1, prof1, want1}, {obj2, prof2, want2},
					} {
						resp, err := c.Do(&serve.Request{Op: serve.OpSquash, Obj: w.obj, Profile: w.prof})
						if err != nil {
							t.Fatalf("v%d do: %v", proto, err)
						}
						if !resp.OK {
							t.Fatalf("v%d squash failed: %s", proto, resp.Err)
						}
						if !bytes.Equal(resp.Image, w.want) {
							t.Fatalf("v%d pass %d: routed image differs from one-shot output", proto, pass)
						}
					}
				}
				// A batch with a duplicate and a broken item: identity per
				// item, dedup marking intact, error isolated to its index.
				resp, err := c.Do(&serve.Request{Op: serve.OpBatch, Items: []serve.BatchItem{
					{Obj: obj1, Profile: prof1},
					{Obj: obj2, Profile: prof2},
					{Obj: obj1, Profile: prof1},
					{Obj: []byte("garbage"), Profile: prof1},
				}})
				if err != nil {
					t.Fatalf("v%d batch: %v", proto, err)
				}
				if !resp.OK || len(resp.Results) != 4 {
					t.Fatalf("v%d batch response: ok=%v results=%d err=%q", proto, resp.OK, len(resp.Results), resp.Err)
				}
				for i, want := range [][]byte{want1, want2, want1} {
					if !resp.Results[i].OK || !bytes.Equal(resp.Results[i].Image, want) {
						t.Fatalf("v%d batch item %d: ok=%v, image identity=%v", proto, i,
							resp.Results[i].OK, bytes.Equal(resp.Results[i].Image, want))
					}
				}
				if !resp.Results[2].Shared {
					t.Errorf("v%d: within-batch duplicate lost its Shared mark across the split", proto)
				}
				if resp.Results[3].OK || resp.Results[3].Err == "" {
					t.Fatalf("v%d: malformed item 3 did not fail in isolation: %+v", proto, resp.Results[3])
				}
				c.Close()
			}
		})
	}
}

// TestRouterFailover: killing a backend mid-stream produces zero
// client-visible errors — requests re-route to the next-ranked live
// backend and the answers stay byte-identical throughout.
func TestRouterFailover(t *testing.T) {
	conf := core.DefaultConfig()
	obj1, prof1, want1 := buildWorkload(t, 3, conf)
	obj2, prof2, want2 := buildWorkload(t, 11, conf)

	addr, r, backendStops, stop := startCluster(t, 3, Config{
		Policy:        PolicyHash,
		CheckInterval: 50 * time.Millisecond,
		CheckTimeout:  time.Second,
		FailAfter:     2,
	})
	defer stop()

	c, err := serve.DialClient(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	do := func(i int) {
		t.Helper()
		w := []struct{ obj, prof, want []byte }{{obj1, prof1, want1}, {obj2, prof2, want2}}[i%2]
		resp, err := c.Do(&serve.Request{Op: serve.OpSquash, Obj: w.obj, Profile: w.prof})
		if err != nil {
			t.Fatalf("request %d: transport error surfaced to the client: %v", i, err)
		}
		if !resp.OK {
			t.Fatalf("request %d: client-visible error: %s", i, resp.Err)
		}
		if !bytes.Equal(resp.Image, w.want) {
			t.Fatalf("request %d: image diverged from one-shot output after failover", i)
		}
	}

	for i := 0; i < 10; i++ {
		do(i)
	}
	// Kill one backend mid-stream. Both keys may or may not live on it —
	// either way every later request must succeed via re-routing.
	backendStops[0]()
	for i := 10; i < 40; i++ {
		do(i)
	}
	// The health checker must have noticed by now (request-path failures
	// count toward the threshold too).
	deadline := time.Now().Add(5 * time.Second)
	for {
		cs := r.clusterSnapshot()
		if cs.Backends[0].State == StateDown {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backend 0 still %q long after being killed", cs.Backends[0].State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Batches keep working too, with the dead backend's shards re-routed.
	resp, err := c.Do(&serve.Request{Op: serve.OpBatch, Items: []serve.BatchItem{
		{Obj: obj1, Profile: prof1}, {Obj: obj2, Profile: prof2},
	}})
	if err != nil || !resp.OK {
		t.Fatalf("batch after kill: err=%v resp.Err=%q", err, respErr(resp))
	}
	for i, want := range [][]byte{want1, want2} {
		if !resp.Results[i].OK || !bytes.Equal(resp.Results[i].Image, want) {
			t.Fatalf("batch item %d wrong after failover: ok=%v err=%q", i, resp.Results[i].OK, resp.Results[i].Err)
		}
	}
}

func respErr(r *serve.Response) string {
	if r == nil {
		return "<nil response>"
	}
	return r.Err
}

// TestRouterAdminPlane: drain/undrain steer traffic, the cluster
// snapshot tracks state, and merged stats sum across backends.
func TestRouterAdminPlane(t *testing.T) {
	conf := core.DefaultConfig()
	obj, prof, want := buildWorkload(t, 7, conf)

	addr, r, _, stop := startCluster(t, 2, Config{Policy: PolicyOrdered})
	defer stop()

	c, err := serve.DialClient(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	// Ordered policy: all traffic lands on backend 0.
	for i := 0; i < 3; i++ {
		resp, err := c.Do(&serve.Request{Op: serve.OpSquash, Obj: obj, Profile: prof})
		if err != nil || !resp.OK || !bytes.Equal(resp.Image, want) {
			t.Fatalf("pre-drain request %d failed: err=%v", i, err)
		}
	}
	cs := r.clusterSnapshot()
	if cs.Backends[0].Requests == 0 || cs.Backends[1].Requests != 0 {
		t.Fatalf("ordered routing split traffic: %d / %d", cs.Backends[0].Requests, cs.Backends[1].Requests)
	}

	// Drain backend 0 over the wire; traffic must shift to backend 1.
	b0 := cs.Backends[0].Addr
	resp, err := c.Do(&serve.Request{Op: serve.OpDrain, Backend: b0})
	if err != nil || !resp.OK {
		t.Fatalf("drain: err=%v resp=%+v", err, resp)
	}
	if resp.Cluster == nil || resp.Cluster.Backends[0].State != StateDraining {
		t.Fatalf("drain response does not show backend 0 draining: %+v", resp.Cluster)
	}
	before := r.clusterSnapshot().Backends[1].Requests
	if resp, err := c.Do(&serve.Request{Op: serve.OpSquash, Obj: obj, Profile: prof}); err != nil || !resp.OK {
		t.Fatalf("drained-state request failed: %v", err)
	}
	if got := r.clusterSnapshot().Backends[1].Requests; got != before+1 {
		t.Fatalf("draining backend still took traffic: backend 1 went %d -> %d", before, got)
	}

	// Undrain restores it.
	if resp, err := c.Do(&serve.Request{Op: serve.OpUndrain, Backend: b0}); err != nil || !resp.OK {
		t.Fatalf("undrain: err=%v resp=%+v", err, resp)
	}
	if st := r.clusterSnapshot().Backends[0].State; st != StateUp {
		t.Fatalf("backend 0 state after undrain = %q, want up", st)
	}

	// Unknown backend is an error, not a silent no-op.
	if resp, err := c.Do(&serve.Request{Op: serve.OpDrain, Backend: "unix:/nope.sock"}); err != nil || resp.OK {
		t.Fatalf("drain of unknown backend: err=%v ok=%v", err, resp.OK)
	}

	// Merged stats over the wire: the squashes above must all be visible
	// in one fleet-wide snapshot.
	sresp, err := c.Do(&serve.Request{Op: serve.OpStats})
	if err != nil || !sresp.OK || sresp.Server == nil {
		t.Fatalf("stats through router: err=%v", err)
	}
	if got := sresp.Server.Requests[serve.OpSquash]; got < 4 {
		t.Fatalf("merged stats count %d squashes, want >= 4", got)
	}
	// OpCluster over the wire round-trips on both protocols.
	for _, proto := range []int{1, 2} {
		cc, err := serve.DialClientProto(addr, proto)
		if err != nil {
			t.Fatalf("dial v%d: %v", proto, err)
		}
		cresp, err := cc.Do(&serve.Request{Op: serve.OpCluster})
		if err != nil || !cresp.OK || cresp.Cluster == nil {
			t.Fatalf("v%d cluster op: err=%v", proto, err)
		}
		if cresp.Cluster.Policy != PolicyOrdered || len(cresp.Cluster.Backends) != 2 {
			t.Fatalf("v%d cluster snapshot: %+v", proto, cresp.Cluster)
		}
		cc.Close()
	}
}
