// Package cluster is the squashd fleet tier: a router that speaks the
// daemon wire protocol on the front and fans requests out to N backend
// squashd instances, placed by a pluggable policy. The default policy is
// content-hash placement via rendezvous hashing over the serve result-key
// digest, so each backend's result LRU stays hot for its shard and a
// backend joining or leaving moves only ~1/N of the key space. Backends
// are health-checked (periodic stats probes), marked down after K
// consecutive failures, and failed requests re-route to the next-ranked
// live backend — safe because squash is deterministic and idempotent for
// a given (object, profile, config).
package cluster

import (
	"fmt"
	"sort"
)

// Policy names accepted by ParsePolicy (the -route flag).
const (
	PolicyHash      = "hash"
	PolicyLeastConn = "least-conn"
	PolicyOrdered   = "ordered"
)

// picker ranks the live backends for one placement key, best first. The
// router tries them in order until one answers. Implementations must be
// pure: no side effects, same ranking for the same inputs (modulo
// least-conn's live in-flight counts).
type picker interface {
	name() string
	// rank orders live (the backends eligible for new work) into dst,
	// best-ranked first, and returns it. dst is scratch from the caller
	// (avoids a per-request allocation); len(live) may be zero.
	rank(key [32]byte, live []*Backend, dst []*Backend) []*Backend
}

// parsePolicy resolves a -route policy name.
func parsePolicy(name string) (picker, error) {
	switch name {
	case PolicyHash, "":
		return hashPicker{}, nil
	case PolicyLeastConn:
		return leastConnPicker{}, nil
	case PolicyOrdered:
		return orderedPicker{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown routing policy %q (want %s, %s, or %s)",
		name, PolicyHash, PolicyLeastConn, PolicyOrdered)
}

// hashPicker is rendezvous (highest-random-weight) hashing: every backend
// scores hash(backend, key) and the ranking is by descending score. Each
// key's ranking is stable under membership change everywhere except at
// the backends that joined or left — removing a backend moves exactly its
// own keys (they fall to their second-ranked backend), and adding one
// steals only the ~1/N of keys it now wins — which is what keeps the
// per-backend result LRUs hot across fleet changes.
type hashPicker struct{}

func (hashPicker) name() string { return PolicyHash }

func (hashPicker) rank(key [32]byte, live []*Backend, dst []*Backend) []*Backend {
	scores := make([]uint64, len(live))
	for i, b := range live {
		scores[i] = rendezvousScore(b.hashSeed, key)
	}
	// Sort indices by score (descending), tie-broken by backend address so
	// the ranking is total and deterministic.
	idx := make([]int, len(live))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return live[idx[a]].Addr < live[idx[b]].Addr
	})
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, live[i])
	}
	return dst
}

// rendezvousScore mixes a backend's seed with the placement key: 64-bit
// FNV-1a over the key bytes, seeded per backend. FNV is not
// cryptographic, but placement only needs a stable, well-mixed total
// order per key.
func rendezvousScore(seed uint64, key [32]byte) uint64 {
	const prime64 = 1099511628211
	h := seed
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// fnv64a hashes a string (backend address → per-backend seed).
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// leastConnPicker ranks by the router's live in-flight count per backend
// (ascending), tie-broken by configuration order — sshproxy's
// connection-count placement. Ignores the key: use it when request cost
// varies so much that queue depth beats cache affinity.
type leastConnPicker struct{}

func (leastConnPicker) name() string { return PolicyLeastConn }

func (leastConnPicker) rank(_ [32]byte, live []*Backend, dst []*Backend) []*Backend {
	dst = append(dst[:0], live...)
	sort.SliceStable(dst, func(i, j int) bool {
		return dst[i].inFlight.Load() < dst[j].inFlight.Load()
	})
	return dst
}

// orderedPicker always prefers backends in configuration order: all
// traffic on the first live backend, the rest as spares — sshproxy's
// ordered routing, useful for primary/standby setups.
type orderedPicker struct{}

func (orderedPicker) name() string { return PolicyOrdered }

func (orderedPicker) rank(_ [32]byte, live []*Backend, dst []*Backend) []*Backend {
	return append(dst[:0], live...)
}
