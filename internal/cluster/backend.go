package cluster

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/serve"
)

// Backend state machine. A backend is "up" (routable), "down" (failed
// FailAfter consecutive probes or requests; excluded from routing until a
// probe succeeds), or "draining" (operator-excluded via squashctl;
// health checks keep running so its true state is known when undrained).
const (
	StateUp       = "up"
	StateDown     = "down"
	StateDraining = "draining"
)

// Backend is one squashd instance behind the router: its connection
// pool, health state, and traffic counters.
type Backend struct {
	Addr     string
	hashSeed uint64 // fnv64a(Addr): per-backend rendezvous seed
	pool     *serve.ClientPool

	inFlight atomic.Int64  // requests this router currently has on the wire
	requests atomic.Uint64 // completed forwards (any outcome)
	errors   atomic.Uint64 // forwards that ended in a transport error

	mu          sync.Mutex
	down        bool
	draining    bool
	consecFails int
	lastProbe   time.Time       // zero until the first health check lands
	lastStats   *serve.Snapshot // most recent successful probe's snapshot
}

func newBackend(addr string, proto, maxIdle int) *Backend {
	return &Backend{
		Addr:     addr,
		hashSeed: fnv64a(addr),
		pool:     serve.NewClientPool(addr, proto, maxIdle),
	}
}

// live reports whether the backend should receive new work.
func (b *Backend) live() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.down && !b.draining
}

// noteSuccess resets the failure streak and reports whether this success
// revived a down backend. Called on every successful probe and forward.
func (b *Backend) noteSuccess() (revived bool) {
	b.mu.Lock()
	revived = b.down
	b.consecFails = 0
	b.down = false
	b.mu.Unlock()
	return revived
}

// noteFailure counts a failed probe or forward toward the down threshold
// and reports whether the backend just crossed it. Request failures count
// too, so a crashed backend stops receiving traffic immediately instead of
// waiting out FailAfter probe intervals.
func (b *Backend) noteFailure(failAfter int) (wentDown bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	if !b.down && b.consecFails >= failAfter {
		b.down = true
		return true
	}
	return false
}

// setDraining flips operator drain state; draining survives health-state
// transitions in both directions.
func (b *Backend) setDraining(v bool) {
	b.mu.Lock()
	b.draining = v
	b.mu.Unlock()
}

// recordProbe stores the outcome of a health check.
func (b *Backend) recordProbe(at time.Time, stats *serve.Snapshot) {
	b.mu.Lock()
	b.lastProbe = at
	if stats != nil {
		b.lastStats = stats
	}
	b.mu.Unlock()
}

// status snapshots the backend for the admin plane. now anchors the
// since-last-check age so a frozen clock in tests stays deterministic.
func (b *Backend) status(now time.Time) serve.BackendStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := serve.BackendStatus{
		Addr:          b.Addr,
		State:         StateUp,
		ConsecFails:   b.consecFails,
		InFlight:      b.inFlight.Load(),
		Requests:      b.requests.Load(),
		Errors:        b.errors.Load(),
		SinceCheckSec: -1,
		Stats:         b.lastStats,
	}
	if b.down {
		st.State = StateDown
	} else if b.draining {
		st.State = StateDraining
	}
	if !b.lastProbe.IsZero() {
		st.SinceCheckSec = now.Sub(b.lastProbe).Seconds()
	}
	return st
}

// do forwards one request on a pooled connection, bounding the exchange
// with timeout when non-zero. Transport errors close the connection
// (instead of repooling it) and are returned for the caller's failover
// logic; application errors ride inside the Response like always.
func (b *Backend) do(req *serve.Request, timeout time.Duration) (*serve.Response, error) {
	c, err := b.pool.Get()
	if err != nil {
		b.errors.Add(1)
		return nil, err
	}
	b.inFlight.Add(1)
	defer func() {
		b.inFlight.Add(-1)
		b.requests.Add(1)
	}()
	if timeout > 0 {
		c.SetDeadline(time.Now().Add(timeout))
	}
	resp, err := c.Do(req)
	if err != nil {
		b.errors.Add(1)
		c.Close()
		return nil, err
	}
	if timeout > 0 {
		c.SetDeadline(time.Time{})
	}
	b.pool.Put(c)
	return resp, nil
}

// close releases the backend's pooled connections.
func (b *Backend) close() { b.pool.Close() }
