package cluster

import (
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/serve"
)

// Config wires a Router to its backend fleet.
type Config struct {
	// Backends are the squashd addresses to fan out to (at least one),
	// in preference order for the "ordered" policy.
	Backends []string
	// Policy picks the routing policy: "hash" (default, rendezvous over
	// the content key), "least-conn", or "ordered".
	Policy string
	// CheckInterval is the health-probe period (default 2s); CheckTimeout
	// bounds one probe exchange (default 1s).
	CheckInterval time.Duration
	CheckTimeout  time.Duration
	// FailAfter is how many consecutive failures (probes and forwards
	// both) mark a backend down (default 3; minimum 1).
	FailAfter int
	// Retries bounds failover: after the first-ranked backend fails a
	// request with a transport error, up to Retries further live backends
	// are tried, next-ranked first (default 2). Application errors are
	// returned to the client as-is, never retried.
	Retries int
	// BackendTimeout bounds one forwarded exchange; 0 disables.
	BackendTimeout time.Duration
	// BackendProto pins the wire protocol toward backends (0 negotiates,
	// preferring v2); MaxIdle bounds pooled idle connections per backend.
	BackendProto int
	MaxIdle      int
	// Logf receives lifecycle lines (backend up/down, drain); nil logs to
	// stderr.
	Logf func(format string, args ...any)
}

// Router fans daemon-protocol requests out to a fleet of squashd
// backends. Its Handle method plugs into serve.Options.Handler, so the
// front side — listeners, v1/v2 codec, negotiation, metrics, graceful
// drain — is the stock daemon machinery and any serve.Client works
// against it unchanged. Handle is safe for concurrent use; concurrency
// arrives as one connection goroutine per client connection.
type Router struct {
	cfg      Config
	pick     picker
	backends []*Backend
	byAddr   map[string]*Backend
	logf     func(format string, args ...any)

	stop chan struct{}
	wg   sync.WaitGroup
}

// New validates the config and builds a Router. Call Start to begin
// health checking, Stop to release it.
func New(cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one backend")
	}
	pick, err := parsePolicy(cfg.Policy)
	if err != nil {
		return nil, err
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 2 * time.Second
	}
	if cfg.CheckTimeout <= 0 {
		cfg.CheckTimeout = time.Second
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	logf := cfg.Logf
	if logf == nil {
		l := log.New(os.Stderr, "squashrouter ", log.LstdFlags|log.Lmicroseconds)
		logf = l.Printf
	}
	r := &Router{
		cfg:    cfg,
		pick:   pick,
		byAddr: map[string]*Backend{},
		logf:   logf,
		stop:   make(chan struct{}),
	}
	for _, addr := range cfg.Backends {
		if _, dup := r.byAddr[addr]; dup {
			return nil, fmt.Errorf("cluster: duplicate backend address %q", addr)
		}
		b := newBackend(addr, cfg.BackendProto, cfg.MaxIdle)
		r.backends = append(r.backends, b)
		r.byAddr[addr] = b
	}
	return r, nil
}

// Policy reports the active routing policy name.
func (r *Router) Policy() string { return r.pick.name() }

// Start launches the health-check loop.
func (r *Router) Start() {
	r.wg.Add(1)
	go r.healthLoop()
}

// Stop ends health checking and closes every backend's pooled
// connections. In-flight Handle calls finish on their own connections.
func (r *Router) Stop() {
	close(r.stop)
	r.wg.Wait()
	for _, b := range r.backends {
		b.close()
	}
}

// Handle answers one client request: admin and liveness ops locally,
// everything else by forwarding to placed backends. It is the
// serve.Options.Handler of the router daemon.
func (r *Router) Handle(req *serve.Request) *serve.Response {
	switch req.Op {
	case serve.OpPing:
		// The router's own liveness, not the fleet's: a ping must answer
		// even with every backend down.
		return &serve.Response{OK: true}
	case serve.OpStats:
		return r.handleStats()
	case serve.OpCluster:
		return &serve.Response{OK: true, Cluster: r.clusterSnapshot()}
	case serve.OpDrain:
		return r.setDrain(req.Backend, true)
	case serve.OpUndrain:
		return r.setDrain(req.Backend, false)
	case serve.OpBatch:
		return r.routeBatch(req)
	default:
		// OpSquash, OpBench — and any op this router predates, which the
		// backend will reject with its own error.
		return r.routeOne(req)
	}
}

// live collects the backends currently eligible for new work, in
// configuration order (the ordered policy's preference, and the
// tie-break order everywhere else).
func (r *Router) live() []*Backend {
	out := make([]*Backend, 0, len(r.backends))
	for _, b := range r.backends {
		if b.live() {
			out = append(out, b)
		}
	}
	return out
}

// routeOne forwards a single-object request with bounded failover: rank
// the live backends for the request's content key, try them best-first,
// and re-route on transport error. Squash is deterministic and
// idempotent per (object, profile, config), so a retry after a
// half-completed exchange cannot produce a different answer — the worst
// case is a backend doing duplicate work that warms its cache.
func (r *Router) routeOne(req *serve.Request) *serve.Response {
	key, _ := serve.RouteKey(req)
	ranked := r.pick.rank(key, r.live(), nil)
	if len(ranked) == 0 {
		return &serve.Response{Err: "cluster: no live backends"}
	}
	attempts := 1 + r.cfg.Retries
	if attempts > len(ranked) {
		attempts = len(ranked)
	}
	var lastErr error
	for _, b := range ranked[:attempts] {
		resp, err := b.do(req, r.cfg.BackendTimeout)
		if err == nil {
			if b.noteSuccess() {
				r.logf("backend %s up (request succeeded)", b.Addr)
			}
			return resp
		}
		r.noteFailed(b, err)
		lastErr = err
	}
	return &serve.Response{Err: fmt.Sprintf("cluster: all %d placement attempts failed, last: %v", attempts, lastErr)}
}

// routeBatch splits one OpBatch frame into per-backend sub-batches by
// each item's content key, forwards the shards concurrently, and
// reassembles results in item order. Failover works per shard: a shard
// whose backend fails with a transport error re-routes on the next round
// with that backend excluded, up to Retries extra rounds. Errors stay
// per-item throughout — a shard that exhausts failover yields error
// results only at its own indices. Within-batch duplicates hash to the
// same shard (same key, same ranking), so backend-side dedup and Shared
// marking survive the split.
func (r *Router) routeBatch(req *serve.Request) *serve.Response {
	items := req.Items
	if len(items) == 0 {
		return &serve.Response{Err: "batch request needs at least one item"}
	}
	if len(items) > serve.MaxBatchItems {
		return &serve.Response{Err: fmt.Sprintf("batch of %d items exceeds limit %d", len(items), serve.MaxBatchItems)}
	}

	results := make([]serve.BatchResult, len(items))
	pending := make([]int, len(items))
	for i := range pending {
		pending[i] = i
	}
	excluded := map[*Backend]bool{}

	for round := 0; round <= r.cfg.Retries && len(pending) > 0; round++ {
		live := make([]*Backend, 0, len(r.backends))
		for _, b := range r.backends {
			if b.live() && !excluded[b] {
				live = append(live, b)
			}
		}
		if len(live) == 0 {
			break
		}

		// Place every pending item; ranked[0] is its shard this round.
		shards := map[*Backend][]int{}
		scratch := make([]*Backend, 0, len(live))
		for _, i := range pending {
			key := serve.RouteKeyItem(&items[i])
			ranked := r.pick.rank(key, live, scratch)
			shards[ranked[0]] = append(shards[ranked[0]], i)
		}

		type shardOut struct {
			b    *Backend
			idx  []int
			resp *serve.Response
			err  error
		}
		outc := make(chan shardOut, len(shards))
		for b, idx := range shards {
			go func(b *Backend, idx []int) {
				sub := &serve.Request{Op: serve.OpBatch, NoImage: req.NoImage,
					Items: make([]serve.BatchItem, len(idx))}
				for j, i := range idx {
					sub.Items[j] = items[i]
				}
				resp, err := b.do(sub, r.cfg.BackendTimeout)
				outc <- shardOut{b: b, idx: idx, resp: resp, err: err}
			}(b, idx)
		}

		pending = pending[:0]
		for range shards {
			out := <-outc
			switch {
			case out.err != nil:
				// Transport failure: the whole shard re-routes next round,
				// away from this backend.
				r.noteFailed(out.b, out.err)
				excluded[out.b] = true
				pending = append(pending, out.idx...)
			case !out.resp.OK || len(out.resp.Results) != len(out.idx):
				// The backend answered but rejected the frame (or returned a
				// malformed result set). An application error is
				// deterministic — retrying elsewhere gets the same answer —
				// so it lands on the items now.
				if out.b.noteSuccess() {
					r.logf("backend %s up (request succeeded)", out.b.Addr)
				}
				msg := out.resp.Err
				if msg == "" {
					msg = fmt.Sprintf("backend returned %d results for %d items", len(out.resp.Results), len(out.idx))
				}
				for _, i := range out.idx {
					results[i] = serve.BatchResult{Err: msg}
				}
			default:
				if out.b.noteSuccess() {
					r.logf("backend %s up (request succeeded)", out.b.Addr)
				}
				for j, i := range out.idx {
					results[i] = out.resp.Results[j]
				}
			}
		}
	}

	for _, i := range pending {
		results[i] = serve.BatchResult{Err: "cluster: no live backend for item"}
	}
	return &serve.Response{OK: true, Results: results}
}

// handleStats answers OpStats with a live merge: every backend is probed
// now (concurrently, bounded by CheckTimeout) and the fresh snapshots
// merge into one fleet view, so clients that poll stats — squashload's
// cache-delta accounting included — see current numbers, not the last
// health-check's. A backend that fails the fetch contributes its last
// known snapshot instead of stalling the answer.
func (r *Router) handleStats() *serve.Response {
	snaps := make([]*serve.Snapshot, len(r.backends))
	done := make(chan struct{}, len(r.backends))
	for i, b := range r.backends {
		go func(i int, b *Backend) {
			snap, err := r.probe(b)
			if err != nil {
				snap = b.status(time.Now()).Stats // last known, possibly nil
			}
			snaps[i] = snap
			done <- struct{}{}
		}(i, b)
	}
	for range r.backends {
		<-done
	}
	return &serve.Response{OK: true, Server: serve.MergeSnapshots(snaps...)}
}

// clusterSnapshot builds the OpCluster answer from tracked state (no
// network round-trips: the admin plane must answer even when backends
// hang; per-backend stats are the last successful probes').
func (r *Router) clusterSnapshot() *serve.ClusterSnapshot {
	now := time.Now()
	cs := &serve.ClusterSnapshot{Policy: r.pick.name()}
	snaps := make([]*serve.Snapshot, 0, len(r.backends))
	for _, b := range r.backends {
		st := b.status(now)
		cs.Backends = append(cs.Backends, st)
		snaps = append(snaps, st.Stats)
	}
	cs.Merged = serve.MergeSnapshots(snaps...)
	return cs
}

// setDrain flips a backend's operator drain state. Draining removes it
// from routing without touching health state; health checks continue so
// its liveness is current when undrained.
func (r *Router) setDrain(addr string, drain bool) *serve.Response {
	b, ok := r.byAddr[addr]
	if !ok {
		return &serve.Response{Err: fmt.Sprintf("cluster: unknown backend %q", addr)}
	}
	b.setDraining(drain)
	if drain {
		r.logf("backend %s draining (operator)", addr)
	} else {
		r.logf("backend %s undrained (operator)", addr)
	}
	return &serve.Response{OK: true, Cluster: r.clusterSnapshot()}
}
