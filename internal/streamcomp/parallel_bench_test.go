package streamcomp

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/parallel"
)

// regionSeq builds a K-byte region's worth of valid instructions.
func regionSeq(kBytes int) []isa.Inst {
	want := kBytes / isa.WordSize
	var seq []isa.Inst
	for seed := int64(0); len(seq) < want; seed++ {
		for _, in := range isa.RandInsts(seed, 2*want) {
			if in.Format != isa.FormatIllegal {
				seq = append(seq, in)
				if len(seq) == want {
					break
				}
			}
		}
	}
	return seq
}

// encodeRange encodes seq's codewords (no sentinel) into w — the inner loop
// of Compress, reused by the chunked prototype below.
func encodeRange(c *Compressor, w *huffman.BitWriter, seq []isa.Inst) error {
	for _, in := range seq {
		for _, fv := range isa.Fields(in) {
			if err := c.codes[fv.Kind].Encode(w, fv.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// chunkedCompress is the per-stream-fan-out candidate the ROADMAP asks
// about: split one region's instruction sequence into chunks, encode each
// into a private BitWriter on its own worker, and merge in order (the codes
// are static, so chunk bits are position-independent; MTF would forbid
// this). The merge is a serial unaligned bit append, so the achievable
// speedup is bounded by the encode/merge cost ratio.
func chunkedCompress(c *Compressor, seq []isa.Inst, chunks int) (*huffman.BitWriter, error) {
	per := (len(seq) + chunks - 1) / chunks
	parts, err := parallel.Map(chunks, chunks, func(i int) (*huffman.BitWriter, error) {
		lo := i * per
		hi := lo + per
		if lo > len(seq) {
			lo = len(seq)
		}
		if hi > len(seq) {
			hi = len(seq)
		}
		var w huffman.BitWriter
		return &w, encodeRange(c, &w, seq[lo:hi])
	})
	if err != nil {
		return nil, err
	}
	var out huffman.BitWriter
	for _, p := range parts {
		out.Append(p)
	}
	if err := encodeRange(c, &out, []isa.Inst{sentinelInst}); err != nil {
		return nil, err
	}
	return &out, nil
}

// BenchmarkPerStreamEncode settles the ROADMAP question of intra-region
// encode parallelism: serial Compress versus the chunked fan-out, at region
// sizes K ∈ {512, 2048, 8192} bytes. The chunked output is asserted
// bit-identical to the serial one before timing, so the comparison measures
// only cost. See EXPERIMENTS.md for the recorded verdict.
func BenchmarkPerStreamEncode(b *testing.B) {
	for _, kBytes := range []int{512, 2048, 8192} {
		seq := regionSeq(kBytes)
		c := Train([][]isa.Inst{seq}, Options{})
		for _, code := range c.codes {
			code.Prime()
		}
		var ref huffman.BitWriter
		if err := c.Compress(&ref, seq); err != nil {
			b.Fatal(err)
		}
		const chunks = 4
		got, err := chunkedCompress(c, seq, chunks)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != ref.Len() || !bytes.Equal(got.Bytes(), ref.Bytes()) {
			b.Fatalf("K=%d: chunked encode is not bit-identical to serial", kBytes)
		}
		b.Run(fmt.Sprintf("K=%d/serial", kBytes), func(b *testing.B) {
			b.SetBytes(int64(isa.WordSize * len(seq)))
			for i := 0; i < b.N; i++ {
				var w huffman.BitWriter
				if err := c.Compress(&w, seq); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("K=%d/chunked", kBytes), func(b *testing.B) {
			b.SetBytes(int64(isa.WordSize * len(seq)))
			for i := 0; i < b.N; i++ {
				if _, err := chunkedCompress(c, seq, chunks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
