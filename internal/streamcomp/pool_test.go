package streamcomp

import (
	"bytes"
	"testing"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// compressDecompress runs the full CompressAll + per-region Decompress cycle
// and returns the blob, offsets, and decoded instructions.
func compressDecompress(t *testing.T, c *Compressor, seqs [][]isa.Inst, workers int) ([]byte, []uint32, [][]isa.Inst) {
	t.Helper()
	blob, offsets, err := c.CompressAll(seqs, workers)
	if err != nil {
		t.Fatalf("CompressAll: %v", err)
	}
	decoded := make([][]isa.Inst, len(seqs))
	for i := range seqs {
		if _, err := c.Decompress(blob, int(offsets[i]), func(in isa.Inst) error {
			decoded[i] = append(decoded[i], in)
			return nil
		}); err != nil {
			t.Fatalf("Decompress region %d: %v", i, err)
		}
	}
	return blob, offsets, decoded
}

// TestPoolingOnOffByteIdentical is the coder-level half of the pooling
// invariant: with pools enabled (warm, cycled repeatedly) and disabled, the
// compressed blob, the region offsets, and the decoded instructions are
// identical. Runs both the plain and MTF variants.
func TestPoolingOnOffByteIdentical(t *testing.T) {
	defer huffman.SetPooling(true)
	seqs := [][]isa.Inst{
		realisticSeq(1, 300),
		realisticSeq(2, 7),
		realisticSeq(3, 1200),
		{},
		realisticSeq(4, 64),
	}
	for _, opts := range []Options{{}, {MTF: true}} {
		c := Train(seqs, opts)

		huffman.SetPooling(false)
		wantBlob, wantOffs, wantDec := compressDecompress(t, c, seqs, 3)

		huffman.SetPooling(true)
		for cycle := 0; cycle < 3; cycle++ { // cycle 0 cold pools, later ones warm
			blob, offs, dec := compressDecompress(t, c, seqs, 3)
			if !bytes.Equal(blob, wantBlob) {
				t.Fatalf("MTF=%v cycle %d: pooled blob differs from pools-off blob", opts.MTF, cycle)
			}
			for i := range offs {
				if offs[i] != wantOffs[i] {
					t.Fatalf("MTF=%v cycle %d: offset %d = %d, want %d", opts.MTF, cycle, i, offs[i], wantOffs[i])
				}
			}
			for i := range dec {
				if len(dec[i]) != len(wantDec[i]) {
					t.Fatalf("MTF=%v cycle %d region %d: %d insts, want %d", opts.MTF, cycle, i, len(dec[i]), len(wantDec[i]))
				}
				for k := range dec[i] {
					if dec[i][k] != wantDec[i][k] {
						t.Fatalf("MTF=%v cycle %d region %d inst %d differs", opts.MTF, cycle, i, k)
					}
				}
			}
		}
	}
}

// TestSizeHintCoversTypicalRegions: the trained estimate should be tight
// enough that a pooled writer sized by it encodes a typical region without
// growing, which is what makes the warm encode path allocation-free.
func TestSizeHintCoversTypicalRegions(t *testing.T) {
	seqs := [][]isa.Inst{realisticSeq(10, 600), realisticSeq(11, 600)}
	c := Train(seqs, Options{})
	if c.estBitsPerInst <= 0 {
		t.Fatal("Train left estBitsPerInst unset")
	}
	for i, seq := range seqs {
		bits, err := c.CompressedBits(seq)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.sizeHint(len(seq)); got < (bits+7)/8 {
			t.Errorf("region %d: sizeHint(%d) = %d bytes < actual %d", i, len(seq), got, (bits+7)/8)
		}
	}
}

// BenchmarkRegionEncodeAlloc is the paired allocation benchmark for a region
// encode: one op compresses a ~512-instruction region into a writer sized
// from the trained estimate. "pooled" recycles the writer; "fresh" allocates
// one per op (pools off), the pre-pool behaviour. CI gates the pooled
// allocs/op ceiling and the fresh/pooled reduction via benchhist.
func BenchmarkRegionEncodeAlloc(b *testing.B) {
	seq := realisticSeq(99, 512)
	c := Train([][]isa.Inst{seq}, Options{})
	run := func(b *testing.B, pooled bool) {
		b.Helper()
		huffman.SetPooling(pooled)
		defer huffman.SetPooling(true)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := huffman.GetWriter(c.sizeHint(len(seq)))
			if err := c.Compress(w, seq); err != nil {
				b.Fatal(err)
			}
			huffman.PutWriter(w)
		}
	}
	b.Run("pooled", func(b *testing.B) { run(b, true) })
	b.Run("fresh", func(b *testing.B) { run(b, false) })
}
