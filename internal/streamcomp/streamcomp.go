// Package streamcomp implements the paper's compression scheme (§3): a
// simplified "splitting streams" coder. Each instruction is decomposed into
// typed operand fields; the values of each field type form a stream; each
// stream gets its own canonical Huffman code; and the codeword sequences of
// all streams are merged into a single bit sequence, because the opcode —
// always decoded first — fully determines which streams supply the
// remaining fields of the instruction.
//
// Every compressed region ends with a sentinel (an illegal instruction)
// that tells the decompressor to stop (§2.1).
//
// An optional move-to-front transform can be applied per stream before
// Huffman coding; the paper notes it buys slightly better compression for
// some streams at the cost of a larger, slower decompressor (§3). It is off
// by default and exercised by the ablation benchmarks.
package streamcomp

import (
	"fmt"
	"sort"

	"repro/internal/huffman"
	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/parallel"
)

// Options configures the compressor.
type Options struct {
	// MTF applies a move-to-front transform to each stream before coding.
	MTF bool
	// Workers bounds the goroutines Train uses for frequency counting;
	// <= 0 means one per CPU. The trained codes are identical at any
	// worker count: per-sequence counts are summed, and summation is
	// order-independent.
	Workers int
}

// Compressor holds one canonical Huffman code per operand stream, trained
// over all regions of a program. All regions share the codes; the code
// tables are therefore charged once against the compressed program size.
//
// With MTF enabled the compressor additionally stores, per stream, the
// sorted alphabet of raw values: both sides initialize each region's
// move-to-front list from it, so recency indices are decodable. The
// alphabets are extra decompressor data — the size and speed cost the paper
// notes against the MTF variant.
type Compressor struct {
	codes     [isa.NumStreams]*huffman.Code
	alphabets [isa.NumStreams][]uint32
	opts      Options

	// estBitsPerInst is the expected coded size of one instruction, rounded
	// up, computed by Train from the same frequency counts the codes were
	// built from (Σ freq·codelen over all streams ÷ opcode count). It sizes
	// the pooled per-region writers so a region encode completes without
	// intermediate buffer growth; zero (an untrained or deserialized
	// compressor) falls back to a conservative default.
	estBitsPerInst int

	// slowDecode routes every field decode through the reference bit-at-a-
	// time decoder (huffman.Code.DecodeTree) instead of the table-driven
	// one. Both consume identical bits; the switch exists so the runtime's
	// fast-path-disabled mode can demonstrate that end to end.
	slowDecode bool

	// Span, when set, is the parent under which CompressAll forks one
	// telemetry span per region. Nil (the default) records nothing; the
	// emitted bits are identical either way.
	Span *obs.Span
}

// SetSlowDecode selects the reference Huffman decoder for all subsequent
// Decompress calls (true) or the table-driven one (false, the default).
func (c *Compressor) SetSlowDecode(v bool) { c.slowDecode = v }

// sentinelInst is the region terminator as seen by the field splitter.
var sentinelInst = isa.Inst{Op: isa.OpIllegal, Format: isa.FormatIllegal}

// Train builds the per-stream codes from the field-value frequencies of all
// instruction sequences that will be compressed (the first pass of the
// paper's two-pass process). A sentinel per sequence is included.
func Train(seqs [][]isa.Inst, opts Options) *Compressor {
	c := &Compressor{opts: opts}
	if opts.MTF {
		// Per-sequence alphabet collection fans out; the union is a set, so
		// merge order cannot affect the sorted result.
		partial, _ := parallel.Map(len(seqs), opts.Workers,
			func(i int) ([isa.NumStreams]map[uint32]bool, error) {
				var seen [isa.NumStreams]map[uint32]bool
				for k := range seen {
					seen[k] = make(map[uint32]bool)
				}
				collect := func(in isa.Inst) {
					for _, fv := range isa.Fields(in) {
						seen[fv.Kind][fv.Value] = true
					}
				}
				for _, in := range seqs[i] {
					collect(in)
				}
				collect(sentinelInst)
				return seen, nil
			})
		var seen [isa.NumStreams]map[uint32]bool
		for i := range seen {
			seen[i] = make(map[uint32]bool)
		}
		for _, p := range partial {
			for i := range p {
				for v := range p[i] {
					seen[i][v] = true
				}
			}
		}
		for i := range seen {
			vals := make([]uint32, 0, len(seen[i]))
			for v := range seen[i] {
				vals = append(vals, v)
			}
			sortU32(vals)
			c.alphabets[i] = vals
		}
	}

	// Frequency counting is per sequence (each sequence restarts its MTF
	// state), so it fans out too; the merged counts are sums, identical at
	// any worker count.
	partial, _ := parallel.Map(len(seqs), opts.Workers,
		func(i int) ([isa.NumStreams]map[uint32]uint64, error) {
			var f [isa.NumStreams]map[uint32]uint64
			for k := range f {
				f[k] = make(map[uint32]uint64)
			}
			mtf := c.newMTF()
			count := func(in isa.Inst) {
				for _, fv := range isa.Fields(in) {
					v := fv.Value
					if mtf != nil {
						v = mtf[fv.Kind].encode(v)
					}
					f[fv.Kind][v]++
				}
			}
			for _, in := range seqs[i] {
				count(in)
			}
			count(sentinelInst)
			return f, nil
		})
	var freqs [isa.NumStreams]map[uint32]uint64
	for i := range freqs {
		freqs[i] = make(map[uint32]uint64)
	}
	for _, p := range partial {
		for i := range p {
			for v, n := range p[i] {
				freqs[i][v] += n
			}
		}
	}
	var totalBits, totalInsts uint64
	for i := range c.codes {
		c.codes[i] = huffman.Build(freqs[i])
		c.codes[i].Prime()
		for v, n := range freqs[i] {
			totalBits += n * uint64(c.codes[i].CodeLen(v))
		}
	}
	for _, n := range freqs[isa.StreamOpcode] {
		totalInsts += n // every instruction (and sentinel) has an opcode
	}
	if totalInsts > 0 {
		c.estBitsPerInst = int((totalBits + totalInsts - 1) / totalInsts)
	}
	return c
}

// sizeHint estimates the byte capacity a region of nInsts instructions needs,
// from the trained expected bits per instruction (plus the sentinel and a
// small slack for padding and estimate error).
func (c *Compressor) sizeHint(nInsts int) int {
	est := c.estBitsPerInst
	if est <= 0 {
		est = 24 // conservative default when untrained
	}
	return (nInsts+1)*est/8 + 16
}

func sortU32(v []uint32) {
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
}

// newMTF returns fresh per-stream MTF lists seeded from the alphabets, or
// nil when the transform is disabled.
func (c *Compressor) newMTF() []*mtfState {
	if !c.opts.MTF {
		return nil
	}
	out := make([]*mtfState, isa.NumStreams)
	for i := range out {
		out[i] = &mtfState{list: append([]uint32(nil), c.alphabets[i]...)}
	}
	return out
}

// Compress appends the merged codeword sequence for seq (plus the sentinel)
// to w. MTF state starts fresh for each sequence so regions decompress
// independently.
func (c *Compressor) Compress(w *huffman.BitWriter, seq []isa.Inst) error {
	mtf := c.newMTF()
	// One stack-resident scratch serves every field split in the region; the
	// encode loop allocates nothing per instruction.
	var fvbuf [8]isa.FieldValue
	for _, in := range seq {
		if in.Format == isa.FormatIllegal {
			return fmt.Errorf("streamcomp: illegal instruction inside region")
		}
		if err := c.encodeInst(w, in, mtf, fvbuf[:0]); err != nil {
			return err
		}
	}
	return c.encodeInst(w, sentinelInst, mtf, fvbuf[:0])
}

// encodeInst emits one instruction's codewords into w, splitting its fields
// into caller-provided scratch.
func (c *Compressor) encodeInst(w *huffman.BitWriter, in isa.Inst, mtf []*mtfState, scratch []isa.FieldValue) error {
	for _, fv := range isa.AppendFields(scratch, in) {
		v := fv.Value
		if mtf != nil {
			v = mtf[fv.Kind].encode(v)
		}
		if err := c.codes[fv.Kind].Encode(w, v); err != nil {
			return fmt.Errorf("streamcomp: %v stream: %w", fv.Kind, err)
		}
	}
	return nil
}

// CompressAll compresses every sequence and concatenates the per-sequence
// bit streams in input order, exactly as sequential Compress calls against
// one shared writer would. offsets[i] is the starting bit position of
// sequence i in the returned blob. Sequences are encoded concurrently into
// private writers (each region's bits are independent of its position in
// the blob), so the result is byte-identical at any worker count.
func (c *Compressor) CompressAll(seqs [][]isa.Inst, workers int) (blob []byte, offsets []uint32, err error) {
	for _, code := range c.codes {
		code.Prime() // lazy encoder init would race across goroutines
	}
	parts, err := parallel.Map(len(seqs), workers, func(i int) (*huffman.BitWriter, error) {
		sp := c.Span.Fork("region.encode", "region", i, "insts", len(seqs[i]))
		w := huffman.GetWriter(c.sizeHint(len(seqs[i])))
		if err := c.Compress(w, seqs[i]); err != nil {
			sp.End()
			huffman.PutWriter(w)
			return nil, fmt.Errorf("region %d: %w", i, err)
		}
		sp.SetArg("bits", w.Len())
		sp.End()
		return w, nil
	})
	if err != nil {
		return nil, nil, err
	}
	var out huffman.BitWriter
	total := 0
	for _, part := range parts {
		total += (part.Len() + 7) / 8
	}
	out.Grow(total + 1)
	offsets = make([]uint32, len(seqs))
	for i, part := range parts {
		offsets[i] = uint32(out.Len())
		out.Append(part)
		parts[i] = nil
		huffman.PutWriter(part) // Bytes was never called on part, so its buffer recycles
	}
	return out.Bytes(), offsets, nil
}

// CompressedBits reports the exact coded size in bits of seq including its
// sentinel, without emitting anything.
func (c *Compressor) CompressedBits(seq []isa.Inst) (int, error) {
	w := huffman.GetWriter(c.sizeHint(len(seq)))
	defer huffman.PutWriter(w)
	if err := c.Compress(w, seq); err != nil {
		return 0, err
	}
	return w.Len(), nil
}

// Decompress reads one region's merged codeword sequence starting at bit
// offset bitOff of blob, invoking emit for each instruction until the
// sentinel. It returns the number of compressed bits consumed (sentinel
// included), which the simulator's cost model charges for.
func (c *Compressor) Decompress(blob []byte, bitOff int, emit func(isa.Inst) error) (bitsRead int, err error) {
	r := huffman.GetReader(blob)
	defer huffman.PutReader(r)
	r.Seek(bitOff)
	mtf := c.newMTF()
	// One stack-resident scratch holds each instruction's fields; FromFields
	// does not retain it, so the decode loop allocates nothing per
	// instruction.
	var fvbuf [8]isa.FieldValue
	for {
		op, err := c.decodeField(r, mtf, isa.StreamOpcode)
		if err != nil {
			return r.BitsRead() - bitOff, err
		}
		if op == isa.OpIllegal {
			return r.BitsRead() - bitOff, nil // sentinel
		}
		fv := append(fvbuf[:0], isa.FieldValue{Kind: isa.StreamOpcode, Value: op})
		// The opcode selects the remaining streams; for the operate group
		// the op.func stream (decoded before op.rb/op.lit) carries the
		// literal flag in its high bit.
		switch isa.FormatOf(op) {
		case isa.FormatOpReg:
			ra, err := c.decodeField(r, mtf, isa.StreamOpRA)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			fn, err := c.decodeField(r, mtf, isa.StreamOpFunc)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			bKind := isa.StreamOpRB
			if fn>>7&1 == 1 {
				bKind = isa.StreamOpLit
			}
			bv, err := c.decodeField(r, mtf, bKind)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			rc, err := c.decodeField(r, mtf, isa.StreamOpRC)
			if err != nil {
				return r.BitsRead() - bitOff, err
			}
			fv = append(fv,
				isa.FieldValue{Kind: isa.StreamOpRA, Value: ra},
				isa.FieldValue{Kind: isa.StreamOpFunc, Value: fn},
				isa.FieldValue{Kind: bKind, Value: bv},
				isa.FieldValue{Kind: isa.StreamOpRC, Value: rc})
		case isa.FormatIllegal:
			return r.BitsRead() - bitOff, fmt.Errorf("streamcomp: undecodable opcode %#x", op)
		default:
			for _, ref := range isa.OperandFields(op, false) {
				v, err := c.decodeField(r, mtf, ref.Kind)
				if err != nil {
					return r.BitsRead() - bitOff, err
				}
				fv = append(fv, isa.FieldValue{Kind: ref.Kind, Value: v})
			}
		}
		if err := emit(isa.FromFields(fv)); err != nil {
			return r.BitsRead() - bitOff, err
		}
	}
}

// decodeField decodes one codeword of stream k from r, applying the inverse
// MTF transform when enabled.
func (c *Compressor) decodeField(r *huffman.BitReader, mtf []*mtfState, k isa.StreamKind) (uint32, error) {
	var v uint32
	var err error
	if c.slowDecode {
		v, err = c.codes[k].DecodeTree(r)
	} else {
		v, err = c.codes[k].Decode(r)
	}
	if err != nil {
		return 0, fmt.Errorf("streamcomp: %v stream: %w", k, err)
	}
	if mtf != nil {
		v = mtf[k].decode(v)
	}
	return v, nil
}

// TableBytes reports the serialized size of all fifteen code tables — the
// "code representation and value list for each stream" stored with the
// compressed program (§3) — plus, under MTF, the per-stream alphabets.
func (c *Compressor) TableBytes() int {
	b, err := c.MarshalBinary()
	if err != nil {
		return 0
	}
	return len(b)
}

func append24(out []byte, n int) []byte {
	return append(out, byte(n), byte(n>>8), byte(n>>16))
}

func read24(data []byte, pos int) (int, int, error) {
	if pos+3 > len(data) {
		return 0, 0, fmt.Errorf("streamcomp: truncated length at byte %d", pos)
	}
	return int(data[pos]) | int(data[pos+1])<<8 | int(data[pos+2])<<16, pos + 3, nil
}

// MarshalBinary serializes the code tables (and MTF alphabets, if any).
func (c *Compressor) MarshalBinary() ([]byte, error) {
	var out []byte
	if c.opts.MTF {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	for _, code := range c.codes {
		blob, err := code.MarshalBinary()
		if err != nil {
			return nil, err
		}
		if len(blob) > 0xFFFFFF {
			return nil, fmt.Errorf("streamcomp: code table too large")
		}
		out = append24(out, len(blob))
		out = append(out, blob...)
	}
	if c.opts.MTF {
		for _, alpha := range c.alphabets {
			out = append24(out, len(alpha))
			prev := uint32(0)
			for _, v := range alpha {
				out = appendUvarint(out, uint64(v-prev)) // ascending deltas
				prev = v
			}
		}
	}
	return out, nil
}

func appendUvarint(out []byte, v uint64) []byte {
	for v >= 0x80 {
		out = append(out, byte(v)|0x80)
		v >>= 7
	}
	return append(out, byte(v))
}

// UnmarshalBinary deserializes tables written by MarshalBinary.
func (c *Compressor) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("streamcomp: empty table blob")
	}
	c.opts.MTF = data[0] == 1
	pos := 1
	for i := range c.codes {
		n, p, err := read24(data, pos)
		if err != nil {
			return err
		}
		pos = p
		if pos+n > len(data) {
			return fmt.Errorf("streamcomp: truncated table body for stream %d", i)
		}
		c.codes[i] = &huffman.Code{}
		if err := c.codes[i].UnmarshalBinary(data[pos : pos+n]); err != nil {
			return fmt.Errorf("streamcomp: stream %d: %w", i, err)
		}
		pos += n
	}
	if c.opts.MTF {
		for i := range c.alphabets {
			n, p, err := read24(data, pos)
			if err != nil {
				return err
			}
			pos = p
			alpha := make([]uint32, n)
			prev := uint64(0)
			for k := 0; k < n; k++ {
				var v uint64
				var shift uint
				for {
					if pos >= len(data) {
						return fmt.Errorf("streamcomp: truncated alphabet for stream %d", i)
					}
					b := data[pos]
					pos++
					v |= uint64(b&0x7F) << shift
					if b < 0x80 {
						break
					}
					shift += 7
				}
				prev += v
				alpha[k] = uint32(prev)
			}
			c.alphabets[i] = alpha
		}
	} else {
		c.alphabets = [isa.NumStreams][]uint32{}
	}
	if pos != len(data) {
		return fmt.Errorf("streamcomp: %d trailing bytes", len(data)-pos)
	}
	return nil
}

// mtfState is a move-to-front recency list for one stream, seeded with the
// stream's full sorted alphabet so every index is decodable.
type mtfState struct {
	list []uint32
}

// encode maps a value to its current recency index and fronts it. The value
// is always present because the alphabet was collected during training.
func (s *mtfState) encode(v uint32) uint32 {
	for i, x := range s.list {
		if x == v {
			copy(s.list[1:], s.list[:i])
			s.list[0] = v
			return uint32(i)
		}
	}
	panic(fmt.Sprintf("streamcomp: MTF value %d outside trained alphabet", v))
}

// decode maps a recency index back to its value and fronts it.
func (s *mtfState) decode(idx uint32) uint32 {
	if int(idx) >= len(s.list) {
		panic(fmt.Sprintf("streamcomp: MTF index %d outside alphabet of %d", idx, len(s.list)))
	}
	v := s.list[idx]
	copy(s.list[1:], s.list[:idx])
	s.list[0] = v
	return v
}
