package streamcomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/huffman"
	"repro/internal/isa"
)

// realisticSeq builds an instruction sequence with the skewed field
// distributions of real code (stack ops, small displacements, common regs).
func realisticSeq(seed int64, n int) []isa.Inst {
	r := rand.New(rand.NewSource(seed))
	out := make([]isa.Inst, 0, n)
	regs := []uint32{isa.RegV0, isa.RegT0, isa.RegT0 + 1, isa.RegA0, isa.RegA1, isa.RegSP, isa.RegS0}
	reg := func() uint32 { return regs[r.Intn(len(regs))] }
	for len(out) < n {
		switch r.Intn(10) {
		case 0, 1:
			out = append(out, isa.Mem(isa.OpLDW, reg(), isa.RegSP, int32(4*r.Intn(8))))
		case 2:
			out = append(out, isa.Mem(isa.OpSTW, reg(), isa.RegSP, int32(4*r.Intn(8))))
		case 3, 4:
			out = append(out, isa.OpR(isa.OpIntA, reg(), reg(), isa.FnADD, reg()))
		case 5:
			out = append(out, isa.OpL(isa.OpIntA, reg(), uint32(r.Intn(16)), isa.FnSUB, reg()))
		case 6:
			out = append(out, isa.Br(isa.OpBEQ, reg(), int32(r.Intn(64))-32))
		case 7:
			out = append(out, isa.Br(isa.OpBSR, isa.RegRA, int32(r.Intn(1024))))
		case 8:
			out = append(out, isa.OpR(isa.OpIntL, reg(), reg(), isa.FnBIS, reg()))
		case 9:
			out = append(out, isa.Jump(isa.JmpRET, isa.RegZero, isa.RegRA, 0))
		}
	}
	return out
}

func roundTrip(t *testing.T, opts Options, seqs [][]isa.Inst) {
	t.Helper()
	c := Train(seqs, opts)
	var w huffman.BitWriter
	offsets := make([]int, len(seqs))
	for i, seq := range seqs {
		offsets[i] = w.Len()
		if err := c.Compress(&w, seq); err != nil {
			t.Fatalf("Compress region %d: %v", i, err)
		}
	}
	blob := w.Bytes()
	for i, seq := range seqs {
		var got []isa.Inst
		bits, err := c.Decompress(blob, offsets[i], func(in isa.Inst) error {
			got = append(got, in)
			return nil
		})
		if err != nil {
			t.Fatalf("Decompress region %d: %v", i, err)
		}
		if bits <= 0 {
			t.Fatalf("region %d: nonpositive bits read", i)
		}
		if len(got) != len(seq) {
			t.Fatalf("region %d: decoded %d instructions, want %d", i, len(got), len(seq))
		}
		for k := range seq {
			if got[k] != seq[k] {
				t.Fatalf("region %d inst %d: got %v, want %v", i, k, got[k], seq[k])
			}
		}
	}
}

func TestRoundTripRealistic(t *testing.T) {
	seqs := [][]isa.Inst{
		realisticSeq(1, 40),
		realisticSeq(2, 7),
		realisticSeq(3, 128),
		realisticSeq(4, 1),
	}
	roundTrip(t, Options{}, seqs)
}

func TestRoundTripMTF(t *testing.T) {
	seqs := [][]isa.Inst{
		realisticSeq(5, 60),
		realisticSeq(6, 13),
		realisticSeq(7, 99),
	}
	roundTrip(t, Options{MTF: true}, seqs)
}

func TestRoundTripRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		insts := isa.RandInsts(seed, 50)
		// Drop illegal-format instructions (sentinels may not appear
		// inside a region).
		var seq []isa.Inst
		for _, in := range insts {
			if in.Format != isa.FormatIllegal {
				seq = append(seq, in)
			}
		}
		seqs := [][]isa.Inst{seq, seq[:len(seq)/2]}
		c := Train(seqs, Options{})
		var w huffman.BitWriter
		var offsets []int
		for _, s := range seqs {
			offsets = append(offsets, w.Len())
			if err := c.Compress(&w, s); err != nil {
				return false
			}
		}
		blob := w.Bytes()
		for i, s := range seqs {
			var got []isa.Inst
			if _, err := c.Decompress(blob, offsets[i], func(in isa.Inst) error {
				got = append(got, in)
				return nil
			}); err != nil {
				return false
			}
			if len(got) != len(s) {
				return false
			}
			for k := range s {
				if got[k] != s[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestVirtualOpcodesRoundTrip(t *testing.T) {
	seq := []isa.Inst{
		isa.Br(isa.OpBSRX, isa.RegRA, 1234),
		{Op: isa.OpJSRX, Format: isa.FormatJump, RA: isa.RegRA, RB: isa.RegPV},
		isa.Br(isa.OpBSR, isa.RegRA, -7),
	}
	roundTrip(t, Options{}, [][]isa.Inst{seq})
}

func TestCompressRejectsSentinelInRegion(t *testing.T) {
	c := Train([][]isa.Inst{{isa.Nop()}}, Options{})
	var w huffman.BitWriter
	err := c.Compress(&w, []isa.Inst{{Format: isa.FormatIllegal, Op: isa.OpIllegal}})
	if err == nil {
		t.Fatal("expected error for sentinel inside region")
	}
}

func TestEmptyRegion(t *testing.T) {
	roundTrip(t, Options{}, [][]isa.Inst{{}})
}

func TestCompressionBeatsRawEncoding(t *testing.T) {
	// Realistic code must compress well below 32 bits/instruction; the
	// paper reports ≈66% of original size, i.e. ≈21 bits. Allow a generous
	// margin for this small synthetic sample but require real compression.
	seqs := [][]isa.Inst{realisticSeq(11, 2000)}
	c := Train(seqs, Options{})
	bits, err := c.CompressedBits(seqs[0])
	if err != nil {
		t.Fatal(err)
	}
	perInst := float64(bits) / float64(len(seqs[0]))
	if perInst >= 28 {
		t.Fatalf("%.1f bits/instruction; expected meaningful compression below 28", perInst)
	}
	t.Logf("%.1f bits per instruction (raw: 32)", perInst)
}

func TestCompressedBitsMatchesCompress(t *testing.T) {
	seqs := [][]isa.Inst{realisticSeq(13, 300), realisticSeq(14, 30)}
	c := Train(seqs, Options{})
	for _, s := range seqs {
		want, err := c.CompressedBits(s)
		if err != nil {
			t.Fatal(err)
		}
		var w huffman.BitWriter
		if err := c.Compress(&w, s); err != nil {
			t.Fatal(err)
		}
		if w.Len() != want {
			t.Fatalf("CompressedBits = %d, Compress wrote %d", want, w.Len())
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, opts := range []Options{{}, {MTF: true}} {
		seqs := [][]isa.Inst{realisticSeq(21, 120), realisticSeq(22, 60)}
		c := Train(seqs, opts)
		blob, err := c.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Compressor
		if err := back.UnmarshalBinary(blob); err != nil {
			t.Fatalf("UnmarshalBinary (MTF=%v): %v", opts.MTF, err)
		}
		// The deserialized compressor must decode data compressed by the
		// original.
		var w huffman.BitWriter
		if err := c.Compress(&w, seqs[0]); err != nil {
			t.Fatal(err)
		}
		var got []isa.Inst
		if _, err := back.Decompress(w.Bytes(), 0, func(in isa.Inst) error {
			got = append(got, in)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(seqs[0]) {
			t.Fatalf("decoded %d instructions, want %d", len(got), len(seqs[0]))
		}
		for i := range got {
			if got[i] != seqs[0][i] {
				t.Fatalf("inst %d differs after serialize round trip", i)
			}
		}
		if c.TableBytes() != len(blob) {
			t.Fatalf("TableBytes = %d, blob = %d", c.TableBytes(), len(blob))
		}
	}
}

func TestDecompressDetectsCorruption(t *testing.T) {
	seqs := [][]isa.Inst{realisticSeq(31, 100)}
	c := Train(seqs, Options{})
	var w huffman.BitWriter
	if err := c.Compress(&w, seqs[0]); err != nil {
		t.Fatal(err)
	}
	blob := w.Bytes()
	// Flip bits; decoding must either error or stop, never loop forever.
	for i := 0; i < len(blob); i += 7 {
		corrupted := append([]byte(nil), blob...)
		corrupted[i] ^= 0xA5
		n := 0
		_, err := c.Decompress(corrupted, 0, func(isa.Inst) error {
			n++
			if n > 10*len(seqs[0]) {
				t.Fatal("decoder ran away on corrupted input")
			}
			return nil
		})
		_ = err // error or early sentinel are both acceptable
	}
}

func TestMTFCompressesRepetitiveStreamsBetter(t *testing.T) {
	// A sequence cycling through a few distinct displacement values with
	// strong recency should favor MTF.
	var seq []isa.Inst
	disps := []int32{0, 4, 8, 1000, 2000, 3000, 4000, 5000, 6000, 7000}
	for i := 0; i < 600; i++ {
		d := disps[(i/20)%len(disps)]
		seq = append(seq, isa.Mem(isa.OpLDW, isa.RegT0, isa.RegSP, d))
	}
	plain := Train([][]isa.Inst{seq}, Options{})
	mtf := Train([][]isa.Inst{seq}, Options{MTF: true})
	pb, err := plain.CompressedBits(seq)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := mtf.CompressedBits(seq)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain %d bits, MTF %d bits", pb, mb)
	// MTF should not be dramatically worse on recency-heavy data.
	if float64(mb) > 1.3*float64(pb) {
		t.Fatalf("MTF %d bits much worse than plain %d", mb, pb)
	}
}
