package streamcomp

import (
	"repro/internal/huffman"
	"repro/internal/isa"
)

// StreamStat describes one operand stream's codebook: how many distinct
// values it codes and how many bytes its serialized table occupies in
// the squashed image.
type StreamStat struct {
	Kind       isa.StreamKind
	Values     int
	TableBytes int
	MaxCodeLen int
}

// StreamStats reports the per-stream codebook shape. Telemetry for the
// paper's per-stream breakdown (Table 3); callers gate it behind an
// enabled recorder since it serializes each table to measure it.
func (c *Compressor) StreamStats() []StreamStat {
	out := make([]StreamStat, isa.NumStreams)
	for k := range c.codes {
		blob, _ := c.codes[k].MarshalBinary()
		out[k] = StreamStat{
			Kind:       isa.StreamKind(k),
			Values:     c.codes[k].NumValues(),
			TableBytes: len(blob),
			MaxCodeLen: c.codes[k].MaxLen(),
		}
	}
	return out
}

// StreamBits re-walks the field split of every sequence (sentinels
// included) and totals the coded bits each stream contributes. The sum
// over streams equals the blob's bit length; the per-stream split is
// what CompressAll's merged output obscures. Costs one extra pass, so
// callers only invoke it when telemetry is on.
func (c *Compressor) StreamBits(seqs [][]isa.Inst) [isa.NumStreams]uint64 {
	var bits [isa.NumStreams]uint64
	for _, seq := range seqs {
		mtf := c.newMTF()
		count := func(in isa.Inst) {
			for _, fv := range isa.Fields(in) {
				v := fv.Value
				if mtf != nil {
					v = mtf[fv.Kind].encode(v)
				}
				bits[fv.Kind] += uint64(c.codes[fv.Kind].CodeLen(v))
			}
		}
		for _, in := range seq {
			count(in)
		}
		count(sentinelInst)
	}
	return bits
}

// DecodeStats sums the decode-path counters across all stream codes.
func (c *Compressor) DecodeStats() huffman.DecodeStats {
	var total huffman.DecodeStats
	for _, code := range c.codes {
		if code != nil {
			code.Stats.AddTo(&total)
		}
	}
	return total
}
