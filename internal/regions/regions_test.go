package regions

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
)

// coldProgram: main has a hot loop plus several cold functions with calls
// between them.
const coldProgram = `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
hot:    sys  getc
        blt  v0, cleanup
        mov  v0, a0
        sys  putc
        br   hot
cleanup:
        bsr  ra, coldf
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func coldf
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        add  v0, 1, t0
        sub  t0, 2, t1
        xor  t1, t0, t2
        and  t2, 7, t3
        bsr  ra, coldg
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        ret
        .func coldg
        add  a0, a0, v0
        sll  v0, 1, v0
        sub  v0, 1, v0
        xor  v0, 3, v0
        and  v0, 255, v0
        bis  v0, v0, v0
        add  v0, 2, v0
        sub  v0, 1, v0
        ret
        .func coldh
        add  a0, 1, v0
        ret
`

func buildCold(t *testing.T, src string) (*cfg.Program, map[string]bool) {
	t.Helper()
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	// Mark everything except main's hot loop as cold.
	cold := map[string]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			if b.Label != "hot" && !strings.Contains(b.Label, "$L") || f.Name != "main" {
				cold[b.Label] = true
			}
		}
	}
	delete(cold, "hot")
	return p, cold
}

func TestPartitionBasics(t *testing.T) {
	p, cold := buildCold(t, coldProgram)
	res, preds, err := Partition(p, cold, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) == 0 {
		t.Fatal("no regions formed")
	}
	// All region blocks are cold and within the buffer bound.
	maxWords := DefaultConfig().K / isa.WordSize
	for _, r := range res.Regions {
		for _, b := range r.Blocks {
			if !cold[b.Label] {
				t.Errorf("region %d contains non-cold block %s", r.ID, b.Label)
			}
		}
		if w := BufferWords(r, nil); w > maxWords {
			t.Errorf("region %d: %d words > bound %d", r.ID, w, maxWords)
		}
		if len(res.Entries(preds, r)) == 0 {
			t.Errorf("region %d has no entries", r.ID)
		}
	}
	// InRegion is consistent.
	for _, r := range res.Regions {
		for _, b := range r.Blocks {
			if res.InRegion[b.Label] != r.ID {
				t.Errorf("InRegion[%s] = %d, want %d", b.Label, res.InRegion[b.Label], r.ID)
			}
		}
	}
}

func TestPartitionRespectsSmallK(t *testing.T) {
	p, cold := buildCold(t, coldProgram)
	conf := DefaultConfig()
	conf.K = 32 // 8 words
	res, _, err := Partition(p, cold, conf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		if w := BufferWords(r, nil); w > 8 {
			t.Errorf("region %d: %d words > 8", r.ID, w)
		}
	}
}

func TestSetjmpExcluded(t *testing.T) {
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        sys  setjmp
        bne  v0, out
        bsr  ra, f
out:    ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func f
        add  a0, 1, v0
        sub  v0, 2, v0
        xor  v0, 3, v0
        and  v0, 7, v0
        add  v0, 1, v0
        sub  v0, 1, v0
        add  v0, 1, v0
        sub  v0, 1, v0
        add  v0, 1, v0
        sub  v0, 1, v0
        add  v0, 1, v0
        sub  v0, 1, v0
        ret
`
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			cold[b.Label] = true
		}
	}
	res, _, err := Partition(p, cold, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Regions {
		for _, b := range r.Blocks {
			if b.Label == "main" || strings.HasPrefix(b.Label, "main$") || b.Label == "out" {
				t.Errorf("block %s of setjmp-calling main was compressed", b.Label)
			}
		}
	}
	if reason, ok := res.Excluded["main"]; !ok || !strings.Contains(reason, "setjmp") {
		t.Errorf("main exclusion reason = %q", reason)
	}
}

func TestProfitabilityRejectsTinyFragments(t *testing.T) {
	// A single 2-instruction cold function: the entry stub (2 words) is not
	// smaller than (1-γ)·2 ≈ 0.7 words, so compression is unprofitable.
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, tiny
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func tiny
        add  a0, 1, v0
        ret
`
	obj, _ := asm.Assemble(src)
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{"tiny": true}
	res, _, err := Partition(p, cold, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regions) != 0 {
		t.Fatalf("tiny fragment was compressed: %d regions", len(res.Regions))
	}
	if reason := res.Excluded["tiny"]; !strings.Contains(reason, "profitable") {
		t.Errorf("exclusion reason = %q", reason)
	}
}

func TestPackingMergesSmallRegions(t *testing.T) {
	// Many small cold functions; packing should produce far fewer regions
	// than functions.
	var sb strings.Builder
	sb.WriteString("        .text\n        .func main\n        clr a0\n        sys halt\n")
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "        .func cold%d\n", i)
		for j := 0; j < 8; j++ {
			fmt.Fprintf(&sb, "        add a0, %d, v0\n", j+i)
		}
		sb.WriteString("        ret\n")
	}
	obj, err := asm.Assemble(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Name != "main" {
			cold[f.Name] = true
		}
	}
	confNoPack := DefaultConfig()
	confNoPack.Pack = false
	resNo, _, err := Partition(p, cold, confNoPack)
	if err != nil {
		t.Fatal(err)
	}
	resYes, _, err := Partition(p, cold, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(resYes.Regions) >= len(resNo.Regions) {
		t.Fatalf("packing did not reduce regions: %d -> %d", len(resNo.Regions), len(resYes.Regions))
	}
	// 12 functions of 9 words each: 512/4 = 128 words per buffer; all
	// should fit in one region.
	if len(resYes.Regions) != 1 {
		t.Errorf("expected 1 packed region, got %d", len(resYes.Regions))
	}
}

func TestBufferWordsCountsExpansions(t *testing.T) {
	p, cold := buildCold(t, coldProgram)
	conf := DefaultConfig()
	conf.Pack = false // keep coldf and coldg in separate regions
	res, _, err := Partition(p, cold, conf)
	if err != nil {
		t.Fatal(err)
	}
	_ = cold
	// Find a region containing coldf (which calls coldg).
	for _, r := range res.Regions {
		for _, b := range r.Blocks {
			if b.Label == "coldf" {
				withExp := BufferWords(r, nil)
				allSafe := BufferWords(r, func(string) bool { return true })
				if withExp <= allSafe {
					t.Errorf("expansion accounting missing: %d <= %d", withExp, allSafe)
				}
			}
		}
	}
}

func TestBadConfigRejected(t *testing.T) {
	p, cold := buildCold(t, coldProgram)
	for _, conf := range []Config{{K: 0, Gamma: 0.66}, {K: 512, Gamma: 0}, {K: 512, Gamma: 1.5}} {
		if _, _, err := Partition(p, cold, conf); err == nil {
			t.Errorf("config %+v accepted", conf)
		}
	}
}
