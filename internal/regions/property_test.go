package regions

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/mediabench"
)

// TestPartitionPropertiesOnRealProgram checks the §4 invariants against a
// full generated benchmark under randomized cold sets and buffer bounds:
// every region respects K, regions never overlap, every compressed block is
// cold, and every region has at least one entry unless it is unreachable.
func TestPartitionPropertiesOnRealProgram(t *testing.T) {
	spec, ok := mediabench.SpecByName("g721_dec")
	if !ok {
		t.Fatal("spec missing")
	}
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		cold := map[string]bool{}
		frac := 0.2 + 0.7*rng.Float64()
		for _, f := range p.Funcs {
			// Cold at function granularity plus random extra blocks, a
			// rough stand-in for arbitrary profiles.
			fnCold := rng.Float64() < frac
			for _, b := range f.Blocks {
				if fnCold || rng.Float64() < 0.15 {
					cold[b.Label] = true
				}
			}
		}
		conf := DefaultConfig()
		conf.K = []int{128, 256, 512, 2048}[rng.Intn(4)]
		conf.Pack = rng.Intn(2) == 0

		res, preds, err := Partition(p, cold, conf)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		maxWords := conf.K / isa.WordSize
		seen := map[string]int{}
		for _, r := range res.Regions {
			if w := BufferWords(r, nil); w > maxWords {
				t.Fatalf("trial %d: region %d needs %d words > %d", trial, r.ID, w, maxWords)
			}
			for _, b := range r.Blocks {
				if prev, dup := seen[b.Label]; dup {
					t.Fatalf("trial %d: block %s in regions %d and %d", trial, b.Label, prev, r.ID)
				}
				seen[b.Label] = r.ID
				if !cold[b.Label] {
					t.Fatalf("trial %d: warm block %s compressed", trial, b.Label)
				}
				if res.InRegion[b.Label] != r.ID {
					t.Fatalf("trial %d: InRegion inconsistent for %s", trial, b.Label)
				}
			}
		}
		for label, id := range res.InRegion {
			if seen[label] != id {
				t.Fatalf("trial %d: InRegion lists %s in %d but region slices disagree", trial, label, id)
			}
		}
		// CompressibleInsts equals the instructions inside regions.
		sum := 0
		for _, r := range res.Regions {
			sum += r.NumInsts()
		}
		if sum != res.CompressibleInsts {
			t.Fatalf("trial %d: CompressibleInsts %d != %d", trial, res.CompressibleInsts, sum)
		}
		_ = preds
	}
}

// TestPackingNeverIncreasesRegionCount: the packed partition of the same
// inputs has at most as many regions and identical block coverage.
func TestPackingNeverIncreasesRegionCount(t *testing.T) {
	spec, _ := mediabench.SpecByName("adpcm")
	obj, err := asm.Assemble(spec.Generate())
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Name != "main" {
			for _, b := range f.Blocks {
				cold[b.Label] = true
			}
		}
	}
	unpacked := DefaultConfig()
	unpacked.Pack = false
	ru, _, err := Partition(p, cold, unpacked)
	if err != nil {
		t.Fatal(err)
	}
	rp, _, err := Partition(p, cold, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Regions) > len(ru.Regions) {
		t.Fatalf("packing increased regions: %d -> %d", len(ru.Regions), len(rp.Regions))
	}
	if rp.CompressibleInsts != ru.CompressibleInsts {
		t.Fatalf("packing changed coverage: %d vs %d", rp.CompressibleInsts, ru.CompressibleInsts)
	}
}

// TestLoopAwareStrategyKeepsLoopsTogether: with the loop-aware strategy, a
// compressible loop that fits the buffer lands in exactly one region.
func TestLoopAwareStrategyKeepsLoopsTogether(t *testing.T) {
	src := `
        .text
        .func main
        lda  sp, -16(sp)
        stw  ra, 0(sp)
        bsr  ra, coldloop
        ldw  ra, 0(sp)
        lda  sp, 16(sp)
        clr  a0
        sys  halt
        .func coldloop
        li   t0, 8
        li   t2, 1
cl_hdr: add  t2, 3, t2
        xor  t2, 5, t3
        and  t3, 255, t2
        sub  t2, 1, t3
        add  t3, t2, t2
        sll  t2, 1, t3
        srl  t3, 1, t2
cl_mid: xor  t2, 9, t2
        add  t2, 1, t2
        sub  t0, 1, t0
        bgt  t0, cl_hdr
        mov  t2, v0
        ret
`
	obj, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cfg.Build(obj, "main")
	if err != nil {
		t.Fatal(err)
	}
	cold := map[string]bool{}
	for _, f := range p.Funcs {
		if f.Name == "coldloop" {
			for _, b := range f.Blocks {
				cold[b.Label] = true
			}
		}
	}
	conf := DefaultConfig()
	conf.Strategy = StrategyLoopAware
	conf.Pack = false
	res, _, err := Partition(p, cold, conf)
	if err != nil {
		t.Fatal(err)
	}
	hdr, okH := res.InRegion["cl_hdr"]
	mid, okM := res.InRegion["cl_mid"]
	if !okH || !okM || hdr != mid {
		t.Fatalf("loop split: cl_hdr in %d (%v), cl_mid in %d (%v)", hdr, okH, mid, okM)
	}
}
