package regions

import (
	"sort"

	"repro/internal/cfg"
)

// Strategy selects the region-construction algorithm. The paper's
// conclusion (§9) names "other algorithms for constructing compressible
// regions" as future work; StrategyLoopAware is one such algorithm,
// motivated by the §7 pathology: the DFS partitioner may split a loop
// across regions, so a timing input that drives the loop pays one
// decompression per iteration. The loop-aware strategy seeds regions from
// natural loops first, keeping each loop that fits the buffer inside a
// single region.
type Strategy int

const (
	// StrategyDFS is the paper's bounded depth-first search (§4).
	StrategyDFS Strategy = iota
	// StrategyLoopAware groups whole natural loops first, then falls back
	// to the DFS for the remaining cold blocks.
	StrategyLoopAware
)

// naturalLoop returns the blocks of the natural loop of back edge
// latch→header: the header plus every block that reaches the latch without
// passing through the header (computed by reverse reachability).
func naturalLoop(preds *Preds, inFunc map[string]*cfg.Block, latch, header string) []string {
	loop := map[string]bool{header: true}
	var stack []string
	if !loop[latch] {
		loop[latch] = true
		stack = append(stack, latch)
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for p := range preds.FlowPreds[b] {
			if inFunc[p] == nil || loop[p] {
				continue
			}
			loop[p] = true
			stack = append(stack, p)
		}
	}
	out := make([]string, 0, len(loop))
	for l := range loop {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// seedLoopRegions forms one region per compressible natural loop that fits
// the buffer, before the generic DFS runs. Loops are processed smallest
// first so inner loops get their own regions when an outer loop is too big.
// It returns the regions created and marks their blocks assigned.
func seedLoopRegions(p *cfg.Program, preds *Preds, candidates map[string]*cfg.Block,
	assigned map[string]bool, res *Result, maxWords int, gamma float64) []*Region {

	type loopInfo struct {
		blocks []string
		insts  int
	}
	var loops []loopInfo
	for _, f := range p.Funcs {
		inFunc := map[string]*cfg.Block{}
		for _, b := range f.Blocks {
			inFunc[b.Label] = b
		}
		sub := &cfg.Program{Funcs: []*cfg.Func{f}}
		for _, e := range sub.BackEdges() {
			blocks := naturalLoop(preds, inFunc, e.From, e.To)
			ok := true
			insts := 0
			for _, l := range blocks {
				if candidates[l] == nil || assigned[l] {
					ok = false
					break
				}
				insts += len(candidates[l].Insts)
			}
			if ok {
				loops = append(loops, loopInfo{blocks, insts})
			}
		}
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].insts != loops[j].insts {
			return loops[i].insts < loops[j].insts
		}
		return loops[i].blocks[0] < loops[j].blocks[0]
	})

	var out []*Region
	for _, li := range loops {
		// Skip loops whose blocks were claimed by a smaller loop region.
		ok := true
		for _, l := range li.blocks {
			if assigned[l] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		r := &Region{ID: len(res.Regions) + len(out)}
		for _, l := range li.blocks {
			r.Blocks = append(r.Blocks, candidates[l])
		}
		if BufferWords(r, nil) > maxWords {
			continue // too big even alone; the DFS will carve it up
		}
		for _, b := range r.Blocks {
			res.InRegion[b.Label] = r.ID
		}
		if !profitable(res, preds, r, gamma) {
			for _, b := range r.Blocks {
				delete(res.InRegion, b.Label)
			}
			continue
		}
		for _, b := range r.Blocks {
			assigned[b.Label] = true
		}
		out = append(out, r)
	}
	return out
}
