// Package regions implements the paper's compressible-region formation
// (§4). The unit of compression is not the source-level function but an
// arbitrary region of cold basic blocks, chosen to balance the size of the
// runtime buffer (which must hold the largest decompressed region) against
// the number of entry stubs and function-offset-table entries.
//
// The optimization problem is NP-hard (the paper reduces PARTITION to it),
// so, as in the paper, a heuristic is used: bounded depth-first search over
// the control-flow graph forms initial single-function regions, a
// profitability test (entry-stub cost versus expected compression savings)
// filters them, and a packing pass repeatedly merges the pair of regions
// with the greatest savings while respecting the buffer bound.
package regions

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/isa"
	"repro/internal/parallel"
)

// Config parameterizes region formation.
type Config struct {
	// K is the runtime buffer bound in bytes (paper default: 512).
	K int
	// Gamma is the assumed compression factor γ < 1: a region of I
	// instructions is expected to compress to γ·I instructions' worth of
	// bits (paper: split-stream coding achieves ≈0.66).
	Gamma float64
	// Pack enables the region-packing pass (on in the paper; switchable
	// for the ablation benchmarks).
	Pack bool
	// Strategy selects the construction algorithm (the paper's DFS, or the
	// loop-aware extension of §9's future work).
	Strategy Strategy
	// Workers bounds the goroutines used by the per-function analysis
	// passes (predecessor graph, compressibility classification); <= 0
	// means one per CPU. Region construction itself stays sequential — the
	// greedy DFS shares an assignment set — so results are identical at
	// any worker count.
	Workers int
}

// DebugTrace, when set, receives partitioning diagnostics.
var DebugTrace func(string)

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config { return Config{K: 512, Gamma: 0.66, Pack: true} }

// EntryStubWords is the size of one entry stub: a call to the decompressor
// plus a tag word (paper: "the constant 2 is the number of words required
// for an entry stub").
const EntryStubWords = 2

// Region is one unit of compression/decompression.
type Region struct {
	ID     int
	Blocks []*cfg.Block // layout order
}

// NumInsts reports the region's size in instructions.
func (r *Region) NumInsts() int {
	n := 0
	for _, b := range r.Blocks {
		n += len(b.Insts)
	}
	return n
}

// Result is the outcome of partitioning.
type Result struct {
	Regions []*Region
	// InRegion maps block label to region ID, or absent if uncompressed.
	InRegion map[string]int
	// Excluded maps cold-but-uncompressible block labels to the reason.
	Excluded map[string]string
	// ColdInsts and CompressibleInsts support the Figure 4 reproduction.
	ColdInsts         int
	CompressibleInsts int
	TotalInsts        int
}

// Entries reports the labels of region r's entry blocks: blocks reachable
// from outside the region (branch/fallthrough predecessors outside r, call
// targets, address-taken blocks, or the program entry). These each require
// an entry stub.
func (res *Result) Entries(p *Preds, r *Region) []string {
	memberOf := func(label string) (int, bool) {
		id, ok := res.InRegion[label]
		return id, ok
	}
	return EntriesOf(p, r, memberOf)
}

// EntriesOf is Entries with an explicit membership function, so the packing
// pass can evaluate hypothetical merges without mutating the result.
func EntriesOf(p *Preds, r *Region, memberOf func(string) (int, bool)) []string {
	var out []string
	for _, b := range r.Blocks {
		if isEntry(p, r, b, memberOf) {
			out = append(out, b.Label)
		}
	}
	return out
}

func isEntry(p *Preds, r *Region, b *cfg.Block, memberOf func(string) (int, bool)) bool {
	if p.AddressTaken[b.Label] || p.ProgramEntry == b.Label {
		return true
	}
	external := func(pred string) bool {
		id, in := memberOf(pred)
		return !in || id != r.ID
	}
	for pred := range p.FlowPreds[b.Label] {
		if external(pred) {
			return true
		}
	}
	for caller := range p.CallPreds[b.Label] {
		if external(caller) {
			return true
		}
	}
	return false
}

// Preds is the program-wide predecessor index used for entry-point and
// packing computations.
type Preds struct {
	// FlowPreds[b] = blocks with a branch or fallthrough edge to b.
	FlowPreds map[string]map[string]bool
	// CallPreds[entry] = blocks containing a call to the function whose
	// entry block is entry.
	CallPreds map[string]map[string]bool
	// AddressTaken marks labels whose address escapes into data or into a
	// register (la): control may arrive from anywhere.
	AddressTaken map[string]bool
	ProgramEntry string
	owner        map[string]*cfg.Func
}

// BuildPreds indexes the program.
func BuildPreds(p *cfg.Program) *Preds {
	return BuildPredsWorkers(p, 1)
}

// predEdges is one function's contribution to the predecessor graph.
type predEdges struct {
	flow, call [][2]string // (to, from) pairs
	addrTaken  []string
}

// BuildPredsWorkers is BuildPreds with the per-function edge scan fanned
// out over the given worker count (<= 0 means one per CPU). The edge sets
// are unions, so the merged graph is identical at any worker count.
func BuildPredsWorkers(p *cfg.Program, workers int) *Preds {
	pr := &Preds{
		FlowPreds:    map[string]map[string]bool{},
		CallPreds:    map[string]map[string]bool{},
		AddressTaken: map[string]bool{},
		ProgramEntry: p.Entry,
		owner:        map[string]*cfg.Func{},
	}
	add := func(m map[string]map[string]bool, to, from string) {
		if m[to] == nil {
			m[to] = map[string]bool{}
		}
		m[to][from] = true
	}
	labels := map[string]bool{}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			labels[b.Label] = true
			pr.owner[b.Label] = f
		}
	}
	scans, _ := parallel.Map(len(p.Funcs), workers, func(fi int) (predEdges, error) {
		var e predEdges
		for _, b := range p.Funcs[fi].Blocks {
			succs, _ := b.Succs()
			for _, s := range succs {
				e.flow = append(e.flow, [2]string{s, b.Label})
			}
			for _, c := range b.Calls() {
				if c.Callee != "" && labels[c.Callee] {
					e.call = append(e.call, [2]string{c.Callee, b.Label})
				}
			}
			for _, in := range b.Insts {
				// A la of a code label takes its address (indirect call or
				// computed branch target).
				if in.Kind == cfg.TargetLo16 && labels[in.Target] {
					e.addrTaken = append(e.addrTaken, in.Target)
				}
			}
		}
		return e, nil
	})
	for _, e := range scans {
		for _, fl := range e.flow {
			add(pr.FlowPreds, fl[0], fl[1])
		}
		for _, c := range e.call {
			add(pr.CallPreds, c[0], c[1])
		}
		for _, l := range e.addrTaken {
			pr.AddressTaken[l] = true
		}
	}
	for _, r := range p.DataRelocs {
		if labels[r.Sym] {
			pr.AddressTaken[r.Sym] = true
		}
	}
	return pr
}

// BufferWords reports the exact number of runtime-buffer words region r
// occupies when decompressed: the leading dispatch jump, the instructions
// themselves, one branch per fallthrough edge broken by the layout or
// leaving the region, and one extra word per call expanded into the
// CreateStub sequence (c_i in the paper's cost model). safeCallee reports
// callees proven buffer-safe (§6.1), whose calls are not expanded; pass nil
// for the conservative bound.
func BufferWords(r *Region, safeCallee func(string) bool) int {
	words := 1 // leading jump to the entry offset
	for i, b := range r.Blocks {
		words += len(b.Insts)
		if b.FallsTo != "" {
			next := ""
			if i+1 < len(r.Blocks) {
				next = r.Blocks[i+1].Label
			}
			if b.FallsTo != next {
				words++ // explicit branch inserted by the region layout
			}
		}
		// Every call from the buffer to a non-buffer-safe callee expands
		// into the CreateStub pair — including calls to targets in the
		// same region, whose bodies may still branch to other regions.
		for _, c := range b.Calls() {
			if safeCallee != nil && c.Callee != "" && safeCallee(c.Callee) {
				continue
			}
			words++
		}
	}
	return words
}

// compressible classifies which cold blocks may be compressed at all, and
// records exclusion reasons for the rest (paper: §2.2 setjmp, §4 unknown
// control flow, §6.2 unresolved jump tables).
func compressible(p *cfg.Program, cold map[string]bool, workers int) (map[string]*cfg.Block, map[string]string) {
	type verdict struct {
		block  *cfg.Block
		reason string // empty when compressible
	}
	scans, _ := parallel.Map(len(p.Funcs), workers, func(fi int) ([]verdict, error) {
		f := p.Funcs[fi]
		setjmp := f.CallsSetjmp()
		// An unresolved indirect jump poisons the whole function: any block
		// could be its target.
		poisoned := false
		for _, b := range f.Blocks {
			if _, known := b.Succs(); !known {
				poisoned = true
			}
		}
		var out []verdict
		for _, b := range f.Blocks {
			if !cold[b.Label] {
				continue
			}
			v := verdict{block: b}
			switch {
			case setjmp:
				v.reason = "function calls setjmp"
			case poisoned:
				v.reason = "function contains unresolved indirect jump"
			case hasRaw(b):
				v.reason = "block contains data words"
			case endsInTableJump(b):
				v.reason = "block ends in jump-table dispatch (not unswitched)"
			case hasIndirectUnknownCall(b):
				v.reason = "block contains indirect call with unknown target"
			}
			out = append(out, v)
		}
		return out, nil
	})
	ok := map[string]*cfg.Block{}
	excluded := map[string]string{}
	for _, scan := range scans {
		for _, v := range scan {
			if v.reason == "" {
				ok[v.block.Label] = v.block
			} else {
				excluded[v.block.Label] = v.reason
			}
		}
	}
	return ok, excluded
}

func hasRaw(b *cfg.Block) bool {
	for _, in := range b.Insts {
		if in.Raw {
			return true
		}
	}
	return false
}

func endsInTableJump(b *cfg.Block) bool {
	if len(b.Insts) == 0 {
		return false
	}
	last := b.Insts[len(b.Insts)-1]
	return !last.Raw && last.Format == isa.FormatJump && last.JFunc == isa.JmpJMP
}

func hasIndirectUnknownCall(b *cfg.Block) bool {
	for _, c := range b.Calls() {
		if c.Indirect && c.Callee == "" {
			return true
		}
	}
	return false
}

// Partition forms compressible regions from the cold blocks of a profiled
// program.
func Partition(p *cfg.Program, cold map[string]bool, conf Config) (*Result, *Preds, error) {
	if conf.K <= 0 || conf.Gamma <= 0 || conf.Gamma >= 1 {
		return nil, nil, fmt.Errorf("regions: invalid config K=%d gamma=%v", conf.K, conf.Gamma)
	}
	maxWords := conf.K / isa.WordSize
	preds := BuildPredsWorkers(p, conf.Workers)
	candidates, excluded := compressible(p, cold, conf.Workers)

	res := &Result{
		InRegion: map[string]int{},
		Excluded: excluded,
	}
	for _, f := range p.Funcs {
		for _, b := range f.Blocks {
			res.TotalInsts += len(b.Insts)
			if cold[b.Label] {
				res.ColdInsts += len(b.Insts)
			}
		}
	}

	// Initial regions: optionally seed from natural loops (loop-aware
	// strategy), then bounded DFS per function in block layout order.
	assigned := map[string]bool{}
	noRetry := map[string]bool{}
	if conf.Strategy == StrategyLoopAware {
		res.Regions = append(res.Regions,
			seedLoopRegions(p, preds, candidates, assigned, res, maxWords, conf.Gamma)...)
	}
	for _, f := range p.Funcs {
		for _, root := range f.Blocks {
			if assigned[root.Label] || noRetry[root.Label] || candidates[root.Label] == nil {
				continue
			}
			tree := dfsTree(f, root, candidates, assigned, maxWords)
			if len(tree) == 0 {
				if DebugTrace != nil {
					DebugTrace(fmt.Sprintf("root %s: empty tree (block %d insts)", root.Label, len(root.Insts)))
				}
				continue
			}
			r := &Region{ID: len(res.Regions), Blocks: tree}
			for _, b := range tree {
				res.InRegion[b.Label] = r.ID
			}
			if DebugTrace != nil {
				e := EntryStubWords * len(res.Entries(preds, r))
				DebugTrace(fmt.Sprintf("root %s: tree %d blocks %d insts, E=%d profitable=%v",
					root.Label, len(tree), r.NumInsts(), e, profitable(res, preds, r, conf.Gamma)))
			}
			if profitable(res, preds, r, conf.Gamma) {
				for _, b := range tree {
					assigned[b.Label] = true
				}
				res.Regions = append(res.Regions, r)
			} else {
				for _, b := range tree {
					delete(res.InRegion, b.Label)
				}
				noRetry[root.Label] = true
			}
		}
	}

	if conf.Pack {
		packRegions(res, preds, maxWords)
	}

	// Final bookkeeping: exclusion reasons for cold blocks left out.
	for label, b := range candidates {
		if _, in := res.InRegion[label]; !in {
			if _, already := res.Excluded[label]; !already {
				res.Excluded[label] = "not profitable to compress"
			}
			_ = b
		}
	}
	for _, r := range res.Regions {
		res.CompressibleInsts += r.NumInsts()
	}
	// Sanity: every region respects the buffer bound.
	for _, r := range res.Regions {
		if w := BufferWords(r, nil); w > maxWords {
			return nil, nil, fmt.Errorf("regions: region %d needs %d words, bound is %d", r.ID, w, maxWords)
		}
	}
	return res, preds, nil
}

// dfsTree grows a region from root by depth-first search over successor
// edges, restricted to compressible, unassigned blocks of the same
// function, keeping the exact buffer requirement within maxWords.
func dfsTree(f *cfg.Func, root *cfg.Block, candidates map[string]*cfg.Block, assigned map[string]bool, maxWords int) []*cfg.Block {
	inFunc := map[string]*cfg.Block{}
	for _, b := range f.Blocks {
		inFunc[b.Label] = b
	}
	var tree []*cfg.Block
	seen := map[string]bool{}
	var visit func(b *cfg.Block)
	visit = func(b *cfg.Block) {
		if seen[b.Label] || assigned[b.Label] || candidates[b.Label] == nil || inFunc[b.Label] == nil {
			return
		}
		// Tentatively accept and check the exact buffer bound.
		seen[b.Label] = true
		tree = append(tree, b)
		if BufferWords(&Region{Blocks: tree}, nil) > maxWords {
			tree = tree[:len(tree)-1]
			delete(seen, b.Label)
			return
		}
		succs, _ := b.Succs()
		for _, s := range succs {
			if nb := inFunc[s]; nb != nil {
				visit(nb)
			}
		}
	}
	visit(root)
	return tree
}

// profitable implements the paper's test: a region of I instructions saves
// (1-γ)·I instructions when compressed and costs E instructions of entry
// stubs; compress only when E < (1-γ)·I.
func profitable(res *Result, preds *Preds, r *Region, gamma float64) bool {
	entries := res.Entries(preds, r)
	e := EntryStubWords * len(entries)
	i := r.NumInsts()
	return float64(e) < (1-gamma)*float64(i)
}

// packRegions repeatedly merges the pair of regions with the greatest
// savings without exceeding the buffer bound (paper, §4). Savings per merge:
// entry stubs for blocks whose external predecessors all lie in the partner
// region, restore-stub machinery for calls between the regions, a jump for
// fallthrough edges knitted by concatenation, and one function-offset-table
// word for the eliminated region.
//
// For tractability the pass runs in two phases: greedy best-pair merging
// over *related* regions (pairs connected by a control-flow edge, a call, or
// a fallthrough — the only pairs whose savings exceed the one-word table
// saving), followed by first-fit-decreasing packing of the remainder, which
// realizes the table-word savings the paper attributes to packing small
// fragmented regions together.
func packRegions(res *Result, preds *Preds, maxWords int) {
	const restoreStubSavingWords = 3 // stub code words plus the buffer word

	live := map[int]*Region{}
	for _, r := range res.Regions {
		live[r.ID] = r
	}

	mergedBufferWords := func(a, b *Region) int {
		return BufferWords(&Region{Blocks: append(append([]*cfg.Block{}, a.Blocks...), b.Blocks...)}, nil)
	}

	savings := func(a, b *Region) int {
		s := 1 // one fewer function-offset-table entry
		merged := &Region{ID: a.ID, Blocks: append(append([]*cfg.Block{}, a.Blocks...), b.Blocks...)}
		memberMerged := func(label string) (int, bool) {
			id, ok := res.InRegion[label]
			if ok && id == b.ID {
				return a.ID, true
			}
			return id, ok
		}
		member := func(label string) (int, bool) {
			id, ok := res.InRegion[label]
			return id, ok
		}
		before := len(EntriesOf(preds, a, member)) + len(EntriesOf(preds, b, member))
		after := len(EntriesOf(preds, merged, memberMerged))
		s += EntryStubWords * (before - after)
		// Calls between the two regions become intra-region.
		for _, pair := range [2][2]*Region{{a, b}, {b, a}} {
			for _, blk := range pair[0].Blocks {
				for _, c := range blk.Calls() {
					if c.Callee == "" {
						continue
					}
					if id, in := res.InRegion[c.Callee]; in && id == pair[1].ID {
						s += restoreStubSavingWords
					}
				}
			}
		}
		// Fallthrough knitting: the last block of a falling through to the
		// first block of b saves the inserted branch.
		if n := len(a.Blocks); n > 0 && len(b.Blocks) > 0 {
			if a.Blocks[n-1].FallsTo == b.Blocks[0].Label {
				s++
			}
		}
		return s
	}

	// relatedPairs: region pairs connected by flow, call, or fallthrough.
	relatedPairs := func() map[[2]int]bool {
		pairs := map[[2]int]bool{}
		addPair := func(x, y int) {
			if x == y {
				return
			}
			if x > y {
				x, y = y, x
			}
			pairs[[2]int{x, y}] = true
		}
		for _, r := range live {
			for _, blk := range r.Blocks {
				succs, _ := blk.Succs()
				for _, s := range succs {
					if id, in := res.InRegion[s]; in {
						addPair(r.ID, id)
					}
				}
				for _, c := range blk.Calls() {
					if c.Callee == "" {
						continue
					}
					if id, in := res.InRegion[c.Callee]; in {
						addPair(r.ID, id)
					}
				}
			}
		}
		return pairs
	}

	// Phase 1: greedy merging of related pairs by savings. Pairs are
	// scored in sorted order so ties resolve deterministically.
	for {
		bestS, bestA, bestB := 1, -1, -1 // require savings beyond the table word
		pairSet := relatedPairs()
		pairs := make([][2]int, 0, len(pairSet))
		for pr := range pairSet {
			pairs = append(pairs, pr)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		for _, pr := range pairs {
			a, b := live[pr[0]], live[pr[1]]
			if a == nil || b == nil {
				continue
			}
			if mergedBufferWords(a, b) > maxWords {
				continue
			}
			if s := savings(a, b); s > bestS {
				bestS, bestA, bestB = s, pr[0], pr[1]
			}
		}
		if bestA < 0 {
			break
		}
		a, b := live[bestA], live[bestB]
		a.Blocks = append(a.Blocks, b.Blocks...)
		for _, blk := range b.Blocks {
			res.InRegion[blk.Label] = a.ID
		}
		delete(live, bestB)
	}

	// Phase 2: first-fit-decreasing packing of what remains, for the
	// function-offset-table savings.
	ids := make([]int, 0, len(live))
	for id := range live {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi := BufferWords(live[ids[i]], nil)
		wj := BufferWords(live[ids[j]], nil)
		if wi != wj {
			return wi > wj
		}
		return ids[i] < ids[j]
	})
	var bins []*Region
	for _, id := range ids {
		r := live[id]
		placed := false
		for _, bin := range bins {
			if mergedBufferWords(bin, r) <= maxWords {
				bin.Blocks = append(bin.Blocks, r.Blocks...)
				for _, blk := range r.Blocks {
					res.InRegion[blk.Label] = bin.ID
				}
				delete(live, id)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, r)
		}
	}

	// Renumber compactly in ascending original-ID order.
	finalIDs := make([]int, 0, len(live))
	for id := range live {
		finalIDs = append(finalIDs, id)
	}
	sort.Ints(finalIDs)
	var out []*Region
	remap := map[int]int{}
	for newID, oldID := range finalIDs {
		r := live[oldID]
		remap[oldID] = newID
		r.ID = newID
		out = append(out, r)
	}
	for l, id := range res.InRegion {
		res.InRegion[l] = remap[id]
	}
	res.Regions = out
}
