// Package parallel provides the worker-pool primitives the squash pipeline
// uses to spread per-function and per-region work across cores. The paper's
// compressor is an offline post-link step whose units (functions, regions,
// experiment matrix cells) are independent, so the only hard requirement is
// determinism: every helper here collects results in input order, and error
// reporting is by lowest index, so output is byte-identical at any worker
// count.
package parallel

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: values <= 0 mean one worker
// per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// indexedErr pairs a failing index with its error so aggregation can pick a
// deterministic representative.
type indexedErr struct {
	idx int
	err error
}

// ForEach runs fn(i) for every i in [0, n) using at most workers
// goroutines. workers <= 0 means GOMAXPROCS; workers == 1 (or n < 2) runs
// inline with no goroutines. Indices are claimed dynamically for load
// balance, which is safe because each fn owns its index's results.
//
// If any calls fail, ForEach waits for in-flight calls, stops claiming new
// indices, and returns the error of the lowest failing index — the same
// error a serial left-to-right loop over side-effect-free fns would
// surface, so error text does not depend on the worker count.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errs   []indexedErr
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					errs = append(errs, indexedErr{i, err})
					mu.Unlock()
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	if len(errs) == 0 {
		return nil
	}
	sort.Slice(errs, func(a, b int) bool { return errs[a].idx < errs[b].idx })
	return errs[0].err
}

// Map runs fn over [0, n) with ForEach's scheduling and returns the results
// in index order. On error the partial results are discarded.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEachChunk splits [0, n) into contiguous chunks of at least minChunk
// items and runs fn(lo, hi) over them in parallel. It is the right shape for
// tight loops over flat arrays (instruction decode, byte scans) where
// per-index dispatch would dominate. With n <= minChunk the single chunk
// runs inline.
func ForEachChunk(n, workers, minChunk int, fn func(lo, hi int) error) error {
	if n <= 0 {
		return nil
	}
	if minChunk < 1 {
		minChunk = 1
	}
	workers = Workers(workers)
	chunks := (n + minChunk - 1) / minChunk
	if chunks > workers {
		chunks = workers
	}
	if chunks <= 1 {
		return fn(0, n)
	}
	size := (n + chunks - 1) / chunks
	return ForEach(chunks, chunks, func(c int) error {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		return fn(lo, hi)
	})
}
